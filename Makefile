# Developer checks. `make check` is the gate a change must pass: static
# analysis, a full build, the race-enabled test suite, a crash-
# consistency smoke sweep over every file system plus the raw store, and
# a machine-readable bench run whose JSON must validate.

GO ?= go

.PHONY: check vet build test race crashtest scrub repair faults bench-json serve servebench netfaults aging shard

check: vet build race crashtest scrub repair faults serve servebench netfaults aging shard bench-json

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled suite is the one `make check` gates on: the
# concurrent-mode stress tests (internal/betree/concurrent_test.go, the
# parallel bench runner tests) are the repo's data-race canaries and are
# only meaningful under the race detector.
race:
	$(GO) test -race ./...

# Short crash sweep: prefix/torn/subset crash points on ext4, f2fs,
# btrfs, betrfs-v0.6 and the SFL-backed store, checked against the
# legal-states oracle.
crashtest:
	$(GO) test -race -short -v -run 'Crash|Reorder' ./internal/crashtest/ ./internal/extfs/ ./internal/logfs/ ./internal/cowfs/

# Corruption detection end to end, with fsck-style exit codes: a clean
# image passes (0), injected bit flips are reported as checksum
# corruption (2), a grown media defect as a media error (3), and a mix
# reports the stronger media class (3).
# (`go run` collapses any nonzero child exit to 1, so the exact-code
# assertions need a real binary.)
scrub:
	mkdir -p bin && $(GO) build -o bin/betrfsck ./cmd/betrfsck
	./bin/betrfsck -mode=scrub > /dev/null
	./bin/betrfsck -mode=scrub -corrupt=2 > /dev/null 2>&1; test $$? -eq 2
	./bin/betrfsck -mode=scrub -badsector=1 > /dev/null 2>&1; test $$? -eq 3
	./bin/betrfsck -mode=scrub -corrupt=1 -badsector=1 > /dev/null 2>&1; test $$? -eq 3

# Self-healing storage end to end (DESIGN.md §10.6), with fsck-style
# exit codes pinned through a real binary: a -repair run over
# recoverable damage (bad sectors under cached nodes, checksum flips)
# relocates every image and exits 0, while the same damage without
# -repair keeps the historical exit 3. The race-enabled sweep then
# covers the library level across all five systems: scrub-driven
# repair, write-path relocation, the disabled-relocation negative
# controls, and the remap table's crash round-trip.
repair:
	mkdir -p bin && $(GO) build -o bin/betrfsck ./cmd/betrfsck
	./bin/betrfsck -mode=scrub -badsector=2 -seed=7 -repair > /dev/null
	./bin/betrfsck -mode=scrub -corrupt=2 -seed=9 -repair > /dev/null
	./bin/betrfsck -mode=scrub -badsector=2 -seed=7 > /dev/null 2>&1; test $$? -eq 3
	$(GO) test -race -count=1 -run 'Repair|Relocat|ScrubHook|DefectRemap|RetryExhausted' \
		./internal/faulttest/ ./internal/betree/ ./internal/crashtest/ ./internal/blockdev/

# Deterministic fault-injection sweep (fixed seeds): transient faults
# absorbed by retry, persistent write death degrading mounts read-only,
# silent bit flips recovered by checksum re-reads, bad-sector EIO
# propagation, ENOSPC semantics, the seeded multi-client storm on a
# single concurrent mount across every file system, and the multi-seed
# FaultPlan sweep under -clients (TestSeededFaultPlanSweep) — under the
# race detector (the multi-client sweeps are only meaningful with it).
faults:
	$(GO) test -race -count=1 ./internal/faulttest/

# Network file-service layer: protocol conformance (every wire op vs
# the direct mount, identical statuses/attrs/data including EIO, ENOSPC
# and EROFS mapping, across all five systems), backpressure (EBUSY shed
# on a full queue, queue-wait deadline shed, graceful drain), and the
# multi-client write-death contract under the race detector. Then a
# deterministic serve-mode bench whose JSON must validate.
serve:
	$(GO) test -race -count=1 -run 'Conformance|Saturation|QueueWait|Drain|OverWire|Handle|Sessions|ServeDeterministic|ServeDoc|ServerWriteDeath' \
		./internal/fsrpc/ ./internal/fsserve/ ./internal/faulttest/ ./internal/bench/
	$(GO) run ./cmd/betrbench -serve -clients 4 -scale 256 -o BENCH_serve.json > /dev/null
	$(GO) run ./cmd/betrbench -validate BENCH_serve.json

# Async pipelined wire path (DESIGN.md §13): the multiplexing client
# (out-of-order completion, window saturation, transport-death and
# tag-mismatch poison, Reset), pipelined server execution (issue-order
# writes per handle, per-directory namespace ordering, concurrent
# sessions), the scatter-gather frame equivalence, the buffered bench
# transport, the §13 spec drift tests, and the pinned deterministic
# goldens — all under the race detector. Then a concurrent serve run
# with the pipelined-vs-serialized comparison pass whose schema-v4
# JSON must validate.
servebench:
	$(GO) test -race -count=1 \
		-run 'OutOfOrder|WindowSaturation|MidPipeline|TagMismatch|ResetRestarts|FrameParts|Pipelined|BufPipe|WireSpec|DocumentedMetrics|ServeGolden' \
		./internal/fsrpc/ ./internal/fsserve/ ./internal/bench/
	$(GO) run ./cmd/betrbench -serve -workers 8 -clients 4 -scale 256 \
		-o BENCH_serve_pipe.json > /dev/null
	$(GO) run ./cmd/betrbench -validate BENCH_serve_pipe.json
	rm -f BENCH_serve_pipe.json

# Wire-level fault injection and session resumption (DESIGN.md §13.9):
# the seeded multi-client torture sweep (mid-frame connection cuts vs a
# fault-free oracle, byte-for-byte), the exactly-once replay tests
# (DRC hits over re-execution, handle survival, typed lease expiry,
# bounded redial give-up, PING keepalive), and the teardown races
# (Reset/Close vs in-flight calls and the redial loop) — all only
# meaningful under the race detector.
netfaults:
	$(GO) test -race -count=1 ./internal/nettest/
	$(GO) test -race -count=1 -run 'ResetRacesInFlightGo|CloseRacesRedialLoop' ./internal/fsrpc/

# FTL aging rung (DESIGN.md §12): discard plumbing correctness under
# the race detector — the crash sweeps over FTL-backed stacks, the
# betree trim-queue rejection/two-generation tests, the FTL unit suite
# — then the pinned write-amplification invariance test, and a fast
# two-system aging run whose schema-v3 JSON must validate.
aging:
	$(GO) test -race -count=1 -run 'Discard|Trim|WAF|GC|FTL|PassThrough|SequentialOverwrite|Composes|CountersDeterministic|SubPage' \
		./internal/ftl/ ./internal/crashtest/ ./internal/betree/ ./internal/bench/
	$(GO) run ./cmd/betrbench -aging -scale 4096 -systems f2fs,btrfs \
		-o BENCH_aging_smoke.json > /dev/null
	$(GO) run ./cmd/betrbench -validate BENCH_aging_smoke.json
	rm -f BENCH_aging_smoke.json

# Scale-out sharded service (DESIGN.md §14): the share registry and
# block-class wire ops (ATTACH/BOPEN semantics, handle scoping, discard
# forwarding), remote-vs-local blockstore equivalence (byte-identical
# device images, identical EIO/ENOSPC surfacing through the wire), the
# read cache's hit/miss/evict contract, the prefix shard map, the
# 3-shard wire-vs-direct conformance suite, and the cross-shard
# workload with per-shard metrics roll-up — all under the race
# detector, plus the §14.3 spec drift test and the pinned deterministic
# shard rung. Then a 3-shard bench run whose schema-v6 JSON must
# validate.
shard:
	$(GO) test -race -count=1 ./internal/blockstore/... ./internal/controlplane/
	$(GO) test -race -count=1 -run 'OverWire|Shard|BlockClassSpec|Discard' \
		./internal/fsserve/ ./internal/bench/
	$(GO) run ./cmd/betrbench -shard -shards 3 -scale 2048 \
		-o BENCH_shard_smoke.json > /dev/null
	$(GO) run ./cmd/betrbench -validate BENCH_shard_smoke.json
	rm -f BENCH_shard_smoke.json

# Scaled microbenchmark run with machine-readable output: writes
# BENCH_micro.json and fails unless the document round-trips the schema
# documented in EXPERIMENTS.md.
bench-json:
	$(GO) run ./cmd/betrbench -table 1 -scale 1024 \
		-systems ext4,betrfs-v0.4,betrfs-v0.6 -o BENCH_micro.json > /dev/null
	$(GO) run ./cmd/betrbench -validate BENCH_micro.json
