# Developer checks. `make check` is the gate a change must pass: static
# analysis, a full build, the race-enabled test suite, a crash-
# consistency smoke sweep over every file system plus the raw store, and
# a machine-readable bench run whose JSON must validate.

GO ?= go

.PHONY: check vet build test race crashtest scrub bench-json

check: vet build race crashtest scrub bench-json

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled suite is the one `make check` gates on: the
# concurrent-mode stress tests (internal/betree/concurrent_test.go, the
# parallel bench runner tests) are the repo's data-race canaries and are
# only meaningful under the race detector.
race:
	$(GO) test -race ./...

# Short crash sweep: prefix/torn/subset crash points on ext4, f2fs,
# btrfs, betrfs-v0.6 and the SFL-backed store, checked against the
# legal-states oracle.
crashtest:
	$(GO) test -race -short -v -run 'Crash|Reorder' ./internal/crashtest/ ./internal/extfs/ ./internal/logfs/ ./internal/cowfs/

# Corruption detection end to end: inject bit flips into a Bε-tree node
# image and require betrfsck to report it (exit 1), then require a clean
# image to pass (exit 0).
scrub:
	$(GO) run ./cmd/betrfsck -mode=scrub > /dev/null
	! $(GO) run ./cmd/betrfsck -mode=scrub -corrupt=2 > /dev/null

# Scaled microbenchmark run with machine-readable output: writes
# BENCH_micro.json and fails unless the document round-trips the schema
# documented in EXPERIMENTS.md.
bench-json:
	$(GO) run ./cmd/betrbench -table 1 -scale 1024 \
		-systems ext4,betrfs-v0.4,betrfs-v0.6 -o BENCH_micro.json > /dev/null
	$(GO) run ./cmd/betrbench -validate BENCH_micro.json
