# Developer checks. `make check` is the gate a change must pass: static
# analysis, a full build, the race-enabled test suite, and a crash-
# consistency smoke sweep over every file system plus the raw store.

GO ?= go

.PHONY: check vet build test crashtest scrub

check: vet build test crashtest scrub

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Short crash sweep: prefix/torn/subset crash points on ext4, f2fs,
# btrfs, betrfs-v0.6 and the SFL-backed store, checked against the
# legal-states oracle.
crashtest:
	$(GO) test -race -short -v -run 'Crash|Reorder' ./internal/crashtest/ ./internal/extfs/ ./internal/logfs/ ./internal/cowfs/

# Corruption detection end to end: inject bit flips into a Bε-tree node
# image and require betrfsck to report it (exit 1), then require a clean
# image to pass (exit 0).
scrub:
	$(GO) run ./cmd/betrfsck -mode=scrub > /dev/null
	! $(GO) run ./cmd/betrfsck -mode=scrub -corrupt=2 > /dev/null
