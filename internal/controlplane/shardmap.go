// Package controlplane scales the file service out: a ShardMap routes
// paths across N fsserved instances by longest prefix, a Deployment
// builds the N-shard topology (each shard's file node mounting BetrFS
// over a remote block share served by its own storage node), and a
// Client multiplexes the per-shard wire clients behind the familiar
// single-mount client surface (DESIGN.md §14.5). Everything is built
// from the same deterministic simulated parts as the single-node stack,
// so a fixed-seed multi-shard run is bit-identical run to run.
package controlplane

import (
	"sort"
	"strings"
)

// Route binds one path prefix to a shard index. The empty prefix is the
// catch-all.
type Route struct {
	Prefix string
	Shard  int
}

// ShardMap routes wire paths to shards by longest matching prefix. A
// prefix matches a path when it equals the path or names an ancestor
// directory ("a/b" matches "a/b" and "a/b/c", not "a/bc"). Immutable
// after construction, so lookups need no locking.
type ShardMap struct {
	routes []Route // sorted longest-prefix-first
	shards int
}

// NewShardMap builds a map over routes for a deployment of shards
// shards. It panics on a route naming a shard out of range or on a
// duplicate prefix, and requires a catch-all ("" prefix) so every path
// routes somewhere — misconfiguration is a wiring bug, not a runtime
// condition.
func NewShardMap(shards int, routes []Route) *ShardMap {
	rs := append([]Route(nil), routes...)
	sort.SliceStable(rs, func(i, j int) bool {
		return len(rs[i].Prefix) > len(rs[j].Prefix)
	})
	seen := make(map[string]bool, len(rs))
	catchall := false
	for _, r := range rs {
		if r.Shard < 0 || r.Shard >= shards {
			panic("controlplane: route shard out of range: " + r.Prefix)
		}
		if seen[r.Prefix] {
			panic("controlplane: duplicate route prefix " + r.Prefix)
		}
		seen[r.Prefix] = true
		if r.Prefix == "" {
			catchall = true
		}
	}
	if !catchall {
		panic("controlplane: shard map needs a catch-all \"\" route")
	}
	return &ShardMap{routes: rs, shards: shards}
}

// Shards returns the deployment size the map was built for.
func (m *ShardMap) Shards() int { return m.shards }

// Routes returns the routing table, longest prefix first (fsshell
// `shardmap` prints it).
func (m *ShardMap) Routes() []Route { return append([]Route(nil), m.routes...) }

// Route returns the shard owning path.
func (m *ShardMap) Route(path string) int {
	for _, r := range m.routes {
		if r.Prefix == "" || path == r.Prefix ||
			(strings.HasPrefix(path, r.Prefix) && len(path) > len(r.Prefix) && path[len(r.Prefix)] == '/') {
			return r.Shard
		}
	}
	return 0 // unreachable: the catch-all always matches
}

// DefaultRoutes spreads top-level directories "s0" … "s<n-1>" across the
// shards, with shard 0 as the catch-all — the layout the shard bench and
// the worked EXPERIMENTS.md example use.
func DefaultRoutes(shards int) []Route {
	routes := []Route{{Prefix: "", Shard: 0}}
	for i := 0; i < shards; i++ {
		routes = append(routes, Route{Prefix: shardPrefix(i), Shard: i})
	}
	return routes
}

func shardPrefix(i int) string {
	return "s" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
