package controlplane_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"betrfs/internal/controlplane"
	"betrfs/internal/fsrpc"
	"betrfs/internal/metrics"
	"betrfs/internal/vfs"
)

// directDriver applies the same operations a wire client issues, but
// straight on the deployment's mounts, routed by the same shard map.
// The conformance test diffs its results against the routed wire path.
type directDriver struct {
	t *testing.T
	d *controlplane.Deployment
}

func (dd *directDriver) mount(path string) *vfs.Mount {
	return dd.d.Shards[dd.d.Map.Route(path)].Mount
}

func (dd *directDriver) mkdir(path string) error { return dd.mount(path).Mkdir(path) }

func (dd *directDriver) createWrite(path string, data []byte) error {
	f, err := dd.mount(path).Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return f.Fsync()
}

func (dd *directDriver) read(path string, n int) ([]byte, error) {
	f, err := dd.mount(path).Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	rn, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:rn], nil
}

func (dd *directDriver) stat(path string) (fsrpc.Attr, error) {
	a, err := dd.mount(path).Stat(path)
	return fsrpc.FromVFS(a), err
}

func (dd *directDriver) readdir(path string) ([]fsrpc.DirEnt, error) {
	ents, err := dd.mount(path).ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]fsrpc.DirEnt, len(ents))
	for i, e := range ents {
		out[i] = fsrpc.DirEnt{Name: e.Name, Dir: e.Dir}
	}
	return out, nil
}

// sameStatus requires the wire and direct paths to classify an outcome
// identically at the wire-status level (DESIGN.md §13.4): both succeed,
// or both fail with the same Status.
func sameStatus(t *testing.T, what string, wire, direct error) {
	t.Helper()
	if fsrpc.StatusOf(wire) != fsrpc.StatusOf(direct) {
		t.Fatalf("%s: wire %v (status %v) vs direct %v (status %v)",
			what, wire, fsrpc.StatusOf(wire), direct, fsrpc.StatusOf(direct))
	}
}

// TestWireVsDirectConformance is the per-shard conformance gate from
// DESIGN.md §14.5: two identical 3-shard deployments, one driven over
// the prefix-routing wire client and one driven directly on the mounts
// with the same routing, must agree on every result — data, attributes,
// directory listings, and error classification — on every shard.
func TestWireVsDirectConformance(t *testing.T) {
	cfg := controlplane.Config{Shards: 3, Scale: 2048}
	dw := controlplane.New(cfg)
	defer dw.Close()
	dd := controlplane.New(cfg)
	defer dd.Close()

	wire := dw.Connect(nil)
	defer wire.Close()
	direct := &directDriver{t: t, d: dd}

	// Prefixes landing on all three shards plus the catch-all.
	prefixes := []string{"s00", "s01", "s02", "misc"}
	for _, p := range prefixes {
		sameStatus(t, "mkdir "+p, wire.Mkdir(p), direct.mkdir(p))
		for i := 0; i < 4; i++ {
			path := fmt.Sprintf("%s/f%d", p, i)
			payload := bytes.Repeat([]byte{byte(i + 1)}, 3000+512*i)
			h, _, errW := wire.Create(path)
			errD := direct.createWrite(path, payload)
			if errW == nil {
				if _, err := wire.Write(h, 0, payload); err != nil {
					errW = err
				} else {
					errW = wire.Fsync(h)
				}
			}
			sameStatus(t, "create+write "+path, errW, errD)
		}
	}

	for _, p := range prefixes {
		for i := 0; i < 4; i++ {
			path := fmt.Sprintf("%s/f%d", p, i)
			n := 3000 + 512*i

			aw, errW := wire.Getattr(path)
			ad, errD := direct.stat(path)
			sameStatus(t, "getattr "+path, errW, errD)
			if aw.Size != ad.Size || aw.Dir != ad.Dir {
				t.Fatalf("getattr %s: wire %+v vs direct %+v", path, aw, ad)
			}
			if aw.Size != int64(n) {
				t.Fatalf("getattr %s: size %d, want %d", path, aw.Size, n)
			}

			h, _, err := wire.Lookup(path, true)
			if err != nil {
				t.Fatalf("lookup %s: %v", path, err)
			}
			gw, errW := wire.Read(h, 0, n)
			gd, errD := direct.read(path, n)
			sameStatus(t, "read "+path, errW, errD)
			if !bytes.Equal(gw, gd) {
				t.Fatalf("read %s: wire and direct bytes diverge", path)
			}
		}

		ew, errW := wire.Readdir(p)
		ed, errD := direct.readdir(p)
		sameStatus(t, "readdir "+p, errW, errD)
		if len(ew) != len(ed) {
			t.Fatalf("readdir %s: wire %d entries, direct %d", p, len(ew), len(ed))
		}
		for i := range ew {
			if ew[i] != ed[i] {
				t.Fatalf("readdir %s[%d]: wire %+v vs direct %+v", p, i, ew[i], ed[i])
			}
		}
	}

	// Error classification must match on every shard too.
	for _, p := range prefixes {
		_, errW := wire.Getattr(p + "/absent")
		_, errD := direct.stat(p + "/absent")
		sameStatus(t, "getattr absent under "+p, errW, errD)
		sameStatus(t, "mkdir existing "+p, wire.Mkdir(p), direct.mkdir(p))
		sameStatus(t, "rmdir non-empty "+p, wire.Rmdir(p), dd.Shards[dd.Map.Route(p)].Mount.Rmdir(p))
		sameStatus(t, "unlink absent under "+p,
			wire.Unlink(p+"/absent"), dd.Shards[dd.Map.Route(p)].Mount.Remove(p+"/absent"))
	}

	// Same-shard rename agrees; the renamed file keeps its bytes.
	sameStatus(t, "rename s01/f0",
		wire.Rename("s01/f0", "s01/r0"), dd.Shards[dd.Map.Route("s01")].Mount.Rename("s01/f0", "s01/r0"))
	_, errW := wire.Getattr("s01/f0")
	_, errD := direct.stat("s01/f0")
	sameStatus(t, "getattr renamed-away s01/f0", errW, errD)
	aw, err := wire.Getattr("s01/r0")
	if err != nil || aw.Size != 3000 {
		t.Fatalf("rename target: %+v, %v", aw, err)
	}
}

// TestCrossShardWorkload runs one workload across all three shards
// through the routing client and checks the §14 acceptance properties:
// per-shard metrics, the deployment roll-up summing them, read-cache
// hits under cold re-reads, cross-shard rename refusal, and the
// aggregated STATFS view.
func TestCrossShardWorkload(t *testing.T) {
	d := controlplane.New(controlplane.Config{Shards: 3, Scale: 2048})
	defer d.Close()
	cli := d.Connect(metrics.NewRegistry())
	defer cli.Close()

	prefixes := []string{"s00", "s01", "s02", "misc"}
	const files = 3
	payload := bytes.Repeat([]byte{0x42}, 8192)
	handles := map[string]uint64{}
	for _, p := range prefixes {
		if err := cli.Mkdir(p); err != nil {
			t.Fatalf("mkdir %s: %v", p, err)
		}
		for i := 0; i < files; i++ {
			path := fmt.Sprintf("%s/f%d", p, i)
			h, _, err := cli.Create(path)
			if err != nil {
				t.Fatalf("create %s: %v", path, err)
			}
			if _, err := cli.Write(h, 0, payload); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
			if err := cli.Fsync(h); err != nil {
				t.Fatalf("fsync %s: %v", path, err)
			}
			handles[path] = h
		}
	}

	// Handle tags route reads back to the owning shard: "s02" files carry
	// shard 2's tag and still read correctly.
	if got := cli.Route("s02/f0"); got != 2 {
		t.Fatalf("route s02 = %d", got)
	}
	if _, err := cli.Read(handles["s02/f0"], 0, 512); err != nil {
		t.Fatalf("tagged read: %v", err)
	}
	// A handle tagged with a nonexistent shard is EBADF, not a panic.
	if _, err := cli.Read(uint64(7)<<56|1, 0, 512); !errors.Is(err, fsrpc.ErrBadHandle) {
		t.Fatalf("out-of-range shard tag = %v, want EBADF", err)
	}

	// Cold re-read rounds: dropping the file nodes' caches before each
	// round forces the second round's block reads into the read cache.
	for round := 0; round < 2; round++ {
		d.DropCaches()
		for _, p := range prefixes {
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("%s/f%d", p, i)
				h, _, err := cli.Lookup(path, true)
				if err != nil {
					t.Fatalf("lookup %s: %v", path, err)
				}
				got, err := cli.Read(h, 0, len(payload))
				if err != nil || !bytes.Equal(got, payload) {
					t.Fatalf("round %d read %s: %v", round, path, err)
				}
			}
		}
	}

	// Every shard did file work on its front end and block work on its
	// storage node.
	perShard := make([]metrics.Snapshot, 3)
	for i := 0; i < 3; i++ {
		perShard[i] = d.ShardSnapshot(i)
		if perShard[i].Counters["fsserve.op.create"] < files {
			t.Fatalf("shard %d served %d creates, want ≥ %d",
				i, perShard[i].Counters["fsserve.op.create"], files)
		}
		if perShard[i].Counters["fsserve.op.bwrite"] == 0 {
			t.Fatalf("shard %d storage node served no BWRITEs", i)
		}
	}
	// Shard 0 owns the catch-all and "s00": strictly more creates.
	if perShard[0].Counters["fsserve.op.create"] <= perShard[1].Counters["fsserve.op.create"] {
		t.Fatalf("catch-all shard should serve the most creates: %d vs %d",
			perShard[0].Counters["fsserve.op.create"], perShard[1].Counters["fsserve.op.create"])
	}

	// The deployment roll-up is exactly the sum of the shard snapshots.
	total := d.Snapshot()
	for _, key := range []string{
		"fsserve.op.create", "fsserve.op.read", "fsserve.op.bread",
		"fsserve.op.bwrite", "readcache.miss", "blockdev.read.count",
	} {
		var sum int64
		for i := 0; i < 3; i++ {
			sum += perShard[i].Counters[key]
		}
		if total.Counters[key] != sum {
			t.Fatalf("roll-up %s = %d, shard sum %d", key, total.Counters[key], sum)
		}
	}
	if total.Counters["readcache.hit"] == 0 {
		t.Fatal("no readcache hits after cold re-read rounds")
	}
	if total.Counters["readcache.miss"] == 0 {
		t.Fatal("no readcache misses recorded")
	}

	// Cross-shard rename is refused with the sentinel; both trees are
	// untouched.
	err := cli.Rename("s00/f0", "s01/moved")
	if !errors.Is(err, controlplane.ErrCrossShard) {
		t.Fatalf("cross-shard rename = %v, want ErrCrossShard", err)
	}
	if _, err := cli.Getattr("s00/f0"); err != nil {
		t.Fatalf("source disturbed by refused rename: %v", err)
	}

	// STATFS aggregates: one session per shard from this client, every
	// shard healthy.
	sf, err := cli.Statfs()
	if err != nil {
		t.Fatalf("statfs: %v", err)
	}
	if sf.Sessions < 3 {
		t.Fatalf("aggregated sessions = %d, want ≥ 3", sf.Sessions)
	}
	if sf.Degraded {
		t.Fatal("deployment reports degraded")
	}
	if sf.OpsServed == 0 || sf.SimTimeNs == 0 {
		t.Fatalf("aggregate statfs empty: %+v", sf)
	}
}
