package controlplane

import (
	"errors"
	"fmt"

	"betrfs/internal/fsrpc"
)

// ErrCrossShard reports an operation spanning two shards, which the
// control plane does not coordinate (no distributed transactions): a
// RENAME whose source and destination route differently fails with it.
var ErrCrossShard = errors.New("controlplane: operation crosses shards")

// shardShift packs the owning shard into the top byte of a wire handle,
// so handle-bearing calls route without re-resolving the path. fsserve
// handles are small sequence numbers; 2^56 of them per session is
// unreachable.
const shardShift = 56

// Client multiplexes one wire client per shard behind the single-mount
// client surface: path-bearing calls route by the shard map,
// handle-bearing calls by the shard tag in the handle, and STATFS
// aggregates every shard. It satisfies the same contract the bench
// driver scripts expect of *fsrpc.Client.
type Client struct {
	m      *ShardMap
	shards []*fsrpc.Client
}

// Shard exposes the underlying per-shard client (fsshell uses it for
// shard-targeted commands).
func (c *Client) Shard(i int) *fsrpc.Client { return c.shards[i] }

// Route returns the shard index owning path.
func (c *Client) Route(path string) int { return c.m.Route(path) }

// Map returns the client's shard map.
func (c *Client) Map() *ShardMap { return c.m }

func (c *Client) byPath(path string) (*fsrpc.Client, uint64) {
	i := c.m.Route(path)
	return c.shards[i], uint64(i) << shardShift
}

func (c *Client) byHandle(h uint64) (*fsrpc.Client, uint64, error) {
	i := int(h >> shardShift)
	if i >= len(c.shards) {
		return nil, 0, fsrpc.ErrBadHandle
	}
	return c.shards[i], h & (uint64(1)<<shardShift - 1), nil
}

func (c *Client) Lookup(path string, open bool) (uint64, fsrpc.Attr, error) {
	cli, tag := c.byPath(path)
	h, a, err := cli.Lookup(path, open)
	if err != nil || h == 0 {
		return h, a, err
	}
	return h | tag, a, nil
}

func (c *Client) Getattr(path string) (fsrpc.Attr, error) {
	cli, _ := c.byPath(path)
	return cli.Getattr(path)
}

func (c *Client) Create(path string) (uint64, fsrpc.Attr, error) {
	cli, tag := c.byPath(path)
	h, a, err := cli.Create(path)
	if err != nil {
		return h, a, err
	}
	return h | tag, a, nil
}

func (c *Client) Read(handle uint64, off int64, n int) ([]byte, error) {
	cli, h, err := c.byHandle(handle)
	if err != nil {
		return nil, err
	}
	return cli.Read(h, off, n)
}

func (c *Client) Write(handle uint64, off int64, data []byte) (int, error) {
	cli, h, err := c.byHandle(handle)
	if err != nil {
		return 0, err
	}
	return cli.Write(h, off, data)
}

func (c *Client) Fsync(handle uint64) error {
	cli, h, err := c.byHandle(handle)
	if err != nil {
		return err
	}
	return cli.Fsync(h)
}

func (c *Client) Mkdir(path string) error {
	cli, _ := c.byPath(path)
	return cli.Mkdir(path)
}

func (c *Client) Unlink(path string) error {
	cli, _ := c.byPath(path)
	return cli.Unlink(path)
}

func (c *Client) Rmdir(path string) error {
	cli, _ := c.byPath(path)
	return cli.Rmdir(path)
}

// Rename renames within one shard; a source and destination owned by
// different shards fail with ErrCrossShard (the namespace is
// partitioned, not replicated — a cross-shard rename would need a copy
// the control plane deliberately does not hide).
func (c *Client) Rename(oldPath, newPath string) error {
	from, to := c.m.Route(oldPath), c.m.Route(newPath)
	if from != to {
		return fmt.Errorf("%w: rename %q (shard %d) -> %q (shard %d)",
			ErrCrossShard, oldPath, from, newPath, to)
	}
	return c.shards[from].Rename(oldPath, newPath)
}

func (c *Client) Readdir(path string) ([]fsrpc.DirEnt, error) {
	cli, _ := c.byPath(path)
	return cli.Readdir(path)
}

// Statfs aggregates the deployment: sessions and ops served sum across
// shards, degraded is the OR (one degraded shard degrades the service),
// and the simulated time is the furthest shard clock.
func (c *Client) Statfs() (fsrpc.Statfs, error) {
	var out fsrpc.Statfs
	for i, cli := range c.shards {
		sf, err := cli.Statfs()
		if err != nil {
			return out, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			out.BlockSize = sf.BlockSize
		}
		out.Sessions += sf.Sessions
		out.OpsServed += sf.OpsServed
		if sf.SimTimeNs > out.SimTimeNs {
			out.SimTimeNs = sf.SimTimeNs
		}
		out.Degraded = out.Degraded || sf.Degraded
	}
	return out, nil
}

// Close closes every shard connection, returning the first error.
func (c *Client) Close() error {
	var first error
	for _, cli := range c.shards {
		if err := cli.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
