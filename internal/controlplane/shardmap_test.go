package controlplane

import "testing"

func TestShardMapLongestPrefix(t *testing.T) {
	m := NewShardMap(3, []Route{
		{Prefix: "", Shard: 0},
		{Prefix: "a", Shard: 1},
		{Prefix: "a/b", Shard: 2},
	})
	cases := []struct {
		path string
		want int
	}{
		{"", 0},
		{"zzz", 0},
		{"a", 1},
		{"a/x", 1},
		{"a/b", 2},
		{"a/b/c/d", 2},
		{"a/bc", 1},  // "a/b" must not match "a/bc"
		{"ab", 0},    // "a" must not match "ab"
		{"a/b2", 1},  // sibling of "a/b"
		{"A", 0},     // case-sensitive
	}
	for _, c := range cases {
		if got := m.Route(c.path); got != c.want {
			t.Errorf("Route(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestShardMapValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("no catch-all", func() {
		NewShardMap(2, []Route{{Prefix: "a", Shard: 0}})
	})
	expectPanic("duplicate prefix", func() {
		NewShardMap(2, []Route{{Prefix: "", Shard: 0}, {Prefix: "a", Shard: 0}, {Prefix: "a", Shard: 1}})
	})
	expectPanic("shard out of range", func() {
		NewShardMap(2, []Route{{Prefix: "", Shard: 0}, {Prefix: "a", Shard: 2}})
	})
}

func TestDefaultRoutes(t *testing.T) {
	m := NewShardMap(3, DefaultRoutes(3))
	for i := 0; i < 3; i++ {
		p := shardPrefix(i)
		if got := m.Route(p + "/file"); got != i {
			t.Errorf("Route(%s/file) = %d, want %d", p, got, i)
		}
	}
	if got := m.Route("other/file"); got != 0 {
		t.Errorf("catch-all = %d, want 0", got)
	}
}
