package controlplane

import (
	"fmt"
	"net"

	"betrfs/internal/betrfs"
	"betrfs/internal/blockdev"
	"betrfs/internal/blockstore"
	"betrfs/internal/blockstore/local"
	"betrfs/internal/blockstore/readcache"
	"betrfs/internal/blockstore/remote"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/ftl"
	"betrfs/internal/kmem"
	"betrfs/internal/metrics"
	"betrfs/internal/registry"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// Config sizes a deployment.
type Config struct {
	// Shards is the number of shards (≥ 1). Each shard is a file node
	// plus a storage node.
	Shards int
	// Scale divides the device and workload sizes, like bench.Build.
	// Default 256.
	Scale int64
	// Routes overrides the shard map; nil uses DefaultRoutes(Shards).
	Routes []Route
	// CacheLines bounds each file node's read cache (readcache.Config
	// .Lines); 0 uses the readcache default.
	CacheLines int
}

// Shard is one shard of a deployment: a storage node exporting its
// FTL-backed device as the block share "blk0", and a file node mounting
// BetrFS v0.6 over that share through a read cache, served behind its
// own fsserve front end as the mount share "fs".
//
// Each node is its own simulated machine (sim.Env): the block share's
// I/O charges the storage node's clock, the file system's CPU and cache
// work charge the file node's, and the wire between them is an
// in-process pipe.
type Shard struct {
	Index int
	// StorageEnv / FileEnv are the two machines.
	StorageEnv *sim.Env
	FileEnv    *sim.Env
	// Dev is the storage node's raw device (fault injection and image
	// comparison poke it directly); FTL is the translation layer the
	// block share serves through.
	Dev *blockdev.Dev
	FTL *ftl.Dev
	// Mount is the file node's mount. Conformance tests drive it
	// directly and diff against the wire path.
	Mount *vfs.Mount
	// Cache is the file node's read cache over the remote block share.
	Cache *readcache.Store

	front      *fsserve.Server // serves Mount to control-plane clients
	storage    *fsserve.Server // serves the block share to the file node
	storageCli *fsrpc.Client   // the file node's connection to storage
}

// Deployment is a prefix-routed set of shards.
type Deployment struct {
	Map    *ShardMap
	Shards []*Shard
	cfg    Config
}

// New builds the deployment: per shard, a storage node (device → FTL →
// local block store → fsserve with a block-share registry) and a file
// node (remote block store over a pipe to the storage node → read cache
// → BetrFS v0.6 → fsserve front end). Deterministic: every machine is a
// fresh single-worker sim.Env and nothing runs until a client drives it.
func New(cfg Config) *Deployment {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 256
	}
	routes := cfg.Routes
	if routes == nil {
		routes = DefaultRoutes(cfg.Shards)
	}
	d := &Deployment{Map: NewShardMap(cfg.Shards, routes), cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		d.Shards = append(d.Shards, buildShard(i, cfg))
	}
	return d
}

// BlockShare is the name every storage node exports its device under,
// and MountShare the name every file node exports its mount under.
const (
	BlockShare = "blk0"
	MountShare = "fs"
)

func buildShard(i int, cfg Config) *Shard {
	// Storage node: device → FTL → local store, exported as a block
	// share by a mount-less server.
	senv := sim.NewEnv(1)
	dev := blockdev.New(senv, blockdev.SamsungEVO860().Scale(cfg.Scale))
	fdev := ftl.New(senv, dev, ftl.DefaultConfig())
	sreg := registry.New()
	sreg.AddStore(BlockShare, senv, local.New(fdev))
	scfg := fsserve.DefaultConfig()
	scfg.Registry = sreg
	storage := fsserve.New(senv, nil, scfg)

	// File node: dial the storage node, mount BetrFS v0.6 over the
	// remote share through a read cache.
	fenv := sim.NewEnv(1)
	cliEnd, srvEnd := net.Pipe()
	go storage.ServeConn(srvEnd)
	scli := fsrpc.NewClientOpts(cliEnd, fsrpc.Options{Metrics: fenv.Metrics})
	rstore, err := remote.Open(scli, BlockShare)
	if err != nil {
		panic(fmt.Sprintf("controlplane: shard %d: %v", i, err))
	}
	cache := readcache.New(fenv.Metrics, rstore, readcache.Config{Lines: cfg.CacheLines})
	bdev := blockstore.AsDevice(fenv, cache)

	bcfg := betrfs.V06Config()
	ramBytes := (32 << 30) / cfg.Scale
	bcfg.Tree.CacheBytes = ramBytes / 2
	backend, err := sfl.NewDefault(fenv, bdev)
	if err != nil {
		panic(err)
	}
	fs, err := betrfs.New(fenv, kmem.New(fenv, bcfg.CooperativeMem), bcfg, backend)
	if err != nil {
		panic(err)
	}
	vcfg := vfs.DefaultConfig()
	vcfg.CacheBytes = ramBytes / 2
	mount := vfs.NewMount(fenv, fs, vcfg)

	freg := registry.New()
	freg.AddMount(MountShare, fenv, mount)
	fcfg := fsserve.DefaultConfig()
	fcfg.Registry = freg
	front := fsserve.New(fenv, mount, fcfg)

	return &Shard{
		Index:      i,
		StorageEnv: senv,
		FileEnv:    fenv,
		Dev:        dev,
		FTL:        fdev,
		Mount:      mount,
		Cache:      cache,
		front:      front,
		storage:    storage,
		storageCli: scli,
	}
}

// Dial connects one wire client to shard i's front end over a fresh
// in-process pipe.
func (d *Deployment) Dial(i int, opts fsrpc.Options) *fsrpc.Client {
	cliEnd, srvEnd := net.Pipe()
	go d.Shards[i].front.ServeConn(srvEnd)
	return fsrpc.NewClientOpts(cliEnd, opts)
}

// Connect returns a prefix-routing client over the whole deployment,
// one connection per shard. Client metrics land in reg (nil for none).
func (d *Deployment) Connect(reg *metrics.Registry) *Client {
	shards := make([]*fsrpc.Client, len(d.Shards))
	for i := range d.Shards {
		shards[i] = d.Dial(i, fsrpc.Options{Metrics: reg})
	}
	return &Client{m: d.Map, shards: shards}
}

// ShardSnapshot merges shard i's two machines into one snapshot: the
// file node's metrics (betrfs, readcache, the front fsserve) plus the
// storage node's (ftl, blockdev, the block-share fsserve).
func (d *Deployment) ShardSnapshot(i int) metrics.Snapshot {
	sh := d.Shards[i]
	var snap metrics.Snapshot
	snap.Merge(sh.FileEnv.Metrics.Snapshot())
	snap.Merge(sh.StorageEnv.Metrics.Snapshot())
	return snap
}

// Snapshot rolls every shard's snapshot into one deployment-wide view
// (counters sum, histograms merge — metrics.Snapshot.Merge semantics).
func (d *Deployment) Snapshot() metrics.Snapshot {
	var snap metrics.Snapshot
	for i := range d.Shards {
		snap.Merge(d.ShardSnapshot(i))
	}
	return snap
}

// DropCaches writes back and empties every shard file node's page and
// node caches (vfs.Mount.DropCaches), so subsequent reads go to the
// block layer. The shard bench uses it between its write and read
// phases: the cold re-reads then exercise the read cache in front of
// the remote store instead of being absorbed by the file node's RAM.
func (d *Deployment) DropCaches() {
	for _, sh := range d.Shards {
		sh.Mount.DropCaches()
	}
}

// Quiesce blocks until every server in the deployment has finished the
// reply-side accounting of every admitted request, so a snapshot taken
// afterwards is stable (fsserve.Server.Quiesce). Call it with the
// drivers idle — after the workload, before ShardSnapshot/Snapshot.
func (d *Deployment) Quiesce() {
	for _, sh := range d.Shards {
		sh.front.Quiesce()
		sh.storage.Quiesce()
	}
}

// Close shuts the deployment down: front ends first (draining client
// requests), then each file node's storage connection, then the storage
// servers.
func (d *Deployment) Close() {
	for _, sh := range d.Shards {
		sh.front.Shutdown()
	}
	for _, sh := range d.Shards {
		sh.storageCli.Close()
		sh.storage.Shutdown()
	}
}
