package workload

import (
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/extfs"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

func testMount(t testing.TB) (*sim.Env, *vfs.Mount) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := extfs.New(env, dev, extfs.Ext4Profile())
	cfg := vfs.DefaultConfig()
	cfg.CacheBytes = 256 << 20
	return env, vfs.NewMount(env, fs, cfg)
}

func TestTreeSpecDeterministic(t *testing.T) {
	a := LinuxTree(8)
	b := LinuxTree(8)
	var pa, pb []string
	a.Paths(func(p string, dir bool, size int) { pa = append(pa, fmt.Sprintf("%s/%v/%d", p, dir, size)) })
	b.Paths(func(p string, dir bool, size int) { pb = append(pb, fmt.Sprintf("%s/%v/%d", p, dir, size)) })
	if len(pa) != len(pb) {
		t.Fatal("tree enumeration not deterministic in length")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("tree enumeration differs at %d", i)
		}
	}
}

func TestPopulateAndWalk(t *testing.T) {
	_, m := testMount(t)
	spec := LinuxTree(64)
	total := spec.Populate(m, "linux")
	if total <= 0 {
		t.Fatal("populate wrote nothing")
	}
	files, dirs := 0, 0
	Walk(m, "linux", func(path string, e vfs.DirEntry) bool {
		if e.Dir {
			dirs++
		} else {
			files++
		}
		return true
	})
	if files != spec.FileCount() {
		t.Fatalf("walk found %d files, spec says %d", files, spec.FileCount())
	}
	if dirs == 0 {
		t.Fatal("walk found no directories")
	}
}

func TestSequentialIORoundTrip(t *testing.T) {
	env, m := testMount(t)
	w := SequentialWrite(env, m, 16<<20, 1<<20)
	if w.Bytes != 16<<20 || w.Elapsed <= 0 {
		t.Fatalf("write result %+v", w)
	}
	r := SequentialRead(env, m, 1<<20)
	if r.Bytes != 16<<20 {
		t.Fatalf("read back %d bytes", r.Bytes)
	}
	if r.MBps() <= 0 || w.MBps() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestRandomWriteCounts(t *testing.T) {
	env, m := testMount(t)
	r := RandomWrite(env, m, 16<<20, 100, 4096)
	if r.Ops != 100 || r.Bytes != 100*4096 {
		t.Fatalf("result %+v", r)
	}
	r2 := RandomWrite(env, m, 16<<20, 50, 4)
	if r2.Bytes != 200 {
		t.Fatalf("4B result %+v", r2)
	}
}

func TestTokuBenchCreatesAll(t *testing.T) {
	env, m := testMount(t)
	r := TokuBench(env, m, 1000)
	if r.Ops != 1000 {
		t.Fatalf("ops=%d", r.Ops)
	}
	// Count the files.
	count := 0
	Walk(m, "tokubench", func(path string, e vfs.DirEntry) bool {
		if !e.Dir {
			count++
		}
		return true
	})
	if count != 1000 {
		t.Fatalf("found %d created files, want 1000", count)
	}
}

func TestGrepScansEverything(t *testing.T) {
	env, m := testMount(t)
	spec := LinuxTree(64)
	total := spec.Populate(m, "src")
	g := Grep(env, m, "src")
	if g.Bytes != total {
		t.Fatalf("grep scanned %d bytes, tree has %d", g.Bytes, total)
	}
}

func TestRecursiveDeleteEmptiesTree(t *testing.T) {
	env, m := testMount(t)
	LinuxTree(64).Populate(m, "victim")
	r := RecursiveDelete(env, m, "victim")
	if r.Elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	if _, err := m.Stat("victim"); err != vfs.ErrNotExist {
		t.Fatal("tree survived rm -rf")
	}
}

func TestTarRoundTrip(t *testing.T) {
	env, m := testMount(t)
	spec := LinuxTree(64)
	var total int64
	spec.Paths(func(_ string, dir bool, size int) {
		if !dir {
			total += int64(size)
		}
	})
	af, _ := m.Create("a.tar")
	af.Write(make([]byte, total))
	af.Close()
	r := TarUnpack(env, m, spec, "a.tar", "out")
	if r.Bytes != total {
		t.Fatalf("unpacked %d bytes, want %d", r.Bytes, total)
	}
	p := TarPack(env, m, "out", "b.tar")
	if p.Bytes != total {
		t.Fatalf("packed %d bytes, want %d", p.Bytes, total)
	}
}

func TestRsyncCopies(t *testing.T) {
	env, m := testMount(t)
	spec := LinuxTree(64)
	total := spec.Populate(m, "src")
	m.MkdirAll("dst")
	r := Rsync(env, m, "src", "dst", false)
	if r.Bytes != total {
		t.Fatalf("rsync copied %d bytes, want %d", r.Bytes, total)
	}
	// Spot-check one file exists at the destination.
	found := false
	Walk(m, "dst", func(path string, e vfs.DirEntry) bool {
		if !e.Dir {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("rsync produced no files")
	}
	// No temp files left behind.
	ents, _ := m.ReadDir("dst")
	for _, e := range ents {
		if len(e.Name) > 4 && e.Name[:4] == ".tmp" {
			t.Fatalf("leftover temp file %s", e.Name)
		}
	}
}

func TestMailServerRuns(t *testing.T) {
	env, m := testMount(t)
	r := MailServer(env, m, 3, 50, 500)
	if r.Ops != 500 || r.Elapsed <= 0 {
		t.Fatalf("result %+v", r)
	}
}

func TestFilebenchPersonalities(t *testing.T) {
	spec := FilebenchSpec{Files: 50, MeanFile: 8 << 10, Ops: 300, Seed: 3}
	for _, run := range []struct {
		name string
		fn   func(*sim.Env, *vfs.Mount, FilebenchSpec) Result
	}{
		{"oltp", OLTP},
		{"fileserver", Fileserver},
		{"webserver", Webserver},
		{"webproxy", Webproxy},
	} {
		t.Run(run.name, func(t *testing.T) {
			env, m := testMount(t)
			r := run.fn(env, m, spec)
			if r.Ops != int64(spec.Ops) || r.Elapsed <= 0 {
				t.Fatalf("result %+v", r)
			}
		})
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{Bytes: 1e6, Ops: 1000, Elapsed: 1e9} // 1 second
	if r.MBps() != 1.0 {
		t.Fatalf("MBps=%v", r.MBps())
	}
	if r.KOpsPerSec() != 1.0 {
		t.Fatalf("KOps=%v", r.KOpsPerSec())
	}
	zero := Result{}
	if zero.MBps() != 0 || zero.KOpsPerSec() != 0 {
		t.Fatal("zero elapsed should give zero throughput")
	}
}
