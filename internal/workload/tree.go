// Package workload implements the paper's benchmark workloads as programs
// against the VFS file API: the Table 1/3 microbenchmarks (sequential and
// random I/O, TokuBench, grep, find, recursive delete) and the Figure 2
// applications (tar, git, rsync, the Dovecot-style mail server, and the
// four FileBench personalities).
package workload

import (
	"fmt"
	"time"

	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// Result is one benchmark measurement in simulated time.
type Result struct {
	Name    string
	Elapsed time.Duration
	Bytes   int64
	Ops     int64
}

// MBps returns throughput in MB/s (decimal, as the paper reports).
func (r Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / 1e6
}

// KOpsPerSec returns throughput in thousands of operations per second.
func (r Result) KOpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e3
}

// Seconds returns the latency in seconds.
func (r Result) Seconds() float64 { return r.Elapsed.Seconds() }

// TreeSpec describes a synthetic source tree in the image of the Linux
// 3.11.10 sources the paper uses: ~45k files averaging ~12 KiB across
// ~3k directories.
type TreeSpec struct {
	TopDirs     int // top-level directories (arch, drivers, fs, ...)
	SubDirs     int // subdirectories per top-level directory
	FilesPerDir int
	MeanFile    int // mean file size in bytes
	Seed        uint64
}

// LinuxTree returns a spec scaled to 1/scale of the full source tree.
func LinuxTree(scale int) TreeSpec {
	if scale < 1 {
		scale = 1
	}
	spec := TreeSpec{TopDirs: 20, SubDirs: 10, FilesPerDir: 16, MeanFile: 12 << 10, Seed: 42}
	// Metadata workloads need realistic file counts, so scaling reduces
	// the tree gently: ~3200 files at the default scale.
	if scale >= 16 {
		spec.SubDirs = 5
	}
	if scale >= 64 {
		spec.FilesPerDir = 8
	}
	return spec
}

// FileCount returns the number of files the spec creates.
func (s TreeSpec) FileCount() int { return s.TopDirs * s.SubDirs * s.FilesPerDir }

// Paths enumerates the tree deterministically: dirs first (parents before
// children), then files with their sizes.
func (s TreeSpec) Paths(fn func(path string, dir bool, size int)) {
	rnd := sim.NewRand(s.Seed)
	for d := 0; d < s.TopDirs; d++ {
		top := fmt.Sprintf("src/dir%02d", d)
		fn(top, true, 0)
		for sd := 0; sd < s.SubDirs; sd++ {
			sub := fmt.Sprintf("%s/sub%02d", top, sd)
			fn(sub, true, 0)
			for f := 0; f < s.FilesPerDir; f++ {
				// Log-normal-ish size: most files small, a few large.
				size := s.MeanFile/4 + rnd.Intn(s.MeanFile)
				if rnd.Intn(20) == 0 {
					size *= 8 // headers vs. big drivers
				}
				fn(fmt.Sprintf("%s/file%03d.c", sub, f), false, size)
			}
		}
	}
}

// Populate creates the tree under root on m, returning total bytes.
func (s TreeSpec) Populate(m *vfs.Mount, root string) int64 {
	var total int64
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i*7 + 13)
	}
	s.Paths(func(path string, dir bool, size int) {
		full := join(root, path)
		if dir {
			if err := m.MkdirAll(full); err != nil {
				panic(err)
			}
			return
		}
		f, err := m.Create(full)
		if err != nil {
			panic(err)
		}
		for size > 0 {
			n := size
			if n > len(buf) {
				n = len(buf)
			}
			f.Write(buf[:n])
			size -= n
			total += int64(n)
		}
		f.Close()
	})
	m.Sync()
	return total
}

func join(root, path string) string {
	if root == "" {
		return path
	}
	return root + "/" + path
}

// Walk traverses the tree at root depth-first in readdir order, invoking
// fn for every entry.
func Walk(m *vfs.Mount, root string, fn func(path string, e vfs.DirEntry) bool) {
	ents, err := m.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range ents {
		p := join(root, e.Name)
		if !fn(p, e) {
			return
		}
		if e.Dir {
			Walk(m, p, fn)
		}
	}
}
