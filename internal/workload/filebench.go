package workload

import (
	"fmt"

	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// FileBench personalities (Figures 2e–2h), simplified from the standard
// workload definitions but preserving each one's operation mix and
// durability behaviour.

// FilebenchSpec sizes a personality run.
type FilebenchSpec struct {
	Files    int
	MeanFile int
	Ops      int
	Seed     uint64
}

// prepFiles creates the working set (untimed) and returns the paths.
func prepFiles(m *vfs.Mount, dir string, n, meanSize int, rnd *sim.Rand) []string {
	m.MkdirAll(dir)
	paths := make([]string, 0, n)
	payload := make([]byte, 4*meanSize)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("%s/f%06d", dir, i)
		f, err := m.Create(p)
		if err != nil {
			panic(err)
		}
		size := meanSize/2 + rnd.Intn(meanSize)
		f.Write(payload[:size])
		f.Close()
		paths = append(paths, p)
	}
	m.Sync()
	m.DropCaches()
	return paths
}

// OLTP models filebench's oltp: a database file with small random reads
// and writes plus a heavily fsynced log writer.
func OLTP(env *sim.Env, m *vfs.Mount, spec FilebenchSpec) Result {
	rnd := sim.NewRand(spec.Seed)
	const dbSize = 64 << 20
	db, err := m.Create("oltp/db")
	if err != nil {
		m.MkdirAll("oltp")
		db, err = m.Create("oltp/db")
		if err != nil {
			panic(err)
		}
	}
	chunk := make([]byte, 1<<20)
	for w := 0; w < dbSize; w += len(chunk) {
		db.Write(chunk)
	}
	db.Fsync()
	logf, _ := m.Create("oltp/log")
	m.DropCaches()
	db, _ = m.Open("oltp/db")

	start := env.Now()
	buf := make([]byte, 2048)
	logged := 0
	for op := 0; op < spec.Ops; op++ {
		off := rnd.Int63n(dbSize/2048) * 2048
		switch rnd.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // read
			db.ReadAt(buf, off)
		case 6, 7, 8: // write
			db.WriteAt(buf, off)
		default: // log write + fsync (the commit path)
			logf.Write(buf)
			logf.Fsync()
			logged++
		}
	}
	db.Fsync()
	return Result{Name: "oltp", Elapsed: env.Now() - start, Ops: int64(spec.Ops)}
}

// Fileserver models filebench's fileserver: create/write, append, read
// whole file, delete, stat across a large working set.
func Fileserver(env *sim.Env, m *vfs.Mount, spec FilebenchSpec) Result {
	rnd := sim.NewRand(spec.Seed)
	paths := prepFiles(m, "fsrv", spec.Files, spec.MeanFile, rnd)
	start := env.Now()
	buf := make([]byte, 128<<10)
	created := spec.Files
	for op := 0; op < spec.Ops; op++ {
		switch rnd.Intn(5) {
		case 0: // create + write whole file
			created++
			p := fmt.Sprintf("fsrv/f%06d", created)
			f, err := m.Create(p)
			if err != nil {
				continue
			}
			f.Write(buf[:spec.MeanFile])
			f.Close()
			paths = append(paths, p)
		case 1: // append
			p := paths[rnd.Intn(len(paths))]
			f, err := m.OpenFile(p, false, false)
			if err != nil {
				continue
			}
			f.WriteAt(buf[:16<<10], f.Size())
			f.Close()
		case 2, 3: // read whole file
			p := paths[rnd.Intn(len(paths))]
			f, err := m.Open(p)
			if err != nil {
				continue
			}
			for {
				n, _ := f.Read(buf)
				if n == 0 {
					break
				}
			}
			f.Close()
		default: // stat + delete
			i := rnd.Intn(len(paths))
			m.Stat(paths[i])
			if rnd.Intn(4) == 0 && len(paths) > 100 {
				if m.Remove(paths[i]) == nil {
					paths = append(paths[:i], paths[i+1:]...)
				}
			}
		}
	}
	m.Sync()
	return Result{Name: "fileserver", Elapsed: env.Now() - start, Ops: int64(spec.Ops)}
}

// Webserver models filebench's webserver: whole-file reads of small files
// with a log append every ten reads.
func Webserver(env *sim.Env, m *vfs.Mount, spec FilebenchSpec) Result {
	rnd := sim.NewRand(spec.Seed)
	paths := prepFiles(m, "web", spec.Files, spec.MeanFile, rnd)
	logf, _ := m.Create("weblog")
	start := env.Now()
	buf := make([]byte, 64<<10)
	for op := 0; op < spec.Ops; op++ {
		p := paths[rnd.Intn(len(paths))]
		f, err := m.Open(p)
		if err != nil {
			continue
		}
		for {
			n, _ := f.Read(buf)
			if n == 0 {
				break
			}
		}
		f.Close()
		if op%10 == 9 {
			logf.Write(buf[:16<<10])
		}
	}
	return Result{Name: "webserver", Elapsed: env.Now() - start, Ops: int64(spec.Ops)}
}

// Webproxy models filebench's webproxy: a create/delete/read mix over
// small files plus log appends.
func Webproxy(env *sim.Env, m *vfs.Mount, spec FilebenchSpec) Result {
	rnd := sim.NewRand(spec.Seed)
	paths := prepFiles(m, "proxy", spec.Files, spec.MeanFile, rnd)
	logf, _ := m.Create("proxylog")
	start := env.Now()
	buf := make([]byte, 64<<10)
	created := spec.Files
	for op := 0; op < spec.Ops; op++ {
		switch rnd.Intn(6) {
		case 0: // replace a cached object: delete + create + write
			i := rnd.Intn(len(paths))
			m.Remove(paths[i])
			created++
			p := fmt.Sprintf("proxy/f%06d", created)
			f, err := m.Create(p)
			if err != nil {
				continue
			}
			f.Write(buf[:spec.MeanFile])
			f.Close()
			paths[i] = p
		default: // read an object
			p := paths[rnd.Intn(len(paths))]
			f, err := m.Open(p)
			if err != nil {
				continue
			}
			for {
				n, _ := f.Read(buf)
				if n == 0 {
					break
				}
			}
			f.Close()
		}
		if op%5 == 4 {
			logf.Write(buf[:16<<10])
		}
	}
	return Result{Name: "webproxy", Elapsed: env.Now() - start, Ops: int64(spec.Ops)}
}
