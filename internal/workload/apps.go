package workload

import (
	"fmt"

	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// Application workloads of Figure 2.

// TarUnpack expands an archive into a fresh tree: sequential archive read
// interleaved with file creates and writes, in archive (sorted) order.
func TarUnpack(env *sim.Env, m *vfs.Mount, spec TreeSpec, archive, dst string) Result {
	m.DropCaches()
	start := env.Now()
	af, err := m.Open(archive)
	if err != nil {
		panic(err)
	}
	apos := int64(0)
	buf := make([]byte, 64<<10)
	spec.Paths(func(path string, dir bool, size int) {
		full := join(dst, path)
		if dir {
			m.MkdirAll(full)
			return
		}
		f, err := m.Create(full)
		if err != nil {
			panic(err)
		}
		for size > 0 {
			n := size
			if n > len(buf) {
				n = len(buf)
			}
			af.ReadAt(buf[:n], apos) // archive is read sequentially
			apos += int64(n)
			f.Write(buf[:n])
			size -= n
		}
		f.Close()
	})
	m.Sync()
	return Result{Name: "tar", Elapsed: env.Now() - start, Bytes: apos}
}

// TarPack reads a tree and writes it into a single archive file.
func TarPack(env *sim.Env, m *vfs.Mount, src, archive string) Result {
	m.DropCaches()
	start := env.Now()
	af, err := m.Create(archive)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 64<<10)
	var total int64
	Walk(m, src, func(path string, e vfs.DirEntry) bool {
		if e.Dir {
			return true
		}
		f, err := m.Open(path)
		if err != nil {
			return true
		}
		for {
			n, _ := f.Read(buf)
			if n == 0 {
				break
			}
			af.Write(buf[:n])
			total += int64(n)
		}
		f.Close()
		return true
	})
	af.Fsync()
	af.Close()
	return Result{Name: "untar", Elapsed: env.Now() - start, Bytes: total}
}

// GitClone copies a source tree to a destination (working tree) and writes
// a single pack file of comparable size (object store), as a local clone
// does.
func GitClone(env *sim.Env, m *vfs.Mount, src, dst string) Result {
	m.DropCaches()
	start := env.Now()
	m.MkdirAll(dst + "/.git")
	pack, _ := m.Create(dst + "/.git/pack")
	buf := make([]byte, 64<<10)
	var total int64
	Walk(m, src, func(path string, e vfs.DirEntry) bool {
		rel := path[len(src)+1:]
		if e.Dir {
			m.MkdirAll(join(dst, rel))
			return true
		}
		in, err := m.Open(path)
		if err != nil {
			return true
		}
		out, err := m.Create(join(dst, rel))
		if err != nil {
			return true
		}
		for {
			n, _ := in.Read(buf)
			if n == 0 {
				break
			}
			out.Write(buf[:n])
			pack.Write(buf[:n]) // objects land in the pack too
			total += int64(n)
		}
		in.Close()
		out.Close()
		return true
	})
	pack.Fsync()
	pack.Close()
	m.Sync()
	return Result{Name: "git_clone", Elapsed: env.Now() - start, Bytes: 2 * total}
}

// GitDiff walks the tree stat-ing everything and reads the ~20% of files
// that differ between the two tags.
func GitDiff(env *sim.Env, m *vfs.Mount, src string) Result {
	m.DropCaches()
	start := env.Now()
	rnd := sim.NewRand(17)
	buf := make([]byte, 64<<10)
	var read int64
	Walk(m, src, func(path string, e vfs.DirEntry) bool {
		m.Stat(path)
		if !e.Dir && rnd.Intn(5) == 0 {
			f, err := m.Open(path)
			if err != nil {
				return true
			}
			for {
				n, _ := f.Read(buf)
				if n == 0 {
					break
				}
				env.Charge(psDuration(n, grepScanPsPerByte)) // diff compare
				read += int64(n)
			}
			f.Close()
		}
		return true
	})
	return Result{Name: "git_diff", Elapsed: env.Now() - start, Bytes: read}
}

// Rsync copies src to dst. Without inPlace each file is written to a
// temporary name, fsynced by rsync's default settings only at the end,
// and renamed into place; with --in-place the data is written directly to
// the destination file (§7.2).
func Rsync(env *sim.Env, m *vfs.Mount, src, dst string, inPlace bool) Result {
	m.DropCaches()
	start := env.Now()
	buf := make([]byte, 64<<10)
	var total int64
	seq := 0
	Walk(m, src, func(path string, e vfs.DirEntry) bool {
		rel := path[len(src)+1:]
		if e.Dir {
			m.MkdirAll(join(dst, rel))
			return true
		}
		in, err := m.Open(path)
		if err != nil {
			return true
		}
		target := join(dst, rel)
		name := target
		if !inPlace {
			seq++
			name = join(dst, fmt.Sprintf(".tmp.%06d", seq))
		}
		out, err := m.Create(name)
		if err != nil {
			in.Close()
			return true
		}
		for {
			n, _ := in.Read(buf)
			if n == 0 {
				break
			}
			out.Write(buf[:n])
			total += int64(n)
		}
		out.Close()
		in.Close()
		if !inPlace {
			if err := m.Rename(name, target); err != nil {
				panic(err)
			}
		}
		return true
	})
	m.Sync()
	name := "rsync"
	if inPlace {
		name = "rsync_in_place"
	}
	return Result{Name: name, Elapsed: env.Now() - start, Bytes: total}
}

// MailServer models the Dovecot maildir benchmark (§7.2): folders of
// messages; each operation is a read (open + read a message) or an update
// (flag rewrite, move to another folder, or delete+recreate), updates
// fsynced as mail servers do.
func MailServer(env *sim.Env, m *vfs.Mount, folders, msgsPerFolder, ops int) Result {
	rnd := sim.NewRand(23)
	msgSize := func() int { return 2048 + rnd.Intn(12<<10) }
	// Initialize the mailbox (untimed).
	payload := make([]byte, 16<<10)
	for fo := 0; fo < folders; fo++ {
		m.MkdirAll(fmt.Sprintf("mail/folder%02d", fo))
		for i := 0; i < msgsPerFolder; i++ {
			f, err := m.Create(fmt.Sprintf("mail/folder%02d/msg%05d", fo, i))
			if err != nil {
				panic(err)
			}
			f.Write(payload[:msgSize()])
			f.Close()
		}
	}
	m.Sync()
	m.DropCaches()

	// Live message set per folder (moves/deletes change it).
	nextID := msgsPerFolder
	live := make([][]string, folders)
	for fo := range live {
		for i := 0; i < msgsPerFolder; i++ {
			live[fo] = append(live[fo], fmt.Sprintf("msg%05d", i))
		}
	}
	pathOf := func(fo int, name string) string {
		return fmt.Sprintf("mail/folder%02d/%s", fo, name)
	}

	start := env.Now()
	buf := make([]byte, 16<<10)
	for op := 0; op < ops; op++ {
		fo := rnd.Intn(folders)
		if len(live[fo]) == 0 {
			continue
		}
		idx := rnd.Intn(len(live[fo]))
		name := live[fo][idx]
		switch {
		case rnd.Intn(2) == 0: // read
			f, err := m.Open(pathOf(fo, name))
			if err != nil {
				continue
			}
			for {
				n, _ := f.Read(buf)
				if n == 0 {
					break
				}
			}
			f.Close()
		case rnd.Intn(3) == 0: // move to another folder
			dst := rnd.Intn(folders)
			nextID++
			newName := fmt.Sprintf("msg%05d", nextID)
			if err := m.Rename(pathOf(fo, name), pathOf(dst, newName)); err != nil {
				continue
			}
			live[fo] = append(live[fo][:idx], live[fo][idx+1:]...)
			live[dst] = append(live[dst], newName)
		case rnd.Intn(3) == 0: // delete
			if err := m.Remove(pathOf(fo, name)); err != nil {
				continue
			}
			live[fo] = append(live[fo][:idx], live[fo][idx+1:]...)
		default: // mark: rewrite the flag region and fsync
			f, err := m.OpenFile(pathOf(fo, name), false, false)
			if err != nil {
				continue
			}
			f.WriteAt([]byte("\\Seen"), 32)
			f.Fsync()
			f.Close()
		}
	}
	return Result{Name: "dovecot", Elapsed: env.Now() - start, Ops: int64(ops)}
}
