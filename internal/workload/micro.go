package workload

import (
	"fmt"
	"time"

	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// Microbenchmarks of Table 1/3.

// SequentialWrite writes one file of total bytes in chunk-sized calls
// (fio-style), ending with fsync.
func SequentialWrite(env *sim.Env, m *vfs.Mount, total int64, chunk int) Result {
	start := env.Now()
	f, err := m.Create("bigfile")
	if err != nil {
		panic(err)
	}
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i)
	}
	for written := int64(0); written < total; written += int64(chunk) {
		f.Write(buf)
	}
	f.Fsync()
	f.Close()
	return Result{Name: "seq_write", Elapsed: env.Now() - start, Bytes: total}
}

// SequentialRead re-reads the file written by SequentialWrite after
// dropping caches.
func SequentialRead(env *sim.Env, m *vfs.Mount, chunk int) Result {
	m.DropCaches()
	f, err := m.Open("bigfile")
	if err != nil {
		panic(err)
	}
	start := env.Now()
	buf := make([]byte, chunk)
	var total int64
	for {
		n, _ := f.Read(buf)
		if n == 0 {
			break
		}
		total += int64(n)
	}
	f.Close()
	return Result{Name: "seq_read", Elapsed: env.Now() - start, Bytes: total}
}

// RandomWrite performs count random writes of writeSize bytes into an
// existing fileSize-byte file, then one fsync (§7.1). 4 KiB writes are
// block-aligned; smaller writes land at arbitrary offsets.
func RandomWrite(env *sim.Env, m *vfs.Mount, fileSize int64, count int, writeSize int) Result {
	// Build the target file first (not timed).
	f, err := m.Create("randfile")
	if err != nil {
		panic(err)
	}
	big := make([]byte, 1<<20)
	for w := int64(0); w < fileSize; w += int64(len(big)) {
		f.Write(big)
	}
	f.Fsync()
	m.DropCaches()
	f, _ = m.Open("randfile")

	rnd := sim.NewRand(11)
	buf := make([]byte, writeSize)
	start := env.Now()
	for i := 0; i < count; i++ {
		var off int64
		if writeSize >= vfs.PageSize {
			off = rnd.Int63n(fileSize/int64(writeSize)) * int64(writeSize)
		} else {
			off = rnd.Int63n(fileSize - int64(writeSize))
		}
		f.WriteAt(buf, off)
	}
	f.Fsync()
	f.Close()
	return Result{
		Name:    fmt.Sprintf("rand_write_%d", writeSize),
		Elapsed: env.Now() - start,
		Bytes:   int64(count) * int64(writeSize),
		Ops:     int64(count),
	}
}

// TokuBench creates n 200-byte files in a balanced directory tree with
// fanout 128 (§7.1), reporting creation throughput.
func TokuBench(env *sim.Env, m *vfs.Mount, n int) Result {
	const fanout = 128
	payload := make([]byte, 200)
	start := env.Now()
	created := 0
	var makeLevel func(dir string, remaining int) int
	makeLevel = func(dir string, remaining int) int {
		if remaining <= 0 {
			return 0
		}
		if err := m.MkdirAll(dir); err != nil && err != vfs.ErrExist {
			panic(err)
		}
		if remaining <= fanout {
			for i := 0; i < remaining; i++ {
				f, err := m.Create(fmt.Sprintf("%s/f%07d", dir, created+i))
				if err != nil {
					panic(err)
				}
				f.Write(payload)
				f.Close()
			}
			created += remaining
			return remaining
		}
		per := (remaining + fanout - 1) / fanout
		done := 0
		for i := 0; i < fanout && done < remaining; i++ {
			want := per
			if remaining-done < want {
				want = remaining - done
			}
			done += makeLevel(fmt.Sprintf("%s/d%03d", dir, i), want)
		}
		return done
	}
	makeLevel("tokubench", n)
	m.Sync()
	return Result{Name: "tokubench", Elapsed: env.Now() - start, Ops: int64(n)}
}

// grepScanPsPerByte models grep's own CPU cost per byte scanned.
const grepScanPsPerByte = 600 // ~1.7 GB/s

// Grep recursively reads every file under root with a cold cache,
// charging the scan cost (§7.1's cpu_to_be64 search).
func Grep(env *sim.Env, m *vfs.Mount, root string) Result {
	m.DropCaches()
	start := env.Now()
	buf := make([]byte, 64<<10)
	var scanned int64
	Walk(m, root, func(path string, e vfs.DirEntry) bool {
		if e.Dir {
			return true
		}
		f, err := m.Open(path)
		if err != nil {
			return true
		}
		for {
			n, _ := f.Read(buf)
			if n == 0 {
				break
			}
			env.Charge(psDuration(n, grepScanPsPerByte))
			scanned += int64(n)
		}
		f.Close()
		return true
	})
	return Result{Name: "grep", Elapsed: env.Now() - start, Bytes: scanned}
}

// Find walks the tree with a cold cache, stat-ing every entry and matching
// names (find -name wait.c).
func Find(env *sim.Env, m *vfs.Mount, root string) Result {
	m.DropCaches()
	start := env.Now()
	var ops int64
	Walk(m, root, func(path string, e vfs.DirEntry) bool {
		if _, err := m.Stat(path); err == nil {
			ops++
		}
		env.Compare(len(e.Name)) // name match
		return true
	})
	return Result{Name: "find", Elapsed: env.Now() - start, Ops: ops}
}

// RecursiveDelete removes the tree at root with a cold cache (rm -rf).
func RecursiveDelete(env *sim.Env, m *vfs.Mount, root string) Result {
	m.DropCaches()
	start := env.Now()
	if err := m.RemoveAll(root); err != nil {
		panic(err)
	}
	m.Sync()
	return Result{Name: "rm", Elapsed: env.Now() - start}
}

func psDuration(bytes int, ps int64) time.Duration {
	return time.Duration(int64(bytes) * ps / 1000)
}
