// Package wal implements the Bε-tree redo log engine of BetrFS v0.6.
//
// The log is a circular buffer in a statically allocated disk region (§3.1).
// Each entry carries a sequence number and a checksum used to validate
// integrity during recovery; a recovery hint (the caller persists it in its
// superblock) records a recent starting point for the scan.
//
// The log supports the reference counts on log sections that the
// conditional-logging optimization (§3.3) requires: a dirty VFS inode pins
// the section of the log holding its creation record until the inode is
// written into the Bε-tree, so the circular buffer cannot reclaim it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"betrfs/internal/metrics"
	"betrfs/internal/sim"
	"betrfs/internal/stor"
)

const (
	recMagic   = 0xbee7f00d
	headerSize = 4 + 4 + 4 + 8 + 1 // magic, epoch, len, lsn, type
	crcSize    = 4
)

// RecordType distinguishes log entries; the meaning of payloads belongs to
// the caller, except PadType which the log uses internally at wrap-around.
type RecordType byte

// PadType fills the tail of the region when a record would wrap.
const PadType RecordType = 0xff

// ErrLogFull is returned by Append when the circular region has no space;
// the caller must checkpoint (or release pins) and retry.
var ErrLogFull = errors.New("wal: log region full")

// Record is one recovered log entry.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
}

// Hint is the recovery starting point a caller persists in its superblock.
type Hint struct {
	Offset int64  // byte offset of the oldest live record
	LSN    uint64 // its sequence number
	Epoch  uint32 // log incarnation; records from other epochs are stale
}

// Log is a circular redo log over a fixed storage region.
//
// Methods are serialized by an internal mutex so the background flusher
// and concurrent readers of log state (free bytes, durable LSN) never
// race with appends (DESIGN.md §9). The Bε-tree additionally orders all
// appends under its writer lock, so record order equals MSN order.
type Log struct {
	env   *sim.Env
	f     stor.File
	cap   int64
	epoch uint32

	mu sync.Mutex

	nextLSN uint64
	durable uint64 // highest LSN guaranteed on stable storage

	// head/tail are monotonically increasing byte positions; the disk
	// offset is position mod cap. Live bytes are [tail, head).
	head int64
	tail int64

	// discarded is the monotonic position up to which reclaimed log space
	// has been handed back to the device via TRIM. It trails tail by a
	// full checkpoint: ckptTail records the tail embedded in the most
	// recent durable superblock, and DiscardReclaimed trims only below
	// the PREVIOUS superblock's tail — the older of the two superblock
	// slots recovery can fall back to — so no recovery starting point any
	// crash-plus-corruption scenario selects lies inside a trimmed range.
	discarded int64
	ckptTail  int64

	// pending holds appended-but-unflushed bytes, destined for positions
	// [flushedTo, head).
	pending   []byte
	flushedTo int64

	// positions records (lsn, start position) so reclamation can find
	// the byte position of a given LSN.
	positions []lsnPos

	// pins maps LSN -> refcount; reclamation never passes the minimum
	// pinned LSN (conditional logging).
	pins map[uint64]int

	// SyncDelay models the synchronous commit path latency beyond the
	// device flush itself (context switches, plug/unplug); OLTP-style
	// fsync-heavy workloads are sensitive to it.
	SyncDelay time.Duration

	stats Stats

	// Pre-resolved registry instruments (see internal/metrics).
	mAppend       *metrics.Counter
	mFsync        *metrics.Counter
	mWriteOut     *metrics.Counter
	mBytes        *metrics.Counter
	mPad          *metrics.Counter
	mPinBlocked   *metrics.Counter
	mDiscardCount *metrics.Counter
	mDiscardBytes *metrics.Counter
}

type lsnPos struct {
	lsn uint64
	pos int64
}

// Stats counts log activity.
type Stats struct {
	Appends     int64
	Flushes     int64
	BytesLogged int64
	PadBytes    int64
	PinsBlocked int64 // reclaim attempts stopped early by pins
}

// New creates a log over region f starting empty at LSN 1. The epoch
// distinguishes this incarnation of the log from stale bytes left by a
// previous one occupying the same region.
func New(env *sim.Env, f stor.File, epoch uint32) *Log {
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	// Pre-register the replay counter Recover increments, so the full
	// metric catalog is visible on a registry even before a recovery runs.
	reg.Counter("wal.replay.records")
	return &Log{
		env:           env,
		f:             f,
		cap:           f.Capacity(),
		epoch:         epoch,
		nextLSN:       1,
		pins:          make(map[uint64]int),
		mAppend:       reg.Counter("wal.append.count"),
		mFsync:        reg.Counter("wal.fsync.count"),
		mWriteOut:     reg.Counter("wal.writeout.count"),
		mBytes:        reg.Counter("wal.bytes.logged"),
		mPad:          reg.Counter("wal.bytes.pad"),
		mPinBlocked:   reg.Counter("wal.reclaim.pinblocked"),
		mDiscardCount: reg.Counter("wal.discard.count"),
		mDiscardBytes: reg.Counter("wal.discard.bytes"),
	}
}

// Epoch returns the log incarnation number.
func (l *Log) Epoch() uint32 { return l.epoch }

// Stats returns cumulative log statistics.
func (l *Log) Stats() *Stats { return &l.stats }

// NextLSN returns the LSN the next Append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// FreeBytes returns how much circular space remains before Append fails.
func (l *Log) FreeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cap - (l.head - l.tail)
}

// LiveBytes returns the space occupied by unreclaimed records.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head - l.tail
}

func recordSize(payload int) int64 {
	return int64(headerSize + payload + crcSize)
}

func (l *Log) freeBytesLocked() int64 { return l.cap - (l.head - l.tail) }

// Append adds a record and returns its LSN. The record is buffered in
// memory until Flush. ErrLogFull means the caller must reclaim space.
func (l *Log) Append(t RecordType, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	need := recordSize(len(payload))
	if need > l.cap {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds log capacity %d", need, l.cap)
	}
	// Records never wrap: pad to the end of the region if necessary. A
	// sliver too small to hold even a pad record is skipped as implicit
	// filler; recovery applies the same rule.
	if rem := l.cap - l.head%l.cap; rem < need {
		if l.freeBytesLocked() < rem+need {
			return 0, ErrLogFull
		}
		if rem < int64(headerSize+crcSize) {
			l.pending = append(l.pending, make([]byte, rem)...)
			l.head += rem
			l.stats.PadBytes += rem
			l.mPad.Add(rem)
		} else {
			l.appendPad(int(rem))
		}
	} else if l.freeBytesLocked() < need {
		return 0, ErrLogFull
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.positions = append(l.positions, lsnPos{lsn: lsn, pos: l.head})
	l.encode(t, lsn, payload)
	l.stats.Appends++
	l.stats.BytesLogged += need
	l.mAppend.Inc()
	l.mBytes.Add(need)
	l.env.Trace("wal", "append", "", int64(lsn))
	l.env.Charge(l.env.Costs.MessageOverhead)
	return lsn, nil
}

// appendPad emits a pad record of exactly n bytes (n >= header+crc).
func (l *Log) appendPad(n int) {
	payload := make([]byte, n-headerSize-crcSize)
	l.encode(PadType, 0, payload)
	l.stats.PadBytes += int64(n)
	l.mPad.Add(int64(n))
}

func (l *Log) encode(t RecordType, lsn uint64, payload []byte) {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], recMagic)
	binary.BigEndian.PutUint32(hdr[4:], l.epoch)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[12:], lsn)
	hdr[20] = byte(t)
	rec := append(append(append([]byte{}, hdr[:]...), payload...), 0, 0, 0, 0)
	crc := crc32.ChecksumIEEE(rec[:len(rec)-crcSize])
	binary.BigEndian.PutUint32(rec[len(rec)-crcSize:], crc)
	l.env.Serialize(len(rec))
	l.env.Checksum(len(rec))
	l.pending = append(l.pending, rec...)
	l.head += int64(len(rec))
}

// WriteOut writes all pending records to the region without a
// durability barrier — background log writeback. DurableLSN does not
// advance; a crash may tear or drop the written tail, which recovery
// detects via record CRCs. On a device error the unwritten tail stays
// pending, so a later WriteOut or Flush retries it.
func (l *Log) WriteOut() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeOut()
}

func (l *Log) writeOut() error {
	if len(l.pending) == 0 {
		return nil
	}
	l.mWriteOut.Inc()
	// The pending buffer may straddle the wrap point only at pad
	// boundaries, so writes can be split at region end safely.
	data := l.pending
	pos := l.flushedTo
	for len(data) > 0 {
		off := pos % l.cap
		n := int64(len(data))
		if off+n > l.cap {
			n = l.cap - off
		}
		if err := l.f.WriteAt(data[:n], off); err != nil {
			// Keep everything from the failed write onward pending.
			l.pending = append(l.pending[:0:0], data...)
			l.flushedTo = pos
			return err
		}
		data = data[n:]
		pos += n
	}
	l.flushedTo = l.head
	l.pending = l.pending[:0]
	return nil
}

// Flush writes all pending records to the region and issues a durability
// barrier; afterwards DurableLSN covers everything appended so far. On
// error DurableLSN does not advance: nothing new is promised durable.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.writeOut(); err != nil {
		return err
	}
	if err := l.f.Flush(); err != nil {
		return err
	}
	l.env.Charge(l.SyncDelay)
	l.durable = l.nextLSN - 1
	l.stats.Flushes++
	l.mFsync.Inc()
	l.env.Trace("wal", "fsync", "", int64(l.durable))
	return nil
}

// Pin prevents reclamation of the log at or beyond lsn; the returned
// function releases the pin. Used by conditional logging to keep inode
// creation records alive while the inode is only dirty in the VFS.
func (l *Log) Pin(lsn uint64) func() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pins[lsn]++
	released := false
	return func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if released {
			return
		}
		released = true
		if l.pins[lsn]--; l.pins[lsn] <= 0 {
			delete(l.pins, lsn)
		}
	}
}

func (l *Log) minPinned() (uint64, bool) {
	var min uint64
	found := false
	for lsn := range l.pins {
		if !found || lsn < min {
			min = lsn
			found = true
		}
	}
	return min, found
}

// Reclaim releases log space for all records with LSN < upto (typically
// the LSN of the last completed checkpoint), except that pinned sections
// survive. It returns the new recovery hint.
func (l *Log) Reclaim(upto uint64) Hint {
	l.mu.Lock()
	defer l.mu.Unlock()
	if min, ok := l.minPinned(); ok && min < upto {
		upto = min
		l.stats.PinsBlocked++
		l.mPinBlocked.Inc()
	}
	i := 0
	for i < len(l.positions) && l.positions[i].lsn < upto {
		i++
	}
	if i > 0 {
		// Tail moves to the start of the first live record, or to head
		// if everything was reclaimed.
		if i < len(l.positions) {
			l.tail = l.positions[i].pos
		} else {
			l.tail = l.head
		}
		l.positions = l.positions[i:]
	}
	return l.hint()
}

// DiscardReclaimed trims reclaimed log space, telling the device's FTL
// the dead records no longer need preserving. The caller invokes it once
// per checkpoint, right after the new superblock is durable. Because the
// store keeps TWO superblock generations and may fall back to the older
// one, the trimmed range is aged one checkpoint: this call trims only
// below the tail captured by the PREVIOUS call — the recovery hint
// embedded in the older durable slot — so no starting point recovery can
// select lies inside a trimmed range. Positions the ring has already
// physically reused for newer records are skipped, not trimmed. Discard
// failures are advisory and ignored — the space is simply not handed
// back.
func (l *Log) DiscardReclaimed() {
	l.mu.Lock()
	defer l.mu.Unlock()
	bound := l.ckptTail
	l.ckptTail = l.tail
	// Physical slots below head-cap hold newer records now; the dead
	// positions there are gone already and must not be touched.
	if reused := l.head - l.cap; l.discarded < reused {
		l.discarded = reused
	}
	for l.discarded < bound {
		off := l.discarded % l.cap
		n := bound - l.discarded
		if off+n > l.cap {
			n = l.cap - off // split at the wrap point
		}
		if err := l.f.Discard(off, n); err == nil {
			l.mDiscardCount.Inc()
			l.mDiscardBytes.Add(n)
		}
		l.discarded += n
	}
}

// Hint returns the current recovery starting point.
func (l *Log) Hint() Hint {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hint()
}

func (l *Log) hint() Hint {
	if len(l.positions) == 0 {
		return Hint{Offset: l.head % l.cap, LSN: l.nextLSN, Epoch: l.epoch}
	}
	return Hint{Offset: l.positions[0].pos % l.cap, LSN: l.positions[0].lsn, Epoch: l.epoch}
}

// Recover scans the region from hint, returning every valid record in LSN
// order. The scan stops at the first record that fails validation (torn
// write, stale data, or wrap past the end of the log); that is a normal
// end-of-log, not an error. A device read error aborts the scan and is
// returned alongside the records recovered so far — the caller decides
// whether a partially unreadable log is fatal for the mount.
func Recover(env *sim.Env, f stor.File, hint Hint) ([]Record, error) {
	var mReplay *metrics.Counter
	if env.Metrics != nil {
		mReplay = env.Metrics.Counter("wal.replay.records")
	} else {
		mReplay = &metrics.Counter{}
	}
	capacity := f.Capacity()
	var out []Record
	pos := hint.Offset
	want := hint.LSN
	// Bound the scan to one full pass around the region.
	for scanned := int64(0); scanned < capacity; {
		// Slivers at the region end too small for any record are
		// implicit filler (see Append); skip to the next lap.
		if rem := capacity - pos%capacity; rem < int64(headerSize+crcSize) {
			pos = (pos + rem) % capacity
			scanned += rem
			continue
		}
		var hdr [headerSize]byte
		if err := readWrapped(f, hdr[:], pos, capacity); err != nil {
			return out, err
		}
		if binary.BigEndian.Uint32(hdr[0:]) != recMagic {
			break
		}
		if binary.BigEndian.Uint32(hdr[4:]) != hint.Epoch {
			break // stale bytes from a previous log incarnation
		}
		plen := int64(binary.BigEndian.Uint32(hdr[8:]))
		lsn := binary.BigEndian.Uint64(hdr[12:])
		t := RecordType(hdr[20])
		total := recordSize(int(plen))
		if total > capacity-scanned {
			break
		}
		rec := make([]byte, total)
		if err := readWrapped(f, rec, pos, capacity); err != nil {
			return out, err
		}
		env.Checksum(len(rec))
		crc := binary.BigEndian.Uint32(rec[total-crcSize:])
		if crc32.ChecksumIEEE(rec[:total-crcSize]) != crc {
			break
		}
		if t != PadType {
			if lsn != want {
				break // out-of-sequence: stale data from a prior lap
			}
			out = append(out, Record{LSN: lsn, Type: t, Payload: append([]byte{}, rec[headerSize:total-crcSize]...)})
			mReplay.Inc()
			want = lsn + 1
		}
		pos = (pos + total) % capacity
		scanned += total
	}
	return out, nil
}

func readWrapped(f stor.File, p []byte, pos, capacity int64) error {
	off := pos % capacity
	n := int64(len(p))
	if off+n <= capacity {
		return f.ReadAt(p, off)
	}
	first := capacity - off
	if err := f.ReadAt(p[:first], off); err != nil {
		return err
	}
	return f.ReadAt(p[first:], 0)
}

// Capacity returns the size of the circular region in bytes.
func (l *Log) Capacity() int64 { return l.cap }
