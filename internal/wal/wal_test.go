package wal

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/sim"
	"betrfs/internal/stor"
)

// memFile is a minimal in-memory stor.File for unit testing the log in
// isolation from the device and SFL layers.
type memFile struct {
	env  *sim.Env
	data []byte
}

func newMemFile(env *sim.Env, size int64) *memFile {
	return &memFile{env: env, data: make([]byte, size)}
}

func (m *memFile) ReadAt(p []byte, off int64) error  { copy(p, m.data[off:]); return nil }
func (m *memFile) WriteAt(p []byte, off int64) error { copy(m.data[off:], p); return nil }
func (m *memFile) SubmitRead(p []byte, off int64) stor.Wait {
	m.ReadAt(p, off)
	return func() error { return nil }
}
func (m *memFile) SubmitWrite(p []byte, off int64) stor.Wait {
	m.WriteAt(p, off)
	return func() error { return nil }
}
func (m *memFile) Flush() error { return nil }
func (m *memFile) Discard(off, length int64) error {
	copy(m.data[off:off+length], make([]byte, length))
	return nil
}
func (m *memFile) Capacity() int64 { return int64(len(m.data)) }

func newLog(t *testing.T, size int64) (*sim.Env, *memFile, *Log) {
	t.Helper()
	env := sim.NewEnv(1)
	f := newMemFile(env, size)
	return env, f, New(env, f, 1)
}

func TestAppendFlushRecover(t *testing.T) {
	env, f, l := newLog(t, 1<<20)
	var want []string
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("record-%d", i)
		want = append(want, p)
		if _, err := l.Append(RecordType(1), []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	recs, rerr := Recover(env, f, Hint{Offset: 0, LSN: 1, Epoch: 1})
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if string(r.Payload) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, r.Payload, want[i])
		}
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
	}
}

func TestUnflushedRecordsNotRecovered(t *testing.T) {
	env, f, l := newLog(t, 1<<20)
	l.Append(1, []byte("durable"))
	l.Flush()
	l.Append(1, []byte("volatile"))
	// no flush
	recs, rerr := Recover(env, f, Hint{Offset: 0, LSN: 1, Epoch: 1})
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("recovered %v", recs)
	}
}

func TestDurableLSNTracksFlush(t *testing.T) {
	_, _, l := newLog(t, 1<<20)
	lsn, _ := l.Append(1, []byte("x"))
	if l.DurableLSN() != 0 {
		t.Fatal("nothing should be durable before flush")
	}
	l.Flush()
	if l.DurableLSN() != lsn {
		t.Fatalf("durable=%d, want %d", l.DurableLSN(), lsn)
	}
}

func TestCorruptRecordStopsRecovery(t *testing.T) {
	env, f, l := newLog(t, 1<<20)
	l.Append(1, []byte("aaaa"))
	l.Append(1, []byte("bbbb"))
	l.Append(1, []byte("cccc"))
	l.Flush()
	// Corrupt the second record's payload.
	first := recordSize(4)
	f.data[first+headerSize+1] ^= 0xff
	recs, rerr := Recover(env, f, Hint{Offset: 0, LSN: 1, Epoch: 1})
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records past corruption, want 1", len(recs))
	}
}

func TestWrapAround(t *testing.T) {
	env, f, l := newLog(t, 4096)
	payload := bytes.Repeat([]byte{7}, 100)
	// Fill most of the region, reclaim, and keep appending to force a wrap.
	var lastHint Hint
	total := 0
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(1, payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		l.Flush()
		lastHint = l.Reclaim(lsn) // everything before the newest record dies
		total++
	}
	if l.head <= l.cap {
		t.Fatal("log never wrapped; test is not exercising wrap-around")
	}
	recs, rerr := Recover(env, f, lastHint)
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records after wrap, want 1", len(recs))
	}
	if recs[0].LSN != uint64(total) {
		t.Fatalf("recovered lsn %d, want %d", recs[0].LSN, total)
	}
}

func TestLogFull(t *testing.T) {
	_, _, l := newLog(t, 4096)
	payload := bytes.Repeat([]byte{1}, 1000)
	var err error
	n := 0
	for n < 100 {
		if _, err = l.Append(1, payload); err != nil {
			break
		}
		n++
	}
	if err != ErrLogFull {
		t.Fatalf("expected ErrLogFull, got %v after %d appends", err, n)
	}
	// Reclaiming everything lets appends proceed again.
	l.Flush()
	l.Reclaim(l.NextLSN())
	if _, err := l.Append(1, payload); err != nil {
		t.Fatalf("append after reclaim: %v", err)
	}
}

func TestPinBlocksReclaim(t *testing.T) {
	_, _, l := newLog(t, 1<<20)
	lsn1, _ := l.Append(1, []byte("pinned"))
	l.Append(1, []byte("later"))
	l.Flush()
	unpin := l.Pin(lsn1)
	l.Reclaim(l.NextLSN())
	if l.LiveBytes() == 0 {
		t.Fatal("pin did not prevent reclamation")
	}
	if l.Stats().PinsBlocked != 1 {
		t.Fatalf("PinsBlocked=%d", l.Stats().PinsBlocked)
	}
	unpin()
	l.Reclaim(l.NextLSN())
	if l.LiveBytes() != 0 {
		t.Fatalf("after unpin, %d live bytes remain", l.LiveBytes())
	}
}

func TestUnpinIdempotent(t *testing.T) {
	_, _, l := newLog(t, 1<<20)
	lsn, _ := l.Append(1, []byte("x"))
	unpin := l.Pin(lsn)
	unpin()
	unpin() // double release must not underflow another pin
	unpin2 := l.Pin(lsn)
	_ = unpin2
	if len(l.pins) != 1 || l.pins[lsn] != 1 {
		t.Fatalf("pin state corrupted: %v", l.pins)
	}
}

func TestRecoverFromHintMidLog(t *testing.T) {
	env, f, l := newLog(t, 1<<20)
	l.Append(1, []byte("old-1"))
	l.Append(1, []byte("old-2"))
	l.Flush()
	hint := l.Reclaim(3) // both old records reclaimed
	l.Append(1, []byte("new-3"))
	l.Flush()
	recs, rerr := Recover(env, f, hint)
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "new-3" {
		t.Fatalf("recovered %v from mid-log hint", recs)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	_, _, l := newLog(t, 4096)
	if _, err := l.Append(1, make([]byte, 8192)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestLoggingChargesTime(t *testing.T) {
	env, _, l := newLog(t, 1<<20)
	l.Append(1, bytes.Repeat([]byte{1}, 4096))
	l.Flush()
	if env.Now() == 0 {
		t.Fatal("logging charged no simulated time")
	}
}

// TestTornTailEveryByteBoundary cuts the flushed log mid-record at every
// byte boundary of the final record — the torn-write shapes a crashed
// device flush can leave — and checks Recover returns exactly the intact
// prefix, never panics, and never fabricates a record. Both a zeroed
// suffix (fresh region) and a stale-garbage suffix (recycled region) are
// exercised.
func TestTornTailEveryByteBoundary(t *testing.T) {
	const nrec = 20
	env, f, l := newLog(t, 1<<20)
	for i := 0; i < nrec; i++ {
		// Non-zero payloads so a zeroed suffix cannot masquerade as a
		// valid record body whose checksum happens to hold.
		p := bytes.Repeat([]byte{byte(i + 1)}, 50+i*7)
		if _, err := l.Append(RecordType(1), p); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	lastPos := l.positions[len(l.positions)-1].pos
	lastLen := l.head - lastPos
	pristine := append([]byte{}, f.data...)
	hint := Hint{Offset: 0, LSN: 1, Epoch: 1}

	for _, fill := range []byte{0x00, 0xa5} {
		for cut := int64(0); cut < lastLen; cut++ {
			copy(f.data, pristine)
			for i := lastPos + cut; i < l.head; i++ {
				f.data[i] = fill
			}
			recs, rerr := Recover(env, f, hint)
			if rerr != nil {
				t.Fatalf("recover: %v", rerr)
			}
			if len(recs) != nrec-1 {
				t.Fatalf("fill %#x cut %d: recovered %d records, want %d (flushed prefix)",
					fill, cut, len(recs), nrec-1)
			}
			for i, r := range recs {
				if r.LSN != uint64(i+1) || len(r.Payload) != 50+i*7 || r.Payload[0] != byte(i+1) {
					t.Fatalf("fill %#x cut %d: record %d corrupted (lsn %d, %d bytes)",
						fill, cut, i, r.LSN, len(r.Payload))
				}
			}
		}
	}
	// The full record survives an exact cut at its end.
	copy(f.data, pristine)
	if recs, rerr := Recover(env, f, hint); rerr != nil || len(recs) != nrec {
		t.Fatalf("untorn log recovered %d records (err %v), want %d", len(recs), rerr, nrec)
	}
}

// TestRecoverStopsAtInvalidMiddleRecord is the reordered-persistence
// guarantee: if a crash persists a later record but not an earlier one,
// recovery must stop at the gap rather than replay the later record out
// of order.
func TestRecoverStopsAtInvalidMiddleRecord(t *testing.T) {
	const nrec = 10
	env, f, l := newLog(t, 1<<20)
	for i := 0; i < nrec; i++ {
		if _, err := l.Append(RecordType(1), bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	// Wipe record 6 (index 5) as if its write never reached the platter.
	start := l.positions[5].pos
	end := l.positions[6].pos
	for i := start; i < end; i++ {
		f.data[i] = 0
	}
	recs, rerr := Recover(env, f, Hint{Offset: 0, LSN: 1, Epoch: 1})
	if rerr != nil {
		t.Fatalf("recover: %v", rerr)
	}
	if len(recs) != 5 {
		t.Fatalf("recovered %d records past a hole, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}
