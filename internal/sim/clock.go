// Package sim provides the deterministic simulation substrate used by the
// entire repository: a virtual clock, a calibrated CPU cost model, and a
// seeded random source.
//
// Every component in this reproduction (block devices, allocators, the
// Bε-tree, the VFS, the baseline file systems) charges simulated time to a
// shared Clock instead of consuming wall-clock time. Benchmarks then report
// simulated throughput and latency, which is what makes the performance
// *shape* of the paper reproducible in user-space Go: each design wins or
// loses based on how many instructions and I/Os it issues, not on how fast
// the host machine happens to be.
package sim

import (
	"fmt"
	"time"
)

// Clock is a virtual clock measured in nanoseconds since the start of the
// simulation. It is intentionally not safe for concurrent use: simulations
// are single-goroutine and deterministic.
type Clock struct {
	now int64 // ns
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now) }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost formulas need not guard against rounding underflow.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += int64(d)
	}
}

// AdvanceTo moves the clock forward to t if t is in the future; it never
// moves the clock backwards.
func (c *Clock) AdvanceTo(t time.Duration) {
	if int64(t) > c.now {
		c.now = int64(t)
	}
}

// String formats the current time for logs and test failures.
func (c *Clock) String() string {
	return fmt.Sprintf("t=%s", time.Duration(c.now))
}
