// Package sim provides the deterministic simulation substrate used by the
// entire repository: a virtual clock, a calibrated CPU cost model, a seeded
// random source, and a bounded worker pool for background work.
//
// Every component in this reproduction (block devices, allocators, the
// Bε-tree, the VFS, the baseline file systems) charges simulated time to a
// shared Clock instead of consuming wall-clock time. Benchmarks then report
// simulated throughput and latency, which is what makes the performance
// *shape* of the paper reproducible in user-space Go: each design wins or
// loses based on how many instructions and I/Os it issues, not on how fast
// the host machine happens to be.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock measured in nanoseconds since the start of the
// simulation. All methods are safe for concurrent use: Advance is an atomic
// add, which commutes, so the *total* simulated time of a run is identical
// no matter how concurrent charges interleave. Single-goroutine simulations
// therefore remain bit-for-bit deterministic, and concurrent ones (the
// flusher pool, multi-client benchmarks) are race-free.
type Clock struct {
	now atomic.Int64 // ns
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost formulas need not guard against rounding underflow.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// AdvanceTo moves the clock forward to t if t is in the future; it never
// moves the clock backwards. Implemented as a CAS loop so concurrent
// advances cannot lose the maximum.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// String formats the current time for logs and test failures.
func (c *Clock) String() string {
	return fmt.Sprintf("t=%s", time.Duration(c.now.Load()))
}
