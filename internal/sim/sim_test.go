package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v, want 5ms", c.Now())
	}
	c.Advance(-time.Second) // negative ignored
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("negative advance moved clock to %v", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("clock at %v, want 1s", c.Now())
	}
	c.AdvanceTo(time.Millisecond) // never backwards
	if c.Now() != time.Second {
		t.Fatalf("AdvanceTo moved clock backwards to %v", c.Now())
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(steps []int16) bool {
		c := NewClock()
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvCharges(t *testing.T) {
	env := NewEnv(1)
	env.Memcpy(1 << 20)
	if env.Now() <= 0 {
		t.Fatal("memcpy of 1MiB charged no time")
	}
	// 1 MiB at 8 GiB/s should be roughly 128µs; allow slack.
	if env.Now() < 50*time.Microsecond || env.Now() > 500*time.Microsecond {
		t.Fatalf("memcpy of 1MiB charged %v, want ~128µs", env.Now())
	}
	before := env.Now()
	env.Compare(16)
	if env.Now() <= before {
		t.Fatal("compare charged no time")
	}
	if env.Stats.Memcpy == 0 || env.Stats.Compare == 0 {
		t.Fatalf("stats not accumulated: %+v", env.Stats)
	}
	if env.Stats.Total() != env.Now() {
		t.Fatalf("stats total %v != clock %v", env.Stats.Total(), env.Now())
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed degenerated")
	}
}
