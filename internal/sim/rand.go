package sim

import "sync"

// Rand is a small, fast, deterministic pseudo-random source
// (xorshift64star). The standard library's math/rand would also work, but a
// local implementation keeps the sequence stable across Go releases, which
// matters for reproducible experiment output.
//
// Draws are serialized by a mutex so concurrent components may share one
// source without racing; single-goroutine runs observe the exact same
// sequence as before the lock existed.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand returns a source seeded with seed (zero is remapped so the
// generator never degenerates to a fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
