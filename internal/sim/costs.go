package sim

import "time"

// Costs is the single calibration table for all simulated CPU work.
//
// The values model a ~3 GHz Xeon E3-1220 v6 (the paper's testbed). They are
// calibrated once against the absolute throughputs in Table 1/3 of the
// paper and then used unchanged by every experiment; individual benchmarks
// never carry their own fudge factors.
//
// Per-byte rates are expressed in picoseconds per byte because realistic
// memory-bandwidth costs are well below one nanosecond per byte.
type Costs struct {
	// MemcpyPsPerByte is the cost of copying one byte of memory
	// (large-copy amortized, ~8 GiB/s).
	MemcpyPsPerByte int64
	// ChecksumPsPerByte is the cost of checksumming one byte.
	ChecksumPsPerByte int64
	// ComparePsPerByte is the per-byte cost of a key comparison.
	ComparePsPerByte int64
	// SerializePsPerByte is the per-byte cost of structured
	// encoding/decoding (slightly worse than raw memcpy).
	SerializePsPerByte int64

	// CompareBase is the fixed cost of one key comparison call.
	CompareBase time.Duration
	// MessageOverhead is the fixed cost of creating, routing, or applying
	// one Bε-tree message (allocation bookkeeping, MSN checks, etc.).
	MessageOverhead time.Duration
	// Syscall is the user/kernel boundary crossing cost charged by the
	// VFS for each file-system operation.
	Syscall time.Duration
	// PathComponent is the per-component cost of a VFS path walk that
	// hits the dentry cache.
	PathComponent time.Duration
	// PageCacheOp is the cost of looking up/inserting one page in the
	// VFS page cache radix tree.
	PageCacheOp time.Duration
	// LockUnlock is the cost of an uncontended lock round trip.
	LockUnlock time.Duration
	// KmallocBase is the cost of a slab allocation or free.
	KmallocBase time.Duration
	// VmallocBase is the fixed cost of establishing a vmalloc mapping.
	VmallocBase time.Duration
	// VmallocPerPage is the per-4KiB-page cost of a vmalloc mapping
	// (page-table population).
	VmallocPerPage time.Duration
	// VfreeSizeLookup is the cost of discovering the size of a vmalloc
	// region from the kernel's mapping tree (paid by legacy free paths;
	// elided by the cooperative free-with-size interface of §5).
	VfreeSizeLookup time.Duration
	// TLBShootdown is the cross-CPU invalidation cost paid when a large
	// kernel mapping is torn down.
	TLBShootdown time.Duration
}

// DefaultCosts returns the calibrated cost table.
func DefaultCosts() Costs {
	return Costs{
		MemcpyPsPerByte:    125, // 8 GiB/s
		ChecksumPsPerByte:  250, // 4 GiB/s
		ComparePsPerByte:   250,
		SerializePsPerByte: 220,

		CompareBase:     8 * time.Nanosecond,
		MessageOverhead: 120 * time.Nanosecond,
		Syscall:         900 * time.Nanosecond,
		PathComponent:   250 * time.Nanosecond,
		PageCacheOp:     180 * time.Nanosecond,
		LockUnlock:      40 * time.Nanosecond,
		KmallocBase:     90 * time.Nanosecond,
		VmallocBase:     2500 * time.Nanosecond,
		VmallocPerPage:  55 * time.Nanosecond,
		VfreeSizeLookup: 1800 * time.Nanosecond,
		TLBShootdown:    9000 * time.Nanosecond,
	}
}
