package sim

import (
	"sync"

	"betrfs/internal/metrics"
)

// WorkerPool is the machine's bounded pool for background work: message
// flushing, dirty-node writeback, and checkpoint serialization submit
// tasks here instead of spawning goroutines directly.
//
// The pool has two modes:
//
//   - workers <= 1 (the default): every task runs inline, synchronously,
//     at its submission point. This is the deterministic single-worker
//     mode — the execution order is exactly the order of submission, so
//     single-goroutine simulations stay bit-for-bit identical to a build
//     without the pool.
//   - workers > 1: tasks run on a fixed set of goroutines fed by a
//     bounded channel. Submission blocks when the queue is full
//     (backpressure); TrySubmit never blocks and reports a drop instead.
//
// Counters: `flusher.task.submit` counts every accepted task,
// `flusher.task.inline` and `flusher.task.async` split them by execution
// mode, `flusher.task.dropped` counts TrySubmit rejections, and
// `flusher.drain.count` counts Drain barriers.
type WorkerPool struct {
	env     *Env
	mu      sync.Mutex
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	stop    chan struct{}

	mSubmit  *metrics.Counter
	mInline  *metrics.Counter
	mAsync   *metrics.Counter
	mDropped *metrics.Counter
	mDrain   *metrics.Counter
}

// NewWorkerPool returns a pool attached to env with the given worker
// count. Counts below one are treated as one (inline mode).
func NewWorkerPool(env *Env, workers int) *WorkerPool {
	p := &WorkerPool{
		env:      env,
		mSubmit:  env.Metrics.Counter("flusher.task.submit"),
		mInline:  env.Metrics.Counter("flusher.task.inline"),
		mAsync:   env.Metrics.Counter("flusher.task.async"),
		mDropped: env.Metrics.Counter("flusher.task.dropped"),
		mDrain:   env.Metrics.Counter("flusher.drain.count"),
	}
	p.SetWorkers(workers)
	return p
}

// Workers returns the current worker count.
func (p *WorkerPool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers
}

// SetWorkers reconfigures the pool. Shrinking to one (or fewer) returns
// the pool to deterministic inline mode after draining in-flight tasks.
// It must not be called concurrently with Submit.
func (p *WorkerPool) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.Drain()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		close(p.stop)
		p.stop = nil
		p.tasks = nil
	}
	p.workers = n
	if n > 1 {
		p.tasks = make(chan func(), 2*n)
		p.stop = make(chan struct{})
		for i := 0; i < n; i++ {
			go p.run(p.tasks, p.stop)
		}
	}
}

func (p *WorkerPool) run(tasks chan func(), stop chan struct{}) {
	for {
		select {
		case f := <-tasks:
			f()
			p.wg.Done()
		case <-stop:
			// Drain whatever is still queued so Drain callers never hang.
			for {
				select {
				case f := <-tasks:
					f()
					p.wg.Done()
				default:
					return
				}
			}
		}
	}
}

// Submit runs f: inline when the pool has one worker, otherwise on a
// worker goroutine (blocking if the bounded queue is full).
func (p *WorkerPool) Submit(f func()) {
	p.mSubmit.Inc()
	p.mu.Lock()
	tasks := p.tasks
	p.mu.Unlock()
	if tasks == nil {
		p.mInline.Inc()
		f()
		return
	}
	p.mAsync.Inc()
	p.wg.Add(1)
	tasks <- f
}

// TrySubmit is Submit without backpressure: if the queue is full the task
// is dropped and false is returned. Use it from code paths that hold
// locks a queued task might need — dropping is safe when the work is
// re-triggerable (e.g. an overfull buffer will re-request a flush on the
// next insert).
func (p *WorkerPool) TrySubmit(f func()) bool {
	p.mu.Lock()
	tasks := p.tasks
	p.mu.Unlock()
	if tasks == nil {
		p.mSubmit.Inc()
		p.mInline.Inc()
		f()
		return true
	}
	p.wg.Add(1)
	select {
	case tasks <- f:
		p.mSubmit.Inc()
		p.mAsync.Inc()
		return true
	default:
		p.wg.Done()
		p.mDropped.Inc()
		return false
	}
}

// Go schedules f and returns a wait function that blocks until f has
// finished. In inline mode f runs before Go returns and the wait is a
// no-op; callers therefore observe identical execution order in
// deterministic mode.
func (p *WorkerPool) Go(f func()) (wait func()) {
	p.mu.Lock()
	tasks := p.tasks
	p.mu.Unlock()
	p.mSubmit.Inc()
	if tasks == nil {
		p.mInline.Inc()
		f()
		return func() {}
	}
	p.mAsync.Inc()
	p.wg.Add(1)
	done := make(chan struct{})
	tasks <- func() {
		defer close(done)
		f()
	}
	return func() { <-done }
}

// Drain blocks until every task submitted so far has completed. It is the
// pool's barrier: checkpoint and sync paths call it before declaring
// state durable.
func (p *WorkerPool) Drain() {
	if p.mDrain != nil {
		p.mDrain.Inc()
	}
	p.wg.Wait()
}

// Close drains the pool and stops its workers.
func (p *WorkerPool) Close() {
	p.Drain()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		close(p.stop)
		p.stop = nil
		p.tasks = nil
	}
	p.workers = 1
}
