package sim

import (
	"sync/atomic"
	"time"

	"betrfs/internal/metrics"
)

// Env bundles the shared clock, cost table, and random source handed to
// every simulated component. One Env corresponds to one machine.
type Env struct {
	Clock *Clock
	Costs Costs
	Rand  *Rand

	// Metrics is the machine's observability registry: every layer
	// registers its counters and histograms here at construction time.
	// Recording metrics never advances the clock (the metrics package has
	// no access to it), so instrumentation cannot perturb results.
	Metrics *metrics.Registry

	// Pool is the machine's bounded background-worker pool. With a single
	// worker (the default) every submitted task runs inline at its
	// submission point, which keeps single-goroutine simulations
	// bit-identical; with more workers, tasks run on goroutines. See
	// DESIGN.md §9.
	Pool *WorkerPool

	// Stats accumulates coarse CPU accounting by category so experiments
	// can report where simulated time went. Updates are atomic adds, so
	// concurrent components may charge freely; because adds commute, the
	// totals are deterministic for a given workload.
	Stats CPUStats
}

// CPUStats tallies simulated CPU time by broad category. Fields are
// updated with atomic adds; read them after concurrent work has drained
// (or via Total, which loads atomically).
type CPUStats struct {
	Memcpy    time.Duration
	Checksum  time.Duration
	Compare   time.Duration
	Serialize time.Duration
	Alloc     time.Duration
	Other     time.Duration
}

// addDur atomically adds d to the duration at p. time.Duration's
// underlying type is int64, so the pointer conversion is well-defined.
func addDur(p *time.Duration, d time.Duration) {
	atomic.AddInt64((*int64)(p), int64(d))
}

func loadDur(p *time.Duration) time.Duration {
	return time.Duration(atomic.LoadInt64((*int64)(p)))
}

// Total returns the total CPU time across categories.
func (s *CPUStats) Total() time.Duration {
	return loadDur(&s.Memcpy) + loadDur(&s.Checksum) + loadDur(&s.Compare) +
		loadDur(&s.Serialize) + loadDur(&s.Alloc) + loadDur(&s.Other)
}

// NewEnv returns an environment with default costs and the given seed. The
// worker pool starts with one worker (deterministic inline mode); call
// Pool.SetWorkers to enable background concurrency.
func NewEnv(seed uint64) *Env {
	e := &Env{
		Clock:   NewClock(),
		Costs:   DefaultCosts(),
		Rand:    NewRand(seed),
		Metrics: metrics.NewRegistry(),
	}
	e.Pool = NewWorkerPool(e, 1)
	return e
}

// Now returns the current simulated time.
func (e *Env) Now() time.Duration { return e.Clock.Now() }

// Trace emits one typed trace event stamped with the current simulated time,
// if tracing is enabled on this environment's registry. The check is a single
// atomic load, so disabled tracing costs nothing on hot paths, and emission
// never advances the clock.
func (e *Env) Trace(layer, op, key string, value int64) {
	if e.Metrics != nil && e.Metrics.Tracing() {
		e.Metrics.Emit(metrics.Event{When: e.Now(), Layer: layer, Op: op, Key: key, Value: value})
	}
}

// Charge advances the clock by a fixed CPU cost.
func (e *Env) Charge(d time.Duration) {
	e.Clock.Advance(d)
	addDur(&e.Stats.Other, d)
}

func psCost(bytes int, psPerByte int64) time.Duration {
	return time.Duration(int64(bytes) * psPerByte / 1000)
}

// Memcpy charges for copying n bytes.
func (e *Env) Memcpy(n int) {
	d := psCost(n, e.Costs.MemcpyPsPerByte)
	e.Clock.Advance(d)
	addDur(&e.Stats.Memcpy, d)
	if memcpyTrap > 0 && loadDur(&e.Stats.Memcpy) > memcpyTrap {
		panic("memcpy trap")
	}
}

// memcpyTrap is a debugging aid: panic when cumulative memcpy passes it.
var memcpyTrap = time.Duration(0)

// SetMemcpyTrap arms the trap (tests/debugging only; set it before any
// concurrent work starts).
func SetMemcpyTrap(d time.Duration) { memcpyTrap = d }

// Checksum charges for checksumming n bytes.
func (e *Env) Checksum(n int) {
	d := psCost(n, e.Costs.ChecksumPsPerByte)
	e.Clock.Advance(d)
	addDur(&e.Stats.Checksum, d)
}

// Serialize charges for encoding or decoding n bytes of structured data.
func (e *Env) Serialize(n int) {
	d := psCost(n, e.Costs.SerializePsPerByte)
	e.Clock.Advance(d)
	addDur(&e.Stats.Serialize, d)
}

// Compare charges for one key comparison that inspected n bytes.
func (e *Env) Compare(n int) {
	d := e.Costs.CompareBase + psCost(n, e.Costs.ComparePsPerByte)
	e.Clock.Advance(d)
	addDur(&e.Stats.Compare, d)
}

// ChargeAlloc advances the clock by an allocation-related CPU cost.
func (e *Env) ChargeAlloc(d time.Duration) {
	e.Clock.Advance(d)
	addDur(&e.Stats.Alloc, d)
}

// CompareBulk charges for n key comparisons of avgLen bytes each in one
// arithmetic step. Components use it when an algorithm's comparison count
// is known in closed form (e.g. PacMan's quadratic scan), so the simulated
// cost stays faithful without the host looping pair by pair.
func (e *Env) CompareBulk(n int, avgLen int) {
	if n <= 0 {
		return
	}
	d := time.Duration(n)*e.Costs.CompareBase + psCost(n*avgLen, e.Costs.ComparePsPerByte)
	e.Clock.Advance(d)
	addDur(&e.Stats.Compare, d)
}
