package cowfs_test

import (
	"testing"

	"betrfs/internal/crashtest"
)

// TestReorderedPersistenceRecovery drives recovery under the
// out-of-order cache-drain model: an arbitrary subset of unflushed
// writes survives the crash, not just a prefix. Every survivor state
// must satisfy the crashtest legal-states oracle.
func TestReorderedPersistenceRecovery(t *testing.T) {
	sys := crashtest.SystemByName("btrfs")
	steps := crashtest.StandardWorkload(11, 8)
	specs := crashtest.SubsetSpecs(10, 42, 50)
	specs = append(specs, crashtest.SubsetSpecs(5, 7000, 85)...)
	o := crashtest.Sweep(sys, steps, specs)
	for _, v := range o.Violations {
		t.Errorf("%s", v)
	}
	t.Logf("%d reordered-persistence trials", o.Trials)
}
