// Package cowfs implements a simplified copy-on-write file system in the
// mold of Btrfs and ZFS, the CoW baselines in the paper's evaluation.
//
// Nothing is ever overwritten in place: file data and metadata blobs go to
// freshly allocated blocks, and the previous versions are freed only after
// the transaction group (txg) that dereferences them commits — which is
// what makes the on-disk tree always consistent. An inode map (itself
// rewritten at each txg) locates every inode's current metadata blob. All
// data is checksummed on write and verified on read (Btrfs/ZFS
// end-to-end integrity). fsync writes an intent-log record (ZIL/log-tree)
// rather than forcing a full txg.
package cowfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
	"betrfs/internal/wal"
)

// BlockSize is the file-system block size.
const BlockSize = 4096

// timeDuration aliases time.Duration for the ZIL decoder.
type timeDuration = time.Duration

// Ino is an inode number.
type Ino int64

const rootIno Ino = 1

// Profile selects the Btrfs-ish or ZFS-ish flavor.
type Profile struct {
	Name string
	// TxgInterval is the transaction-group commit period.
	TxgInterval time.Duration
	// MetaAmplification is how many additional metadata tree blocks a
	// txg rewrites per dirtied inode (CoW path copying up the tree).
	MetaAmplification int
	// RecordBlocks aggregates file data into records of this many
	// blocks for allocation and checksumming (ZFS's 128 KiB recordsize
	// is 32; Btrfs extents behave closer to 4).
	RecordBlocks int
}

// BtrfsProfile mimics Btrfs defaults.
func BtrfsProfile() Profile {
	return Profile{Name: "btrfs", TxgInterval: 30 * time.Second, MetaAmplification: 3, RecordBlocks: 4}
}

// ZFSProfile mimics ZFS defaults.
func ZFSProfile() Profile {
	return Profile{Name: "zfs", TxgInterval: 5 * time.Second, MetaAmplification: 4, RecordBlocks: 32}
}

// FS is the cowfs instance.
type FS struct {
	env  *sim.Env
	dev  blockdev.Device
	prof Profile

	imapOff, imapLen int64
	zilOff, zilLen   int64
	dataOff          int64
	dataBlocks       int64

	bitmap   []uint64
	rotor    int64
	deferred []int64 // blocks freed when the current txg commits

	zil *wal.Log

	inodes  map[Ino]*node
	imap    map[Ino]blobLoc
	nextIno Ino

	lastTxg    time.Duration
	inTxg      bool
	generation uint64 // uberblock generation, bumped per txg commit

	// ioErr is the sticky abort (§10): after a failed blob, imap, or
	// uberblock write the on-disk tree may be inconsistent with memory, so
	// mutations are refused while reads keep working.
	ioErr error

	stats Stats
}

// devCheck aborts the current operation on a device error; a failed
// write or flush also latches the sticky abort.
func (fs *FS) devCheck(err error) {
	if err == nil {
		return
	}
	var de *ioerr.DeviceError
	if errors.As(err, &de) && de.Op != "read" && fs.ioErr == nil {
		fs.ioErr = err
	}
	ioerr.Check(err)
}

// writeGate is checked at the top of every mutating operation.
func (fs *FS) writeGate() error { return fs.ioErr }

// Stats counts cowfs activity.
type Stats struct {
	DataWrites      int64
	DataReads       int64
	MetaWrites      int64
	MetaReads       int64
	TxgCommits      int64
	ZilWrites       int64
	DroppedNodes    int64 // invalid metadata blobs discarded during recovery
	DiscardedBlocks int64 // deferred-freed blocks handed to the device as TRIMs
}

type blobLoc struct {
	first int64
	count int
}

type node struct {
	ino      Ino
	dir      bool
	size     int64
	nlink    int
	mtime    time.Duration
	blocks   map[int64]int64
	children map[string]childRef
	dirty    bool
}

type childRef struct {
	ino Ino
	dir bool
}

// New formats a cowfs over dev.
func New(env *sim.Env, dev blockdev.Device, prof Profile) *FS {
	capacity := dev.Size()
	fs := &FS{
		env:     env,
		dev:     dev,
		prof:    prof,
		imapOff: BlockSize,
		imapLen: capacity / 128,
		inodes:  make(map[Ino]*node),
		imap:    make(map[Ino]blobLoc),
		nextIno: rootIno + 1,
	}
	fs.zilOff = fs.imapOff + fs.imapLen
	fs.zilLen = capacity / 128
	if fs.zilLen < 4<<20 {
		fs.zilLen = 4 << 20
	}
	fs.dataOff = fs.zilOff + fs.zilLen
	fs.dataBlocks = (capacity - fs.dataOff) / BlockSize
	fs.bitmap = make([]uint64, (fs.dataBlocks+63)/64)
	fs.zil = wal.New(env, blockdev.Region(dev, fs.zilOff, fs.zilLen), 1)
	root := &node{ino: rootIno, dir: true, nlink: 2, blocks: map[int64]int64{}, children: map[string]childRef{}, dirty: true}
	fs.inodes[rootIno] = root
	fs.imap[rootIno] = blobLoc{first: -1}
	return fs
}

// Stats returns counters.
func (fs *FS) Stats() *Stats { return &fs.stats }

func (fs *FS) bitGet(b int64) bool { return fs.bitmap[b/64]&(1<<(uint(b)%64)) != 0 }
func (fs *FS) bitSet(b int64)      { fs.bitmap[b/64] |= 1 << (uint(b) % 64) }
func (fs *FS) bitClear(b int64)    { fs.bitmap[b/64] &^= 1 << (uint(b) % 64) }

func (fs *FS) blockAddr(b int64) int64 { return fs.dataOff + b*BlockSize }

// alloc finds want contiguous blocks with a forward rotor (CoW allocators
// sweep forward, which keeps fresh writes sequential and ages overwritten
// files). Fully allocated regions are skipped a word at a time.
func (fs *FS) alloc(want int64) (int64, int64) {
	total := fs.dataBlocks
	b := fs.rotor
	if b >= total {
		b = 0
	}
	wrapped := false
	for {
		nb := skipAllocatedWords(fs.bitmap, b, total)
		if nb >= total {
			if wrapped {
				ioerr.Check(fmt.Errorf("cowfs(%s): out of space: %w", fs.prof.Name, ioerr.ErrNoSpace))
			}
			wrapped = true
			// Space pressure: committing the txg releases the
			// deferred frees accumulated since the last commit.
			if !fs.inTxg && len(fs.deferred) > 0 {
				fs.txgCommit()
			}
			b = 0
			continue
		}
		b = nb
		run := int64(1)
		for run < want && b+run < total && !fs.bitGet(b+run) {
			run++
		}
		for i := int64(0); i < run; i++ {
			fs.bitSet(b + i)
		}
		fs.rotor = b + run
		return b, run
	}
}

// skipAllocatedFast advances b past fully allocated regions a word (64
// blocks) at a time, returning the next candidate at or after b.
func skipAllocatedWords(bitmap []uint64, b, total int64) int64 {
	for b < total {
		if b%64 == 0 {
			w := bitmap[b/64]
			if w == ^uint64(0) {
				b += 64
				continue
			}
		}
		if bitmap[b/64]&(1<<(uint(b)%64)) == 0 {
			return b
		}
		b++
	}
	return total
}

// deferFree queues b for release at the next txg commit. When the
// deferred pool grows past an eighth of the data area, a txg commits
// early so churn-heavy workloads cannot outrun space reclamation.
func (fs *FS) deferFree(b int64) {
	if b < 0 {
		return
	}
	fs.deferred = append(fs.deferred, b)
	if !fs.inTxg && int64(len(fs.deferred)) > fs.dataBlocks/8 {
		fs.txgCommit()
	}
}

// node returns the cached inode, reading its metadata blob on a miss.
func (fs *FS) node(ino Ino) *node {
	if n, ok := fs.inodes[ino]; ok {
		return n
	}
	loc, ok := fs.imap[ino]
	if !ok || loc.first < 0 {
		panic(fmt.Sprintf("cowfs: inode %d has no blob", ino))
	}
	n, err := fs.readBlob(ino, loc)
	if err != nil {
		// Device errors and corrupted blobs abort the operation with the
		// wrapped cause (errors.Is(err, ErrIO) holds for media errors).
		ioerr.Check(fmt.Errorf("cowfs: %w", err))
	}
	fs.inodes[ino] = n
	return n
}

// nodeIfPresent is the non-panicking variant used during recovery: it
// returns false when the inode is unknown or its blob fails validation.
func (fs *FS) nodeIfPresent(ino Ino) (*node, bool) {
	if n, ok := fs.inodes[ino]; ok {
		return n, true
	}
	loc, ok := fs.imap[ino]
	if !ok || loc.first < 0 {
		return nil, false
	}
	n, err := fs.readBlob(ino, loc)
	if err != nil {
		return nil, false
	}
	fs.inodes[ino] = n
	return n, true
}

// Metadata blobs carry a self-validating header so that recovery can
// tell a durable blob from one the crash tore or never persisted: magic,
// the owning inode number (a stale imap entry may point at blocks since
// reused by a different inode), payload length, and a payload CRC.
const (
	blobMagic      = 0xc0b10b55
	blobHeaderSize = 4 + 8 + 4 + 4
)

func sealBlob(ino Ino, payload []byte) []byte {
	blob := make([]byte, blobHeaderSize+len(payload))
	binary.BigEndian.PutUint32(blob[0:], blobMagic)
	binary.BigEndian.PutUint64(blob[4:], uint64(ino))
	binary.BigEndian.PutUint32(blob[12:], uint32(len(payload)))
	binary.BigEndian.PutUint32(blob[16:], crc32.ChecksumIEEE(payload))
	copy(blob[blobHeaderSize:], payload)
	return blob
}

func openBlob(ino Ino, b []byte) ([]byte, error) {
	if len(b) < blobHeaderSize {
		return nil, fmt.Errorf("blob for inode %d too short", ino)
	}
	if binary.BigEndian.Uint32(b) != blobMagic {
		return nil, fmt.Errorf("bad blob magic for inode %d", ino)
	}
	if got := Ino(binary.BigEndian.Uint64(b[4:])); got != ino {
		return nil, fmt.Errorf("blob owned by inode %d, want %d", got, ino)
	}
	n := int(binary.BigEndian.Uint32(b[12:]))
	if n < 0 || blobHeaderSize+n > len(b) {
		return nil, fmt.Errorf("blob length %d for inode %d out of range", n, ino)
	}
	payload := b[blobHeaderSize : blobHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[16:]) {
		return nil, fmt.Errorf("blob checksum mismatch for inode %d", ino)
	}
	return payload, nil
}

// writeBlob persists n's metadata copy-on-write and charges the tree-path
// amplification.
func (fs *FS) writeBlob(n *node) {
	blob := sealBlob(n.ino, encodeNode(n))
	if old, ok := fs.imap[n.ino]; ok && old.first >= 0 {
		for i := 0; i < old.count; i++ {
			fs.deferFree(old.first + int64(i))
		}
	}
	nBlocks := int64((len(blob) + BlockSize - 1) / BlockSize)
	first, run := fs.alloc(nBlocks)
	for run < nBlocks {
		// Rare fragmentation path: allocate the rest separately and
		// treat the blob as that many standalone blocks; for
		// simplicity, retry with a larger contiguous region.
		for i := int64(0); i < run; i++ {
			fs.bitClear(first + i)
		}
		first, run = fs.alloc(nBlocks)
	}
	padded := make([]byte, nBlocks*BlockSize)
	copy(padded, blob)
	fs.devCheck(fs.dev.WriteAt(padded, fs.blockAddr(first)))
	fs.env.Serialize(len(blob))
	fs.env.Checksum(len(padded))
	fs.stats.MetaWrites++
	// CoW path amplification: interior tree blocks rewritten.
	for i := 0; i < fs.prof.MetaAmplification; i++ {
		ab, _ := fs.alloc(1)
		fs.devCheck(fs.dev.WriteAt(make([]byte, BlockSize), fs.blockAddr(ab)))
		fs.deferFree(ab) // superseded at the next rewrite; keep space bounded
		fs.env.Checksum(BlockSize)
		fs.stats.MetaWrites++
	}
	fs.imap[n.ino] = blobLoc{first: first, count: int(nBlocks)}
	n.dirty = false
}

// readBlob loads a metadata blob, verifying its header and checksum. Any
// structural damage — out-of-range imap entry, torn or reused blocks,
// block map pointing outside the data area — comes back as an error
// instead of garbage state or a panic.
func (fs *FS) readBlob(ino Ino, loc blobLoc) (rn *node, err error) {
	if loc.count <= 0 || loc.first < 0 || loc.first+int64(loc.count) > fs.dataBlocks {
		return nil, fmt.Errorf("imap entry for inode %d out of range: first=%d count=%d", ino, loc.first, loc.count)
	}
	defer func() {
		if r := recover(); r != nil {
			rn, err = nil, fmt.Errorf("malformed blob for inode %d: %v", ino, r)
		}
	}()
	buf := make([]byte, loc.count*BlockSize)
	// Explicit error return (not devCheck): the deferred recover above
	// would otherwise swallow the abort and mislabel it "malformed".
	if rerr := fs.dev.ReadAt(buf, fs.blockAddr(loc.first)); rerr != nil {
		return nil, fmt.Errorf("blob for inode %d: %w", ino, rerr)
	}
	fs.env.Checksum(len(buf))
	fs.stats.MetaReads++
	payload, err := openBlob(ino, buf)
	if err != nil {
		return nil, err
	}
	n := decodeNode(ino, payload)
	for _, b := range n.blocks {
		if b < 0 || b >= fs.dataBlocks {
			return nil, fmt.Errorf("inode %d block map points outside the data area", ino)
		}
	}
	fs.env.Serialize(len(buf))
	return n, nil
}

func encodeNode(n *node) []byte {
	e := make([]byte, 0, 256)
	var t8 [8]byte
	put := func(v int64) {
		binary.BigEndian.PutUint64(t8[:], uint64(v))
		e = append(e, t8[:]...)
	}
	flags := int64(0)
	if n.dir {
		flags = 1
	}
	put(flags)
	put(n.size)
	put(int64(n.nlink))
	put(int64(n.mtime))
	// Block map as run-length extents: logical, physical, count.
	blks := make([]int64, 0, len(n.blocks))
	for l := range n.blocks {
		blks = append(blks, l)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	type run struct{ l, p, c int64 }
	var runs []run
	for _, l := range blks {
		p := n.blocks[l]
		if len(runs) > 0 {
			last := &runs[len(runs)-1]
			if l == last.l+last.c && p == last.p+last.c {
				last.c++
				continue
			}
		}
		runs = append(runs, run{l, p, 1})
	}
	put(int64(len(runs)))
	for _, r := range runs {
		put(r.l)
		put(r.p)
		put(r.c)
	}
	if n.dir {
		put(int64(len(n.children)))
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			put(int64(len(name)))
			e = append(e, name...)
			c := n.children[name]
			put(int64(c.ino))
			if c.dir {
				put(1)
			} else {
				put(0)
			}
		}
	}
	return e
}

func decodeNode(ino Ino, buf []byte) *node {
	n := &node{ino: ino, blocks: map[int64]int64{}}
	pos := 0
	get := func() int64 {
		v := int64(binary.BigEndian.Uint64(buf[pos:]))
		pos += 8
		return v
	}
	flags := get()
	n.dir = flags&1 != 0
	n.size = get()
	n.nlink = int(get())
	n.mtime = time.Duration(get())
	nb := get()
	for i := int64(0); i < nb; i++ {
		l := get()
		p := get()
		c := get()
		for j := int64(0); j < c; j++ {
			n.blocks[l+j] = p + j
		}
	}
	if n.dir {
		n.children = map[string]childRef{}
		nc := get()
		for i := int64(0); i < nc; i++ {
			nameLen := get()
			name := string(buf[pos : pos+int(nameLen)])
			pos += int(nameLen)
			cino := Ino(get())
			cdir := get() == 1
			n.children[name] = childRef{ino: cino, dir: cdir}
		}
	}
	return n
}

var _ vfs.FS = (*FS)(nil)
