package cowfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
	"betrfs/internal/wal"
)

// The intent log (ZIL in ZFS, the log tree in Btrfs) makes fsync cheap:
// synchronous operations append small records to a dedicated region, and a
// crash replays them against the last committed txg.

type zilOp byte

const (
	zilCreate zilOp = iota + 1
	zilRemove
	zilRename
	zilWrite
	zilAttr
)

type zilEnc struct{ b []byte }

func (e *zilEnc) op(o zilOp) { e.b = append(e.b, byte(o)) }
func (e *zilEnc) i64(v int64) {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(v))
	e.b = append(e.b, t[:]...)
}
func (e *zilEnc) str(s string) { e.i64(int64(len(s))); e.b = append(e.b, s...) }
func (e *zilEnc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *zilEnc) bytes(p []byte) { e.i64(int64(len(p))); e.b = append(e.b, p...) }

func (fs *FS) logZil(enc func(*zilEnc)) {
	e := &zilEnc{}
	enc(e)
	if _, err := fs.zil.Append(wal.RecordType(1), e.b); err == wal.ErrLogFull {
		fs.txgCommit()
		if _, err2 := fs.zil.Append(wal.RecordType(1), e.b); err2 != nil {
			// Still full after a txg commit: the log region cannot hold
			// the record — a space problem, not a bug.
			ioerr.Check(fmt.Errorf("cowfs: intent log full after txg commit: %w", ioerr.ErrNoSpace))
		}
	} else if err != nil {
		ioerr.Check(err)
	}
}

type zilDec struct{ b []byte }

func (d *zilDec) op() zilOp { o := zilOp(d.b[0]); d.b = d.b[1:]; return o }
func (d *zilDec) i64() int64 {
	v := int64(binary.BigEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}
func (d *zilDec) str() string {
	n := d.i64()
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
func (d *zilDec) bool() bool { v := d.b[0] == 1; d.b = d.b[1:]; return v }
func (d *zilDec) bytes() []byte {
	n := d.i64()
	p := append([]byte{}, d.b[:n]...)
	d.b = d.b[n:]
	return p
}

func timeDur(v int64) (d timeDuration) { return timeDuration(v) }

// Recover mounts an existing cowfs from its uberblock, inode map, and
// intent log. A device error during recovery fails the mount.
func Recover(env *sim.Env, dev blockdev.Device, prof Profile) (rfs *FS, err error) {
	defer ioerr.Guard(&err)
	fs := New(env, dev, prof)
	// Pick the newest slot of the uberblock ring that passes its CRC; a
	// torn uberblock write then falls back to the previous generation
	// instead of mounting garbage.
	sb := make([]byte, BlockSize)
	if rerr := dev.ReadAt(sb, 0); rerr != nil {
		return nil, fmt.Errorf("cowfs: uberblock unreadable: %w", rerr)
	}
	var (
		zilEpoch uint32
		found    bool
	)
	for slot := 0; slot < 2; slot++ {
		gen, nextIno, epoch, ok := decodeUberblock(sb[slot*uberSlotSize : (slot+1)*uberSlotSize])
		if !ok || (found && gen <= fs.generation) {
			continue
		}
		fs.generation, fs.nextIno, zilEpoch, found = gen, nextIno, epoch, true
	}
	if !found {
		return nil, fmt.Errorf("cowfs: no valid uberblock")
	}
	if zilEpoch == 0 {
		zilEpoch = 1
	}
	// A corrupted nextIno cannot be trusted to bound the imap scan.
	if maxInos := Ino(fs.imapLen / 2 / 16); fs.nextIno > maxInos {
		fs.nextIno = maxInos
	}
	fs.inodes = make(map[Ino]*node)
	fs.imap = make(map[Ino]blobLoc)

	const entrySize = 16
	per := Ino(BlockSize / entrySize)
	buf := make([]byte, BlockSize)
	for first := Ino(0); first < fs.nextIno; first += per {
		if rerr := dev.ReadAt(buf, fs.imapSlotBase(fs.generation)+int64(first)*entrySize); rerr != nil {
			return nil, fmt.Errorf("cowfs: imap block for inode %d unreadable: %w", first, rerr)
		}
		for i := Ino(0); i < per && first+i < fs.nextIno; i++ {
			off := int64(i) * entrySize
			f := binary.BigEndian.Uint64(buf[off:])
			if f == ^uint64(0) {
				continue
			}
			fs.imap[first+i] = blobLoc{first: int64(f), count: int(binary.BigEndian.Uint64(buf[off+8:]))}
		}
	}
	// Rebuild the allocation bitmap from reachable blobs and block maps.
	// Entries whose blob fails validation are dropped: they referenced
	// state the crash never made durable.
	for ino, loc := range fs.imap {
		if loc.first < 0 {
			continue
		}
		n, berr := fs.readBlob(ino, loc)
		if berr != nil {
			// A media error is not a torn write: dropping the inode would
			// silently discard durable data, so fail the mount instead.
			if errors.Is(berr, ioerr.ErrIO) {
				return nil, fmt.Errorf("cowfs: blob for inode %d: %w", ino, berr)
			}
			delete(fs.imap, ino)
			fs.stats.DroppedNodes++
			continue
		}
		fs.inodes[ino] = n
		for i := 0; i < loc.count; i++ {
			fs.bitSet(loc.first + int64(i))
		}
		for _, b := range n.blocks {
			fs.bitSet(b)
		}
	}
	if _, ok := fs.inodes[rootIno]; !ok {
		root := &node{ino: rootIno, dir: true, nlink: 2, blocks: map[int64]int64{}, children: map[string]childRef{}, dirty: true}
		fs.inodes[rootIno] = root
		fs.imap[rootIno] = blobLoc{first: -1}
	}
	// Replay the intent log against the committed state, scanning from
	// the region start in the epoch the uberblock recorded. An unreadable
	// log fails the mount: a truncated replay would lose fsynced state.
	recs, rerr := wal.Recover(env, blockdev.Region(dev, fs.zilOff, fs.zilLen), wal.Hint{Offset: 0, LSN: 1, Epoch: zilEpoch})
	if rerr != nil {
		return nil, fmt.Errorf("cowfs: intent log unreadable: %w", rerr)
	}
	for _, rec := range recs {
		fs.replayZil(rec.Payload)
	}
	fs.zil = wal.New(env, blockdev.Region(dev, fs.zilOff, fs.zilLen), zilEpoch+1)
	// Prune dangling directory entries — children whose inode was dropped
	// above and not resurrected by the intent-log replay.
	for _, n := range fs.inodes {
		if !n.dir {
			continue
		}
		for name, c := range n.children {
			if _, ok := fs.nodeIfPresent(c.ino); !ok {
				delete(n.children, name)
				delete(fs.imap, c.ino)
				n.dirty = true
			}
		}
	}
	fs.txgCommit()
	return fs, nil
}

// replayZil applies one intent-log record. Records referencing inodes
// that did not survive recovery (dropped blobs) are skipped rather than
// left to panic — the oracle treats the files they describe as volatile.
func (fs *FS) replayZil(payload []byte) {
	d := &zilDec{b: payload}
	switch d.op() {
	case zilCreate:
		pino := Ino(d.i64())
		name := d.str()
		ino := Ino(d.i64())
		dir := d.bool()
		p, ok := fs.nodeIfPresent(pino)
		if !ok {
			return
		}
		if _, ok := p.children[name]; ok {
			return
		}
		n := &node{ino: ino, dir: dir, nlink: 1, blocks: map[int64]int64{}, dirty: true}
		if dir {
			n.nlink = 2
			n.children = map[string]childRef{}
		}
		fs.inodes[ino] = n
		fs.imap[ino] = blobLoc{first: -1}
		p.children[name] = childRef{ino: ino, dir: dir}
		p.dirty = true
		if ino >= fs.nextIno {
			fs.nextIno = ino + 1
		}
	case zilRemove:
		pino := Ino(d.i64())
		name := d.str()
		p, ok := fs.nodeIfPresent(pino)
		if !ok {
			return
		}
		delete(p.children, name)
		p.dirty = true
	case zilRename:
		opino := Ino(d.i64())
		oldName := d.str()
		npino := Ino(d.i64())
		newName := d.str()
		op, okOld := fs.nodeIfPresent(opino)
		np, okNew := fs.nodeIfPresent(npino)
		if !okOld || !okNew {
			return
		}
		if c, ok := op.children[oldName]; ok {
			delete(op.children, oldName)
			np.children[newName] = c
			op.dirty = true
			np.dirty = true
		}
	case zilAttr:
		ino := Ino(d.i64())
		size := d.i64()
		mtime := d.i64()
		n, ok := fs.nodeIfPresent(ino)
		if !ok {
			return
		}
		n.size = size
		n.mtime = timeDur(mtime)
		n.dirty = true
	case zilWrite:
		ino := Ino(d.i64())
		blk := d.i64()
		data := d.bytes()
		n, ok := fs.nodeIfPresent(ino)
		if !ok {
			return
		}
		if old, ok := n.blocks[blk]; ok {
			fs.deferFree(old)
		}
		b, _ := fs.alloc(1)
		padded := make([]byte, BlockSize)
		copy(padded, data)
		fs.devCheck(fs.dev.WriteAt(padded, fs.blockAddr(b)))
		n.blocks[blk] = b
		if int64(len(data)) > n.size-blk*BlockSize {
			if sz := blk*BlockSize + int64(len(data)); sz > n.size {
				n.size = sz
			}
		}
		n.dirty = true
	}
}
