package cowfs

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

func newMount(t testing.TB, prof Profile) (*sim.Env, *blockdev.Dev, *FS, *vfs.Mount) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := New(env, dev, prof)
	cfg := vfs.DefaultConfig()
	cfg.CacheBytes = 64 << 20
	return env, dev, fs, vfs.NewMount(env, fs, cfg)
}

func TestRoundTripBothProfiles(t *testing.T) {
	for _, prof := range []Profile{BtrfsProfile(), ZFSProfile()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			_, _, _, m := newMount(t, prof)
			payload := bytes.Repeat([]byte{0x3c}, 5*BlockSize+99)
			f, _ := m.Create("f")
			f.Write(payload)
			f.Close()
			m.DropCaches()
			g, err := m.Open("f")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			n, _ := g.ReadAt(got, 0)
			if n != len(payload) || !bytes.Equal(got, payload) {
				t.Fatal("round trip failed")
			}
		})
	}
}

func TestOverwriteRelocatesBlocks(t *testing.T) {
	_, _, fs, m := newMount(t, BtrfsProfile())
	f, _ := m.Create("f")
	f.Write(make([]byte, 1<<20))
	m.Sync()
	n := fs.node(Ino(2))
	before := map[int64]int64{}
	for l, p := range n.blocks {
		before[l] = p
	}
	f.WriteAt(bytes.Repeat([]byte{1}, 1<<20), 0)
	m.Sync()
	moved := 0
	for l, p := range n.blocks {
		if before[l] != p {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("copy-on-write did not relocate any overwritten blocks")
	}
}

func TestDeferredFreeUntilTxg(t *testing.T) {
	_, _, fs, m := newMount(t, BtrfsProfile())
	f, _ := m.Create("f")
	f.Write(make([]byte, 256<<10))
	m.Sync()
	// Overwrite: old blocks must stay allocated until the txg commits.
	f.WriteAt(make([]byte, 256<<10), 0)
	f.Fsync() // write-back reaches the FS; fsync does not commit a txg
	if len(fs.deferred) == 0 {
		t.Fatal("no deferred frees pending after overwrite")
	}
	fs.txgCommit()
	if len(fs.deferred) != 0 {
		t.Fatal("txg commit did not release deferred frees")
	}
}

func TestZFSRecordRMWAmplification(t *testing.T) {
	// A single 4 KiB overwrite into a large file must read and rewrite a
	// whole record on the ZFS profile (32 blocks), but far less on Btrfs.
	measure := func(prof Profile) int64 {
		_, dev, _, m := newMount(t, prof)
		f, _ := m.Create("f")
		f.Write(make([]byte, 8<<20))
		m.Sync()
		m.DropCaches()
		g, _ := m.Open("f")
		before := dev.Stats().BytesWritten
		g.WriteAt(make([]byte, BlockSize), 4<<20)
		m.Sync()
		return dev.Stats().BytesWritten - before
	}
	zfs := measure(ZFSProfile())
	btrfs := measure(BtrfsProfile())
	if zfs < btrfs*2 {
		t.Fatalf("ZFS record RMW amplification missing: zfs=%d btrfs=%d bytes", zfs, btrfs)
	}
}

func TestChecksumChargedOnReads(t *testing.T) {
	env, _, _, m := newMount(t, ZFSProfile())
	f, _ := m.Create("f")
	f.Write(make([]byte, 1<<20))
	m.Sync()
	m.DropCaches()
	before := env.Stats.Checksum
	g, _ := m.Open("f")
	buf := make([]byte, 1<<20)
	g.ReadAt(buf, 0)
	if env.Stats.Checksum <= before {
		t.Fatal("reads did not charge checksum verification")
	}
}

func TestZilRecoverySyncedSurvives(t *testing.T) {
	env := sim.NewEnv(5)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := New(env, dev, ZFSProfile())
	m := vfs.NewMount(env, fs, vfs.DefaultConfig())
	m.Sync() // first txg: uberblock exists
	dev.EnableCrashTracking()

	m.MkdirAll("d")
	f, _ := m.Create("d/mail")
	f.Write([]byte("synced payload"))
	f.Fsync() // ZIL records + flush, no txg
	g, _ := m.Create("d/unsynced")
	g.Write([]byte("gone"))
	dev.Crash(0) // lose everything unflushed (the fsync barrier protected the ZIL)

	fs2, err := Recover(env, dev, ZFSProfile())
	if err != nil {
		t.Fatal(err)
	}
	m2 := vfs.NewMount(env, fs2, vfs.DefaultConfig())
	h, err := m2.Open("d/mail")
	if err != nil {
		t.Fatalf("fsynced file lost: %v", err)
	}
	buf := make([]byte, 32)
	n, _ := h.ReadAt(buf, 0)
	if string(buf[:n]) != "synced payload" {
		t.Fatalf("fsynced data corrupted: %q", buf[:n])
	}
}

func TestTxgCommitPersistsNamespace(t *testing.T) {
	env := sim.NewEnv(6)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := New(env, dev, BtrfsProfile())
	m := vfs.NewMount(env, fs, vfs.DefaultConfig())
	for i := 0; i < 50; i++ {
		m.MkdirAll(fmt.Sprintf("dir%02d", i))
	}
	m.Sync()
	fs2, err := Recover(env, dev, BtrfsProfile())
	if err != nil {
		t.Fatal(err)
	}
	m2 := vfs.NewMount(env, fs2, vfs.DefaultConfig())
	ents, _ := m2.ReadDir("")
	if len(ents) != 50 {
		t.Fatalf("recovered %d directories, want 50", len(ents))
	}
}
