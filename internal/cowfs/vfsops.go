package cowfs

import (
	"encoding/binary"
	"hash/crc32"
	"sort"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/vfs"
	"betrfs/internal/wal"
)

// vfs.FS implementation. Handles are inode numbers.

// Root returns the root handle.
func (fs *FS) Root() vfs.Handle { return rootIno }

func (fs *FS) attrOf(n *node) vfs.Attr {
	return vfs.Attr{Dir: n.dir, Size: n.size, Nlink: n.nlink, Mtime: n.mtime}
}

// Lookup resolves name in parent.
func (fs *FS) Lookup(parent vfs.Handle, name string) (h vfs.Handle, a vfs.Attr, err error) {
	defer ioerr.Guard(&err)
	p := fs.node(parent.(Ino))
	fs.env.Compare(len(name))
	c, ok := p.children[name]
	if !ok {
		return nil, vfs.Attr{}, vfs.ErrNotExist
	}
	return c.ino, fs.attrOf(fs.node(c.ino)), nil
}

// Create allocates an inode; its blob reaches disk at the next txg.
func (fs *FS) Create(parent vfs.Handle, name string, dir bool) (h vfs.Handle, a vfs.Attr, err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return nil, vfs.Attr{}, ferr
	}
	p := fs.node(parent.(Ino))
	if _, ok := p.children[name]; ok {
		return nil, vfs.Attr{}, vfs.ErrExist
	}
	ino := fs.nextIno
	fs.nextIno++
	n := &node{ino: ino, dir: dir, nlink: 1, mtime: fs.env.Now(), blocks: map[int64]int64{}, dirty: true}
	if dir {
		n.nlink = 2
		n.children = map[string]childRef{}
	}
	fs.inodes[ino] = n
	fs.imap[ino] = blobLoc{first: -1}
	p.children[name] = childRef{ino: ino, dir: dir}
	p.mtime = fs.env.Now()
	p.dirty = true
	fs.logZil(func(e *zilEnc) { e.op(zilCreate); e.i64(int64(p.ino)); e.str(name); e.i64(int64(ino)); e.bool(dir) })
	return ino, fs.attrOf(n), nil
}

// Remove unlinks name; the child's blocks are freed after the next txg.
func (fs *FS) Remove(parent vfs.Handle, name string, h vfs.Handle, dir bool) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	p := fs.node(parent.(Ino))
	c, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := fs.node(c.ino)
	if dir && len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	// Free in block order, not map order: deferFree can commit a txg
	// mid-loop, and which blocks make that txg decides the bitmap state
	// every later allocation sees.
	for _, b := range sortedBlocks(n, 0) {
		fs.deferFree(b)
	}
	if loc, ok := fs.imap[c.ino]; ok && loc.first >= 0 {
		for i := 0; i < loc.count; i++ {
			fs.deferFree(loc.first + int64(i))
		}
	}
	delete(fs.imap, c.ino)
	delete(fs.inodes, c.ino)
	delete(p.children, name)
	p.mtime = fs.env.Now()
	p.dirty = true
	fs.logZil(func(e *zilEnc) { e.op(zilRemove); e.i64(int64(p.ino)); e.str(name); e.i64(int64(c.ino)) })
	return nil
}

// Rename moves the entry.
func (fs *FS) Rename(oldParent vfs.Handle, oldName string, h vfs.Handle, newParent vfs.Handle, newName string) (nh vfs.Handle, err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return nil, ferr
	}
	op := fs.node(oldParent.(Ino))
	np := fs.node(newParent.(Ino))
	c, ok := op.children[oldName]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	delete(op.children, oldName)
	np.children[newName] = c
	op.dirty = true
	np.dirty = true
	op.mtime = fs.env.Now()
	np.mtime = fs.env.Now()
	fs.logZil(func(e *zilEnc) {
		e.op(zilRename)
		e.i64(int64(op.ino))
		e.str(oldName)
		e.i64(int64(np.ino))
		e.str(newName)
		e.i64(int64(c.ino))
	})
	return h, nil
}

// ReadDir lists children in sorted (tree-key) order.
func (fs *FS) ReadDir(h vfs.Handle) (ents []vfs.DirEntry, err error) {
	defer ioerr.Guard(&err)
	n := fs.node(h.(Ino))
	if !n.dir {
		return nil, vfs.ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]vfs.DirEntry, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		out = append(out, vfs.DirEntry{Name: name, Dir: c.dir})
	}
	return out, nil
}

// WriteAttr records metadata changes; the intent log carries them so an
// fsync-then-crash recovers sizes correctly (ZFS logs setattr in the ZIL).
func (fs *FS) WriteAttr(h vfs.Handle, a vfs.Attr) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	n := fs.node(h.(Ino))
	n.size = a.Size
	n.mtime = a.Mtime
	n.dirty = true
	fs.logZil(func(e *zilEnc) { e.op(zilAttr); e.i64(int64(n.ino)); e.i64(a.Size); e.i64(int64(a.Mtime)) })
	return nil
}

// ReadBlocks fills pages, verifying checksums per record.
func (fs *FS) ReadBlocks(h vfs.Handle, blk int64, pages []*vfs.Page, seq bool) (err error) {
	defer ioerr.Guard(&err)
	n := fs.node(h.(Ino))
	i := 0
	for i < len(pages) {
		phys, ok := n.blocks[blk+int64(i)]
		if !ok {
			for j := range pages[i].Data {
				pages[i].Data[j] = 0
			}
			i++
			continue
		}
		run := 1
		for i+run < len(pages) {
			np, ok := n.blocks[blk+int64(i+run)]
			if !ok || np != phys+int64(run) {
				break
			}
			run++
		}
		buf := make([]byte, run*BlockSize)
		fs.devCheck(fs.dev.ReadAt(buf, fs.blockAddr(phys)))
		fs.env.Checksum(len(buf))
		for j := 0; j < run; j++ {
			copy(pages[i+j].Data, buf[j*BlockSize:(j+1)*BlockSize])
		}
		fs.env.Memcpy(len(buf))
		fs.stats.DataReads++
		i += run
	}
	return nil
}

// WriteBlocks writes a run of pages copy-on-write in record-sized units,
// with the old versions deferred-freed. Records are the unit of
// allocation and checksumming: a sub-record write to an allocated record
// must read the record's remaining blocks first and rewrite the whole
// record — the read-modify-write that makes small random writes so
// expensive on large-record CoW file systems (ZFS's 128 KiB recordsize).
func (fs *FS) WriteBlocks(h vfs.Handle, blk int64, pgs []*vfs.Page, durable bool) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	n := fs.node(h.(Ino))
	rb := int64(fs.prof.RecordBlocks)
	// Sub-record writes into existing data: expand to record boundaries
	// by reading the missing blocks (RMW), batched into one read per
	// side of the written range.
	if len(pgs) < fs.prof.RecordBlocks {
		rStart := blk / rb * rb
		rEnd := rStart + rb
		fileBlocks := (n.size + BlockSize - 1) / BlockSize
		if rEnd > fileBlocks {
			rEnd = fileBlocks
		}
		// An extending write can land past the current EOF; the record
		// range must still cover every page the caller handed us, or the
		// expansion below would silently drop them.
		if end := blk + int64(len(pgs)); rEnd < end {
			rEnd = end
		}
		if rEnd > blk+int64(len(pgs)) || rStart < blk {
			allMapped := true
			for b := rStart; b < rEnd; b++ {
				if b >= blk && b < blk+int64(len(pgs)) {
					continue
				}
				if _, ok := n.blocks[b]; !ok {
					allMapped = false
					break
				}
			}
			if allMapped && rEnd > rStart {
				expanded := make([]*vfs.Page, rEnd-rStart)
				var head, tail []*vfs.Page
				for b := rStart; b < rEnd; b++ {
					if b >= blk && b < blk+int64(len(pgs)) {
						expanded[b-rStart] = pgs[b-blk]
						continue
					}
					pg := &vfs.Page{Data: make([]byte, BlockSize)}
					expanded[b-rStart] = pg
					if b < blk {
						head = append(head, pg)
					} else {
						tail = append(tail, pg)
					}
				}
				if len(head) > 0 {
					ioerr.Check(fs.ReadBlocks(h, rStart, head, false))
				}
				if len(tail) > 0 {
					ioerr.Check(fs.ReadBlocks(h, blk+int64(len(pgs)), tail, false))
				}
				pgs = expanded
				blk = rStart
			}
		}
	}
	i := 0
	for i < len(pgs) {
		want := fs.prof.RecordBlocks
		if rem := len(pgs) - i; want > rem {
			want = rem
		}
		first, run := fs.alloc(int64(want))
		buf := make([]byte, run*BlockSize)
		for j := int64(0); j < run; j++ {
			l := blk + int64(i) + j
			if old, ok := n.blocks[l]; ok {
				fs.deferFree(old)
			}
			copy(buf[j*BlockSize:], pgs[i+int(j)].Data)
			n.blocks[l] = first + j
		}
		fs.devCheck(fs.dev.WriteAt(buf, fs.blockAddr(first)))
		fs.env.Checksum(len(buf))
		fs.stats.DataWrites++
		if durable {
			// fsync path: the ZIL logs the write intents with payload.
			for j := int64(0); j < run; j++ {
				l := blk + int64(i) + j
				data := pgs[i+int(j)].Data
				fs.logZil(func(e *zilEnc) { e.op(zilWrite); e.i64(int64(n.ino)); e.i64(l); e.bytes(data) })
			}
		}
		i += int(run)
	}
	n.dirty = true
	return nil
}

// WritePartial is unsupported; calling it is a programmer error, so the
// panic stays.
func (fs *FS) WritePartial(h vfs.Handle, blk int64, off int, data []byte, durable bool) error {
	panic("cowfs: blind writes unsupported")
}

// SupportsBlindWrites reports false.
func (fs *FS) SupportsBlindWrites() bool { return false }

// TruncateBlocks defer-frees blocks at or beyond fromBlk.
func (fs *FS) TruncateBlocks(h vfs.Handle, fromBlk int64) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	n := fs.node(h.(Ino))
	// Same ordering rule as Remove: deferFree may commit mid-loop.
	for _, b := range sortedBlocks(n, fromBlk) {
		fs.deferFree(b)
	}
	for blk := range n.blocks {
		if blk >= fromBlk {
			delete(n.blocks, blk)
		}
	}
	n.dirty = true
	return nil
}

// sortedBlocks returns the data-block addresses of n at or beyond logical
// block fromBlk, ordered by logical block number.
func sortedBlocks(n *node, fromBlk int64) []int64 {
	var blks []int64
	for blk := range n.blocks {
		if blk >= fromBlk {
			blks = append(blks, blk)
		}
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	out := make([]int64, len(blks))
	for i, blk := range blks {
		out[i] = n.blocks[blk]
	}
	return out
}

// Fsync flushes the intent log (ZIL / log tree): much cheaper than a txg.
func (fs *FS) Fsync(h vfs.Handle) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	fs.devCheck(fs.zil.Flush())
	fs.devCheck(fs.dev.Flush())
	fs.stats.ZilWrites++
	return nil
}

// Sync commits a transaction group.
func (fs *FS) Sync() (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	fs.txgCommit()
	return nil
}

// Maintain commits a txg when the interval has elapsed. No error return
// in the vfs.FS contract; failures latch the sticky abort.
func (fs *FS) Maintain() {
	var err error
	defer ioerr.Guard(&err)
	if fs.ioErr != nil {
		return
	}
	if fs.env.Now()-fs.lastTxg >= fs.prof.TxgInterval {
		fs.txgCommit()
	}
}

// DropCaches commits and evicts the inode cache.
func (fs *FS) DropCaches() {
	var err error
	defer ioerr.Guard(&err)
	if fs.ioErr == nil {
		fs.txgCommit()
	}
	for ino := range fs.inodes {
		if ino != rootIno {
			delete(fs.inodes, ino)
		}
	}
}

// txgCommit writes every dirty blob, the inode map, and the uberblock,
// then releases deferred frees.
func (fs *FS) txgCommit() {
	if fs.inTxg {
		return
	}
	fs.inTxg = true
	defer func() { fs.inTxg = false }()
	fs.stats.TxgCommits++
	inos := make([]Ino, 0)
	for ino, n := range fs.inodes {
		if n.dirty {
			inos = append(inos, ino)
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		fs.writeBlob(fs.inodes[ino])
	}
	// Three-phase flush: blobs must be durable before the imap that
	// references them, and the imap slot before the uberblock that
	// selects it — otherwise a reordered cache drain could persist a
	// root pointing at state the device never wrote.
	fs.devCheck(fs.dev.Flush())
	// The committed txg supersedes the intent log. Start a fresh log
	// incarnation (epoch bump) rather than reclaiming in place: the
	// uberblock records only the epoch, and recovery replays every
	// same-epoch record still physically present in the region, so
	// reclaimed-in-place records would be re-applied over the newer
	// committed state, resurrecting stale block maps.
	fs.zil = wal.New(fs.env, blockdev.Region(fs.dev, fs.zilOff, fs.zilLen), fs.zil.Epoch()+1)
	fs.writeImap()
	fs.devCheck(fs.dev.Flush())
	fs.writeUberblock()
	fs.devCheck(fs.dev.Flush())
	// The uberblock selecting the new generation is durable, so nothing
	// can reference the deferred blocks any more: free them and hand the
	// ranges to the device as TRIMs (coalesced into runs, the way ZFS
	// batches frees per txg) so the FTL stops migrating dead data.
	sort.Slice(fs.deferred, func(i, j int) bool { return fs.deferred[i] < fs.deferred[j] })
	for i := 0; i < len(fs.deferred); {
		run := int64(1)
		for i+int(run) < len(fs.deferred) && fs.deferred[i+int(run)] == fs.deferred[i]+run {
			run++
		}
		for j := int64(0); j < run; j++ {
			fs.bitClear(fs.deferred[i] + j)
		}
		if fs.dev.Discard(fs.blockAddr(fs.deferred[i]), run*BlockSize) == nil {
			fs.stats.DiscardedBlocks += run
		}
		i += int(run)
	}
	fs.deferred = fs.deferred[:0]
	fs.lastTxg = fs.env.Now()
}

// imapSlotBase returns the device offset of the imap copy that
// generation gen selects. The region is double-buffered like the
// uberblock ring: overwriting the live copy in place would let a torn
// imap write corrupt entries the previous generation still depends on.
func (fs *FS) imapSlotBase(gen uint64) int64 {
	return fs.imapOff + int64(gen%2)*(fs.imapLen/2)
}

// writeImap persists the inode map into the slot the next generation
// selects. The uberblock publishing that generation is written
// separately (writeUberblock) after the slot is flushed.
func (fs *FS) writeImap() {
	const entrySize = 16
	fs.generation++
	base := fs.imapSlotBase(fs.generation)
	per := Ino(BlockSize / entrySize)
	buf := make([]byte, BlockSize)
	for first := Ino(0); first < fs.nextIno; first += per {
		for i := Ino(0); i < per; i++ {
			off := int64(i) * entrySize
			loc, ok := fs.imap[first+i]
			if !ok {
				binary.BigEndian.PutUint64(buf[off:], ^uint64(0))
				binary.BigEndian.PutUint64(buf[off+8:], 0)
				continue
			}
			binary.BigEndian.PutUint64(buf[off:], uint64(loc.first))
			binary.BigEndian.PutUint64(buf[off+8:], uint64(loc.count))
		}
		fs.devCheck(fs.dev.WriteAt(buf, base+int64(first)*entrySize))
	}
	fs.env.Serialize(int(fs.nextIno) * entrySize)
	fs.stats.MetaWrites++
}

// writeUberblock publishes the current generation; call only after the
// imap slot it selects is durable.
func (fs *FS) writeUberblock() {
	fs.devCheck(fs.dev.WriteAt(encodeUberblock(fs.generation, fs.nextIno, fs.zil.Epoch()),
		int64(fs.generation%2)*uberSlotSize))
}

// The uberblock is double-slotted like ZFS's uberblock ring: each txg
// writes the next generation to the alternate slot, so a torn uberblock
// write can never destroy the previous consistent root. A CRC over the
// slot makes tears detectable.
const (
	uberMagic    = 0xc0f5c0f5
	uberSlotSize = BlockSize / 2
	uberSize     = 4 + 8 + 4 + 8 + 4 // magic, nextIno, zilEpoch, generation, crc
)

func encodeUberblock(gen uint64, nextIno Ino, zilEpoch uint32) []byte {
	sb := make([]byte, uberSlotSize)
	binary.BigEndian.PutUint32(sb, uberMagic)
	binary.BigEndian.PutUint64(sb[4:], uint64(nextIno))
	binary.BigEndian.PutUint32(sb[12:], zilEpoch)
	binary.BigEndian.PutUint64(sb[16:], gen)
	binary.BigEndian.PutUint32(sb[24:], crc32.ChecksumIEEE(sb[:24]))
	return sb
}

func decodeUberblock(sb []byte) (gen uint64, nextIno Ino, zilEpoch uint32, ok bool) {
	if binary.BigEndian.Uint32(sb) != uberMagic {
		return 0, 0, 0, false
	}
	if crc32.ChecksumIEEE(sb[:24]) != binary.BigEndian.Uint32(sb[24:]) {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint64(sb[16:]), Ino(binary.BigEndian.Uint64(sb[4:])), binary.BigEndian.Uint32(sb[12:]), true
}
