package extfs

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

func newMount(t testing.TB, prof Profile) (*sim.Env, *blockdev.Dev, *FS, *vfs.Mount) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := New(env, dev, prof)
	m := vfs.NewMount(env, fs, vfs.DefaultConfig())
	return env, dev, fs, m
}

func TestCreateWriteReadFile(t *testing.T) {
	_, _, _, m := newMount(t, Ext4Profile())
	f, err := m.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, extfs")
	f.Write(data)
	f.Close()

	g, err := m.Open("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := g.ReadAt(buf, 0)
	if !bytes.Equal(buf[:n], data) {
		t.Fatalf("read %q, want %q", buf[:n], data)
	}
}

func TestDataSurvivesCacheDrop(t *testing.T) {
	_, _, _, m := newMount(t, Ext4Profile())
	if err := m.MkdirAll("a/b/c"); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Create("a/b/c/file")
	payload := bytes.Repeat([]byte{0x5a}, 3*vfs.PageSize+123)
	f.Write(payload)
	f.Close()
	m.DropCaches()

	g, err := m.Open("a/b/c/file")
	if err != nil {
		t.Fatalf("open after drop: %v", err)
	}
	got := make([]byte, len(payload))
	n, _ := g.ReadAt(got, 0)
	if n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("data mismatch after cache drop (n=%d)", n)
	}
}

func TestDirectoriesAndReaddir(t *testing.T) {
	_, _, _, m := newMount(t, XFSProfile())
	m.MkdirAll("dir")
	for i := 0; i < 20; i++ {
		f, err := m.Create(fmt.Sprintf("dir/f%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	ents, err := m.ReadDir("dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 20 {
		t.Fatalf("readdir returned %d entries", len(ents))
	}
	// XFS flavor: sorted.
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Name >= ents[i].Name {
			t.Fatal("xfs readdir not sorted")
		}
	}
}

func TestExt4HashedReaddirOrder(t *testing.T) {
	_, _, _, m := newMount(t, Ext4Profile())
	m.MkdirAll("dir")
	for i := 0; i < 50; i++ {
		f, _ := m.Create(fmt.Sprintf("dir/f%02d", i))
		f.Close()
	}
	ents, _ := m.ReadDir("dir")
	sorted := true
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Name > ents[i].Name {
			sorted = false
		}
	}
	if sorted {
		t.Fatal("ext4 readdir unexpectedly sorted (htree hash order expected)")
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	_, _, fs, m := newMount(t, Ext4Profile())
	f, _ := m.Create("big")
	f.Write(bytes.Repeat([]byte{1}, 1<<20))
	f.Close()
	m.Sync()
	used := func() int64 {
		n := int64(0)
		for b := int64(0); b < fs.lay.dataBlocks; b++ {
			if fs.bitGet(b) {
				n++
			}
		}
		return n
	}
	before := used()
	if before < 256 {
		t.Fatalf("expected >=256 blocks used, got %d", before)
	}
	if err := m.Remove("big"); err != nil {
		t.Fatal(err)
	}
	// Frees are deferred until the journal commit that records the
	// remove is durable (JBD semantics), so sync before counting.
	m.Sync()
	if after := used(); after >= before {
		t.Fatalf("remove did not free blocks: %d -> %d", before, after)
	}
}

func TestRenameAcrossDirs(t *testing.T) {
	_, _, _, m := newMount(t, Ext4Profile())
	m.MkdirAll("a")
	m.MkdirAll("b")
	f, _ := m.Create("a/x")
	f.Write([]byte("payload"))
	f.Close()
	if err := m.Rename("a/x", "b/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("a/x"); err != vfs.ErrNotExist {
		t.Fatalf("old path still exists: %v", err)
	}
	g, err := m.Open("b/y")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := g.ReadAt(buf, 0)
	if string(buf[:n]) != "payload" {
		t.Fatal("rename lost data")
	}
}

func TestRmdirNonEmptyFails(t *testing.T) {
	_, _, _, m := newMount(t, Ext4Profile())
	m.MkdirAll("d")
	f, _ := m.Create("d/f")
	f.Close()
	if err := m.Rmdir("d"); err != vfs.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	m.Remove("d/f")
	if err := m.Rmdir("d"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
}

func TestSequentialAllocationIsContiguous(t *testing.T) {
	_, _, fs, m := newMount(t, Ext4Profile())
	f, _ := m.Create("seq")
	f.Write(bytes.Repeat([]byte{7}, 8<<20))
	f.Close()
	m.Sync()
	ino, _, err := fs.Lookup(rootIno, "seq")
	if err != nil {
		t.Fatal(err)
	}
	x := fs.inode(ino.(Ino))
	if len(x.extents) > 4 {
		t.Fatalf("sequential 8MiB file fragmented into %d extents", len(x.extents))
	}
}

func TestCrashRecoverySyncedSurvives(t *testing.T) {
	env := sim.NewEnv(2)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := New(env, dev, Ext4Profile())
	m := vfs.NewMount(env, fs, vfs.DefaultConfig())
	m.MkdirAll("d")
	f, _ := m.Create("d/file")
	f.Write(bytes.Repeat([]byte{9}, 10000))
	f.Fsync()
	f.Close()
	m.Sync()

	dev.EnableCrashTracking()
	// Unsynced garbage after the sync point.
	g, _ := m.Create("d/volatile")
	g.Write([]byte("gone"))
	g.Close()
	dev.Crash(0)

	fs2, err := Recover(env, dev, Ext4Profile())
	if err != nil {
		t.Fatal(err)
	}
	m2 := vfs.NewMount(env, fs2, vfs.DefaultConfig())
	h, err := m2.Open("d/file")
	if err != nil {
		t.Fatalf("synced file lost: %v", err)
	}
	buf := make([]byte, 10000)
	n, _ := h.ReadAt(buf, 0)
	if n != 10000 || !bytes.Equal(buf, bytes.Repeat([]byte{9}, 10000)) {
		t.Fatal("synced data corrupted after crash")
	}
}

func TestJournalReplayAfterCrash(t *testing.T) {
	env := sim.NewEnv(3)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs := New(env, dev, Ext4Profile())
	m := vfs.NewMount(env, fs, vfs.DefaultConfig())
	m.Sync() // baseline superblock
	// Journaled-but-not-checkpointed namespace ops.
	m.MkdirAll("x/y")
	for i := 0; i < 10; i++ {
		f, _ := m.Create(fmt.Sprintf("x/y/f%d", i))
		f.Close()
	}
	fs.commit() // journal committed, metadata NOT written back in place
	dev.EnableCrashTracking()
	dev.Crash(0) // nothing after this point anyway

	fs2, err := Recover(env, dev, Ext4Profile())
	if err != nil {
		t.Fatal(err)
	}
	m2 := vfs.NewMount(env, fs2, vfs.DefaultConfig())
	for i := 0; i < 10; i++ {
		if _, err := m2.Stat(fmt.Sprintf("x/y/f%d", i)); err != nil {
			t.Fatalf("journaled create f%d lost: %v", i, err)
		}
	}
}

func TestLowLevelFileRoundTrip(t *testing.T) {
	_, _, fs, _ := newMount(t, Ext4Profile())
	lf := fs.OpenLowLevel("betrfs.data", 64<<20)
	data := bytes.Repeat([]byte{0xcd}, 128<<10)
	lf.PWrite(data, 12288)
	got := make([]byte, len(data))
	lf.PRead(got, 12288)
	if !bytes.Equal(got, data) {
		t.Fatal("lowlevel round trip failed")
	}
	// Unaligned write.
	lf.PWrite([]byte("abc"), 5000)
	small := make([]byte, 3)
	lf.PRead(small, 5000)
	if string(small) != "abc" {
		t.Fatal("unaligned lowlevel write failed")
	}
}

func TestLowLevelAsyncWrite(t *testing.T) {
	env, _, fs, _ := newMount(t, Ext4Profile())
	lf := fs.OpenLowLevel("wal", 8<<20)
	data := bytes.Repeat([]byte{1}, 1<<20)
	wait := lf.SubmitPWrite(data, 0)
	before := env.Now()
	wait()
	if env.Now() < before {
		t.Fatal("wait went backwards")
	}
	got := make([]byte, len(data))
	lf.PRead(got, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("async write data mismatch")
	}
}

func TestRandomWritesSlowerThanSequential(t *testing.T) {
	envSeq := sim.NewEnv(1)
	devS := blockdev.New(envSeq, blockdev.SamsungEVO860().Scale(64))
	fsS := New(envSeq, devS, Ext4Profile())
	mS := vfs.NewMount(envSeq, fsS, vfs.DefaultConfig())
	f, _ := mS.Create("f")
	f.Write(bytes.Repeat([]byte{1}, 32<<20))
	f.Fsync()
	seqTime := envSeq.Now()

	envR := sim.NewEnv(1)
	devR := blockdev.New(envR, blockdev.SamsungEVO860().Scale(64))
	fsR := New(envR, devR, Ext4Profile())
	mR := vfs.NewMount(envR, fsR, vfs.DefaultConfig())
	g, _ := mR.Create("f")
	g.Write(bytes.Repeat([]byte{1}, 32<<20)) // build the file
	g.Fsync()
	base := envR.Now()
	rnd := sim.NewRand(4)
	buf := make([]byte, vfs.PageSize)
	for i := 0; i < 2048; i++ {
		g.WriteAt(buf, int64(rnd.Intn(32<<20/vfs.PageSize))*vfs.PageSize)
	}
	g.Fsync()
	mR.Sync()
	randTime := envR.Now() - base

	// 2048 random 4K writes = 8MiB; sequential 32MiB took seqTime.
	// Per-byte, random must be far slower.
	seqPerByte := float64(seqTime) / float64(32<<20)
	randPerByte := float64(randTime) / float64(8<<20)
	if randPerByte < 3*seqPerByte {
		t.Fatalf("random writes (%.1f ns/B) not much slower than sequential (%.1f ns/B)",
			randPerByte, seqPerByte)
	}
}
