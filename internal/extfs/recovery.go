package extfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
	"betrfs/internal/wal"
)

// Mount-time recovery: the superblock stores the journal recovery hint;
// the inode table is scanned fsck-style to rebuild the block bitmap and
// the inode allocator, then the journal is replayed.

const superMagic = 0xe47f5b10

func timeDuration(v int64) time.Duration { return time.Duration(v) }

func (fs *FS) inodeExists(ino Ino) bool {
	if _, ok := fs.inodes[ino]; ok {
		return true
	}
	if ino < rootIno {
		return false
	}
	// Range-check before itableBlockAddr, which panics out of range.
	addr := fs.lay.itableOff + int64(ino)/inodesPerBlock*BlockSize
	if addr+BlockSize > fs.lay.itableOff+fs.lay.itableLen {
		return false
	}
	buf := make([]byte, BlockSize)
	if fs.dev.ReadAt(buf, addr) != nil {
		return false // unreadable table block: treat the inode as lost
	}
	return buf[(int64(ino)%inodesPerBlock)*inodeSize] == 1
}

// The superblock is double-slotted: each write goes to the alternate
// half of block 0 with a generation number and a CRC, so a torn
// superblock write can never destroy the previous consistent copy.
const superSlotSize = BlockSize / 2

// writeSuper persists the superblock (journal hint + allocator state).
func (fs *FS) writeSuper() {
	hint := fs.jnl.log.Hint()
	fs.superGen++
	b := make([]byte, superSlotSize)
	binary.BigEndian.PutUint32(b[0:], superMagic)
	binary.BigEndian.PutUint64(b[4:], uint64(fs.nextIno))
	binary.BigEndian.PutUint64(b[12:], uint64(hint.Offset))
	binary.BigEndian.PutUint64(b[20:], hint.LSN)
	binary.BigEndian.PutUint32(b[28:], hint.Epoch)
	binary.BigEndian.PutUint64(b[32:], fs.superGen)
	binary.BigEndian.PutUint32(b[40:], crc32.ChecksumIEEE(b[:40]))
	fs.devCheck(fs.dev.WriteAt(b, int64(fs.superGen%2)*superSlotSize))
	fs.devCheck(fs.dev.Flush())
}

// readSuper picks the newest superblock slot that passes its CRC.
func readSuper(dev blockdev.Device) (nextIno Ino, hint wal.Hint, gen uint64, err error) {
	sb := make([]byte, BlockSize)
	if rerr := dev.ReadAt(sb, 0); rerr != nil {
		return 0, wal.Hint{}, 0, fmt.Errorf("extfs: superblock unreadable: %w", rerr)
	}
	found := false
	for slot := 0; slot < 2; slot++ {
		b := sb[slot*superSlotSize : (slot+1)*superSlotSize]
		if binary.BigEndian.Uint32(b[0:]) != superMagic {
			continue
		}
		if crc32.ChecksumIEEE(b[:40]) != binary.BigEndian.Uint32(b[40:]) {
			continue
		}
		g := binary.BigEndian.Uint64(b[32:])
		if found && g <= gen {
			continue
		}
		gen = g
		nextIno = Ino(binary.BigEndian.Uint64(b[4:]))
		hint = wal.Hint{
			Offset: int64(binary.BigEndian.Uint64(b[12:])),
			LSN:    binary.BigEndian.Uint64(b[20:]),
			Epoch:  binary.BigEndian.Uint32(b[28:]),
		}
		found = true
	}
	if !found {
		return 0, wal.Hint{}, 0, fmt.Errorf("extfs: no valid superblock")
	}
	return nextIno, hint, gen, nil
}

// Recover mounts an existing extfs: superblock, fsck scan, journal replay.
// A device error during recovery fails the mount (returned, not panicked).
func Recover(env *sim.Env, dev blockdev.Device, prof Profile) (rfs *FS, err error) {
	defer ioerr.Guard(&err)
	fs := New(env, dev, prof)
	// New() created a fresh root; discard that state and reload.
	fs.inodes = make(map[Ino]*xinode)
	fs.itableDirty = make(map[int64]bool)
	for i := range fs.bitmap {
		fs.bitmap[i] = 0
	}

	nextIno, hint, gen, err := readSuper(dev)
	if err != nil {
		return nil, err
	}
	fs.nextIno = nextIno
	fs.superGen = gen
	// A corrupted nextIno cannot be trusted to bound the table scan.
	if maxInos := Ino(fs.lay.itableLen / inodeSize); fs.nextIno > maxInos {
		fs.nextIno = maxInos
	}

	// fsck pass: scan the inode table, rebuilding the bitmap from extent
	// lists and finding the highest inode number. Inodes that fail
	// validation — torn table writes, corrupted extents — are dropped and
	// tombstoned; they described un-synced state.
	maxIno := rootIno
	tableBlocks := fs.lay.itableLen / BlockSize
	buf := make([]byte, BlockSize)
	for tb := int64(0); tb < tableBlocks; tb++ {
		firstIno := tb * inodesPerBlock
		if Ino(firstIno) >= fs.nextIno {
			break
		}
		if rerr := fs.dev.ReadAt(buf, fs.lay.itableOff+tb*BlockSize); rerr != nil {
			return nil, fmt.Errorf("extfs: inode table block %d unreadable: %w", tb, rerr)
		}
		for i := int64(0); i < inodesPerBlock; i++ {
			ino := Ino(firstIno + i)
			if ino < rootIno {
				continue
			}
			if buf[i*inodeSize] != 1 {
				continue
			}
			x, err := fs.readInode(ino) // cached table block; accounting only
			if err != nil {
				fs.erased = append(fs.erased, ino)
				fs.stats.DroppedNodes++
				continue
			}
			fs.inodes[ino] = x
			for _, e := range x.extents {
				for j := int64(0); j < e.count; j++ {
					fs.bitSet(e.phys + j)
				}
			}
			for _, ob := range x.overflow {
				fs.bitSet(ob)
			}
			if ino > maxIno {
				maxIno = ino
			}
		}
	}
	if maxIno+1 > fs.nextIno {
		fs.nextIno = maxIno + 1
	}
	if _, ok := fs.inodes[rootIno]; !ok {
		root := &xinode{ino: rootIno, dir: true, nlink: 2, children: map[string]dirent{}, childrenLoaded: true}
		fs.inodes[rootIno] = root
		fs.markInodeDirty(root)
	}

	// Journal replay. An unreadable journal fails the mount: replaying a
	// truncated log would silently lose committed operations.
	region := blockdev.Region(dev, fs.lay.journalOff, fs.lay.journalLen)
	recs, rerr := wal.Recover(env, region, hint)
	if rerr != nil {
		return nil, fmt.Errorf("extfs: journal unreadable: %w", rerr)
	}
	for _, rec := range recs {
		fs.replayRecord(rec)
	}
	fs.jnl.log = wal.New(env, region, hint.Epoch+1)
	// Prune dangling directory entries — children whose inode was
	// dropped by the fsck pass and not resurrected by journal replay.
	var dirs []*xinode
	for _, x := range fs.inodes {
		if x.dir {
			dirs = append(dirs, x)
		}
	}
	// Visit in inode order: dirs was collected from a map walk and
	// loadDir charges device reads, so order affects simulated timing.
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].ino < dirs[j].ino })
	for _, x := range dirs {
		fs.loadDir(x)
		for name, d := range x.children {
			if _, ok := fs.inodeIfPresent(d.ino); !ok {
				delete(x.children, name)
				fs.markInodeDirty(x)
			}
		}
	}
	fs.writebackMeta()
	fs.writeSuper()
	return fs, nil
}
