package extfs

import (
	"encoding/binary"
	"fmt"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
	"betrfs/internal/wal"
)

// Mount-time recovery: the superblock stores the journal recovery hint;
// the inode table is scanned fsck-style to rebuild the block bitmap and
// the inode allocator, then the journal is replayed.

const superMagic = 0xe47f5b10

func timeDuration(v int64) time.Duration { return time.Duration(v) }

func (fs *FS) inodeExists(ino Ino) bool {
	if _, ok := fs.inodes[ino]; ok {
		return true
	}
	if fs.itableBlockAddr(ino) >= fs.lay.itableOff+fs.lay.itableLen {
		return false
	}
	buf := make([]byte, BlockSize)
	fs.dev.ReadAt(buf, fs.itableBlockAddr(ino))
	return buf[(int64(ino)%inodesPerBlock)*inodeSize] == 1
}

// writeSuper persists the superblock (journal hint + allocator state).
func (fs *FS) writeSuper() {
	hint := fs.jnl.log.Hint()
	b := make([]byte, BlockSize)
	binary.BigEndian.PutUint32(b[0:], superMagic)
	binary.BigEndian.PutUint64(b[4:], uint64(fs.nextIno))
	binary.BigEndian.PutUint64(b[12:], uint64(hint.Offset))
	binary.BigEndian.PutUint64(b[20:], hint.LSN)
	binary.BigEndian.PutUint32(b[28:], hint.Epoch)
	fs.dev.WriteAt(b, 0)
	fs.dev.Flush()
}

// Recover mounts an existing extfs: superblock, fsck scan, journal replay.
func Recover(env *sim.Env, dev blockdev.Device, prof Profile) (*FS, error) {
	fs := New(env, dev, prof)
	// New() created a fresh root; discard that state and reload.
	fs.inodes = make(map[Ino]*xinode)
	fs.itableDirty = make(map[int64]bool)
	for i := range fs.bitmap {
		fs.bitmap[i] = 0
	}

	b := make([]byte, BlockSize)
	dev.ReadAt(b, 0)
	if binary.BigEndian.Uint32(b[0:]) != superMagic {
		return nil, fmt.Errorf("extfs: no superblock")
	}
	fs.nextIno = Ino(binary.BigEndian.Uint64(b[4:]))
	hint := wal.Hint{
		Offset: int64(binary.BigEndian.Uint64(b[12:])),
		LSN:    binary.BigEndian.Uint64(b[20:]),
		Epoch:  binary.BigEndian.Uint32(b[28:]),
	}

	// fsck pass: scan the inode table, rebuilding the bitmap from extent
	// lists and finding the highest inode number.
	maxIno := rootIno
	tableBlocks := fs.lay.itableLen / BlockSize
	buf := make([]byte, BlockSize)
	for tb := int64(0); tb < tableBlocks; tb++ {
		firstIno := tb * inodesPerBlock
		if Ino(firstIno) >= fs.nextIno {
			break
		}
		fs.dev.ReadAt(buf, fs.lay.itableOff+tb*BlockSize)
		for i := int64(0); i < inodesPerBlock; i++ {
			ino := Ino(firstIno + i)
			if ino < rootIno {
				continue
			}
			if buf[i*inodeSize] != 1 {
				continue
			}
			x := fs.readInode(ino) // cached table block; accounting only
			fs.inodes[ino] = x
			for _, e := range x.extents {
				for j := int64(0); j < e.count; j++ {
					fs.bitSet(e.phys + j)
				}
			}
			for _, ob := range x.overflow {
				fs.bitSet(ob)
			}
			if ino > maxIno {
				maxIno = ino
			}
		}
	}
	if maxIno+1 > fs.nextIno {
		fs.nextIno = maxIno + 1
	}
	if _, ok := fs.inodes[rootIno]; !ok {
		root := &xinode{ino: rootIno, dir: true, nlink: 2, children: map[string]dirent{}, childrenLoaded: true}
		fs.inodes[rootIno] = root
		fs.markInodeDirty(root)
	}

	// Journal replay.
	region := blockdev.Region(dev, fs.lay.journalOff, fs.lay.journalLen)
	for _, rec := range wal.Recover(env, region, hint) {
		fs.replayRecord(rec)
	}
	fs.jnl.log = wal.New(env, region, hint.Epoch+1)
	fs.writebackMeta()
	fs.writeSuper()
	return fs, nil
}
