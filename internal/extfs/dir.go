package extfs

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Directory content is stored in the directory inode's data blocks as a
// packed entry list; it is decoded into the in-memory children map on
// first access and rewritten wholesale on metadata write-back. ext4-style
// htree directories return entries in name-hash order, which decorrelates
// readdir order from inode/data allocation order — a major contributor to
// ext4's slow cold-cache grep in the paper's Table 1.

// loadDir decodes a directory's content from its data blocks. A
// malformed blob — torn write, corruption — resets the directory to
// empty rather than panicking; journal replay re-adds any entries whose
// records are still in the log.
func (fs *FS) loadDir(x *xinode) {
	if x.childrenLoaded {
		return
	}
	x.children = make(map[string]dirent)
	x.childrenLoaded = true
	if x.size == 0 {
		return
	}
	data := make([]byte, x.size)
	fs.readExtents(x, data, 0)
	fs.stats.DirReads++
	fs.env.Serialize(len(data))
	if err := decodeDir(data, x.children); err != nil {
		x.children = make(map[string]dirent)
		fs.stats.DirRepairs++
		fs.markInodeDirty(x)
	}
}

func decodeDir(data []byte, out map[string]dirent) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("extfs: malformed directory blob: %v", r)
		}
	}()
	if len(data) < 4 {
		return fmt.Errorf("extfs: directory blob too short")
	}
	n := int(binary.BigEndian.Uint32(data))
	pos := 4
	for i := 0; i < n; i++ {
		if pos+2 > len(data) {
			return fmt.Errorf("extfs: directory blob truncated")
		}
		nameLen := int(binary.BigEndian.Uint16(data[pos:]))
		pos += 2
		if nameLen <= 0 || pos+nameLen+9 > len(data) {
			return fmt.Errorf("extfs: directory entry out of range")
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		ino := Ino(binary.BigEndian.Uint64(data[pos:]))
		pos += 8
		dir := data[pos] == 1
		pos++
		if ino < rootIno {
			return fmt.Errorf("extfs: directory entry with invalid inode %d", ino)
		}
		out[name] = dirent{ino: ino, dir: dir}
	}
	return nil
}

// writeDir persists a directory's content into its data blocks.
func (fs *FS) writeDir(x *xinode) {
	names := make([]string, 0, len(x.children))
	for name := range x.children {
		names = append(names, name)
	}
	sort.Strings(names)
	size := 4
	for _, name := range names {
		size += 2 + len(name) + 9
	}
	data := make([]byte, size)
	binary.BigEndian.PutUint32(data, uint32(len(names)))
	pos := 4
	for _, name := range names {
		binary.BigEndian.PutUint16(data[pos:], uint16(len(name)))
		pos += 2
		copy(data[pos:], name)
		pos += len(name)
		d := x.children[name]
		binary.BigEndian.PutUint64(data[pos:], uint64(d.ino))
		pos += 8
		if d.dir {
			data[pos] = 1
		}
		pos++
	}
	fs.env.Serialize(len(data))
	// Resize the directory file and write the blocks.
	newBlocks := int64((size + BlockSize - 1) / BlockSize)
	oldBlocks := int64((x.size + BlockSize - 1) / BlockSize)
	if newBlocks < oldBlocks {
		fs.freeBlocksFrom(x, newBlocks)
	} else if newBlocks > oldBlocks {
		fs.allocBlocks(x, oldBlocks, newBlocks-oldBlocks)
	}
	x.size = int64(size)
	padded := make([]byte, newBlocks*BlockSize)
	copy(padded, data)
	fs.writeExtents(x, padded, 0)
}

// readExtents reads len(p) bytes of file content starting at byte offset
// off, merging physically contiguous runs into single device reads.
func (fs *FS) readExtents(x *xinode, p []byte, off int64) {
	pos := int64(0)
	for pos < int64(len(p)) {
		blk := (off + pos) / BlockSize
		bo := (off + pos) % BlockSize
		phys := x.physFor(blk)
		// Extend across physically contiguous blocks until the request
		// is satisfied or the physical run breaks.
		run := int64(1)
		for pos+run*BlockSize-bo < int64(len(p)) {
			np := x.physFor(blk + run)
			if phys < 0 || np != phys+run {
				break
			}
			run++
		}
		want := run*BlockSize - bo
		if rem := int64(len(p)) - pos; want > rem {
			want = rem
		}
		if phys < 0 {
			for i := int64(0); i < want; i++ {
				p[pos+i] = 0
			}
		} else {
			buf := make([]byte, ((bo+want)+BlockSize-1)/BlockSize*BlockSize)
			fs.devCheck(fs.dev.ReadAt(buf, fs.blockAddr(phys)))
			copy(p[pos:pos+want], buf[bo:])
			fs.stats.DataReads++
		}
		pos += want
	}
}

// writeExtents writes block-aligned content p at byte offset off
// (off and len(p) must be multiples of BlockSize), merging contiguous
// physical runs into single device writes.
func (fs *FS) writeExtents(x *xinode, p []byte, off int64) {
	if off%BlockSize != 0 || int64(len(p))%BlockSize != 0 {
		panic(fmt.Sprintf("extfs: unaligned writeExtents off=%d len=%d", off, len(p)))
	}
	pos := int64(0)
	for pos < int64(len(p)) {
		blk := (off + pos) / BlockSize
		phys := fs.ensureBlock(x, blk)
		run := int64(1)
		for pos+run*BlockSize < int64(len(p)) {
			np := fs.ensureBlock(x, blk+run)
			if np != phys+run {
				break
			}
			run++
		}
		fs.devCheck(fs.dev.WriteAt(p[pos:pos+run*BlockSize], fs.blockAddr(phys)))
		fs.stats.DataWrites++
		pos += run * BlockSize
	}
}

// hashName is the deterministic name shuffle for htree readdir order.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
