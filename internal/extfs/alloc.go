package extfs

// Block allocation: goal-directed first fit over a bitmap, with
// allocation-group spreading for directories. Contiguous allocation is
// what turns sequential file writes into sequential device writes, and
// fragmented allocation is what ages traversal workloads.

func (fs *FS) bitGet(b int64) bool { return fs.bitmap[b/64]&(1<<(uint(b)%64)) != 0 }
func (fs *FS) bitSet(b int64)      { fs.bitmap[b/64] |= 1 << (uint(b) % 64) }
func (fs *FS) bitClear(b int64)    { fs.bitmap[b/64] &^= 1 << (uint(b) % 64) }

// allocRun allocates up to want contiguous blocks starting the search at
// goal, returning the first block and the run length (>= 1). The search
// wraps around the data area, skipping fully allocated regions a word at
// a time.
func (fs *FS) allocRun(goal int64, want int64) (int64, int64) {
	total := fs.lay.dataBlocks
	if goal < 0 || goal >= total {
		goal = 0
	}
	b := goal
	wrapped := false
	for {
		nb := skipAllocatedWords(fs.bitmap, b, total)
		if nb >= total {
			if wrapped {
				fs.noSpace()
				return 0, 0
			}
			wrapped = true
			b = 0
			continue
		}
		if wrapped && nb >= goal {
			fs.noSpace()
			return 0, 0
		}
		b = nb
		// Extend the run as far as possible.
		run := int64(1)
		for run < want && b+run < total && !fs.bitGet(b+run) {
			run++
		}
		for i := int64(0); i < run; i++ {
			fs.bitSet(b + i)
		}
		fs.stats.AllocExtents++
		return b, run
	}
}

// skipAllocatedWords advances b past fully allocated regions a word (64
// blocks) at a time, returning the next free candidate at or after b.
func skipAllocatedWords(bitmap []uint64, b, total int64) int64 {
	for b < total {
		if b%64 == 0 {
			if bitmap[b/64] == ^uint64(0) {
				b += 64
				continue
			}
		}
		if bitmap[b/64]&(1<<(uint(b)%64)) == 0 {
			return b
		}
		b++
	}
	return total
}

// groupGoal returns the allocation goal for an inode: its own last
// allocation if any, else its group's rotor.
func (fs *FS) groupGoal(x *xinode) int64 {
	if x.lastAlloc > 0 {
		return x.lastAlloc
	}
	return fs.groupPtr[x.group%len(fs.groupPtr)]
}

// allocBlocks appends count logical blocks starting at logical to x's
// extent map, allocating physical runs.
func (fs *FS) allocBlocks(x *xinode, logical, count int64) {
	for count > 0 {
		phys, run := fs.allocRun(fs.groupGoal(x), count)
		x.lastAlloc = phys + run
		fs.groupPtr[x.group%len(fs.groupPtr)] = phys + run
		fs.appendExtent(x, extent{logical: logical, phys: phys, count: run})
		logical += run
		count -= run
	}
	fs.markInodeDirty(x)
}

// appendExtent adds e, merging with the last extent when contiguous.
func (fs *FS) appendExtent(x *xinode, e extent) {
	if n := len(x.extents); n > 0 {
		last := &x.extents[n-1]
		if last.logical+last.count == e.logical && last.phys+last.count == e.phys {
			last.count += e.count
			return
		}
	}
	x.extents = append(x.extents, e)
}

// physFor returns the physical block for logical block blk, or -1 when it
// is a hole.
func (x *xinode) physFor(blk int64) int64 {
	for i := range x.extents {
		e := &x.extents[i]
		if blk >= e.logical && blk < e.logical+e.count {
			return e.phys + (blk - e.logical)
		}
	}
	return -1
}

// ensureBlock returns the physical block for blk, allocating it if absent.
func (fs *FS) ensureBlock(x *xinode, blk int64) int64 {
	if p := x.physFor(blk); p >= 0 {
		return p
	}
	fs.allocBlocks(x, blk, 1)
	return x.physFor(blk)
}

// freeBlocksFrom releases all blocks with logical index >= fromBlk.
// Frees are deferred to the next journal commit (JBD semantics): reusing
// a freed block before the record that freed it is durable would let a
// crash resurrect the old file with another file's data in it.
func (fs *FS) freeBlocksFrom(x *xinode, fromBlk int64) {
	kept := x.extents[:0]
	for _, e := range x.extents {
		switch {
		case e.logical >= fromBlk:
			for i := int64(0); i < e.count; i++ {
				fs.deferFree(e.phys + i)
			}
		case e.logical+e.count > fromBlk:
			keep := fromBlk - e.logical
			for i := keep; i < e.count; i++ {
				fs.deferFree(e.phys + i)
			}
			e.count = keep
			kept = append(kept, e)
		default:
			kept = append(kept, e)
		}
	}
	x.extents = kept
	fs.markInodeDirty(x)
}

// deferFree queues block b for release at the next journal commit.
func (fs *FS) deferFree(b int64) {
	fs.pendingFree = append(fs.pendingFree, b)
}

// applyPendingFrees clears the bitmap bits of blocks freed since the
// last commit. Call only after the journal records that freed them have
// been flushed.
func (fs *FS) applyPendingFrees() {
	for _, b := range fs.pendingFree {
		fs.bitClear(b)
	}
	fs.pendingFree = fs.pendingFree[:0]
}

// freeAll releases every block of x.
func (fs *FS) freeAll(x *xinode) {
	fs.freeBlocksFrom(x, 0)
}
