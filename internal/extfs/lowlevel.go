package extfs

import (
	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/vfs"
)

// Low-level file API for the stacked BetrFS v0.4 southbound (§2.2): the
// Bε-tree's 11 files live as regular extfs files, fallocate()-ed up front.
// I/O here is direct to the file's extents; the southbound package layers
// the klibc page-cache copies and write-back stalls on top.

// ExtFile is an open low-level file.
type ExtFile struct {
	fs *FS
	x  *xinode
}

// OpenLowLevel creates (or opens) a root-level file named name,
// preallocated to size bytes in as few extents as possible.
func (fs *FS) OpenLowLevel(name string, size int64) *ExtFile {
	root := fs.inode(rootIno)
	fs.loadDir(root)
	if d, ok := root.children[name]; ok {
		return &ExtFile{fs: fs, x: fs.inode(d.ino)}
	}
	h, _, err := fs.Create(rootIno, name, false)
	if err != nil {
		panic(err)
	}
	x := fs.inode(h.(Ino))
	blocks := (size + BlockSize - 1) / BlockSize
	fs.allocBlocks(x, 0, blocks) // fallocate
	x.size = size
	fs.markInodeDirty(x)
	return &ExtFile{fs: fs, x: x}
}

// Size returns the preallocated size.
func (f *ExtFile) Size() int64 { return f.x.size }

// PWrite writes p at off directly to the file's extents (block-aligned
// writes go straight through; unaligned ones read-modify-write).
func (f *ExtFile) PWrite(p []byte, off int64) (err error) {
	defer ioerr.Guard(&err)
	fs := f.fs
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	if off%BlockSize == 0 && int64(len(p))%BlockSize == 0 {
		fs.writeExtents(f.x, p, off)
		return nil
	}
	// Read-modify-write the boundary blocks.
	start := off / BlockSize * BlockSize
	end := (off + int64(len(p)) + BlockSize - 1) / BlockSize * BlockSize
	buf := make([]byte, end-start)
	fs.readExtents(f.x, buf, start)
	copy(buf[off-start:], p)
	fs.writeExtents(f.x, buf, start)
	return nil
}

// PRead reads len(p) bytes at off.
func (f *ExtFile) PRead(p []byte, off int64) (err error) {
	defer ioerr.Guard(&err)
	f.fs.readExtents(f.x, p, off)
	return nil
}

// SubmitPWrite starts an asynchronous aligned write and returns a wait
// function reporting the outcome.
func (f *ExtFile) SubmitPWrite(p []byte, off int64) func() error {
	fs := f.fs
	if off%BlockSize != 0 || int64(len(p))%BlockSize != 0 {
		err := f.PWrite(p, off)
		return func() error { return err }
	}
	var submitErr error
	var waits []blockdev.Completion
	func() {
		defer ioerr.Guard(&submitErr)
		if ferr := fs.writeGate(); ferr != nil {
			submitErr = ferr
			return
		}
		// Issue per physical run.
		pos := int64(0)
		for pos < int64(len(p)) {
			blk := (off + pos) / BlockSize
			phys := fs.ensureBlock(f.x, blk)
			run := int64(1)
			for pos+run*BlockSize < int64(len(p)) {
				np := fs.ensureBlock(f.x, blk+run)
				if np != phys+run {
					break
				}
				run++
			}
			c := fs.dev.SubmitWrite(p[pos:pos+run*BlockSize], fs.blockAddr(phys))
			waits = append(waits, c)
			fs.stats.DataWrites++
			pos += run * BlockSize
		}
	}()
	return func() error {
		err := submitErr
		for _, c := range waits {
			if werr := fs.dev.Wait(c); werr != nil && err == nil {
				err = werr
				if fs.ioErr == nil {
					fs.ioErr = werr // sticky: the journal cannot trust the device
				}
			}
		}
		return err
	}
}

// Fsync commits the extfs journal on behalf of the file — this is the
// second journal of the double-journaling pathology (§2.3).
func (f *ExtFile) Fsync() (err error) {
	defer ioerr.Guard(&err)
	if ferr := f.fs.writeGate(); ferr != nil {
		return ferr
	}
	f.fs.devCheck(f.fs.dev.Flush())
	f.fs.commit()
	return nil
}

var _ vfs.FS = (*FS)(nil)
