package extfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"
)

// Inode table: fixed 512-byte on-disk inodes, eight per block. Up to 24
// extents are stored inline; larger files chain overflow blocks from the
// data area (a flattened extent tree).

const (
	inodeSize      = 512
	inodesPerBlock = BlockSize / inodeSize
	// 19 inline extents fill bytes 38..494 of the 512-byte inode; the
	// last 4 bytes hold a CRC over the rest so fsck and recovery can
	// tell a durable inode from a torn or corrupted one.
	inlineExtents = 19
	inodeCRCOff   = inodeSize - 4
	// overflow block: next pointer (8) + count (4) + extents (24 B
	// each) + trailing CRC (4).
	overflowExtents = (BlockSize - 12 - 4) / 24
	blockCRCOff     = BlockSize - 4
)

// sealBlock stamps the trailing CRC an overflow block carries.
func sealBlock(buf []byte) {
	binary.BigEndian.PutUint32(buf[blockCRCOff:], crc32.ChecksumIEEE(buf[:blockCRCOff]))
}

func blockSealed(buf []byte) bool {
	return crc32.ChecksumIEEE(buf[:blockCRCOff]) == binary.BigEndian.Uint32(buf[blockCRCOff:])
}

// itableBlockAddr returns the device offset of the inode-table block
// containing ino.
func (fs *FS) itableBlockAddr(ino Ino) int64 {
	blk := int64(ino) / inodesPerBlock
	addr := fs.lay.itableOff + blk*BlockSize
	if addr+BlockSize > fs.lay.itableOff+fs.lay.itableLen {
		panic(fmt.Sprintf("extfs: inode %d beyond inode table", ino))
	}
	return addr
}

// encodeInode serializes x into a 512-byte blob (plus overflow blocks for
// long extent lists, which are written separately).
func (fs *FS) encodeInode(x *xinode) []byte {
	b := make([]byte, inodeSize)
	b[0] = 1 // used
	if x.dir {
		b[1] = 1
	}
	binary.BigEndian.PutUint64(b[2:], uint64(x.size))
	binary.BigEndian.PutUint32(b[10:], uint32(x.nlink))
	binary.BigEndian.PutUint64(b[14:], uint64(x.mtime))
	binary.BigEndian.PutUint32(b[22:], uint32(x.group))
	n := len(x.extents)
	binary.BigEndian.PutUint32(b[26:], uint32(n))
	inline := n
	if inline > inlineExtents {
		inline = inlineExtents
	}
	off := 38
	for i := 0; i < inline; i++ {
		e := x.extents[i]
		binary.BigEndian.PutUint64(b[off:], uint64(e.logical))
		binary.BigEndian.PutUint64(b[off+8:], uint64(e.phys))
		binary.BigEndian.PutUint64(b[off+16:], uint64(e.count))
		off += 24
	}
	if n > inlineExtents {
		// Overflow chain pointer written at [30:38] by writeOverflow.
		ovb := fs.writeOverflow(x, x.extents[inlineExtents:])
		binary.BigEndian.PutUint64(b[30:], uint64(ovb))
	}
	binary.BigEndian.PutUint32(b[inodeCRCOff:], crc32.ChecksumIEEE(b[:inodeCRCOff]))
	return b
}

// writeOverflow persists an extent-overflow chain and returns the first
// block number. Any previous chain blocks are recycled first.
func (fs *FS) writeOverflow(x *xinode, exts []extent) int64 {
	for _, b := range x.overflow {
		fs.deferFree(b)
	}
	x.overflow = x.overflow[:0]
	first := int64(-1)
	var prevBuf []byte
	var prevAddr int64
	for len(exts) > 0 {
		n := len(exts)
		if n > overflowExtents {
			n = overflowExtents
		}
		blk, _ := fs.allocRun(fs.groupGoal(x), 1)
		buf := make([]byte, BlockSize)
		binary.BigEndian.PutUint64(buf[0:], ^uint64(0)) // next: none yet
		binary.BigEndian.PutUint32(buf[8:], uint32(n))
		off := 12
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[off:], uint64(exts[i].logical))
			binary.BigEndian.PutUint64(buf[off+8:], uint64(exts[i].phys))
			binary.BigEndian.PutUint64(buf[off+16:], uint64(exts[i].count))
			off += 24
		}
		if first < 0 {
			first = blk
		}
		x.overflow = append(x.overflow, blk)
		if prevBuf != nil {
			binary.BigEndian.PutUint64(prevBuf[0:], uint64(blk))
			sealBlock(prevBuf)
			fs.devCheck(fs.dev.WriteAt(prevBuf, prevAddr))
		}
		prevBuf = buf
		prevAddr = fs.blockAddr(blk)
		exts = exts[n:]
	}
	if prevBuf != nil {
		sealBlock(prevBuf)
		fs.devCheck(fs.dev.WriteAt(prevBuf, prevAddr))
	}
	fs.env.Serialize(BlockSize)
	return first
}

// readInode loads ino from the inode table (cold-cache path). A torn or
// corrupted on-disk inode — bad CRC, out-of-range extents, a broken
// overflow chain — comes back as an error so recovery can drop it
// instead of decoding garbage.
func (fs *FS) readInode(ino Ino) (rx *xinode, err error) {
	defer func() {
		if r := recover(); r != nil {
			rx, err = nil, fmt.Errorf("extfs: malformed inode %d: %v", ino, r)
		}
	}()
	buf := make([]byte, BlockSize)
	if rerr := fs.dev.ReadAt(buf, fs.itableBlockAddr(ino)); rerr != nil {
		return nil, fmt.Errorf("extfs: inode %d table block: %w", ino, rerr)
	}
	fs.stats.InodeReads++
	off := (int64(ino) % inodesPerBlock) * inodeSize
	b := buf[off : off+inodeSize]
	fs.env.Serialize(inodeSize)
	if b[0] != 1 {
		return nil, fmt.Errorf("extfs: reading unused inode %d", ino)
	}
	if crc32.ChecksumIEEE(b[:inodeCRCOff]) != binary.BigEndian.Uint32(b[inodeCRCOff:]) {
		return nil, fmt.Errorf("extfs: inode %d checksum mismatch", ino)
	}
	x := &xinode{ino: ino}
	x.dir = b[1] == 1
	x.size = int64(binary.BigEndian.Uint64(b[2:]))
	x.nlink = int(binary.BigEndian.Uint32(b[10:]))
	x.mtime = time.Duration(binary.BigEndian.Uint64(b[14:]))
	x.group = int(binary.BigEndian.Uint32(b[22:]))
	n := int(binary.BigEndian.Uint32(b[26:]))
	if n < 0 {
		return nil, fmt.Errorf("extfs: inode %d extent count %d", ino, n)
	}
	inline := n
	if inline > inlineExtents {
		inline = inlineExtents
	}
	eoff := 38
	for i := 0; i < inline; i++ {
		x.extents = append(x.extents, extent{
			logical: int64(binary.BigEndian.Uint64(b[eoff:])),
			phys:    int64(binary.BigEndian.Uint64(b[eoff+8:])),
			count:   int64(binary.BigEndian.Uint64(b[eoff+16:])),
		})
		eoff += 24
	}
	if n > inlineExtents {
		next := int64(binary.BigEndian.Uint64(b[30:]))
		remaining := n - inlineExtents
		for next >= 0 && uint64(next) != ^uint64(0) && remaining > 0 {
			if next >= fs.lay.dataBlocks {
				return nil, fmt.Errorf("extfs: inode %d overflow block %d out of range", ino, next)
			}
			x.overflow = append(x.overflow, next)
			ob := make([]byte, BlockSize)
			if rerr := fs.dev.ReadAt(ob, fs.blockAddr(next)); rerr != nil {
				return nil, fmt.Errorf("extfs: inode %d overflow block %d: %w", ino, next, rerr)
			}
			fs.env.Serialize(BlockSize)
			if !blockSealed(ob) {
				return nil, fmt.Errorf("extfs: inode %d overflow block %d checksum mismatch", ino, next)
			}
			cnt := int(binary.BigEndian.Uint32(ob[8:]))
			if cnt <= 0 || cnt > overflowExtents {
				return nil, fmt.Errorf("extfs: inode %d overflow block %d holds %d extents", ino, next, cnt)
			}
			ooff := 12
			for i := 0; i < cnt; i++ {
				x.extents = append(x.extents, extent{
					logical: int64(binary.BigEndian.Uint64(ob[ooff:])),
					phys:    int64(binary.BigEndian.Uint64(ob[ooff+8:])),
					count:   int64(binary.BigEndian.Uint64(ob[ooff+16:])),
				})
				ooff += 24
			}
			remaining -= cnt
			nv := binary.BigEndian.Uint64(ob[0:])
			if nv == ^uint64(0) {
				break
			}
			next = int64(nv)
		}
	}
	for _, e := range x.extents {
		if e.count <= 0 || e.phys < 0 || e.phys+e.count > fs.lay.dataBlocks || e.logical < 0 {
			return nil, fmt.Errorf("extfs: inode %d extent out of range: logical=%d phys=%d count=%d", ino, e.logical, e.phys, e.count)
		}
	}
	return x, nil
}

// writebackMeta writes all dirty inode-table blocks (and dirty directory
// content) in place, then the journal can be reclaimed.
func (fs *FS) writebackMeta() {
	// Iterate inodes in ascending number order, never map order: directory
	// write-back allocates blocks and the table pass seeks the device, so
	// iteration order is charge-visible and map order would make simulated
	// timings vary run to run.
	sorted := make([]Ino, 0, len(fs.inodes))
	for ino := range fs.inodes {
		sorted = append(sorted, ino)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Flush dirty directory content first: it allocates blocks and can
	// dirty more inodes.
	for _, ino := range sorted {
		if x := fs.inodes[ino]; x.dirty && x.dir && x.childrenLoaded {
			fs.writeDir(x)
		}
	}
	blocks := make(map[int64][]Ino)
	for _, ino := range sorted {
		if fs.inodes[ino].dirty {
			blk := int64(ino) / inodesPerBlock
			blocks[blk] = append(blocks[blk], ino)
		}
	}
	tombstones := make(map[int64][]Ino)
	for _, ino := range fs.erased {
		blk := int64(ino) / inodesPerBlock
		tombstones[blk] = append(tombstones[blk], ino)
		if _, ok := blocks[blk]; !ok {
			blocks[blk] = nil
		}
	}
	fs.erased = fs.erased[:0]
	blkOrder := make([]int64, 0, len(blocks))
	for blk := range blocks {
		blkOrder = append(blkOrder, blk)
	}
	sort.Slice(blkOrder, func(i, j int) bool { return blkOrder[i] < blkOrder[j] })
	for _, blk := range blkOrder {
		inos := blocks[blk]
		// Read-modify-write the table block with all its dirty inodes.
		addr := fs.lay.itableOff + blk*BlockSize
		buf := make([]byte, BlockSize)
		fs.devCheck(fs.dev.ReadAt(buf, addr))
		for _, ino := range inos {
			x := fs.inodes[ino]
			blob := fs.encodeInode(x)
			copy(buf[(int64(ino)%inodesPerBlock)*inodeSize:], blob)
			x.dirty = false
			fs.env.Serialize(inodeSize)
		}
		for _, ino := range tombstones[blk] {
			zero := make([]byte, inodeSize)
			copy(buf[(int64(ino)%inodesPerBlock)*inodeSize:], zero)
		}
		fs.devCheck(fs.dev.WriteAt(buf, addr))
		fs.stats.InodeWrites++
		delete(fs.itableDirty, blk)
	}
}

// eraseInode marks ino unused on disk (lazy: zero the used flag at next
// table write-back by writing an empty blob now in memory).
func (fs *FS) eraseInode(ino Ino) {
	blk := int64(ino) / inodesPerBlock
	fs.itableDirty[blk] = true
	// Write the tombstone directly: read-modify-write of the block is
	// deferred to writebackMeta via the erased set.
	fs.erased = append(fs.erased, ino)
}
