package extfs

import (
	"encoding/binary"
	"fmt"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
	"betrfs/internal/wal"
)

// The extfs journal is JBD-flavored but logical: namespace and attribute
// operations are journaled as records, and the inode table plus directory
// blocks are checkpointed in place afterwards. In ordered mode file data
// never enters the journal; it reaches its in-place location before the
// transaction that references it commits (WriteBlock is synchronous and
// commit follows).

const (
	recCreate wal.RecordType = iota + 1
	recRemove
	recRename
	recAttr
	recExtentAdd
	recTruncate
)

type journal struct {
	log *wal.Log
}

func newJournal(env *sim.Env, dev blockdev.Device, off, length int64) *journal {
	return &journal{log: wal.New(env, blockdev.Region(dev, off, length), 1)}
}

type recEncoder struct{ b []byte }

func (e *recEncoder) i64(v int64) {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(v))
	e.b = append(e.b, t[:]...)
}
func (e *recEncoder) str(s string) {
	e.i64(int64(len(s)))
	e.b = append(e.b, s...)
}
func (e *recEncoder) flag(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

type recDecoder struct{ b []byte }

func (d *recDecoder) i64() int64 {
	v := int64(binary.BigEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}
func (d *recDecoder) str() string {
	n := d.i64()
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
func (d *recDecoder) flag() bool {
	v := d.b[0] == 1
	d.b = d.b[1:]
	return v
}

func (fs *FS) logRec(t wal.RecordType, enc func(*recEncoder)) {
	e := &recEncoder{}
	enc(e)
	if _, err := fs.jnl.log.Append(t, e.b); err == wal.ErrLogFull {
		fs.writebackMeta()
		fs.devCheck(fs.jnl.log.Flush())
		fs.applyPendingFrees()
		fs.jnl.log.Reclaim(fs.jnl.log.NextLSN())
		if _, err2 := fs.jnl.log.Append(t, e.b); err2 != nil {
			// Still full after a checkpoint: the journal region cannot
			// hold the record — a space problem, not a bug.
			ioerr.Check(fmt.Errorf("extfs: journal full after checkpoint: %w", ioerr.ErrNoSpace))
		}
	} else if err != nil {
		ioerr.Check(err)
	}
}

// commit flushes the journal (a transaction commit with barrier). Once
// the records are durable, blocks they freed become reusable.
func (fs *FS) commit() {
	fs.devCheck(fs.jnl.log.Flush())
	fs.applyPendingFrees()
	fs.stats.JournalCommits++
	fs.lastCommit = fs.env.Now()
}

// Maintain implements periodic commit and metadata write-back. It has no
// error return in the vfs.FS contract; write failures here are recorded
// sticky by devCheck and surface from the next mutating operation.
func (fs *FS) Maintain() {
	var err error
	defer ioerr.Guard(&err)
	if fs.env.Now()-fs.lastCommit >= fs.prof.CommitInterval {
		fs.commit()
	}
	// Checkpoint metadata when the journal fills up.
	if fs.jnl.log.FreeBytes() < fs.jnl.log.Capacity()/4 {
		fs.writebackMeta()
		fs.commit()
		fs.jnl.log.Reclaim(fs.jnl.log.NextLSN())
	}
}
