// Package extfs implements a simplified update-in-place journaling file
// system in the mold of ext4 and XFS. It is used two ways in this
// reproduction:
//
//   - as the baseline "ext4" and "xfs" file systems in the evaluation, and
//   - as the southbound substrate BetrFS v0.4 stacks on (§2.2, Figure 1),
//     via the low-level file API in lowlevel.go.
//
// The design is deliberately conventional: a static layout (superblock,
// journal, inode table, block bitmap, data blocks), goal-directed
// first-fit extent allocation within allocation groups, a JBD-style
// metadata journal in ordered mode (data reaches its in-place location
// before the transaction that references it commits), and periodic
// write-back of dirty metadata blocks. Everything is device-backed:
// dropping caches forces real reads of inode-table and directory blocks,
// which is what gives traversal workloads their cold-cache cost.
package extfs

import (
	"errors"
	"fmt"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// BlockSize is the file-system block size.
const BlockSize = 4096

// Ino is an inode number.
type Ino int64

const rootIno Ino = 1

// Profile selects behavioural differences between the ext4-like and
// XFS-like flavors.
type Profile struct {
	Name string
	// HashedReaddir makes ReadDir return entries in name-hash order
	// (ext4 htree directories), decorrelating traversal order from
	// allocation order.
	HashedReaddir bool
	// CommitInterval is the journal commit period (ext4: 5 s).
	CommitInterval time.Duration
	// AllocGroups spreads top-level directories across allocation
	// groups (the Orlov/XFS-AG policy).
	AllocGroups int
	// DataJournal additionally journals file data (data=journal mode).
	DataJournal bool
}

// Ext4Profile mimics ext4 in its default data=ordered configuration.
func Ext4Profile() Profile {
	return Profile{Name: "ext4", HashedReaddir: true, CommitInterval: 5 * time.Second, AllocGroups: 16}
}

// XFSProfile mimics XFS: sorted directories, more allocation groups.
func XFSProfile() Profile {
	return Profile{Name: "xfs", HashedReaddir: false, CommitInterval: 30 * time.Second, AllocGroups: 32}
}

// layout is the static disk layout.
type layout struct {
	journalOff, journalLen int64
	itableOff, itableLen   int64
	dataOff, dataBlocks    int64
}

// FS is the extfs instance.
type FS struct {
	env  *sim.Env
	dev  blockdev.Device
	prof Profile
	lay  layout

	jnl *journal

	// Caches over device-backed state.
	inodes map[Ino]*xinode
	// itableDirty tracks inode-table blocks needing in-place write-back.
	itableDirty map[int64]bool

	bitmap   []uint64
	groupPtr []int64 // per-group next-allocation hints
	// pendingFree holds blocks freed since the last journal commit;
	// they become reusable only once the freeing records are durable.
	pendingFree []int64
	nextIno     Ino
	// erased inodes pending tombstone write-back.
	erased []Ino

	lastCommit time.Duration
	superGen   uint64 // superblock generation, bumped per writeSuper

	// ioErr is the sticky abort error (DESIGN.md §10): the first
	// persistent write/flush failure is recorded here and every later
	// mutating operation refuses with it, mirroring ext4's journal
	// abort. Reads keep working.
	ioErr error

	stats Stats
}

// Stats counts extfs activity.
type Stats struct {
	InodeReads     int64
	InodeWrites    int64
	DirReads       int64
	JournalCommits int64
	DataReads      int64
	DataWrites     int64
	AllocExtents   int64
	DroppedNodes   int64 // invalid inodes discarded during recovery
	DirRepairs     int64 // malformed directory blobs reset during load
}

// xinode is the in-memory inode cache entry.
type xinode struct {
	ino   Ino
	dir   bool
	size  int64
	nlink int
	mtime time.Duration
	// extents maps the file's logical blocks to physical block runs.
	extents []extent
	// children is the decoded directory content (dir inodes only).
	children       map[string]dirent
	childrenLoaded bool
	// overflow lists extent-overflow chain blocks owned by this inode.
	overflow  []int64
	dirty     bool
	group     int
	lastAlloc int64
}

type dirent struct {
	ino Ino
	dir bool
}

type extent struct {
	logical int64 // first logical block
	phys    int64 // first physical block (data-area relative)
	count   int64
}

// New formats a fresh extfs over dev.
func New(env *sim.Env, dev blockdev.Device, prof Profile) *FS {
	cap := dev.Size()
	lay := layout{}
	lay.journalOff = BlockSize
	lay.journalLen = cap / 64
	if lay.journalLen < 4<<20 {
		lay.journalLen = 4 << 20
	}
	if lay.journalLen > 1<<30 {
		lay.journalLen = 1 << 30
	}
	lay.itableOff = lay.journalOff + lay.journalLen
	lay.itableLen = cap / 64
	lay.dataOff = lay.itableOff + lay.itableLen
	lay.dataBlocks = (cap - lay.dataOff) / BlockSize

	fs := &FS{
		env:         env,
		dev:         dev,
		prof:        prof,
		lay:         lay,
		inodes:      make(map[Ino]*xinode),
		itableDirty: make(map[int64]bool),
		bitmap:      make([]uint64, (lay.dataBlocks+63)/64),
		groupPtr:    make([]int64, prof.AllocGroups),
		nextIno:     rootIno + 1,
	}
	for g := range fs.groupPtr {
		fs.groupPtr[g] = int64(g) * lay.dataBlocks / int64(prof.AllocGroups)
	}
	fs.jnl = newJournal(env, dev, lay.journalOff, lay.journalLen)
	root := &xinode{ino: rootIno, dir: true, nlink: 2, children: map[string]dirent{}, childrenLoaded: true}
	fs.inodes[rootIno] = root
	fs.markInodeDirty(root)
	fs.writeSuper()
	return fs
}

// Profile returns the flavor.
func (fs *FS) Profile() Profile { return fs.prof }

// Stats returns counters.
func (fs *FS) Stats() *Stats { return &fs.stats }

func (fs *FS) markInodeDirty(x *xinode) {
	x.dirty = true
	fs.itableDirty[int64(x.ino)/inodesPerBlock] = true
}

// inode returns the cached inode, reading its inode-table block on a
// miss. Read failures abort to the enclosing vfs-op boundary (Guard)
// rather than crashing: an unreadable inode block is a reachable media
// error, not a programmer bug.
func (fs *FS) inode(ino Ino) *xinode {
	if x, ok := fs.inodes[ino]; ok {
		return x
	}
	x, err := fs.readInode(ino)
	ioerr.Check(err)
	fs.inodes[ino] = x
	return x
}

// inodeIfPresent is the non-panicking variant used during recovery: it
// returns false when the inode is unknown or fails validation.
func (fs *FS) inodeIfPresent(ino Ino) (*xinode, bool) {
	if x, ok := fs.inodes[ino]; ok {
		return x, true
	}
	if !fs.inodeExists(ino) {
		return nil, false
	}
	x, err := fs.readInode(ino)
	if err != nil {
		return nil, false
	}
	fs.inodes[ino] = x
	return x, true
}

// DropCaches evicts clean cached metadata, forcing subsequent operations
// back to the device (used by cold-cache benchmarks).
func (fs *FS) DropCaches() {
	// No error return in the vfs.FS contract; device failures here are
	// recorded sticky by devCheck and surface on the next operation.
	var err error
	defer ioerr.Guard(&err)
	fs.commit()
	fs.writebackMeta()
	for ino, x := range fs.inodes {
		if ino == rootIno {
			x.childrenLoaded = false
			x.children = nil
			continue
		}
		if !x.dirty {
			delete(fs.inodes, ino)
		}
	}
}

// blockAddr converts a data-area block number to a device byte offset.
func (fs *FS) blockAddr(b int64) int64 { return fs.lay.dataOff + b*BlockSize }

// noSpace aborts the current operation with ErrNoSpace; Guard at the
// vfs-op boundary turns it into the error return. ENOSPC is recoverable
// (freeing blocks clears it) and never sticky.
func (fs *FS) noSpace() {
	panic(ioerr.Abort{Err: fmt.Errorf("extfs(%s): %w", fs.prof.Name, ioerr.ErrNoSpace)})
}

// devCheck aborts the current operation when a device command failed.
// Write and flush failures are sticky (journal abort): the FS refuses all
// later mutations with the same error, while reads keep being served.
func (fs *FS) devCheck(err error) {
	if err == nil {
		return
	}
	var de *ioerr.DeviceError
	if errors.As(err, &de) && de.Op != "read" && fs.ioErr == nil {
		fs.ioErr = err
	}
	ioerr.Check(err)
}

// writeGate refuses mutations after a sticky abort.
func (fs *FS) writeGate() error { return fs.ioErr }

var _ vfs.FS = (*FS)(nil)
