package extfs

import (
	"sort"

	"betrfs/internal/ioerr"
	"betrfs/internal/vfs"
	"betrfs/internal/wal"
)

// vfs.FS implementation. Handles are inode numbers.

// Root returns the root handle.
func (fs *FS) Root() vfs.Handle { return rootIno }

func (fs *FS) attrOf(x *xinode) vfs.Attr {
	return vfs.Attr{Dir: x.dir, Size: x.size, Nlink: x.nlink, Mtime: x.mtime}
}

// Lookup resolves name in parent, reading directory blocks and the child's
// inode-table block on cache misses.
func (fs *FS) Lookup(parent vfs.Handle, name string) (h vfs.Handle, a vfs.Attr, err error) {
	defer ioerr.Guard(&err)
	p := fs.inode(parent.(Ino))
	fs.loadDir(p)
	fs.env.Compare(len(name))
	d, ok := p.children[name]
	if !ok {
		return nil, vfs.Attr{}, vfs.ErrNotExist
	}
	x := fs.inode(d.ino)
	return d.ino, fs.attrOf(x), nil
}

// Create allocates an inode and adds the directory entry, journaling the
// operation.
func (fs *FS) Create(parent vfs.Handle, name string, dir bool) (h vfs.Handle, a vfs.Attr, err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return nil, vfs.Attr{}, ferr
	}
	p := fs.inode(parent.(Ino))
	fs.loadDir(p)
	if _, ok := p.children[name]; ok {
		return nil, vfs.Attr{}, vfs.ErrExist
	}
	ino := fs.nextIno
	fs.nextIno++
	x := &xinode{ino: ino, dir: dir, nlink: 1, mtime: fs.env.Now()}
	// Orlov-style spreading: directories created in the root go to a new
	// allocation group; files inherit the parent's group.
	if dir {
		x.nlink = 2
		x.children = map[string]dirent{}
		x.childrenLoaded = true
		if p.ino == rootIno {
			x.group = int(ino) % fs.prof.AllocGroups
		} else {
			x.group = p.group
		}
	} else {
		x.group = p.group
	}
	fs.inodes[ino] = x
	fs.markInodeDirty(x)
	p.children[name] = dirent{ino: ino, dir: dir}
	p.mtime = fs.env.Now()
	fs.markInodeDirty(p)
	fs.logRec(recCreate, func(e *recEncoder) {
		e.i64(int64(p.ino))
		e.str(name)
		e.i64(int64(ino))
		e.flag(dir)
	})
	return ino, fs.attrOf(x), nil
}

// Remove unlinks name from parent, freeing the inode and its blocks.
func (fs *FS) Remove(parent vfs.Handle, name string, h vfs.Handle, dir bool) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	p := fs.inode(parent.(Ino))
	fs.loadDir(p)
	d, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	x := fs.inode(d.ino)
	if dir {
		fs.loadDir(x)
		if len(x.children) > 0 {
			return vfs.ErrNotEmpty
		}
	}
	delete(p.children, name)
	p.mtime = fs.env.Now()
	fs.markInodeDirty(p)
	fs.freeAll(x)
	for _, b := range x.overflow {
		fs.bitClear(b)
	}
	delete(fs.inodes, d.ino)
	fs.eraseInode(d.ino)
	fs.logRec(recRemove, func(e *recEncoder) {
		e.i64(int64(p.ino))
		e.str(name)
		e.i64(int64(d.ino))
		e.flag(dir)
	})
	return nil
}

// Rename moves the entry; inode numbers are stable so the handle is
// unchanged.
func (fs *FS) Rename(oldParent vfs.Handle, oldName string, h vfs.Handle, newParent vfs.Handle, newName string) (nh vfs.Handle, err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return nil, ferr
	}
	op := fs.inode(oldParent.(Ino))
	np := fs.inode(newParent.(Ino))
	fs.loadDir(op)
	fs.loadDir(np)
	d, ok := op.children[oldName]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	delete(op.children, oldName)
	np.children[newName] = d
	op.mtime = fs.env.Now()
	np.mtime = fs.env.Now()
	fs.markInodeDirty(op)
	fs.markInodeDirty(np)
	fs.logRec(recRename, func(e *recEncoder) {
		e.i64(int64(op.ino))
		e.str(oldName)
		e.i64(int64(np.ino))
		e.str(newName)
		e.i64(int64(d.ino))
	})
	return h, nil
}

// ReadDir lists parent's children, in hash order for the ext4 flavor and
// sorted order for XFS. Entries are not Known: Linux's VFS does not
// instantiate inodes from readdir (§4).
func (fs *FS) ReadDir(h vfs.Handle) (ents []vfs.DirEntry, err error) {
	defer ioerr.Guard(&err)
	x := fs.inode(h.(Ino))
	if !x.dir {
		return nil, vfs.ErrNotDir
	}
	fs.loadDir(x)
	names := make([]string, 0, len(x.children))
	for name := range x.children {
		names = append(names, name)
	}
	if fs.prof.HashedReaddir {
		sort.Slice(names, func(i, j int) bool { return hashName(names[i]) < hashName(names[j]) })
	} else {
		sort.Strings(names)
	}
	out := make([]vfs.DirEntry, 0, len(names))
	for _, name := range names {
		d := x.children[name]
		out = append(out, vfs.DirEntry{Name: name, Dir: d.dir})
	}
	return out, nil
}

// WriteAttr persists inode metadata.
func (fs *FS) WriteAttr(h vfs.Handle, a vfs.Attr) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	x := fs.inode(h.(Ino))
	x.size = a.Size
	x.mtime = a.Mtime
	fs.markInodeDirty(x)
	fs.logRec(recAttr, func(e *recEncoder) {
		e.i64(int64(x.ino))
		e.i64(a.Size)
		e.i64(int64(a.Nlink))
		e.i64(int64(a.Mtime))
	})
	return nil
}

// ReadBlocks fills pages from the file's extents.
func (fs *FS) ReadBlocks(h vfs.Handle, blk int64, pages []*vfs.Page, seq bool) (err error) {
	defer ioerr.Guard(&err)
	x := fs.inode(h.(Ino))
	// Merge the whole request into as few device reads as the physical
	// layout allows.
	buf := make([]byte, len(pages)*BlockSize)
	fs.readExtents(x, buf, blk*BlockSize)
	for i, pg := range pages {
		copy(pg.Data, buf[i*BlockSize:(i+1)*BlockSize])
	}
	fs.env.Memcpy(len(buf))
	return nil
}

// WriteBlocks writes a run of pages in place (ordered mode: data first,
// journal commit later), merging physically contiguous blocks into single
// device writes. Extent allocation is journaled.
func (fs *FS) WriteBlocks(h vfs.Handle, blk int64, pgs []*vfs.Page, durable bool) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	x := fs.inode(h.(Ino))
	before := len(x.extents)
	buf := make([]byte, len(pgs)*BlockSize)
	for i, pg := range pgs {
		copy(buf[i*BlockSize:], pg.Data)
	}
	fs.writeExtents(x, buf, blk*BlockSize)
	// Journal any extents added by the allocation.
	for i := before; i <= len(x.extents)-1; i++ {
		e := x.extents[i]
		fs.logRec(recExtentAdd, func(enc *recEncoder) {
			enc.i64(int64(x.ino))
			enc.i64(e.logical)
			enc.i64(e.phys)
			enc.i64(e.count)
		})
	}
	if before > 0 && len(x.extents) >= before {
		// The pre-existing last extent may have grown by merging.
		e := x.extents[before-1]
		fs.logRec(recExtentAdd, func(enc *recEncoder) {
			enc.i64(int64(x.ino))
			enc.i64(e.logical)
			enc.i64(e.phys)
			enc.i64(e.count)
		})
	}
	if fs.prof.DataJournal {
		fs.env.Memcpy(len(buf))
	}
	// Ordered mode: the data is in place now; the journal transaction
	// that references it commits in Fsync/Sync/Maintain, not per run.
	_ = durable
	return nil
}

// WritePartial is unsupported: update-in-place file systems must
// read-modify-write. Calling it is a programmer error (the VFS checks
// SupportsBlindWrites first), so this panic stays.
func (fs *FS) WritePartial(h vfs.Handle, blk int64, off int, data []byte, durable bool) error {
	panic("extfs: blind writes unsupported")
}

// SupportsBlindWrites reports false.
func (fs *FS) SupportsBlindWrites() bool { return false }

// TruncateBlocks drops blocks at or beyond fromBlk.
func (fs *FS) TruncateBlocks(h vfs.Handle, fromBlk int64) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	x := fs.inode(h.(Ino))
	fs.freeBlocksFrom(x, fromBlk)
	fs.logRec(recTruncate, func(e *recEncoder) {
		e.i64(int64(x.ino))
		e.i64(fromBlk)
	})
	return nil
}

// Fsync commits the journal (data already reached the device in ordered
// mode).
func (fs *FS) Fsync(h vfs.Handle) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	fs.commit()
	return nil
}

// Sync commits the journal, writes back all dirty metadata, and refreshes
// the superblock's recovery hint.
func (fs *FS) Sync() (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	fs.writebackMeta()
	fs.commit()
	fs.jnl.log.Reclaim(fs.jnl.log.NextLSN())
	fs.writeSuper()
	return nil
}

// replayRecord applies one journal record during recovery. Records
// referencing inodes that did not survive the fsck pass are skipped
// rather than left to panic.
func (fs *FS) replayRecord(rec wal.Record) {
	d := &recDecoder{b: rec.Payload}
	switch rec.Type {
	case recCreate:
		pino := Ino(d.i64())
		name := d.str()
		ino := Ino(d.i64())
		dir := d.flag()
		p, ok := fs.inodeIfPresent(pino)
		if !ok {
			return
		}
		fs.loadDir(p)
		p.children[name] = dirent{ino: ino, dir: dir}
		fs.markInodeDirty(p)
		if _, ok := fs.inodes[ino]; !ok {
			x := &xinode{ino: ino, dir: dir, nlink: 1, group: p.group}
			if dir {
				x.nlink = 2
				x.children = map[string]dirent{}
				x.childrenLoaded = true
			}
			fs.inodes[ino] = x
			fs.markInodeDirty(x)
		}
		if ino >= fs.nextIno {
			fs.nextIno = ino + 1
		}
	case recRemove:
		pino := Ino(d.i64())
		name := d.str()
		ino := Ino(d.i64())
		p, ok := fs.inodeIfPresent(pino)
		if !ok {
			return
		}
		fs.loadDir(p)
		delete(p.children, name)
		fs.markInodeDirty(p)
		if x, ok := fs.inodes[ino]; ok {
			fs.freeAll(x)
			delete(fs.inodes, ino)
		}
		fs.eraseInode(ino)
	case recRename:
		opino := Ino(d.i64())
		oldName := d.str()
		npino := Ino(d.i64())
		newName := d.str()
		ino := Ino(d.i64())
		op, okOld := fs.inodeIfPresent(opino)
		np, okNew := fs.inodeIfPresent(npino)
		if !okOld || !okNew {
			return
		}
		fs.loadDir(op)
		fs.loadDir(np)
		if ent, ok := op.children[oldName]; ok && ent.ino == ino {
			delete(op.children, oldName)
			np.children[newName] = ent
			fs.markInodeDirty(op)
			fs.markInodeDirty(np)
		}
	case recAttr:
		ino := Ino(d.i64())
		size := d.i64()
		nlink := d.i64()
		mtime := d.i64()
		x, ok := fs.inodeIfPresent(ino)
		if !ok {
			return
		}
		x.size = size
		x.nlink = int(nlink)
		x.mtime = timeDuration(mtime)
		fs.markInodeDirty(x)
	case recExtentAdd:
		ino := Ino(d.i64())
		logical := d.i64()
		phys := d.i64()
		count := d.i64()
		x, ok := fs.inodeIfPresent(ino)
		if !ok {
			return
		}
		if count <= 0 || phys < 0 || phys+count > fs.lay.dataBlocks || logical < 0 {
			return
		}
		if x.physFor(logical) < 0 {
			fs.appendExtent(x, extent{logical: logical, phys: phys, count: count})
			for i := int64(0); i < count; i++ {
				fs.bitSet(phys + i)
			}
			fs.markInodeDirty(x)
		}
	case recTruncate:
		ino := Ino(d.i64())
		fromBlk := d.i64()
		x, ok := fs.inodeIfPresent(ino)
		if !ok {
			return
		}
		fs.freeBlocksFrom(x, fromBlk)
	}
}
