package fstest

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// TestFileContentModel drives random reads/writes/truncates against every
// file system and a plain in-memory reference, verifying byte-for-byte
// agreement, including across cache drops.
func TestFileContentModel(t *testing.T) {
	for _, name := range allFS {
		name := name
		t.Run(name, func(t *testing.T) {
			_, m := build(t, name)
			f, err := m.Create("model")
			if err != nil {
				t.Fatal(err)
			}
			var model []byte
			rnd := sim.NewRand(99)
			extend := func(n int) {
				if n > len(model) {
					model = append(model, make([]byte, n-len(model))...)
				}
			}
			for op := 0; op < 400; op++ {
				switch rnd.Intn(10) {
				case 0, 1, 2, 3, 4: // write
					off := rnd.Int63n(256 << 10)
					size := 1 + rnd.Intn(12<<10)
					data := bytes.Repeat([]byte{byte(op)}, size)
					f.WriteAt(data, off)
					extend(int(off) + size)
					copy(model[off:], data)
				case 5, 6, 7: // read & compare
					if len(model) == 0 {
						continue
					}
					off := rnd.Int63n(int64(len(model)))
					size := 1 + rnd.Intn(16<<10)
					buf := make([]byte, size)
					n, _ := f.ReadAt(buf, off)
					want := model[off:]
					if len(want) > n {
						want = want[:n]
					}
					if !bytes.Equal(buf[:n], want) {
						t.Fatalf("op %d: read mismatch at %d (+%d)", op, off, size)
					}
				case 8: // truncate shorter
					if len(model) == 0 {
						continue
					}
					nsz := rnd.Int63n(int64(len(model)) + 1)
					f.Truncate(nsz)
					model = model[:nsz]
				case 9: // drop caches mid-stream
					if rnd.Intn(4) == 0 {
						m.DropCaches()
						g, err := m.Open("model")
						if err != nil {
							t.Fatalf("op %d: reopen: %v", op, err)
						}
						f = g
					}
				}
				if f.Size() != int64(len(model)) {
					t.Fatalf("op %d: size %d, model %d", op, f.Size(), len(model))
				}
			}
			// Final full comparison after a cache drop.
			m.DropCaches()
			g, _ := m.Open("model")
			got := make([]byte, len(model))
			n, _ := g.ReadAt(got, 0)
			if n != len(model) || !bytes.Equal(got, model) {
				t.Fatalf("final content mismatch (%d vs %d bytes)", n, len(model))
			}
		})
	}
}

// TestNamespaceModel drives random namespace operations against every file
// system and a map-based reference.
func TestNamespaceModel(t *testing.T) {
	for _, name := range allFS {
		name := name
		t.Run(name, func(t *testing.T) {
			_, m := build(t, name)
			rnd := sim.NewRand(7)
			exists := map[string]byte{} // path -> 1 file, 2 dir
			dirs := []string{""}
			for op := 0; op < 300; op++ {
				switch rnd.Intn(6) {
				case 0: // mkdir
					parent := dirs[rnd.Intn(len(dirs))]
					p := join2(parent, fmt.Sprintf("d%03d", rnd.Intn(200)))
					err := m.Mkdir(p)
					if exists[p] != 0 {
						if err != vfs.ErrExist {
							t.Fatalf("mkdir existing %q: %v", p, err)
						}
					} else if err == nil {
						exists[p] = 2
						dirs = append(dirs, p)
					}
				case 1, 2: // create file
					parent := dirs[rnd.Intn(len(dirs))]
					p := join2(parent, fmt.Sprintf("f%03d", rnd.Intn(400)))
					if exists[p] != 0 {
						continue
					}
					f, err := m.Create(p)
					if err != nil {
						continue
					}
					f.Write([]byte("x"))
					f.Close()
					exists[p] = 1
				case 3: // remove file
					p := pickFile(rnd, exists)
					if p == "" {
						continue
					}
					if err := m.Remove(p); err != nil {
						t.Fatalf("remove %q: %v", p, err)
					}
					delete(exists, p)
				case 4: // stat consistency
					p := join2(dirs[rnd.Intn(len(dirs))], fmt.Sprintf("f%03d", rnd.Intn(400)))
					_, err := m.Stat(p)
					if exists[p] != 0 && err != nil {
						t.Fatalf("stat existing %q: %v", p, err)
					}
					if exists[p] == 0 && err == nil && !isDirPath(dirs, p) {
						t.Fatalf("stat ghost %q succeeded", p)
					}
				case 5:
					if rnd.Intn(10) == 0 {
						m.DropCaches()
					}
				}
			}
		})
	}
}

func join2(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}

func pickFile(rnd *sim.Rand, exists map[string]byte) string {
	var files []string
	for p, kind := range exists {
		if kind == 1 {
			files = append(files, p)
		}
	}
	if len(files) == 0 {
		return ""
	}
	// Map iteration is nondeterministic; sort-free deterministic pick by
	// scanning for the lexicographically smallest among a random sample.
	best := ""
	for i := 0; i < 5 && i < len(files); i++ {
		c := files[rnd.Intn(len(files))]
		if best == "" || c < best {
			best = c
		}
	}
	return best
}

func isDirPath(dirs []string, p string) bool {
	for _, d := range dirs {
		if d == p {
			return true
		}
	}
	return false
}
