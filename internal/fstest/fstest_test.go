// Package fstest runs one conformance suite over every file system in the
// repository: the three baselines (extfs ext4/xfs, logfs f2fs, cowfs
// btrfs/zfs) and BetrFS in both v0.4 (stacked) and v0.6 (SFL)
// configurations. Passing the same scenarios everywhere is what makes the
// benchmark comparisons meaningful.
package fstest

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/betrfs"
	"betrfs/internal/blockdev"
	"betrfs/internal/cowfs"
	"betrfs/internal/extfs"
	"betrfs/internal/kmem"
	"betrfs/internal/logfs"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
	"betrfs/internal/southbound"
	"betrfs/internal/vfs"
)

// build constructs a named file system over a fresh scaled SSD.
func build(t testing.TB, name string) (*sim.Env, *vfs.Mount) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	var fs vfs.FS
	switch name {
	case "ext4":
		fs = extfs.New(env, dev, extfs.Ext4Profile())
	case "xfs":
		fs = extfs.New(env, dev, extfs.XFSProfile())
	case "f2fs":
		fs = logfs.New(env, dev)
	case "btrfs":
		fs = cowfs.New(env, dev, cowfs.BtrfsProfile())
	case "zfs":
		fs = cowfs.New(env, dev, cowfs.ZFSProfile())
	case "betrfs-v0.6":
		cfg := betrfs.V06Config()
		cfg.Tree.CacheBytes = 64 << 20
		backend, serr := sfl.NewDefault(env, dev)
		if serr != nil {
			t.Fatal(serr)
		}
		b, err := betrfs.New(env, kmem.New(env, true), cfg, backend)
		if err != nil {
			t.Fatal(err)
		}
		fs = b
	case "betrfs-v0.4":
		cfg := betrfs.V04Config()
		cfg.Tree.CacheBytes = 64 << 20
		lower := extfs.New(env, dev, extfs.Ext4Profile())
		backend := southbound.New(env, lower, southbound.DefaultLayout(dev.Size()))
		b, err := betrfs.New(env, kmem.New(env, false), cfg, backend)
		if err != nil {
			t.Fatal(err)
		}
		fs = b
	default:
		t.Fatalf("unknown fs %q", name)
	}
	mcfg := vfs.DefaultConfig()
	mcfg.CacheBytes = 128 << 20
	return env, vfs.NewMount(env, fs, mcfg)
}

var allFS = []string{"ext4", "xfs", "f2fs", "btrfs", "zfs", "betrfs-v0.4", "betrfs-v0.6"}

func forAll(t *testing.T, fn func(t *testing.T, m *vfs.Mount)) {
	for _, name := range allFS {
		name := name
		t.Run(name, func(t *testing.T) {
			_, m := build(t, name)
			fn(t, m)
		})
	}
}

func TestBasicFileLifecycle(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		f, err := m.Create("file.txt")
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("contents"))
		f.Close()
		a, err := m.Stat("file.txt")
		if err != nil || a.Size != 8 || a.Dir {
			t.Fatalf("stat: %+v %v", a, err)
		}
		g, _ := m.Open("file.txt")
		buf := make([]byte, 16)
		n, _ := g.ReadAt(buf, 0)
		if string(buf[:n]) != "contents" {
			t.Fatalf("read %q", buf[:n])
		}
		if err := m.Remove("file.txt"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Stat("file.txt"); err != vfs.ErrNotExist {
			t.Fatalf("stat after remove: %v", err)
		}
	})
}

func TestDeepDirectoryTree(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		if err := m.MkdirAll("a/b/c/d/e"); err != nil {
			t.Fatal(err)
		}
		f, err := m.Create("a/b/c/d/e/leaf")
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("x"))
		f.Close()
		ents, err := m.ReadDir("a/b/c/d")
		if err != nil || len(ents) != 1 || ents[0].Name != "e" || !ents[0].Dir {
			t.Fatalf("readdir: %v %v", ents, err)
		}
	})
}

func TestDataIntegrityAcrossCacheDrop(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		m.MkdirAll("dir")
		payload := make([]byte, 5*vfs.PageSize+777)
		for i := range payload {
			payload[i] = byte(i * 131)
		}
		f, _ := m.Create("dir/data")
		f.Write(payload)
		f.Close()
		m.DropCaches()
		g, err := m.Open("dir/data")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		n, _ := g.ReadAt(got, 0)
		if n != len(payload) || !bytes.Equal(got, payload) {
			t.Fatalf("data corrupted across cache drop (n=%d want %d)", n, len(payload))
		}
	})
}

func TestSparseFileReadsZero(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		f, _ := m.Create("sparse")
		f.WriteAt([]byte("end"), 10*vfs.PageSize)
		buf := make([]byte, 100)
		n, _ := f.ReadAt(buf, 5*vfs.PageSize)
		for i := 0; i < n; i++ {
			if buf[i] != 0 {
				t.Fatal("hole read non-zero")
			}
		}
	})
}

func TestOverwriteMiddle(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		f, _ := m.Create("f")
		f.Write(bytes.Repeat([]byte{0xaa}, 3*vfs.PageSize))
		f.WriteAt([]byte("XYZ"), vfs.PageSize+100)
		m.DropCaches()
		g, _ := m.Open("f")
		buf := make([]byte, 3)
		g.ReadAt(buf, vfs.PageSize+100)
		if string(buf) != "XYZ" {
			t.Fatalf("overwrite lost: %q", buf)
		}
		g.ReadAt(buf, 0)
		if buf[0] != 0xaa {
			t.Fatal("neighboring data damaged")
		}
	})
}

func TestSubPageWrites(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		f, _ := m.Create("f")
		f.Write(bytes.Repeat([]byte{1}, 2*vfs.PageSize))
		m.DropCaches() // force the uncached sub-page write path
		g, _ := m.Open("f")
		g.WriteAt([]byte{9, 9, 9, 9}, 100)
		g.Fsync()
		m.DropCaches()
		h, _ := m.Open("f")
		buf := make([]byte, 8)
		h.ReadAt(buf, 98)
		want := []byte{1, 1, 9, 9, 9, 9, 1, 1}
		if !bytes.Equal(buf, want) {
			t.Fatalf("sub-page write: %v want %v", buf, want)
		}
	})
}

func TestRenameFileKeepsData(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		m.MkdirAll("src")
		m.MkdirAll("dst")
		f, _ := m.Create("src/f")
		f.Write(bytes.Repeat([]byte{7}, 2*vfs.PageSize))
		f.Close()
		if err := m.Rename("src/f", "dst/g"); err != nil {
			t.Fatal(err)
		}
		m.DropCaches()
		g, err := m.Open("dst/g")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 2*vfs.PageSize)
		n, _ := g.ReadAt(buf, 0)
		if n != len(buf) || buf[0] != 7 || buf[len(buf)-1] != 7 {
			t.Fatal("rename lost data")
		}
		if _, err := m.Stat("src/f"); err != vfs.ErrNotExist {
			t.Fatal("old name still present")
		}
	})
}

func TestRenameDirectoryMovesSubtree(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		m.MkdirAll("old/sub")
		f, _ := m.Create("old/sub/file")
		f.Write([]byte("deep"))
		f.Close()
		if err := m.Rename("old", "new"); err != nil {
			t.Fatal(err)
		}
		m.DropCaches()
		g, err := m.Open("new/sub/file")
		if err != nil {
			t.Fatalf("moved file missing: %v", err)
		}
		buf := make([]byte, 4)
		g.ReadAt(buf, 0)
		if string(buf) != "deep" {
			t.Fatal("directory rename lost data")
		}
	})
}

func TestRemoveAllDeletesEverything(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		for d := 0; d < 3; d++ {
			m.MkdirAll(fmt.Sprintf("top/d%d", d))
			for i := 0; i < 10; i++ {
				f, _ := m.Create(fmt.Sprintf("top/d%d/f%d", d, i))
				f.Write([]byte("data"))
				f.Close()
			}
		}
		if err := m.RemoveAll("top"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Stat("top"); err != vfs.ErrNotExist {
			t.Fatalf("tree still present: %v", err)
		}
		// Recreate to confirm namespace is clean.
		if err := m.MkdirAll("top/d0"); err != nil {
			t.Fatal(err)
		}
		ents, _ := m.ReadDir("top/d0")
		if len(ents) != 0 {
			t.Fatalf("stale entries after rm -rf: %v", ents)
		}
	})
}

func TestManySmallFiles(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		m.MkdirAll("spool")
		const n = 300
		for i := 0; i < n; i++ {
			f, err := m.Create(fmt.Sprintf("spool/msg%04d", i))
			if err != nil {
				t.Fatal(err)
			}
			f.Write(bytes.Repeat([]byte{byte(i)}, 200))
			f.Close()
		}
		m.DropCaches()
		ents, _ := m.ReadDir("spool")
		if len(ents) != n {
			t.Fatalf("readdir found %d files, want %d", len(ents), n)
		}
		g, err := m.Open("spool/msg0123")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 200)
		k, _ := g.ReadAt(buf, 0)
		if k != 200 || buf[0] != 123 {
			t.Fatal("small file content wrong after cache drop")
		}
	})
}

func TestFsyncDurableAfterCrashBetrFS(t *testing.T) {
	// Crash-recovery end-to-end through the VFS for BetrFS v0.6.
	env := sim.NewEnv(7)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	dev.EnableCrashTracking()
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		panic(berr)
	}
	alloc := kmem.New(env, true)
	cfg := betrfs.V06Config()
	b, err := betrfs.New(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	m := vfs.NewMount(env, b, vfs.DefaultConfig())
	m.MkdirAll("mail")
	f, _ := m.Create("mail/msg1")
	f.Write([]byte("important"))
	f.Fsync()
	g, _ := m.Create("mail/volatile")
	g.Write([]byte("lost"))
	// no fsync
	dev.Crash(0)

	b2, err := betrfs.New(env, alloc, cfg, backend)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	m2 := vfs.NewMount(env, b2, vfs.DefaultConfig())
	h, err := m2.Open("mail/msg1")
	if err != nil {
		t.Fatalf("fsynced file lost: %v", err)
	}
	buf := make([]byte, 16)
	n, _ := h.ReadAt(buf, 0)
	if string(buf[:n]) != "important" {
		t.Fatalf("fsynced data corrupted: %q", buf[:n])
	}
}

func TestBlindWriteOnlyOnBetrFS(t *testing.T) {
	env, m := build(t, "betrfs-v0.6")
	_ = env
	f, _ := m.Create("f")
	f.Write(bytes.Repeat([]byte{1}, 4*vfs.PageSize))
	m.DropCaches()
	g, _ := m.Open("f")
	before := m.Stats().BlindWrites
	g.WriteAt([]byte{5}, 100) // sub-page, uncached
	if m.Stats().BlindWrites != before+1 {
		t.Fatal("BetrFS sub-page write did not use the blind path")
	}

	_, m2 := build(t, "ext4")
	f2, _ := m2.Create("f")
	f2.Write(bytes.Repeat([]byte{1}, 4*vfs.PageSize))
	m2.DropCaches()
	g2, _ := m2.Open("f")
	before2 := m2.Stats().RMWReads
	g2.WriteAt([]byte{5}, 100)
	if m2.Stats().RMWReads != before2+1 {
		t.Fatal("ext4 sub-page write did not read-modify-write")
	}
}

func TestReaddirInstantiationOnlyBetrFSv06(t *testing.T) {
	_, m := build(t, "betrfs-v0.6")
	m.MkdirAll("d")
	for i := 0; i < 20; i++ {
		f, _ := m.Create(fmt.Sprintf("d/f%02d", i))
		f.Close()
	}
	m.DropCaches()
	m.ReadDir("d")
	before := m.Stats().FsLookups
	for i := 0; i < 20; i++ {
		if _, err := m.Stat(fmt.Sprintf("d/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().FsLookups != before {
		t.Fatalf("DC: lookups after readdir should all hit the dcache, %d FS lookups",
			m.Stats().FsLookups-before)
	}
}

func TestRootReaddir(t *testing.T) {
	forAll(t, func(t *testing.T, m *vfs.Mount) {
		m.MkdirAll("top1")
		f, _ := m.Create("file1")
		f.Close()
		m.DropCaches()
		ents, err := m.ReadDir("")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 2 {
			t.Fatalf("root readdir found %d entries, want 2", len(ents))
		}
	})
}
