// Package ioerr defines the errno-style error taxonomy shared by every
// layer of the stack, from the simulated block device up to the VFS mount
// API. It deliberately imports nothing from the rest of the repository so
// that blockdev, stor, the file systems, and vfs can all reference the same
// sentinel values without dependency cycles.
//
// The contract (DESIGN.md §10):
//
//   - ErrIO is the EIO analog: a device command failed and the data was not
//     transferred. Wrapped DeviceErrors carry the command details and
//     whether the fault is transient (a bounded retry may succeed).
//   - ErrNoSpace is the ENOSPC analog: an allocator ran out of space. It is
//     always recoverable — deleting data must make writes succeed again —
//     and never triggers read-only degradation.
//   - ErrReadOnly is the EROFS analog: the mount has degraded to read-only
//     after a persistent write failure (Linux errors=remount-ro).
package ioerr

import (
	"errors"
	"fmt"
)

// Sentinel errors surfaced at the mount API.
var (
	// ErrIO reports a failed device command (EIO).
	ErrIO = errors.New("I/O error")
	// ErrNoSpace reports allocator exhaustion (ENOSPC).
	ErrNoSpace = errors.New("no space left on device")
	// ErrReadOnly reports a mount degraded to read-only (EROFS).
	ErrReadOnly = errors.New("read-only file system")
)

// DeviceError describes one failed device command. It unwraps to ErrIO so
// callers can classify with errors.Is(err, ioerr.ErrIO) without knowing the
// device details.
type DeviceError struct {
	Op  string // "read", "write", or "flush"
	Off int64  // device offset of the command
	Len int    // transfer length in bytes
	// Transient marks faults that a bounded retry may clear (controller
	// timeouts, read-retry voltage shifts); persistent faults (grown bad
	// sectors, media death) stay failed no matter how often retried.
	Transient bool
}

// Error formats the command like a kernel log line.
func (e *DeviceError) Error() string {
	kind := "persistent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("%s device error: %s off=%d len=%d: %v", kind, e.Op, e.Off, e.Len, ErrIO)
}

// Unwrap makes errors.Is(err, ErrIO) true for every DeviceError.
func (e *DeviceError) Unwrap() error { return ErrIO }

// IsTransient reports whether err wraps a transient DeviceError; permanent
// faults and non-device errors return false.
func IsTransient(err error) bool {
	var de *DeviceError
	return errors.As(err, &de) && de.Transient
}

// Abort carries an error through panic across layers whose deep internals
// cannot practically thread error returns (allocators and mutation
// machinery several frames below a public API). Guard recovers it at the
// API boundary; any other panic value — a genuine programmer-invariant
// violation — propagates untouched. This mirrors the encoding/json
// internal-panic pattern.
type Abort struct{ Err error }

// Guard converts an Abort panic into the named error return it deferred
// over. Use as: func (...) (err error) { defer ioerr.Guard(&err); ... }.
func Guard(err *error) {
	switch r := recover().(type) {
	case nil:
	case Abort:
		*err = r.Err
	default:
		panic(r)
	}
}

// Check panics with Abort{err} when err is non-nil; it is the inner-layer
// companion to Guard.
func Check(err error) {
	if err != nil {
		panic(Abort{Err: err})
	}
}
