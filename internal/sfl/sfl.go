// Package sfl implements the Simple File Layer of BetrFS v0.6 (§3.1): a
// storage backend that exposes exactly the named files the Bε-tree
// implementation needs — a superblock region, a circular log region, and
// one large extent per index — over a raw block device.
//
// SFL replaces the stacked ext4 southbound of BetrFS v0.4. Its properties
// are what the paper leans on: immutable metadata (the extents are
// statically allocated at format time, so there is no second journal to
// double-journal into), a direct-I/O interface that takes caller-owned
// buffers (no double buffering or page-cache copy), and synchronous writes
// that are exactly as synchronous as the caller asks for.
package sfl

import (
	"errors"
	"fmt"
	"sort"

	"betrfs/internal/blockdev"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
	"betrfs/internal/stor"
)

// Layout describes the static disk partitioning (Table 2 of the paper:
// 8 MB superblock, 2 GiB log, and the remainder split between the metadata
// and data indexes roughly 1:9).
type Layout struct {
	SuperBytes int64
	LogBytes   int64
	MetaBytes  int64
	DataBytes  int64
}

// ErrDeviceTooSmall reports a device that cannot hold the minimum layout.
var ErrDeviceTooSmall = errors.New("sfl: device too small for layout")

// DefaultLayout computes the Table 2 proportions for a device of the given
// capacity. Devices too small for even the fixed regions yield a zero
// DataBytes layout that New rejects with ErrDeviceTooSmall.
func DefaultLayout(capacity int64) Layout {
	l := Layout{
		SuperBytes: 8 << 20,
		LogBytes:   capacity / 125, // 2 GiB on a 250 GiB disk
	}
	if l.LogBytes < 4<<20 {
		l.LogBytes = 4 << 20
	}
	rest := capacity - l.SuperBytes - l.LogBytes
	if rest <= 0 {
		return l // New reports ErrDeviceTooSmall
	}
	l.MetaBytes = rest / 10
	l.DataBytes = rest - l.MetaBytes
	return l
}

// SFL is the simple file layer over one block device.
type SFL struct {
	env    *sim.Env
	dev    blockdev.Device
	files  map[string]*file
	layout Layout

	mReadCount    *metrics.Counter
	mWriteCount   *metrics.Counter
	mReadBytes    *metrics.Counter
	mWriteBytes   *metrics.Counter
	mFlushCount   *metrics.Counter
	mDiscardCount *metrics.Counter
	mDiscardBytes *metrics.Counter
}

// New formats an SFL over dev with the given layout. A layout that does
// not fit the device — user-reachable through undersized devices or bad
// mkfs parameters — is an error, not a panic.
func New(env *sim.Env, dev blockdev.Device, layout Layout) (*SFL, error) {
	if layout.DataBytes <= 0 {
		return nil, ErrDeviceTooSmall
	}
	total := layout.SuperBytes + layout.LogBytes + layout.MetaBytes + layout.DataBytes
	if total > dev.Size() {
		return nil, fmt.Errorf("sfl: layout (%d) exceeds device (%d): %w", total, dev.Size(), ErrDeviceTooSmall)
	}
	s := &SFL{env: env, dev: dev, files: make(map[string]*file), layout: layout}
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s.mReadCount = reg.Counter("sfl.read.count")
	s.mWriteCount = reg.Counter("sfl.write.count")
	s.mReadBytes = reg.Counter("sfl.read.bytes")
	s.mWriteBytes = reg.Counter("sfl.write.bytes")
	s.mFlushCount = reg.Counter("sfl.flush.count")
	s.mDiscardCount = reg.Counter("sfl.discard.count")
	s.mDiscardBytes = reg.Counter("sfl.discard.bytes")
	off := int64(0)
	for _, f := range []struct {
		name string
		size int64
	}{
		{"super", layout.SuperBytes},
		{"log", layout.LogBytes},
		{"meta", layout.MetaBytes},
		{"data", layout.DataBytes},
	} {
		s.files[f.name] = &file{sfl: s, name: f.name, base: off, size: f.size}
		off += f.size
	}
	return s, nil
}

// NewDefault formats an SFL with the default layout for dev.
func NewDefault(env *sim.Env, dev blockdev.Device) (*SFL, error) {
	return New(env, dev, DefaultLayout(dev.Size()))
}

// File returns the named file; it panics on unknown names, as the file set
// is static by design.
func (s *SFL) File(name string) stor.File {
	f, ok := s.files[name]
	if !ok {
		panic(fmt.Sprintf("sfl: unknown file %q", name))
	}
	return f
}

// Layout returns the static partitioning.
func (s *SFL) Layout() Layout { return s.layout }

// DevOffset translates a file-relative offset to the absolute device
// offset, for tools that inject faults at (or reason about) the device
// level: betrfsck and the fault harness place bad ranges under specific
// node extents this way. Unknown names panic like File.
func (s *SFL) DevOffset(name string, off int64) int64 {
	f, ok := s.files[name]
	if !ok {
		panic(fmt.Sprintf("sfl: unknown file %q", name))
	}
	return f.base + off
}

// Names returns the file names in layout order (for tools).
func (s *SFL) Names() []string {
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return s.files[names[i]].base < s.files[names[j]].base })
	return names
}

// file is one static extent. I/O is direct: buffers belong to the caller
// and no intermediate cache exists.
type file struct {
	sfl  *SFL
	name string
	base int64
	size int64
}

func (f *file) check(n int, off int64) {
	if off < 0 || off+int64(n) > f.size {
		panic(fmt.Sprintf("sfl: %s I/O out of bounds: off=%d len=%d size=%d", f.name, off, n, f.size))
	}
}

// ReadAt synchronously reads len(p) bytes at off.
func (f *file) ReadAt(p []byte, off int64) error {
	f.check(len(p), off)
	f.sfl.mReadCount.Inc()
	f.sfl.mReadBytes.Add(int64(len(p)))
	return f.sfl.dev.ReadAt(p, f.base+off)
}

// WriteAt synchronously writes len(p) bytes at off.
func (f *file) WriteAt(p []byte, off int64) error {
	f.check(len(p), off)
	f.sfl.mWriteCount.Inc()
	f.sfl.mWriteBytes.Add(int64(len(p)))
	return f.sfl.dev.WriteAt(p, f.base+off)
}

// SubmitRead starts an asynchronous read.
func (f *file) SubmitRead(p []byte, off int64) stor.Wait {
	f.check(len(p), off)
	f.sfl.mReadCount.Inc()
	f.sfl.mReadBytes.Add(int64(len(p)))
	c := f.sfl.dev.SubmitRead(p, f.base+off)
	return func() error { return f.sfl.dev.Wait(c) }
}

// SubmitWrite starts an asynchronous write.
func (f *file) SubmitWrite(p []byte, off int64) stor.Wait {
	f.check(len(p), off)
	f.sfl.mWriteCount.Inc()
	f.sfl.mWriteBytes.Add(int64(len(p)))
	c := f.sfl.dev.SubmitWrite(p, f.base+off)
	return func() error { return f.sfl.dev.Wait(c) }
}

// Flush issues a device barrier.
func (f *file) Flush() error {
	f.sfl.mFlushCount.Inc()
	return f.sfl.dev.Flush()
}

// Discard passes the TRIM through to the device at the extent's base
// offset; the SFL owns the device directly (§2.1), so unlike the stacked
// southbound path the hint survives the translation.
func (f *file) Discard(off, length int64) error {
	f.check(int(length), off)
	f.sfl.mDiscardCount.Inc()
	f.sfl.mDiscardBytes.Add(length)
	return f.sfl.dev.Discard(f.base+off, length)
}

// Capacity returns the extent size.
func (f *file) Capacity() int64 { return f.size }
