package sfl

import (
	"bytes"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
)

func newSFL(t testing.TB) (*sim.Env, *blockdev.Dev, *SFL) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	s, err := NewDefault(env, dev)
	if err != nil {
		t.Fatal(err)
	}
	return env, dev, s
}

func TestLayoutProportions(t *testing.T) {
	_, dev, s := newSFL(t)
	lay := s.Layout()
	if lay.SuperBytes != 8<<20 {
		t.Fatalf("superblock %d, want 8MiB (Table 2)", lay.SuperBytes)
	}
	total := lay.SuperBytes + lay.LogBytes + lay.MetaBytes + lay.DataBytes
	if total > dev.Size() {
		t.Fatal("layout exceeds device")
	}
	if lay.DataBytes < lay.MetaBytes*5 {
		t.Fatal("data region should dominate (Table 2 proportions)")
	}
}

func TestFilesAreDisjoint(t *testing.T) {
	_, _, s := newSFL(t)
	// Writing a marker at offset 0 of each file must not clobber others.
	names := s.Names()
	if len(names) != 4 {
		t.Fatalf("names=%v", names)
	}
	for i, name := range names {
		buf := []byte{byte(i + 1), 0xbe, 0xef}
		s.File(name).WriteAt(buf, 0)
	}
	for i, name := range names {
		got := make([]byte, 3)
		s.File(name).ReadAt(got, 0)
		if got[0] != byte(i+1) {
			t.Fatalf("file %s clobbered: %v", name, got)
		}
	}
}

func TestDirectIONoCopyCharges(t *testing.T) {
	env, _, s := newSFL(t)
	f := s.File("data")
	buf := make([]byte, 1<<20)
	before := env.Stats.Memcpy
	f.WriteAt(buf, 0)
	if env.Stats.Memcpy != before {
		t.Fatal("SFL charged a memcpy: it must be zero-copy direct I/O")
	}
}

func TestAsyncIO(t *testing.T) {
	env, _, s := newSFL(t)
	f := s.File("meta")
	data := bytes.Repeat([]byte{0xab}, 256<<10)
	wait := f.SubmitWrite(data, 4096)
	submitTime := env.Now()
	wait()
	if env.Now() < submitTime {
		t.Fatal("time went backwards")
	}
	got := make([]byte, len(data))
	f.ReadAt(got, 4096)
	if !bytes.Equal(got, data) {
		t.Fatal("async write round trip failed")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	_, _, s := newSFL(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds write did not panic")
		}
	}()
	f := s.File("super")
	f.WriteAt(make([]byte, 4096), f.Capacity())
}

func TestUnknownFilePanics(t *testing.T) {
	_, _, s := newSFL(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown file did not panic")
		}
	}()
	s.File("nonexistent")
}
