// Package kmem models the Linux kernel's memory allocators and the
// cooperative memory-management framework of BetrFS v0.6 (§5 of the paper).
//
// The model does not manage real memory — Go's allocator does that — it
// charges simulated CPU time for the allocator work a kernel would do:
// slab allocations (kmalloc), large virtually-contiguous mappings
// (vmalloc, with per-page page-table population and TLB shootdowns on
// unmap), the expensive size lookup legacy vfree performs, and the
// realloc-by-copy pattern TokuDB's user-space heritage leans on.
//
// Two configurations exist:
//
//   - Legacy (BetrFS v0.4): a single cache of 32 × 128 KiB vmalloc
//     regions; frees pay the vmalloc size lookup; realloc grows buffers by
//     doubling with a full copy each step.
//   - Cooperative (v0.6, the MLC optimization): callers free with known
//     sizes, a buffer cache covers the common power-of-two classes, and
//     AllocUsable returns the full usable size of the underlying region so
//     bi-modal buffers jump straight to their final size.
package kmem

import (
	"sync"
	"time"

	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

// KmallocMax is the largest allocation served by the slab model; larger
// requests use the vmalloc path.
const KmallocMax = 32 << 10

// pageSize is the granularity of vmalloc mappings.
const pageSize = 4096

// Stats counts allocator activity and the simulated time it consumed.
type Stats struct {
	Kmallocs      int64
	Vmallocs      int64
	CacheHits     int64
	CacheMisses   int64
	Frees         int64
	Reallocs      int64
	ReallocCopies int64
	BytesCopied   int64
	Time          time.Duration
}

// Buf is an allocation handle. It carries the requested and usable sizes;
// no real backing memory is attached.
type Buf struct {
	// Size is the requested size in bytes.
	Size int
	// Usable is the capacity actually reserved, which the cooperative
	// interface exposes to callers (like malloc_usable_size).
	Usable int

	vmalloc bool
	class   int // cache size class, 0 if none
}

// Allocator models one machine's kernel allocator state. All methods are
// safe for concurrent use: the mutex serializes the buffer-cache state and
// statistics, so the background flusher and checkpoint pipeline can
// allocate serialization buffers while foreground operations run
// (DESIGN.md §9). Charges commute, so single-goroutine runs are unchanged.
type Allocator struct {
	env         *sim.Env
	cooperative bool
	mu          sync.Mutex
	// cache maps size class -> number of cached regions available.
	cache    map[int]int
	cacheCap map[int]int
	stats    Stats

	mKmalloc     *metrics.Counter
	mVmalloc     *metrics.Counter
	mCacheHit    *metrics.Counter
	mCacheMiss   *metrics.Counter
	mFree        *metrics.Counter
	mRealloc     *metrics.Counter
	mReallocCopy *metrics.Counter
	mBytesCopied *metrics.Counter
	mAllocHist   *metrics.Histogram
}

// legacy BetrFS kept a small cache of one common size only.
var legacyClasses = []int{128 << 10}

// cooperativeClasses covers the common powers of two the v0.6 allocator
// caches (§5: "expanded this cache of larger buffers to include
// additional, common powers of two").
var cooperativeClasses = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}

const cachePerClass = 32

// New returns an allocator. cooperative selects the v0.6 interfaces.
func New(env *sim.Env, cooperative bool) *Allocator {
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	a := &Allocator{
		env:          env,
		cooperative:  cooperative,
		cache:        make(map[int]int),
		cacheCap:     make(map[int]int),
		mKmalloc:     reg.Counter("kmem.alloc.kmalloc"),
		mVmalloc:     reg.Counter("kmem.alloc.vmalloc"),
		mCacheHit:    reg.Counter("kmem.buffercache.hit"),
		mCacheMiss:   reg.Counter("kmem.buffercache.miss"),
		mFree:        reg.Counter("kmem.free.count"),
		mRealloc:     reg.Counter("kmem.realloc.count"),
		mReallocCopy: reg.Counter("kmem.realloc.copy"),
		mBytesCopied: reg.Counter("kmem.bytes.copied"),
		mAllocHist:   reg.Histogram("kmem.alloc.bytes", "bytes"),
	}
	classes := legacyClasses
	if cooperative {
		classes = cooperativeClasses
	}
	for _, c := range classes {
		a.cacheCap[c] = cachePerClass
	}
	return a
}

// Cooperative reports whether the v0.6 interfaces are enabled.
func (a *Allocator) Cooperative() bool { return a.cooperative }

// Stats returns cumulative allocator statistics.
func (a *Allocator) Stats() *Stats { return &a.stats }

func (a *Allocator) charge(d time.Duration) {
	a.env.ChargeAlloc(d)
	a.stats.Time += d
}

// classFor returns the smallest cached size class that fits size, or 0.
func (a *Allocator) classFor(size int) int {
	best := 0
	for c := range a.cacheCap {
		if c >= size && (best == 0 || c < best) {
			best = c
		}
	}
	return best
}

// Alloc allocates size bytes, choosing kmalloc or vmalloc as the kernel
// would. The returned Buf's Usable equals Size unless a cached region with
// extra capacity was used.
func (a *Allocator) Alloc(size int) *Buf {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alloc(size)
}

func (a *Allocator) alloc(size int) *Buf {
	a.mAllocHist.Observe(int64(size))
	if size <= KmallocMax {
		a.stats.Kmallocs++
		a.mKmalloc.Inc()
		a.charge(a.env.Costs.KmallocBase)
		return &Buf{Size: size, Usable: size}
	}
	if c := a.classFor(size); c != 0 && a.cache[c] > 0 {
		a.cache[c]--
		a.stats.CacheHits++
		a.mCacheHit.Inc()
		a.charge(a.env.Costs.KmallocBase) // cache pop is cheap
		return &Buf{Size: size, Usable: c, vmalloc: true, class: c}
	}
	a.stats.Vmallocs++
	a.stats.CacheMisses++
	a.mVmalloc.Inc()
	a.mCacheMiss.Inc()
	pages := (size + pageSize - 1) / pageSize
	a.charge(a.env.Costs.VmallocBase + time.Duration(pages)*a.env.Costs.VmallocPerPage)
	class := a.classFor(size)
	usable := size
	if class != 0 {
		usable = class
		pages = class / pageSize
	}
	return &Buf{Size: size, Usable: usable, vmalloc: true, class: class}
}

// AllocUsable is the cooperative allocation interface: it rounds the
// request up to a cached class and tells the caller the full usable size,
// so bi-modal buffers reach their final size in one step. Without the
// cooperative mode it behaves exactly like Alloc.
func (a *Allocator) AllocUsable(size int) *Buf {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocUsable(size)
}

func (a *Allocator) allocUsable(size int) *Buf {
	if !a.cooperative || size <= KmallocMax {
		return a.alloc(size)
	}
	if c := a.classFor(size); c != 0 {
		b := a.alloc(c)
		b.Size = size
		return b
	}
	// Beyond the largest cached class, negotiate head-room so the
	// bi-modal growth pattern (§5) does not degenerate into a copy per
	// append: reserve half again the request.
	b := a.alloc(size + size/2)
	b.Size = size
	return b
}

// Free releases b through the legacy interface: vmalloc regions pay the
// kernel's size lookup plus a TLB shootdown unless they can be parked in
// the buffer cache.
func (a *Allocator) Free(b *Buf) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free(b, false)
}

// FreeSized releases b with its size supplied by the caller (the
// cooperative interface), eliding the vmalloc size lookup. In legacy mode
// it degrades to Free, as v0.4's code could not pass sizes down.
func (a *Allocator) FreeSized(b *Buf) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free(b, a.cooperative)
}

func (a *Allocator) free(b *Buf, sized bool) {
	if b == nil {
		return
	}
	a.stats.Frees++
	a.mFree.Inc()
	if !b.vmalloc {
		a.charge(a.env.Costs.KmallocBase)
		return
	}
	if !sized {
		a.charge(a.env.Costs.VfreeSizeLookup)
	}
	if b.class != 0 && a.cache[b.class] < a.cacheCap[b.class] {
		a.cache[b.class]++
		a.charge(a.env.Costs.KmallocBase) // cache push
		return
	}
	// Real unmap: page-table teardown plus cross-CPU TLB shootdown.
	pages := (b.Usable + pageSize - 1) / pageSize
	a.charge(a.env.Costs.TLBShootdown + time.Duration(pages)*a.env.Costs.VmallocPerPage/2)
}

// Realloc grows (or shrinks) b to newSize and returns the new handle.
//
// In cooperative mode a request within the usable capacity is free — the
// caller was told the capacity up front. Otherwise the kernel pattern
// applies: allocate, copy the used bytes, free the old region.
func (a *Allocator) Realloc(b *Buf, newSize int, usedBytes int) *Buf {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.realloc(b, newSize, usedBytes)
}

func (a *Allocator) realloc(b *Buf, newSize int, usedBytes int) *Buf {
	a.stats.Reallocs++
	a.mRealloc.Inc()
	if b == nil {
		return a.alloc(newSize)
	}
	if newSize <= b.Usable {
		b.Size = newSize
		return b
	}
	a.stats.ReallocCopies++
	a.mReallocCopy.Inc()
	var nb *Buf
	if a.cooperative {
		nb = a.allocUsable(newSize)
	} else {
		nb = a.alloc(newSize)
	}
	if usedBytes > 0 {
		a.stats.BytesCopied += int64(usedBytes)
		a.mBytesCopied.Add(int64(usedBytes))
		a.env.Memcpy(usedBytes)
	}
	a.free(b, a.cooperative)
	return nb
}

// GrowDoubling models the user-space-heritage growth loop in TokuDB: grow
// by doubling until newSize fits. Legacy mode pays a copy per doubling
// step; cooperative mode collapses to a single Realloc because the
// negotiated capacity absorbs the growth.
func (a *Allocator) GrowDoubling(b *Buf, newSize int, usedBytes int) *Buf {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b == nil {
		return a.alloc(newSize)
	}
	if a.cooperative {
		return a.realloc(b, newSize, usedBytes)
	}
	for b.Usable < newSize {
		target := b.Usable * 2
		if target < 4096 {
			target = 4096
		}
		b = a.realloc(b, target, usedBytes)
		usedBytes = target / 2
	}
	b.Size = newSize
	return b
}
