package kmem

import (
	"testing"
	"testing/quick"

	"betrfs/internal/sim"
)

func TestSmallAllocsUseKmalloc(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, false)
	b := a.Alloc(1024)
	if b.vmalloc {
		t.Fatal("1KiB allocation should be kmalloc")
	}
	a.Free(b)
	if a.Stats().Kmallocs != 1 {
		t.Fatalf("kmallocs=%d", a.Stats().Kmallocs)
	}
}

func TestLargeAllocsUseVmalloc(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, false)
	b := a.Alloc(1 << 20)
	if !b.vmalloc {
		t.Fatal("1MiB allocation should be vmalloc")
	}
	if a.Stats().Vmallocs != 1 {
		t.Fatalf("vmallocs=%d", a.Stats().Vmallocs)
	}
}

func TestVmallocCostlierThanKmalloc(t *testing.T) {
	envK := sim.NewEnv(1)
	k := New(envK, false)
	for i := 0; i < 100; i++ {
		k.Free(k.Alloc(4096))
	}
	envV := sim.NewEnv(1)
	v := New(envV, false)
	for i := 0; i < 100; i++ {
		v.Free(v.Alloc(1 << 20)) // 1MiB is not a legacy cache class
	}
	if envV.Now() < envK.Now()*10 {
		t.Fatalf("vmalloc churn (%v) should dwarf kmalloc churn (%v)",
			envV.Now(), envK.Now())
	}
}

func TestLegacyCacheOnlyServes128K(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, false)
	b := a.Alloc(128 << 10)
	a.Free(b)
	if a.Stats().CacheMisses != 1 {
		t.Fatalf("first alloc should miss, misses=%d", a.Stats().CacheMisses)
	}
	b = a.Alloc(128 << 10)
	if a.Stats().CacheHits != 1 {
		t.Fatalf("second 128K alloc should hit cache, hits=%d", a.Stats().CacheHits)
	}
	a.Free(b)
	c := a.Alloc(1 << 20)
	if a.Stats().CacheHits != 1 {
		t.Fatal("1MiB alloc must not hit the 128K-only legacy cache")
	}
	a.Free(c)
}

func TestCooperativeCacheCoversPowerOfTwo(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, true)
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	for _, s := range sizes {
		a.FreeSized(a.Alloc(s))
		before := a.Stats().CacheHits
		a.FreeSized(a.Alloc(s))
		if a.Stats().CacheHits != before+1 {
			t.Fatalf("size %d did not hit cooperative cache", s)
		}
	}
}

func TestFreeSizedCheaperThanFree(t *testing.T) {
	// Use a non-class size so frees take the unmap path where the size
	// lookup matters.
	const size = 5 << 20
	envL := sim.NewEnv(1)
	l := New(envL, false)
	start := envL.Now()
	b := l.Alloc(size)
	mid := envL.Now()
	l.Free(b)
	legacyFree := envL.Now() - mid
	_ = start

	envC := sim.NewEnv(1)
	c := New(envC, true)
	b2 := c.Alloc(size)
	mid2 := envC.Now()
	c.FreeSized(b2)
	coopFree := envC.Now() - mid2
	if coopFree >= legacyFree {
		t.Fatalf("cooperative free (%v) not cheaper than legacy (%v)", coopFree, legacyFree)
	}
}

func TestReallocWithinUsableIsFree(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, true)
	b := a.AllocUsable(100 << 10) // rounds up to 128K class
	if b.Usable < 128<<10 {
		t.Fatalf("usable=%d, want >=128K", b.Usable)
	}
	before := env.Now()
	b = a.Realloc(b, 120<<10, 100<<10)
	if env.Now() != before {
		t.Fatal("realloc within usable capacity should cost nothing")
	}
	if a.Stats().ReallocCopies != 0 {
		t.Fatal("realloc within usable capacity should not copy")
	}
}

func TestGrowDoublingLegacyCopiesRepeatedly(t *testing.T) {
	envL := sim.NewEnv(1)
	l := New(envL, false)
	b := l.Alloc(64 << 10)
	b = l.GrowDoubling(b, 4<<20, 64<<10)
	if b.Usable < 4<<20 {
		t.Fatalf("grown usable=%d", b.Usable)
	}
	if l.Stats().ReallocCopies < 5 {
		t.Fatalf("legacy doubling should copy many times, got %d", l.Stats().ReallocCopies)
	}

	envC := sim.NewEnv(1)
	c := New(envC, true)
	b2 := c.AllocUsable(64 << 10)
	b2 = c.GrowDoubling(b2, 4<<20, 64<<10)
	if c.Stats().ReallocCopies > 1 {
		t.Fatalf("cooperative growth should copy at most once, got %d", c.Stats().ReallocCopies)
	}
	if envC.Now() >= envL.Now() {
		t.Fatalf("cooperative growth (%v) not cheaper than legacy (%v)", envC.Now(), envL.Now())
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, true)
	a.Free(nil)
	a.FreeSized(nil)
	if env.Now() != 0 {
		t.Fatal("freeing nil charged time")
	}
}

func TestAllocUsableProperty(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, true)
	f := func(sz uint32) bool {
		size := int(sz%(8<<20)) + 1
		b := a.AllocUsable(size)
		ok := b.Usable >= size && b.Size == size
		a.FreeSized(b)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheBounded(t *testing.T) {
	env := sim.NewEnv(1)
	a := New(env, true)
	bufs := make([]*Buf, 0, 100)
	for i := 0; i < 100; i++ {
		bufs = append(bufs, a.Alloc(128<<10))
	}
	for _, b := range bufs {
		a.FreeSized(b)
	}
	if a.cache[128<<10] > cachePerClass {
		t.Fatalf("cache overfilled: %d", a.cache[128<<10])
	}
}
