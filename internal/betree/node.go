package betree

import (
	"sort"
	"sync"
	"sync/atomic"

	"betrfs/internal/keys"
	"betrfs/internal/sim"
)

// nodeID names a node; the block table maps it to an on-disk extent.
type nodeID uint64

// entry is one key-value pair in a basement node.
type entry struct {
	key []byte
	val Value
}

// basement is a sub-leaf unit (§2.2): leaves are partitioned into basement
// nodes (~128 KiB) so that point queries can read a fraction of a large
// leaf. maxApplied records the highest MSN whose effects are reflected in
// the entries, which is what makes apply-on-query and flushing idempotent.
type basement struct {
	entries    []entry
	maxApplied MSN
	bytes      int
	loaded     bool
	// Disk location within the owning node's extent, valid when the
	// node came from disk (offsets are node-relative). The small
	// section holds keys and small values; the page section holds
	// 4 KiB-aligned values (the §6 on-disk format).
	diskOff int
	diskLen int
	pageOff int
	pageLen int
	// crc is the directory checksum over the small section and page
	// range, verified when the basement is materialized from disk.
	crc uint32
	// firstKey bounds the basement's key range when entries are not
	// loaded; for loaded basements the entries themselves bound it.
	firstKey []byte
}

func (b *basement) entryBytes() int {
	n := 0
	for i := range b.entries {
		n += len(b.entries[i].key) + b.entries[i].val.Len() + entryOverhead
	}
	return n
}

const entryOverhead = 24

// find locates key within the basement, charging a binary search.
func (b *basement) find(env *sim.Env, key []byte) (int, bool) {
	lo, hi := 0, len(b.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		env.Compare(len(key))
		c := keys.Compare(b.entries[mid].key, key)
		if c == 0 {
			return mid, true
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, false
}

// node is an in-memory Bε-tree node.
type node struct {
	id     nodeID
	height int // 0 = leaf
	// dirty is read by cache eviction sweeps concurrently with writers
	// marking the node, hence atomic.
	dirty atomic.Bool

	// latch is the per-node reader/writer lock (DESIGN.md §9): descent
	// takes it shared hand-over-hand; buffer appends and leaf mutation
	// (basement loads, apply-on-query, scan materialization) take it
	// exclusive. Structural operations (flush, split, checkpoint) run
	// under the store's exclusive structure lock instead and do not
	// latch. pivots, children, and height only change under that
	// structure lock, so descent may read them with just the latch.
	latch sync.RWMutex

	// Interior state: child i covers keys < pivots[i] (and >= pivots[i-1]).
	pivots   [][]byte
	children []nodeID
	bufs     []buffer

	// Leaf state.
	basements []*basement
	// pageBase is the on-disk page-section base offset, captured from
	// the (verified) header when the node was decoded from disk; basement
	// partial loads need it to resolve aligned value offsets.
	pageBase int

	// Cache bookkeeping. pins is atomic: fetch pins under the cache
	// shard lock, but unpin is lock-free.
	pins    atomic.Int32
	memSize int
}

func (n *node) isLeaf() bool { return n.height == 0 }

// bufferBytes is the total buffered message volume of an interior node.
func (n *node) bufferBytes() int {
	total := 0
	for i := range n.bufs {
		total += n.bufs[i].bytes
	}
	return total
}

// leafBytes is the total payload volume of a leaf (loaded basements only).
func (n *node) leafBytes() int {
	total := 0
	for _, b := range n.basements {
		total += b.bytes
	}
	return total
}

// childFor returns the index of the child covering key, charging a binary
// search over the pivots.
func (n *node) childFor(env *sim.Env, key []byte) int {
	lo, hi := 0, len(n.pivots)
	for lo < hi {
		mid := (lo + hi) / 2
		env.Compare(len(key))
		if keys.Compare(n.pivots[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childRange returns the key range [lo, hi) that child i covers, clipped
// to the bounds the caller knows for this node (nil means unbounded).
func (n *node) childRange(i int, lo, hi []byte) (clo, chi []byte) {
	clo, chi = lo, hi
	if i > 0 {
		clo = n.pivots[i-1]
	}
	if i < len(n.pivots) {
		chi = n.pivots[i]
	}
	return clo, chi
}

// basementFor returns the index of the basement that should hold key.
func (n *node) basementFor(env *sim.Env, key []byte) int {
	if len(n.basements) == 1 {
		return 0
	}
	lo, hi := 1, len(n.basements)
	for lo < hi {
		mid := (lo + hi) / 2
		env.Compare(len(key))
		if keys.Compare(n.basements[mid].lowKey(), key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// lowKey returns the lower bound of the basement's key range: the
// recorded boundary when available (it stays valid when deletions empty
// the basement), else the first live entry.
func (b *basement) lowKey() []byte {
	if b.firstKey != nil {
		return b.firstKey
	}
	if b.loaded && len(b.entries) > 0 {
		return b.entries[0].key
	}
	return nil
}

// applyToBasement applies m to basement bi of leaf n in MSN order,
// honoring the basement's maxApplied guard. Returns whether the leaf
// changed. withCopies charges a memcpy of the value, modeling the
// copy-per-level behaviour of BetrFS v0.4 (§6); page sharing elides it.
func (n *node) applyToBasement(env *sim.Env, bi int, m *Msg, withCopies bool) bool {
	b := n.basements[bi]
	if !b.loaded {
		panic("betree: apply to unloaded basement")
	}
	if m.MSN <= b.maxApplied {
		// Already reflected here (apply-on-query or a scan materialized
		// it). The message is consumed: drop any payload it owns.
		m.Val.Release()
		return false
	}
	b.maxApplied = m.MSN
	env.Charge(env.Costs.MessageOverhead)
	switch m.Type {
	case MsgInsert:
		if withCopies && !m.Val.IsRef() {
			env.Memcpy(m.Val.Len())
		}
		i, found := b.find(env, m.Key)
		if found {
			b.bytes -= b.entries[i].val.Len()
			b.entries[i].val.Release()
			b.entries[i].val = m.Val
			b.bytes += m.Val.Len()
		} else {
			b.entries = append(b.entries, entry{})
			copy(b.entries[i+1:], b.entries[i:])
			b.entries[i] = entry{key: m.Key, val: m.Val}
			b.bytes += len(m.Key) + m.Val.Len() + entryOverhead
		}
		return true
	case MsgDelete:
		i, found := b.find(env, m.Key)
		if !found {
			return false
		}
		b.bytes -= len(b.entries[i].key) + b.entries[i].val.Len() + entryOverhead
		b.entries[i].val.Release()
		b.entries = append(b.entries[:i], b.entries[i+1:]...)
		return true
	case MsgUpdate:
		i, found := b.find(env, m.Key)
		patch := m.Val.Bytes()
		if !found {
			// Blind update to an absent key materializes a value of
			// zeros up to the patched range.
			v := make([]byte, m.Off+len(patch))
			copy(v[m.Off:], patch)
			env.Memcpy(len(v))
			ins := &Msg{Type: MsgInsert, MSN: m.MSN, Key: m.Key, Val: InlineValue(v)}
			b.maxApplied = m.MSN - 1 // let the insert pass the guard
			return n.applyToBasement(env, bi, ins, withCopies)
		}
		old := b.entries[i].val
		oldLen := old.Len()
		need := m.Off + len(patch)
		v := old.Bytes()
		if need > len(v) {
			nv := make([]byte, need)
			copy(nv, v)
			v = nv
		} else if old.IsRef() {
			// Patching a shared page: copy-on-write the value.
			v = append([]byte{}, v...)
		}
		env.Memcpy(len(patch))
		copy(v[m.Off:], patch)
		b.bytes += len(v) - oldLen
		old.Release()
		b.entries[i].val = InlineValue(v)
		return true
	case MsgRangeDelete:
		lo := sort.Search(len(b.entries), func(i int) bool {
			env.Compare(len(m.Key))
			return keys.Compare(b.entries[i].key, m.Key) >= 0
		})
		hi := sort.Search(len(b.entries), func(i int) bool {
			env.Compare(len(m.EndKey))
			return keys.Compare(b.entries[i].key, m.EndKey) >= 0
		})
		if lo >= hi {
			return false
		}
		for i := lo; i < hi; i++ {
			b.bytes -= len(b.entries[i].key) + b.entries[i].val.Len() + entryOverhead
			b.entries[i].val.Release()
		}
		b.entries = append(b.entries[:lo], b.entries[hi:]...)
		return true
	default:
		panic("betree: unknown message type")
	}
}

// cloneForSharedApply returns a message safe to apply to a leaf while the
// original remains live in an ancestor buffer (scan and apply-on-query
// materialization): the payload is copied so the leaf entry does not alias
// buffer-owned memory. The copy is charged — building a materialized view
// costs a memcpy.
func cloneForSharedApply(env *sim.Env, m *Msg) *Msg {
	if m.Type != MsgInsert && m.Type != MsgUpdate {
		return m
	}
	c := *m
	data := append([]byte{}, m.Val.Bytes()...)
	env.Memcpy(len(data))
	c.Val = InlineValue(data)
	return &c
}

// releaseRefs drops all page references held by the node, used when the
// node is discarded from the cache.
func (n *node) releaseRefs() {
	for i := range n.bufs {
		for _, m := range n.bufs[i].msgs {
			m.Val.Release()
		}
	}
	for _, b := range n.basements {
		for i := range b.entries {
			b.entries[i].val.Release()
		}
	}
}

// computeMemSize estimates the node's in-memory footprint for cache
// accounting.
func (n *node) computeMemSize() int {
	total := 256
	for i := range n.pivots {
		total += len(n.pivots[i]) + 16
	}
	for i := range n.bufs {
		total += n.bufs[i].bytes
	}
	for _, b := range n.basements {
		total += 64
		if b.loaded {
			total += b.bytes
		}
	}
	n.memSize = total
	return total
}
