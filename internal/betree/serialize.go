package betree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	keylen "betrfs/internal/keys"
	"betrfs/internal/sim"
)

// ErrChecksum reports that an on-disk image (node shell, basement, or
// whole node) failed checksum verification — a torn write, bit-rot, or a
// latent sector error. Callers detect it with errors.Is and degrade
// gracefully instead of consuming garbage.
var ErrChecksum = errors.New("betree: checksum mismatch")

// On-disk node format.
//
// Common header (40 bytes):
//
//	[0:4]   crc32 over [4:total] (whole-image checksum)
//	[4:8]   magic
//	[8:12]  height
//	[12:20] node id
//	[20:24] total serialized length
//	[24:28] page-section base offset (aligned value payloads)
//	[28:32] child/basement count
//	[32:36] shell end (header + basement directory + first keys)
//	[36:40] crc32 over [4:36] ++ [40:shellEnd] (shell checksum)
//
// Leaves follow with a basement directory; each basement has a small
// section (keys + small values) and, in the page-sharing format (§6), a
// separate 4 KiB-aligned page section at the tail of the node so that file
// blocks land in aligned buffers and can be written scatter-gather without
// a serialization copy. Interior nodes follow with pivots, child IDs, and
// per-child message buffers (page-valued insert messages use the same
// aligned tail).
//
// Checksums come in three granularities so every read path is verified
// (fault model, DESIGN.md): the whole-image crc covers full node reads;
// the shell crc covers the header-region read of a partial leaf read; and
// each basement directory slot carries a crc over that basement's small
// section and page range, covering basement-granular reads. A torn node
// write therefore cannot yield a silently wrong partial read: either the
// shell crc or the basement crc fails and the read surfaces ErrChecksum.
const (
	nodeMagic      = 0xbe72ee02
	baseHeaderSize = 40
	// dirSlotSize is the size of one basement directory slot.
	dirSlotSize = 32
	// alignedValueMin is the value size at or above which the aligned
	// page section is used (when page sharing is on).
	alignedValueMin = 2048
)

type nodeEncoder struct {
	env *sim.Env
	cfg *Config
	buf []byte
	// smallBytes counts bytes that required CPU serialization work;
	// aligned page payloads are excluded under page sharing.
	smallBytes int
}

func (e *nodeEncoder) u8(v uint8) { e.buf = append(e.buf, v); e.smallBytes++ }
func (e *nodeEncoder) u16(v uint16) {
	var t [2]byte
	binary.BigEndian.PutUint16(t[:], v)
	e.buf = append(e.buf, t[:]...)
	e.smallBytes += 2
}
func (e *nodeEncoder) u32(v uint32) {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	e.buf = append(e.buf, t[:]...)
	e.smallBytes += 4
}
func (e *nodeEncoder) u64(v uint64) {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	e.buf = append(e.buf, t[:]...)
	e.smallBytes += 8
}
func (e *nodeEncoder) bytes(b []byte) {
	e.buf = append(e.buf, b...)
	e.smallBytes += len(b)
}
func (e *nodeEncoder) keyed(b []byte) { e.u16(uint16(len(b))); e.bytes(b) }

// serializeNode encodes n, charging serialization and checksum CPU costs.
// Returned bytes are 4 KiB-aligned in length.
func serializeNode(env *sim.Env, cfg *Config, n *node) []byte {
	e := &nodeEncoder{env: env, cfg: cfg, buf: make([]byte, 0, cfg.NodeSize/2)}
	// Header placeholder; patched at the end.
	e.buf = append(e.buf, make([]byte, baseHeaderSize)...)
	e.smallBytes += baseHeaderSize

	var pages [][]byte // aligned payloads appended at the tail
	pageBytes := 0
	addPage := func(v Value) (off uint32) {
		b := v.Bytes()
		pages = append(pages, b)
		off = uint32(pageBytes)
		pageBytes += (len(b) + blockAlign - 1) &^ (blockAlign - 1)
		return off
	}
	useAligned := func(v Value) bool {
		return cfg.PageSharing && v.Len() >= alignedValueMin
	}
	encValue := func(v Value) {
		if useAligned(v) {
			e.u8(1)
			e.u32(uint32(v.Len()))
			e.u32(addPage(v))
		} else {
			e.u8(0)
			e.u32(uint32(v.Len()))
			e.bytes(v.Bytes())
		}
	}

	shellEnd := baseHeaderSize
	if n.isLeaf() {
		// Basement directory placeholder: fixed-size slots, then
		// variable first keys after the slots.
		dirStart := len(e.buf)
		for _, b := range n.basements {
			if !b.loaded {
				panic("betree: serializing leaf with unloaded basement")
			}
			_ = b
			e.buf = append(e.buf, make([]byte, dirSlotSize)...)
			e.smallBytes += dirSlotSize
		}
		for _, b := range n.basements {
			e.keyed(b.lowKey())
		}
		shellEnd = len(e.buf)
		// Basement small sections. With lifting (§2.2), the longest
		// common prefix of a basement's keys is stored once and
		// stripped from every key — very effective for full-path keys.
		type bloc struct{ smallOff, smallLen, pageOff, pageLen int }
		locs := make([]bloc, len(n.basements))
		for bi, b := range n.basements {
			start := len(e.buf)
			pstart := pageBytes
			e.u32(uint32(len(b.entries)))
			lift := 0
			if cfg.Lifting && len(b.entries) > 1 {
				lift = keylen.CommonPrefix(b.entries[0].key, b.entries[len(b.entries)-1].key)
			}
			var prefix []byte
			if lift > 0 {
				prefix = b.entries[0].key[:lift]
			}
			e.keyed(prefix)
			for i := range b.entries {
				e.keyed(b.entries[i].key[lift:])
				encValue(b.entries[i].val)
			}
			locs[bi] = bloc{smallOff: start, smallLen: len(e.buf) - start, pageOff: pstart, pageLen: pageBytes - pstart}
		}
		// Page section begins at the next aligned boundary.
		pageBase := (len(e.buf) + blockAlign - 1) &^ (blockAlign - 1)
		e.buf = append(e.buf, make([]byte, pageBase-len(e.buf))...)
		for _, p := range pages {
			e.buf = append(e.buf, p...)
			if pad := (blockAlign - len(p)%blockAlign) % blockAlign; pad > 0 {
				e.buf = append(e.buf, make([]byte, pad)...)
			}
		}
		// Patch the directory, including each basement's checksum over
		// its small section and page range (verified by basement-granular
		// partial reads).
		for bi := range n.basements {
			slot := dirStart + bi*dirSlotSize
			loc := locs[bi]
			binary.BigEndian.PutUint32(e.buf[slot:], uint32(loc.smallOff))
			binary.BigEndian.PutUint32(e.buf[slot+4:], uint32(loc.smallLen))
			binary.BigEndian.PutUint32(e.buf[slot+8:], uint32(pageBase+loc.pageOff))
			binary.BigEndian.PutUint32(e.buf[slot+12:], uint32(loc.pageLen))
			binary.BigEndian.PutUint64(e.buf[slot+16:], uint64(n.basements[bi].maxApplied))
			binary.BigEndian.PutUint32(e.buf[slot+24:], uint32(len(n.basements[bi].entries)))
			crc := crc32.ChecksumIEEE(e.buf[loc.smallOff : loc.smallOff+loc.smallLen])
			if loc.pageLen > 0 {
				crc = crc32.Update(crc, crc32.IEEETable, e.buf[pageBase+loc.pageOff:pageBase+loc.pageOff+loc.pageLen])
			}
			binary.BigEndian.PutUint32(e.buf[slot+28:], crc)
		}
		patchHeader(e.buf, n, pageBase, len(n.basements))
	} else {
		e.u32(uint32(len(n.children)))
		for _, p := range n.pivots {
			e.keyed(p)
		}
		for _, c := range n.children {
			e.u64(uint64(c))
		}
		for ci := range n.bufs {
			e.u32(uint32(n.bufs[ci].len()))
			for _, m := range n.bufs[ci].msgs {
				e.u8(uint8(m.Type))
				e.u64(uint64(m.MSN))
				e.keyed(m.Key)
				e.keyed(m.EndKey)
				e.u32(uint32(m.Off))
				encValue(m.Val)
			}
		}
		// Page section for by-ref message values.
		pageBase := (len(e.buf) + blockAlign - 1) &^ (blockAlign - 1)
		e.buf = append(e.buf, make([]byte, pageBase-len(e.buf))...)
		for _, p := range pages {
			e.buf = append(e.buf, p...)
			if pad := (blockAlign - len(p)%blockAlign) % blockAlign; pad > 0 {
				e.buf = append(e.buf, make([]byte, pad)...)
			}
		}
		patchHeader(e.buf, n, pageBase, len(n.children))
	}

	// Align total length, then patch the length-dependent header fields
	// and checksums: the shell crc covers the header (minus the two crc
	// fields) and the directory + first keys, so it must be computed
	// after the total length and shell end are in place; the whole-image
	// crc goes last, covering everything after itself.
	if pad := (blockAlign - len(e.buf)%blockAlign) % blockAlign; pad > 0 {
		e.buf = append(e.buf, make([]byte, pad)...)
	}
	binary.BigEndian.PutUint32(e.buf[20:], uint32(len(e.buf)))
	binary.BigEndian.PutUint32(e.buf[32:], uint32(shellEnd))
	binary.BigEndian.PutUint32(e.buf[36:], shellCRC(e.buf, shellEnd))
	crc := crc32.ChecksumIEEE(e.buf[4:])
	binary.BigEndian.PutUint32(e.buf[0:], crc)

	env.Serialize(e.smallBytes)
	env.Checksum(len(e.buf))
	return e.buf
}

// shellCRC computes the shell checksum: header fields [4:36] plus the
// basement directory and first keys [40:shellEnd], skipping the two crc
// fields themselves.
func shellCRC(buf []byte, shellEnd int) uint32 {
	crc := crc32.ChecksumIEEE(buf[4:36])
	return crc32.Update(crc, crc32.IEEETable, buf[baseHeaderSize:shellEnd])
}

func patchHeader(buf []byte, n *node, headerEnd, count int) {
	binary.BigEndian.PutUint32(buf[4:], nodeMagic)
	binary.BigEndian.PutUint32(buf[8:], uint32(n.height))
	binary.BigEndian.PutUint64(buf[12:], uint64(n.id))
	binary.BigEndian.PutUint32(buf[24:], uint32(headerEnd))
	binary.BigEndian.PutUint32(buf[28:], uint32(count))
}

type nodeDecoder struct {
	data []byte
	pos  int
}

func (d *nodeDecoder) u8() uint8 { v := d.data[d.pos]; d.pos++; return v }
func (d *nodeDecoder) u16() uint16 {
	v := binary.BigEndian.Uint16(d.data[d.pos:])
	d.pos += 2
	return v
}
func (d *nodeDecoder) u32() uint32 {
	v := binary.BigEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v
}
func (d *nodeDecoder) u64() uint64 {
	v := binary.BigEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v
}
func (d *nodeDecoder) keyed() []byte {
	n := int(d.u16())
	b := append([]byte{}, d.data[d.pos:d.pos+n]...)
	d.pos += n
	return b
}

// value decodes one encoded value. whole is the full node image and
// pageBase the node's page-section base offset (header bytes [24:28]).
func (d *nodeDecoder) value(whole []byte, pageBase int) Value {
	aligned := d.u8() == 1
	n := int(d.u32())
	if aligned {
		off := pageBase + int(d.u32())
		return InlineValue(append([]byte{}, whole[off:off+n]...))
	}
	v := append([]byte{}, d.data[d.pos:d.pos+n]...)
	d.pos += n
	return InlineValue(v)
}

// deserializeNode decodes a full node image, charging CPU costs and
// verifying the header checksum.
func deserializeNode(env *sim.Env, cfg *Config, data []byte) (*node, error) {
	if len(data) < baseHeaderSize {
		return nil, fmt.Errorf("betree: short node: %w", ErrChecksum)
	}
	if binary.BigEndian.Uint32(data[4:]) != nodeMagic {
		return nil, fmt.Errorf("betree: bad node magic: %w", ErrChecksum)
	}
	total := int(binary.BigEndian.Uint32(data[20:]))
	if total < baseHeaderSize || total > len(data) {
		return nil, fmt.Errorf("betree: truncated node: want %d have %d: %w", total, len(data), ErrChecksum)
	}
	data = data[:total]
	env.Checksum(len(data))
	if crc32.ChecksumIEEE(data[4:]) != binary.BigEndian.Uint32(data[0:]) {
		return nil, fmt.Errorf("betree: node image: %w", ErrChecksum)
	}
	n := &node{
		height: int(binary.BigEndian.Uint32(data[8:])),
		id:     nodeID(binary.BigEndian.Uint64(data[12:])),
	}
	count := int(binary.BigEndian.Uint32(data[28:]))
	if n.height == 0 {
		shell, _, err := decodeLeafShell(data)
		if err != nil {
			return nil, err
		}
		n.basements = shell
		n.pageBase = pageBase(data)
		for bi := range n.basements {
			if err := loadBasementFrom(env, data, n.basements[bi], n.pageBase); err != nil {
				return nil, err
			}
		}
		env.Serialize(smallSpan(n.basements))
		return n, nil
	}
	d := &nodeDecoder{data: data, pos: baseHeaderSize}
	if got := int(d.u32()); got != count {
		return nil, fmt.Errorf("betree: child count mismatch")
	}
	for i := 0; i < count-1; i++ {
		n.pivots = append(n.pivots, d.keyed())
	}
	for i := 0; i < count; i++ {
		n.children = append(n.children, nodeID(d.u64()))
	}
	n.bufs = make([]buffer, count)
	for ci := 0; ci < count; ci++ {
		msgs := int(d.u32())
		for i := 0; i < msgs; i++ {
			m := &Msg{}
			m.Type = MsgType(d.u8())
			m.MSN = MSN(d.u64())
			m.Key = d.keyed()
			m.EndKey = d.keyed()
			m.Off = int(d.u32())
			m.Val = d.value(data, pageBase(data))
			n.bufs[ci].append(m)
		}
	}
	env.Serialize(d.pos)
	n.computeMemSize()
	return n, nil
}

// decodeLeafShell parses the header + basement directory of a leaf image,
// returning unloaded basements and the number of directory bytes consumed
// (partial-read support, §2.2). The shell checksum is verified before the
// directory is trusted: a torn or corrupted header region surfaces
// ErrChecksum instead of garbage basement extents. A shell extending past
// the provided bytes returns a plain error so callers can fall back to a
// full read.
func decodeLeafShell(data []byte) (bs []*basement, consumed int, err error) {
	defer func() {
		if recover() != nil {
			bs, consumed, err = nil, 0, fmt.Errorf("betree: truncated leaf directory: %w", ErrChecksum)
		}
	}()
	if len(data) < baseHeaderSize {
		return nil, 0, fmt.Errorf("betree: short leaf shell: %w", ErrChecksum)
	}
	if binary.BigEndian.Uint32(data[4:]) != nodeMagic {
		return nil, 0, fmt.Errorf("betree: bad node magic: %w", ErrChecksum)
	}
	if binary.BigEndian.Uint32(data[8:]) != 0 {
		return nil, 0, fmt.Errorf("betree: leaf shell on interior node")
	}
	shellEnd := int(binary.BigEndian.Uint32(data[32:]))
	if shellEnd < baseHeaderSize {
		return nil, 0, fmt.Errorf("betree: bad shell end %d: %w", shellEnd, ErrChecksum)
	}
	if shellEnd > len(data) {
		// Not necessarily corrupt: the directory may simply exceed the
		// header-region read. The caller falls back to a full read, whose
		// whole-image checksum decides.
		return nil, 0, fmt.Errorf("betree: leaf shell exceeds %d bytes", len(data))
	}
	if shellCRC(data, shellEnd) != binary.BigEndian.Uint32(data[36:]) {
		return nil, 0, fmt.Errorf("betree: leaf shell: %w", ErrChecksum)
	}
	count := int(binary.BigEndian.Uint32(data[28:]))
	basements := make([]*basement, count)
	d := &nodeDecoder{data: data, pos: baseHeaderSize}
	for i := 0; i < count; i++ {
		b := &basement{}
		b.diskOff = int(d.u32())
		b.diskLen = int(d.u32())
		b.pageOff = int(d.u32())
		b.pageLen = int(d.u32())
		b.maxApplied = MSN(d.u64())
		d.u32() // entry count, informational
		b.crc = d.u32()
		basements[i] = b
	}
	for i := 0; i < count; i++ {
		basements[i].firstKey = d.keyed()
	}
	return basements, d.pos, nil
}

// pageBase extracts the page-section base offset from a node image header.
func pageBase(data []byte) int {
	return int(binary.BigEndian.Uint32(data[24:]))
}

// loadBasementFrom materializes basement b from a (possibly sparse) node
// image in which b's small section and b's page range have been
// populated; pb is the node's page-section base offset, taken from the
// (checksum-verified) header rather than the image bytes, since sparse
// partial reads never populate the header region. The basement's
// directory checksum is verified over the small section and page range
// before decoding, so a basement-granular partial read of a torn or
// corrupted node surfaces ErrChecksum.
func loadBasementFrom(env *sim.Env, data []byte, b *basement, pb int) (err error) {
	if b.loaded {
		return nil
	}
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("betree: truncated basement: %w", ErrChecksum)
		}
	}()
	if b.diskOff < baseHeaderSize || b.diskLen < 4 || b.diskOff+b.diskLen > len(data) {
		return fmt.Errorf("betree: basement small section out of bounds: %w", ErrChecksum)
	}
	if b.pageLen < 0 || b.pageOff < 0 || b.pageOff+b.pageLen > len(data) {
		return fmt.Errorf("betree: basement page range out of bounds: %w", ErrChecksum)
	}
	crc := crc32.ChecksumIEEE(data[b.diskOff : b.diskOff+b.diskLen])
	if b.pageLen > 0 {
		crc = crc32.Update(crc, crc32.IEEETable, data[b.pageOff:b.pageOff+b.pageLen])
	}
	if crc != b.crc {
		return fmt.Errorf("betree: basement at %d: %w", b.diskOff, ErrChecksum)
	}
	d := &nodeDecoder{data: data, pos: b.diskOff}
	nEntries := int(d.u32())
	prefix := d.keyed()
	b.entries = make([]entry, 0, nEntries)
	for i := 0; i < nEntries; i++ {
		suffix := d.keyed()
		k := suffix
		if len(prefix) > 0 {
			k = append(append(make([]byte, 0, len(prefix)+len(suffix)), prefix...), suffix...)
		}
		v := d.value(data, pb)
		b.entries = append(b.entries, entry{key: k, val: v})
	}
	b.loaded = true
	b.bytes = b.entryBytes()
	return nil
}

func smallSpan(bs []*basement) int {
	n := 0
	for _, b := range bs {
		n += b.diskLen
	}
	return n
}

// headerRegion is how many leading bytes of a node image are read to parse
// the header and basement directory for partial leaf reads.
const headerRegion = 16 << 10
