package betree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	keylen "betrfs/internal/keys"
	"betrfs/internal/sim"
)

// On-disk node format.
//
// Common header (32 bytes):
//
//	[0:4]   crc32 over [4:headerEnd]
//	[4:8]   magic
//	[8:12]  height
//	[12:20] node id
//	[20:24] total serialized length
//	[24:28] page-section base offset (aligned value payloads)
//	[28:32] child/basement count
//
// Leaves follow with a basement directory; each basement has a small
// section (keys + small values) and, in the page-sharing format (§6), a
// separate 4 KiB-aligned page section at the tail of the node so that file
// blocks land in aligned buffers and can be written scatter-gather without
// a serialization copy. Interior nodes follow with pivots, child IDs, and
// per-child message buffers (page-valued insert messages use the same
// aligned tail).
const (
	nodeMagic      = 0xbe72ee01
	baseHeaderSize = 32
	// alignedValueMin is the value size at or above which the aligned
	// page section is used (when page sharing is on).
	alignedValueMin = 2048
)

type nodeEncoder struct {
	env *sim.Env
	cfg *Config
	buf []byte
	// smallBytes counts bytes that required CPU serialization work;
	// aligned page payloads are excluded under page sharing.
	smallBytes int
}

func (e *nodeEncoder) u8(v uint8) { e.buf = append(e.buf, v); e.smallBytes++ }
func (e *nodeEncoder) u16(v uint16) {
	var t [2]byte
	binary.BigEndian.PutUint16(t[:], v)
	e.buf = append(e.buf, t[:]...)
	e.smallBytes += 2
}
func (e *nodeEncoder) u32(v uint32) {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	e.buf = append(e.buf, t[:]...)
	e.smallBytes += 4
}
func (e *nodeEncoder) u64(v uint64) {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	e.buf = append(e.buf, t[:]...)
	e.smallBytes += 8
}
func (e *nodeEncoder) bytes(b []byte) {
	e.buf = append(e.buf, b...)
	e.smallBytes += len(b)
}
func (e *nodeEncoder) keyed(b []byte) { e.u16(uint16(len(b))); e.bytes(b) }

// serializeNode encodes n, charging serialization and checksum CPU costs.
// Returned bytes are 4 KiB-aligned in length.
func serializeNode(env *sim.Env, cfg *Config, n *node) []byte {
	e := &nodeEncoder{env: env, cfg: cfg, buf: make([]byte, 0, cfg.NodeSize/2)}
	// Header placeholder; patched at the end.
	e.buf = append(e.buf, make([]byte, baseHeaderSize)...)
	e.smallBytes += baseHeaderSize

	var pages [][]byte // aligned payloads appended at the tail
	pageBytes := 0
	addPage := func(v Value) (off uint32) {
		b := v.Bytes()
		pages = append(pages, b)
		off = uint32(pageBytes)
		pageBytes += (len(b) + blockAlign - 1) &^ (blockAlign - 1)
		return off
	}
	useAligned := func(v Value) bool {
		return cfg.PageSharing && v.Len() >= alignedValueMin
	}
	encValue := func(v Value) {
		if useAligned(v) {
			e.u8(1)
			e.u32(uint32(v.Len()))
			e.u32(addPage(v))
		} else {
			e.u8(0)
			e.u32(uint32(v.Len()))
			e.bytes(v.Bytes())
		}
	}

	if n.isLeaf() {
		// Basement directory placeholder: fixed-size slots, then
		// variable first keys after the slots.
		dirStart := len(e.buf)
		for _, b := range n.basements {
			if !b.loaded {
				panic("betree: serializing leaf with unloaded basement")
			}
			_ = b
			e.buf = append(e.buf, make([]byte, 28)...)
			e.smallBytes += 28
		}
		for _, b := range n.basements {
			e.keyed(b.lowKey())
		}
		// Basement small sections. With lifting (§2.2), the longest
		// common prefix of a basement's keys is stored once and
		// stripped from every key — very effective for full-path keys.
		type bloc struct{ smallOff, smallLen, pageOff, pageLen int }
		locs := make([]bloc, len(n.basements))
		for bi, b := range n.basements {
			start := len(e.buf)
			pstart := pageBytes
			e.u32(uint32(len(b.entries)))
			lift := 0
			if cfg.Lifting && len(b.entries) > 1 {
				lift = keylen.CommonPrefix(b.entries[0].key, b.entries[len(b.entries)-1].key)
			}
			var prefix []byte
			if lift > 0 {
				prefix = b.entries[0].key[:lift]
			}
			e.keyed(prefix)
			for i := range b.entries {
				e.keyed(b.entries[i].key[lift:])
				encValue(b.entries[i].val)
			}
			locs[bi] = bloc{smallOff: start, smallLen: len(e.buf) - start, pageOff: pstart, pageLen: pageBytes - pstart}
		}
		// Page section begins at the next aligned boundary.
		pageBase := (len(e.buf) + blockAlign - 1) &^ (blockAlign - 1)
		e.buf = append(e.buf, make([]byte, pageBase-len(e.buf))...)
		for _, p := range pages {
			e.buf = append(e.buf, p...)
			if pad := (blockAlign - len(p)%blockAlign) % blockAlign; pad > 0 {
				e.buf = append(e.buf, make([]byte, pad)...)
			}
		}
		// Patch the directory.
		for bi := range n.basements {
			slot := dirStart + bi*28
			loc := locs[bi]
			binary.BigEndian.PutUint32(e.buf[slot:], uint32(loc.smallOff))
			binary.BigEndian.PutUint32(e.buf[slot+4:], uint32(loc.smallLen))
			binary.BigEndian.PutUint32(e.buf[slot+8:], uint32(pageBase+loc.pageOff))
			binary.BigEndian.PutUint32(e.buf[slot+12:], uint32(loc.pageLen))
			binary.BigEndian.PutUint64(e.buf[slot+16:], uint64(n.basements[bi].maxApplied))
			binary.BigEndian.PutUint32(e.buf[slot+24:], uint32(len(n.basements[bi].entries)))
		}
		patchHeader(e.buf, n, pageBase, len(n.basements))
	} else {
		e.u32(uint32(len(n.children)))
		for _, p := range n.pivots {
			e.keyed(p)
		}
		for _, c := range n.children {
			e.u64(uint64(c))
		}
		for ci := range n.bufs {
			e.u32(uint32(n.bufs[ci].len()))
			for _, m := range n.bufs[ci].msgs {
				e.u8(uint8(m.Type))
				e.u64(uint64(m.MSN))
				e.keyed(m.Key)
				e.keyed(m.EndKey)
				e.u32(uint32(m.Off))
				encValue(m.Val)
			}
		}
		// Page section for by-ref message values.
		pageBase := (len(e.buf) + blockAlign - 1) &^ (blockAlign - 1)
		e.buf = append(e.buf, make([]byte, pageBase-len(e.buf))...)
		for _, p := range pages {
			e.buf = append(e.buf, p...)
			if pad := (blockAlign - len(p)%blockAlign) % blockAlign; pad > 0 {
				e.buf = append(e.buf, make([]byte, pad)...)
			}
		}
		patchHeader(e.buf, n, pageBase, len(n.children))
	}

	// Align total length.
	if pad := (blockAlign - len(e.buf)%blockAlign) % blockAlign; pad > 0 {
		e.buf = append(e.buf, make([]byte, pad)...)
	}
	binary.BigEndian.PutUint32(e.buf[20:], uint32(len(e.buf)))
	crc := crc32.ChecksumIEEE(e.buf[4:])
	binary.BigEndian.PutUint32(e.buf[0:], crc)

	env.Serialize(e.smallBytes)
	env.Checksum(len(e.buf))
	return e.buf
}

func patchHeader(buf []byte, n *node, headerEnd, count int) {
	binary.BigEndian.PutUint32(buf[4:], nodeMagic)
	binary.BigEndian.PutUint32(buf[8:], uint32(n.height))
	binary.BigEndian.PutUint64(buf[12:], uint64(n.id))
	binary.BigEndian.PutUint32(buf[24:], uint32(headerEnd))
	binary.BigEndian.PutUint32(buf[28:], uint32(count))
}

type nodeDecoder struct {
	data []byte
	pos  int
}

func (d *nodeDecoder) u8() uint8 { v := d.data[d.pos]; d.pos++; return v }
func (d *nodeDecoder) u16() uint16 {
	v := binary.BigEndian.Uint16(d.data[d.pos:])
	d.pos += 2
	return v
}
func (d *nodeDecoder) u32() uint32 {
	v := binary.BigEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v
}
func (d *nodeDecoder) u64() uint64 {
	v := binary.BigEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v
}
func (d *nodeDecoder) keyed() []byte {
	n := int(d.u16())
	b := append([]byte{}, d.data[d.pos:d.pos+n]...)
	d.pos += n
	return b
}

// value decodes one encoded value. whole is the full node image and
// pageBase the node's page-section base offset (header bytes [24:28]).
func (d *nodeDecoder) value(whole []byte, pageBase int) Value {
	aligned := d.u8() == 1
	n := int(d.u32())
	if aligned {
		off := pageBase + int(d.u32())
		return InlineValue(append([]byte{}, whole[off:off+n]...))
	}
	v := append([]byte{}, d.data[d.pos:d.pos+n]...)
	d.pos += n
	return InlineValue(v)
}

// deserializeNode decodes a full node image, charging CPU costs and
// verifying the header checksum.
func deserializeNode(env *sim.Env, cfg *Config, data []byte) (*node, error) {
	if len(data) < baseHeaderSize {
		return nil, fmt.Errorf("betree: short node")
	}
	if binary.BigEndian.Uint32(data[4:]) != nodeMagic {
		return nil, fmt.Errorf("betree: bad node magic")
	}
	total := int(binary.BigEndian.Uint32(data[20:]))
	if total > len(data) {
		return nil, fmt.Errorf("betree: truncated node: want %d have %d", total, len(data))
	}
	data = data[:total]
	env.Checksum(len(data))
	if crc32.ChecksumIEEE(data[4:]) != binary.BigEndian.Uint32(data[0:]) {
		return nil, fmt.Errorf("betree: node checksum mismatch")
	}
	n := &node{
		height: int(binary.BigEndian.Uint32(data[8:])),
		id:     nodeID(binary.BigEndian.Uint64(data[12:])),
	}
	count := int(binary.BigEndian.Uint32(data[28:]))
	if n.height == 0 {
		shell, _, err := decodeLeafShell(data)
		if err != nil {
			return nil, err
		}
		n.basements = shell
		for bi := range n.basements {
			if err := loadBasementFrom(env, data, n.basements[bi]); err != nil {
				return nil, err
			}
		}
		env.Serialize(smallSpan(n.basements))
		return n, nil
	}
	d := &nodeDecoder{data: data, pos: baseHeaderSize}
	if got := int(d.u32()); got != count {
		return nil, fmt.Errorf("betree: child count mismatch")
	}
	for i := 0; i < count-1; i++ {
		n.pivots = append(n.pivots, d.keyed())
	}
	for i := 0; i < count; i++ {
		n.children = append(n.children, nodeID(d.u64()))
	}
	n.bufs = make([]buffer, count)
	for ci := 0; ci < count; ci++ {
		msgs := int(d.u32())
		for i := 0; i < msgs; i++ {
			m := &Msg{}
			m.Type = MsgType(d.u8())
			m.MSN = MSN(d.u64())
			m.Key = d.keyed()
			m.EndKey = d.keyed()
			m.Off = int(d.u32())
			m.Val = d.value(data, pageBase(data))
			n.bufs[ci].append(m)
		}
	}
	env.Serialize(d.pos)
	n.computeMemSize()
	return n, nil
}

// decodeLeafShell parses the header + basement directory of a leaf image,
// returning unloaded basements and the number of directory bytes consumed
// (partial-read support, §2.2). A truncated or corrupt directory returns an
// error rather than panicking, so callers can fall back to a full read.
func decodeLeafShell(data []byte) (bs []*basement, consumed int, err error) {
	defer func() {
		if recover() != nil {
			bs, consumed, err = nil, 0, fmt.Errorf("betree: truncated leaf directory")
		}
	}()
	if binary.BigEndian.Uint32(data[4:]) != nodeMagic {
		return nil, 0, fmt.Errorf("betree: bad node magic")
	}
	if binary.BigEndian.Uint32(data[8:]) != 0 {
		return nil, 0, fmt.Errorf("betree: leaf shell on interior node")
	}
	count := int(binary.BigEndian.Uint32(data[28:]))
	basements := make([]*basement, count)
	d := &nodeDecoder{data: data, pos: baseHeaderSize}
	for i := 0; i < count; i++ {
		b := &basement{}
		b.diskOff = int(d.u32())
		b.diskLen = int(d.u32())
		b.pageOff = int(d.u32())
		b.pageLen = int(d.u32())
		b.maxApplied = MSN(d.u64())
		d.u32() // entry count, informational
		basements[i] = b
	}
	for i := 0; i < count; i++ {
		basements[i].firstKey = d.keyed()
	}
	return basements, d.pos, nil
}

// pageBase extracts the page-section base offset from a node image header.
func pageBase(data []byte) int {
	return int(binary.BigEndian.Uint32(data[24:]))
}

// loadBasementFrom materializes basement b from a (possibly sparse) node
// image in which the header, b's small section, and b's page range have
// been populated.
func loadBasementFrom(env *sim.Env, data []byte, b *basement) error {
	if b.loaded {
		return nil
	}
	if b.diskOff+b.diskLen > len(data) {
		return fmt.Errorf("betree: basement out of bounds")
	}
	pb := pageBase(data)
	d := &nodeDecoder{data: data, pos: b.diskOff}
	nEntries := int(d.u32())
	prefix := d.keyed()
	b.entries = make([]entry, 0, nEntries)
	for i := 0; i < nEntries; i++ {
		suffix := d.keyed()
		k := suffix
		if len(prefix) > 0 {
			k = append(append(make([]byte, 0, len(prefix)+len(suffix)), prefix...), suffix...)
		}
		v := d.value(data, pb)
		b.entries = append(b.entries, entry{key: k, val: v})
	}
	b.loaded = true
	b.bytes = b.entryBytes()
	return nil
}

func smallSpan(bs []*basement) int {
	n := 0
	for _, b := range bs {
		n += b.diskLen
	}
	return n
}

// headerRegion is how many leading bytes of a node image are read to parse
// the header and basement directory for partial leaf reads.
const headerRegion = 16 << 10
