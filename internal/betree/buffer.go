package betree

import (
	"betrfs/internal/keys"
	"betrfs/internal/kmem"
	"betrfs/internal/sim"
)

// buffer is one interior node's per-child message log. Messages are kept
// in arrival order, which — because messages only ever move downward — is
// also ascending MSN order.
//
// The backing storage is modeled through the kernel allocator: buffers
// grow as messages arrive and cascaded flushes can balloon them past their
// eventual on-disk size (§2.3 "Small Writes and Buffer Resizing"). Under
// the legacy allocator every growth step is a vmalloc+copy; the
// cooperative interfaces (§5) make growth nearly free.
type buffer struct {
	msgs  []*Msg
	bytes int
	kbuf  *kmem.Buf
}

func (b *buffer) len() int { return len(b.msgs) }

func (b *buffer) append(m *Msg) {
	b.msgs = append(b.msgs, m)
	b.bytes += m.memBytes()
}

// appendCharged is append plus the allocator work of growing the backing
// buffer.
func (b *buffer) appendCharged(alloc *kmem.Allocator, m *Msg) {
	old := b.bytes
	b.append(m)
	if b.kbuf == nil {
		b.kbuf = alloc.Alloc(maxInt(b.bytes, 4096))
	} else if b.bytes > b.kbuf.Usable {
		b.kbuf = alloc.GrowDoubling(b.kbuf, b.bytes, old)
	}
}

func maxInt(a, c int) int {
	if a > c {
		return a
	}
	return c
}

// restore prepends msgs, which takeAll previously removed, preserving MSN
// order against anything appended since. It is uncharged: it runs while
// an ioerr.Abort panic unwinds the flush path, and charging the allocator
// there could itself abort (a panic during a panic crashes the process).
// The allocator therefore under-counts the restored bytes until the next
// appendCharged regrows the buffer.
func (b *buffer) restore(msgs []*Msg) {
	merged := make([]*Msg, 0, len(msgs)+len(b.msgs))
	merged = append(merged, msgs...)
	merged = append(merged, b.msgs...)
	b.msgs = merged
	for _, m := range msgs {
		b.bytes += m.memBytes()
	}
}

// takeAll removes and returns every message, oldest first, releasing the
// backing buffer through the allocator.
func (b *buffer) takeAll(alloc *kmem.Allocator) []*Msg {
	out := b.msgs
	b.msgs = nil
	b.bytes = 0
	if b.kbuf != nil {
		alloc.FreeSized(b.kbuf)
		b.kbuf = nil
	}
	return out
}

// drop removes the message at index i, releasing any page reference.
func (b *buffer) drop(i int) {
	m := b.msgs[i]
	b.bytes -= m.memBytes()
	m.Val.Release()
	b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
}

// collect appends to out the messages relevant to key (exact-key point
// messages and covering range deletes) with MSN above after, charging one
// comparison per message examined. Range messages charge two comparisons,
// reflecting the paper's observation that checking range messages is more
// expensive than point messages (§4).
func (b *buffer) collect(env *sim.Env, key []byte, after MSN, out []*Msg) []*Msg {
	for _, m := range b.msgs {
		if m.Type == MsgRangeDelete {
			env.Compare(len(key))
			env.Compare(len(key))
			if m.MSN > after && m.covers(key) {
				out = append(out, m)
			}
			continue
		}
		env.Compare(len(key))
		if m.MSN > after && keys.Compare(m.Key, key) == 0 {
			out = append(out, m)
		}
	}
	return out
}

// collectRange appends messages overlapping [lo, hi) with MSN above after.
func (b *buffer) collectRange(env *sim.Env, lo, hi []byte, after MSN, out []*Msg) []*Msg {
	for _, m := range b.msgs {
		env.Compare(len(lo))
		env.Compare(len(hi))
		if m.MSN > after && m.overlapsRange(lo, hi) {
			out = append(out, m)
		}
	}
	return out
}

// anyOverlap reports whether any message overlaps [lo, hi), charging
// comparisons for the scan.
func (b *buffer) anyOverlap(env *sim.Env, lo, hi []byte) bool {
	for _, m := range b.msgs {
		env.Compare(len(lo))
		env.Compare(len(hi))
		if m.overlapsRange(lo, hi) {
			return true
		}
	}
	return false
}

// removeOverlapping removes and returns (in buffer order) all messages
// overlapping [lo, hi). Used by the apply-on-query flush path, which pushes
// pending messages into a dirty leaf.
func (b *buffer) removeOverlapping(env *sim.Env, lo, hi []byte) []*Msg {
	var out []*Msg
	kept := b.msgs[:0]
	for _, m := range b.msgs {
		env.Compare(len(lo))
		env.Compare(len(hi))
		if m.overlapsRange(lo, hi) {
			// Range deletes that extend beyond the leaf must stay:
			// they still affect other leaves.
			if m.Type == MsgRangeDelete && !(keys.Compare(lo, m.Key) <= 0 && keys.Compare(m.EndKey, hi) <= 0) {
				out = append(out, m)
				kept = append(kept, m)
				continue
			}
			b.bytes -= m.memBytes()
			out = append(out, m)
			continue
		}
		kept = append(kept, m)
	}
	b.msgs = kept
	return out
}
