package betree

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// testStore builds a store over a simulated SSD with a small node size so
// tests exercise flushing and splitting without huge datasets.
func testStore(t testing.TB, mutate func(*Config)) (*sim.Env, *Store) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		t.Fatal(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.BasementSize = 4 << 10
	cfg.Fanout = 8
	cfg.CacheBytes = 8 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return env, s
}

func k(i int) []byte { return []byte(fmt.Sprintf("dir/key-%08d", i)) }
func v(i int, size int) []byte {
	b := bytes.Repeat([]byte{byte(i)}, size)
	b[0] = byte(i >> 8)
	return b
}

func TestPutGetSmall(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	tr.Put([]byte("a"), []byte("1"), LogAuto)
	tr.Put([]byte("b"), []byte("2"), LogAuto)
	got, ok, _ := tr.Get([]byte("a"))
	if !ok || string(got) != "1" {
		t.Fatalf("Get(a) = %q,%v", got, ok)
	}
	if _, ok, _ := tr.Get([]byte("zzz")); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestOverwrite(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	tr.Put([]byte("k"), []byte("old"), LogAuto)
	tr.Put([]byte("k"), []byte("new"), LogAuto)
	got, ok, _ := tr.Get([]byte("k"))
	if !ok || string(got) != "new" {
		t.Fatalf("Get = %q,%v, want new", got, ok)
	}
}

func TestDelete(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	tr.Put([]byte("k"), []byte("v"), LogAuto)
	tr.Delete([]byte("k"), LogAuto)
	if _, ok, _ := tr.Get([]byte("k")); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestManyInsertsAcrossSplits(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(k(i), v(i, 64), LogAuto)
	}
	for i := 0; i < n; i += 97 {
		got, ok, _ := tr.Get(k(i))
		if !ok {
			t.Fatalf("key %d missing after splits", i)
		}
		if !bytes.Equal(got, v(i, 64)) {
			t.Fatalf("key %d has wrong value", i)
		}
	}
	// Root must no longer be a leaf.
	root, _ := s.cache.lookup(tr, tr.rootID, false)
	if root != nil && root.isLeaf() {
		t.Fatal("tree never split with 5000 x 64B inserts and 64KiB nodes")
	}
}

func TestScanOrderAndCompleteness(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	const n = 2000
	for i := n - 1; i >= 0; i-- { // reverse insert order
		tr.Put(k(i), v(i, 32), LogAuto)
	}
	var prev []byte
	count := 0
	tr.Scan(nil, nil, func(key, val []byte) bool {
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			t.Fatalf("scan out of order at %q", key)
		}
		prev = append(prev[:0], key...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan yielded %d keys, want %d", count, n)
	}
}

func TestScanRangeBounds(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	for i := 0; i < 100; i++ {
		tr.Put(k(i), []byte("x"), LogAuto)
	}
	count := tr.Count(k(10), k(20))
	if count != 10 {
		t.Fatalf("range scan count = %d, want 10", count)
	}
}

func TestScanSeesBufferedInserts(t *testing.T) {
	// Inserts that are still buffered in interior nodes must be visible
	// to scans.
	_, s := testStore(t, nil)
	tr := s.Meta()
	for i := 0; i < 3000; i++ {
		tr.Put(k(i), v(i, 64), LogAuto)
	}
	// These stay in the root buffer (too few to force a flush).
	tr.Put([]byte("dir/key-00001500x"), []byte("buffered"), LogAuto)
	found := false
	tr.Scan(k(1500), k(1501), func(key, val []byte) bool {
		if string(key) == "dir/key-00001500x" && string(val) == "buffered" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("scan missed a buffered insert")
	}
}

func TestRangeDelete(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	for i := 0; i < 1000; i++ {
		tr.Put(k(i), []byte("x"), LogAuto)
	}
	tr.DeleteRange(k(100), k(900), LogAuto)
	if got := tr.Count(nil, nil); got != 200 {
		t.Fatalf("after range delete, %d keys remain, want 200", got)
	}
	if _, ok, _ := tr.Get(k(500)); ok {
		t.Fatal("range-deleted key still visible to Get")
	}
	if _, ok, _ := tr.Get(k(99)); !ok {
		t.Fatal("key outside range was deleted")
	}
}

func TestRangeDeleteThenReinsert(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Meta()
	for i := 0; i < 100; i++ {
		tr.Put(k(i), []byte("a"), LogAuto)
	}
	tr.DeleteRange(k(0), k(100), LogAuto)
	tr.Put(k(50), []byte("b"), LogAuto)
	got, ok, _ := tr.Get(k(50))
	if !ok || string(got) != "b" {
		t.Fatalf("reinsert after range delete: %q,%v", got, ok)
	}
	if n := tr.Count(nil, nil); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
}

func TestBlindUpdate(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Data()
	val := bytes.Repeat([]byte{0xaa}, 4096)
	tr.Put([]byte("f"), val, LogAuto)
	tr.Update([]byte("f"), 100, []byte{1, 2, 3, 4}, LogAuto)
	got, ok, _ := tr.Get([]byte("f"))
	if !ok {
		t.Fatal("updated key missing")
	}
	want := append([]byte{}, val...)
	copy(want[100:], []byte{1, 2, 3, 4})
	if !bytes.Equal(got, want) {
		t.Fatal("blind update produced wrong value")
	}
}

func TestBlindUpdateToAbsentKey(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Data()
	tr.Update([]byte("ghost"), 8, []byte{9}, LogAuto)
	got, ok, _ := tr.Get([]byte("ghost"))
	if !ok || len(got) != 9 || got[8] != 9 {
		t.Fatalf("blind update to absent key: %v,%v", got, ok)
	}
}

func TestUpdateExtendsValue(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Data()
	tr.Put([]byte("f"), []byte{1, 2}, LogAuto)
	tr.Update([]byte("f"), 4, []byte{5}, LogAuto)
	got, _, _ := tr.Get([]byte("f"))
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("extendingupdate: %v", got)
	}
}

func TestLargeValues(t *testing.T) {
	_, s := testStore(t, nil)
	tr := s.Data()
	const n = 300
	for i := 0; i < n; i++ {
		tr.Put(k(i), v(i, 4096), LogAuto)
	}
	for i := 0; i < n; i += 17 {
		got, ok, _ := tr.Get(k(i))
		if !ok || !bytes.Equal(got, v(i, 4096)) {
			t.Fatalf("4KiB value %d corrupted", i)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		t.Fatal(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.BasementSize = 4 << 10
	cfg.CacheBytes = 8 << 20
	alloc := kmem.New(env, true)
	s, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		s.Meta().Put(k(i), v(i, 48), LogAuto)
	}
	s.Checkpoint()

	// Reopen over the same backend.
	s2, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for i := 0; i < n; i += 31 {
		got, ok, _ := s2.Meta().Get(k(i))
		if !ok || !bytes.Equal(got, v(i, 48)) {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
	if got := s2.Meta().Count(nil, nil); got != n {
		t.Fatalf("count after reopen = %d, want %d", got, n)
	}
}

func TestLogReplayAfterCrash(t *testing.T) {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		t.Fatal(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.CacheBytes = 8 << 20
	alloc := kmem.New(env, true)
	s, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	// Ops after the last checkpoint, made durable only via the log.
	for i := 0; i < 100; i++ {
		s.Meta().Put(k(i), v(i, 32), LogAuto)
	}
	s.SyncLog()
	// Crash: drop all cached state, reopen from disk.
	s.cache.dropAll()
	s2, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := 0; i < 100; i++ {
		got, ok, _ := s2.Meta().Get(k(i))
		if !ok || !bytes.Equal(got, v(i, 32)) {
			t.Fatalf("key %d lost after crash+replay", i)
		}
	}
}

func TestUnsyncedOpsLostAfterCrash(t *testing.T) {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		t.Fatal(berr)
	}
	cfg := DefaultConfig()
	cfg.CheckpointPeriod = 1 << 40 // effectively never
	alloc := kmem.New(env, true)
	s, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	s.Meta().Put([]byte("durable"), []byte("1"), LogAuto)
	s.SyncLog()
	s.Meta().Put([]byte("volatile"), []byte("2"), LogAuto)
	// no sync
	s.cache.dropAll()
	s2, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Meta().Get([]byte("durable")); !ok {
		t.Fatal("synced op lost")
	}
	if _, ok, _ := s2.Meta().Get([]byte("volatile")); ok {
		t.Fatal("unsynced op survived crash (not prefix-consistent)")
	}
}

func TestPacmanCoalescesDirectoryDeletes(t *testing.T) {
	// A broad range delete should eat the narrower ones beneath it when
	// coalescing is enabled.
	_, s := testStore(t, nil)
	tr := s.Meta()
	for i := 0; i < 4000; i++ {
		tr.Put(k(i), v(i, 64), LogAuto)
	}
	// Narrow per-file deletes, then the directory-wide delete (RG).
	for i := 0; i < 50; i++ {
		tr.DeleteRange(k(i*10), k(i*10+5), LogAuto)
	}
	tr.DeleteRange([]byte("dir"), []byte("dis"), LogAuto) // covers everything
	// PacMan runs at flush time (§2.2); push more traffic through so the
	// buffered range deletes flow down and get gobbled.
	for i := 0; i < 3000; i++ {
		tr.Put([]byte(fmt.Sprintf("zzz/key-%08d", i)), v(i, 64), LogAuto)
	}
	if s.Stats().PacmanDrops == 0 {
		t.Fatal("PacMan never dropped a covered message")
	}
	if got := tr.Count([]byte("dir"), []byte("dis")); got != 0 {
		t.Fatalf("%d keys survived directory delete", got)
	}
}

func TestPacmanV04DoesNotCoalesceAdjacent(t *testing.T) {
	// Adjacent-but-not-overlapping deletes (the rm -rf pattern) must not
	// be consumed in either mode — correctness — but only v0.6's
	// directory-level delete makes them collapsible.
	_, s := testStore(t, func(c *Config) { c.CoalesceRangeDeletes = false })
	tr := s.Meta()
	for i := 0; i < 1000; i++ {
		tr.Put(k(i), v(i, 64), LogAuto)
	}
	for i := 0; i < 100; i++ {
		tr.DeleteRange(k(i*10), k(i*10+9), LogAuto)
	}
	// 1 key in 10 survives each decade delete (the k(i*10+9) bound is
	// exclusive), so 100 keys remain.
	if got := tr.Count(nil, nil); got != 100 {
		t.Fatalf("%d keys remain, want 100", got)
	}
}

func TestGetChargesTime(t *testing.T) {
	env, s := testStore(t, nil)
	tr := s.Meta()
	tr.Put([]byte("k"), []byte("v"), LogAuto)
	before := env.Now()
	tr.Get([]byte("k"))
	if env.Now() <= before {
		t.Fatal("Get charged no simulated time")
	}
}

func TestWriteOptimization(t *testing.T) {
	// Random small inserts must cost far less I/O time than the same
	// writes issued as in-place 4KiB random writes on the raw device:
	// the whole point of write optimization.
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		t.Fatal(berr)
	}
	cfg := DefaultConfig()
	cfg.CacheBytes = 64 << 20
	s, err := Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	rnd := sim.NewRand(7)
	const n = 4000
	start := env.Now()
	for i := 0; i < n; i++ {
		tr := s.Data()
		tr.Put(k(rnd.Intn(1000000)), v(i, 4096), LogAuto)
	}
	s.Sync()
	betreeTime := env.Now() - start

	env2 := sim.NewEnv(1)
	dev2 := blockdev.New(env2, blockdev.SamsungEVO860().Scale(64))
	rnd2 := sim.NewRand(7)
	buf := make([]byte, 4096)
	start2 := env2.Now()
	for i := 0; i < n; i++ {
		dev2.WriteAt(buf, int64(rnd2.Intn(1000000))*4096)
	}
	dev2.Flush()
	rawTime := env2.Now() - start2

	if betreeTime*2 > rawTime {
		t.Fatalf("Bε-tree random inserts (%v) not much faster than raw random writes (%v)",
			betreeTime, rawTime)
	}
}
