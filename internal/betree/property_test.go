package betree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// model is a reference implementation: a plain sorted map.
type model struct {
	m map[string][]byte
}

func newModel() *model { return &model{m: make(map[string][]byte)} }

func (md *model) put(k string, v []byte) { md.m[k] = append([]byte{}, v...) }
func (md *model) del(k string)           { delete(md.m, k) }
func (md *model) delRange(lo, hi string) {
	for k := range md.m {
		if k >= lo && k < hi {
			delete(md.m, k)
		}
	}
}
func (md *model) update(k string, off int, patch []byte) {
	v := md.m[k]
	need := off + len(patch)
	if need > len(v) {
		nv := make([]byte, need)
		copy(nv, v)
		v = nv
	}
	copy(v[off:], patch)
	md.m[k] = v
}
func (md *model) sortedKeys() []string {
	out := make([]string, 0, len(md.m))
	for k := range md.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestRandomOpsAgainstModel drives a long random operation sequence
// against both the Bε-tree and the model, verifying point queries, full
// scans, and survival across checkpoints and reopens.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			env := sim.NewEnv(seed)
			dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
			backend, berr := sfl.NewDefault(env, dev)
			if berr != nil {
				panic(berr)
			}
			cfg := DefaultConfig()
			cfg.NodeSize = 32 << 10
			cfg.BasementSize = 2 << 10
			cfg.Fanout = 6
			cfg.CacheBytes = 256 << 10 // tiny: force eviction traffic
			alloc := kmem.New(env, true)
			s, err := Open(env, alloc, cfg, backend)
			if err != nil {
				t.Fatal(err)
			}
			tr := s.Meta()
			md := newModel()
			rnd := sim.NewRand(seed)

			key := func() string {
				return fmt.Sprintf("p%d/f%04d", rnd.Intn(4), rnd.Intn(400))
			}
			const ops = 6000
			for i := 0; i < ops; i++ {
				switch rnd.Intn(10) {
				case 0, 1, 2, 3, 4: // insert
					k := key()
					v := bytes.Repeat([]byte{byte(rnd.Intn(256))}, 8+rnd.Intn(120))
					tr.Put([]byte(k), v, LogAuto)
					md.put(k, v)
				case 5: // delete
					k := key()
					tr.Delete([]byte(k), LogAuto)
					md.del(k)
				case 6: // range delete of one directory (raw slash keys,
					// so the subtree range is ["p/", "p0") in byte order)
					d := fmt.Sprintf("p%d", rnd.Intn(4))
					tr.DeleteRange([]byte(d+"/"), []byte(d+"0"), LogAuto)
					md.delRange(d+"/", d+"0")
				case 7: // blind update (absent keys materialize zeros)
					k := key()
					off := rnd.Intn(64)
					patch := []byte{byte(i)}
					tr.Update([]byte(k), off, patch, LogAuto)
					md.update(k, off, patch)
				case 8: // point query
					k := key()
					got, ok, _ := tr.Get([]byte(k))
					want, wok := md.m[k]
					if ok != wok || (ok && !bytes.Equal(got, want)) {
						t.Fatalf("op %d: Get(%q) = (%v,%v), want (%v,%v)", i, k, got, ok, want, wok)
					}
				case 9: // checkpoint sometimes
					if rnd.Intn(4) == 0 {
						s.Checkpoint()
					}
				}
			}
			verifyAgainstModel(t, tr, md)

			// Survive a clean reopen.
			s.Checkpoint()
			s2, err := Open(env, alloc, cfg, backend)
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainstModel(t, s2.Meta(), md)
		})
	}
}

func verifyAgainstModel(t *testing.T, tr *Tree, md *model) {
	t.Helper()
	// Full scan must match the model's sorted contents. The model's
	// string order equals byte order because keys are ASCII.
	want := md.sortedKeys()
	// Model uses raw "p0/f001" keys; the tree stores the same bytes, so
	// path-encoding differences don't apply here (keys contain '/', which
	// is fine for the tree: it treats keys as opaque bytes).
	var got []string
	tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		if want := md.m[string(k)]; !bytes.Equal(v, want) {
			t.Fatalf("scan value mismatch at %q", k)
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, model has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan key %d = %q, model %q", i, got[i], want[i])
		}
	}
}

// TestRandomUpdatesAgainstModel drives blind updates with exact model
// semantics.
func TestRandomUpdatesAgainstModel(t *testing.T) {
	env := sim.NewEnv(5)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		panic(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 32 << 10
	cfg.BasementSize = 2 << 10
	cfg.CacheBytes = 1 << 20
	s, err := Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Data()
	md := newModel()
	rnd := sim.NewRand(5)
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("f%03d", rnd.Intn(50))
		if rnd.Intn(3) == 0 {
			v := bytes.Repeat([]byte{byte(i)}, 32+rnd.Intn(200))
			tr.Put([]byte(k), v, LogAuto)
			md.put(k, v)
		} else {
			off := rnd.Intn(256)
			patch := bytes.Repeat([]byte{byte(i * 3)}, 1+rnd.Intn(16))
			tr.Update([]byte(k), off, patch, LogAuto)
			md.update(k, off, patch)
		}
		if i%500 == 0 {
			s.Checkpoint()
		}
	}
	for k, want := range md.m {
		got, ok, _ := tr.Get([]byte(k))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%q) diverged from model (ok=%v len=%d want %d)", k, ok, len(got), len(want))
		}
	}
}

// TestCrashInjection cuts the device at random points in the unflushed
// write stream and verifies the store recovers to a state consistent with
// the synced prefix of operations.
func TestCrashInjection(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			env := sim.NewEnv(seed)
			dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
			dev.EnableCrashTracking()
			backend, berr := sfl.NewDefault(env, dev)
			if berr != nil {
				panic(berr)
			}
			cfg := DefaultConfig()
			cfg.NodeSize = 32 << 10
			cfg.CacheBytes = 1 << 20
			alloc := kmem.New(env, true)
			s, err := Open(env, alloc, cfg, backend)
			if err != nil {
				t.Fatal(err)
			}
			tr := s.Meta()
			rnd := sim.NewRand(seed)

			// Synced phase: these must all survive.
			synced := map[string][]byte{}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("s/f%04d", i)
				v := []byte(fmt.Sprintf("v%d", i))
				tr.Put([]byte(k), v, LogAuto)
				synced[k] = v
			}
			s.SyncLog()

			// Unsynced phase: may or may not survive, but recovery must
			// be a consistent prefix (no partial values, no corruption).
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("u/f%04d", i)
				tr.Put([]byte(k), []byte("unsynced"), LogAuto)
			}

			// Crash with a random fraction of unflushed writes surviving.
			keep := 0
			if n := dev.UnflushedWrites(); n > 0 {
				keep = rnd.Intn(n + 1)
			}
			dev.Crash(keep)

			s2, err := Open(env, alloc, cfg, backend)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			tr2 := s2.Meta()
			for k, v := range synced {
				got, ok, _ := tr2.Get([]byte(k))
				if !ok || !bytes.Equal(got, v) {
					t.Fatalf("synced key %q lost or corrupted after crash", k)
				}
			}
			// Unsynced keys must be a prefix: if u/fN survived, all
			// u/fM with M<N survived (log replay is ordered).
			last := -1
			holes := false
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("u/f%04d", i)
				if _, ok, _ := tr2.Get([]byte(k)); ok {
					if holes {
						t.Fatalf("unsynced key %q survived after a hole (not prefix-consistent)", k)
					}
					last = i
				} else {
					holes = true
				}
			}
			_ = last
		})
	}
}

// TestCrashDuringCheckpoint crashes mid-checkpoint and verifies the
// previous checkpoint still recovers.
func TestCrashDuringCheckpoint(t *testing.T) {
	env := sim.NewEnv(9)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		panic(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 32 << 10
	cfg.CacheBytes = 4 << 20
	alloc := kmem.New(env, true)
	s, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Meta().Put(k(i), v(i, 64), LogAuto)
	}
	s.Checkpoint() // durable state A
	for i := 1000; i < 2000; i++ {
		s.Meta().Put(k(i), v(i, 64), LogAuto)
	}
	// Begin tracking now: everything from here on may be torn.
	dev.EnableCrashTracking()
	s.Checkpoint()
	// Tear the checkpoint: drop ALL writes since tracking began,
	// including the new superblock.
	dev.Crash(0)
	s2, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatalf("recovery after torn checkpoint: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if _, ok, _ := s2.Meta().Get(k(i)); !ok {
			t.Fatalf("state-A key %d lost after torn checkpoint", i)
		}
	}
}
