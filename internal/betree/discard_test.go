package betree

import (
	"testing"
)

// TestDiscardRejectsMappedExtent hands the trim queue an extent the block
// table still maps: the structural guard must refuse to discard it, count
// the rejection, and leave the node data intact.
func TestDiscardRejectsMappedExtent(t *testing.T) {
	env, _, _, s := corruptStore(t, nil)
	for i := 0; i < 200; i++ {
		s.Data().Put(k(i), v(i, 64), LogAuto)
	}
	s.Checkpoint()

	tree := s.data
	leaf := largestLeaf(t, s)
	mapped := extent{off: leaf.Off, len: leaf.Len}
	// Prepend: the queue is ordered by safeGen and scanned from the front.
	tree.trimq = append([]trimCand{{e: mapped, safeGen: 0}}, tree.trimq...)
	tree.flushTrimQueue(s.generation)

	snap := env.Metrics.Snapshot()
	if got := snap.Counters["betree.discard.rejected"]; got != 1 {
		t.Fatalf("betree.discard.rejected = %d, want 1", got)
	}
	for i := 0; i < 200; i++ {
		got, found, err := s.Data().Get(k(i))
		if err != nil || !found || len(got) != 64 {
			t.Fatalf("key %d unreadable after rejected discard: %v", i, err)
		}
	}
}

// TestDiscardAgesTwoGenerations frees tree space (via overwrite churn) and
// verifies no discard is issued until two further checkpoints commit —
// while either reachable superblock slot might still reference a freed
// extent, the trim must wait.
func TestDiscardAgesTwoGenerations(t *testing.T) {
	env, _, _, s := corruptStore(t, nil)
	big := make([]byte, 2048)
	for i := range big {
		big[i] = byte(1 + i%255)
	}
	for i := 0; i < 500; i++ {
		s.Data().Put(k(i), big, LogAuto)
	}
	s.Checkpoint() // gen G: population durable

	for i := 0; i < 500; i++ {
		s.Data().Put(k(i), big, LogAuto)
	}
	s.Checkpoint() // gen G+1: rewrites defer-free the old nodes
	queued := len(s.data.trimq) + len(s.meta.trimq)
	if queued == 0 {
		t.Fatal("overwrite churn queued no trim candidates")
	}
	base := env.Metrics.Snapshot().Counters["betree.discard.count"]

	s.Checkpoint() // gen G+2
	s.Checkpoint() // gen G+3: candidates from G+1 (safe at G+3) may fire
	after := env.Metrics.Snapshot().Counters["betree.discard.count"]
	if after <= base {
		t.Fatalf("no discards fired after two aging checkpoints (count %d -> %d)", base, after)
	}

	for i := 0; i < 500; i++ {
		got, found, err := s.Data().Get(k(i))
		if err != nil || !found || len(got) != len(big) {
			t.Fatalf("key %d lost after aged discards: %v", i, err)
		}
	}
}
