package betree

import "time"

// Config carries the tunables and optimization toggles of the Bε-tree.
// The zero value is not usable; start from DefaultConfig.
type Config struct {
	// NodeSize is the target serialized node size (2–4 MiB in BetrFS).
	NodeSize int
	// BasementSize is the target basement-node size (~128 KiB).
	BasementSize int
	// Fanout is the maximum child count of an interior node.
	Fanout int
	// CacheBytes is the node-cache memory budget.
	CacheBytes int64
	// CheckpointPeriod is the interval between automatic checkpoints.
	CheckpointPeriod time.Duration
	// LogPayloadMax is the largest value payload recorded in the redo
	// log; larger values (file data pages) are logged by key only and
	// made durable by checkpointing (see DESIGN.md on crash semantics).
	LogPayloadMax int

	// LegacyApplyOnQuery selects the v0.4 heuristic that pushes or
	// applies pending messages for the whole basement/leaf on every
	// query; false selects the v0.6 policy that only acts when a pending
	// message affects the query's outcome (§4, QRY).
	LegacyApplyOnQuery bool
	// PageSharing enables insert-by-reference and the aligned node
	// format, eliding per-level value copies (§6, PGSH).
	PageSharing bool
	// ReadAhead enables tree-level prefetch of upcoming basement/leaf
	// nodes on sequential cursors (§3.2; part of SFL in the ladder).
	ReadAhead bool
	// CoalesceRangeDeletes enables the PacMan fast path introduced in
	// §4 (RG): newest-first traversal so broad deletes gobble narrow
	// ones. When false, PacMan still runs but — as in v0.4 — compares
	// every range message against every other message with no effect
	// unless ranges strictly overlap.
	CoalesceRangeDeletes bool
	// Lifting enables trie-style key compression at serialization
	// (§2.2): the longest common prefix of a basement's keys is stored
	// once, shrinking on-disk nodes and the bytes the serializer and
	// checksummer touch. Full-path keys make this very effective.
	Lifting bool
	// Compression models the node compression early BetrFS versions
	// used; the paper disables it because the computational cost can
	// delay I/Os for little benefit on an SSD (§2.2), so it defaults
	// off and exists for the ablation.
	Compression bool

	// Concurrent enables the reader/writer locking protocol of
	// DESIGN.md §9: point queries and scans run concurrently with
	// injects, readers defer dirty writeback to the background flusher,
	// and the node cache uses CacheShards lock stripes. Off (the
	// default), the store assumes single-goroutine use and keeps the
	// historical deterministic behaviour bit-for-bit, which is what the
	// golden benchmark cells are pinned against. Concurrent mode
	// requires LegacyApplyOnQuery to be off for shared-mode reads; with
	// the v0.4 policy reads serialize (they restructure the tree).
	Concurrent bool
	// CacheShards is the number of lock-striped node-cache shards,
	// rounded up to a power of two. Zero selects one shard when
	// Concurrent is off (preserving the historical global LRU eviction
	// order) and eight when it is on.
	CacheShards int

	// RelocateAttempts bounds write-path relocation (DESIGN.md §10.6):
	// when a node-image write fails with a non-transient device error,
	// the store retires the extent to the grown-defect list and retries
	// the write at freshly allocated space up to this many times before
	// latching the sticky write error (errors=remount-ro). Zero disables
	// relocation entirely, restoring the pre-defect-list behaviour.
	RelocateAttempts int
}

// DefaultConfig returns the BetrFS v0.6 tree configuration.
func DefaultConfig() Config {
	return Config{
		NodeSize:             4 << 20,
		BasementSize:         128 << 10,
		Fanout:               16,
		CacheBytes:           1 << 30,
		CheckpointPeriod:     60 * time.Second,
		LogPayloadMax:        512,
		LegacyApplyOnQuery:   false,
		PageSharing:          true,
		ReadAhead:            true,
		CoalesceRangeDeletes: true,
		Lifting:              true,
		Compression:          false,
		RelocateAttempts:     2,
	}
}

// V04Config returns the tree configuration of BetrFS v0.4: legacy
// apply-on-query, no page sharing, no tree-level read-ahead, and the
// ineffective PacMan traversal.
func V04Config() Config {
	c := DefaultConfig()
	c.LegacyApplyOnQuery = true
	c.PageSharing = false
	c.ReadAhead = false
	c.CoalesceRangeDeletes = false
	return c
}
