package betree

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/keys"
	"betrfs/internal/sim"
)

// checkInvariants walks the whole tree verifying structural invariants:
//
//  1. pivots are strictly increasing within a node;
//  2. every child's keys (pivots, buffered messages, leaf entries) lie
//     within the key range its parent's pivots assign to it;
//  3. leaf entries are strictly sorted;
//  4. buffered messages are in ascending MSN order per child buffer;
//  5. interior node heights decrease by one per level.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(id nodeID, lo, hi []byte, wantHeight int)
	walk = func(id nodeID, lo, hi []byte, wantHeight int) {
		n := tr.mustFetch(id, nil)
		defer tr.unpin(n)
		if wantHeight >= 0 && n.height != wantHeight {
			t.Fatalf("node %d height %d, want %d", id, n.height, wantHeight)
		}
		inRange := func(k []byte, what string) {
			if lo != nil && keys.Compare(k, lo) < 0 {
				t.Fatalf("node %d: %s %q below lower bound %q", id, what, k, lo)
			}
			if hi != nil && keys.Compare(k, hi) >= 0 {
				t.Fatalf("node %d: %s %q at/above upper bound %q", id, what, k, hi)
			}
		}
		if n.isLeaf() {
			var prev []byte
			for bi, b := range n.basements {
				if !b.loaded {
					tr.ensureBasement(n, bi)
				}
				for i := range b.entries {
					k := b.entries[i].key
					inRange(k, "leaf key")
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						t.Fatalf("node %d: leaf keys out of order (%q >= %q)", id, prev, k)
					}
					prev = k
				}
			}
			return
		}
		for i := 1; i < len(n.pivots); i++ {
			if keys.Compare(n.pivots[i-1], n.pivots[i]) >= 0 {
				t.Fatalf("node %d: pivots out of order", id)
			}
		}
		for i, p := range n.pivots {
			inRange(p, fmt.Sprintf("pivot %d", i))
		}
		for ci := range n.children {
			clo, chi := n.childRange(ci, lo, hi)
			var prevMSN MSN
			for _, m := range n.bufs[ci].msgs {
				if m.MSN < prevMSN {
					t.Fatalf("node %d child %d: buffer MSNs out of order", id, ci)
				}
				prevMSN = m.MSN
				if m.Type != MsgRangeDelete {
					if clo != nil && keys.Compare(m.Key, clo) < 0 ||
						chi != nil && keys.Compare(m.Key, chi) >= 0 {
						t.Fatalf("node %d child %d: message key %q outside child range", id, ci, m.Key)
					}
				}
			}
			walk(n.children[ci], clo, chi, n.height-1)
		}
	}
	root := tr.mustFetch(tr.rootID, nil)
	h := root.height
	tr.unpin(root)
	walk(tr.rootID, nil, nil, h)
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	_, s := testStore(t, func(c *Config) {
		c.NodeSize = 16 << 10
		c.BasementSize = 2 << 10
		c.Fanout = 4
		c.CacheBytes = 512 << 10
	})
	tr := s.Meta()
	rnd := sim.NewRand(13)
	for i := 0; i < 8000; i++ {
		switch rnd.Intn(8) {
		case 0:
			tr.Delete(k(rnd.Intn(4000)), LogAuto)
		case 1:
			a := rnd.Intn(4000)
			tr.DeleteRange(k(a), k(a+rnd.Intn(50)), LogAuto)
		case 2:
			tr.Get(k(rnd.Intn(4000)))
		default:
			tr.Put(k(rnd.Intn(4000)), v(i, 16+rnd.Intn(200)), LogAuto)
		}
		if i%2000 == 1999 {
			checkInvariants(t, tr)
		}
	}
	s.Checkpoint()
	checkInvariants(t, tr)
}

func TestInvariantsAfterReopen(t *testing.T) {
	env, s := testStore(t, func(c *Config) {
		c.NodeSize = 16 << 10
		c.Fanout = 4
	})
	for i := 0; i < 4000; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	s.Checkpoint()
	_ = env
	checkInvariants(t, s.Data())
}

func TestPrefetchHitsOnSequentialGets(t *testing.T) {
	_, s := testStore(t, func(c *Config) {
		c.NodeSize = 64 << 10
		c.CacheBytes = 32 << 20
	})
	tr := s.Data()
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Put(k(i), v(i, 256), LogAuto)
	}
	s.DropCleanCaches()
	tr.SetSeqHint(true)
	for i := 0; i < n; i++ {
		if _, ok, _ := tr.Get(k(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	if s.Stats().Prefetches == 0 {
		t.Fatal("sequential gets never prefetched")
	}
	if s.Stats().PrefetchHits == 0 {
		t.Fatal("prefetches never hit")
	}
}

func TestPartialReadsOnPointQueries(t *testing.T) {
	_, s := testStore(t, func(c *Config) {
		c.NodeSize = 128 << 10
		c.BasementSize = 4 << 10
		c.CacheBytes = 64 << 20
	})
	tr := s.Data()
	for i := 0; i < 4000; i++ {
		tr.Put(k(i), v(i, 128), LogAuto)
	}
	s.DropCleanCaches()
	tr.SetSeqHint(false)
	before := s.Stats().PartialReads
	tr.Get(k(1234))
	if s.Stats().PartialReads == before {
		t.Fatal("cold point query did not use a basement-granular read")
	}
}
