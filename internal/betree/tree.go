package betree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"betrfs/internal/ioerr"
	"betrfs/internal/keys"
	"betrfs/internal/stor"
)

// TreeStats aggregates per-tree counters. Fields are updated with atomic
// adds; read them only after the operations of interest have quiesced.
type TreeStats struct {
	Inserts      int64
	Deletes      int64
	RangeDeletes int64
	Updates      int64
	Gets         int64
	Scans        int64
}

// Tree is one Bε-tree index (metadata or data) within a Store.
//
// rootID, nextNodeID, and bt (the block table) are structural state:
// they change only under the store's exclusive structure lock (or in
// deterministic single-goroutine mode, where no locks are taken at all —
// see DESIGN.md §9).
type Tree struct {
	store *Store
	name  string
	f     stor.File
	bt    *blockTable

	rootID     nodeID
	nextNodeID nodeID

	// cacheSalt separates this tree's node IDs from its sibling's in the
	// shared sharded cache hash (cache.go).
	cacheSalt uint64
	// flushQueued dedups background root-flush tasks (concurrent mode).
	flushQueued atomic.Bool

	stats TreeStats

	// seqHint tracks the last point-queried key for the cooperative
	// read-ahead hint (§3.2): the northbound detects sequential file
	// reads and tells the tree, which prefetches upcoming basements.
	// Atomic: clients set it while readers check it.
	seqHint atomic.Bool

	// trimq holds freed extents aging toward TRIM eligibility (see
	// discardFreed); ordered by nondecreasing safeGen.
	trimq []trimCand
}

func newTree(s *Store, name string, f stor.File) *Tree {
	salt := uint64(0xcbf29ce484222325)
	for _, c := range name {
		salt = salt*0x100000001b3 ^ uint64(c)
	}
	return &Tree{
		store:     s,
		name:      name,
		f:         f,
		bt:        newBlockTable(f.Capacity()),
		cacheSalt: salt,
	}
}

// Name returns the index name ("meta" or "data").
func (t *Tree) Name() string { return t.name }

// trimCand is a freed extent queued for TRIM once enough superblock
// generations have passed that no durable tree can reference it.
type trimCand struct {
	e       extent
	safeGen uint64
}

// discardFreed queues a freed extent for TRIM. Wired as bt.onFree, so it
// fires at the single point betree space dies: a release into the free
// list. The extent is NOT trimmed immediately: the store keeps two
// superblock generations and Open falls back to the older one when the
// newer slot is corrupt, so an extent freed while generation G is current
// may still be referenced by the on-disk generation G-1 tree. Trimming is
// deferred until two more generations are durable (safeGen = G+2), at
// which point neither reachable superblock slot references the space.
func (t *Tree) discardFreed(e extent) {
	t.trimq = append(t.trimq, trimCand{e: e, safeGen: t.store.generation + 2})
}

// flushTrimQueue trims every queued extent whose safe generation has been
// reached. Called from the checkpoint after the new superblock is
// durable; gen is the just-committed generation. The guard is structural
// — only space the free list fully contains may be discarded, so an
// extent reallocated while it aged in the queue (or a caller handing in a
// still-mapped extent) is rejected and counted instead of zeroing live
// data (DESIGN.md §12). Discard failures are advisory: the space is
// simply not handed back until it is overwritten.
func (t *Tree) flushTrimQueue(gen uint64) {
	s := t.store
	i := 0
	for ; i < len(t.trimq) && t.trimq[i].safeGen <= gen; i++ {
		e := t.trimq[i].e
		if !t.bt.freeContains(e) {
			s.m.discardRejected.Inc()
			continue
		}
		if err := t.f.Discard(e.off, e.len); err != nil {
			continue
		}
		s.m.discardCount.Inc()
		s.m.discardBytes.Add(e.len)
	}
	t.trimq = t.trimq[i:]
}

// Stats returns per-tree counters.
func (t *Tree) Stats() *TreeStats { return &t.stats }

// SetSeqHint informs the tree that point queries are following a
// sequential pattern, enabling basement/leaf read-ahead.
func (t *Tree) SetSeqHint(on bool) { t.seqHint.Store(on) }

// formatEmpty initializes the tree with a single empty root leaf.
func (t *Tree) formatEmpty() {
	t.nextNodeID = 1
	root := &node{
		id:        t.newNodeID(),
		height:    0,
		basements: []*basement{{loaded: true}},
	}
	root.dirty.Store(true)
	t.rootID = root.id
	t.store.cache.put(t, root)
}

func (t *Tree) newNodeID() nodeID {
	id := t.nextNodeID
	t.nextNodeID++
	return id
}

// fetch returns the node, loading it from disk on a miss, and pins it.
// partialKey (for leaves) enables basement-granular reads. A corrupted
// on-disk image surfaces an error wrapping ErrChecksum; read paths
// propagate it, write paths use mustFetch (an unreadable node under a
// mutation leaves no consistent state to continue from).
func (t *Tree) fetch(id nodeID, partialKey []byte) (*node, error) {
	s := t.store
	s.env.Charge(s.env.Costs.PageCacheOp) // cachetable lookup
	if n, ok := s.cache.lookup(t, id, true); ok {
		return n, nil
	}
	var n *node
	var err error
	if partialKey != nil && !t.seqHint.Load() {
		n, err = s.readNode(t, id, partialKey)
	} else {
		n, err = s.readNode(t, id, nil)
	}
	if err != nil {
		return nil, err
	}
	n.pins.Add(1)
	return s.cache.insertPinned(t, n), nil
}

// mustFetch is fetch for write paths, where an unreadable node aborts the
// whole operation: the error is raised to the public-API guard, so the
// mutation surfaces it instead of crashing the process.
func (t *Tree) mustFetch(id nodeID, partialKey []byte) *node {
	n, err := t.fetch(id, partialKey)
	ioerr.Check(err)
	return n
}

func (t *Tree) unpin(n *node) {
	if n.pins.Add(-1) < 0 {
		panic("betree: unpin of unpinned node")
	}
}

// markDirty flags a node dirty and refreshes cache accounting.
func (t *Tree) markDirty(n *node) {
	n.dirty.Store(true)
	t.store.cache.resize(t, n)
}

// ensureBasement makes basement bi of leaf n resident. Corruption in the
// basement's on-disk image surfaces as an error wrapping ErrChecksum.
func (t *Tree) ensureBasement(n *node, bi int) error {
	b := n.basements[bi]
	if b.loaded {
		return nil
	}
	ext, ok := t.bt.lookup(n.id)
	if !ok {
		return fmt.Errorf("betree: leaf %d with unloaded basement has no extent", n.id)
	}
	return t.store.loadBasement(t, n, ext, bi)
}

// mustEnsureBasement is ensureBasement for write paths; failures abort to
// the public-API guard like mustFetch.
func (t *Tree) mustEnsureBasement(n *node, bi int) {
	ioerr.Check(t.ensureBasement(n, bi))
}

// ensureAllBasements loads every basement (required before structural
// changes or serialization; write path, so corruption is fatal).
func (t *Tree) ensureAllBasements(n *node) {
	for bi := range n.basements {
		t.mustEnsureBasement(n, bi)
	}
}

// --- public operations ------------------------------------------------------

// Durability selects how an operation's payload reaches the redo log.
type Durability int

const (
	// LogAuto logs the payload if it is small (metadata, tiny updates);
	// bulk values are logged key-only and persist via checkpoint.
	LogAuto Durability = iota
	// LogPayload forces payload logging (fsync-driven write-back).
	LogPayload
	// LogNone skips logging (replay and internal restructuring).
	LogNone
)

// Put inserts or replaces key with an inline value. Like every mutator it
// returns an error when the device fails mid-operation (wrapping ErrIO,
// ErrNoSpace, or ErrChecksum); the logged record, if any, keeps the
// operation durable for replay even when the in-memory insert aborted.
func (t *Tree) Put(key, val []byte, d Durability) (err error) {
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.Inserts, 1)
	m := &Msg{Type: MsgInsert, Key: key, Val: InlineValue(val)}
	t.logAndInsert(m, d)
	return nil
}

// PutRef inserts key with an externally owned page (insertByRef, §6).
// Without page sharing configured the value is copied inline immediately,
// reproducing the v0.4 copy-on-ingest behaviour.
func (t *Tree) PutRef(key []byte, ref PageRef, d Durability) (err error) {
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.Inserts, 1)
	var v Value
	if t.store.cfg.PageSharing {
		v = RefValue(ref)
	} else {
		data := append([]byte{}, ref.Data()...)
		t.store.env.Memcpy(len(data))
		ref.Release()
		v = InlineValue(data)
	}
	m := &Msg{Type: MsgInsert, Key: key, Val: v}
	t.logAndInsert(m, d)
	return nil
}

// Update applies a blind sub-value write: data is patched at byte offset
// off of key's value, without reading it first (§2.1).
func (t *Tree) Update(key []byte, off int, data []byte, d Durability) (err error) {
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.Updates, 1)
	m := &Msg{Type: MsgUpdate, Key: key, Off: off, Val: InlineValue(data)}
	t.logAndInsert(m, d)
	return nil
}

// Delete removes key.
func (t *Tree) Delete(key []byte, d Durability) (err error) {
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.Deletes, 1)
	m := &Msg{Type: MsgDelete, Key: key}
	t.logAndInsert(m, d)
	return nil
}

// DeleteRange removes every key in [lo, hi) with a single range-delete
// message (§2.1, §4).
func (t *Tree) DeleteRange(lo, hi []byte, d Durability) (err error) {
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.RangeDeletes, 1)
	m := &Msg{Type: MsgRangeDelete, Key: lo, EndKey: hi}
	t.logAndInsert(m, d)
	return nil
}

// logAndInsert is the single mutating entry point: it assigns the MSN and
// routes the message into the tree, under the store's writer lock in
// concurrent mode so that WAL record order, MSN order, and tree insertion
// order all agree (otherwise a later-MSN message could reach a leaf first
// and its maxApplied watermark would silently swallow the earlier one).
func (t *Tree) logAndInsert(m *Msg, d Durability) {
	s := t.store
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	if d != LogNone {
		withPayload := true
		if m.Type == MsgInsert || m.Type == MsgUpdate {
			if d == LogAuto && m.Val.Len() > s.cfg.LogPayloadMax {
				withPayload = false
			}
		}
		s.logOp(t, m, withPayload)
	}
	m.MSN = s.nextMsn()
	t.insertMsg(m)
}

// insertMsg routes a message into the root, flushing and splitting as
// needed. The deterministic path below is the historical inline code;
// concurrent mode forks to the latched fast path in concurrent.go.
func (t *Tree) insertMsg(m *Msg) {
	s := t.store
	s.m.msgInject.Inc()
	s.env.Trace("betree", "msg.inject", string(m.Key), int64(m.MSN))
	s.env.Charge(s.env.Costs.MessageOverhead)
	if s.concurrent {
		t.insertMsgConcurrent(m)
		return
	}
	root := t.mustFetch(t.rootID, nil)
	defer t.unpin(root)
	if root.isLeaf() {
		t.applyToLeaf(root, m)
		t.markDirty(root)
		if root.leafBytes() > s.cfg.NodeSize {
			t.splitRoot(root)
		}
		return
	}
	ci := root.childFor(s.env, m.Key)
	root.bufs[ci].appendCharged(s.alloc, m)
	if m.Type == MsgRangeDelete {
		t.routeRangeMsg(root, m, ci)
	}
	t.markDirty(root)
	if root.bufferBytes() > s.cfg.NodeSize {
		t.flushDescend(root)
		if len(root.children) > s.cfg.Fanout {
			t.splitRoot(root)
		}
	}
}

// routeRangeMsg duplicates a range-delete into every additional child
// buffer whose range it overlaps (the message was already appended to ci).
func (t *Tree) routeRangeMsg(n *node, m *Msg, ci int) {
	for i := ci + 1; i < len(n.children); i++ {
		lo, hi := n.childRange(i, nil, nil)
		_ = hi
		if lo != nil && keys.Compare(m.EndKey, lo) <= 0 {
			break
		}
		n.bufs[i].append(m)
	}
}

// flushDescend relieves pressure on n by flushing its fullest child
// buffers downward until n is under the threshold (§2.1 write
// optimization).
func (t *Tree) flushDescend(n *node) {
	s := t.store
	t.pacman(n)
	for n.bufferBytes() > s.cfg.NodeSize/2 {
		ci := 0
		for i := 1; i < len(n.bufs); i++ {
			if n.bufs[i].bytes > n.bufs[ci].bytes {
				ci = i
			}
		}
		if n.bufs[ci].len() == 0 {
			return
		}
		t.flushToChild(n, ci)
	}
}

// flushToChild moves the entire buffer for child ci down one level.
func (t *Tree) flushToChild(parent *node, ci int) {
	s := t.store
	atomic.AddInt64(&s.stats.Flushes, 1)
	s.m.flushRun.Inc()
	child := t.mustFetch(parent.children[ci], nil)
	defer t.unpin(child)
	msgs := parent.bufs[ci].takeAll(s.alloc)
	s.m.msgFlush.Add(int64(len(msgs)))
	t.markDirty(parent)
	t.markDirty(child)

	// An ioerr.Abort can unwind mid-flush (a basement read or an eviction
	// writeback hitting a device fault). The taken messages are then in
	// neither the parent buffer nor the child, so without repair they
	// would silently vanish from the in-memory tree while the mount stays
	// readable. Re-apply the unconsumed tail to the parent buffer as the
	// panic passes through: a message partially applied to a leaf is safe
	// to re-flush later because each basement's maxApplied MSN watermark
	// drops the second application.
	pending := msgs
	defer func() {
		if len(pending) != 0 {
			s.m.flushRestore.Add(int64(len(pending)))
			parent.bufs[ci].restore(pending)
		}
	}()

	if child.isLeaf() {
		// Buffers hold messages in arrival order, which under the writer
		// lock is MSN order; the stable sort is a host-side no-op then,
		// and a safety net for any future out-of-order producer (the
		// basement maxApplied guard drops late messages otherwise).
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].MSN < msgs[j].MSN })
		for i, m := range msgs {
			t.applyToLeaf(child, m)
			pending = msgs[i+1:]
		}
		// Fully applied: resize/split aborts below must not re-queue.
		pending = nil
		s.cache.resize(t, child)
		if child.leafBytes() > s.cfg.NodeSize {
			t.splitChild(parent, ci, child)
		}
		return
	}
	for i, m := range msgs {
		// Without page sharing, the complete message is memcpy-ed into
		// the child's buffer at every level (§2.3, §6).
		if !s.cfg.PageSharing {
			s.env.Memcpy(m.memBytes())
		} else {
			s.env.Memcpy(len(m.Key) + 48) // header + key only; value by ref
		}
		cci := child.childFor(s.env, m.Key)
		child.bufs[cci].appendCharged(s.alloc, m)
		if m.Type == MsgRangeDelete {
			t.routeRangeMsg(child, m, cci)
		}
		pending = msgs[i+1:]
	}
	pending = nil
	t.pacman(child)
	s.cache.resize(t, child)
	if child.bufferBytes() > s.cfg.NodeSize {
		t.flushDescend(child)
	}
	if len(child.children) > s.cfg.Fanout {
		t.splitChild(parent, ci, child)
	}
}

// applyToLeaf applies one message to leaf n, loading the affected
// basements (a write path: unreadable basements are fatal). Per-level
// value copies are charged unless page sharing is on.
func (t *Tree) applyToLeaf(n *node, m *Msg) {
	s := t.store
	withCopies := !s.cfg.PageSharing
	if m.Type == MsgRangeDelete {
		lo := n.basementFor(s.env, m.Key)
		hi := n.basementFor(s.env, m.EndKey)
		for bi := lo; bi <= hi && bi < len(n.basements); bi++ {
			t.mustEnsureBasement(n, bi)
			n.applyToBasement(s.env, bi, m, withCopies)
		}
		return
	}
	bi := n.basementFor(s.env, m.Key)
	t.mustEnsureBasement(n, bi)
	n.applyToBasement(s.env, bi, m, withCopies)
}

// --- PacMan -----------------------------------------------------------------

// pacman runs the range-message compaction pass over a node's buffers
// (§2.2, §4). Conceptually every range-delete is compared against every
// other message — the quadratic scan whose CPU cost the paper analyzes —
// and messages fully covered by a newer range-delete are consumed
// ("eaten"). The simulated cost charges that full quadratic comparison
// count; the host-side implementation finds the covered messages through a
// sorted index so large nodes stay tractable to simulate. Without the
// v0.6 coalescing order this reproduces the v0.4 behaviour: the same
// quadratic charge, oldest-first traversal, and nothing to eat when range
// deletes are adjacent-but-not-overlapping.
func (t *Tree) pacman(n *node) {
	s := t.store
	atomic.AddInt64(&s.stats.PacmanScans, 1)
	s.m.pacmanScan.Inc()
	type loc struct {
		m     *Msg
		ci, i int
	}
	var ranges []loc
	var points []loc
	total := 0
	keyBytes := 0
	for ci := range n.bufs {
		for i, m := range n.bufs[ci].msgs {
			total++
			keyBytes += len(m.Key)
			if m.Type == MsgRangeDelete {
				ranges = append(ranges, loc{m, ci, i})
			} else {
				points = append(points, loc{m, ci, i})
			}
		}
	}
	if len(ranges) == 0 {
		return
	}
	avgKey := keyBytes / total

	// Traversal order: v0.6 considers the most recent (broadest,
	// directory-level) deletes first so they gobble narrower ones; v0.4
	// considers them in discovery order.
	if s.cfg.CoalesceRangeDeletes {
		sort.Slice(ranges, func(a, b int) bool { return ranges[a].m.MSN > ranges[b].m.MSN })
	}
	// Sorted indexes for efficient coverage queries.
	byKey := append([]loc{}, points...)
	sort.Slice(byKey, func(a, b int) bool { return keys.Compare(byKey[a].m.Key, byKey[b].m.Key) < 0 })
	byStart := append([]loc{}, ranges...)
	sort.Slice(byStart, func(a, b int) bool { return keys.Compare(byStart[a].m.Key, byStart[b].m.Key) < 0 })

	eaten := make(map[*Msg]bool)
	for _, rl := range ranges {
		r := rl.m
		if eaten[r] {
			continue
		}
		// Point messages inside [r.Key, r.EndKey) older than r.
		lo := sort.Search(len(byKey), func(i int) bool { return keys.Compare(byKey[i].m.Key, r.Key) >= 0 })
		for i := lo; i < len(byKey) && keys.Compare(byKey[i].m.Key, r.EndKey) < 0; i++ {
			m := byKey[i].m
			if m.MSN < r.MSN && !eaten[m] {
				eaten[m] = true
			}
		}
		// Older range deletes fully covered by r.
		rlo := sort.Search(len(byStart), func(i int) bool { return keys.Compare(byStart[i].m.Key, r.Key) >= 0 })
		for i := rlo; i < len(byStart) && keys.Compare(byStart[i].m.Key, r.EndKey) < 0; i++ {
			m := byStart[i].m
			if m != r && m.MSN < r.MSN && !eaten[m] && keys.Compare(m.EndKey, r.EndKey) <= 0 {
				eaten[m] = true
			}
		}
	}
	// The quadratic scan cost: every live range delete examines every
	// other message with two key comparisons. Eaten range deletes are
	// consumed before taking their own turn as eaters, which is exactly
	// why the directory-level deletes of §4 slash the CPU cost: with
	// newest-first traversal one broad delete swallows the narrow ones,
	// and none of them scan. Without coalescing (v0.4) nothing is eaten
	// and every range delete pays the full scan.
	eatenRanges := 0
	for _, rl := range ranges {
		if eaten[rl.m] {
			eatenRanges++
		}
	}
	s.env.CompareBulk(2*(len(ranges)-eatenRanges)*(total-1), avgKey)
	if len(eaten) == 0 {
		return
	}
	for ci := range n.bufs {
		for i := len(n.bufs[ci].msgs) - 1; i >= 0; i-- {
			if eaten[n.bufs[ci].msgs[i]] {
				n.bufs[ci].drop(i)
				atomic.AddInt64(&s.stats.PacmanDrops, 1)
				s.m.pacmanDrop.Inc()
			}
		}
	}
	s.cache.resize(t, n)
}

// --- splits

// --- splits -----------------------------------------------------------------

// splitRoot replaces the root with a new interior node over the split
// halves of the old root.
func (t *Tree) splitRoot(old *node) {
	s := t.store
	newRoot := &node{
		id:       t.newNodeID(),
		height:   old.height + 1,
		children: []nodeID{old.id},
		bufs:     make([]buffer, 1),
	}
	newRoot.dirty.Store(true)
	t.rootID = newRoot.id
	s.cache.put(t, newRoot)
	newRoot.pins.Add(1)
	t.splitChild(newRoot, 0, old)
	newRoot.pins.Add(-1)
	t.markDirty(newRoot)
}

// splitChild splits child (at index ci of parent) into pieces, updating
// the parent's pivots, children, and buffers.
func (t *Tree) splitChild(parent *node, ci int, child *node) {
	s := t.store
	if child.isLeaf() {
		t.ensureAllBasements(child)
		entries := t.flattenLeaf(child)
		if len(entries) < 2 {
			return
		}
		atomic.AddInt64(&s.stats.LeafSplits, 1)
		s.m.leafSplit.Inc()
		// Split into halves no larger than NodeSize/2.
		pieces := splitEntries(entries, s.cfg.NodeSize/2)
		if len(pieces) < 2 {
			return
		}
		nodes := make([]*node, len(pieces))
		for i, p := range pieces {
			var nn *node
			if i == 0 {
				nn = child
				nn.basements = nil
			} else {
				nn = &node{id: t.newNodeID(), height: 0}
			}
			nn.dirty.Store(true)
			nn.basements = rebalanceBasements(p, s.cfg.BasementSize)
			nodes[i] = nn
		}
		var pivots [][]byte
		for i := 1; i < len(nodes); i++ {
			pivots = append(pivots, append([]byte{}, pieces[i][0].key...))
		}
		t.replaceChild(parent, ci, nodes, pivots)
		return
	}
	if len(child.children) < 2 {
		return
	}
	atomic.AddInt64(&s.stats.InternalSplits, 1)
	s.m.internalSplit.Inc()
	mid := len(child.children) / 2
	right := &node{
		id:       t.newNodeID(),
		height:   child.height,
		pivots:   append([][]byte{}, child.pivots[mid:]...),
		children: append([]nodeID{}, child.children[mid:]...),
		bufs:     append([]buffer{}, child.bufs[mid:]...),
	}
	right.dirty.Store(true)
	promoted := child.pivots[mid-1]
	child.pivots = child.pivots[:mid-1]
	child.children = child.children[:mid]
	child.bufs = child.bufs[:mid]
	t.markDirty(child)
	t.replaceChild(parent, ci, []*node{child, right}, [][]byte{promoted})
}

// replaceChild swaps parent.children[ci] for the given nodes with pivots
// between them, distributing the (already empty, post-flush) buffer.
func (t *Tree) replaceChild(parent *node, ci int, nodes []*node, pivots [][]byte) {
	s := t.store
	oldBuf := parent.bufs[ci]
	newChildren := make([]nodeID, 0, len(parent.children)+len(nodes)-1)
	newChildren = append(newChildren, parent.children[:ci]...)
	for _, n := range nodes {
		newChildren = append(newChildren, n.id)
	}
	newChildren = append(newChildren, parent.children[ci+1:]...)
	newPivots := make([][]byte, 0, len(parent.pivots)+len(pivots))
	newPivots = append(newPivots, parent.pivots[:ci]...)
	newPivots = append(newPivots, pivots...)
	newPivots = append(newPivots, parent.pivots[ci:]...)
	newBufs := make([]buffer, 0, len(parent.bufs)+len(nodes)-1)
	newBufs = append(newBufs, parent.bufs[:ci]...)
	for range nodes {
		newBufs = append(newBufs, buffer{})
	}
	newBufs = append(newBufs, parent.bufs[ci+1:]...)
	parent.children = newChildren
	parent.pivots = newPivots
	parent.bufs = newBufs
	// Re-route any residual messages from the old buffer.
	for _, m := range oldBuf.msgs {
		i := parent.childFor(s.env, m.Key)
		parent.bufs[i].append(m)
		if m.Type == MsgRangeDelete {
			t.routeRangeMsg(parent, m, i)
		}
	}
	t.markDirty(parent)
	for _, n := range nodes {
		n.computeMemSize()
		s.cache.put(t, n)
	}
}

// flattenLeaf concatenates all basement entries of a loaded leaf.
func (t *Tree) flattenLeaf(n *node) []entry {
	var out []entry
	for _, b := range n.basements {
		out = append(out, b.entries...)
	}
	return out
}

// splitEntries chunks entries into pieces of at most maxBytes.
func splitEntries(entries []entry, maxBytes int) [][]entry {
	var out [][]entry
	var cur []entry
	bytes := 0
	for _, e := range entries {
		sz := len(e.key) + e.val.Len() + entryOverhead
		if bytes+sz > maxBytes && len(cur) > 0 {
			out = append(out, cur)
			cur = nil
			bytes = 0
		}
		cur = append(cur, e)
		bytes += sz
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	if len(out) == 0 {
		out = append(out, nil)
	}
	return out
}

// rebalanceBasements packs entries into basement nodes of ~target bytes.
// Each basement records its first key so its key range stays well defined
// even if deletions later empty it.
func rebalanceBasements(entries []entry, target int) []*basement {
	var out []*basement
	cur := &basement{loaded: true}
	for _, e := range entries {
		sz := len(e.key) + e.val.Len() + entryOverhead
		if cur.bytes+sz > target && len(cur.entries) > 0 {
			out = append(out, cur)
			cur = &basement{loaded: true}
		}
		if len(cur.entries) == 0 {
			cur.firstKey = append([]byte{}, e.key...)
		}
		cur.entries = append(cur.entries, e)
		cur.bytes += sz
	}
	out = append(out, cur)
	return out
}

// --- queries ----------------------------------------------------------------

// pathEl is one step of a root-to-leaf descent: node, chosen child, and
// the key bounds that child covers.
type pathEl struct {
	n  *node
	ci int
}

// Get returns the newest value for key, or ok=false. The query walks one
// root-to-leaf path, gathering pending messages and applying them to the
// leaf entry in MSN order (§2.1), and then runs the configured
// apply-on-query policy (§4). A corrupted node or basement on the path
// surfaces an error wrapping ErrChecksum instead of garbage or a panic.
//
// Locking (concurrent mode, DESIGN.md §9): the query holds the store's
// shared structure lock for its whole duration, latches interior path
// nodes shared and the leaf exclusive (acquired top-down, held until the
// end so apply-on-query and read-ahead see a stable path), and runs
// concurrently with other queries, scans, and root injects into other
// nodes. The legacy v0.4 apply-on-query policy restructures ancestor
// buffers on reads, so it takes the exclusive structure lock instead.
// Deterministic mode takes no locks and is the historical code path.
func (t *Tree) Get(key []byte) (val []byte, found bool, err error) {
	// The guard also catches aborts raised below fetch — e.g. a cache
	// eviction whose inline write-back hits a device failure.
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.Gets, 1)
	s := t.store
	s.m.queryGet.Inc()
	s.env.Charge(s.env.Costs.MessageOverhead)
	if s.cfg.LegacyApplyOnQuery {
		s.lockExcl()
		defer s.unlockExcl()
	} else {
		s.lockShared()
		defer s.unlockShared()
	}

	var path []pathEl
	var lo, hi []byte
	n, err := t.fetch(t.rootID, nil)
	if err != nil {
		return nil, false, err
	}
	if n.isLeaf() {
		s.latchExcl(n)
	} else {
		s.latchShared(n)
	}
	defer func() {
		for _, pe := range path {
			s.unlatchShared(pe.n)
			t.unpin(pe.n)
		}
		if n.isLeaf() {
			s.unlatchExcl(n)
		} else {
			s.unlatchShared(n)
		}
		t.unpin(n)
	}()
	for !n.isLeaf() {
		ci := n.childFor(s.env, key)
		var pk []byte
		if n.height == 1 {
			pk = key // child is a leaf: basement-granular read allowed
		}
		child, err := t.fetch(n.children[ci], pk)
		if err != nil {
			return nil, false, err
		}
		if child.isLeaf() {
			s.latchExcl(child)
		} else {
			s.latchShared(child)
		}
		lo, hi = n.childRange(ci, lo, hi)
		path = append(path, pathEl{n, ci})
		n = child
	}
	bi := n.basementFor(s.env, key)
	if err := t.ensureBasement(n, bi); err != nil {
		return nil, false, err
	}
	b := n.basements[bi]

	// Gather pending messages for this key from the path. The ancestor
	// shared latches exclude root injects, and the exclusive leaf latch
	// pins b.maxApplied, so the collected set is consistent.
	var pend []*Msg
	for _, pe := range path {
		pend = pe.n.bufs[pe.ci].collect(s.env, key, b.maxApplied, pend)
	}
	sort.SliceStable(pend, func(i, j int) bool { return pend[i].MSN < pend[j].MSN })

	// Compute the query result.
	val, found = currentValue(s, b, key, pend)
	if s.concurrent && found {
		// The value may point into basement-owned memory that a later
		// apply-on-query (ours or another reader's) can mutate once the
		// leaf latch drops; hand the caller a private copy. Host-side
		// only — no simulated charge, so deterministic results are
		// untouched.
		val = append([]byte(nil), val...)
	}

	// Apply-on-query (§4).
	t.applyOnQuery(path, n, bi, lo, hi, pend)

	// Read-ahead (§3.2): on sequential hints, prefetch upcoming
	// basements (or the next leaf when at the last basement).
	if t.seqHint.Load() && s.cfg.ReadAhead {
		t.prefetchAfter(path, n, bi)
	}
	return val, found, nil
}

// currentValue applies pending messages (ascending MSN) to the stored
// entry without mutating the tree.
func currentValue(s *Store, b *basement, key []byte, pend []*Msg) ([]byte, bool) {
	i, found := b.find(s.env, key)
	var val []byte
	if found {
		val = b.entries[i].val.Bytes()
	}
	if len(pend) == 0 {
		if !found {
			return nil, false
		}
		return val, true
	}
	exists := found
	cloned := false
	for _, m := range pend {
		s.env.Charge(s.env.Costs.MessageOverhead)
		switch m.Type {
		case MsgInsert:
			val = m.Val.Bytes()
			cloned = false
			exists = true
		case MsgDelete, MsgRangeDelete:
			val = nil
			exists = false
		case MsgUpdate:
			patch := m.Val.Bytes()
			need := m.Off + len(patch)
			if !cloned {
				nv := make([]byte, len(val))
				copy(nv, val)
				val = nv
				cloned = true
				s.env.Memcpy(len(val))
			}
			if need > len(val) {
				nv := make([]byte, need)
				copy(nv, val)
				val = nv
			}
			copy(val[m.Off:], patch)
			s.env.Memcpy(len(patch))
			exists = true
		}
	}
	if !exists {
		return nil, false
	}
	return val, true
}

// applyOnQuery implements both policies from §4.
//
// Legacy (v0.4): on every query, if the leaf is clean, search the path for
// any pending message targeting the queried basement's range and apply
// them in memory; if the leaf is dirty, flush (remove from ancestors) all
// messages targeting the whole leaf. This burns CPU proportional to the
// path's buffered messages on every query.
//
// v0.6: act only when pending messages affected this query's outcome, and
// then only for the queried key's basement.
func (t *Tree) applyOnQuery(path []pathEl, leaf *node, bi int, leafLo, leafHi []byte, pend []*Msg) {
	s := t.store
	legacy := s.cfg.LegacyApplyOnQuery
	if !legacy && len(pend) == 0 {
		return
	}
	atomic.AddInt64(&s.stats.ApplyOnQuery, 1)
	s.m.applyOnQuery.Inc()
	b := leaf.basements[bi]
	blo, bhi := basementRange(leaf, bi, leafLo, leafHi)

	if leaf.dirty.Load() && legacy {
		// Flush everything targeting the whole leaf out of the path.
		llo, lhi := boundsOrSentinels(leafLo, leafHi)
		var moved []*Msg
		for _, pe := range path {
			moved = append(moved, pe.n.bufs[pe.ci].removeOverlapping(s.env, llo, lhi)...)
			t.markDirty(pe.n)
		}
		sort.SliceStable(moved, func(i, j int) bool { return moved[i].MSN < moved[j].MSN })
		for _, m := range moved {
			t.applyToLeaf(leaf, m)
		}
		s.m.msgPushed.Add(int64(len(moved)))
		s.env.Trace("betree", "msg.pushed", "", int64(len(moved)))
		t.markDirty(leaf)
		return
	}

	// Clean-leaf path (both policies): apply the pending messages for the
	// whole basement range in memory, leaving ancestors untouched. The
	// policies differ in the *trigger* — legacy acts on every query,
	// v0.6 only when a pending message affected this query's outcome —
	// but the action is basement-wide either way, because applying bumps
	// the basement's maxApplied watermark and every message at or below
	// it must then be reflected in the basement.
	var msgs []*Msg
	for _, pe := range path {
		msgs = pe.n.bufs[pe.ci].collectRange(s.env, blo, bhi, b.maxApplied, msgs)
	}
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].MSN < msgs[j].MSN })
	pushed := int64(0)
	for _, m := range msgs {
		if !b.loaded {
			break
		}
		// Messages stay live in ancestor buffers, so apply clones.
		leaf.applyToBasement(s.env, bi, cloneForSharedApply(s.env, clipToBasement(m, blo, bhi)), false)
		pushed++
	}
	s.m.msgPushed.Add(pushed)
	if pushed > 0 {
		s.env.Trace("betree", "msg.pushed", "", pushed)
	}
	s.cache.resize(t, leaf)
}

// basementRange returns the key range a basement spans within its leaf,
// clipped to the leaf's own bounds (from the descent pivots).
func basementRange(leaf *node, bi int, leafLo, leafHi []byte) (lo, hi []byte) {
	lo, hi = boundsOrSentinels(leafLo, leafHi)
	if bi > 0 {
		if k := leaf.basements[bi].lowKey(); k != nil {
			lo = k
		}
	}
	if bi+1 < len(leaf.basements) {
		if k := leaf.basements[bi+1].lowKey(); k != nil {
			hi = k
		}
	}
	return lo, hi
}

// boundsOrSentinels replaces open bounds with concrete sentinels.
func boundsOrSentinels(lo, hi []byte) ([]byte, []byte) {
	if lo == nil {
		lo = []byte{}
	}
	if hi == nil {
		hi = maxKeySentinel
	}
	return lo, hi
}

// maxKeySentinel is an upper bound beyond any real key (keys are paths, so
// 0xff-prefixed keys do not occur).
var maxKeySentinel = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// prefetchAfter issues read-ahead under a sequential hint (§3.2): the
// upcoming basements arrive with the whole-leaf read, and the next leaf is
// prefetched as soon as the scan enters a leaf, so its device read fully
// overlaps the CPU work of consuming the current one.
func (t *Tree) prefetchAfter(path []pathEl, leaf *node, bi int) {
	s := t.store
	if bi+2 < len(leaf.basements) {
		for b := bi + 1; b <= bi+2; b++ {
			if !leaf.basements[b].loaded {
				// Best-effort read-ahead: a corrupt upcoming basement is
				// reported when (if) a query actually needs it.
				if t.ensureBasement(leaf, b) != nil {
					break
				}
			}
		}
	}
	// Prefetch the next leaf via the deepest ancestor with a right
	// sibling pointer (prefetch dedups against cache and pending reads).
	for i := len(path) - 1; i >= 0; i-- {
		pe := path[i]
		if pe.ci+1 < len(pe.n.children) {
			s.prefetch(t, pe.n.children[pe.ci+1])
			return
		}
	}
}

func (t *Tree) String() string {
	return fmt.Sprintf("betree(%s, root=%d)", t.name, t.rootID)
}

// LogInsertOnly appends an insert record to the redo log without touching
// the tree, returning the record's LSN. Conditional logging (§3.3) uses it
// to defer inode creation: the caller pins the log section via
// Store.Log().Pin(lsn) and performs the real insert on inode write-back.
func (t *Tree) LogInsertOnly(key, val []byte) (lsn uint64, err error) {
	defer ioerr.Guard(&err)
	s := t.store
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	m := &Msg{Type: MsgInsert, Key: key, Val: InlineValue(val)}
	return s.logOp(t, m, true), nil
}
