package betree

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"betrfs/internal/sim"
)

func mkLeaf(entries []entry, basementSize int) *node {
	n := &node{id: 7, height: 0}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].key, entries[j].key) < 0 })
	n.basements = rebalanceBasements(entries, basementSize)
	return n
}

func leafEntries(n *node) []entry {
	var out []entry
	for _, b := range n.basements {
		out = append(out, b.entries...)
	}
	return out
}

func TestLeafSerializeRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	var entries []entry
	for i := 0; i < 500; i++ {
		entries = append(entries, entry{
			key: []byte(fmt.Sprintf("dir/file%04d", i)),
			val: InlineValue(bytes.Repeat([]byte{byte(i)}, 50+i%200)),
		})
	}
	n := mkLeaf(entries, 4<<10)
	n.basements[0].maxApplied = 42
	data := serializeNode(env, &cfg, n)
	if len(data)%4096 != 0 {
		t.Fatalf("serialized length %d not block aligned", len(data))
	}
	got, err := deserializeNode(env, &cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	ge := leafEntries(got)
	we := leafEntries(n)
	if len(ge) != len(we) {
		t.Fatalf("entry count %d != %d", len(ge), len(we))
	}
	for i := range ge {
		if !bytes.Equal(ge[i].key, we[i].key) || !bytes.Equal(ge[i].val.Bytes(), we[i].val.Bytes()) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if got.basements[0].maxApplied != 42 {
		t.Fatal("maxApplied lost")
	}
}

func TestLeafAlignedValuesRoundTrip(t *testing.T) {
	// 4 KiB values must survive the aligned page-section format.
	for _, pgsh := range []bool{true, false} {
		env := sim.NewEnv(1)
		cfg := DefaultConfig()
		cfg.PageSharing = pgsh
		var entries []entry
		for i := 0; i < 64; i++ {
			v := bytes.Repeat([]byte{byte(i * 3)}, 4096)
			entries = append(entries, entry{key: []byte(fmt.Sprintf("f%03d", i)), val: InlineValue(v)})
		}
		n := mkLeaf(entries, 128<<10)
		data := serializeNode(env, &cfg, n)
		got, err := deserializeNode(env, &cfg, data)
		if err != nil {
			t.Fatalf("pgsh=%v: %v", pgsh, err)
		}
		for i, e := range leafEntries(got) {
			if len(e.val.Bytes()) != 4096 || e.val.Bytes()[0] != byte(i*3) {
				t.Fatalf("pgsh=%v: page value %d corrupted", pgsh, i)
			}
		}
	}
}

func TestInteriorSerializeRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	n := &node{id: 9, height: 2}
	n.children = []nodeID{10, 11, 12}
	n.pivots = [][]byte{[]byte("m"), []byte("t")}
	n.bufs = make([]buffer, 3)
	msn := MSN(1)
	for ci := 0; ci < 3; ci++ {
		for i := 0; i < 20; i++ {
			n.bufs[ci].append(&Msg{
				Type: MsgInsert, MSN: msn,
				Key: []byte(fmt.Sprintf("c%d/k%02d", ci, i)),
				Val: InlineValue(bytes.Repeat([]byte{1}, 30)),
			})
			msn++
		}
	}
	n.bufs[1].append(&Msg{Type: MsgRangeDelete, MSN: msn, Key: []byte("p"), EndKey: []byte("q")})
	n.bufs[2].append(&Msg{Type: MsgUpdate, MSN: msn + 1, Key: []byte("u"), Off: 17, Val: InlineValue([]byte{9})})

	data := serializeNode(env, &cfg, n)
	got, err := deserializeNode(env, &cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.children) != 3 || len(got.pivots) != 2 {
		t.Fatal("structure lost")
	}
	if got.bufs[1].len() != 21 || got.bufs[2].len() != 21 {
		t.Fatalf("buffer counts %d/%d", got.bufs[1].len(), got.bufs[2].len())
	}
	last := got.bufs[2].msgs[20]
	if last.Type != MsgUpdate || last.Off != 17 {
		t.Fatal("update message lost fields")
	}
	rd := got.bufs[1].msgs[20]
	if rd.Type != MsgRangeDelete || string(rd.EndKey) != "q" {
		t.Fatal("range delete lost fields")
	}
}

func TestCorruptNodeDetected(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	n := mkLeaf([]entry{{key: []byte("k"), val: InlineValue([]byte("v"))}}, 4<<10)
	data := serializeNode(env, &cfg, n)
	data[len(data)/2] ^= 0xff
	if _, err := deserializeNode(env, &cfg, data); err == nil {
		t.Fatal("corrupted node passed checksum verification")
	}
}

func TestLeafShellPartialDecode(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	var entries []entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, entry{key: []byte(fmt.Sprintf("k%06d", i)), val: InlineValue(make([]byte, 100))})
	}
	n := mkLeaf(entries, 8<<10)
	data := serializeNode(env, &cfg, n)
	shell, consumed, err := decodeLeafShell(data)
	if err != nil {
		t.Fatal(err)
	}
	if consumed > headerRegion {
		t.Skipf("directory larger than header region (%d)", consumed)
	}
	if len(shell) != len(n.basements) {
		t.Fatalf("shell has %d basements, want %d", len(shell), len(n.basements))
	}
	// Load just one basement and verify its entries.
	bi := len(shell) / 2
	if err := loadBasementFrom(env, data, shell[bi], pageBase(data)); err != nil {
		t.Fatal(err)
	}
	want := n.basements[bi].entries
	got := shell[bi].entries
	if len(got) != len(want) || !bytes.Equal(got[0].key, want[0].key) {
		t.Fatal("partial basement decode mismatch")
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	env := sim.NewEnv(1)
	cfg := DefaultConfig()
	f := func(seed uint32, count uint8) bool {
		rnd := sim.NewRand(uint64(seed) + 1)
		var entries []entry
		seen := map[string]bool{}
		for i := 0; i < int(count)+1; i++ {
			k := fmt.Sprintf("p%d/f%04d", rnd.Intn(5), rnd.Intn(5000))
			if seen[k] {
				continue
			}
			seen[k] = true
			v := make([]byte, rnd.Intn(6000))
			for j := range v {
				v[j] = byte(rnd.Intn(256))
			}
			entries = append(entries, entry{key: []byte(k), val: InlineValue(v)})
		}
		n := mkLeaf(entries, 2<<10)
		got, err := deserializeNode(env, &cfg, serializeNode(env, &cfg, n))
		if err != nil {
			return false
		}
		ge, we := leafEntries(got), leafEntries(n)
		if len(ge) != len(we) {
			return false
		}
		for i := range ge {
			if !bytes.Equal(ge[i].key, we[i].key) || !bytes.Equal(ge[i].val.Bytes(), we[i].val.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBlockTableAllocateRelease(t *testing.T) {
	bt := newBlockTable(1 << 20)
	e1, err := bt.allocate(10000)
	if err != nil {
		t.Fatal(err)
	}
	if e1.len%blockAlign != 0 {
		t.Fatal("extent not aligned")
	}
	e2, _ := bt.allocate(20000)
	if e2.off < e1.off+e1.len {
		t.Fatal("extents overlap")
	}
	bt.release(e1)
	bt.release(e2)
	// After releasing everything, one full-size extent should be allocatable.
	if _, err := bt.allocate(1 << 20); err != nil {
		t.Fatalf("free list did not coalesce: %v", err)
	}
}

func TestBlockTableCoWProtection(t *testing.T) {
	bt := newBlockTable(1 << 20)
	e1, _ := bt.allocate(4096)
	bt.place(1, e1)
	bt.checkpointCommitted() // node 1's extent is now checkpoint-protected
	e2, _ := bt.allocate(4096)
	bt.place(1, e2) // rewrite: old extent must be deferred, not freed
	if len(bt.deferred) != 1 {
		t.Fatalf("deferred=%d, want 1", len(bt.deferred))
	}
	if bt.usedBytes() < 8192 {
		t.Fatal("old extent freed before checkpoint commit")
	}
	bt.checkpointCommitted()
	if len(bt.deferred) != 0 {
		t.Fatal("deferred extents survived checkpoint")
	}
}

func TestBlockTableSerializeRoundTrip(t *testing.T) {
	bt := newBlockTable(1 << 20)
	for i := nodeID(1); i <= 20; i++ {
		e, _ := bt.allocate(int64(4096 * i))
		bt.place(i, e)
	}
	blob := bt.serialize()
	got, err := loadBlockTable(1<<20, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.entries) != 20 {
		t.Fatalf("entries=%d", len(got.entries))
	}
	for i := nodeID(1); i <= 20; i++ {
		a, _ := bt.lookup(i)
		b, ok := got.lookup(i)
		if !ok || a != b {
			t.Fatalf("node %d extent mismatch", i)
		}
	}
	if got.usedBytes() != bt.usedBytes() {
		t.Fatalf("used bytes %d != %d (free list rebuild)", got.usedBytes(), bt.usedBytes())
	}
}

func TestLiftingShrinksNodes(t *testing.T) {
	env := sim.NewEnv(1)
	var entries []entry
	for i := 0; i < 400; i++ {
		entries = append(entries, entry{
			key: []byte(fmt.Sprintf("usr/src/linux/fs/ext4/inode%04d.c", i)),
			val: InlineValue(make([]byte, 20)),
		})
	}
	lifted := DefaultConfig()
	lifted.Lifting = true
	plain := DefaultConfig()
	plain.Lifting = false
	nl := mkLeaf(append([]entry{}, entries...), 8<<10)
	np := mkLeaf(append([]entry{}, entries...), 8<<10)
	dl := serializeNode(env, &lifted, nl)
	dp := serializeNode(env, &plain, np)
	if len(dl) >= len(dp) {
		t.Fatalf("lifting did not shrink the node: %d >= %d", len(dl), len(dp))
	}
	// And it must round trip.
	got, err := deserializeNode(env, &lifted, dl)
	if err != nil {
		t.Fatal(err)
	}
	ge := leafEntries(got)
	if len(ge) != len(entries) || !bytes.Equal(ge[7].key, []byte("usr/src/linux/fs/ext4/inode0007.c")) {
		t.Fatal("lifted keys did not round trip")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	env := sim.NewEnv(1)
	var entries []entry
	for i := 0; i < 200; i++ {
		entries = append(entries, entry{
			key: []byte(fmt.Sprintf("k%05d", i)),
			val: InlineValue(bytes.Repeat([]byte{byte(i % 7)}, 512)),
		})
	}
	n := mkLeaf(entries, 16<<10)
	cfg := DefaultConfig()
	raw := serializeNode(env, &cfg, n)
	comp := compressNode(env, raw)
	if len(comp) >= len(raw) {
		t.Fatalf("compression did not shrink a redundant node: %d >= %d", len(comp), len(raw))
	}
	back, err := maybeDecompressNode(env, comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatal("decompression mismatch")
	}
	// Plain images pass through.
	same, err := maybeDecompressNode(env, raw)
	if err != nil || !bytes.Equal(same, raw) {
		t.Fatal("plain image did not pass through")
	}
}

func TestCompressedStoreEndToEnd(t *testing.T) {
	_, s := testStore(t, func(c *Config) { c.Compression = true })
	tr := s.Meta()
	for i := 0; i < 3000; i++ {
		tr.Put(k(i), v(i, 64), LogAuto)
	}
	s.Checkpoint()
	s.DropCleanCaches()
	for i := 0; i < 3000; i += 111 {
		got, ok, _ := tr.Get(k(i))
		if !ok || !bytes.Equal(got, v(i, 64)) {
			t.Fatalf("key %d lost under compression", i)
		}
	}
}
