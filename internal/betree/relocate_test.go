package betree

import (
	"bytes"
	"errors"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// TestBlockTableDefectRoundTrip exercises the grown-defect list through
// the superblock format: a defect-free table serializes byte-compatibly
// with the pre-defect-list layout, relocation retires the old extent,
// and a serialize/load round trip preserves the defect list while
// keeping retired space off the rebuilt free list.
func TestBlockTableDefectRoundTrip(t *testing.T) {
	const capacity = 1 << 20
	bt := newBlockTable(capacity)
	for id := nodeID(1); id <= 3; id++ {
		e, err := bt.allocate(8192)
		if err != nil {
			t.Fatal(err)
		}
		bt.place(id, e)
	}
	if got, want := len(bt.serialize()), 8+24*3; got != want {
		t.Fatalf("defect-free table serializes to %d bytes, want the legacy %d", got, want)
	}

	old, _ := bt.lookup(2)
	ne, err := bt.relocate(2, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if ne == old {
		t.Fatal("relocate returned the failed extent")
	}
	if cur, _ := bt.lookup(2); cur != ne {
		t.Fatalf("mapping after relocate = %+v, want %+v", cur, ne)
	}
	if bt.checkpointed[2] {
		t.Fatal("relocated node still marked checkpointed")
	}
	if n, b := bt.defectStats(); n != 1 || b != old.len {
		t.Fatalf("defectStats = (%d, %d), want (1, %d)", n, b, old.len)
	}

	bt2, err := loadBlockTable(capacity, bt.serialize())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if n, b := bt2.defectStats(); n != 1 || b != old.len {
		t.Fatalf("defects lost in round trip: (%d, %d)", n, b)
	}
	if cur, ok := bt2.lookup(2); !ok || cur != ne {
		t.Fatalf("mapping lost in round trip: (%+v, %v)", cur, ok)
	}
	// Exhaust the loaded table: no allocation may ever land on the
	// retired extent or on a live mapping.
	liveOrDead := append([]extent{old}, ne)
	for id := nodeID(1); id <= 3; id++ {
		e, _ := bt2.lookup(id)
		liveOrDead = append(liveOrDead, e)
	}
	for {
		e, err := bt2.allocate(8192)
		if err != nil {
			if !errors.Is(err, ioerr.ErrNoSpace) {
				t.Fatalf("allocate exhausted with %v, want ENOSPC", err)
			}
			break
		}
		for _, u := range liveOrDead {
			if e.off < u.off+u.len && u.off < e.off+e.len {
				t.Fatalf("allocate handed out %+v overlapping used/retired %+v", e, u)
			}
		}
	}
}

// TestBlockTableRelocateENOSPC checks that a failed relocation is a
// no-op: with no free space left, the mapping and the defect list are
// untouched, so the caller can fall back to the read-only degradation
// with the table still consistent.
func TestBlockTableRelocateENOSPC(t *testing.T) {
	bt := newBlockTable(16384)
	e, err := bt.allocate(8192)
	if err != nil {
		t.Fatal(err)
	}
	bt.place(1, e)
	if _, err := bt.allocate(8192); err != nil {
		t.Fatal(err)
	}
	if _, err := bt.relocate(1, 8192); !errors.Is(err, ioerr.ErrNoSpace) {
		t.Fatalf("relocate on a full table = %v, want ENOSPC", err)
	}
	if cur, ok := bt.lookup(1); !ok || cur != e {
		t.Fatalf("failed relocate moved the mapping: (%+v, %v)", cur, ok)
	}
	if n, _ := bt.defectStats(); n != 0 {
		t.Fatalf("failed relocate grew %d defects", n)
	}
	if _, err := bt.relocate(99, 4096); err == nil {
		t.Fatal("relocate of an unmapped node succeeded")
	}
}

// TestBlockTableDefectOverlapRejected checks the load-time invariant: a
// superblock whose defect list overlaps a live mapping (a lost or
// double-allocated extent) is rejected instead of silently rebuilding a
// free list over it.
func TestBlockTableDefectOverlapRejected(t *testing.T) {
	bt := newBlockTable(1 << 20)
	e, err := bt.allocate(8192)
	if err != nil {
		t.Fatal(err)
	}
	bt.place(1, e)
	bt.retire(e) // same extent live and retired: corrupt table
	if _, err := loadBlockTable(1<<20, bt.serialize()); err == nil {
		t.Fatal("overlapping defect/entry extents loaded without error")
	}
}

// relocStore builds a store over a fault device so tests can grow media
// defects under specific extents. Node geometry is shrunk so a few
// thousand keys spread across many nodes.
func relocStore(t *testing.T, mutate func(*Config)) (*sim.Env, *blockdev.FaultDev, *sfl.SFL, *Store) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fdev := blockdev.NewFault(env, dev, blockdev.FaultPlan{})
	backend, err := sfl.NewDefault(env, fdev)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.BasementSize = 4 << 10
	cfg.Fanout = 8
	cfg.CacheBytes = 8 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return env, fdev, backend, s
}

// dataFileTail returns the end of the highest durable data-tree extent;
// with a first-fit allocator, fresh bulk writes allocate from there.
func dataFileTail(s *Store) int64 {
	var tail int64
	for _, rep := range s.Scrub() {
		if rep.Tree == "data" && rep.Off+rep.Len > tail {
			tail = rep.Off + rep.Len
		}
	}
	return tail
}

// TestWritePathRelocationDeterministic grows a one-page media defect at
// the data file's free tail and checks the write path end to end: the
// first node write to land there fails non-transiently, the store
// relocates it (counted in io.defect.relocate.write), the checkpoint
// succeeds, no EROFS latch trips, and every key survives a cold scrub
// and read-back.
func TestWritePathRelocationDeterministic(t *testing.T) {
	env, fdev, backend, s := relocStore(t, nil)
	const nkeys = 3000
	for i := 0; i < nkeys; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	tail := dataFileTail(s)
	fdev.AddBadRange(devOffset(backend, "data", tail), 4096)

	for i := nkeys; i < 2*nkeys; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint over a grown defect: %v", err)
	}
	if got := env.Metrics.Counter("io.defect.relocate.write").Load(); got == 0 {
		t.Fatal("io.defect.relocate.write = 0: no write hit the bad page; test is vacuous")
	}
	if count, bytes := s.DefectStats(); count == 0 || bytes == 0 {
		t.Fatalf("DefectStats = (%d, %d) after relocation", count, bytes)
	}
	if err := s.IOErr(); err != nil {
		t.Fatalf("store latched read-only despite relocation: %v", err)
	}

	s.DropCleanCaches()
	for i := 0; i < 2*nkeys; i++ {
		val, ok, err := s.Data().Get(k(i))
		if err != nil || !ok {
			t.Fatalf("key %d after relocation: (%v, %v)", i, ok, err)
		}
		if !bytes.Equal(val, v(i, 128)) {
			t.Fatalf("key %d: wrong bytes after relocation", i)
		}
	}
	for _, rep := range s.Scrub() {
		if rep.Err != nil {
			t.Errorf("post-relocation scrub: %s node %d: %v", rep.Tree, rep.ID, rep.Err)
		}
	}
}

// TestWritePathRelocationDisabled is the negative control: with
// RelocateAttempts=0 the same grown defect surfaces the historical EIO
// and latches the store read-only.
func TestWritePathRelocationDisabled(t *testing.T) {
	env, fdev, backend, s := relocStore(t, func(c *Config) { c.RelocateAttempts = 0 })
	const nkeys = 3000
	for i := 0; i < nkeys; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tail := dataFileTail(s)
	fdev.AddBadRange(devOffset(backend, "data", tail), 4096)

	var gotErr error
	for i := nkeys; i < 2*nkeys && gotErr == nil; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
		if i%500 == 0 {
			gotErr = s.Checkpoint()
		}
	}
	if gotErr == nil {
		gotErr = s.Checkpoint()
	}
	if gotErr == nil {
		t.Fatal("checkpoint over a grown defect succeeded with relocation disabled")
	}
	if !errors.Is(gotErr, ioerr.ErrIO) {
		t.Fatalf("checkpoint error = %v, want EIO-class", gotErr)
	}
	if s.IOErr() == nil {
		t.Fatal("store did not latch read-only with relocation disabled")
	}
	if got := env.Metrics.Counter("io.defect.relocate.write").Load(); got != 0 {
		t.Fatalf("io.defect.relocate.write = %d with relocation disabled", got)
	}
}

// TestScrubRepairUsesCacheCopy grows a defect under a durable node whose
// image is still resident, and checks ScrubRepair rewrites it from the
// cache copy: the repair succeeds, the old extent retires, and cold
// reads come back clean.
func TestScrubRepairUsesCacheCopy(t *testing.T) {
	env, fdev, backend, s := relocStore(t, nil)
	const nkeys = 3000
	for i := 0; i < nkeys; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	victim := largestLeaf(t, s)
	fdev.AddBadRange(devOffset(backend, "data", victim.Off), victim.Len)

	st, err := s.ScrubRepair()
	if err != nil {
		t.Fatalf("scrub repair: %v", err)
	}
	if st.Bad != 1 || st.Repaired != 1 || st.Unrepairable != 0 {
		t.Fatalf("RepairStats = %+v, want exactly the one injected node repaired", st)
	}
	if got := env.Metrics.Counter("scrub.repair.node").Load(); got != 1 {
		t.Fatalf("scrub.repair.node = %d, want 1", got)
	}
	s.DropCleanCaches()
	for i := 0; i < nkeys; i++ {
		if _, ok, err := s.Data().Get(k(i)); err != nil || !ok {
			t.Fatalf("key %d after repair: (%v, %v)", i, ok, err)
		}
	}
	for _, rep := range s.Scrub() {
		if rep.Err != nil {
			t.Errorf("post-repair scrub: %s node %d: %v", rep.Tree, rep.ID, rep.Err)
		}
	}
}

// TestScrubRepairUnrepairable drops every cache copy before repairing a
// defect-covered node: with neither a readable image nor a resident
// copy, repair must report the node unrepairable — never fabricate data
// — and the store must stay mounted.
func TestScrubRepairUnrepairable(t *testing.T) {
	_, fdev, backend, s := relocStore(t, nil)
	const nkeys = 3000
	for i := 0; i < nkeys; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	victim := largestLeaf(t, s)
	s.DropCleanCaches()
	fdev.AddBadRange(devOffset(backend, "data", victim.Off), victim.Len)

	st, err := s.ScrubRepair()
	if err != nil {
		t.Fatalf("scrub repair: %v", err)
	}
	if st.Bad != 1 || st.Unrepairable != 1 || st.Repaired != 0 {
		t.Fatalf("RepairStats = %+v, want the node reported unrepairable", st)
	}
	// The damage is still there for a verdict scrub (betrfsck exit 3).
	unreadable := 0
	for _, rep := range s.Scrub() {
		if rep.Unreadable() {
			unreadable++
		}
	}
	if unreadable != 1 {
		t.Fatalf("%d unreadable nodes after failed repair, want 1", unreadable)
	}
}
