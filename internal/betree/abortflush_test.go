package betree

import (
	"bytes"
	"errors"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
	"betrfs/internal/stor"
)

// ioBomb fails exactly one I/O command — the fuse-th after arming — with
// a device error, then heals. Sweeping the fuse walks the single fault
// across every I/O the flush path issues, including the ones between
// buffer takeAll and the end of the apply loop where an abort used to
// abandon in-memory messages.
type ioBomb struct {
	armed   bool
	fuse    int
	tripped bool
}

func (b *ioBomb) boom() bool {
	if !b.armed {
		return false
	}
	b.fuse--
	if b.fuse == 0 {
		b.armed = false
		b.tripped = true
		return true
	}
	return false
}

type bombFile struct {
	stor.File
	b *ioBomb
}

func (f bombFile) ReadAt(p []byte, off int64) error {
	if f.b.boom() {
		return &ioerr.DeviceError{Op: "read", Off: off, Len: len(p)}
	}
	return f.File.ReadAt(p, off)
}

func (f bombFile) WriteAt(p []byte, off int64) error {
	if f.b.boom() {
		return &ioerr.DeviceError{Op: "write", Off: off, Len: len(p)}
	}
	return f.File.WriteAt(p, off)
}

func (f bombFile) SubmitRead(p []byte, off int64) stor.Wait {
	if f.b.boom() {
		return func() error { return &ioerr.DeviceError{Op: "read", Off: off, Len: len(p)} }
	}
	return f.File.SubmitRead(p, off)
}

func (f bombFile) SubmitWrite(p []byte, off int64) stor.Wait {
	if f.b.boom() {
		return func() error { return &ioerr.DeviceError{Op: "write", Off: off, Len: len(p)} }
	}
	return f.File.SubmitWrite(p, off)
}

type bombBackend struct {
	inner Backend
	b     *ioBomb
}

func (bb bombBackend) File(name string) stor.File {
	return bombFile{File: bb.inner.File(name), b: bb.b}
}

// TestFlushAbortRestoresAcknowledgedWrites is the flushDescend abort
// hardening regression: a device fault that aborts a flush mid-way must
// not lose buffered messages from earlier *acknowledged* Puts. The sweep
// builds the same tree for every fuse value, overwrites every key with a
// fresh value, detonates one I/O fault somewhere in the overwrite phase
// (for several fuse values that is exactly between the flush's buffer
// takeAll and the end of its apply loop), heals, and then requires every
// acknowledged overwrite to read back the new value — reads must see the
// pre-flush buffer contents, not a hole where the taken messages were.
func TestFlushAbortRestoresAcknowledgedWrites(t *testing.T) {
	const n = 400
	oldVal := func(i int) []byte { return v(i, 300) }
	newVal := func(i int) []byte {
		b := bytes.Repeat([]byte{byte(i*5 + 3)}, 300)
		b[1] = 0xee
		return b
	}

	anyRestore := false
	for fuse := 1; fuse <= 60; fuse++ {
		env := sim.NewEnv(1)
		dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(256))
		backend, err := sfl.NewDefault(env, dev)
		if err != nil {
			t.Fatal(err)
		}
		bomb := &ioBomb{}
		cfg := DefaultConfig()
		cfg.NodeSize = 64 << 10
		cfg.BasementSize = 4 << 10
		cfg.Fanout = 8
		cfg.CacheBytes = 8 << 20
		s, err := Open(env, kmem.New(env, true), cfg, bombBackend{backend, bomb})
		if err != nil {
			t.Fatal(err)
		}
		tr := s.Meta()
		for i := 0; i < n; i++ {
			if err := tr.Put(k(i), oldVal(i), LogNone); err != nil {
				t.Fatalf("fuse %d: seed put %d: %v", fuse, i, err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("fuse %d: checkpoint: %v", fuse, err)
		}
		// Drop every cached node, then warm the cache with sparse point
		// reads. A point read materializes a leaf with only the one
		// basement holding the key resident, so the later flush finds the
		// leaf cached but must load the remaining basements from the
		// device mid-apply — exactly the I/O between takeAll and the end
		// of the apply loop that the bomb targets.
		s.cache.dropAll()
		for i := 0; i < n; i += 64 {
			if _, ok, gerr := tr.Get(k(i)); gerr != nil || !ok {
				t.Fatalf("fuse %d: warm get %d: ok=%v err=%v", fuse, i, ok, gerr)
			}
		}

		bomb.armed, bomb.fuse, bomb.tripped = true, fuse, false
		acked := make([]bool, n)
		for i := 0; i < n; i++ {
			if err := tr.Put(k(i), newVal(i), LogNone); err != nil {
				if !errors.Is(err, ioerr.ErrIO) {
					t.Fatalf("fuse %d: put %d: unexpected error class %v", fuse, i, err)
				}
				continue
			}
			acked[i] = true
		}
		bomb.armed = false
		if env.Metrics.Counter("betree.flush.restore").Load() > 0 {
			anyRestore = true
		}

		for i := 0; i < n; i++ {
			got, ok, gerr := tr.Get(k(i))
			if gerr != nil {
				t.Fatalf("fuse %d: get %d after heal: %v", fuse, i, gerr)
			}
			if !ok {
				t.Fatalf("fuse %d: key %d missing after aborted flush", fuse, i)
			}
			if acked[i] {
				if !bytes.Equal(got, newVal(i)) {
					t.Fatalf("fuse %d: acknowledged overwrite of key %d lost (tripped=%v)", fuse, i, bomb.tripped)
				}
			} else if !bytes.Equal(got, newVal(i)) && !bytes.Equal(got, oldVal(i)) {
				t.Fatalf("fuse %d: key %d reads garbage after failed overwrite", fuse, i)
			}
		}
	}
	if !anyRestore {
		t.Fatal("no fuse value landed an abort inside the flush restore window; widen the sweep")
	}
}
