package betree

import (
	"errors"
	"fmt"
	"sort"

	"betrfs/internal/ioerr"
)

// ScrubReport is the verification result for one on-disk node image.
type ScrubReport struct {
	Tree string // "meta" or "data"
	ID   uint64 // node ID
	Off  int64  // extent offset within the tree's node file
	Len  int64  // extent length in bytes
	Err  error  // nil if every checksum verified; wraps ErrChecksum on corruption
}

// Corrupt reports whether the scrub result indicates on-disk corruption
// (as opposed to a clean node or a structural lookup failure).
func (r ScrubReport) Corrupt() bool { return errors.Is(r.Err, ErrChecksum) }

// Unreadable reports whether the scrub failed on a device media error:
// the read command itself failed, as opposed to returning bytes whose
// checksum does not verify. betrfsck maps the two to different exit codes.
func (r ScrubReport) Unreadable() bool { return errors.Is(r.Err, ioerr.ErrIO) }

// Scrub reads every node extent referenced by the current block tables of
// both trees and verifies its checksums — the whole-image CRC plus, for
// leaves, the shell and per-basement CRCs exercised via full
// deserialization. It bypasses the node cache so that each report reflects
// the bytes actually on disk right now. One report is returned per node,
// in (tree, node ID) order.
func (s *Store) Scrub() []ScrubReport {
	var reports []ScrubReport
	for _, t := range []*Tree{s.meta, s.data} {
		ids := make([]nodeID, 0, len(t.bt.entries))
		for id := range t.bt.entries {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ext := t.bt.entries[id]
			rep := ScrubReport{Tree: t.name, ID: uint64(id), Off: ext.off, Len: ext.len}
			rep.Err = s.verifyExtent(t, id, ext)
			reports = append(reports, rep)
		}
	}
	return reports
}

// ScrubOnline is Scrub under the store's mutator and structure locks, for
// scrubbing a live concurrent-mode store (the vfs Mount.Scrub hook). In
// deterministic mode the locks are no-ops and it is identical to Scrub.
func (s *Store) ScrubOnline() []ScrubReport {
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	s.lockExcl()
	defer s.unlockExcl()
	return s.Scrub()
}

// RepairStats summarizes one ScrubRepair pass.
type RepairStats struct {
	Checked      int64 // node extents scrubbed
	Bad          int64 // extents whose verification failed
	Repaired     int64 // bad extents relocated to fresh space
	Unrepairable int64 // bad extents with no recoverable image
}

// ScrubRepair scrubs both trees and relocates every bad node image it can
// recover (DESIGN.md §10.6): a readable-but-corrupt extent whose re-read
// decodes cleanly (transfer corruption), or any node with a resident cache
// copy, is rewritten to freshly allocated space and the old extent retired
// to the grown-defect list. A checkpoint then persists the new mapping and
// defect list, so repaired media errors stay repaired across remounts.
// Nodes with no recoverable image are left in place and counted
// Unrepairable; a follow-up fsck still reports them.
func (s *Store) ScrubRepair() (st RepairStats, err error) {
	defer ioerr.Guard(&err)
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	s.m.repairRun.Inc()
	s.lockExcl()
	reports := s.Scrub()
	for _, rep := range reports {
		st.Checked++
		if rep.Err == nil {
			continue
		}
		st.Bad++
		t := s.meta
		if rep.Tree == "data" {
			t = s.data
		}
		if s.repairNode(t, nodeID(rep.ID)) {
			st.Repaired++
			s.m.repairNode.Inc()
		} else {
			st.Unrepairable++
			s.m.repairFail.Inc()
		}
	}
	s.unlockExcl()
	if st.Repaired > 0 {
		// Persist the new mapping and defect list (checkpointLocked takes
		// the structure lock itself).
		s.checkpointLocked()
	}
	return st, nil
}

// repairNode tries to produce a good image for one bad node and rewrite it
// at fresh space. Recovery sources, in order: a re-read of the extent that
// decodes cleanly (the corruption was in transfer, or intermittent —
// "readable but degrading"), then a resident cache copy serialized anew.
// Runs under writerMu and the exclusive structure lock.
func (s *Store) repairNode(t *Tree, id nodeID) bool {
	ext, ok := t.bt.lookup(id)
	if !ok {
		return false
	}
	var data []byte
	img := make([]byte, ext.len)
	if rerr := t.f.SubmitRead(img, ext.off)(); rerr == nil {
		s.m.retryCorrupt.Inc()
		if n, derr := s.decodeImage(img); derr == nil && n.id == id {
			data = img
		}
	}
	if data == nil {
		// No good bytes on the media: fall back to a resident cache copy,
		// the current logical state of the node. Unloaded basements must be
		// materialized first — from the old extent, which may still succeed
		// when the corruption sits outside their ranges.
		n, ok := s.cache.lookup(t, id, false)
		if !ok {
			return false
		}
		if n.height == 0 {
			for bi, b := range n.basements {
				if b.loaded {
					continue
				}
				if lerr := s.loadBasement(t, n, ext, bi); lerr != nil {
					return false
				}
			}
		}
		ni := s.prepareNodeImage(t, n)
		data = ni.data
		s.alloc.FreeSized(ni.buf)
		n.dirty.Store(false)
	}
	ne, rerr := t.bt.relocate(id, int64(len(data)))
	if rerr != nil {
		return false // node file full; leave the mapping as it was
	}
	s.m.defectGrown.Inc()
	s.m.defectBytes.Add(ext.len)
	s.env.Trace("betree", "node.repair", t.name, ext.off)
	// completeWrite handles the new extent itself landing on bad media
	// (cascading relocation, bounded by cfg.RelocateAttempts).
	w := &inflightWrite{t: t, id: id, ext: ne, data: data, wait: t.f.SubmitWrite(data, ne.off)}
	if werr := s.completeWrite(w); werr != nil {
		return false
	}
	return true
}

// DefectStats reports the grown-defect lists of both trees combined:
// retired extent count and retired bytes.
func (s *Store) DefectStats() (count, bytes int64) {
	for _, t := range []*Tree{s.meta, s.data} {
		c, b := t.bt.defectStats()
		count += c
		bytes += b
	}
	return count, bytes
}

// verifyExtent reads one node image and runs it through the same decode
// path normal reads use, reporting any checksum or format failure.
func (s *Store) verifyExtent(t *Tree, id nodeID, ext extent) error {
	data := make([]byte, ext.len)
	if rerr := t.f.SubmitRead(data, ext.off)(); rerr != nil {
		return rerr // wraps ErrIO: a media error, not checksum corruption
	}
	s.stats.BytesRead += ext.len
	raw, err := maybeDecompressNode(s.env, data)
	if err != nil {
		return err
	}
	n, err := deserializeNode(s.env, &s.cfg, raw)
	if err != nil {
		return err
	}
	if n.id != id {
		return fmt.Errorf("node header claims id %d, block table says %d: %w", n.id, id, ErrChecksum)
	}
	return nil
}
