package betree

import (
	"errors"
	"fmt"
	"sort"

	"betrfs/internal/ioerr"
)

// ScrubReport is the verification result for one on-disk node image.
type ScrubReport struct {
	Tree string // "meta" or "data"
	ID   uint64 // node ID
	Off  int64  // extent offset within the tree's node file
	Len  int64  // extent length in bytes
	Err  error  // nil if every checksum verified; wraps ErrChecksum on corruption
}

// Corrupt reports whether the scrub result indicates on-disk corruption
// (as opposed to a clean node or a structural lookup failure).
func (r ScrubReport) Corrupt() bool { return errors.Is(r.Err, ErrChecksum) }

// Unreadable reports whether the scrub failed on a device media error:
// the read command itself failed, as opposed to returning bytes whose
// checksum does not verify. betrfsck maps the two to different exit codes.
func (r ScrubReport) Unreadable() bool { return errors.Is(r.Err, ioerr.ErrIO) }

// Scrub reads every node extent referenced by the current block tables of
// both trees and verifies its checksums — the whole-image CRC plus, for
// leaves, the shell and per-basement CRCs exercised via full
// deserialization. It bypasses the node cache so that each report reflects
// the bytes actually on disk right now. One report is returned per node,
// in (tree, node ID) order.
func (s *Store) Scrub() []ScrubReport {
	var reports []ScrubReport
	for _, t := range []*Tree{s.meta, s.data} {
		ids := make([]nodeID, 0, len(t.bt.entries))
		for id := range t.bt.entries {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ext := t.bt.entries[id]
			rep := ScrubReport{Tree: t.name, ID: uint64(id), Off: ext.off, Len: ext.len}
			rep.Err = s.verifyExtent(t, id, ext)
			reports = append(reports, rep)
		}
	}
	return reports
}

// verifyExtent reads one node image and runs it through the same decode
// path normal reads use, reporting any checksum or format failure.
func (s *Store) verifyExtent(t *Tree, id nodeID, ext extent) error {
	data := make([]byte, ext.len)
	if rerr := t.f.SubmitRead(data, ext.off)(); rerr != nil {
		return rerr // wraps ErrIO: a media error, not checksum corruption
	}
	s.stats.BytesRead += ext.len
	raw, err := maybeDecompressNode(s.env, data)
	if err != nil {
		return err
	}
	n, err := deserializeNode(s.env, &s.cfg, raw)
	if err != nil {
		return err
	}
	if n.id != id {
		return fmt.Errorf("node header claims id %d, block table says %d: %w", n.id, id, ErrChecksum)
	}
	return nil
}
