package betree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"betrfs/internal/ioerr"
)

// extent is a contiguous on-disk byte range within a tree's node file.
type extent struct {
	off int64
	len int64
}

// blockTable maps node IDs to on-disk extents, copy-on-write style
// (§2.2): node writes always allocate fresh space, and extents referenced
// by the last durable checkpoint are only recycled after the next
// checkpoint commits. The table itself is serialized into the superblock
// at each checkpoint.
type blockTable struct {
	capacity int64
	// entries is the mapping as of the running state (checkpointed
	// entries overlaid with post-checkpoint writes).
	entries map[nodeID]extent
	// checkpointed notes which node IDs were part of the last durable
	// checkpoint; their old extents must survive until the next one.
	checkpointed map[nodeID]bool
	// free is the sorted free list.
	free []extent
	// deferred holds extents that become free once the next checkpoint
	// commits.
	deferred []extent
	// defects is the grown-defect list: extents retired after a media
	// error, never returned to the free list. Persisted with the table so
	// a remount does not re-allocate known-bad space (DESIGN.md §10.6).
	defects []extent
	// onFree, when set, observes every extent the moment it returns to
	// the free list — the single point where betree space becomes dead.
	// The store uses it to hand freed extents to the device as TRIMs
	// (DESIGN.md §12). Retired (defect) extents never pass through here:
	// they are never freed, so they are never discarded.
	onFree func(extent)
}

const blockAlign = 4096

func newBlockTable(capacity int64) *blockTable {
	bt := &blockTable{
		capacity:     capacity,
		entries:      make(map[nodeID]extent),
		checkpointed: make(map[nodeID]bool),
	}
	bt.free = []extent{{off: 0, len: capacity}}
	return bt
}

func alignUp(n int64) int64 {
	return (n + blockAlign - 1) &^ (blockAlign - 1)
}

// allocate finds space for size bytes (first fit) and returns the extent.
func (bt *blockTable) allocate(size int64) (extent, error) {
	size = alignUp(size)
	for i, f := range bt.free {
		if f.len >= size {
			e := extent{off: f.off, len: size}
			if f.len == size {
				bt.free = append(bt.free[:i], bt.free[i+1:]...)
			} else {
				bt.free[i] = extent{off: f.off + size, len: f.len - size}
			}
			return e, nil
		}
	}
	return extent{}, fmt.Errorf("betree: node file full (want %d bytes): %w", size, ioerr.ErrNoSpace)
}

// release returns an extent to the free list, coalescing neighbors.
func (bt *blockTable) release(e extent) {
	i := sort.Search(len(bt.free), func(i int) bool { return bt.free[i].off > e.off })
	bt.free = append(bt.free, extent{})
	copy(bt.free[i+1:], bt.free[i:])
	bt.free[i] = e
	// Coalesce with successor, then predecessor.
	if i+1 < len(bt.free) && bt.free[i].off+bt.free[i].len == bt.free[i+1].off {
		bt.free[i].len += bt.free[i+1].len
		bt.free = append(bt.free[:i+1], bt.free[i+2:]...)
	}
	if i > 0 && bt.free[i-1].off+bt.free[i-1].len == bt.free[i].off {
		bt.free[i-1].len += bt.free[i].len
		bt.free = append(bt.free[:i], bt.free[i+1:]...)
	}
	if bt.onFree != nil {
		bt.onFree(e)
	}
}

// freeContains reports whether e lies entirely within free space. Because
// the free list never overlaps entries, deferred extents, or defects,
// containment here proves e maps no live data.
func (bt *blockTable) freeContains(e extent) bool {
	i := sort.Search(len(bt.free), func(i int) bool { return bt.free[i].off > e.off })
	if i == 0 {
		return false
	}
	f := bt.free[i-1]
	return e.off+e.len <= f.off+f.len
}

// place records a fresh extent for node id, handling the copy-on-write
// recycling rules for any previous extent.
func (bt *blockTable) place(id nodeID, e extent) {
	if old, ok := bt.entries[id]; ok {
		if bt.checkpointed[id] {
			// The last durable checkpoint still references it.
			bt.deferred = append(bt.deferred, old)
			bt.checkpointed[id] = false
		} else {
			bt.release(old)
		}
	}
	bt.entries[id] = e
}

// remove drops node id from the table (node deleted by a merge).
func (bt *blockTable) remove(id nodeID) {
	if old, ok := bt.entries[id]; ok {
		if bt.checkpointed[id] {
			bt.deferred = append(bt.deferred, old)
		} else {
			bt.release(old)
		}
		delete(bt.entries, id)
		delete(bt.checkpointed, id)
	}
}

// retire adds an extent to the grown-defect list, keeping it sorted by
// offset. Retired space is never freed: the media under it is bad.
func (bt *blockTable) retire(e extent) {
	i := sort.Search(len(bt.defects), func(i int) bool { return bt.defects[i].off > e.off })
	bt.defects = append(bt.defects, extent{})
	copy(bt.defects[i+1:], bt.defects[i:])
	bt.defects[i] = e
}

// relocate moves node id to freshly allocated space and retires its
// current extent to the defect list. Allocation happens first so an
// ENOSPC failure leaves the mapping untouched; on success the node is
// marked non-checkpointed (its new home must reach the next superblock)
// and the caller is responsible for rewriting the node image at the
// returned extent.
func (bt *blockTable) relocate(id nodeID, size int64) (extent, error) {
	old, ok := bt.entries[id]
	if !ok {
		return extent{}, fmt.Errorf("betree: relocate of unmapped node %d", id)
	}
	ne, err := bt.allocate(size)
	if err != nil {
		return extent{}, err
	}
	bt.retire(old)
	bt.checkpointed[id] = false
	bt.entries[id] = ne
	return ne, nil
}

// defectStats reports the grown-defect list size (count, bytes).
func (bt *blockTable) defectStats() (int64, int64) {
	var bytes int64
	for _, d := range bt.defects {
		bytes += d.len
	}
	return int64(len(bt.defects)), bytes
}

// lookup returns the extent of node id.
func (bt *blockTable) lookup(id nodeID) (extent, bool) {
	e, ok := bt.entries[id]
	return e, ok
}

// checkpointCommitted transitions the table after a checkpoint becomes
// durable: deferred extents become free, and the current mapping becomes
// the protected one.
func (bt *blockTable) checkpointCommitted() {
	for _, e := range bt.deferred {
		bt.release(e)
	}
	bt.deferred = bt.deferred[:0]
	bt.checkpointed = make(map[nodeID]bool, len(bt.entries))
	for id := range bt.entries {
		bt.checkpointed[id] = true
	}
}

// usedBytes reports allocated space, for df-style accounting.
func (bt *blockTable) usedBytes() int64 {
	free := int64(0)
	for _, f := range bt.free {
		free += f.len
	}
	return bt.capacity - free
}

// serialize encodes the mapping plus the grown-defect list (used at
// checkpoint time). The free list is rebuilt from both at load.
func (bt *blockTable) serialize() []byte {
	ids := make([]nodeID, 0, len(bt.entries))
	for id := range bt.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 0, 16+24*len(ids)+16*len(bt.defects))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(len(ids)))
	out = append(out, tmp[:]...)
	for _, id := range ids {
		e := bt.entries[id]
		binary.BigEndian.PutUint64(tmp[:], uint64(id))
		out = append(out, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.off))
		out = append(out, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.len))
		out = append(out, tmp[:]...)
	}
	// The defect section is appended only when non-empty: the loader
	// treats it as optional, and omitting it keeps a defect-free table
	// byte-identical to the pre-defect-list format (golden benchmark
	// cells checksum the superblock bytes' length).
	if len(bt.defects) > 0 {
		binary.BigEndian.PutUint64(tmp[:], uint64(len(bt.defects)))
		out = append(out, tmp[:]...)
		for _, d := range bt.defects {
			binary.BigEndian.PutUint64(tmp[:], uint64(d.off))
			out = append(out, tmp[:]...)
			binary.BigEndian.PutUint64(tmp[:], uint64(d.len))
			out = append(out, tmp[:]...)
		}
	}
	return out
}

// loadBlockTable reconstructs a table from its serialized form, rebuilding
// the free list from the gaps between allocated extents.
func loadBlockTable(capacity int64, data []byte) (*blockTable, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("betree: truncated block table")
	}
	n := binary.BigEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) < n*24 {
		return nil, fmt.Errorf("betree: truncated block table entries")
	}
	bt := &blockTable{
		capacity:     capacity,
		entries:      make(map[nodeID]extent, n),
		checkpointed: make(map[nodeID]bool, n),
	}
	type pair struct {
		id nodeID
		e  extent
	}
	pairs := make([]pair, 0, n)
	for i := uint64(0); i < n; i++ {
		id := nodeID(binary.BigEndian.Uint64(data))
		off := int64(binary.BigEndian.Uint64(data[8:]))
		ln := int64(binary.BigEndian.Uint64(data[16:]))
		data = data[24:]
		pairs = append(pairs, pair{id: id, e: extent{off: off, len: ln}})
	}
	for _, p := range pairs {
		bt.entries[p.id] = p.e
		bt.checkpointed[p.id] = true
	}
	// Defect section (absent in pre-defect-list superblocks).
	if len(data) >= 8 {
		dn := binary.BigEndian.Uint64(data)
		data = data[8:]
		if uint64(len(data)) < dn*16 {
			return nil, fmt.Errorf("betree: truncated block table defect list")
		}
		for i := uint64(0); i < dn; i++ {
			off := int64(binary.BigEndian.Uint64(data))
			ln := int64(binary.BigEndian.Uint64(data[8:]))
			data = data[16:]
			bt.defects = append(bt.defects, extent{off: off, len: ln})
		}
	}
	// Rebuild the free list from the gaps between allocated extents and
	// grown defects; neither may overlap anything else.
	used := make([]extent, 0, len(pairs)+len(bt.defects))
	for _, p := range pairs {
		used = append(used, p.e)
	}
	used = append(used, bt.defects...)
	sort.Slice(used, func(i, j int) bool { return used[i].off < used[j].off })
	pos := int64(0)
	for _, e := range used {
		if e.off < pos {
			return nil, fmt.Errorf("betree: overlapping extents in block table")
		}
		if e.off > pos {
			bt.free = append(bt.free, extent{off: pos, len: e.off - pos})
		}
		pos = e.off + e.len
	}
	if pos < capacity {
		bt.free = append(bt.free, extent{off: pos, len: capacity - pos})
	}
	sort.Slice(bt.defects, func(i, j int) bool { return bt.defects[i].off < bt.defects[j].off })
	return bt, nil
}
