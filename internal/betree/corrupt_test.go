package betree

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// corruptStore builds a store whose device and SFL layout are exposed, so
// tests can flip bits under specific node extents.
func corruptStore(t testing.TB, mutate func(*Config)) (*sim.Env, *blockdev.Dev, *sfl.SFL, *Store) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		panic(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.BasementSize = 4 << 10
	cfg.Fanout = 8
	cfg.CacheBytes = 8 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return env, dev, backend, s
}

// devOffset translates a tree-file-relative extent offset to a device
// offset using the SFL's static layout.
func devOffset(backend *sfl.SFL, tree string, off int64) int64 {
	l := backend.Layout()
	base := l.SuperBytes + l.LogBytes // "meta" file base
	if tree == "data" {
		base += l.MetaBytes
	}
	return base + off
}

// largestLeaf returns the scrub report of the biggest data-tree leaf —
// corrupting an interior node (in particular the root) would take down
// every descent, which is not what these tests want to observe.
func largestLeaf(t *testing.T, s *Store) ScrubReport {
	t.Helper()
	var victim ScrubReport
	for _, r := range s.Scrub() {
		if r.Tree != "data" || r.Len <= victim.Len {
			continue
		}
		n, err := s.readNode(s.data, nodeID(r.ID), nil)
		if err != nil {
			t.Fatalf("read node %d: %v", r.ID, err)
		}
		if n.isLeaf() {
			victim = r
		}
	}
	if victim.Len == 0 {
		t.Fatal("no data-tree leaves on disk")
	}
	return victim
}

func TestScrubCleanStore(t *testing.T) {
	_, _, _, s := corruptStore(t, nil)
	for i := 0; i < 3000; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	s.Checkpoint()
	reports := s.Scrub()
	if len(reports) < 4 {
		t.Fatalf("scrub saw only %d nodes", len(reports))
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("clean store: %s node %d failed scrub: %v", r.Tree, r.ID, r.Err)
		}
	}
}

// TestCorruptionSurfacesErrChecksum flips bits under a data-tree leaf and
// checks the full chain: Scrub pinpoints the node, reads surface a typed
// ErrChecksum instead of garbage, nothing panics, and untouched nodes stay
// readable.
func TestCorruptionSurfacesErrChecksum(t *testing.T) {
	_, dev, backend, s := corruptStore(t, nil)
	const nkeys = 3000
	for i := 0; i < nkeys; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	s.DropCleanCaches()

	victim := largestLeaf(t, s)
	dev.CorruptFlip(devOffset(backend, "data", victim.Off), victim.Len, 42)
	s.DropCleanCaches() // force the next reads to hit the corrupted image

	var checksumErrs, okReads int
	for i := 0; i < nkeys; i++ {
		val, ok, err := s.Data().Get(k(i))
		switch {
		case err != nil:
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("key %d: error is not ErrChecksum: %v", i, err)
			}
			checksumErrs++
		case ok:
			if !bytes.Equal(val, v(i, 128)) {
				t.Fatalf("key %d: silent wrong data", i)
			}
			okReads++
		}
	}
	if checksumErrs == 0 {
		t.Fatal("no Get surfaced ErrChecksum after corrupting a leaf")
	}
	if okReads == 0 {
		t.Fatal("corruption of one node took out every key")
	}

	corrupt := 0
	for _, r := range s.Scrub() {
		if r.Corrupt() {
			corrupt++
			if r.Tree != "data" {
				t.Fatalf("scrub flagged %s node %d, corruption was in data tree", r.Tree, r.ID)
			}
		} else if r.Err != nil {
			t.Fatalf("unexpected scrub error: %v", r.Err)
		}
	}
	if corrupt != 1 {
		t.Fatalf("scrub flagged %d nodes, want exactly the 1 corrupted", corrupt)
	}
}

// TestTornNodeDetected zeroes the tail half of a node image — the shape a
// torn write leaves behind — and checks the whole-image checksum rejects
// it with ErrChecksum rather than decoding a partial node.
func TestTornNodeDetected(t *testing.T) {
	_, dev, backend, s := corruptStore(t, nil)
	for i := 0; i < 3000; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	s.DropCleanCaches()
	victim := largestLeaf(t, s)
	dev.CorruptZero(devOffset(backend, "data", victim.Off+victim.Len/2), victim.Len-victim.Len/2)
	s.DropCleanCaches()

	err := s.verifyExtent(s.data, nodeID(victim.ID), extent{off: victim.Off, len: victim.Len})
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("torn node image not caught by checksum: %v", err)
	}
	sawErr := false
	for i := 0; i < 3000; i++ {
		if _, _, err := s.Data().Get(k(i)); err != nil {
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("key %d: %v", i, err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no read noticed the torn node")
	}
}

// TestScanSurfacesCorruption checks the range-scan path propagates
// checksum failures instead of silently truncating.
func TestScanSurfacesCorruption(t *testing.T) {
	_, dev, backend, s := corruptStore(t, nil)
	for i := 0; i < 3000; i++ {
		s.Data().Put(k(i), v(i, 128), LogAuto)
	}
	s.DropCleanCaches()
	victim := largestLeaf(t, s)
	dev.CorruptFlip(devOffset(backend, "data", victim.Off), victim.Len, 7)
	s.DropCleanCaches()
	err := s.Data().Scan(k(0), k(3000), func(_, _ []byte) bool { return true })
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("scan over corrupted leaf returned %v, want ErrChecksum", err)
	}
}

// TestBasementChecksumOnPartialRead corrupts bytes beyond the header
// region of a large leaf, so the shell still verifies and the damage is
// only visible to the per-basement checksums used by basement-granular
// partial reads.
func TestBasementChecksumOnPartialRead(t *testing.T) {
	_, dev, backend, s := corruptStore(t, func(c *Config) {
		c.NodeSize = 128 << 10
		c.BasementSize = 4 << 10
		c.CacheBytes = 64 << 20
	})
	tr := s.Data()
	const nkeys = 4000
	for i := 0; i < nkeys; i++ {
		tr.Put(k(i), v(i, 128), LogAuto)
	}
	s.DropCleanCaches()
	tr.SetSeqHint(false)

	victim := largestLeaf(t, s)
	if victim.Len <= headerRegion {
		t.Skipf("largest leaf (%d bytes) fits in the header region", victim.Len)
	}
	// Corrupt everything past the header region: shell CRC stays valid,
	// basement CRCs do not.
	dev.CorruptFlip(devOffset(backend, "data", victim.Off+headerRegion), victim.Len-headerRegion, 9)
	s.DropCleanCaches()
	tr.SetSeqHint(false)

	partialBefore := s.Stats().PartialReads
	var checksumErrs int
	for i := 0; i < nkeys; i++ {
		_, _, err := tr.Get(k(i))
		if err != nil {
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("key %d: %v", i, err)
			}
			checksumErrs++
		}
	}
	if s.Stats().PartialReads == partialBefore {
		t.Fatal("cold point queries never took the partial-read path")
	}
	if checksumErrs == 0 {
		t.Fatal("basement corruption went undetected on partial reads")
	}
}

// TestAlignedValuePartialRead covers the page-sharing section on the
// basement-granular read path: values >= alignedValueMin live in the
// 4KiB-aligned tail of the node, and resolving them during a partial read
// needs the pageBase captured from the verified header. A wrong base would
// either fail the basement checksum or return different bytes.
func TestAlignedValuePartialRead(t *testing.T) {
	_, _, _, s := corruptStore(t, func(c *Config) {
		c.NodeSize = 256 << 10
		c.BasementSize = 4 << 10
		c.CacheBytes = 64 << 20
	})
	tr := s.Data()
	const nkeys = 200
	big := func(i int) []byte {
		b := bytes.Repeat([]byte{byte(i + 1)}, alignedValueMin+512)
		copy(b, fmt.Sprintf("val-%06d", i))
		return b
	}
	for i := 0; i < nkeys; i++ {
		tr.Put(k(i), big(i), LogAuto)
	}
	s.DropCleanCaches()
	tr.SetSeqHint(false)
	partialBefore := s.Stats().PartialReads
	for i := 0; i < nkeys; i += 17 {
		val, ok, err := tr.Get(k(i))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(val, big(i)) {
			t.Fatalf("key %d: aligned value decoded wrong on partial read", i)
		}
	}
	if s.Stats().PartialReads == partialBefore {
		t.Skip("no partial reads issued (aligned values spilled the shell past the header region)")
	}
}

// TestOpenAfterSuperblockCorruption corrupts the newest superblock slot
// and checks Open falls back to the older generation instead of failing.
func TestOpenAfterSuperblockCorruption(t *testing.T) {
	env, dev, backend, s := corruptStore(t, nil)
	for i := 0; i < 500; i++ {
		s.Data().Put(k(i), v(i, 64), LogAuto)
	}
	s.Checkpoint() // generation G
	for i := 500; i < 1000; i++ {
		s.Data().Put(k(i), v(i, 64), LogAuto)
	}
	s.Checkpoint() // generation G+1 in the other slot

	// Corrupt the newest slot (generation parity picks the slot).
	slot := int64(s.generation%2) * (4 << 20)
	dev.CorruptFlip(slot+64, 256, 3)

	s2, err := Open(env, kmem.New(env, true), s.cfg, backend)
	if err != nil {
		t.Fatalf("open after superblock corruption: %v", err)
	}
	// The older generation predates keys 500..999 being checkpointed, but
	// they were logged, so replay must bring them back.
	for i := 0; i < 1000; i++ {
		val, ok, err := s2.Data().Get(k(i))
		if err != nil || !ok || !bytes.Equal(val, v(i, 64)) {
			t.Fatalf("key %d lost after superblock fallback (ok=%v err=%v)", i, ok, err)
		}
	}
}
