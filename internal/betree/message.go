// Package betree implements the write-optimized Bε-tree at the core of
// BetrFS (§2), ported from scratch rather than from TokuDB, together with
// the optimizations the paper contributes: range-message coalescing with
// directory-wide deletes feeding PacMan (§4), the revised apply-on-query
// policy (§4), cooperative memory management hooks (§5), insert-by-reference
// page sharing (§6), tree-level read-ahead (§3.2), and checkpoint/redo-log
// crash consistency (§2.2).
//
// The tree stores key-value pairs in leaves partitioned into basement
// nodes; interior nodes buffer messages per child and flush them downward
// in batches, which is what turns many small random updates into few large
// sequential I/Os.
package betree

import (
	"fmt"

	"betrfs/internal/keys"
)

// MSN is a message sequence number; all messages are totally ordered by
// MSN and are applied to leaf entries in MSN order exactly once.
type MSN uint64

// MsgType enumerates the message kinds the tree understands.
type MsgType uint8

// Message kinds. RangeDelete is the range-message primitive of §4;
// Update is a blind sub-value write (§2.1 "blind writes").
const (
	MsgInsert MsgType = iota + 1
	MsgDelete
	MsgUpdate
	MsgRangeDelete
)

// String implements fmt.Stringer for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgInsert:
		return "insert"
	case MsgDelete:
		return "delete"
	case MsgUpdate:
		return "update"
	case MsgRangeDelete:
		return "rangedelete"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// PageRef is an opaque reference to an externally owned, immutable page of
// file data — the insertByRef mechanism of §6. The VFS page cache supplies
// implementations; while a reference is held the owner must not mutate the
// underlying bytes (the VFS copies-on-write instead).
type PageRef interface {
	// Data returns the page contents. The tree treats them as immutable.
	Data() []byte
	// Len returns the page length without materializing it.
	Len() int
	// Release drops the tree's reference, re-enabling in-place writes.
	Release()
}

// Value is a message or entry payload: either inline bytes or a PageRef.
type Value struct {
	inline []byte
	ref    PageRef
}

// InlineValue wraps a byte slice as a value. The tree takes ownership of
// the slice.
func InlineValue(b []byte) Value { return Value{inline: b} }

// RefValue wraps a page reference as a value (insertByRef).
func RefValue(r PageRef) Value { return Value{ref: r} }

// IsRef reports whether the value is held by reference.
func (v Value) IsRef() bool { return v.ref != nil }

// Len returns the value size in bytes.
func (v Value) Len() int {
	if v.ref != nil {
		return v.ref.Len()
	}
	return len(v.inline)
}

// Bytes materializes the value contents. For references this does not
// copy; callers must not mutate the result.
func (v Value) Bytes() []byte {
	if v.ref != nil {
		return v.ref.Data()
	}
	return v.inline
}

// Release drops any page reference held by the value.
func (v Value) Release() {
	if v.ref != nil {
		v.ref.Release()
	}
}

// Msg is one Bε-tree message.
type Msg struct {
	Type MsgType
	MSN  MSN
	// Key targets a single pair for point messages, or the inclusive
	// lower bound for range deletes.
	Key []byte
	// EndKey is the exclusive upper bound of a range delete.
	EndKey []byte
	// Val carries the payload of inserts and updates.
	Val Value
	// Off is the byte offset within the existing value that an update
	// patches.
	Off int
}

// memBytes estimates the in-memory footprint of the message, used for
// buffer accounting and flush thresholds.
func (m *Msg) memBytes() int {
	n := 48 + len(m.Key) + len(m.EndKey)
	n += m.Val.Len()
	return n
}

// covers reports whether a range-delete message covers key.
func (m *Msg) covers(key []byte) bool {
	return m.Type == MsgRangeDelete &&
		keys.Compare(m.Key, key) <= 0 && keys.Compare(key, m.EndKey) < 0
}

// coversRange reports whether a range-delete message fully covers the key
// range [lo, hi).
func (m *Msg) coversRange(lo, hi []byte) bool {
	return m.Type == MsgRangeDelete &&
		keys.Compare(m.Key, lo) <= 0 && keys.Compare(hi, m.EndKey) <= 0
}

// overlapsRange reports whether the message affects any key in [lo, hi).
func (m *Msg) overlapsRange(lo, hi []byte) bool {
	if m.Type == MsgRangeDelete {
		return keys.Compare(m.Key, hi) < 0 && keys.Compare(lo, m.EndKey) < 0
	}
	return keys.Compare(lo, m.Key) <= 0 && keys.Compare(m.Key, hi) < 0
}
