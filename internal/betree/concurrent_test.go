package betree

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// concurrentStore builds a store in concurrent mode with background pool
// workers, the configuration DESIGN.md §9 describes. Run these tests with
// -race (make race does) — they are the repo's data-race canaries for the
// locking protocol.
func concurrentStore(t testing.TB, workers int) (*sim.Env, *Store) {
	t.Helper()
	env := sim.NewEnv(1)
	env.Pool.SetWorkers(workers)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		panic(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.BasementSize = 4 << 10
	cfg.Fanout = 8
	cfg.CacheBytes = 4 << 20
	cfg.Concurrent = true
	cfg.LegacyApplyOnQuery = false
	s, err := Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return env, s
}

func ck(client, i int) []byte { return []byte(fmt.Sprintf("c%02d/key-%06d", client, i)) }

func cv(client, i int) []byte {
	return bytes.Repeat([]byte{byte(client*31 + i)}, 24+i%17)
}

// TestConcurrentCursorStress runs N client goroutines against one tree,
// each owning a disjoint key prefix and checking every read against its
// private oracle map: mixed injects, deletes, point queries, and range
// scans, with the background flusher pool active. Interior restructuring
// (flush, split) triggered by any client must never corrupt what another
// client observes.
func TestConcurrentCursorStress(t *testing.T) {
	const clients = 8
	const ops = 600
	_, s := concurrentStore(t, 3)
	tr := s.Data()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			oracle := map[string][]byte{}
			fail := func(format string, args ...any) {
				if errs[c] == nil {
					errs[c] = fmt.Errorf(format, args...)
				}
			}
			for i := 0; i < ops; i++ {
				key := ck(c, i)
				val := cv(c, i)
				tr.Put(key, val, LogAuto)
				oracle[string(key)] = val
				if i%11 == 5 {
					dk := ck(c, i-3)
					tr.Delete(dk, LogAuto)
					delete(oracle, string(dk))
				}
				if i%7 == 3 {
					gk := ck(c, i/2)
					got, ok, err := tr.Get(gk)
					if err != nil {
						fail("client %d: Get(%s): %v", c, gk, err)
						return
					}
					want, inOracle := oracle[string(gk)]
					if ok != inOracle || (ok && !bytes.Equal(got, want)) {
						fail("client %d: Get(%s) = %q,%v, oracle %q,%v", c, gk, got, ok, want, inOracle)
						return
					}
				}
				if i%97 == 41 {
					// Scan the client's whole prefix and diff against the
					// oracle; other clients' keys must never leak in.
					lo := []byte(fmt.Sprintf("c%02d/", c))
					hi := []byte(fmt.Sprintf("c%02d0", c)) // '0' > '/'
					seen := map[string]bool{}
					err := tr.Scan(lo, hi, func(k, v []byte) bool {
						want, inOracle := oracle[string(k)]
						if !inOracle {
							fail("client %d: scan surfaced unexpected key %q", c, k)
							return false
						}
						if !bytes.Equal(v, want) {
							fail("client %d: scan value mismatch at %q", c, k)
							return false
						}
						seen[string(k)] = true
						return true
					})
					if err != nil {
						fail("client %d: scan: %v", c, err)
						return
					}
					if errs[c] != nil {
						return
					}
					if len(seen) != len(oracle) {
						fail("client %d: scan saw %d keys, oracle has %d", c, len(seen), len(oracle))
						return
					}
				}
			}
			// Final full check of this client's keyspace.
			for ks, want := range oracle {
				got, ok, err := tr.Get([]byte(ks))
				if err != nil || !ok || !bytes.Equal(got, want) {
					fail("client %d: final Get(%s) = %q,%v,%v", c, ks, got, ok, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count([]byte("c"), []byte("d")) == 0 {
		t.Fatal("tree empty after stress run")
	}
}

// TestConcurrentCheckpointDurability checks the background-flusher half of
// the protocol end to end: concurrent writers race the flusher pool, then
// a checkpoint (which drains the pool before taking the structure lock)
// makes everything durable, and a reopen over the same backend must see
// every key.
func TestConcurrentCheckpointDurability(t *testing.T) {
	const clients = 4
	const perClient = 1200
	env := sim.NewEnv(1)
	env.Pool.SetWorkers(3)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	backend, berr := sfl.NewDefault(env, dev)
	if berr != nil {
		panic(berr)
	}
	cfg := DefaultConfig()
	cfg.NodeSize = 64 << 10
	cfg.BasementSize = 4 << 10
	cfg.Fanout = 8
	cfg.CacheBytes = 4 << 20
	cfg.Concurrent = true
	cfg.LegacyApplyOnQuery = false
	alloc := kmem.New(env, true)
	s, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				s.Data().Put(ck(c, i), cv(c, i), LogAuto)
			}
		}(c)
	}
	wg.Wait()
	s.Checkpoint()

	s2, err := Open(env, alloc, cfg, backend)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for c := 0; c < clients; c++ {
		for i := 0; i < perClient; i += 17 {
			got, ok, err := s2.Data().Get(ck(c, i))
			if err != nil || !ok || !bytes.Equal(got, cv(c, i)) {
				t.Fatalf("client %d key %d lost across concurrent checkpoint+reopen (ok=%v err=%v)", c, i, ok, err)
			}
		}
	}
	if got := s2.Data().Count(nil, nil); got != clients*perClient {
		t.Fatalf("count after reopen = %d, want %d", got, clients*perClient)
	}
}

// TestDeterministicModeTakesNoLocks pins the zero-cost contract of the
// default mode: with Concurrent off, the lock helpers never touch their
// counters, so the deterministic path is provably lock-free (and golden
// cells cannot be perturbed by the concurrency layer).
func TestDeterministicModeTakesNoLocks(t *testing.T) {
	env, s := testStore(t, nil)
	tr := s.Meta()
	for i := 0; i < 500; i++ {
		tr.Put(k(i), v(i, 40), LogAuto)
	}
	for i := 0; i < 500; i += 7 {
		if _, ok, _ := tr.Get(k(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	tr.Scan(nil, nil, func(_, _ []byte) bool { return true })
	s.Checkpoint()
	snap := env.Metrics.Snapshot()
	for _, name := range []string{
		"betree.lock.store.shared", "betree.lock.store.excl",
		"betree.lock.node.shared", "betree.lock.node.excl",
		"flusher.writeback.bg", "flusher.flush.bg",
	} {
		if n := snap.Counters[name]; n != 0 {
			t.Errorf("deterministic mode incremented %s to %d", name, n)
		}
	}
}

// TestConcurrentModeTakesLocks is the positive control for the test
// above: in concurrent mode the same workload must actually exercise the
// locking protocol.
func TestConcurrentModeTakesLocks(t *testing.T) {
	env, s := concurrentStore(t, 2)
	tr := s.Data()
	for i := 0; i < 500; i++ {
		tr.Put(k(i), v(i, 40), LogAuto)
	}
	for i := 0; i < 500; i += 7 {
		if _, ok, _ := tr.Get(k(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	s.Checkpoint()
	snap := env.Metrics.Snapshot()
	if snap.Counters["betree.lock.store.shared"] == 0 {
		t.Error("concurrent mode never took the shared structure lock")
	}
	if snap.Counters["betree.lock.node.excl"] == 0 {
		t.Error("concurrent mode never latched a node exclusively")
	}
}
