package betree

import (
	"container/list"

	"betrfs/internal/metrics"
)

// cacheKey identifies a node across the trees sharing one cache.
type cacheKey struct {
	tree *Tree
	id   nodeID
}

// nodeCache is the cachetable: an LRU of decoded nodes shared by the
// metadata and data trees, bounded by a byte budget. Dirty nodes are
// written back (copy-on-write) on eviction; clean nodes are dropped.
type nodeCache struct {
	budget  int64
	used    int64
	lru     *list.List // front = most recently used
	entries map[cacheKey]*list.Element

	// writeNode is provided by the Store.
	writeNode func(t *Tree, n *node)

	hits, misses, evictions, dirtyEvictions int64

	// Registry counters, set by Store.Open right after construction.
	mHit, mMiss, mEvict, mEvictDirty *metrics.Counter
}

type cacheEntry struct {
	key  cacheKey
	node *node
}

func newNodeCache(budget int64, writeNode func(*Tree, *node)) *nodeCache {
	zero := &metrics.Counter{}
	return &nodeCache{
		budget:      budget,
		lru:         list.New(),
		entries:     make(map[cacheKey]*list.Element),
		writeNode:   writeNode,
		mHit:        zero,
		mMiss:       zero,
		mEvict:      zero,
		mEvictDirty: zero,
	}
}

// get returns the cached node and pins it hot in the LRU.
func (c *nodeCache) get(t *Tree, id nodeID) (*node, bool) {
	el, ok := c.entries[cacheKey{t, id}]
	if !ok {
		c.misses++
		c.mMiss.Inc()
		return nil, false
	}
	c.hits++
	c.mHit.Inc()
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).node, true
}

// put inserts a node, evicting as needed to stay within budget.
func (c *nodeCache) put(t *Tree, n *node) {
	key := cacheKey{t, n.id}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.used -= int64(old.node.memSize)
		old.node = n
		c.used += int64(n.computeMemSize())
		c.lru.MoveToFront(el)
		c.evictTo(c.budget)
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: key, node: n})
	c.entries[key] = el
	c.used += int64(n.computeMemSize())
	c.evictTo(c.budget)
}

// resize recomputes a node's footprint after mutation.
func (c *nodeCache) resize(t *Tree, n *node) {
	if el, ok := c.entries[cacheKey{t, n.id}]; ok {
		c.used -= int64(n.memSize)
		c.used += int64(n.computeMemSize())
		_ = el
	}
}

// remove drops a node without writeback (deleted by merges).
func (c *nodeCache) remove(t *Tree, id nodeID) {
	key := cacheKey{t, id}
	if el, ok := c.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		c.used -= int64(ce.node.memSize)
		ce.node.releaseRefs()
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// evictTo evicts cold, unpinned nodes until used <= target.
func (c *nodeCache) evictTo(target int64) {
	el := c.lru.Back()
	for el != nil && c.used > target {
		prev := el.Prev()
		ce := el.Value.(*cacheEntry)
		if ce.node.pins > 0 {
			el = prev
			continue
		}
		if ce.node.dirty {
			c.dirtyEvictions++
			c.mEvictDirty.Inc()
			c.writeNode(ce.key.tree, ce.node)
		}
		c.evictions++
		c.mEvict.Inc()
		c.used -= int64(ce.node.memSize)
		ce.node.releaseRefs()
		c.lru.Remove(el)
		delete(c.entries, ce.key)
		el = prev
	}
}

// dirtyNodes returns all dirty cached nodes of tree t (checkpoint sweep).
func (c *nodeCache) dirtyNodes(t *Tree) []*node {
	var out []*node
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ce := el.Value.(*cacheEntry)
		if ce.key.tree == t && ce.node.dirty {
			out = append(out, ce.node)
		}
	}
	return out
}

// dropAll empties the cache without writeback (crash simulation).
func (c *nodeCache) dropAll() {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*cacheEntry).node.releaseRefs()
	}
	c.lru.Init()
	c.entries = make(map[cacheKey]*list.Element)
	c.used = 0
}
