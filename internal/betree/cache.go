package betree

import (
	"container/list"
	"sync"

	"betrfs/internal/ioerr"
	"betrfs/internal/metrics"
)

// cacheKey identifies a node across the trees sharing one cache.
type cacheKey struct {
	tree *Tree
	id   nodeID
}

// nodeCache is the cachetable: an LRU of decoded nodes shared by the
// metadata and data trees, bounded by a byte budget.
//
// The cache is split into power-of-two lock-striped shards, each with its
// own mutex, LRU list, and slice of the byte budget, so concurrent readers
// on different nodes never contend on one lock (DESIGN.md §9). A
// deterministic single-goroutine store uses exactly one shard, which makes
// the eviction order — and therefore every golden benchmark number —
// identical to the historical single-LRU implementation.
//
// Dirty-node writeback on eviction has two policies:
//   - inline (deterministic mode): the evicting caller writes the node
//     back synchronously via writeNode, exactly as before;
//   - deferred (concurrent mode): dirty nodes are never evicted by
//     readers — they are skipped like pinned nodes and onDirtyPressure is
//     invoked so the store can schedule a background writeback on the
//     flusher pool. Readers therefore never touch the block table or the
//     write path, which keeps the lock protocol small.
type nodeCache struct {
	shards []*cacheShard
	mask   uint64

	// writeNode is provided by the Store (inline writeback).
	writeNode func(t *Tree, n *node)
	// deferDirty selects the deferred policy; onDirtyPressure (may be
	// nil) is called, outside the shard lock, after an eviction sweep
	// skipped at least one dirty node.
	deferDirty      bool
	onDirtyPressure func()

	// Registry counters, set by Store.Open right after construction.
	mHit, mMiss, mEvict, mEvictDirty, mDeferred *metrics.Counter
}

// cacheShard is one lock stripe: a fraction of the budget with its own LRU.
type cacheShard struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	lru     *list.List // front = most recently used
	entries map[cacheKey]*list.Element

	hits, misses, evictions, dirtyEvictions int64
}

type cacheEntry struct {
	key  cacheKey
	node *node
}

// newNodeCache builds a cache with the given total budget split over
// shards lock stripes (rounded up to a power of two; values below two
// collapse to the deterministic single-shard layout).
func newNodeCache(budget int64, shards int, writeNode func(*Tree, *node)) *nodeCache {
	n := 1
	for n < shards {
		n <<= 1
	}
	zero := &metrics.Counter{}
	c := &nodeCache{
		shards:      make([]*cacheShard, n),
		mask:        uint64(n - 1),
		writeNode:   writeNode,
		mHit:        zero,
		mMiss:       zero,
		mEvict:      zero,
		mEvictDirty: zero,
		mDeferred:   zero,
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			budget:  budget / int64(n),
			lru:     list.New(),
			entries: make(map[cacheKey]*list.Element),
		}
	}
	return c
}

// shardFor routes a key to its stripe by hashing the node ID and a
// per-tree salt (trees sharing the cache must not collide per-ID).
func (c *nodeCache) shardFor(t *Tree, id nodeID) *cacheShard {
	h := (uint64(id)*0x9e3779b97f4a7c15 ^ t.cacheSalt) >> 16
	return c.shards[h&c.mask]
}

// lookup returns the cached node, counting the hit or miss and refreshing
// LRU position. With pin set the node is pinned under the shard lock, so
// no eviction can slip between lookup and pin (the historical get-then-pin
// race).
func (c *nodeCache) lookup(t *Tree, id nodeID, pin bool) (*node, bool) {
	sh := c.shardFor(t, id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[cacheKey{t, id}]
	if !ok {
		sh.misses++
		c.mMiss.Inc()
		return nil, false
	}
	sh.hits++
	c.mHit.Inc()
	sh.lru.MoveToFront(el)
	n := el.Value.(*cacheEntry).node
	if pin {
		n.pins.Add(1)
	}
	return n, true
}

// insertPinned adds a freshly read node that the caller has already
// pinned. If another goroutine cached the same node first (a concurrent
// read miss), the existing node wins: it is pinned and returned, and the
// caller's duplicate is discarded.
func (c *nodeCache) insertPinned(t *Tree, n *node) *node {
	key := cacheKey{t, n.id}
	sh := c.shardFor(t, n.id)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		won := el.Value.(*cacheEntry).node
		won.pins.Add(1)
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		n.releaseRefs()
		return won
	}
	el := sh.lru.PushFront(&cacheEntry{key: key, node: n})
	sh.entries[key] = el
	sh.used += int64(n.computeMemSize())
	pressure, evErr := c.evictShard(sh, sh.budget)
	sh.mu.Unlock()
	c.dirtyPressure(pressure)
	ioerr.Check(evErr)
	return n
}

// put inserts (or replaces) a node, evicting as needed to stay within the
// shard's budget. Used by structural code paths that manage pins
// themselves; concurrent read misses use insertPinned.
func (c *nodeCache) put(t *Tree, n *node) {
	key := cacheKey{t, n.id}
	sh := c.shardFor(t, n.id)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		sh.used -= int64(old.node.memSize)
		old.node = n
		sh.used += int64(n.computeMemSize())
		sh.lru.MoveToFront(el)
		pressure, evErr := c.evictShard(sh, sh.budget)
		sh.mu.Unlock()
		c.dirtyPressure(pressure)
		ioerr.Check(evErr)
		return
	}
	el := sh.lru.PushFront(&cacheEntry{key: key, node: n})
	sh.entries[key] = el
	sh.used += int64(n.computeMemSize())
	pressure, evErr := c.evictShard(sh, sh.budget)
	sh.mu.Unlock()
	c.dirtyPressure(pressure)
	ioerr.Check(evErr)
}

// resize recomputes a node's footprint after mutation.
func (c *nodeCache) resize(t *Tree, n *node) {
	sh := c.shardFor(t, n.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[cacheKey{t, n.id}]; ok {
		sh.used -= int64(n.memSize)
		sh.used += int64(n.computeMemSize())
	}
}

// remove drops a node without writeback (deleted by merges).
func (c *nodeCache) remove(t *Tree, id nodeID) {
	sh := c.shardFor(t, id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := cacheKey{t, id}
	if el, ok := sh.entries[key]; ok {
		ce := el.Value.(*cacheEntry)
		sh.used -= int64(ce.node.memSize)
		ce.node.releaseRefs()
		sh.lru.Remove(el)
		delete(sh.entries, key)
	}
}

// evictShard evicts cold, unpinned nodes until used <= target, with the
// shard lock held. Returns whether a dirty node was skipped under the
// deferred policy (the caller reports pressure outside the lock), and the
// first write-back failure — which the caller must re-raise only after
// releasing the shard lock, or the mutex would stay held forever.
func (c *nodeCache) evictShard(sh *cacheShard, target int64) (dirtySkipped bool, failed error) {
	el := sh.lru.Back()
	for el != nil && sh.used > target {
		prev := el.Prev()
		ce := el.Value.(*cacheEntry)
		if ce.node.pins.Load() > 0 {
			el = prev
			continue
		}
		if ce.node.dirty.Load() {
			if c.deferDirty {
				// Readers never write back: leave the node cached (over
				// budget) and let the flusher clean it.
				c.mDeferred.Inc()
				dirtySkipped = true
				el = prev
				continue
			}
			if werr := c.tryWriteNode(ce.key.tree, ce.node); werr != nil {
				// Write-back failed (device error or node file full):
				// evicting would silently discard the dirty state, so the
				// node stays cached over budget and the error surfaces
				// once the sweep finishes.
				if failed == nil {
					failed = werr
				}
				el = prev
				continue
			}
			sh.dirtyEvictions++
			c.mEvictDirty.Inc()
		}
		sh.evictions++
		c.mEvict.Inc()
		sh.used -= int64(ce.node.memSize)
		ce.node.releaseRefs()
		sh.lru.Remove(el)
		delete(sh.entries, ce.key)
		el = prev
	}
	return dirtySkipped, failed
}

// tryWriteNode runs the inline write-back callback, converting an abort
// (device failure, node file full) into an error so the eviction sweep
// can keep the node and release its shard lock before re-raising.
func (c *nodeCache) tryWriteNode(t *Tree, n *node) (err error) {
	defer ioerr.Guard(&err)
	c.writeNode(t, n)
	return nil
}

func (c *nodeCache) dirtyPressure(pressure bool) {
	if pressure && c.onDirtyPressure != nil {
		c.onDirtyPressure()
	}
}

// dirtyNodes returns all dirty cached nodes of tree t (checkpoint sweep),
// shard by shard in LRU order.
func (c *nodeCache) dirtyNodes(t *Tree) []*node {
	var out []*node
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			ce := el.Value.(*cacheEntry)
			if ce.key.tree == t && ce.node.dirty.Load() {
				out = append(out, ce.node)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// dropAll empties the cache without writeback (crash simulation).
func (c *nodeCache) dropAll() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			el.Value.(*cacheEntry).node.releaseRefs()
		}
		sh.lru.Init()
		sh.entries = make(map[cacheKey]*list.Element)
		sh.used = 0
		sh.mu.Unlock()
	}
}
