package betree

import (
	"sort"
	"sync/atomic"

	"betrfs/internal/ioerr"
	"betrfs/internal/keys"
)

// Scan iterates all live key-value pairs in [lo, hi) in key order, calling
// fn for each; fn returning false stops the scan. hi == nil means
// unbounded. A corrupted node or basement encountered mid-scan stops the
// iteration and surfaces an error wrapping ErrChecksum; pairs already
// yielded remain valid.
//
// Scans materialize each basement they traverse: pending messages from the
// root-to-leaf path are applied to the in-memory basement (bumping its
// maxApplied watermark) exactly like apply-on-query, which is how BetrFS
// serves range queries from a consistent view while leaving the on-disk
// tree untouched (§2.1, §4). With read-ahead enabled, the next leaf is
// prefetched while the current one is consumed (§3.2).
//
// Concurrency: each leaf is visited under the shared structure lock with
// the root-to-leaf path latched (interior nodes shared, the leaf
// exclusive, since materialization mutates basements); the lock is
// released between leaves so injects and flushes can interleave with a
// long scan. fn runs with those latches held and therefore must not
// re-enter the tree (Get/Put/Scan on the same store would self-deadlock).
func (t *Tree) Scan(lo, hi []byte, fn func(k, v []byte) bool) (err error) {
	// The guard catches aborts raised below scanLeaf — e.g. a cache
	// eviction whose inline write-back hits a device failure.
	defer ioerr.Guard(&err)
	atomic.AddInt64(&t.stats.Scans, 1)
	s := t.store
	s.m.queryScan.Inc()
	cursor := lo
	if cursor == nil {
		cursor = []byte{}
	}
	for {
		if hi != nil && keys.Compare(cursor, hi) >= 0 {
			return nil
		}
		leafHi, more, err := t.scanLeaf(cursor, hi, fn)
		if err != nil {
			return err
		}
		if !more || leafHi == nil {
			return nil
		}
		cursor = leafHi
		_ = s
	}
}

// scanLeaf processes the leaf containing key cursor, returning the leaf's
// upper bound (nil when it is the rightmost leaf) and whether iteration
// should continue.
func (t *Tree) scanLeaf(cursor, hi []byte, fn func(k, v []byte) bool) ([]byte, bool, error) {
	s := t.store
	s.lockShared()
	defer s.unlockShared()
	var path []pathEl
	var llo, lhi []byte
	n, err := t.fetch(t.rootID, nil)
	if err != nil {
		return nil, false, err
	}
	if n.isLeaf() {
		s.latchExcl(n)
	} else {
		s.latchShared(n)
	}
	defer func() {
		for _, pe := range path {
			s.unlatchShared(pe.n)
			t.unpin(pe.n)
		}
		if n.isLeaf() {
			s.unlatchExcl(n)
		} else {
			s.unlatchShared(n)
		}
		t.unpin(n)
	}()
	for !n.isLeaf() {
		ci := n.childFor(s.env, cursor)
		child, err := t.fetch(n.children[ci], nil)
		if err != nil {
			return nil, false, err
		}
		if child.isLeaf() {
			s.latchExcl(child)
		} else {
			s.latchShared(child)
		}
		llo, lhi = n.childRange(ci, llo, lhi)
		path = append(path, pathEl{n, ci})
		n = child
	}
	// Prefetch the next leaf while this one is consumed.
	if s.cfg.ReadAhead {
		for i := len(path) - 1; i >= 0; i-- {
			pe := path[i]
			if pe.ci+1 < len(pe.n.children) {
				s.prefetch(t, pe.n.children[pe.ci+1])
				break
			}
		}
	}

	// Materialize the basements overlapping [cursor, hi) against the
	// path's pending messages; basements outside the requested range are
	// left untouched (and unread, for partially loaded leaves).
	for bi := range n.basements {
		b := n.basements[bi]
		blo, bhi := basementRange(n, bi, llo, lhi)
		if keys.Compare(bhi, cursor) <= 0 {
			continue // entirely below the scan start
		}
		if hi != nil && keys.Compare(blo, hi) >= 0 {
			break // entirely above the scan end
		}
		if err := t.ensureBasement(n, bi); err != nil {
			return nil, false, err
		}
		var msgs []*Msg
		for _, pe := range path {
			msgs = pe.n.bufs[pe.ci].collectRange(s.env, blo, bhi, b.maxApplied, msgs)
		}
		if len(msgs) == 0 {
			continue
		}
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].MSN < msgs[j].MSN })
		for _, m := range msgs {
			// Messages stay live in ancestor buffers, so apply clones.
			n.applyToBasement(s.env, bi, cloneForSharedApply(s.env, clipToBasement(m, blo, bhi)), false)
		}
		s.cache.resize(t, n)
	}

	// Yield entries within [cursor, hi).
	for bi, b := range n.basements {
		blo, bhi := basementRange(n, bi, llo, lhi)
		if keys.Compare(bhi, cursor) <= 0 {
			continue
		}
		if hi != nil && keys.Compare(blo, hi) >= 0 {
			return lhi, false, nil
		}
		for i := range b.entries {
			e := &b.entries[i]
			s.env.Compare(len(cursor))
			if keys.Compare(e.key, cursor) < 0 {
				continue
			}
			if hi != nil && keys.Compare(e.key, hi) >= 0 {
				return lhi, false, nil
			}
			if !fn(e.key, e.val.Bytes()) {
				return lhi, false, nil
			}
		}
	}
	return lhi, true, nil
}

// clipToBasement narrows a range delete to the basement's bounds so that
// the per-basement maxApplied guard reflects exactly what was applied. The
// original message object is never mutated (it is shared with ancestors).
func clipToBasement(m *Msg, blo, bhi []byte) *Msg {
	if m.Type != MsgRangeDelete {
		return m
	}
	c := *m
	if keys.Compare(c.Key, blo) < 0 {
		c.Key = blo
	}
	if keys.Compare(bhi, c.EndKey) < 0 {
		c.EndKey = bhi
	}
	return &c
}

// Count returns the number of live pairs in [lo, hi); mainly for tests
// and tools. Corruption mid-scan truncates the count (use Scan directly
// for the error).
func (t *Tree) Count(lo, hi []byte) int {
	n := 0
	_ = t.Scan(lo, hi, func(_, _ []byte) bool { n++; return true })
	return n
}
