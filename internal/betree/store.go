package betree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"betrfs/internal/ioerr"
	"betrfs/internal/kmem"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
	"betrfs/internal/stor"
	"betrfs/internal/wal"
)

// Backend provides the named storage files the key-value store needs: the
// Simple File Layer exposes exactly these (§3.1), and the stacked
// southbound emulates them over ext4.
type Backend interface {
	// File returns the named file. Required names: "super", "log",
	// "meta", "data".
	File(name string) stor.File
}

// StoreStats aggregates store-level counters. Fields are updated with
// atomic adds; read them only after the operations of interest have
// quiesced.
type StoreStats struct {
	NodesWritten   int64
	NodesRead      int64
	BasementsRead  int64
	PartialReads   int64
	BytesWritten   int64
	BytesRead      int64
	Checkpoints    int64
	Prefetches     int64
	PrefetchHits   int64
	PacmanScans    int64
	PacmanDrops    int64
	ApplyOnQuery   int64
	Flushes        int64
	LeafSplits     int64
	InternalSplits int64
}

// Store is the in-kernel write-optimized key-value store: two Bε-trees
// (metadata and data indexes) sharing a node cache, a redo log, and a
// checkpointing protocol (§2.2).
type Store struct {
	env   *sim.Env
	alloc *kmem.Allocator
	cfg   Config

	backend Backend
	log     *wal.Log
	superF  stor.File

	meta *Tree
	data *Tree

	cache   *nodeCache
	pending map[cacheKey]*pendingRead
	// inflight holds node writes not yet waited on, so serialization CPU
	// overlaps device writes; barriers drain it. Each entry keeps the
	// image and target extent so a failed write can be relocated and
	// retried (DESIGN.md §10.6).
	inflight []*inflightWrite

	nextMSN        MSN
	generation     uint64
	lastCheckpoint time.Duration
	// OnLogPressure, when set, is invoked before retrying a log append
	// that failed for space, giving the northbound a chance to release
	// conditional-logging pins that block reclamation (§3.3).
	OnLogPressure func()
	// unloggedData is set when a bulk value entered the tree without its
	// payload in the log; full durability then requires a checkpoint.
	unloggedData bool

	stats StoreStats
	m     storeMetrics

	// ioErr latches the first device write/flush failure seen anywhere in
	// the store (including background pool tasks, whose panics never reach
	// a caller). Checkpoints and syncs re-raise it so the northbound learns
	// about failures that first fired on a background path. Read errors and
	// ErrNoSpace are never latched: both are recoverable.
	ioErrMu sync.Mutex
	ioErr   error

	// --- concurrency state (DESIGN.md §9) -------------------------------
	//
	// concurrent mirrors cfg.Concurrent. When false — the deterministic
	// single-goroutine mode every golden benchmark runs in — none of the
	// locks below is ever touched: the gated helpers (lockShared etc.)
	// return immediately, so the deterministic execution is the
	// historical lock-free code path, instruction for instruction.
	concurrent bool
	// treeMu is the structure lock: held shared by queries and scans,
	// exclusively by root flushes, splits, checkpoints, and background
	// writeback. Structural tree state (rootID, pivots/children arrays,
	// the block tables, inflight) changes only under the exclusive mode.
	treeMu sync.RWMutex
	// writerMu serializes mutators end-to-end across log append, MSN
	// assignment, and tree insertion, so WAL order, MSN order, and
	// arrival order at every buffer agree (see Tree.logAndInsert).
	// Lock order: writerMu before treeMu.
	writerMu sync.Mutex
	// pendingMu guards the pending prefetch map. Leaf-rank in the lock
	// order: nothing else is acquired while it is held.
	pendingMu sync.Mutex
	// wbQueued dedups background writeback requests.
	wbQueued atomic.Bool
}

// storeMetrics holds the store's registry instruments, resolved once at
// Open so hot paths pay a single atomic add per event.
type storeMetrics struct {
	msgInject     *metrics.Counter
	msgFlush      *metrics.Counter
	msgPushed     *metrics.Counter
	nodeWrite     *metrics.Counter
	nodeRead      *metrics.Counter
	nodePartial   *metrics.Counter
	basementRead  *metrics.Counter
	bytesWritten  *metrics.Counter
	bytesRead     *metrics.Counter
	checkpoint    *metrics.Counter
	prefetchIssue *metrics.Counter
	prefetchHit   *metrics.Counter
	flushRun      *metrics.Counter
	flushRestore  *metrics.Counter
	applyOnQuery  *metrics.Counter
	pacmanScan    *metrics.Counter
	pacmanDrop    *metrics.Counter
	leafSplit     *metrics.Counter
	internalSplit *metrics.Counter
	queryGet      *metrics.Counter
	queryScan     *metrics.Counter
	retryCorrupt  *metrics.Counter

	defectGrown    *metrics.Counter
	defectBytes    *metrics.Counter
	defectRelocate *metrics.Counter
	repairRun      *metrics.Counter
	repairNode     *metrics.Counter
	repairFail     *metrics.Counter

	discardCount    *metrics.Counter
	discardBytes    *metrics.Counter
	discardRejected *metrics.Counter

	lockStoreShared *metrics.Counter
	lockStoreExcl   *metrics.Counter
	lockNodeShared  *metrics.Counter
	lockNodeExcl    *metrics.Counter
	wbBackground    *metrics.Counter
	flushBackground *metrics.Counter
}

func resolveStoreMetrics(reg *metrics.Registry) storeMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return storeMetrics{
		msgInject:     reg.Counter("betree.msg.inject"),
		msgFlush:      reg.Counter("betree.msg.flush"),
		msgPushed:     reg.Counter("betree.msg.pushed"),
		nodeWrite:     reg.Counter("betree.node.write"),
		nodeRead:      reg.Counter("betree.node.read"),
		nodePartial:   reg.Counter("betree.node.partialread"),
		basementRead:  reg.Counter("betree.basement.read"),
		bytesWritten:  reg.Counter("betree.bytes.written"),
		bytesRead:     reg.Counter("betree.bytes.read"),
		checkpoint:    reg.Counter("betree.checkpoint.run"),
		prefetchIssue: reg.Counter("betree.prefetch.issue"),
		prefetchHit:   reg.Counter("betree.prefetch.hit"),
		flushRun:      reg.Counter("betree.flush.run"),
		flushRestore:  reg.Counter("betree.flush.restore"),
		applyOnQuery:  reg.Counter("betree.applyonquery.run"),
		pacmanScan:    reg.Counter("betree.pacman.scan"),
		pacmanDrop:    reg.Counter("betree.pacman.drop"),
		leafSplit:     reg.Counter("betree.leaf.split"),
		internalSplit: reg.Counter("betree.internal.split"),
		queryGet:      reg.Counter("betree.query.get"),
		queryScan:     reg.Counter("betree.query.scan"),
		retryCorrupt:  reg.Counter("io.retry.corrupt"),

		defectGrown:    reg.Counter("io.defect.grown"),
		defectBytes:    reg.Counter("io.defect.bytes"),
		defectRelocate: reg.Counter("io.defect.relocate.write"),
		repairRun:      reg.Counter("scrub.repair.run"),
		repairNode:     reg.Counter("scrub.repair.node"),
		repairFail:     reg.Counter("scrub.repair.fail"),

		discardCount:    reg.Counter("betree.discard.count"),
		discardBytes:    reg.Counter("betree.discard.bytes"),
		discardRejected: reg.Counter("betree.discard.rejected"),

		lockStoreShared: reg.Counter("betree.lock.store.shared"),
		lockStoreExcl:   reg.Counter("betree.lock.store.excl"),
		lockNodeShared:  reg.Counter("betree.lock.node.shared"),
		lockNodeExcl:    reg.Counter("betree.lock.node.excl"),
		wbBackground:    reg.Counter("flusher.writeback.bg"),
		flushBackground: reg.Counter("flusher.flush.bg"),
	}
}

// --- locking protocol -------------------------------------------------------
//
// Every lock operation in the betree package funnels through the gated
// helpers below. In deterministic mode (cfg.Concurrent off) they are
// no-ops, so single-goroutine runs take zero locks and match the
// historical execution exactly. The betree.lock.* counters therefore read
// zero in deterministic mode and count acquisitions in concurrent mode.

// lockShared takes the structure lock shared (queries, scans).
func (s *Store) lockShared() {
	if !s.concurrent {
		return
	}
	s.treeMu.RLock()
	s.m.lockStoreShared.Inc()
}

func (s *Store) unlockShared() {
	if !s.concurrent {
		return
	}
	s.treeMu.RUnlock()
}

// lockExcl takes the structure lock exclusively (flush, split,
// checkpoint, writeback). Background pool tasks must use tryLockExcl
// instead: a task blocking here could deadlock a checkpoint that drains
// the pool while holding the lock.
func (s *Store) lockExcl() {
	if !s.concurrent {
		return
	}
	s.treeMu.Lock()
	s.m.lockStoreExcl.Inc()
}

// tryLockExcl is the non-blocking lockExcl for pool tasks; the work is
// re-triggerable, so a failed acquisition just drops it.
func (s *Store) tryLockExcl() bool {
	if !s.concurrent {
		return true
	}
	if !s.treeMu.TryLock() {
		return false
	}
	s.m.lockStoreExcl.Inc()
	return true
}

func (s *Store) unlockExcl() {
	if !s.concurrent {
		return
	}
	s.treeMu.Unlock()
}

// latchShared read-latches one node (descent through interior nodes).
// Latches are acquired strictly top-down and only while the structure
// lock is held, shared or exclusive.
func (s *Store) latchShared(n *node) {
	if !s.concurrent {
		return
	}
	n.latch.RLock()
	s.m.lockNodeShared.Inc()
}

func (s *Store) unlatchShared(n *node) {
	if !s.concurrent {
		return
	}
	n.latch.RUnlock()
}

// latchExcl write-latches one node (buffer appends at the root, leaf
// mutation by queries and scans).
func (s *Store) latchExcl(n *node) {
	if !s.concurrent {
		return
	}
	n.latch.Lock()
	s.m.lockNodeExcl.Inc()
}

func (s *Store) unlatchExcl(n *node) {
	if !s.concurrent {
		return
	}
	n.latch.Unlock()
}

type pendingRead struct {
	data []byte
	wait stor.Wait
}

// devCheck raises a device error as an ioerr.Abort to the nearest public
// API guard, latching write/flush failures first so a failure on a
// background path still surfaces at the next checkpoint. nil is a no-op.
func (s *Store) devCheck(err error) {
	if err == nil {
		return
	}
	var de *ioerr.DeviceError
	if errors.As(err, &de) && de.Op != "read" {
		s.latchIOErr(err)
	}
	ioerr.Check(err)
}

func (s *Store) latchIOErr(err error) {
	s.ioErrMu.Lock()
	if s.ioErr == nil {
		s.ioErr = err
	}
	s.ioErrMu.Unlock()
}

// IOErr returns the latched device write/flush failure, if any. The
// northbound uses it to decide read-only degradation.
func (s *Store) IOErr() error {
	s.ioErrMu.Lock()
	defer s.ioErrMu.Unlock()
	return s.ioErr
}

// Open mounts (or formats, if empty) a store on backend.
func Open(env *sim.Env, alloc *kmem.Allocator, cfg Config, backend Backend) (*Store, error) {
	s := &Store{
		env:     env,
		alloc:   alloc,
		cfg:     cfg,
		backend: backend,
		superF:  backend.File("super"),
		pending: make(map[cacheKey]*pendingRead),
		nextMSN: 1,
	}
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s.m = resolveStoreMetrics(reg)
	s.concurrent = cfg.Concurrent
	shards := cfg.CacheShards
	if shards <= 0 {
		shards = 1
		if cfg.Concurrent {
			shards = 8
		}
	}
	s.cache = newNodeCache(cfg.CacheBytes, shards, s.writeNode)
	s.cache.deferDirty = cfg.Concurrent
	s.cache.onDirtyPressure = s.requestBackgroundWriteback
	s.cache.mHit = reg.Counter("betree.cache.hit")
	s.cache.mMiss = reg.Counter("betree.cache.miss")
	s.cache.mEvict = reg.Counter("betree.cache.evict")
	s.cache.mEvictDirty = reg.Counter("betree.cache.evictdirty")
	s.cache.mDeferred = reg.Counter("flusher.writeback.deferred")
	s.meta = newTree(s, "meta", backend.File("meta"))
	s.data = newTree(s, "data", backend.File("data"))
	s.meta.bt.onFree = s.meta.discardFreed
	s.data.bt.onFree = s.data.discardFreed

	gen, payload, ok, sbErr := s.readSuperblock()
	if sbErr != nil {
		// A media error is not "no superblock": formatting a fresh store
		// over an unreadable one would destroy data, so fail the mount.
		return nil, fmt.Errorf("betree: superblock unreadable: %w", sbErr)
	}
	if !ok {
		// Fresh store: empty root leaves, then an initial checkpoint so
		// a crash right after format recovers to empty.
		s.log = wal.New(env, backend.File("log"), 1)
		s.meta.formatEmpty()
		s.data.formatEmpty()
		if err := s.Checkpoint(); err != nil {
			return nil, err
		}
		return s, nil
	}
	s.generation = gen
	hint, err := s.loadSuperblock(payload)
	if err != nil {
		return nil, err
	}
	if err := s.recoverFromLog(hint); err != nil {
		return nil, err
	}
	return s, nil
}

// recoverFromLog replays the redo log against the checkpointed state and
// persists the result. Recovery walks on-disk structures that a crash or
// corruption may have damaged, so panics from deep inside the replay
// (write paths treat unreadable nodes as fatal) are converted into an
// Open error: a store that cannot recover reports it instead of taking
// the process down.
func (s *Store) recoverFromLog(hint wal.Hint) (err error) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case ioerr.Abort:
			// Preserve the wrapped sentinel (ErrIO, ErrNoSpace) so the
			// mount failure stays classifiable.
			err = fmt.Errorf("betree: recovery failed: %w", r.Err)
		default:
			err = fmt.Errorf("betree: recovery failed: %v", r)
		}
	}()
	s.log = wal.New(s.env, s.backend.File("log"), hint.Epoch)
	recs, rerr := wal.Recover(s.env, s.backend.File("log"), hint)
	if rerr != nil {
		// A truncated replay would silently lose logged operations.
		return fmt.Errorf("betree: redo log unreadable: %w", rerr)
	}
	for _, rec := range recs {
		if err := s.replay(rec); err != nil {
			return err
		}
	}
	// Start a fresh log incarnation; the immediate checkpoint persists
	// the replayed state and records the new epoch in the superblock.
	s.log = wal.New(s.env, s.backend.File("log"), hint.Epoch+1)
	return s.Checkpoint()
}

// Env returns the simulation environment.
func (s *Store) Env() *sim.Env { return s.env }

// Meta returns the metadata-index tree.
func (s *Store) Meta() *Tree { return s.meta }

// Data returns the data-index tree.
func (s *Store) Data() *Tree { return s.data }

// Stats returns store counters.
func (s *Store) Stats() *StoreStats { return &s.stats }

// Log exposes the redo log (conditional logging pins).
func (s *Store) Log() *wal.Log { return s.log }

func (s *Store) nextMsn() MSN {
	m := s.nextMSN
	s.nextMSN++
	return m
}

// --- logical operation logging -------------------------------------------

const opRecord wal.RecordType = 1

func (s *Store) logOp(t *Tree, m *Msg, withPayload bool) uint64 {
	treeTag := byte(0)
	if t == s.data {
		treeTag = 1
	}
	var payload []byte
	vlen := 0
	if m.Type == MsgInsert || m.Type == MsgUpdate {
		vlen = m.Val.Len()
		if withPayload {
			payload = m.Val.Bytes()
		}
	}
	rec := make([]byte, 0, 20+len(m.Key)+len(m.EndKey)+len(payload))
	rec = append(rec, treeTag, byte(m.Type))
	var t16 [2]byte
	var t32 [4]byte
	binary.BigEndian.PutUint16(t16[:], uint16(len(m.Key)))
	rec = append(rec, t16[:]...)
	rec = append(rec, m.Key...)
	binary.BigEndian.PutUint16(t16[:], uint16(len(m.EndKey)))
	rec = append(rec, t16[:]...)
	rec = append(rec, m.EndKey...)
	binary.BigEndian.PutUint32(t32[:], uint32(m.Off))
	rec = append(rec, t32[:]...)
	binary.BigEndian.PutUint32(t32[:], uint32(vlen))
	rec = append(rec, t32[:]...)
	if withPayload {
		rec = append(rec, 1)
		rec = append(rec, payload...)
	} else {
		rec = append(rec, 0)
		s.unloggedData = true
	}
	lsn, err := s.log.Append(opRecord, rec)
	if err == wal.ErrLogFull {
		if s.OnLogPressure != nil {
			s.OnLogPressure()
		}
		// checkpointLocked, not Checkpoint: in concurrent mode the caller
		// already holds writerMu (logAndInsert / LogInsertOnly).
		s.checkpointLocked()
		lsn, err = s.log.Append(opRecord, rec)
	}
	if err == wal.ErrLogFull {
		// Still full after a checkpoint reclaimed everything reclaimable:
		// the record cannot fit — a space condition, not a bug.
		ioerr.Check(fmt.Errorf("betree: log full after checkpoint: %w", ioerr.ErrNoSpace))
	}
	s.devCheck(err)
	return lsn
}

func (s *Store) replay(rec wal.Record) error {
	if rec.Type != opRecord {
		return nil
	}
	p := rec.Payload
	if len(p) < 2 {
		return fmt.Errorf("betree: short log record")
	}
	t := s.meta
	if p[0] == 1 {
		t = s.data
	}
	mt := MsgType(p[1])
	p = p[2:]
	klen := int(binary.BigEndian.Uint16(p))
	key := append([]byte{}, p[2:2+klen]...)
	p = p[2+klen:]
	eklen := int(binary.BigEndian.Uint16(p))
	ekey := append([]byte{}, p[2:2+eklen]...)
	p = p[2+eklen:]
	off := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	vlen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	hasPayload := p[0] == 1
	p = p[1:]
	m := &Msg{Type: mt, MSN: s.nextMsn(), Key: key, EndKey: ekey, Off: off}
	switch mt {
	case MsgInsert, MsgUpdate:
		if !hasPayload {
			// Bulk value never payload-logged: its durability was
			// checkpoint-based, so the checkpointed tree already has
			// the newest durable version. Skip.
			return nil
		}
		if len(p) < vlen {
			return fmt.Errorf("betree: short log payload")
		}
		m.Val = InlineValue(append([]byte{}, p[:vlen]...))
	}
	t.insertMsg(m)
	return nil
}

// --- node I/O -------------------------------------------------------------

// nodeImage is a serialized node between the CPU half of a write
// (prepareNodeImage) and the submission half (finishNodeWrite).
type nodeImage struct {
	buf  *kmem.Buf
	data []byte
}

// writeNode serializes and writes a dirty node copy-on-write, charging the
// allocator costs of assembling the serialization buffer. The two halves
// are split so the checkpoint pipeline can fan serialization out across
// the flusher pool while keeping block placement and write submission in
// deterministic order on the coordinating goroutine (writeDirtyNodes).
func (s *Store) writeNode(t *Tree, n *node) {
	s.finishNodeWrite(t, n, s.prepareNodeImage(t, n))
}

// prepareNodeImage is the CPU half: allocate the serialization buffer,
// serialize, compress. It touches no structural store state, so the
// checkpoint pipeline may run several concurrently (the allocator and the
// clock are both safe for concurrent use, and their charges commute).
func (s *Store) prepareNodeImage(t *Tree, n *node) nodeImage {
	// Serialization buffer life cycle: the legacy code path grows a
	// buffer by doubling as it serializes (paying realloc copies); the
	// cooperative path negotiates the final size up front (§5).
	var buf *kmem.Buf
	if s.alloc.Cooperative() {
		buf = s.alloc.AllocUsable(n.memSize + 512)
	} else {
		buf = s.alloc.Alloc(64 << 10)
		buf = s.alloc.GrowDoubling(buf, n.memSize+512, 64<<10)
	}
	data := serializeNode(s.env, &s.cfg, n)
	if s.cfg.Compression {
		data = compressNode(s.env, data)
	}
	return nodeImage{buf: buf, data: data}
}

// inflightWrite is one submitted node-image write. The image and target
// extent are retained so a failed write can be relocated to fresh space
// and retried before the sticky write error latches.
type inflightWrite struct {
	t        *Tree
	id       nodeID
	ext      extent
	data     []byte
	wait     stor.Wait
	attempts int
}

// finishNodeWrite is the submission half: place the image in the block
// table and hand it to the device. It mutates structural state (block
// table, inflight) and therefore runs under the exclusive structure lock.
func (s *Store) finishNodeWrite(t *Tree, n *node, img nodeImage) {
	data := img.data
	ext, err := t.bt.allocate(int64(len(data)))
	if err != nil {
		// Wraps ErrNoSpace: the node file is full, which is recoverable
		// (deletes make space) and must not crash or latch read-only.
		s.alloc.FreeSized(img.buf)
		ioerr.Check(err)
	}
	t.bt.place(n.id, ext)
	s.inflight = append(s.inflight, &inflightWrite{
		t: t, id: n.id, ext: ext, data: data,
		wait: t.f.SubmitWrite(data, ext.off),
	})
	if len(s.inflight) > 8 {
		w := s.inflight[0]
		s.inflight = s.inflight[1:]
		s.devCheck(s.completeWrite(w))
	}
	s.alloc.FreeSized(img.buf)
	n.dirty.Store(false)
	atomic.AddInt64(&s.stats.NodesWritten, 1)
	atomic.AddInt64(&s.stats.BytesWritten, int64(len(data)))
	s.m.nodeWrite.Inc()
	s.m.bytesWritten.Add(int64(len(data)))
	s.env.Trace("betree", "node.write", t.name, int64(len(data)))
}

// completeWrite waits for one node write and, on a device write error,
// runs write-path relocation (DESIGN.md §10.6): the failed extent is
// retired to the grown-defect list and the same image is rewritten at
// freshly allocated space, up to cfg.RelocateAttempts times. The final
// error — device failure that outlasted the attempt bound, or allocator
// exhaustion during relocation — is returned for the caller to latch,
// preserving the historical errors=remount-ro degradation. Runs under
// the exclusive structure lock (it mutates the block table).
func (s *Store) completeWrite(w *inflightWrite) error {
	err := w.wait()
	for err != nil {
		var de *ioerr.DeviceError
		if !errors.As(err, &de) || de.Op != "write" || de.Transient {
			break // not a media write error (or still transient after RetryDev)
		}
		if w.attempts >= s.cfg.RelocateAttempts {
			break // relocation disabled or attempt bound exhausted
		}
		if cur, ok := w.t.bt.lookup(w.id); !ok || cur != w.ext {
			// The node was rewritten or deleted while this write was in
			// flight; the failed extent backs nothing live, so there is
			// nothing to remap — surface the error.
			break
		}
		w.attempts++
		ne, rerr := w.t.bt.relocate(w.id, int64(len(w.data)))
		if rerr != nil {
			break // node file full: keep the mapping intact, latch the EIO
		}
		s.m.defectGrown.Inc()
		s.m.defectBytes.Add(w.ext.len)
		s.m.defectRelocate.Inc()
		s.env.Trace("betree", "node.relocate", w.t.name, w.ext.off)
		w.ext = ne
		err = w.t.f.SubmitWrite(w.data, ne.off)()
	}
	if err == nil {
		w.data = nil
	}
	return err
}

// readNode fetches a node image from disk. If partialKey is non-nil and
// the node is a leaf, only the header region and the basement containing
// partialKey are read and materialized (§2.2 basement nodes). A corrupted
// or torn image surfaces an error wrapping ErrChecksum rather than
// garbage or a panic.
func (s *Store) readNode(t *Tree, id nodeID, partialKey []byte) (*node, error) {
	ext, ok := t.bt.lookup(id)
	if !ok {
		return nil, fmt.Errorf("betree: %s node %d has no extent", t.name, id)
	}
	fail := func(err error) (*node, error) {
		return nil, fmt.Errorf("betree: %s node %d: %w", t.name, id, err)
	}
	key := cacheKey{t, id}
	s.pendingMu.Lock()
	pr, havePending := s.pending[key]
	if havePending {
		delete(s.pending, key)
	}
	s.pendingMu.Unlock()
	if havePending {
		// A prefetch is in flight: wait for it instead of re-reading. A
		// failed prefetch read falls back to a fresh synchronous read
		// (decodeWithReread re-reads on checksum failure too).
		if werr := pr.wait(); werr != nil {
			if rerr := t.f.SubmitRead(pr.data, ext.off)(); rerr != nil {
				return fail(rerr)
			}
		}
		atomic.AddInt64(&s.stats.PrefetchHits, 1)
		s.m.prefetchHit.Inc()
		n, err := s.decodeWithReread(t, ext, pr.data)
		if err != nil {
			return fail(err)
		}
		atomic.AddInt64(&s.stats.NodesRead, 1)
		atomic.AddInt64(&s.stats.BytesRead, ext.len)
		s.m.nodeRead.Inc()
		s.m.bytesRead.Add(ext.len)
		return n, nil
	}

	if partialKey != nil {
		// Header region first.
		hlen := int64(headerRegion)
		if hlen > ext.len {
			hlen = ext.len
		}
		hdr := make([]byte, ext.len) // sparse image; only ranges read below are valid
		if rerr := t.f.SubmitRead(hdr[:hlen], ext.off)(); rerr != nil {
			return fail(rerr)
		}
		if s.cfg.Compression && binary.BigEndian.Uint32(hdr) == compressedMagic {
			// Compressed nodes cannot be partially read: fetch the
			// rest and inflate.
			if ext.len > hlen {
				if rerr := t.f.SubmitRead(hdr[hlen:], ext.off+hlen)(); rerr != nil {
					return fail(rerr)
				}
			}
			n, err := s.decodeWithReread(t, ext, hdr)
			if err != nil {
				return fail(err)
			}
			atomic.AddInt64(&s.stats.NodesRead, 1)
			atomic.AddInt64(&s.stats.BytesRead, ext.len)
			s.m.nodeRead.Inc()
			s.m.bytesRead.Add(ext.len)
			return n, nil
		}
		if binary.BigEndian.Uint32(hdr[4:]) == nodeMagic && binary.BigEndian.Uint32(hdr[8:]) == 0 {
			basements, consumed, err := decodeLeafShell(hdr[:hlen])
			if err == nil && consumed <= int(hlen) {
				n := &node{id: id, height: 0, basements: basements, pageBase: pageBase(hdr)}
				atomic.AddInt64(&s.stats.NodesRead, 1)
				atomic.AddInt64(&s.stats.PartialReads, 1)
				atomic.AddInt64(&s.stats.BytesRead, hlen)
				s.m.nodeRead.Inc()
				s.m.nodePartial.Inc()
				s.m.bytesRead.Add(hlen)
				if err := s.loadBasement(t, n, ext, n.basementFor(s.env, partialKey)); err != nil {
					return fail(err)
				}
				n.computeMemSize()
				return n, nil
			}
		}
		// Shell didn't fit in the header region (or failed its checksum);
		// fall through to a full read of the remainder, whose whole-image
		// checksum decides.
		if ext.len > hlen {
			if rerr := t.f.SubmitRead(hdr[hlen:], ext.off+hlen)(); rerr != nil {
				return fail(rerr)
			}
		}
		n, err := s.decodeWithReread(t, ext, hdr)
		if err != nil {
			return fail(err)
		}
		atomic.AddInt64(&s.stats.NodesRead, 1)
		atomic.AddInt64(&s.stats.BytesRead, ext.len)
		s.m.nodeRead.Inc()
		s.m.bytesRead.Add(ext.len)
		return n, nil
	}

	data := make([]byte, ext.len)
	if rerr := t.f.SubmitRead(data, ext.off)(); rerr != nil {
		return fail(rerr)
	}
	n, err := s.decodeWithReread(t, ext, data)
	if err != nil {
		return fail(err)
	}
	atomic.AddInt64(&s.stats.NodesRead, 1)
	atomic.AddInt64(&s.stats.BytesRead, ext.len)
	s.m.nodeRead.Inc()
	s.m.bytesRead.Add(ext.len)
	return n, nil
}

// decodeImage decompresses and deserializes a full node image.
func (s *Store) decodeImage(data []byte) (*node, error) {
	raw, err := maybeDecompressNode(s.env, data)
	if err != nil {
		return nil, err
	}
	return deserializeNode(s.env, &s.cfg, raw)
}

// decodeWithReread decodes a full node image, re-reading the extent once
// when a checksum fails: a bit flip picked up in transfer (not on the
// medium) yields a clean second read. Re-reads count in io.retry.corrupt;
// a second failure is persistent corruption and surfaces ErrChecksum.
func (s *Store) decodeWithReread(t *Tree, ext extent, data []byte) (*node, error) {
	n, err := s.decodeImage(data)
	if err == nil || !errors.Is(err, ErrChecksum) {
		return n, err
	}
	s.m.retryCorrupt.Inc()
	if rerr := t.f.SubmitRead(data, ext.off)(); rerr != nil {
		return nil, rerr
	}
	return s.decodeImage(data)
}

// loadBasement materializes basement bi of cached leaf n with a partial
// disk read (small section + page section), verifying the basement's
// directory checksum. A checksum failure is re-read once (see
// decodeWithReread) before being reported as corruption.
func (s *Store) loadBasement(t *Tree, n *node, ext extent, bi int) error {
	b := n.basements[bi]
	if b.loaded {
		return nil
	}
	if b.diskOff < 0 || b.diskLen < 0 || b.pageOff < 0 || b.pageLen < 0 ||
		int64(b.diskOff)+int64(b.diskLen) > ext.len || int64(b.pageOff)+int64(b.pageLen) > ext.len {
		return fmt.Errorf("betree: %s node %d basement %d extent out of bounds: %w", t.name, n.id, bi, ErrChecksum)
	}
	img := make([]byte, ext.len)
	readRanges := func() error {
		if b.diskLen > 0 {
			if rerr := t.f.SubmitRead(img[b.diskOff:b.diskOff+b.diskLen], ext.off+int64(b.diskOff))(); rerr != nil {
				return rerr
			}
		}
		if b.pageLen > 0 {
			if rerr := t.f.SubmitRead(img[b.pageOff:b.pageOff+b.pageLen], ext.off+int64(b.pageOff))(); rerr != nil {
				return rerr
			}
		}
		return nil
	}
	if rerr := readRanges(); rerr != nil {
		return fmt.Errorf("betree: %s node %d basement %d: %w", t.name, n.id, bi, rerr)
	}
	s.env.Checksum(b.diskLen + b.pageLen)
	s.env.Serialize(b.diskLen)
	err := loadBasementFrom(s.env, img, b, n.pageBase)
	if err != nil && errors.Is(err, ErrChecksum) {
		s.m.retryCorrupt.Inc()
		if rerr := readRanges(); rerr != nil {
			return fmt.Errorf("betree: %s node %d basement %d: %w", t.name, n.id, bi, rerr)
		}
		err = loadBasementFrom(s.env, img, b, n.pageBase)
	}
	if err != nil {
		return fmt.Errorf("betree: %s node %d basement %d: %w", t.name, n.id, bi, err)
	}
	atomic.AddInt64(&s.stats.BasementsRead, 1)
	atomic.AddInt64(&s.stats.BytesRead, int64(b.diskLen+b.pageLen))
	s.m.basementRead.Inc()
	s.m.bytesRead.Add(int64(b.diskLen + b.pageLen))
	s.cache.resize(t, n)
	return nil
}

// prefetch issues an asynchronous read of a node (tree-level read-ahead,
// §3.2). The read overlaps with the caller's CPU work and is claimed by a
// later readNode.
func (s *Store) prefetch(t *Tree, id nodeID) {
	if !s.cfg.ReadAhead {
		return
	}
	key := cacheKey{t, id}
	s.pendingMu.Lock()
	_, inflight := s.pending[key]
	s.pendingMu.Unlock()
	if inflight {
		return
	}
	if _, ok := s.cache.lookup(t, id, false); ok {
		return
	}
	ext, ok := t.bt.lookup(id)
	if !ok {
		return
	}
	data := make([]byte, ext.len)
	wait := t.f.SubmitRead(data, ext.off)
	s.pendingMu.Lock()
	if _, raced := s.pending[key]; raced {
		// Another goroutine issued the same prefetch between our check
		// and the submit: keep theirs, absorb ours (the duplicate's data
		// is discarded, so its error is irrelevant).
		s.pendingMu.Unlock()
		_ = wait()
		return
	}
	s.pending[key] = &pendingRead{data: data, wait: wait}
	s.pendingMu.Unlock()
	atomic.AddInt64(&s.stats.Prefetches, 1)
	s.m.prefetchIssue.Inc()
}

// --- durability ------------------------------------------------------------

// drainWrites waits for all in-flight node writes, relocating failed
// ones (completeWrite). Every wait is drained even after a failure (the
// completions must not leak); the first unrecovered error is raised
// afterwards.
func (s *Store) drainWrites() {
	var first error
	for _, w := range s.inflight {
		if err := s.completeWrite(w); err != nil && first == nil {
			first = err
		}
	}
	s.inflight = s.inflight[:0]
	s.devCheck(first)
}

// SyncLog flushes the redo log (the fsync fast path).
func (s *Store) SyncLog() (err error) {
	defer ioerr.Guard(&err)
	s.devCheck(s.log.Flush())
	return nil
}

// Sync makes everything durable: the log is flushed, and if bulk data
// entered the tree without payload logging, a checkpoint persists it.
func (s *Store) Sync() (err error) {
	defer ioerr.Guard(&err)
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	s.devCheck(s.log.Flush())
	if s.unloggedData {
		s.checkpointLocked()
	}
	return nil
}

// MaybeCheckpoint runs a checkpoint if the period elapsed or log space is
// low; the northbound calls it on its operation paths.
func (s *Store) MaybeCheckpoint() (err error) {
	defer ioerr.Guard(&err)
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	if s.env.Now()-s.lastCheckpoint >= s.cfg.CheckpointPeriod ||
		s.log.FreeBytes() < s.log.LiveBytes()/4 {
		s.checkpointLocked()
	}
	return nil
}

// Checkpoint writes all dirty nodes copy-on-write, commits a new
// superblock generation, recycles old extents, and reclaims log space
// (§2.2 crash consistency).
func (s *Store) Checkpoint() (err error) {
	defer ioerr.Guard(&err)
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	s.checkpointLocked()
	return nil
}

// checkpointLocked is the checkpoint body. Concurrent-mode callers hold
// writerMu (no mutator is mid-flight). It drains the flusher pool BEFORE
// taking the structure lock: pool tasks only TryLock and drop on failure,
// so the drain cannot deadlock, and afterwards no background task can be
// holding store state while we write the superblock.
func (s *Store) checkpointLocked() {
	if s.concurrent && s.env.Pool != nil {
		s.env.Pool.Drain()
	}
	// A write failure latched on a background path (pool writeback, whose
	// panics reach no caller) resurfaces at the next checkpoint, so the
	// northbound always learns about it.
	ioerr.Check(s.IOErr())
	s.lockExcl()
	defer s.unlockExcl()
	checkpointLSN := s.log.NextLSN()
	s.devCheck(s.log.Flush())
	for _, t := range []*Tree{s.meta, s.data} {
		s.writeDirtyNodes(t)
	}
	s.drainWrites()
	for _, t := range []*Tree{s.meta, s.data} {
		s.devCheck(t.f.Flush())
	}
	s.writeSuperblock()
	// The superblock just made durable, together with the one still in
	// the other slot, bounds every state recovery can select. Log space
	// below the OLDER slot's recovery hint and extents free across both
	// generations can now be handed back to the device as TRIMs.
	s.log.DiscardReclaimed()
	for _, t := range []*Tree{s.meta, s.data} {
		t.bt.checkpointCommitted()
		t.flushTrimQueue(s.generation)
	}
	s.log.Reclaim(checkpointLSN)
	s.unloggedData = false
	s.lastCheckpoint = s.env.Now()
	atomic.AddInt64(&s.stats.Checkpoints, 1)
	s.m.checkpoint.Inc()
	s.env.Trace("betree", "checkpoint", "", int64(checkpointLSN))
}

// writeDirtyNodes writes back every dirty cached node of tree t. With
// more than one flusher worker the CPU half (serialize, compress,
// checksum) fans out across the pool and the submission half runs on this
// goroutine in sweep order; with one worker (deterministic mode) it is
// the historical sequential loop.
func (s *Store) writeDirtyNodes(t *Tree) {
	dirty := s.cache.dirtyNodes(t)
	pool := s.env.Pool
	if !s.concurrent || pool == nil || pool.Workers() <= 1 || len(dirty) <= 1 {
		for _, n := range dirty {
			s.writeNode(t, n)
		}
		return
	}
	imgs := make([]nodeImage, len(dirty))
	var wg sync.WaitGroup
	for i, n := range dirty {
		i, n := i, n
		wg.Add(1)
		pool.Submit(func() {
			defer wg.Done()
			imgs[i] = s.prepareNodeImage(t, n)
		})
	}
	wg.Wait()
	for i, n := range dirty {
		s.finishNodeWrite(t, n, imgs[i])
	}
}

// --- superblock -------------------------------------------------------------

const (
	superMagic    = 0x5bee7f5b
	superSlotSize = 4 << 20
)

func (s *Store) writeSuperblock() {
	hint := s.log.Hint()
	payload := make([]byte, 0, 1<<20)
	var t8 [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(t8[:], v)
		payload = append(payload, t8[:]...)
	}
	put64(uint64(s.nextMSN))
	put64(uint64(hint.Offset))
	put64(hint.LSN)
	put64(uint64(hint.Epoch))
	for _, t := range []*Tree{s.meta, s.data} {
		put64(uint64(t.rootID))
		put64(uint64(t.nextNodeID))
		bt := t.bt.serialize()
		put64(uint64(len(bt)))
		payload = append(payload, bt...)
	}
	s.generation++
	blob := make([]byte, 0, len(payload)+24)
	var t4 [4]byte
	binary.BigEndian.PutUint32(t4[:], superMagic)
	blob = append(blob, t4[:]...)
	binary.BigEndian.PutUint64(t8[:], s.generation)
	blob = append(blob, t8[:]...)
	binary.BigEndian.PutUint32(t4[:], uint32(len(payload)))
	blob = append(blob, t4[:]...)
	blob = append(blob, payload...)
	binary.BigEndian.PutUint32(t4[:], crc32.ChecksumIEEE(blob))
	blob = append(blob, t4[:]...)
	if len(blob) > superSlotSize {
		panic("betree: superblock exceeds slot")
	}
	s.env.Serialize(len(blob))
	s.env.Checksum(len(blob))
	slot := int64(s.generation%2) * superSlotSize
	s.devCheck(s.superF.WriteAt(blob, slot))
	s.devCheck(s.superF.Flush())
}

// readSuperblock returns the newest valid superblock generation. A device
// read error fails the mount rather than counting the slot invalid: an
// unreadable slot may hold the newer generation, and "no superblock" would
// make Open format a fresh store over existing data.
func (s *Store) readSuperblock() (gen uint64, payload []byte, ok bool, err error) {
	for slot := int64(0); slot < 2; slot++ {
		hdr := make([]byte, 16)
		if rerr := s.superF.ReadAt(hdr, slot*superSlotSize); rerr != nil {
			return 0, nil, false, rerr
		}
		if binary.BigEndian.Uint32(hdr) != superMagic {
			continue
		}
		g := binary.BigEndian.Uint64(hdr[4:])
		plen := int(binary.BigEndian.Uint32(hdr[12:]))
		if plen > superSlotSize {
			continue
		}
		blob := make([]byte, 16+plen+4)
		if rerr := s.superF.ReadAt(blob, slot*superSlotSize); rerr != nil {
			return 0, nil, false, rerr
		}
		s.env.Checksum(len(blob))
		if crc32.ChecksumIEEE(blob[:16+plen]) != binary.BigEndian.Uint32(blob[16+plen:]) {
			continue
		}
		if !ok || g > gen {
			gen = g
			payload = blob[16 : 16+plen]
			ok = true
		}
	}
	return gen, payload, ok, nil
}

func (s *Store) loadSuperblock(payload []byte) (wal.Hint, error) {
	if len(payload) < 24 {
		return wal.Hint{}, fmt.Errorf("betree: short superblock")
	}
	get64 := func() uint64 {
		v := binary.BigEndian.Uint64(payload)
		payload = payload[8:]
		return v
	}
	s.nextMSN = MSN(get64())
	hint := wal.Hint{Offset: int64(get64()), LSN: get64()}
	hint.Epoch = uint32(get64())
	for _, t := range []*Tree{s.meta, s.data} {
		t.rootID = nodeID(get64())
		t.nextNodeID = nodeID(get64())
		btLen := int(get64())
		bt, err := loadBlockTable(t.f.Capacity(), payload[:btLen])
		if err != nil {
			return wal.Hint{}, err
		}
		payload = payload[btLen:]
		t.bt = bt
		bt.onFree = t.discardFreed
	}
	return hint, nil
}

// DropCleanCaches checkpoints and then empties the node cache and pending
// prefetches — the cold-cache state benchmarks start from.
func (s *Store) DropCleanCaches() (err error) {
	defer ioerr.Guard(&err)
	if s.concurrent {
		s.writerMu.Lock()
		defer s.writerMu.Unlock()
	}
	s.checkpointLocked()
	s.pendingMu.Lock()
	for k, pr := range s.pending {
		_ = pr.wait() // prefetched data is being discarded
		delete(s.pending, k)
	}
	s.pendingMu.Unlock()
	s.cache.dropAll()
	return nil
}
