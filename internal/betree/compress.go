package betree

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"betrfs/internal/sim"
)

// Optional node compression (§2.2): early BetrFS versions compressed
// serialized nodes to reduce storage and I/O; the paper disables it on
// SSDs because the computational cost can delay I/Os for little benefit.
// The implementation is real (DEFLATE at BestSpeed), and the CPU cost is
// charged per byte in both directions. The on-disk framing is
// self-describing so readers handle both formats.

const (
	compressedMagic = 0xc0dec0de
	compressHeader  = 12 // magic, compressed len, raw len
)

// Compression cost model: LZ-class compressor at ~400 MB/s, decompressor
// at ~900 MB/s.
const (
	compressPsPerByte   = 2500
	decompressPsPerByte = 1100
)

// compressNode frames and compresses a serialized node image, charging
// CPU, and returns the block-aligned on-disk bytes.
func compressNode(env *sim.Env, data []byte) []byte {
	var buf bytes.Buffer
	buf.Write(make([]byte, compressHeader))
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		panic(err)
	}
	if _, err := w.Write(data); err != nil {
		panic(err)
	}
	w.Close()
	env.Charge(time.Duration(int64(len(data)) * compressPsPerByte / 1000))
	out := buf.Bytes()
	binary.BigEndian.PutUint32(out[0:], compressedMagic)
	binary.BigEndian.PutUint32(out[4:], uint32(len(out)-compressHeader))
	binary.BigEndian.PutUint32(out[8:], uint32(len(data)))
	if pad := (blockAlign - len(out)%blockAlign) % blockAlign; pad > 0 {
		out = append(out, make([]byte, pad)...)
	}
	return out
}

// maybeDecompressNode inflates a node image if it carries the compression
// framing; plain images pass through untouched.
func maybeDecompressNode(env *sim.Env, data []byte) ([]byte, error) {
	if len(data) < compressHeader || binary.BigEndian.Uint32(data) != compressedMagic {
		return data, nil
	}
	clen := int(binary.BigEndian.Uint32(data[4:]))
	rawLen := int(binary.BigEndian.Uint32(data[8:]))
	if clen < 0 || compressHeader+clen > len(data) {
		return nil, fmt.Errorf("betree: truncated compressed node: %w", ErrChecksum)
	}
	r := flate.NewReader(bytes.NewReader(data[compressHeader : compressHeader+clen]))
	out := make([]byte, 0, rawLen)
	w := bytes.NewBuffer(out)
	if _, err := io.Copy(w, r); err != nil {
		// A flate error on read-back means the stored bytes changed
		// underneath us: classify as corruption.
		return nil, fmt.Errorf("betree: decompress (%v): %w", err, ErrChecksum)
	}
	env.Charge(time.Duration(int64(rawLen) * decompressPsPerByte / 1000))
	return w.Bytes(), nil
}
