package betree

import "betrfs/internal/ioerr"

// Concurrent-mode code paths (DESIGN.md §9).
//
// In concurrent mode (Config.Concurrent) the tree splits every inject
// into two halves:
//
//   - a short foreground half, insertMsgConcurrent, that holds the
//     structure lock shared and the root latch exclusive just long enough
//     to append the message to the root (or apply it, when the root is a
//     leaf) — so point queries and scans on other nodes keep running;
//   - a restructuring half, flushRootLocked, that flushes and splits
//     under the exclusive structure lock. Writers hand it to the flusher
//     pool when background workers exist and the pressure is soft, and
//     run it inline when the root has grown past the hard limit (or when
//     the pool is in deterministic single-worker mode).
//
// Background pool tasks never block on the structure lock: they
// TryLock and drop the work on failure. The work is re-triggerable (an
// overfull root re-requests a flush on the next inject; dirty cache
// pressure re-requests writeback on the next eviction sweep), and the
// no-blocking rule is what makes checkpointLocked's drain-then-lock
// sequence deadlock-free.

// insertMsgConcurrent is the concurrent-mode body of insertMsg. The
// caller (logAndInsert) holds writerMu, so mutators are serialized and
// arrival order at the root equals MSN order.
func (t *Tree) insertMsgConcurrent(m *Msg) {
	s := t.store
	size, limit := t.injectRoot(m)
	if size <= limit {
		return
	}
	pool := s.env.Pool
	if size > 2*limit || pool == nil || pool.Workers() <= 1 {
		// Hard pressure (or no background workers): restructure inline so
		// the root cannot grow without bound. Safe to block on the
		// exclusive lock here — we hold writerMu, readers drain on their
		// own, and pool tasks never block on the structure lock.
		t.flushRootExcl()
		return
	}
	t.scheduleBackgroundFlush()
}

// injectRoot appends m at the root under the shared structure lock and
// root latch, using defers so a device-failure abort from deep inside the
// apply still releases every lock on its way to the public-API guard.
func (t *Tree) injectRoot(m *Msg) (size, limit int) {
	s := t.store
	s.lockShared()
	defer s.unlockShared()
	root := t.mustFetch(t.rootID, nil)
	defer t.unpin(root)
	s.latchExcl(root)
	defer s.unlatchExcl(root)
	if root.isLeaf() {
		t.applyToLeaf(root, m)
		t.markDirty(root)
		return root.leafBytes(), s.cfg.NodeSize
	}
	ci := root.childFor(s.env, m.Key)
	root.bufs[ci].appendCharged(s.alloc, m)
	if m.Type == MsgRangeDelete {
		t.routeRangeMsg(root, m, ci)
	}
	t.markDirty(root)
	return root.bufferBytes(), s.cfg.NodeSize
}

// flushRootExcl runs flushRootLocked under the exclusive structure lock,
// deferring the unlock so an abort cannot leak it.
func (t *Tree) flushRootExcl() {
	s := t.store
	s.lockExcl()
	defer s.unlockExcl()
	t.flushRootLocked()
}

// flushRootLocked relieves root pressure: flush descend, then split if
// the root itself is oversized. Caller holds the exclusive structure
// lock. A no-op if a previous flush already relieved the pressure.
func (t *Tree) flushRootLocked() {
	s := t.store
	root := t.mustFetch(t.rootID, nil)
	defer t.unpin(root)
	if root.isLeaf() {
		if root.leafBytes() > s.cfg.NodeSize {
			t.splitRoot(root)
		}
		return
	}
	if root.bufferBytes() > s.cfg.NodeSize {
		t.flushDescend(root)
	}
	if len(root.children) > s.cfg.Fanout {
		t.splitRoot(root)
	}
}

// scheduleBackgroundFlush queues a root flush on the flusher pool,
// deduplicating against an already-queued one.
func (t *Tree) scheduleBackgroundFlush() {
	s := t.store
	if !t.flushQueued.CompareAndSwap(false, true) {
		return
	}
	ok := s.env.Pool.TrySubmit(func() {
		t.flushQueued.Store(false)
		if !s.tryLockExcl() {
			// Whoever holds the structure lock (a checkpoint, another
			// flush, a writeback) is relieving pressure itself; the next
			// inject re-queues us if the root is still overfull.
			return
		}
		defer s.unlockExcl()
		// A pool goroutine has no caller to report a device failure to:
		// write failures were latched by devCheck and resurface at the
		// next checkpoint, read failures recur on the next foreground
		// fetch, so the abort is absorbed here instead of crashing.
		var bgErr error
		defer ioerr.Guard(&bgErr)
		s.m.flushBackground.Inc()
		t.flushRootLocked()
	})
	if !ok {
		// Queue full: flush inline so pressure cannot outrun the pool.
		t.flushQueued.Store(false)
		t.flushRootExcl()
	}
}

// requestBackgroundWriteback queues a sweep that writes back all dirty
// nodes. The node cache calls it (outside its shard locks) when an
// eviction pass had to skip dirty nodes under the deferred-writeback
// policy; it is also deduplicated, and a no-op in deterministic mode
// where eviction writes back inline as it always has.
func (s *Store) requestBackgroundWriteback() {
	if !s.concurrent || s.env.Pool == nil || s.env.Pool.Workers() <= 1 {
		return
	}
	if !s.wbQueued.CompareAndSwap(false, true) {
		return
	}
	ok := s.env.Pool.TrySubmit(func() {
		s.wbQueued.Store(false)
		if !s.tryLockExcl() {
			return
		}
		defer s.unlockExcl()
		// Same absorption rule as the background flush: devCheck latched
		// any write failure, and the next checkpoint re-raises it.
		var bgErr error
		defer ioerr.Guard(&bgErr)
		s.m.wbBackground.Inc()
		for _, t := range []*Tree{s.meta, s.data} {
			for _, n := range s.cache.dirtyNodes(t) {
				s.writeNode(t, n)
			}
		}
		s.drainWrites()
	})
	if !ok {
		s.wbQueued.Store(false)
	}
}
