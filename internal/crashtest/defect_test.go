package crashtest

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/betree"
	"betrfs/internal/betrfs"
	"betrfs/internal/blockdev"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// runDefectTrial checkpoints a store, grows a media defect under a
// durable data-tree node, repairs it (relocating the image and retiring
// the extent), then crashes an unsynced follow-up write burst at spec
// and reopens. The remap table contract across the crash: the reopen
// must succeed (loadBlockTable rejects lost or double-allocated
// extents), the grown-defect list must round-trip the checkpoint
// intact, and every synced key must read back correctly even though the
// original extent is still bad media — i.e. reads must come from the
// relocated copy, and post-crash allocations must never land on the
// retired space.
func runDefectTrial(t *testing.T, spec CrashSpec) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fdev := blockdev.NewFault(env, dev, blockdev.FaultPlan{})
	cfg := betrfs.V06Config().Tree
	backend, err := sfl.NewDefault(env, fdev)
	if err != nil {
		t.Fatalf("sfl format: %v", err)
	}
	st, err := betree.Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		t.Fatalf("store format: %v", err)
	}

	const nkeys = 1500
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 96) }
	for i := 0; i < nkeys; i++ {
		st.Data().Put([]byte(fmt.Sprintf("k%05d", i)), val(i), betree.LogAuto)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Grow the defect under a durable data node and repair it online.
	// The repair checkpoints, so the relocated mapping and the retired
	// extent are durable before the crash window opens.
	var victim betree.ScrubReport
	for _, rep := range st.Scrub() {
		if rep.Tree == "data" && rep.Len > victim.Len {
			victim = rep
		}
	}
	if victim.Len == 0 {
		t.Fatal("no durable data node to inject under")
	}
	lay := backend.Layout()
	badOff := lay.SuperBytes + lay.LogBytes + lay.MetaBytes + victim.Off
	fdev.AddBadRange(badOff, victim.Len)
	rst, err := st.ScrubRepair()
	if err != nil {
		t.Fatalf("scrub repair: %v", err)
	}
	if rst.Repaired == 0 || rst.Unrepairable != 0 {
		t.Fatalf("repair before crash: %+v", rst)
	}
	wantCount, wantBytes := st.DefectStats()
	if wantCount == 0 {
		t.Fatal("no grown defects before crash")
	}

	dev.EnableCrashTracking()
	// Unsynced burst, log tail pushed to the device, then the crash.
	for i := 0; i < 400; i++ {
		st.Data().Put([]byte(fmt.Sprintf("u%05d", i)), val(i), betree.LogAuto)
	}
	st.Log().WriteOut()
	spec.apply(dev)

	// Remount over the same bad media (the defect is in the hardware,
	// not the fault wrapper's mood).
	fdev2 := blockdev.NewFault(env, dev, blockdev.FaultPlan{})
	fdev2.AddBadRange(badOff, victim.Len)
	b2, err := sfl.NewDefault(env, fdev2)
	if err != nil {
		t.Fatalf("%s: reopen sfl: %v", spec, err)
	}
	st2, err := betree.Open(env, kmem.New(env, true), cfg, b2)
	if err != nil {
		t.Fatalf("%s: reopen store: %v", spec, err)
	}
	gotCount, gotBytes := st2.DefectStats()
	if gotCount != wantCount || gotBytes != wantBytes {
		t.Fatalf("%s: defect list did not round-trip the crash: got (%d, %d), want (%d, %d)",
			spec, gotCount, gotBytes, wantCount, wantBytes)
	}
	st2.DropCleanCaches()
	for i := 0; i < nkeys; i++ {
		k := []byte(fmt.Sprintf("k%05d", i))
		got, ok, err := st2.Data().Get(k)
		if err != nil || !ok {
			t.Fatalf("%s: synced key %s after crash: (%v, %v)", spec, k, ok, err)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("%s: synced key %s wrong bytes after crash", spec, k)
		}
	}
	for _, rep := range st2.Scrub() {
		if rep.Err != nil {
			t.Fatalf("%s: post-crash scrub: %s node %d: %v", spec, rep.Tree, rep.ID, rep.Err)
		}
	}
	// New allocations after recovery must also avoid the retired space:
	// write another synced burst and re-verify everything.
	for i := 0; i < 800; i++ {
		st2.Data().Put([]byte(fmt.Sprintf("p%05d", i)), val(i), betree.LogAuto)
	}
	if err := st2.Checkpoint(); err != nil {
		t.Fatalf("%s: post-crash checkpoint: %v", spec, err)
	}
	st2.DropCleanCaches()
	for _, rep := range st2.Scrub() {
		if rep.Err != nil {
			t.Fatalf("%s: scrub after post-crash writes: %s node %d: %v", spec, rep.Tree, rep.ID, rep.Err)
		}
	}
}

// TestDefectRemapCrashSweep sweeps prefix, torn, and subset crash points
// over the grown-defect remap table (DESIGN.md §10.6): no crash may
// lose a remap, resurrect a retired extent, or double-allocate space.
func TestDefectRemapCrashSweep(t *testing.T) {
	specs := []CrashSpec{
		{Kind: CrashPrefix, Keep: 0},
		{Kind: CrashPrefix, Keep: 3},
		{Kind: CrashPrefix, Keep: 1 << 30}, // clamped: keep everything
		{Kind: CrashTorn, Keep: 1, TornNum: 1, TornDen: 2},
		{Kind: CrashSubset, Seed: 11, KeepPct: 50},
		{Kind: CrashSubset, Seed: 12, KeepPct: 10},
	}
	if !testing.Short() {
		specs = append(specs, PrefixSpecs(8)...)
		specs = append(specs, SubsetSpecs(4, 21, 70)...)
	}
	for _, spec := range specs {
		t.Run(spec.String(), func(t *testing.T) { runDefectTrial(t, spec) })
	}
}
