package crashtest

import (
	"testing"

	"betrfs/internal/betrfs"
	"betrfs/internal/blockdev"
	"betrfs/internal/cowfs"
	"betrfs/internal/extfs"
	"betrfs/internal/ftl"
	"betrfs/internal/kmem"
	"betrfs/internal/logfs"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// ftlSystems mirrors Systems() with every file system built over the
// simulated FTL, so the crash sweeps exercise discard-under-crash: the
// FTL forwards TRIMs to the tracked device, where the crash spec can cut
// the stream between a checkpoint's free and the deferred discard that
// zeroes the extent.
func ftlSystems() []System {
	mk := func(build func(env *sim.Env, dev blockdev.Device) (vfs.FS, error)) func(*sim.Env, *blockdev.Dev) (vfs.FS, error) {
		return func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
			return build(env, ftl.New(env, dev, ftl.DefaultConfig()))
		}
	}
	newBetrfsFTL := mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
		cfg := betrfs.V06Config()
		cfg.Tree.CacheBytes = 1 << 20
		backend, err := sfl.NewDefault(env, dev)
		if err != nil {
			return nil, err
		}
		return betrfs.New(env, kmem.New(env, true), cfg, backend)
	})
	return []System{
		{
			Name: "ext4+ftl",
			Build: mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
				return extfs.New(env, dev, extfs.Ext4Profile()), nil
			}),
			Recover: mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
				return extfs.Recover(env, dev, extfs.Ext4Profile())
			}),
		},
		{
			Name: "f2fs+ftl",
			Build: mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
				return logfs.New(env, dev), nil
			}),
			Recover: mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
				return logfs.Recover(env, dev)
			}),
		},
		{
			Name: "btrfs+ftl",
			Build: mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
				return cowfs.New(env, dev, cowfs.BtrfsProfile()), nil
			}),
			Recover: mk(func(env *sim.Env, dev blockdev.Device) (vfs.FS, error) {
				return cowfs.Recover(env, dev, cowfs.BtrfsProfile())
			}),
		},
		{
			Name:    "betrfs-v0.6+ftl",
			Build:   newBetrfsFTL,
			Recover: newBetrfsFTL,
			Push: func(fs vfs.FS) {
				fs.(*betrfs.FS).Store().Log().WriteOut()
			},
		},
	}
}

func removeHeavyFor(t *testing.T) []Step {
	n, rounds := 12, 4
	if testing.Short() {
		n, rounds = 8, 2
	}
	return RemoveHeavyWorkload(11, n, rounds)
}

// TestDiscardCrashSweep crashes the remove-heavy workload at strided
// prefix points of the unflushed-write stream on every FTL-backed
// system. The workload's repeated sync rounds make the later crash
// points land after several checkpoints' worth of frees and deferred
// discards, so a premature TRIM (one issued while an older superblock
// generation or log tail still referenced the extent) would surface here
// as a lost acknowledged file.
func TestDiscardCrashSweep(t *testing.T) {
	steps := removeHeavyFor(t)
	for _, sys := range ftlSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			n := ProbeUnflushed(sys, steps)
			budget := 40
			if testing.Short() {
				budget = 12
			}
			report(t, Sweep(sys, steps, prefixSpecsFor(n, budget)))
		})
	}
}

// TestDiscardTornCrashSweep adds mid-sector tears to the same workload:
// a discard zeroes whole ranges, so a torn neighboring write must not be
// able to smear into a trimmed-then-reallocated extent.
func TestDiscardTornCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("torn discard sweep skipped in -short")
	}
	steps := removeHeavyFor(t)
	for _, sys := range ftlSystems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			n := ProbeUnflushed(sys, steps)
			var specs []CrashSpec
			stride := n/8 + 1
			for k := 0; k < n; k += stride {
				for _, num := range []int{1, 3} {
					specs = append(specs, CrashSpec{Kind: CrashTorn, Keep: k, TornNum: num, TornDen: 4})
				}
			}
			report(t, Sweep(sys, steps, specs))
		})
	}
}
