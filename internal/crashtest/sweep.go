package crashtest

import (
	"fmt"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// CrashKind selects how the unflushed-write stream is cut.
type CrashKind int

const (
	// CrashPrefix keeps the first Keep unflushed writes (classic
	// volatile-cache loss).
	CrashPrefix CrashKind = iota
	// CrashTorn keeps Keep writes plus a byte-prefix of write Keep —
	// a write torn mid-sector by power loss.
	CrashTorn
	// CrashSubset keeps a seeded-random subset of unflushed writes,
	// modeling a cache that drains out of order.
	CrashSubset
)

// CrashSpec describes one crash point. Keep values beyond the trial's
// actual unflushed-write count are clamped: Go map iteration makes the
// count vary slightly between otherwise identical runs, so each trial
// interprets the spec against its own stream.
type CrashSpec struct {
	Kind CrashKind
	Keep int // CrashPrefix/CrashTorn: writes kept intact
	// TornNum/TornDen give the fraction of the torn write persisted.
	TornNum, TornDen int
	Seed             uint64 // CrashSubset: survival sampling seed
	KeepPct          int    // CrashSubset: per-write survival probability
}

// String renders a stable description for reports.
func (cs CrashSpec) String() string {
	switch cs.Kind {
	case CrashTorn:
		return fmt.Sprintf("torn keep=%d frac=%d/%d", cs.Keep, cs.TornNum, cs.TornDen)
	case CrashSubset:
		return fmt.Sprintf("subset seed=%d keep=%d%%", cs.Seed, cs.KeepPct)
	default:
		return fmt.Sprintf("prefix keep=%d", cs.Keep)
	}
}

// apply crashes dev according to the spec, clamped to its actual
// unflushed-write count.
func (cs CrashSpec) apply(dev *blockdev.Dev) {
	n := dev.UnflushedWrites()
	switch cs.Kind {
	case CrashPrefix:
		k := cs.Keep
		if k > n {
			k = n
		}
		dev.Crash(k)
	case CrashTorn:
		if cs.Keep >= n {
			dev.Crash(n)
			return
		}
		torn := dev.UnflushedWriteLen(cs.Keep) * cs.TornNum / cs.TornDen
		dev.CrashTorn(cs.Keep, torn)
	case CrashSubset:
		rnd := sim.NewRand(cs.Seed)
		survive := make([]bool, n)
		for i := range survive {
			survive[i] = rnd.Intn(100) < cs.KeepPct
		}
		dev.CrashSubset(survive)
	}
}

// PrefixSpecs enumerates every prefix crash point 0..n.
func PrefixSpecs(n int) []CrashSpec {
	out := make([]CrashSpec, 0, n+1)
	for k := 0; k <= n; k++ {
		out = append(out, CrashSpec{Kind: CrashPrefix, Keep: k})
	}
	return out
}

// TornSpecs enumerates torn-write crash points: each write boundary
// 0..n-1, torn at each of the given fractions (numerator over denom).
func TornSpecs(n int, fracNums []int, fracDen int) []CrashSpec {
	var out []CrashSpec
	for k := 0; k < n; k++ {
		for _, num := range fracNums {
			out = append(out, CrashSpec{Kind: CrashTorn, Keep: k, TornNum: num, TornDen: fracDen})
		}
	}
	return out
}

// SubsetSpecs samples count seeded-random reordered-persistence crashes.
func SubsetSpecs(count int, baseSeed uint64, keepPct int) []CrashSpec {
	out := make([]CrashSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, CrashSpec{Kind: CrashSubset, Seed: baseSeed + uint64(i), KeepPct: keepPct})
	}
	return out
}

// SampledPrefixSpecs draws count prefix points in [0, n] (for long
// workloads where exhaustive enumeration is too slow).
func SampledPrefixSpecs(count int, baseSeed uint64, n int) []CrashSpec {
	rnd := sim.NewRand(baseSeed)
	out := make([]CrashSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, CrashSpec{Kind: CrashPrefix, Keep: rnd.Intn(n + 1)})
	}
	return out
}

func mountConfig() vfs.Config {
	cfg := vfs.DefaultConfig()
	cfg.CacheBytes = 128 << 20
	return cfg
}

// guard runs fn, converting a panic into an error. Recovery and
// traversal of a crashed image must never panic; the harness records a
// panic as an oracle violation rather than aborting the sweep.
func guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	fn()
	return nil
}

// ProbeUnflushed runs the workload once without crashing and reports the
// unflushed-write count, for sizing an exhaustive enumeration. The count
// varies slightly between runs (map iteration order); specs are clamped
// per trial.
func ProbeUnflushed(sys System, steps []Step) int {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs, err := sys.Build(env, dev)
	if err != nil {
		panic(fmt.Sprintf("crashtest: %s build: %v", sys.Name, err))
	}
	m := vfs.NewMount(env, fs, mountConfig())
	dev.EnableCrashTracking()
	for _, s := range steps {
		applyStep(m, s)
	}
	m.Writeback()
	if sys.Push != nil {
		sys.Push(fs)
	}
	return dev.UnflushedWrites()
}

// RunTrial formats sys on a fresh device, applies the workload, crashes
// at spec, recovers, and checks the oracle. Each trial rebuilds from
// scratch so crash points are independent.
func RunTrial(sys System, steps []Step, spec CrashSpec) []Violation {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	fs, err := sys.Build(env, dev)
	if err != nil {
		panic(fmt.Sprintf("crashtest: %s build: %v", sys.Name, err))
	}
	m := vfs.NewMount(env, fs, mountConfig())
	mo := newModel()
	dev.EnableCrashTracking()
	for _, s := range steps {
		applyStep(m, s)
		mo.apply(s)
	}
	// Push dirty cache state to the device without a flush: the crash
	// then cuts an in-flight writeback stream rather than an empty one.
	m.Writeback()
	if sys.Push != nil {
		sys.Push(fs)
	}
	spec.apply(dev)

	var m2 *vfs.Mount
	if err := guard(func() {
		fs2, rerr := sys.Recover(env, dev)
		if rerr != nil {
			panic(rerr)
		}
		m2 = vfs.NewMount(env, fs2, mountConfig())
	}); err != nil {
		return []Violation{{System: sys.Name, Spec: spec.String(), Detail: "recovery failed: " + err.Error()}}
	}

	var vs []Violation
	if err := guard(func() { vs = mo.check(m2, sys.Name, spec.String()) }); err != nil {
		vs = append(vs, Violation{System: sys.Name, Spec: spec.String(), Detail: "post-recovery check: " + err.Error()})
	}
	return vs
}

// Outcome summarises a sweep.
type Outcome struct {
	Trials     int
	Violations []Violation
}

// Sweep runs every spec as an independent trial.
func Sweep(sys System, steps []Step, specs []CrashSpec) Outcome {
	out := Outcome{Trials: len(specs)}
	for _, spec := range specs {
		out.Violations = append(out.Violations, RunTrial(sys, steps, spec)...)
	}
	return out
}

// RemoveHeavyWorkload builds the discard-stress workload: a durable
// population, then rounds of interleaved remove-and-replace churn each
// sealed with a full sync, then an unsynced mutation tail. Every sync
// boundary is a checkpoint that frees the removed files' space, so by
// the later rounds the file systems are issuing discards for space freed
// one or two checkpoints earlier — a crash cut anywhere in the write
// stream lands between some free and its deferred discard, which is
// exactly the window where premature trimming would zero extents an
// older superblock generation still references. Removed names are never
// reused (replacements get fresh names), matching the workload rule the
// oracle assumes everywhere else.
func RemoveHeavyWorkload(seed uint64, nFiles, rounds int) []Step {
	rnd := sim.NewRand(seed)
	var steps []Step
	steps = append(steps, Step{Op: OpMkdir, Path: "d"})
	data := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(1 + rnd.Intn(255))
		}
		return b
	}
	var live []string
	next := 0
	create := func(n int) {
		p := fmt.Sprintf("d/f%03d", next)
		next++
		steps = append(steps, Step{Op: OpWrite, Path: p, Data: data(n)})
		live = append(live, p)
	}
	for i := 0; i < nFiles; i++ {
		create(512 + rnd.Intn(4096))
	}
	steps = append(steps, Step{Op: OpSync})
	remove := func() {
		j := rnd.Intn(len(live))
		steps = append(steps, Step{Op: OpRemove, Path: live[j]})
		live = append(live[:j], live[j+1:]...)
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < nFiles/2; i++ {
			remove()
			create(512 + rnd.Intn(4096))
		}
		steps = append(steps, Step{Op: OpSync})
	}
	// Unsynced tail: removes and new files whose fate the crash decides.
	for i := 0; i < nFiles/2; i++ {
		remove()
		if i%2 == 0 {
			create(256 + rnd.Intn(2048))
		}
	}
	return steps
}

// StandardWorkload builds the deterministic mixed workload used by the
// smoke sweeps: a durable (synced) population phase, then an unsynced
// mutation phase of overwrites, appends, new files, removes and fsyncs.
// All payload bytes are non-zero so the oracle's zero-is-unpersisted
// rule cannot mask lost writes.
func StandardWorkload(seed uint64, nFiles int) []Step {
	rnd := sim.NewRand(seed)
	var steps []Step
	dirs := []string{"d0", "d0/sub", "d1"}
	for _, d := range dirs {
		steps = append(steps, Step{Op: OpMkdir, Path: d})
	}
	var live []string
	data := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(1 + rnd.Intn(255))
		}
		return b
	}
	for i := 0; i < nFiles; i++ {
		p := fmt.Sprintf("%s/f%03d", dirs[i%len(dirs)], i)
		steps = append(steps, Step{Op: OpWrite, Path: p, Data: data(512 + rnd.Intn(8192))})
		live = append(live, p)
	}
	steps = append(steps, Step{Op: OpSync})

	for i := 0; i < nFiles; i++ {
		switch rnd.Intn(6) {
		case 0: // overwrite a prefix of an existing file
			p := live[rnd.Intn(len(live))]
			steps = append(steps, Step{Op: OpWrite, Path: p, Data: data(256 + rnd.Intn(2048))})
		case 1: // overwrite at an interior offset
			p := live[rnd.Intn(len(live))]
			steps = append(steps, Step{Op: OpWrite, Path: p, Off: int64(rnd.Intn(4096)), Data: data(128 + rnd.Intn(1024))})
		case 2: // append-ish extension well past the old size
			p := live[rnd.Intn(len(live))]
			steps = append(steps, Step{Op: OpWrite, Path: p, Off: int64(4096 + rnd.Intn(8192)), Data: data(256 + rnd.Intn(2048))})
		case 3: // brand-new volatile file
			p := fmt.Sprintf("%s/v%03d", dirs[rnd.Intn(len(dirs))], i)
			steps = append(steps, Step{Op: OpWrite, Path: p, Data: data(256 + rnd.Intn(4096))})
			live = append(live, p)
		case 4: // unsynced remove; the name is never reused
			if len(live) > 1 {
				j := rnd.Intn(len(live))
				steps = append(steps, Step{Op: OpRemove, Path: live[j]})
				live = append(live[:j], live[j+1:]...)
			}
		case 5: // fsync one live file
			steps = append(steps, Step{Op: OpFsync, Path: live[rnd.Intn(len(live))]})
		}
	}
	return steps
}
