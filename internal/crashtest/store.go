package crashtest

import (
	"fmt"

	"betrfs/internal/betree"
	"betrfs/internal/betrfs"
	"betrfs/internal/blockdev"
	"betrfs/internal/kmem"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
)

// The fifth system under test is the raw SFL-backed Bε-tree store, below
// the VFS and BetrFS schema layers. Its crash contract is stricter than
// the file-system oracle: the write-ahead log totally orders mutations,
// so the recovered store must equal the state after some operation
// prefix at least as long as the last synced one — not merely a per-key
// mix of versions.

// StoreOp is one KV operation: a Put of Key→Val, or a Sync barrier.
type StoreOp struct {
	Key, Val string
	Sync     bool
}

// StandardStoreOps builds a deterministic op sequence: a synced
// population phase, then unsynced overwrites and inserts. Values stay
// small enough that LogAuto routes them through the log, which is what
// gives the prefix guarantee being checked.
func StandardStoreOps(seed uint64, n int) []StoreOp {
	rnd := sim.NewRand(seed)
	var ops []StoreOp
	for i := 0; i < n; i++ {
		ops = append(ops, StoreOp{Key: fmt.Sprintf("k%04d", i), Val: fmt.Sprintf("v%04d.%d", i, rnd.Intn(1000))})
	}
	ops = append(ops, StoreOp{Sync: true})
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", rnd.Intn(2*n))
		ops = append(ops, StoreOp{Key: k, Val: fmt.Sprintf("w%04d.%d", i, rnd.Intn(1000))})
	}
	return ops
}

// RunStoreTrial applies ops to a fresh SFL-backed store, crashes at
// spec, reopens, and checks prefix consistency.
func RunStoreTrial(ops []StoreOp, spec CrashSpec) []Violation {
	const name = "betree-store"
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(64))
	cfg := betrfs.V06Config().Tree
	backend, err := sfl.NewDefault(env, dev)
	if err != nil {
		panic(fmt.Sprintf("crashtest: sfl format: %v", err))
	}
	st, err := betree.Open(env, kmem.New(env, true), cfg, backend)
	if err != nil {
		panic(fmt.Sprintf("crashtest: store format: %v", err))
	}
	dev.EnableCrashTracking()

	// states[i] is the KV state after i mutations; floor is the state
	// index covered by the last Sync.
	keys := map[string]bool{}
	cur := map[string]string{}
	states := []map[string]string{copyState(cur)}
	floor := 0
	for _, op := range ops {
		if op.Sync {
			st.Sync()
			floor = len(states) - 1
			continue
		}
		st.Meta().Put([]byte(op.Key), []byte(op.Val), betree.LogAuto)
		cur[op.Key] = op.Val
		keys[op.Key] = true
		states = append(states, copyState(cur))
	}
	// Background log writeback: put the unsynced log tail on the device
	// (without a barrier) so the crash has something to tear.
	st.Log().WriteOut()
	spec.apply(dev)

	var st2 *betree.Store
	if err := guard(func() {
		b2, berr := sfl.NewDefault(env, dev)
		if berr != nil {
			panic(berr)
		}
		s2, rerr := betree.Open(env, kmem.New(env, true), cfg, b2)
		if rerr != nil {
			panic(rerr)
		}
		st2 = s2
	}); err != nil {
		return []Violation{{System: name, Spec: spec.String(), Detail: "reopen failed: " + err.Error()}}
	}

	recovered := map[string]string{}
	if err := guard(func() {
		for k := range keys {
			v, ok, gerr := st2.Meta().Get([]byte(k))
			if gerr != nil {
				panic(fmt.Sprintf("Get(%s): %v", k, gerr))
			}
			if ok {
				recovered[k] = string(v)
			}
		}
	}); err != nil {
		return []Violation{{System: name, Spec: spec.String(), Detail: "post-recovery read: " + err.Error()}}
	}

	for j := floor; j < len(states); j++ {
		if statesEqual(states[j], recovered, keys) {
			return nil
		}
	}
	return []Violation{{
		System: name, Spec: spec.String(),
		Detail: fmt.Sprintf("recovered state matches no op prefix in [%d,%d]", floor, len(states)-1),
	}}
}

func copyState(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func statesEqual(want, got map[string]string, keys map[string]bool) bool {
	for k := range keys {
		wv, wok := want[k]
		gv, gok := got[k]
		if wok != gok || wv != gv {
			return false
		}
	}
	return true
}
