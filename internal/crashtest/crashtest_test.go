package crashtest

import (
	"testing"
)

func report(t *testing.T, o Outcome) {
	t.Helper()
	for _, v := range o.Violations {
		t.Errorf("%s", v)
	}
	if len(o.Violations) == 0 {
		t.Logf("%d trials, no oracle violations", o.Trials)
	}
}

// prefixSpecsFor enumerates exhaustively when the crash space is small
// and strides through it otherwise, always including both endpoints.
func prefixSpecsFor(n, budget int) []CrashSpec {
	if n+1 <= budget {
		return PrefixSpecs(n)
	}
	stride := (n + budget - 1) / budget
	var out []CrashSpec
	for k := 0; k <= n; k += stride {
		out = append(out, CrashSpec{Kind: CrashPrefix, Keep: k})
	}
	out = append(out, CrashSpec{Kind: CrashPrefix, Keep: n})
	return out
}

func workloadFor(t *testing.T) []Step {
	n := 10
	if testing.Short() {
		n = 6
	}
	return StandardWorkload(7, n)
}

func TestPrefixCrashSweep(t *testing.T) {
	steps := workloadFor(t)
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			n := ProbeUnflushed(sys, steps)
			budget := 40
			if testing.Short() {
				budget = 12
			}
			report(t, Sweep(sys, steps, prefixSpecsFor(n, budget)))
		})
	}
}

func TestTornCrashSweep(t *testing.T) {
	steps := workloadFor(t)
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			n := ProbeUnflushed(sys, steps)
			// Tear every writeStride-th boundary at 1/4 and 3/4.
			var keeps []int
			stride := n/10 + 1
			for k := 0; k < n; k += stride {
				keeps = append(keeps, k)
			}
			var specs []CrashSpec
			for _, k := range keeps {
				for _, num := range []int{1, 3} {
					specs = append(specs, CrashSpec{Kind: CrashTorn, Keep: k, TornNum: num, TornDen: 4})
				}
			}
			report(t, Sweep(sys, steps, specs))
		})
	}
}

func TestSubsetCrashSweep(t *testing.T) {
	steps := workloadFor(t)
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			specs := SubsetSpecs(trials, 101, 50)
			specs = append(specs, SubsetSpecs(trials/2, 900, 85)...)
			report(t, Sweep(sys, steps, specs))
		})
	}
}

// TestCleanSyncSurvives pins the oracle's easy direction: crashing with
// nothing unflushed (workload ends in Sync) must preserve everything.
func TestCleanSyncSurvives(t *testing.T) {
	steps := append(workloadFor(t), Step{Op: OpSync})
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			report(t, Sweep(sys, steps, []CrashSpec{{Kind: CrashPrefix, Keep: 0}}))
		})
	}
}

func TestStoreCrashSweep(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 12
	}
	ops := StandardStoreOps(5, n)
	// Probe the unflushed-write count with a keep-everything trial.
	probeSpec := CrashSpec{Kind: CrashPrefix, Keep: 1 << 30}
	if vs := RunStoreTrial(ops, probeSpec); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("%s", v)
		}
	}

	var specs []CrashSpec
	specs = append(specs, prefixSpecsFor(64, 24)...)
	specs = append(specs, TornSpecs(8, []int{1, 3}, 4)...)
	specs = append(specs, SubsetSpecs(8, 55, 50)...)
	trials := 0
	for _, spec := range specs {
		for _, v := range RunStoreTrial(ops, spec) {
			t.Errorf("%s", v)
		}
		trials++
	}
	t.Logf("%d store trials", trials)
}
