package crashtest

import (
	"betrfs/internal/betrfs"
	"betrfs/internal/blockdev"
	"betrfs/internal/cowfs"
	"betrfs/internal/extfs"
	"betrfs/internal/kmem"
	"betrfs/internal/logfs"
	"betrfs/internal/sfl"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// System is one file system under crash test: a formatter and a
// mount-time recovery entry point over the same device.
type System struct {
	Name string
	// Build formats a fresh file system over dev.
	Build func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error)
	// Recover re-mounts the (crashed) device.
	Recover func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error)
	// Push, if set, writes FS-internal buffers to the device without a
	// durability barrier (background log writeback), so the crash cuts
	// an in-flight stream. It must not assert any durability.
	Push func(fs vfs.FS)
}

func newBetrfs(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
	cfg := betrfs.V06Config()
	// A deliberately tiny node cache: evictions force tree-node
	// writeouts during the workload, so the unflushed-write stream the
	// crash cuts contains in-flight node writes racing the log, not
	// just the log tail.
	cfg.Tree.CacheBytes = 1 << 20
	backend, err := sfl.NewDefault(env, dev)
	if err != nil {
		return nil, err
	}
	return betrfs.New(env, kmem.New(env, true), cfg, backend)
}

// Systems returns the file systems under test: the three baselines plus
// BetrFS v0.6 (the raw SFL-backed store is covered separately by
// RunStoreTrial). BetrFS has no separate recovery entry point — opening
// the store over an existing device replays the superblock and log.
func Systems() []System {
	return []System{
		{
			Name: "ext4",
			Build: func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
				return extfs.New(env, dev, extfs.Ext4Profile()), nil
			},
			Recover: func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
				return extfs.Recover(env, dev, extfs.Ext4Profile())
			},
		},
		{
			Name: "f2fs",
			Build: func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
				return logfs.New(env, dev), nil
			},
			Recover: func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
				return logfs.Recover(env, dev)
			},
		},
		{
			Name: "btrfs",
			Build: func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
				return cowfs.New(env, dev, cowfs.BtrfsProfile()), nil
			},
			Recover: func(env *sim.Env, dev *blockdev.Dev) (vfs.FS, error) {
				return cowfs.Recover(env, dev, cowfs.BtrfsProfile())
			},
		},
		{
			Name:    "betrfs-v0.6",
			Build:   newBetrfs,
			Recover: newBetrfs,
			// BetrFS buffers messages in the tree and the WAL until a
			// barrier; background log writeback is what puts a tearable
			// log tail on the device.
			Push: func(fs vfs.FS) {
				fs.(*betrfs.FS).Store().Log().WriteOut()
			},
		},
	}
}

// SystemByName looks up a system; it panics on unknown names (harness
// wiring error, not a runtime condition).
func SystemByName(name string) System {
	for _, s := range Systems() {
		if s.Name == name {
			return s
		}
	}
	panic("crashtest: unknown system " + name)
}
