// Package crashtest is the systematic crash-consistency verification
// harness. It runs a recorded workload against any of the repository's
// file systems (and the raw SFL-backed Bε-tree store), crashes the
// simulated device at an enumerated or sampled point in the
// unflushed-write stream — optionally tearing one write mid-sector or
// dropping an arbitrary subset, modeling an out-of-order volatile cache —
// recovers, and checks the survivor against a legal-states oracle:
//
//   - everything fsync'd (or covered by a full sync) must survive with
//     its durable content intact;
//   - everything newer may be present in any per-byte mix of
//     post-durable versions, or absent/zero where it was never durable;
//   - nothing else — no phantom files, no foreign data, no panics during
//     recovery or traversal.
//
// The oracle is deliberately per-byte rather than per-file: torn data
// blocks legitimately mix an old and a new version within one sector,
// and out-of-place file systems legitimately expose unwritten (zero)
// blocks past the durable size. What is never legal is a byte below the
// durable watermark that matches no version the file ever had.
package crashtest

import (
	"fmt"
	"sort"
	"strings"

	"betrfs/internal/vfs"
)

// Op enumerates workload step kinds.
type Op int

// Workload step kinds. Truncate is deliberately absent: logfs reuses
// truncate-invalidated blocks before the NAT persists, a known model
// limitation documented in DESIGN.md.
const (
	OpMkdir Op = iota
	OpWrite
	OpFsync
	OpSync
	OpRemove
)

// Step is one recorded workload operation.
type Step struct {
	Op   Op
	Path string
	Off  int64
	Data []byte
}

// snap is one point-in-time state of a path.
type snap struct {
	exists bool
	dir    bool
	data   []byte
}

// fileModel is the oracle's view of one path: every state it passed
// through, and the index of the last state known durable.
type fileModel struct {
	history []snap
	durable int // index into history; -1 = never durable
}

func (fm *fileModel) last() snap {
	return fm.history[len(fm.history)-1]
}

// model tracks every path a workload touched.
type model struct {
	files map[string]*fileModel
}

func newModel() *model { return &model{files: make(map[string]*fileModel)} }

func (mo *model) get(path string) *fileModel {
	fm, ok := mo.files[path]
	if !ok {
		fm = &fileModel{durable: -1}
		mo.files[path] = fm
	}
	return fm
}

// parents returns the ancestor directories of path ("a/b/c" → "a", "a/b").
func parents(path string) []string {
	var out []string
	for i, r := range path {
		if r == '/' {
			out = append(out, path[:i])
		}
	}
	return out
}

// apply advances the model by one step. It must mirror exactly what
// applyStep does to the live mount.
func (mo *model) apply(s Step) {
	switch s.Op {
	case OpMkdir:
		comps := append(parents(s.Path), s.Path)
		for _, p := range comps {
			fm := mo.get(p)
			if len(fm.history) > 0 && fm.last().exists {
				continue
			}
			fm.history = append(fm.history, snap{exists: true, dir: true})
		}
	case OpWrite:
		fm := mo.get(s.Path)
		var prev []byte
		if len(fm.history) > 0 && fm.last().exists {
			prev = fm.last().data
		}
		end := s.Off + int64(len(s.Data))
		n := int64(len(prev))
		if end > n {
			n = end
		}
		nd := make([]byte, n)
		copy(nd, prev)
		copy(nd[s.Off:], s.Data)
		fm.history = append(fm.history, snap{exists: true, data: nd})
	case OpFsync:
		// fsync persists the file's content and the namespace leading to
		// it (journal commit / NAT+node write / ZIL flush / log flush all
		// cover the pending creates of ancestors).
		fm := mo.get(s.Path)
		if len(fm.history) == 0 || !fm.last().exists {
			return
		}
		fm.durable = len(fm.history) - 1
		for _, p := range parents(s.Path) {
			if pfm, ok := mo.files[p]; ok && len(pfm.history) > 0 {
				pfm.durable = len(pfm.history) - 1
			}
		}
	case OpSync:
		for _, fm := range mo.files {
			if len(fm.history) > 0 {
				fm.durable = len(fm.history) - 1
			}
		}
	case OpRemove:
		fm := mo.get(s.Path)
		fm.history = append(fm.history, snap{exists: false})
	}
}

// applyStep performs one step against the live mount.
func applyStep(m *vfs.Mount, s Step) {
	switch s.Op {
	case OpMkdir:
		m.MkdirAll(s.Path)
	case OpWrite:
		f, err := m.OpenFile(s.Path, true, false)
		if err != nil {
			panic(fmt.Sprintf("crashtest: workload write %s: %v", s.Path, err))
		}
		f.WriteAt(s.Data, s.Off)
		f.Close()
	case OpFsync:
		f, err := m.Open(s.Path)
		if err != nil {
			return
		}
		f.Fsync()
		f.Close()
	case OpSync:
		m.Sync()
	case OpRemove:
		m.Remove(s.Path)
	}
}

// Violation is one oracle failure.
type Violation struct {
	System string
	Spec   string // crash-spec description
	Path   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", v.System, v.Spec, v.Path, v.Detail)
}

// check compares the recovered mount against the model.
func (mo *model) check(m *vfs.Mount, system, spec string) []Violation {
	var out []Violation
	add := func(path, format string, args ...interface{}) {
		out = append(out, Violation{System: system, Spec: spec, Path: path, Detail: fmt.Sprintf(format, args...)})
	}

	paths := make([]string, 0, len(mo.files))
	for p := range mo.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, path := range paths {
		fm := mo.files[path]
		floor := fm.durable
		lo := floor
		if lo < 0 {
			lo = 0
		}
		cands := fm.history[lo:]

		// Absence is legal iff the path was never durable, or some
		// post-durable state (a newer, possibly unsynced remove) lacks it.
		absentOK := floor < 0
		for _, c := range cands {
			if !c.exists {
				absentOK = true
			}
		}

		a, err := m.Stat(path)
		if err != nil {
			if !absentOK {
				add(path, "durable path missing after recovery: %v", err)
			}
			continue
		}

		var present []snap
		for _, c := range cands {
			if c.exists {
				present = append(present, c)
			}
		}
		if len(present) == 0 {
			add(path, "path present after durable remove")
			continue
		}
		if a.Dir != present[0].dir {
			add(path, "type changed: recovered dir=%v, want dir=%v", a.Dir, present[0].dir)
			continue
		}
		if a.Dir {
			continue // content of dirs is checked via their children
		}

		// The durable watermark: bytes below it must match a known
		// version; bytes at or above it may additionally read zero
		// (never-persisted out-of-place blocks). A post-durable remove
		// (legal to persist) erases the watermark.
		durableLen := int64(0)
		if floor >= 0 && fm.history[floor].exists {
			durableLen = int64(len(fm.history[floor].data))
		}
		if absentOK {
			durableLen = 0
		}
		maxSize := int64(0)
		for _, c := range present {
			if int64(len(c.data)) > maxSize {
				maxSize = int64(len(c.data))
			}
		}
		if a.Size < durableLen || a.Size > maxSize {
			add(path, "size %d outside legal range [%d,%d]", a.Size, durableLen, maxSize)
			continue
		}

		f, err := m.Open(path)
		if err != nil {
			add(path, "stat succeeded but open failed: %v", err)
			continue
		}
		buf := make([]byte, a.Size)
		f.ReadAt(buf, 0)
		f.Close()
		for b := int64(0); b < int64(len(buf)); b++ {
			ok := buf[b] == 0 && b >= durableLen
			if !ok {
				for _, c := range present {
					if b < int64(len(c.data)) && c.data[b] == buf[b] {
						ok = true
						break
					}
				}
			}
			if !ok {
				add(path, "byte %d = %#02x matches no legal version (durable watermark %d)", b, buf[b], durableLen)
				break
			}
		}
	}

	// Phantom sweep: every reachable entry must be a path the workload
	// created. Anything else is resurrected foreign state.
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := m.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			p := e.Name
			if dir != "" {
				p = dir + "/" + e.Name
			}
			if _, ok := mo.files[p]; !ok && !strings.HasPrefix(p, ".") {
				add(p, "phantom entry not created by workload")
				continue
			}
			if e.Dir {
				walk(p)
			}
		}
	}
	walk("")
	return out
}
