// Package keys implements BetrFS's full-path key schema.
//
// BetrFS indexes metadata and data by complete path so that logical
// locality in the directory hierarchy becomes physical locality on the
// device (§2.2). The encoding here makes plain bytewise comparison produce
// a depth-first traversal order:
//
//   - A path's components are joined with 0x00, which sorts below every
//     byte that can appear in a file name.
//   - The subtree rooted at directory D occupies exactly the key range
//     [enc(D)+0x00, enc(D)+0x01), so a recursive delete is one range
//     delete, and a directory's entry sorts immediately before its
//     children.
//   - Data-index keys append a 0x00 separator and a big-endian block
//     number, so a file's blocks are contiguous and in order, and a
//     directory's subtree range covers all descendant file blocks too.
package keys

import (
	"bytes"
	"encoding/binary"
	"strings"
)

// Sep separates path components in encoded keys; it sorts below every
// legal file-name byte.
const Sep = 0x00

// RangeEnd is Sep+1; appending it to an encoded directory key yields the
// exclusive upper bound of the directory's subtree.
const RangeEnd = 0x01

// Clean canonicalizes a slash-separated path: leading/trailing slashes and
// empty components are dropped. The root directory is "".
func Clean(path string) string {
	parts := Split(path)
	return strings.Join(parts, "/")
}

// Split returns the non-empty components of a slash-separated path.
func Split(path string) []string {
	raw := strings.Split(path, "/")
	parts := raw[:0]
	for _, p := range raw {
		if p != "" && p != "." {
			parts = append(parts, p)
		}
	}
	return parts
}

// Encode converts a slash-separated path into its key form. The root
// encodes to an empty key.
func Encode(path string) []byte {
	parts := Split(path)
	if len(parts) == 0 {
		return []byte{}
	}
	n := len(parts) - 1
	for _, p := range parts {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for i, p := range parts {
		if i > 0 {
			out = append(out, Sep)
		}
		out = append(out, p...)
	}
	return out
}

// Decode converts an encoded path key back to a slash-separated path.
func Decode(key []byte) string {
	return string(bytes.ReplaceAll(key, []byte{Sep}, []byte{'/'}))
}

// MetaKey returns the metadata-index key for path.
func MetaKey(path string) []byte { return Encode(path) }

// DataKey returns the data-index key for block blk of the file at path.
func DataKey(path string, blk uint64) []byte {
	p := Encode(path)
	out := make([]byte, len(p)+1+8)
	copy(out, p)
	out[len(p)] = Sep
	binary.BigEndian.PutUint64(out[len(p)+1:], blk)
	return out
}

// DataKeyBlock extracts the block number from a data-index key for the
// file at path. It panics if key does not belong to that file.
func DataKeyBlock(path string, key []byte) uint64 {
	p := Encode(path)
	if len(key) != len(p)+9 || !bytes.HasPrefix(key, p) || key[len(p)] != Sep {
		panic("keys: data key does not belong to path")
	}
	return binary.BigEndian.Uint64(key[len(p)+1:])
}

// SubtreeRange returns the half-open key range [lo, hi) covering every
// key strictly below path (children, grandchildren, and — in the data
// index — their blocks). The path's own key is not included. For the root
// the range covers the whole keyspace of encodable paths (file names never
// begin with 0xff, which is not valid UTF-8).
func SubtreeRange(path string) (lo, hi []byte) {
	p := Encode(path)
	if len(p) == 0 {
		return []byte{}, []byte{0xff}
	}
	lo = append(append([]byte{}, p...), Sep)
	hi = append(append([]byte{}, p...), RangeEnd)
	return lo, hi
}

// FileDataRange returns the data-index key range covering all blocks of
// the file at path.
func FileDataRange(path string) (lo, hi []byte) {
	return SubtreeRange(path)
}

// ChildRange returns the metadata-index range containing exactly the
// direct children of directory path (not deeper descendants). Children are
// keys with prefix enc(path)+Sep that contain no further separator; since
// deeper keys contain an extra Sep which sorts first, direct children are
// interleaved with their own subtrees, so callers iterating [lo,hi) must
// skip grandchildren. Use ScanChildren for that logic.
func ChildRange(path string) (lo, hi []byte) {
	return SubtreeRange(path)
}

// IsDirectChild reports whether key (a metadata key) is a direct child of
// the directory whose encoded key is dirKey.
func IsDirectChild(dirKey, key []byte) bool {
	if len(dirKey) > 0 {
		if !bytes.HasPrefix(key, dirKey) || len(key) <= len(dirKey) || key[len(dirKey)] != Sep {
			return false
		}
		key = key[len(dirKey)+1:]
	}
	if len(key) == 0 {
		return false
	}
	return bytes.IndexByte(key, Sep) < 0
}

// Join appends name to a directory path.
func Join(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}

// ParentAndName splits a cleaned path into its parent directory and final
// component. The root has parent "" and name "".
func ParentAndName(path string) (parent, name string) {
	path = Clean(path)
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return "", path
	}
	return path[:i], path[i+1:]
}

// Compare is the key comparison used throughout: plain bytewise order,
// which the encoding above turns into DFS order.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// CommonPrefix returns the length of the shared prefix of a and b; the
// Bε-tree's lifting optimization stores this once per subtree.
func CommonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// RewritePrefix replaces oldPrefix at the start of key with newPrefix,
// implementing the key transform of a range rename. It panics if key does
// not start with oldPrefix.
func RewritePrefix(key, oldPrefix, newPrefix []byte) []byte {
	if !bytes.HasPrefix(key, oldPrefix) {
		panic("keys: rename rewrite on key outside range")
	}
	out := make([]byte, 0, len(newPrefix)+len(key)-len(oldPrefix))
	out = append(out, newPrefix...)
	out = append(out, key[len(oldPrefix):]...)
	return out
}
