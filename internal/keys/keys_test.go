package keys

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	paths := []string{"", "a", "a/b", "a/b/c.txt", "usr/src/linux/fs/ext4/inode.c"}
	for _, p := range paths {
		if got := Decode(Encode(p)); got != p {
			t.Errorf("Decode(Encode(%q)) = %q", p, got)
		}
	}
}

func TestCleanNormalizes(t *testing.T) {
	cases := map[string]string{
		"/a/b/":   "a/b",
		"a//b":    "a/b",
		"/":       "",
		"":        "",
		"./a/./b": "a/b",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDFSOrder(t *testing.T) {
	// Bytewise order of encoded keys must equal depth-first traversal
	// order: a directory sorts immediately before its contents, and the
	// whole subtree is contiguous.
	paths := []string{
		"a", "a/b", "a/b/x", "a/b/y", "a/bc", "a/c", "ab", "b",
	}
	enc := make([][]byte, len(paths))
	for i, p := range paths {
		enc[i] = Encode(p)
	}
	if !sort.SliceIsSorted(enc, func(i, j int) bool {
		return bytes.Compare(enc[i], enc[j]) < 0
	}) {
		for _, p := range paths {
			t.Logf("%q -> %x", p, Encode(p))
		}
		t.Fatal("encoded keys are not in DFS order")
	}
}

func TestSubtreeRangeCoversDescendantsOnly(t *testing.T) {
	lo, hi := SubtreeRange("a/b")
	in := []string{"a/b/x", "a/b/x/y", "a/b/zzz"}
	out := []string{"a", "a/b", "a/bc", "a/c", "b", "a/b!"}
	for _, p := range in {
		k := Encode(p)
		if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
			t.Errorf("%q should be inside subtree range of a/b", p)
		}
	}
	for _, p := range out {
		k := Encode(p)
		if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0 {
			t.Errorf("%q should be outside subtree range of a/b", p)
		}
	}
}

func TestSubtreeRangeCoversDataKeys(t *testing.T) {
	lo, hi := SubtreeRange("a/b")
	for _, blk := range []uint64{0, 1, 1 << 40} {
		k := DataKey("a/b/file", blk)
		if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
			t.Errorf("data key for block %d outside subtree range", blk)
		}
	}
}

func TestFileDataRangeAndBlockOrder(t *testing.T) {
	lo, hi := FileDataRange("f")
	prev := []byte(nil)
	for blk := uint64(0); blk < 300; blk += 7 {
		k := DataKey("f", blk)
		if bytes.Compare(k, lo) < 0 || bytes.Compare(k, hi) >= 0 {
			t.Fatalf("block %d outside file range", blk)
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("block keys out of order at %d", blk)
		}
		if got := DataKeyBlock("f", k); got != blk {
			t.Fatalf("DataKeyBlock = %d, want %d", got, blk)
		}
		prev = k
	}
}

func TestIsDirectChild(t *testing.T) {
	dir := Encode("a/b")
	if !IsDirectChild(dir, Encode("a/b/c")) {
		t.Error("a/b/c should be a direct child of a/b")
	}
	if IsDirectChild(dir, Encode("a/b/c/d")) {
		t.Error("a/b/c/d is not a direct child of a/b")
	}
	if IsDirectChild(dir, Encode("a/bc")) {
		t.Error("a/bc is not a child of a/b")
	}
	root := Encode("")
	if !IsDirectChild(root, Encode("top")) {
		t.Error("top should be a direct child of root")
	}
	if IsDirectChild(root, Encode("top/x")) {
		t.Error("top/x is not a direct child of root")
	}
}

func TestParentAndName(t *testing.T) {
	cases := []struct{ in, parent, name string }{
		{"a/b/c", "a/b", "c"},
		{"a", "", "a"},
		{"", "", ""},
		{"/x/y/", "x", "y"},
	}
	for _, c := range cases {
		p, n := ParentAndName(c.in)
		if p != c.parent || n != c.name {
			t.Errorf("ParentAndName(%q) = %q,%q want %q,%q", c.in, p, n, c.parent, c.name)
		}
	}
}

func TestJoin(t *testing.T) {
	if Join("", "a") != "a" || Join("a", "b") != "a/b" {
		t.Fatal("Join misbehaves")
	}
}

func TestRewritePrefix(t *testing.T) {
	old := Encode("a/b")
	new_ := Encode("x")
	k := DataKey("a/b/f", 3)
	got := RewritePrefix(k, old, new_)
	want := DataKey("x/f", 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("RewritePrefix = %x, want %x", got, want)
	}
}

func TestRewritePrefixPanicsOutsideRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RewritePrefix(Encode("q/r"), Encode("a"), Encode("b"))
}

func TestCommonPrefix(t *testing.T) {
	if CommonPrefix([]byte("abcd"), []byte("abxy")) != 2 {
		t.Fatal("common prefix of abcd/abxy should be 2")
	}
	if CommonPrefix([]byte("ab"), []byte("ab")) != 2 {
		t.Fatal("identical keys share full prefix")
	}
	if CommonPrefix(nil, []byte("a")) != 0 {
		t.Fatal("empty key shares nothing")
	}
}

// Property: encoded order of random paths always groups subtrees
// contiguously — every key between the first and last descendant of a
// directory is itself a descendant.
func TestSubtreeContiguityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		dirs := []string{"d0", "d0/d1", "d2", "d2/d3/d4"}
		var all []string
		for i := 0; i < 40; i++ {
			d := dirs[(int(seed)+i)%len(dirs)]
			all = append(all, d+"/f"+strings.Repeat("x", i%5)+string(rune('a'+i%26)))
		}
		enc := make([][]byte, len(all))
		for i, p := range all {
			enc[i] = Encode(p)
		}
		sort.Slice(enc, func(i, j int) bool { return bytes.Compare(enc[i], enc[j]) < 0 })
		for _, dir := range dirs {
			lo, hi := SubtreeRange(dir)
			inside := false
			exited := false
			for _, k := range enc {
				in := bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0
				if in && exited {
					return false // subtree not contiguous
				}
				if inside && !in {
					exited = true
				}
				inside = in
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataKeyBlockPanicsOnForeignKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DataKeyBlock("a", DataKey("b", 0))
}
