package fsrpc

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrPoisoned marks a client whose transport broke mid-protocol: a frame
// was cut short, a reply arrived out of order, or the stream closed. Every
// error returned from a poisoned client wraps it (errors.Is reports it),
// so callers can distinguish "this call failed" (a status error, safe to
// retry) from "this connection is unusable" and implement a reconnect with
// Reset. See DESIGN.md §11 for the idempotency caveat on resending the
// poisoning call after a reconnect.
var ErrPoisoned = errors.New("fsrpc: client poisoned")

// Client drives the fsrpc protocol over any byte stream. Calls are
// synchronous and serialized: one request is on the wire at a time, which
// keeps the in-process deterministic mode (net.Pipe, single server
// worker) bit-identical run to run. Methods are safe for concurrent use —
// concurrent callers simply queue on the call mutex.
type Client struct {
	mu   sync.Mutex
	rw   io.ReadWriteCloser
	tag  uint64
	dead error // first transport failure; every later call repeats it
}

// NewClient wraps an established connection (a net.Conn or one end of a
// net.Pipe).
func NewClient(rw io.ReadWriteCloser) *Client {
	return &Client{rw: rw}
}

// Close tears down the transport.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = fmt.Errorf("%w: client closed", ErrPoisoned)
	}
	return c.rw.Close()
}

// Reset replaces the transport with a freshly established connection and
// clears the poisoned state, so a caller that detected ErrPoisoned can
// redial and keep using the same Client. The old transport is closed
// (best-effort) and the tag sequence restarts: the new connection is a new
// server session, so handles opened on the old one are gone and in-flight
// effects of the poisoning call are unknown (DESIGN.md §11 — non-idempotent
// calls such as Create or Write may or may not have been applied).
func (c *Client) Reset(rw io.ReadWriteCloser) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rw != nil && c.rw != rw {
		_ = c.rw.Close()
	}
	c.rw = rw
	c.tag = 0
	c.dead = nil
}

// call sends q and waits for its reply, checking tag and op echo. A
// transport error (as opposed to a status error) poisons the client: the
// stream cannot be resynchronized after a partial frame. Poisoning errors
// wrap ErrPoisoned; Reset clears the state after a redial.
func (c *Client) call(q *Request) (*Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	c.tag++
	q.Tag = c.tag
	if err := WriteFrame(c.rw, q.Encode()); err != nil {
		c.dead = fmt.Errorf("%w: send: %w", ErrPoisoned, err)
		return nil, c.dead
	}
	payload, err := ReadFrame(c.rw)
	if err != nil {
		c.dead = fmt.Errorf("%w: recv: %w", ErrPoisoned, err)
		return nil, c.dead
	}
	r, err := DecodeReply(payload)
	if err != nil {
		c.dead = fmt.Errorf("%w: %w", ErrPoisoned, err)
		return nil, c.dead
	}
	if r.Tag != q.Tag || r.Op != q.Op {
		c.dead = fmt.Errorf("%w: %w: reply tag/op mismatch (got %s tag %d, want %s tag %d)",
			ErrPoisoned, ErrProto, r.Op, r.Tag, q.Op, q.Tag)
		return nil, c.dead
	}
	if r.Status != StatusOK {
		return r, r.Status.Err()
	}
	return r, nil
}

// Lookup resolves path. When open is true and the target is a regular
// file, the server opens it in this session and returns the handle.
func (c *Client) Lookup(path string, open bool) (handle uint64, attr Attr, err error) {
	q := &Request{Op: OpLookup, Path: path}
	if open {
		q.Flags = LookupOpen
	}
	r, err := c.call(q)
	if err != nil {
		return 0, Attr{}, err
	}
	return r.Handle, r.Attr, nil
}

// Getattr stats path.
func (c *Client) Getattr(path string) (Attr, error) {
	r, err := c.call(&Request{Op: OpGetattr, Path: path})
	if err != nil {
		return Attr{}, err
	}
	return r.Attr, nil
}

// Create creates (or truncates) a file and opens it, returning the
// session handle and initial attributes.
func (c *Client) Create(path string) (handle uint64, attr Attr, err error) {
	r, err := c.call(&Request{Op: OpCreate, Path: path})
	if err != nil {
		return 0, Attr{}, err
	}
	return r.Handle, r.Attr, nil
}

// Read reads up to n bytes at off from handle.
func (c *Client) Read(handle uint64, off int64, n int) ([]byte, error) {
	if n < 0 || n > MaxData {
		return nil, fmt.Errorf("%w: read size %d out of range", ErrProto, n)
	}
	r, err := c.call(&Request{Op: OpRead, Handle: handle, Off: off, N: uint32(n)})
	if err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write writes data at off through handle, returning bytes written.
func (c *Client) Write(handle uint64, off int64, data []byte) (int, error) {
	if len(data) > MaxData {
		return 0, fmt.Errorf("%w: write size %d exceeds MaxData", ErrProto, len(data))
	}
	r, err := c.call(&Request{Op: OpWrite, Handle: handle, Off: off, Data: data})
	if err != nil {
		return 0, err
	}
	return int(r.N), nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	_, err := c.call(&Request{Op: OpMkdir, Path: path})
	return err
}

// Unlink removes a file.
func (c *Client) Unlink(path string) error {
	_, err := c.call(&Request{Op: OpUnlink, Path: path})
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	_, err := c.call(&Request{Op: OpRmdir, Path: path})
	return err
}

// Rename moves oldPath to newPath.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.call(&Request{Op: OpRename, Path: oldPath, Path2: newPath})
	return err
}

// Readdir lists a directory.
func (c *Client) Readdir(path string) ([]DirEnt, error) {
	r, err := c.call(&Request{Op: OpReaddir, Path: path})
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// Fsync makes handle's data and metadata durable.
func (c *Client) Fsync(handle uint64) error {
	_, err := c.call(&Request{Op: OpFsync, Handle: handle})
	return err
}

// Statfs returns service-level file-system information.
func (c *Client) Statfs() (Statfs, error) {
	r, err := c.call(&Request{Op: OpStatfs})
	if err != nil {
		return Statfs{}, err
	}
	return r.Statfs, nil
}
