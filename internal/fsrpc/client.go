package fsrpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrPoisoned marks a client whose transport broke mid-protocol: a frame
// was cut short, a reply arrived for a tag the client never issued, or the
// stream closed. Every error returned from a poisoned client wraps it
// (errors.Is reports it), so callers can distinguish "this call failed"
// (a status error, safe to retry) from "this connection is unusable" and
// implement a reconnect with Reset. Poisoning is total: every call in
// flight when the transport dies fails with the same class, and the
// transport is closed deterministically so no half-read frame lingers.
// See DESIGN.md §13.6 for the state machine and the idempotency caveat on
// resending the poisoning call after a reconnect.
var ErrPoisoned = errors.New("fsrpc: client poisoned")

// DefaultWindow is the default bound on calls in flight per client. A
// caller that would exceed it blocks in Go/Do until a slot frees — the
// window applies backpressure, it never drops (DESIGN.md §13.4).
const DefaultWindow = 32

// Call is one in-flight request issued with Go. When the call completes
// (reply received, transport poisoned, or Reset), Reply/Err are set and
// the call is delivered on its done channel exactly once.
type Call struct {
	Req   *Request
	Reply *Reply // nil on transport errors
	Err   error  // nil on success; Status.Err() on status errors
	done  chan *Call
}

// Done returns the completion channel; the call itself is sent on it
// exactly once, after Reply and Err are set.
func (c *Call) Done() <-chan *Call { return c.done }

// Client drives the fsrpc protocol over any byte stream, pipelined: up to
// `window` requests may be in flight at once, each identified by its tag,
// with a dedicated reader goroutine dispatching completions in whatever
// order the server produces them. The synchronous convenience methods
// (Lookup, Read, …) each occupy one window slot for the duration of the
// call, so a single-goroutine caller behaves exactly like the historical
// serialized client, while N goroutines (or Go) multiplex one connection.
//
// A transport error — send failure, short frame, a reply for an unknown
// tag — poisons the client: every in-flight call fails with an error
// wrapping ErrPoisoned, the transport is closed, and later calls fail
// fast until Reset installs a fresh connection.
type Client struct {
	window chan struct{} // in-flight slots; send = acquire
	opts   Options
	m      *clientMetrics

	wmu sync.Mutex // serializes frame writes (wire order = Go order)

	mu      sync.Mutex
	rw      io.ReadWriteCloser
	gen     uint64 // bumped by Reset/reconnect; stale readers/writers check it
	tag     uint64
	pending map[uint64]*Call    // tag → in-flight call
	orphans map[uint64]struct{} // tags abandoned by a cancelled context
	dead    error               // first transport failure; later calls repeat it

	// Session resumption state (DESIGN.md §13.9).
	token    string        // server-issued session token (empty: anonymous)
	lease    time.Duration // lease the server granted with the token
	seq      uint64        // last sequence number assigned to a mutation
	dialer   func() (io.ReadWriteCloser, error)
	policy   RedialPolicy
	resuming chan struct{} // non-nil while a redial loop owns the transport
	replay   []*Call       // fate-unknown calls awaiting resume (hold window slots)
}

// NewClient wraps an established connection (a net.Conn or one end of a
// net.Pipe) with the default in-flight window.
func NewClient(rw io.ReadWriteCloser) *Client {
	return NewClientWindow(rw, DefaultWindow)
}

// NewClientWindow wraps an established connection with an explicit bound
// on calls in flight. window < 1 means 1 (fully serialized, the historical
// behavior).
func NewClientWindow(rw io.ReadWriteCloser, window int) *Client {
	if window < 1 {
		window = 1
	}
	return NewClientOpts(rw, Options{Window: window})
}

// NewClientOpts wraps an established connection with full Options.
func NewClientOpts(rw io.ReadWriteCloser, o Options) *Client {
	if o.Window < 1 {
		if o.Window == 0 {
			o.Window = DefaultWindow
		} else {
			o.Window = 1
		}
	}
	c := &Client{
		window:  make(chan struct{}, o.Window),
		opts:    o,
		m:       resolveClientMetrics(o.Metrics),
		rw:      rw,
		pending: make(map[uint64]*Call),
		orphans: make(map[uint64]struct{}),
	}
	go c.reader(0, rw)
	return c
}

// Window returns the client's in-flight bound.
func (c *Client) Window() int { return cap(c.window) }

// Close tears down the transport, failing every in-flight call with
// ErrPoisoned. A redial loop in progress is superseded and exits.
func (c *Client) Close() error {
	err := fmt.Errorf("%w: client closed", ErrPoisoned)
	c.mu.Lock()
	c.gen++ // invalidate the reader and any redial loop
	rw := c.rw
	if c.dead == nil {
		c.dead = err
	}
	c.takeReplayLocked()
	calls := c.replay
	c.replay = nil
	ch := c.resuming
	c.resuming = nil
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	cerr := rw.Close()
	c.failAll(calls, err)
	return cerr
}

// Reset replaces the transport with a freshly established connection and
// clears the poisoned state, so a caller that detected ErrPoisoned can
// redial and keep using the same Client. Any calls still in flight on the
// old transport fail with ErrPoisoned, the old transport is closed
// (best-effort), and the tag sequence restarts: the new connection starts
// a new anonymous server session, so handles opened on the old one are
// gone, any resumable session token is dropped, and in-flight effects of
// the poisoned calls are unknown (DESIGN.md §13.6 — non-idempotent calls
// such as Create or Write may or may not have been applied). For
// transparent reconnection with exactly-once replay, use Hello +
// EnableRedial instead (§13.9).
func (c *Client) Reset(rw io.ReadWriteCloser) {
	c.mu.Lock()
	old := c.rw
	c.takeReplayLocked()
	calls := c.replay
	c.replay = nil
	ch := c.resuming
	c.resuming = nil
	c.gen++
	gen := c.gen
	c.rw = rw
	c.tag = 0
	c.dead = nil
	c.token = ""
	c.seq = 0
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	if old != nil && old != rw {
		_ = old.Close()
	}
	c.failAll(calls, fmt.Errorf("%w: reset", ErrPoisoned))
	go c.reader(gen, rw)
}

// failAll delivers err to every call and releases its window slot.
func (c *Client) failAll(calls []*Call, err error) {
	for _, call := range calls {
		call.Err = err
		<-c.window
		call.done <- call
	}
}

// poison handles the first transport failure for generation gen. With a
// resumable session and a dialer installed (EnableRedial), the client
// enters reconnecting instead of dying: in-flight calls move to the
// replay set (keeping their window slots), the broken transport is
// closed, and a redial loop takes over the next generation. Otherwise the
// failure latches terminally: every in-flight call fails with err, the
// transport is closed so the broken stream is torn down deterministically
// (a poisoned byte stream cannot be resynchronized, and leaving it open
// would leave the peer writing into the void), and every later call fails
// fast with the latched error. Stale generations (superseded by Reset or
// a reconnect) are ignored.
func (c *Client) poison(gen uint64, err error) {
	c.mu.Lock()
	if gen != c.gen || c.dead != nil {
		c.mu.Unlock()
		return
	}
	if c.dialer != nil && c.token != "" {
		c.gen++
		rgen := c.gen
		rw := c.rw
		c.takeReplayLocked()
		c.resuming = make(chan struct{})
		c.mu.Unlock()
		_ = rw.Close()
		go c.redialLoop(rgen, err)
		return
	}
	c.dead = err
	c.takeReplayLocked()
	calls := c.replay
	c.replay = nil
	rw := c.rw
	c.mu.Unlock()
	_ = rw.Close()
	c.failAll(calls, err)
}

// reader is the dispatch loop for one transport generation: it reads
// reply frames and completes the matching in-flight call, in whatever
// order the server pipelines them.
func (c *Client) reader(gen uint64, rw io.ReadWriteCloser) {
	for {
		payload, err := ReadFrame(rw)
		if err != nil {
			c.poison(gen, fmt.Errorf("%w: recv: %w", ErrPoisoned, err))
			return
		}
		r, err := DecodeReply(payload)
		if err != nil {
			c.poison(gen, fmt.Errorf("%w: %w", ErrPoisoned, err))
			return
		}
		c.mu.Lock()
		if gen != c.gen {
			c.mu.Unlock()
			return
		}
		if _, ok := c.orphans[r.Tag]; ok {
			// The caller's context expired and the call was abandoned;
			// the slot was released at abandonment. Discard the reply.
			delete(c.orphans, r.Tag)
			c.mu.Unlock()
			continue
		}
		call, ok := c.pending[r.Tag]
		if !ok || call.Req.Op != r.Op {
			c.mu.Unlock()
			c.poison(gen, fmt.Errorf("%w: %w: reply tag/op mismatch (got %s tag %d)",
				ErrPoisoned, ErrProto, r.Op, r.Tag))
			return
		}
		delete(c.pending, r.Tag)
		c.mu.Unlock()
		call.Reply = r
		if r.Status != StatusOK {
			call.Err = r.Status.Err()
		}
		<-c.window
		call.done <- call
	}
}

// Go issues q asynchronously: it acquires an in-flight window slot
// (blocking while the window is saturated — requests are never dropped),
// assigns the tag, writes the frame, and returns the in-flight call,
// which is delivered on its Done channel when the reply arrives or the
// transport dies. ctx bounds only the wait for a window slot; use Do for
// a context that also bounds the reply wait. Calls issued by a single
// goroutine reach the wire in issue order, which is what the server's
// per-class ordering guarantees key off (DESIGN.md §13.5).
func (c *Client) Go(ctx context.Context, q *Request) *Call {
	call := &Call{Req: q, done: make(chan *Call, 1)}
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead != nil {
		call.Err = dead
		call.done <- call
		return call
	}
	select {
	case c.window <- struct{}{}:
	case <-ctx.Done():
		call.Err = ctx.Err()
		call.done <- call
		return call
	}
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		<-c.window
		call.Err = err
		call.done <- call
		return call
	}
	if q.Seq == 0 && c.token != "" && q.Op.Mutating() {
		c.seq++
		q.Seq = c.seq
	}
	if c.resuming != nil {
		// Transport down, redial in progress: park the call in the replay
		// set (it keeps its window slot). It is assigned a tag and written
		// after the fate-unknown calls when the session resumes.
		c.replay = append(c.replay, call)
		c.mu.Unlock()
		return call
	}
	c.tag++
	q.Tag = c.tag
	gen := c.gen
	rw := c.rw
	c.pending[q.Tag] = call
	c.mu.Unlock()

	c.wmu.Lock()
	err := WriteFrame(rw, q.Encode())
	c.wmu.Unlock()
	if err != nil {
		c.poison(gen, fmt.Errorf("%w: send: %w", ErrPoisoned, err))
	}
	return call
}

// abandon detaches call after its context expired: the tag moves to the
// orphan table so the eventual reply is discarded instead of poisoning
// the stream, and the window slot is released. A call parked in the
// replay set during a reconnect is simply removed from it. Returns false
// when the call already completed (its result is on the done channel).
func (c *Client) abandon(call *Call) bool {
	c.mu.Lock()
	if cur, ok := c.pending[call.Req.Tag]; ok && cur == call {
		delete(c.pending, call.Req.Tag)
		c.orphans[call.Req.Tag] = struct{}{}
		c.mu.Unlock()
		<-c.window
		return true
	}
	for i, parked := range c.replay {
		if parked == call {
			c.replay = append(c.replay[:i], c.replay[i+1:]...)
			c.mu.Unlock()
			<-c.window
			return true
		}
	}
	c.mu.Unlock()
	return false
}

// Do issues q and waits for its completion under ctx. On ctx expiry the
// call is abandoned: its window slot frees immediately and the eventual
// reply is discarded. The request may still execute on the server — the
// same fate-unknown caveat as a poisoned call (DESIGN.md §13.6).
func (c *Client) Do(ctx context.Context, q *Request) (*Reply, error) {
	call := c.Go(ctx, q)
	select {
	case <-call.done:
		return call.Reply, call.Err
	case <-ctx.Done():
		if c.abandon(call) {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				c.m.deadlineExpired.Inc()
			}
			return nil, ctx.Err()
		}
		<-call.done // completion raced the context; prefer the result
		return call.Reply, call.Err
	}
}

// call is the synchronous form every convenience method uses, bounded by
// Options.CallTimeout when one is configured.
func (c *Client) call(q *Request) (*Reply, error) {
	if t := c.opts.CallTimeout; t > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), t)
		defer cancel()
		return c.Do(ctx, q)
	}
	call := c.Go(context.Background(), q)
	<-call.done
	return call.Reply, call.Err
}

// Lookup resolves path. When open is true and the target is a regular
// file, the server opens it in this session and returns the handle.
func (c *Client) Lookup(path string, open bool) (handle uint64, attr Attr, err error) {
	q := &Request{Op: OpLookup, Path: path}
	if open {
		q.Flags = LookupOpen
	}
	r, err := c.call(q)
	if err != nil {
		return 0, Attr{}, err
	}
	return r.Handle, r.Attr, nil
}

// Getattr stats path.
func (c *Client) Getattr(path string) (Attr, error) {
	r, err := c.call(&Request{Op: OpGetattr, Path: path})
	if err != nil {
		return Attr{}, err
	}
	return r.Attr, nil
}

// Create creates (or truncates) a file and opens it, returning the
// session handle and initial attributes.
func (c *Client) Create(path string) (handle uint64, attr Attr, err error) {
	r, err := c.call(&Request{Op: OpCreate, Path: path})
	if err != nil {
		return 0, Attr{}, err
	}
	return r.Handle, r.Attr, nil
}

// Read reads up to n bytes at off from handle.
func (c *Client) Read(handle uint64, off int64, n int) ([]byte, error) {
	if n < 0 || n > MaxData {
		return nil, fmt.Errorf("%w: read size %d out of range", ErrProto, n)
	}
	r, err := c.call(&Request{Op: OpRead, Handle: handle, Off: off, N: uint32(n)})
	if err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write writes data at off through handle, returning bytes written.
func (c *Client) Write(handle uint64, off int64, data []byte) (int, error) {
	if len(data) > MaxData {
		return 0, fmt.Errorf("%w: write size %d exceeds MaxData", ErrProto, len(data))
	}
	r, err := c.call(&Request{Op: OpWrite, Handle: handle, Off: off, Data: data})
	if err != nil {
		return 0, err
	}
	return int(r.N), nil
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	_, err := c.call(&Request{Op: OpMkdir, Path: path})
	return err
}

// Unlink removes a file.
func (c *Client) Unlink(path string) error {
	_, err := c.call(&Request{Op: OpUnlink, Path: path})
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	_, err := c.call(&Request{Op: OpRmdir, Path: path})
	return err
}

// Rename moves oldPath to newPath.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.call(&Request{Op: OpRename, Path: oldPath, Path2: newPath})
	return err
}

// Readdir lists a directory.
func (c *Client) Readdir(path string) ([]DirEnt, error) {
	r, err := c.call(&Request{Op: OpReaddir, Path: path})
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// Fsync makes handle's data and metadata durable.
func (c *Client) Fsync(handle uint64) error {
	_, err := c.call(&Request{Op: OpFsync, Handle: handle})
	return err
}

// Statfs returns service-level file-system information.
func (c *Client) Statfs() (Statfs, error) {
	r, err := c.call(&Request{Op: OpStatfs})
	if err != nil {
		return Statfs{}, err
	}
	return r.Statfs, nil
}

// Bopen opens the named block store on the server's registry (DESIGN.md
// §14), returning the session-scoped block handle and the store's
// capacity in bytes. Block handles do not survive a session resume.
func (c *Client) Bopen(store string) (handle uint64, size int64, err error) {
	r, err := c.call(&Request{Op: OpBopen, Path: store})
	if err != nil {
		return 0, 0, err
	}
	return r.Handle, r.Size, nil
}

// Bread reads n bytes at absolute device offset off from a block handle.
func (c *Client) Bread(handle uint64, off int64, n int) ([]byte, error) {
	if n < 0 || n > MaxData {
		return nil, fmt.Errorf("%w: bread size %d out of range", ErrProto, n)
	}
	r, err := c.call(&Request{Op: OpBread, Handle: handle, Off: off, N: uint32(n)})
	if err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Bwrite writes data at absolute device offset off through a block
// handle, returning bytes written. Idempotent: re-applying the same
// BWRITE yields the same device state (§14).
func (c *Client) Bwrite(handle uint64, off int64, data []byte) (int, error) {
	if len(data) > MaxData {
		return 0, fmt.Errorf("%w: bwrite size %d exceeds MaxData", ErrProto, len(data))
	}
	r, err := c.call(&Request{Op: OpBwrite, Handle: handle, Off: off, Data: data})
	if err != nil {
		return 0, err
	}
	return int(r.N), nil
}

// Bflush drains the block store's queue and volatile write cache.
func (c *Client) Bflush(handle uint64) error {
	_, err := c.call(&Request{Op: OpBflush, Handle: handle})
	return err
}

// Bdiscard forwards a TRIM hint for [off, off+length) through a block
// handle.
func (c *Client) Bdiscard(handle uint64, off, length int64) error {
	_, err := c.call(&Request{Op: OpBdiscard, Handle: handle, Off: off, Len: length})
	return err
}

// Attach rebinds this session's file operations to the named mount share
// on the server's registry (§14). Handles opened before the attach keep
// working against the files they already name.
func (c *Client) Attach(share string) error {
	_, err := c.call(&Request{Op: OpAttach, Path: share})
	return err
}

// Shares lists the server registry's shares: mount shares as directory
// entries (Dir true), block stores as file entries (Dir false).
func (c *Client) Shares() ([]DirEnt, error) {
	r, err := c.call(&Request{Op: OpShares})
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}
