package fsrpc

import (
	"encoding/binary"
	"fmt"
	"time"

	"betrfs/internal/vfs"
)

// Attr is the wire form of vfs.Attr.
type Attr struct {
	Dir   bool
	Size  int64
	Nlink int
	Mtime time.Duration
}

// FromVFS converts a vfs.Attr to its wire form.
func FromVFS(a vfs.Attr) Attr {
	return Attr{Dir: a.Dir, Size: a.Size, Nlink: a.Nlink, Mtime: a.Mtime}
}

// VFS converts a wire Attr back to vfs.Attr.
func (a Attr) VFS() vfs.Attr {
	return vfs.Attr{Dir: a.Dir, Size: a.Size, Nlink: a.Nlink, Mtime: a.Mtime}
}

// DirEnt is one READDIR reply entry.
type DirEnt struct {
	Name string
	Dir  bool
}

// Statfs is the STATFS reply: service-level file-system information.
type Statfs struct {
	BlockSize int64
	SimTimeNs int64 // the serving machine's simulated clock
	Degraded  bool  // mount has degraded read-only (errors=remount-ro)
	Sessions  int64 // live sessions on the server
	OpsServed int64 // requests executed since the server started
}

// LookupOpen is the Request.Flags bit asking LOOKUP to also open a file
// handle when the target is a regular file.
const LookupOpen = 1

// Request is one decoded client request. A single struct covers every op;
// Encode writes only the fields the op defines and Decode reads exactly
// those, so unused fields are never on the wire.
//
// Field usage by op:
//
//	LOOKUP   Path, Flags      → Handle (if opened), Attr
//	GETATTR  Path             → Attr
//	READ     Handle, Off, N   → Data
//	WRITE    Handle, Off, Data→ N
//	CREATE   Path             → Handle, Attr
//	MKDIR    Path             → –
//	UNLINK   Path             → –
//	RMDIR    Path             → –
//	RENAME   Path, Path2      → –
//	READDIR  Path             → Entries
//	FSYNC    Handle           → –
//	STATFS   –                → Statfs
//	HELLO    Token            → Token, Lease, Resumed
//	PING     –                → –
//	BOPEN    Path (store name)→ Handle, Size
//	BREAD    Handle, Off, N   → Data
//	BWRITE   Handle, Off, Data→ N
//	BFLUSH   Handle           → –
//	BDISCARD Handle, Off, Len → –
//	ATTACH   Path (share name)→ –
//	SHARES   –                → Entries
//
// Mutating requests (Op.Mutating) additionally carry Seq, the per-session
// monotonic sequence number the server's duplicate-reply cache keys on;
// Seq 0 marks an unsequenced (sessionless) request that is executed
// without duplicate detection (DESIGN.md §13.9). The block class (§14)
// never carries Seq — its writes are idempotent at absolute offsets.
type Request struct {
	Op     Op
	Tag    uint64
	Seq    uint64
	Path   string
	Path2  string
	Handle uint64
	Off    int64
	N      uint32
	Data   []byte
	Flags  uint8
	Token  string
	Len    int64 // BDISCARD: byte length of the discarded range
}

// Encode renders the request payload.
func (q *Request) Encode() []byte {
	e := &enc{buf: make([]byte, 0, 16+len(q.Path)+len(q.Path2)+len(q.Data))}
	e.u8(uint8(q.Op))
	e.u64(q.Tag)
	switch q.Op {
	case OpLookup:
		e.str(q.Path)
		e.u8(q.Flags)
	case OpGetattr, OpReaddir:
		e.str(q.Path)
	case OpMkdir, OpUnlink, OpRmdir, OpCreate:
		e.str(q.Path)
		e.u64(q.Seq)
	case OpRename:
		e.str(q.Path)
		e.str(q.Path2)
		e.u64(q.Seq)
	case OpRead:
		e.u64(q.Handle)
		e.i64(q.Off)
		e.u32(q.N)
	case OpWrite:
		e.u64(q.Handle)
		e.i64(q.Off)
		e.bytes(q.Data)
		e.u64(q.Seq)
	case OpFsync:
		e.u64(q.Handle)
	case OpStatfs, OpPing, OpShares:
	case OpHello:
		e.str(q.Token)
	case OpBopen, OpAttach:
		e.str(q.Path)
	case OpBread:
		e.u64(q.Handle)
		e.i64(q.Off)
		e.u32(q.N)
	case OpBwrite:
		e.u64(q.Handle)
		e.i64(q.Off)
		e.bytes(q.Data)
	case OpBflush:
		e.u64(q.Handle)
	case OpBdiscard:
		e.u64(q.Handle)
		e.i64(q.Off)
		e.i64(q.Len)
	}
	return e.buf
}

// DecodeRequest parses a request payload.
func DecodeRequest(payload []byte) (*Request, error) {
	d := &dec{buf: payload}
	q := &Request{Op: Op(d.u8()), Tag: d.u64()}
	switch q.Op {
	case OpLookup:
		q.Path = d.str()
		q.Flags = d.u8()
	case OpGetattr, OpReaddir:
		q.Path = d.str()
	case OpMkdir, OpUnlink, OpRmdir, OpCreate:
		q.Path = d.str()
		q.Seq = d.u64()
	case OpRename:
		q.Path = d.str()
		q.Path2 = d.str()
		q.Seq = d.u64()
	case OpRead:
		q.Handle = d.u64()
		q.Off = d.i64()
		q.N = d.u32()
		if q.N > MaxData {
			return nil, fmt.Errorf("%w: READ of %d bytes exceeds MaxData %d", ErrProto, q.N, MaxData)
		}
	case OpWrite:
		q.Handle = d.u64()
		q.Off = d.i64()
		q.Data = d.bytes()
		if len(q.Data) > MaxData {
			return nil, fmt.Errorf("%w: WRITE of %d bytes exceeds MaxData %d", ErrProto, len(q.Data), MaxData)
		}
		q.Seq = d.u64()
	case OpFsync:
		q.Handle = d.u64()
	case OpStatfs, OpPing, OpShares:
	case OpHello:
		q.Token = d.str()
	case OpBopen, OpAttach:
		q.Path = d.str()
	case OpBread:
		q.Handle = d.u64()
		q.Off = d.i64()
		q.N = d.u32()
		if q.N > MaxData {
			return nil, fmt.Errorf("%w: BREAD of %d bytes exceeds MaxData %d", ErrProto, q.N, MaxData)
		}
	case OpBwrite:
		q.Handle = d.u64()
		q.Off = d.i64()
		q.Data = d.bytes()
		if len(q.Data) > MaxData {
			return nil, fmt.Errorf("%w: BWRITE of %d bytes exceeds MaxData %d", ErrProto, len(q.Data), MaxData)
		}
	case OpBflush:
		q.Handle = d.u64()
	case OpBdiscard:
		q.Handle = d.u64()
		q.Off = d.i64()
		q.Len = d.i64()
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrProto, uint8(q.Op))
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// Reply is one decoded server reply. Body fields are meaningful only when
// Status == StatusOK.
type Reply struct {
	Op      Op
	Tag     uint64
	Status  Status
	Handle  uint64
	Attr    Attr
	N       uint32
	Data    []byte
	Entries []DirEnt
	Statfs  Statfs
	Token   string // HELLO: server-issued session token
	Lease   int64  // HELLO: session lease in nanoseconds (0 = no expiry)
	Resumed bool   // HELLO: an existing session was resumed
	Size    int64  // BOPEN: capacity of the opened block store in bytes
}

func (e *enc) attr(a Attr) {
	e.bool(a.Dir)
	e.i64(a.Size)
	e.u32(uint32(a.Nlink))
	e.i64(int64(a.Mtime))
}

func (d *dec) attr() Attr {
	return Attr{Dir: d.bool(), Size: d.i64(), Nlink: int(d.u32()), Mtime: time.Duration(d.i64())}
}

// Encode renders the reply payload.
func (r *Reply) Encode() []byte {
	e := &enc{buf: make([]byte, 0, 16+len(r.Data))}
	e.u8(uint8(r.Op) | replyBit)
	e.u64(r.Tag)
	e.u8(uint8(r.Status))
	if r.Status != StatusOK {
		return e.buf
	}
	switch r.Op {
	case OpLookup, OpCreate:
		e.u64(r.Handle)
		e.attr(r.Attr)
	case OpGetattr:
		e.attr(r.Attr)
	case OpRead:
		e.bytes(r.Data)
	case OpWrite:
		e.u32(r.N)
	case OpReaddir:
		e.u32(uint32(len(r.Entries)))
		for _, ent := range r.Entries {
			e.str(ent.Name)
			e.bool(ent.Dir)
		}
	case OpStatfs:
		e.i64(r.Statfs.BlockSize)
		e.i64(r.Statfs.SimTimeNs)
		e.bool(r.Statfs.Degraded)
		e.i64(r.Statfs.Sessions)
		e.i64(r.Statfs.OpsServed)
	case OpHello:
		e.str(r.Token)
		e.i64(r.Lease)
		e.bool(r.Resumed)
	case OpBopen:
		e.u64(r.Handle)
		e.i64(r.Size)
	case OpBread:
		e.bytes(r.Data)
	case OpBwrite:
		e.u32(r.N)
	case OpShares:
		e.u32(uint32(len(r.Entries)))
		for _, ent := range r.Entries {
			e.str(ent.Name)
			e.bool(ent.Dir)
		}
	case OpMkdir, OpUnlink, OpRmdir, OpRename, OpFsync, OpPing, OpBflush, OpBdiscard, OpAttach:
	}
	return e.buf
}

// FrameParts renders the reply as a complete wire frame (length prefix
// included) split into scatter-gather segments, byte-identical to
// WriteFrame(w, r.Encode()). For a successful READ or BREAD the data
// bytes are referenced, not copied: the first segment is the 18-byte
// header built in scratch (reused when its capacity suffices) and the
// second is r.Data itself, so a read payload travels device buffer →
// socket with no intermediate copy. zerocopy reports how many payload
// bytes were passed by reference. Every other reply encodes normally
// into scratch as a single segment.
func (r *Reply) FrameParts(scratch []byte) (segs [][]byte, zerocopy int, err error) {
	if (r.Op == OpRead || r.Op == OpBread) && r.Status == StatusOK {
		e := &enc{buf: append(scratch[:0], 0, 0, 0, 0)}
		e.u8(uint8(r.Op) | replyBit)
		e.u64(r.Tag)
		e.u8(uint8(r.Status))
		e.u32(uint32(len(r.Data)))
		payloadLen := len(e.buf) - 4 + len(r.Data)
		if payloadLen > MaxFrame {
			return nil, 0, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame %d", ErrProto, payloadLen, MaxFrame)
		}
		binary.BigEndian.PutUint32(e.buf[:4], uint32(payloadLen))
		return [][]byte{e.buf, r.Data}, len(r.Data), nil
	}
	payload := r.Encode()
	if len(payload) > MaxFrame {
		return nil, 0, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame %d", ErrProto, len(payload), MaxFrame)
	}
	buf := append(scratch[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf = append(buf, payload...)
	return [][]byte{buf}, 0, nil
}

// DecodeReply parses a reply payload.
func DecodeReply(payload []byte) (*Reply, error) {
	d := &dec{buf: payload}
	opByte := d.u8()
	if opByte&replyBit == 0 {
		return nil, fmt.Errorf("%w: reply bit missing", ErrProto)
	}
	r := &Reply{Op: Op(opByte &^ replyBit), Tag: d.u64(), Status: Status(d.u8())}
	if r.Status != StatusOK {
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	}
	switch r.Op {
	case OpLookup, OpCreate:
		r.Handle = d.u64()
		r.Attr = d.attr()
	case OpGetattr:
		r.Attr = d.attr()
	case OpRead:
		r.Data = d.bytes()
	case OpWrite:
		r.N = d.u32()
	case OpReaddir:
		n := int(d.u32())
		if n > MaxFrame/3 {
			return nil, fmt.Errorf("%w: READDIR entry count %d implausible", ErrProto, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			r.Entries = append(r.Entries, DirEnt{Name: d.str(), Dir: d.bool()})
		}
	case OpStatfs:
		r.Statfs = Statfs{
			BlockSize: d.i64(),
			SimTimeNs: d.i64(),
			Degraded:  d.bool(),
			Sessions:  d.i64(),
			OpsServed: d.i64(),
		}
	case OpHello:
		r.Token = d.str()
		r.Lease = d.i64()
		r.Resumed = d.bool()
	case OpBopen:
		r.Handle = d.u64()
		r.Size = d.i64()
	case OpBread:
		r.Data = d.bytes()
	case OpBwrite:
		r.N = d.u32()
	case OpShares:
		n := int(d.u32())
		if n > MaxFrame/3 {
			return nil, fmt.Errorf("%w: SHARES entry count %d implausible", ErrProto, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			r.Entries = append(r.Entries, DirEnt{Name: d.str(), Dir: d.bool()})
		}
	case OpMkdir, OpUnlink, OpRmdir, OpRename, OpFsync, OpPing, OpBflush, OpBdiscard, OpAttach:
	default:
		return nil, fmt.Errorf("%w: unknown reply op %d", ErrProto, uint8(r.Op))
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}
