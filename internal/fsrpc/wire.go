package fsrpc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame %d", ErrProto, len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r. An oversized length
// prefix is a protocol error (the connection should be torn down — the
// stream cannot be resynchronized).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d exceeds MaxFrame %d", ErrProto, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// enc is an append-only payload encoder.
type enc struct {
	buf []byte
}

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// dec is a cursor-based payload decoder; the first malformed field latches
// err and every later read returns zero values, so decode paths need only
// one error check at the end.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated payload at offset %d", ErrProto, d.off)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) str() string {
	n := int(d.u16())
	b := d.take(n)
	return string(b)
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if n > MaxFrame {
		d.fail()
		return nil
	}
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// done returns the accumulated decode error, also failing if trailing
// bytes remain (every payload must be consumed exactly).
func (d *dec) done() error {
	if d.err == nil && d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes in payload", ErrProto, len(d.buf)-d.off)
	}
	return d.err
}
