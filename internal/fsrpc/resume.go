package fsrpc

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"betrfs/internal/metrics"
)

// Options configures a Client beyond the transport itself.
type Options struct {
	// Window bounds calls in flight (min 1; 0 means DefaultWindow).
	Window int
	// Metrics receives the client-side instruments (fsrpc.redial.*,
	// fsrpc.replay.*, fsrpc.deadline.*). Nil registers them on a private
	// registry, so the counters always exist but are invisible.
	Metrics *metrics.Registry
	// CallTimeout bounds each synchronous convenience call (Lookup, Write,
	// …). On expiry the call is abandoned (DESIGN.md §13.6) and the
	// fsrpc.deadline.expired counter is bumped. Zero means no deadline.
	CallTimeout time.Duration
}

// RedialPolicy shapes the automatic reconnect loop (EnableRedial).
type RedialPolicy struct {
	// MaxAttempts bounds consecutive failed dials before the client gives
	// up and poisons terminally. 0 means retry forever.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it up to MaxDelay. Defaults: 10ms base, 1s max. The
	// schedule is deterministic (no jitter) so seeded torture runs
	// reproduce exactly.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep, when non-nil, replaces time.Sleep for backoff waits — tests
	// charge a simulated clock here and sleep zero wall time.
	Sleep func(time.Duration)
	// OnReconnect, when non-nil, is called after every successful resume
	// with the number of dial attempts the outage cost and whether the
	// server still held the session (false: the lease had expired and the
	// fate-unknown calls were failed with ErrStaleSession).
	OnReconnect func(attempts int, resumed bool)
}

// clientMetrics are the client-side instruments (DESIGN.md §13.7).
type clientMetrics struct {
	redialAttempt   *metrics.Counter
	redialSuccess   *metrics.Counter
	redialGiveup    *metrics.Counter
	replayCall      *metrics.Counter
	replayExpired   *metrics.Counter
	deadlineExpired *metrics.Counter
}

func resolveClientMetrics(reg *metrics.Registry) *clientMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &clientMetrics{
		redialAttempt:   reg.Counter("fsrpc.redial.attempt"),
		redialSuccess:   reg.Counter("fsrpc.redial.success"),
		redialGiveup:    reg.Counter("fsrpc.redial.giveup"),
		replayCall:      reg.Counter("fsrpc.replay.call"),
		replayExpired:   reg.Counter("fsrpc.replay.expired"),
		deadlineExpired: reg.Counter("fsrpc.deadline.expired"),
	}
}

// Hello establishes (or refreshes) a named session on the current
// connection: the server issues a token and lease, the session's handle
// table becomes resumable across reconnects, and subsequent mutating
// requests carry sequence numbers for the server's duplicate-reply cache
// (DESIGN.md §13.9). Idempotent: calling it on a client that already holds
// a session asks the server for a fresh one.
func (c *Client) Hello() error {
	r, err := c.call(&Request{Op: OpHello})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.token = r.Token
	c.lease = time.Duration(r.Lease)
	c.seq = 0
	c.mu.Unlock()
	return nil
}

// Ping is the keepalive no-op: it round-trips through the server's fast
// path, renewing the session lease without touching the file system.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Session returns the current session token (empty before Hello) and its
// lease as granted by the server (0 = no expiry).
func (c *Client) Session() (token string, lease time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token, c.lease
}

// EnableRedial turns on automatic reconnection: when the transport dies,
// instead of poisoning, the client redials through dial with bounded
// exponential backoff, resumes its session with HELLO(token), re-issues
// every fate-unknown in-flight call (the server's duplicate-reply cache
// makes replayed mutations exactly-once), and carries on — callers just
// see higher latency. A session is required; if Hello has not been called
// yet, EnableRedial performs it on the current connection first. When the
// lease expired during the outage the fate-unknown calls fail with an
// error wrapping ErrStaleSession and a fresh session is started, so the
// client stays usable either way. See DESIGN.md §13.9.
func (c *Client) EnableRedial(dial func() (io.ReadWriteCloser, error), pol RedialPolicy) error {
	if dial == nil {
		return errors.New("fsrpc: EnableRedial requires a dial function")
	}
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = 10 * time.Millisecond
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = time.Second
	}
	c.mu.Lock()
	needHello := c.token == ""
	c.dialer = dial
	c.policy = pol
	c.mu.Unlock()
	if needHello {
		return c.Hello()
	}
	return nil
}

// sleep applies the policy's backoff wait.
func (c *Client) sleep(d time.Duration) {
	if c.policy.Sleep != nil {
		c.policy.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoffDelay is the deterministic exponential schedule: base doubling
// per attempt, clamped to max.
func backoffDelay(pol RedialPolicy, attempt int) time.Duration {
	d := pol.BaseDelay
	for i := 1; i < attempt && d < pol.MaxDelay; i++ {
		d *= 2
	}
	if d > pol.MaxDelay {
		d = pol.MaxDelay
	}
	return d
}

// takeReplayLocked moves the pending table into the replay set in tag
// order (issue order), after any calls already parked there. Caller holds
// c.mu. Orphaned tags are dropped: their slots were released at
// abandonment and their replies will never arrive.
func (c *Client) takeReplayLocked() {
	tags := make([]uint64, 0, len(c.pending))
	for tag := range c.pending {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	parked := c.replay
	c.replay = make([]*Call, 0, len(tags)+len(parked))
	for _, tag := range tags {
		c.replay = append(c.replay, c.pending[tag])
	}
	c.replay = append(c.replay, parked...)
	c.pending = make(map[uint64]*Call)
	c.orphans = make(map[uint64]struct{})
}

// redialLoop owns reconnect generation rgen: it dials with backoff until a
// resume succeeds, the policy's attempt budget runs out, or the generation
// is superseded by Reset/Close.
func (c *Client) redialLoop(rgen uint64, cause error) {
	var lastErr error = cause
	for attempt := 1; ; attempt++ {
		c.m.redialAttempt.Inc()
		rw, err := c.dialer()
		if err == nil {
			done, rerr := c.resume(rgen, rw, attempt)
			if done {
				return
			}
			_ = rw.Close()
			err = rerr
		}
		lastErr = err
		if c.policy.MaxAttempts > 0 && attempt >= c.policy.MaxAttempts {
			c.m.redialGiveup.Inc()
			c.giveUp(rgen, fmt.Errorf("%w: redial gave up after %d attempts: %w", ErrPoisoned, attempt, lastErr))
			return
		}
		c.sleep(backoffDelay(c.policy, attempt))
		c.mu.Lock()
		stale := c.gen != rgen
		c.mu.Unlock()
		if stale {
			return
		}
	}
}

// resume performs the HELLO(token) handshake on a freshly dialed
// transport and, on success, installs it: replay calls get fresh tags in
// their original issue order, the reader restarts, and the replay frames
// are written before any new call can reach the wire (the write lock is
// held across the whole install). done=false means the handshake failed
// and the caller should back off and retry (the caller closes rw);
// done=true means this generation is finished — resumed, superseded
// (resume closes rw itself, since it was never installed), or (stale
// session) the replays were failed and a fresh session installed.
func (c *Client) resume(rgen uint64, rw io.ReadWriteCloser, attempts int) (done bool, err error) {
	c.mu.Lock()
	if c.gen != rgen {
		c.mu.Unlock()
		_ = rw.Close()
		return true, nil
	}
	token := c.token
	c.mu.Unlock()

	// Raw synchronous handshake: no reader is running for this transport
	// yet, so write the frame and read the one reply in line.
	handshake := func(tag uint64, tok string) (*Reply, error) {
		if werr := WriteFrame(rw, (&Request{Op: OpHello, Tag: tag, Token: tok}).Encode()); werr != nil {
			return nil, werr
		}
		payload, rerr := ReadFrame(rw)
		if rerr != nil {
			return nil, rerr
		}
		r, derr := DecodeReply(payload)
		if derr != nil {
			return nil, derr
		}
		if r.Op != OpHello || r.Tag != tag {
			return nil, fmt.Errorf("%w: resume handshake reply mismatch (%s tag %d)", ErrProto, r.Op, r.Tag)
		}
		return r, nil
	}

	r, err := handshake(1, token)
	if err != nil {
		return false, err
	}
	staleSession := false
	switch r.Status {
	case StatusOK:
	case StatusStale:
		// The lease expired (or the server restarted): the session's
		// duplicate-reply cache is gone, so the fate-unknown calls cannot
		// be replayed safely. Start a fresh session to keep the client
		// usable and fail the replays below.
		staleSession = true
		r, err = handshake(2, "")
		if err != nil {
			return false, err
		}
		if r.Status != StatusOK {
			return false, r.Status.Err()
		}
	default:
		return false, r.Status.Err()
	}

	// Install under the write lock so replay frames precede any frame a
	// newly unblocked Go can write: tag order on the wire stays issue
	// order (DESIGN.md §13.5).
	c.wmu.Lock()
	c.mu.Lock()
	if c.gen != rgen {
		c.mu.Unlock()
		c.wmu.Unlock()
		_ = rw.Close()
		return true, nil
	}
	c.token = r.Token
	c.lease = time.Duration(r.Lease)
	replay := c.replay
	c.replay = nil
	c.rw = rw
	c.tag = 2 // tags 1/2 were consumed by the handshake on this transport
	c.dead = nil
	if staleSession {
		c.seq = 0
	} else {
		for _, call := range replay {
			c.tag++
			call.Req.Tag = c.tag
			c.pending[call.Req.Tag] = call
		}
	}
	ch := c.resuming
	c.resuming = nil
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	go c.reader(rgen, rw)

	if staleSession {
		c.wmu.Unlock()
		for range replay {
			c.m.replayExpired.Inc()
		}
		c.failAll(replay, fmt.Errorf("%w: %w: in-flight effects unknown", ErrPoisoned, ErrStaleSession))
	} else {
		var werr error
		for _, call := range replay {
			c.m.replayCall.Inc()
			if werr = WriteFrame(rw, call.Req.Encode()); werr != nil {
				break
			}
		}
		c.wmu.Unlock()
		if werr != nil {
			// The fresh transport died mid-replay; the calls are back in
			// pending, so the next poison cycle re-collects them.
			c.poison(rgen, fmt.Errorf("%w: send during replay: %w", ErrPoisoned, werr))
		}
	}
	c.m.redialSuccess.Inc()
	if c.policy.OnReconnect != nil {
		c.policy.OnReconnect(attempts, !staleSession)
	}
	return true, nil
}

// giveUp terminates reconnect generation rgen: the client poisons
// terminally and every held call — replay set and pending alike — fails.
func (c *Client) giveUp(rgen uint64, err error) {
	c.mu.Lock()
	if c.gen != rgen {
		c.mu.Unlock()
		return
	}
	c.dead = err
	c.takeReplayLocked()
	calls := c.replay
	c.replay = nil
	ch := c.resuming
	c.resuming = nil
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	c.failAll(calls, err)
}
