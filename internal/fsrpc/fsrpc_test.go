package fsrpc

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"betrfs/internal/ioerr"
	"betrfs/internal/vfs"
)

// TestRequestRoundTrip encodes and re-decodes every op's request shape.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpLookup, Path: "a/b", Flags: LookupOpen},
		{Op: OpGetattr, Path: "a"},
		{Op: OpRead, Handle: 7, Off: 4096, N: 512},
		{Op: OpWrite, Handle: 7, Off: 8192, Data: []byte("payload")},
		{Op: OpCreate, Path: "dir/file"},
		{Op: OpMkdir, Path: "dir"},
		{Op: OpUnlink, Path: "dir/file"},
		{Op: OpRmdir, Path: "dir"},
		{Op: OpRename, Path: "old", Path2: "new"},
		{Op: OpReaddir, Path: ""},
		{Op: OpFsync, Handle: 9},
		{Op: OpStatfs},
		{Op: OpBopen, Path: "blk0"},
		{Op: OpBread, Handle: 5, Off: 4096, N: 4096},
		{Op: OpBwrite, Handle: 5, Off: 8192, Data: []byte("block")},
		{Op: OpBflush, Handle: 5},
		{Op: OpBdiscard, Handle: 5, Off: 4096, Len: 65536},
		{Op: OpAttach, Path: "fs"},
		{Op: OpShares},
	}
	for _, q := range reqs {
		q.Tag = 31337
		got, err := DecodeRequest(q.Encode())
		if err != nil {
			t.Fatalf("%s: decode: %v", q.Op, err)
		}
		if !reflect.DeepEqual(got, q) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", q.Op, got, q)
		}
	}
}

// TestReplyRoundTrip does the same for replies, including error replies
// (which must carry no body).
func TestReplyRoundTrip(t *testing.T) {
	attr := Attr{Dir: false, Size: 123, Nlink: 1, Mtime: 4567}
	reps := []*Reply{
		{Op: OpLookup, Status: StatusOK, Handle: 3, Attr: attr},
		{Op: OpGetattr, Status: StatusOK, Attr: attr},
		{Op: OpRead, Status: StatusOK, Data: []byte{1, 2, 3}},
		{Op: OpWrite, Status: StatusOK, N: 3},
		{Op: OpCreate, Status: StatusOK, Handle: 4, Attr: attr},
		{Op: OpMkdir, Status: StatusOK},
		{Op: OpUnlink, Status: StatusOK},
		{Op: OpRmdir, Status: StatusOK},
		{Op: OpRename, Status: StatusOK},
		{Op: OpReaddir, Status: StatusOK, Entries: []DirEnt{{Name: "x", Dir: true}, {Name: "y"}}},
		{Op: OpFsync, Status: StatusOK},
		{Op: OpStatfs, Status: StatusOK, Statfs: Statfs{BlockSize: 4096, SimTimeNs: 99, Degraded: true, Sessions: 2, OpsServed: 10}},
		{Op: OpBopen, Status: StatusOK, Handle: 2, Size: 1 << 30},
		{Op: OpBread, Status: StatusOK, Data: []byte{9, 8, 7}},
		{Op: OpBwrite, Status: StatusOK, N: 4096},
		{Op: OpBflush, Status: StatusOK},
		{Op: OpBdiscard, Status: StatusOK},
		{Op: OpAttach, Status: StatusOK},
		{Op: OpShares, Status: StatusOK, Entries: []DirEnt{{Name: "fs", Dir: true}, {Name: "blk0"}}},
		{Op: OpRead, Status: StatusIO},
		{Op: OpCreate, Status: StatusReadOnly},
		{Op: OpBread, Status: StatusIO},
		{Op: OpBopen, Status: StatusNotExist},
	}
	for _, r := range reps {
		r.Tag = 5
		got, err := DecodeReply(r.Encode())
		if err != nil {
			t.Fatalf("%s/%s: decode: %v", r.Op, r.Status, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("%s/%s: round trip mismatch:\n got %+v\nwant %+v", r.Op, r.Status, got, r)
		}
	}
}

// TestStatusErrRoundTrip checks StatusOf(s.Err()) == s for every code, the
// property that makes wire error classification identical to direct
// vfs.Mount classification.
func TestStatusErrRoundTrip(t *testing.T) {
	for s := StatusOK; s <= StatusRetired; s++ {
		if got := StatusOf(s.Err()); got != s {
			t.Errorf("StatusOf(%s.Err()) = %s, want %s", s, got, s)
		}
	}
}

// TestStatusOfWrappedErrors maps the errors real mount paths return:
// wrapped device errors, degraded-mount gates, and the vfs sentinels.
func TestStatusOfWrappedErrors(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{vfs.ErrNotExist, StatusNotExist},
		{fmt.Errorf("create: %w", vfs.ErrExist), StatusExist},
		{&ioerr.DeviceError{Op: "write", Off: 4096, Len: 512}, StatusIO},
		{fmt.Errorf("vfs: mount degraded after %v: %w", ioerr.ErrIO, ioerr.ErrReadOnly), StatusReadOnly},
		{fmt.Errorf("alloc: %w", ioerr.ErrNoSpace), StatusNoSpace},
		{ErrBusy, StatusBusy},
		{ErrShutdown, StatusShutdown},
		{errors.New("anything else"), StatusInval},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.want {
			t.Errorf("StatusOf(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// TestFrameLimits rejects oversized frames on both sides.
func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrProto) {
		t.Fatalf("oversized WriteFrame = %v, want EPROTO", err)
	}
	// A hostile length prefix must not allocate or block.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrProto) {
		t.Fatalf("hostile length prefix = %v, want EPROTO", err)
	}
}

// TestDecodeRejectsGarbage feeds truncated and trailing-byte payloads.
func TestDecodeRejectsGarbage(t *testing.T) {
	q := &Request{Op: OpWrite, Tag: 1, Handle: 2, Off: 0, Data: []byte("abc")}
	payload := q.Encode()
	for cut := 1; cut < len(payload); cut++ {
		if _, err := DecodeRequest(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := DecodeRequest(append(append([]byte{}, payload...), 0)); !errors.Is(err, ErrProto) {
		t.Fatalf("trailing byte = %v, want EPROTO", err)
	}
	if _, err := DecodeRequest([]byte{0x77, 0, 0, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrProto) {
		t.Fatal("unknown op accepted")
	}
}
