// Package fsrpc defines the wire protocol of the network file-service
// layer (DESIGN.md §11): a framed, length-prefixed binary request/response
// protocol that exposes the vfs.Mount API over any byte stream — an
// in-process net.Pipe for deterministic tests and benchmarks, or TCP via
// cmd/fsserved for real use.
//
// A frame is a 4-byte big-endian payload length followed by the payload.
// Request payloads are
//
//	op   uint8      operation code (OpLookup … OpShares)
//	tag  uint64     client-chosen request identifier, echoed in the reply
//	body            op-specific fields (see msg.go)
//
// and reply payloads are
//
//	op     uint8    the request's op with the reply bit (0x80) set
//	tag    uint64   echo of the request tag
//	status uint8    errno-style status code (StatusOK on success)
//	body            op-specific fields, present only when status == StatusOK
//
// Integers are big-endian and fixed-width; strings carry a uint16 length
// prefix and byte blobs a uint32 prefix. Frames are bounded by MaxFrame,
// data transfers by MaxData — a peer that sends an oversized frame is
// protocol-broken and the connection is torn down.
//
// Status codes are the errno analogs of the repo's error taxonomy
// (internal/ioerr plus the vfs namespace errors); StatusOf and
// (Status).Err convert between Go error values and wire codes so a client
// sees the same sentinel errors a direct vfs.Mount caller would.
package fsrpc

import (
	"errors"
	"fmt"

	"betrfs/internal/ioerr"
	"betrfs/internal/vfs"
)

// Op is a wire operation code.
type Op uint8

// The protocol operations. The numeric values are wire format; never
// reorder them.
const (
	OpLookup Op = iota + 1
	OpGetattr
	OpRead
	OpWrite
	OpCreate
	OpMkdir
	OpUnlink
	OpRmdir
	OpRename
	OpReaddir
	OpFsync
	OpStatfs
	OpHello
	OpPing
	OpBopen
	OpBread
	OpBwrite
	OpBflush
	OpBdiscard
	OpAttach
	OpShares
)

// replyBit marks a reply payload's op byte.
const replyBit = 0x80

// Ops lists every operation in wire order (conformance tests sweep it).
var Ops = []Op{
	OpLookup, OpGetattr, OpRead, OpWrite, OpCreate, OpMkdir,
	OpUnlink, OpRmdir, OpRename, OpReaddir, OpFsync, OpStatfs,
	OpHello, OpPing, OpBopen, OpBread, OpBwrite, OpBflush,
	OpBdiscard, OpAttach, OpShares,
}

// Mutating reports whether op changes file-system state. Mutating requests
// carry a per-session sequence number so the server's duplicate-reply
// cache can make replays after a reconnect exactly-once (DESIGN.md §13.9);
// read-class ops are idempotent and retry freely. FSYNC is classified
// read-class: re-running it is harmless. The block class (§14) is
// deliberately unsequenced too: BWRITE and BDISCARD name absolute device
// offsets, so re-applying one is idempotent by construction.
func (o Op) Mutating() bool {
	switch o {
	case OpWrite, OpCreate, OpMkdir, OpUnlink, OpRmdir, OpRename:
		return true
	}
	return false
}

// Block reports whether op belongs to the block-store class (DESIGN.md
// §14): it operates on a named block share through a block handle rather
// than on the file namespace. ATTACH and SHARES are control-plane ops,
// not block ops — they inspect or rebind the session's shares.
func (o Op) Block() bool {
	switch o {
	case OpBopen, OpBread, OpBwrite, OpBflush, OpBdiscard:
		return true
	}
	return false
}

// String returns the lower-case op mnemonic used in metric names.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpGetattr:
		return "getattr"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpMkdir:
		return "mkdir"
	case OpUnlink:
		return "unlink"
	case OpRmdir:
		return "rmdir"
	case OpRename:
		return "rename"
	case OpReaddir:
		return "readdir"
	case OpFsync:
		return "fsync"
	case OpStatfs:
		return "statfs"
	case OpHello:
		return "hello"
	case OpPing:
		return "ping"
	case OpBopen:
		return "bopen"
	case OpBread:
		return "bread"
	case OpBwrite:
		return "bwrite"
	case OpBflush:
		return "bflush"
	case OpBdiscard:
		return "bdiscard"
	case OpAttach:
		return "attach"
	case OpShares:
		return "shares"
	default:
		return fmt.Sprintf("op%d", uint8(o))
	}
}

// Wire size limits. MaxData bounds one READ/WRITE transfer; MaxFrame
// bounds any frame (a READDIR of a huge directory is the largest reply).
const (
	MaxData  = 256 << 10
	MaxFrame = 4 << 20
)

// Status is an errno-style wire status code.
type Status uint8

// The status codes. Numeric values are wire format; never reorder.
const (
	StatusOK Status = iota
	StatusNotExist
	StatusExist
	StatusNotDir
	StatusIsDir
	StatusNotEmpty
	StatusIO
	StatusNoSpace
	StatusReadOnly
	StatusBusy
	StatusBadHandle
	StatusInval
	StatusShutdown
	StatusProto
	StatusStale
	StatusRetired
)

// Client-visible sentinel errors for the service-level statuses that have
// no vfs analog. The vfs/ioerr statuses decode to the shared sentinels
// (vfs.ErrNotExist, ioerr.ErrIO, …) so wire callers classify errors
// exactly like direct mount callers.
var (
	// ErrBusy is EBUSY: the server shed the request under admission
	// control (queue saturated or queue-wait deadline exceeded).
	ErrBusy = errors.New("fsrpc: server busy (request shed)")
	// ErrBadHandle is EBADF: the request named a handle the session does
	// not hold (never issued, or evicted from the bounded handle table).
	ErrBadHandle = errors.New("fsrpc: bad file handle")
	// ErrShutdown reports a request that reached a draining server.
	ErrShutdown = errors.New("fsrpc: server shutting down")
	// ErrProto reports a malformed or oversized frame.
	ErrProto = errors.New("fsrpc: protocol error")
	// ErrStaleSession is ESTALE: a HELLO named a session token the server
	// no longer holds — the lease expired or the server restarted — so the
	// session's handles and duplicate-reply cache are gone (DESIGN.md §13.9).
	ErrStaleSession = errors.New("fsrpc: stale session (lease expired or unknown token)")
	// ErrSeqRetired is ERETIRED: a replayed mutation's sequence number fell
	// behind the server's duplicate-reply cache horizon, so the server can
	// neither re-execute it safely nor return the original reply.
	ErrSeqRetired = errors.New("fsrpc: sequence retired from duplicate-reply cache")
)

// String returns the errno-style name of s.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotExist:
		return "ENOENT"
	case StatusExist:
		return "EEXIST"
	case StatusNotDir:
		return "ENOTDIR"
	case StatusIsDir:
		return "EISDIR"
	case StatusNotEmpty:
		return "ENOTEMPTY"
	case StatusIO:
		return "EIO"
	case StatusNoSpace:
		return "ENOSPC"
	case StatusReadOnly:
		return "EROFS"
	case StatusBusy:
		return "EBUSY"
	case StatusBadHandle:
		return "EBADF"
	case StatusInval:
		return "EINVAL"
	case StatusShutdown:
		return "ESHUTDOWN"
	case StatusProto:
		return "EPROTO"
	case StatusStale:
		return "ESTALE"
	case StatusRetired:
		return "ERETIRED"
	default:
		return fmt.Sprintf("status%d", uint8(s))
	}
}

// StatusOf maps a Go error from the vfs/ioerr taxonomy to its wire status.
// EROFS is checked before EIO because a degraded mount's gate error wraps
// ErrReadOnly while the latched cause wraps ErrIO; the gate is the
// operation's observable result.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, vfs.ErrNotExist):
		return StatusNotExist
	case errors.Is(err, vfs.ErrExist):
		return StatusExist
	case errors.Is(err, vfs.ErrNotDir):
		return StatusNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return StatusIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return StatusNotEmpty
	case errors.Is(err, ioerr.ErrReadOnly):
		return StatusReadOnly
	case errors.Is(err, ioerr.ErrNoSpace):
		return StatusNoSpace
	case errors.Is(err, ioerr.ErrIO):
		return StatusIO
	case errors.Is(err, ErrBusy):
		return StatusBusy
	case errors.Is(err, ErrBadHandle):
		return StatusBadHandle
	case errors.Is(err, ErrShutdown):
		return StatusShutdown
	case errors.Is(err, ErrProto):
		return StatusProto
	case errors.Is(err, ErrStaleSession):
		return StatusStale
	case errors.Is(err, ErrSeqRetired):
		return StatusRetired
	default:
		return StatusInval
	}
}

// Err converts a wire status back into the canonical Go error; StatusOK
// returns nil. The round trip StatusOf(s.Err()) == s holds for every code,
// so wire clients and direct mount callers classify identically.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotExist:
		return vfs.ErrNotExist
	case StatusExist:
		return vfs.ErrExist
	case StatusNotDir:
		return vfs.ErrNotDir
	case StatusIsDir:
		return vfs.ErrIsDir
	case StatusNotEmpty:
		return vfs.ErrNotEmpty
	case StatusIO:
		return ioerr.ErrIO
	case StatusNoSpace:
		return ioerr.ErrNoSpace
	case StatusReadOnly:
		return ioerr.ErrReadOnly
	case StatusBusy:
		return ErrBusy
	case StatusBadHandle:
		return ErrBadHandle
	case StatusShutdown:
		return ErrShutdown
	case StatusProto:
		return ErrProto
	case StatusStale:
		return ErrStaleSession
	case StatusRetired:
		return ErrSeqRetired
	default:
		return fmt.Errorf("fsrpc: %s", s)
	}
}
