package fsrpc

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// closeTracked wraps a transport and signals the first Close.
type closeTracked struct {
	net.Conn
	once   sync.Once
	closed chan struct{}
}

func (c *closeTracked) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// TestSupersededResumeClosesDialedConn pins the redial teardown contract:
// when Close supersedes the reconnect generation while a resume handshake
// is in flight, the freshly dialed transport was never installed and must
// be closed by the resume path itself — not leaked.
func TestSupersededResumeClosesDialedConn(t *testing.T) {
	cli, p := newPeer(t)

	gotHello := make(chan struct{})
	release := make(chan struct{})
	dialed := make(chan *closeTracked, 1)
	dial := func() (io.ReadWriteCloser, error) {
		cliEnd, srvEnd := net.Pipe()
		dc := &closeTracked{Conn: cliEnd, closed: make(chan struct{})}
		dialed <- dc
		go func() {
			// Scripted resume peer: accept the HELLO but hold the reply
			// until the test has superseded the generation.
			payload, err := ReadFrame(srvEnd)
			if err != nil {
				return
			}
			q, err := DecodeRequest(payload)
			if err != nil || q.Op != OpHello {
				return
			}
			close(gotHello)
			<-release
			_ = WriteFrame(srvEnd, (&Reply{Op: OpHello, Tag: q.Tag, Token: q.Token}).Encode())
		}()
		return dc, nil
	}

	// Establish the session on the initial transport so the next transport
	// death enters the redial loop instead of poisoning terminally.
	errc := make(chan error, 1)
	go func() {
		errc <- cli.EnableRedial(dial, RedialPolicy{
			BaseDelay: time.Millisecond,
			Sleep:     func(time.Duration) {},
		})
	}()
	q := p.recv(t)
	p.reply(t, &Reply{Op: OpHello, Tag: q.Tag, Token: "T"})
	if err := <-errc; err != nil {
		t.Fatalf("enable redial: %v", err)
	}

	// Kill the transport: the client dials and starts the resume
	// handshake, which parks on the scripted peer.
	_ = p.conn.Close()
	select {
	case <-gotHello:
	case <-time.After(10 * time.Second):
		t.Fatal("redial never reached the resume handshake")
	}

	// Supersede the generation mid-handshake, then let the reply land:
	// resume must notice it lost and close the dialed transport.
	_ = cli.Close()
	close(release)
	dc := <-dialed
	select {
	case <-dc.closed:
	case <-time.After(10 * time.Second):
		t.Fatal("superseded resume leaked the freshly dialed transport")
	}
}
