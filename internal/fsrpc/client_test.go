package fsrpc

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// peer is a scripted raw-frame server end: tests read decoded requests
// from reqs and push replies through send, controlling completion order
// precisely — something a real server cannot script.
type peer struct {
	conn net.Conn
	reqs chan *Request
	errCh chan error
}

func newPeer(t *testing.T) (*Client, *peer) {
	t.Helper()
	cliEnd, srvEnd := net.Pipe()
	p := &peer{conn: srvEnd, reqs: make(chan *Request, 64), errCh: make(chan error, 1)}
	go func() {
		for {
			payload, err := ReadFrame(srvEnd)
			if err != nil {
				p.errCh <- err
				close(p.reqs)
				return
			}
			q, err := DecodeRequest(payload)
			if err != nil {
				p.errCh <- err
				close(p.reqs)
				return
			}
			p.reqs <- q
		}
	}()
	return NewClient(cliEnd), p
}

func (p *peer) reply(t *testing.T, r *Reply) {
	t.Helper()
	if err := WriteFrame(p.conn, r.Encode()); err != nil {
		t.Fatalf("peer write: %v", err)
	}
}

func (p *peer) recv(t *testing.T) *Request {
	t.Helper()
	select {
	case q, ok := <-p.reqs:
		if !ok {
			t.Fatal("peer: transport closed before expected request")
		}
		return q
	case <-time.After(10 * time.Second):
		t.Fatal("peer: timed out waiting for a request")
		return nil
	}
}

func wait(t *testing.T, c *Call) *Call {
	t.Helper()
	select {
	case <-c.Done():
		return c
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for call completion")
		return nil
	}
}

// TestOutOfOrderCompletion pipelines three requests and completes them in
// reverse wire order: each call must receive exactly the reply bearing
// its tag, regardless of delivery order.
func TestOutOfOrderCompletion(t *testing.T) {
	cli, p := newPeer(t)
	defer cli.Close()

	calls := make([]*Call, 3)
	for i := range calls {
		calls[i] = cli.Go(context.Background(), &Request{Op: OpGetattr, Path: "f"})
	}
	var reqs []*Request
	for range calls {
		reqs = append(reqs, p.recv(t))
	}
	// Tags are assigned in issue order by a single goroutine.
	for i, q := range reqs {
		if q.Tag != uint64(i+1) {
			t.Fatalf("request %d carries tag %d, want %d", i, q.Tag, i+1)
		}
	}
	// Complete newest-first, with a distinct attr size per tag.
	for i := len(reqs) - 1; i >= 0; i-- {
		p.reply(t, &Reply{Op: OpGetattr, Tag: reqs[i].Tag, Attr: Attr{Size: int64(reqs[i].Tag)}})
	}
	for i, c := range calls {
		wait(t, c)
		if c.Err != nil {
			t.Fatalf("call %d failed: %v", i, c.Err)
		}
		if c.Reply.Tag != c.Req.Tag || c.Reply.Attr.Size != int64(c.Req.Tag) {
			t.Fatalf("call %d got reply tag %d size %d, want tag %d",
				i, c.Reply.Tag, c.Reply.Attr.Size, c.Req.Tag)
		}
	}
}

// TestWindowSaturationBlocks checks the backpressure contract: a Go call
// beyond the in-flight window blocks until a slot frees — it is never
// dropped and never errors — while a bounding context can abandon the
// wait.
func TestWindowSaturationBlocks(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	cli := NewClientWindow(cliEnd, 2)
	defer cli.Close()
	p := &peer{conn: srvEnd, reqs: make(chan *Request, 64), errCh: make(chan error, 1)}
	go func() {
		for {
			payload, err := ReadFrame(srvEnd)
			if err != nil {
				close(p.reqs)
				return
			}
			q, _ := DecodeRequest(payload)
			p.reqs <- q
		}
	}()

	c1 := cli.Go(context.Background(), &Request{Op: OpStatfs})
	c2 := cli.Go(context.Background(), &Request{Op: OpStatfs})
	q1, q2 := p.recv(t), p.recv(t)

	// Window full: a context-bounded Go must report the context error, not
	// issue the request.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	blocked := cli.Go(ctx, &Request{Op: OpStatfs})
	cancel()
	wait(t, blocked)
	if !errors.Is(blocked.Err, context.DeadlineExceeded) {
		t.Fatalf("saturated Go = %v, want DeadlineExceeded", blocked.Err)
	}

	// An unbounded Go blocks until the peer completes one in-flight call,
	// then proceeds: the request is delayed, never dropped.
	issued := make(chan *Call, 1)
	go func() { issued <- cli.Go(context.Background(), &Request{Op: OpStatfs}) }()
	select {
	case <-issued:
		t.Fatal("Go returned while the window was saturated")
	case <-time.After(20 * time.Millisecond):
	}
	p.reply(t, &Reply{Op: OpStatfs, Tag: q1.Tag})
	c3 := <-issued
	q3 := p.recv(t)
	p.reply(t, &Reply{Op: OpStatfs, Tag: q3.Tag})
	p.reply(t, &Reply{Op: OpStatfs, Tag: q2.Tag})
	for _, c := range []*Call{c1, c2, c3} {
		if wait(t, c); c.Err != nil {
			t.Fatalf("call failed: %v", c.Err)
		}
	}
}

// TestMidPipelineTransportDeath kills the transport with a window full of
// in-flight calls: every one of them must complete with an error in the
// ErrPoisoned class, and later calls must fail fast the same way.
func TestMidPipelineTransportDeath(t *testing.T) {
	cli, p := newPeer(t)
	calls := make([]*Call, 8)
	for i := range calls {
		calls[i] = cli.Go(context.Background(), &Request{Op: OpGetattr, Path: "f"})
	}
	for range calls {
		p.recv(t)
	}
	p.conn.Close()
	for i, c := range calls {
		wait(t, c)
		if !errors.Is(c.Err, ErrPoisoned) {
			t.Fatalf("in-flight call %d after transport death = %v, want ErrPoisoned", i, c.Err)
		}
	}
	if c := wait(t, cli.Go(context.Background(), &Request{Op: OpStatfs})); !errors.Is(c.Err, ErrPoisoned) {
		t.Fatalf("call on poisoned client = %v, want ErrPoisoned", c.Err)
	}
}

// TestTagMismatchPoisonsAndClosesTransport is the regression test for the
// poison teardown path: a reply bearing a tag the client never issued is
// a protocol breach, and the client must (a) fail every in-flight call
// with ErrPoisoned+ErrProto and (b) close the broken transport
// deterministically — observable as the peer's next read unblocking with
// an error — rather than leaving a half-read stream dangling.
func TestTagMismatchPoisonsAndClosesTransport(t *testing.T) {
	cli, p := newPeer(t)
	call := cli.Go(context.Background(), &Request{Op: OpGetattr, Path: "f"})
	q := p.recv(t)
	p.reply(t, &Reply{Op: OpGetattr, Tag: q.Tag + 99})

	wait(t, call)
	if !errors.Is(call.Err, ErrPoisoned) || !errors.Is(call.Err, ErrProto) {
		t.Fatalf("call after tag mismatch = %v, want ErrPoisoned+ErrProto", call.Err)
	}
	// The client closed its end: the peer's reader loop must terminate
	// with a transport error instead of blocking forever.
	select {
	case err := <-p.errCh:
		if err == nil || err == io.EOF {
			// EOF is fine too — either way the stream was torn down.
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer still readable after tag mismatch; transport was not closed")
	}
	// A mismatched op on a known tag poisons identically.
	cli2, p2 := newPeer(t)
	defer cli2.Close()
	call2 := cli2.Go(context.Background(), &Request{Op: OpGetattr, Path: "f"})
	q2 := p2.recv(t)
	p2.reply(t, &Reply{Op: OpStatfs, Tag: q2.Tag})
	wait(t, call2)
	if !errors.Is(call2.Err, ErrPoisoned) || !errors.Is(call2.Err, ErrProto) {
		t.Fatalf("call after op mismatch = %v, want ErrPoisoned+ErrProto", call2.Err)
	}
}

// TestResetRestartsCleanly poisons a client, Resets it onto a fresh
// transport, and checks the post-Reset contract: the poison latch clears,
// the tag sequence restarts at 1, and in-flight calls from the old
// generation stay failed instead of leaking into the new connection.
func TestResetRestartsCleanly(t *testing.T) {
	cli, p := newPeer(t)
	stuck := cli.Go(context.Background(), &Request{Op: OpGetattr, Path: "f"})
	p.recv(t)

	cliEnd2, srvEnd2 := net.Pipe()
	p2 := &peer{conn: srvEnd2, reqs: make(chan *Request, 64), errCh: make(chan error, 1)}
	go func() {
		for {
			payload, err := ReadFrame(srvEnd2)
			if err != nil {
				close(p2.reqs)
				return
			}
			q, _ := DecodeRequest(payload)
			p2.reqs <- q
		}
	}()
	cli.Reset(cliEnd2)

	wait(t, stuck)
	if !errors.Is(stuck.Err, ErrPoisoned) {
		t.Fatalf("in-flight call across Reset = %v, want ErrPoisoned", stuck.Err)
	}
	call := cli.Go(context.Background(), &Request{Op: OpStatfs})
	q := p2.recv(t)
	if q.Tag != 1 {
		t.Fatalf("first post-Reset tag = %d, want 1", q.Tag)
	}
	p2.reply(t, &Reply{Op: OpStatfs, Tag: q.Tag})
	if wait(t, call); call.Err != nil {
		t.Fatalf("post-Reset call failed: %v", call.Err)
	}
	cli.Close()
}

// TestFramePartsByteEquivalence: the scatter-gather frame a reply renders
// through FrameParts must be byte-identical to WriteFrame(Encode()) for
// every reply shape, zero-copy READ fast path included.
func TestFramePartsByteEquivalence(t *testing.T) {
	replies := []*Reply{
		{Op: OpRead, Tag: 7, Data: []byte("zero copy payload")},
		{Op: OpRead, Tag: 8, Data: nil},
		{Op: OpRead, Tag: 9, Status: StatusIO},
		{Op: OpLookup, Tag: 10, Handle: 42, Attr: Attr{Size: 4096, Nlink: 1}},
		{Op: OpWrite, Tag: 11, N: 512},
		{Op: OpReaddir, Tag: 12, Entries: []DirEnt{{Name: "a", Dir: true}, {Name: "b"}}},
		{Op: OpStatfs, Tag: 13, Statfs: Statfs{BlockSize: 4096, Sessions: 2}},
		{Op: OpMkdir, Tag: 14, Status: StatusExist},
	}
	for _, r := range replies {
		var want bytes.Buffer
		if err := WriteFrame(&want, r.Encode()); err != nil {
			t.Fatalf("%s: WriteFrame: %v", r.Op, err)
		}
		segs, zc, err := r.FrameParts(make([]byte, 0, 64))
		if err != nil {
			t.Fatalf("%s: FrameParts: %v", r.Op, err)
		}
		var got bytes.Buffer
		for _, seg := range segs {
			got.Write(seg)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("%s: FrameParts frame differs from WriteFrame(Encode())", r.Op)
		}
		if r.Op == OpRead && r.Status == StatusOK {
			if zc != len(r.Data) {
				t.Fatalf("READ zerocopy = %d, want %d", zc, len(r.Data))
			}
			if len(r.Data) > 0 && (len(segs) != 2 || &segs[1][0] != &r.Data[0]) {
				t.Fatal("READ payload was copied, not referenced")
			}
		} else if zc != 0 {
			t.Fatalf("%s: zerocopy = %d, want 0", r.Op, zc)
		}
	}
}

// echoServe answers every decoded request with an empty OK reply until
// the transport dies — a minimal live server for churn tests.
func echoServe(conn net.Conn) {
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		q, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		rep := &Reply{Op: q.Op, Tag: q.Tag}
		if q.Op == OpHello {
			rep.Token = "t" // a resumable session, so poison redials instead of latching
		}
		if err := WriteFrame(conn, rep.Encode()); err != nil {
			return
		}
	}
}

// TestResetRacesInFlightGo churns Reset against goroutines issuing Go
// continuously. The race detector owns the memory assertions; the test
// asserts liveness — every call completes exactly once (reply or
// ErrPoisoned), no slot leaks, and the client works after the last
// Reset.
func TestResetRacesInFlightGo(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	go echoServe(srvEnd)
	cli := NewClientWindow(cliEnd, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				call := cli.Go(context.Background(), &Request{Op: OpGetattr, Path: "x"})
				wait(t, call)
				if call.Err != nil && !errors.Is(call.Err, ErrPoisoned) {
					t.Errorf("Go across Reset failed with %v, want nil or ErrPoisoned", call.Err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		ce, se := net.Pipe()
		go echoServe(se)
		cli.Reset(ce)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The window must be fully free again: a burst of exactly window-many
	// calls cannot block.
	var calls []*Call
	for i := 0; i < cli.Window(); i++ {
		calls = append(calls, cli.Go(context.Background(), &Request{Op: OpStatfs}))
	}
	for _, call := range calls {
		wait(t, call)
		if call.Err != nil {
			t.Fatalf("post-churn call: %v", call.Err)
		}
	}
	cli.Close()
}

// TestCloseRacesRedialLoop: Close during an active redial loop must
// terminate the loop and fail held calls instead of leaking the
// goroutine or resurrecting the transport.
func TestCloseRacesRedialLoop(t *testing.T) {
	cliEnd, srvEnd := net.Pipe()
	go echoServe(srvEnd)
	cli := NewClient(cliEnd)
	dialing := make(chan struct{}, 8)
	if err := cli.EnableRedial(func() (io.ReadWriteCloser, error) {
		dialing <- struct{}{}
		return nil, errors.New("unreachable")
	}, RedialPolicy{BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}); err != nil {
		t.Fatalf("enable redial: %v", err)
	}

	srvEnd.Close() // kill the transport: the client starts redialing
	<-dialing      // redial loop is live
	call := cli.Go(context.Background(), &Request{Op: OpGetattr, Path: "x"})
	cli.Close()
	wait(t, call)
	if !errors.Is(call.Err, ErrPoisoned) {
		t.Fatalf("call across Close during redial = %v, want ErrPoisoned", call.Err)
	}
	if _, err := cli.Getattr("x"); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("call after Close = %v, want ErrPoisoned", err)
	}
}
