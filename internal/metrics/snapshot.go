package metrics

// Snapshot is a point-in-time copy of a registry's values as plain data,
// suitable for JSON encoding, diffing, and merging.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is the serialized form of one histogram. Buckets lists only
// the non-empty power-of-two buckets in increasing upper-bound order.
type HistSnapshot struct {
	Unit    string   `json:"unit,omitempty"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket: Count samples with value <= Le
// (and greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Quantile returns the q-quantile (0 < q <= 1) of the recorded values as
// an upper bound: the smallest bucket bound b such that at least
// ceil(q*Count) samples are <= b, clamped to Max. Because buckets are
// power-of-two sized, the answer is exact when every recorded value is a
// power of two (each such value is its own bucket's bound) and otherwise
// overestimates by at most 2x. An empty histogram reports 0.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := int64(float64(h.Count) * q)
	if float64(rank) < float64(h.Count)*q {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			if h.Max > 0 && b.Le > h.Max {
				return h.Max
			}
			return b.Le
		}
	}
	return h.Max
}

// bucketUpperBound returns the inclusive upper bound of bucket i.
func bucketUpperBound(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1) // max int64
	}
	return int64(1) << uint(i)
}

// Snapshot captures the current registry values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			hs := HistSnapshot{Unit: h.unit, Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
			for i := range h.buckets {
				if c := h.buckets[i].Load(); c > 0 {
					hs.Buckets = append(hs.Buckets, Bucket{Le: bucketUpperBound(i), Count: c})
				}
			}
			s.Histograms[n] = hs
		}
	}
	return s
}

// Diff returns after minus before, per instrument: counter and gauge values
// subtract; histogram counts, sums, and buckets subtract (Max is taken from
// after, as maxima are not invertible). Instruments absent from before are
// reported at their after values.
func Diff(before, after Snapshot) Snapshot {
	d := Snapshot{Counters: make(map[string]int64, len(after.Counters))}
	for n, v := range after.Counters {
		d.Counters[n] = v - before.Counters[n]
	}
	if len(after.Gauges) > 0 {
		d.Gauges = make(map[string]int64, len(after.Gauges))
		for n, v := range after.Gauges {
			d.Gauges[n] = v - before.Gauges[n]
		}
	}
	if len(after.Histograms) > 0 {
		d.Histograms = make(map[string]HistSnapshot, len(after.Histograms))
		for n, hv := range after.Histograms {
			bv := before.Histograms[n]
			d.Histograms[n] = HistSnapshot{
				Unit:    hv.Unit,
				Count:   hv.Count - bv.Count,
				Sum:     hv.Sum - bv.Sum,
				Max:     hv.Max,
				Buckets: diffBuckets(bv.Buckets, hv.Buckets),
			}
		}
	}
	return d
}

// Merge adds other into s, instrument by instrument: counters and gauges
// sum, histogram counts/sums/buckets sum, Max takes the larger. Used to
// aggregate the snapshots of the fresh instances a benchmark sweep builds.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64, len(other.Counters))
	}
	for n, v := range other.Counters {
		s.Counters[n] += v
	}
	if len(other.Gauges) > 0 {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64, len(other.Gauges))
		}
		for n, v := range other.Gauges {
			s.Gauges[n] += v
		}
	}
	if len(other.Histograms) > 0 {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot, len(other.Histograms))
		}
		for n, hv := range other.Histograms {
			cur := s.Histograms[n]
			if cur.Unit == "" {
				cur.Unit = hv.Unit
			}
			cur.Count += hv.Count
			cur.Sum += hv.Sum
			if hv.Max > cur.Max {
				cur.Max = hv.Max
			}
			cur.Buckets = addBuckets(cur.Buckets, hv.Buckets)
			s.Histograms[n] = cur
		}
	}
}

// diffBuckets subtracts before from after by matching Le bounds.
func diffBuckets(before, after []Bucket) []Bucket {
	prior := make(map[int64]int64, len(before))
	for _, b := range before {
		prior[b.Le] = b.Count
	}
	var out []Bucket
	for _, b := range after {
		if c := b.Count - prior[b.Le]; c > 0 {
			out = append(out, Bucket{Le: b.Le, Count: c})
		}
	}
	return out
}

// addBuckets merges two sorted bucket lists by Le bound.
func addBuckets(a, b []Bucket) []Bucket {
	if len(a) == 0 {
		return append([]Bucket{}, b...)
	}
	out := make([]Bucket, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Le < b[j].Le):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Le < a[i].Le:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Bucket{Le: a[i].Le, Count: a[i].Count + b[j].Count})
			i++
			j++
		}
	}
	return out
}
