// Package metrics is the dependency-free observability registry shared by
// every layer of the simulated stack. One Registry exists per sim.Env (and
// therefore per mounted system), holding three kinds of instruments:
//
//   - Counter: a monotonically increasing int64 (events, bytes).
//   - Gauge: a settable int64 level (occupancy, pinned counts).
//   - Histogram: a power-of-two-bucketed distribution of int64 samples
//     (request sizes in bytes, simulated latencies in nanoseconds).
//
// Names follow the `layer.noun.verb` convention (e.g. `betree.msg.inject`,
// `wal.fsync.count`); histograms end in a unit segment instead of a verb
// (`vfs.read.ns`, `kmem.alloc.bytes`). Layers resolve their instruments
// once at construction time and increment through the returned pointers, so
// the hot path is a single atomic add.
//
// Crucially, recording a metric never advances the simulated clock: the
// registry has no access to sim.Env and charges no costs, so enabling
// metrics (or tracing) cannot change any benchmark result.
//
// Snapshot captures the registry as plain maps for JSON output; Diff and
// Merge support before/after comparisons and aggregation across instances.
// A bounded ring buffer of typed trace events (see trace.go) can be enabled
// per registry for behavioral assertions in tests.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be non-negative; Counters are monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable level.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts samples v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).
const histBuckets = 64

// Histogram records a distribution in power-of-two buckets along with
// count, sum, and max. Observe is lock-free.
type Histogram struct {
	unit    string
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Unit returns the unit label the histogram was registered with.
func (h *Histogram) Unit() string { return h.unit }

// bucketFor returns the power-of-two bucket index for v.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for x := uint64(v - 1); x > 0; x >>= 1 {
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketFor(v)].Add(1)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds the named instruments of one simulated machine.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	tracing atomic.Bool
	trace   *traceRing
}

// NewRegistry returns an empty registry with tracing disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Callers keep the pointer; lookups are not for hot paths.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given unit label ("bytes", "ns") if needed.
func (r *Registry) Histogram(name, unit string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{unit: unit}
		r.histograms[name] = h
	}
	return h
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
