package metrics

import "testing"

// histOf records vs into a fresh histogram and snapshots it.
func histOf(vs ...int64) HistSnapshot {
	r := NewRegistry()
	h := r.Histogram("test.hist", "ns")
	for _, v := range vs {
		h.Observe(v)
	}
	return r.Snapshot().Histograms["test.hist"]
}

// TestQuantileExactOnPowersOfTwo: every power-of-two value is its own
// bucket's upper bound, so quantiles are exact rank statistics.
func TestQuantileExactOnPowersOfTwo(t *testing.T) {
	var vs []int64
	for i := 0; i < 10; i++ {
		vs = append(vs, int64(1)<<uint(i)) // 1, 2, 4, ..., 512
	}
	h := histOf(vs...)
	cases := []struct {
		q    float64
		want int64
	}{
		{0.0, 1},    // clamped to rank 1
		{0.1, 1},    // ceil(1.0) = 1st smallest
		{0.5, 16},   // ceil(5.0) = 5th smallest = 2^4
		{0.55, 32},  // ceil(5.5) = 6th smallest = 2^5
		{0.9, 256},  // ceil(9.0) = 9th
		{0.95, 512}, // ceil(9.5) = 10th
		{0.99, 512},
		{1.0, 512},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

// TestQuantileSkewedDistribution: a bimodal latency-like shape where the
// tail only shows up past p90.
func TestQuantileSkewedDistribution(t *testing.T) {
	var vs []int64
	for i := 0; i < 90; i++ {
		vs = append(vs, 4)
	}
	for i := 0; i < 10; i++ {
		vs = append(vs, 1024)
	}
	h := histOf(vs...)
	if got := h.Quantile(0.50); got != 4 {
		t.Errorf("p50 = %d, want 4", got)
	}
	if got := h.Quantile(0.90); got != 4 { // ceil(90) = 90th sample is still 4
		t.Errorf("p90 = %d, want 4", got)
	}
	if got := h.Quantile(0.95); got != 1024 {
		t.Errorf("p95 = %d, want 1024", got)
	}
	if got := h.Quantile(0.99); got != 1024 {
		t.Errorf("p99 = %d, want 1024", got)
	}
}

// TestQuantileClampsToMax: non-power-of-two values land in a bucket whose
// bound overshoots; the observed maximum caps the answer.
func TestQuantileClampsToMax(t *testing.T) {
	h := histOf(5) // bucket le=8, max=5
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %d, want max-clamped 5", got)
	}
	h = histOf(3, 5, 7) // all in bucket le=4 and le=8
	if got := h.Quantile(1.0); got != 7 {
		t.Errorf("Quantile(1.0) = %d, want max 7", got)
	}
	if got := h.Quantile(0.01); got != 4 { // rank 1 -> bucket le=4, below max
		t.Errorf("Quantile(0.01) = %d, want 4", got)
	}
}

// TestQuantileEmpty: an empty histogram reports 0 for every quantile.
func TestQuantileEmpty(t *testing.T) {
	h := histOf()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

// TestQuantileAfterMerge: merging two snapshots must yield the quantiles
// of the combined distribution, including overlapping buckets.
func TestQuantileAfterMerge(t *testing.T) {
	a := Snapshot{Histograms: map[string]HistSnapshot{"h": histOf(1, 2, 4)}}
	b := Snapshot{Histograms: map[string]HistSnapshot{"h": histOf(8, 16, 32)}}
	a.Merge(b)
	m := a.Histograms["h"]
	if m.Count != 6 {
		t.Fatalf("merged count = %d, want 6", m.Count)
	}
	if got := m.Quantile(0.5); got != 4 { // ceil(3.0) = 3rd smallest
		t.Errorf("merged p50 = %d, want 4", got)
	}
	if got := m.Quantile(1.0); got != 32 {
		t.Errorf("merged p100 = %d, want 32", got)
	}

	// Overlapping buckets must sum, not shadow.
	c := Snapshot{Histograms: map[string]HistSnapshot{"h": histOf(4, 4, 4, 4, 4)}}
	d := Snapshot{Histograms: map[string]HistSnapshot{"h": histOf(4, 4, 4, 4, 4, 64, 64)}}
	c.Merge(d)
	m = c.Histograms["h"]
	if m.Count != 12 {
		t.Fatalf("merged count = %d, want 12", m.Count)
	}
	if got := m.Quantile(0.5); got != 4 { // ceil(6.0) = 6th of twelve
		t.Errorf("merged overlapping p50 = %d, want 4", got)
	}
	if got := m.Quantile(0.99); got != 64 {
		t.Errorf("merged overlapping p99 = %d, want 64", got)
	}
}

// TestQuantileAfterDiff: interval quantiles from before/after snapshots,
// the shape the serve bench uses.
func TestQuantileAfterDiff(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "ns")
	for i := 0; i < 8; i++ {
		h.Observe(2)
	}
	before := r.Snapshot()
	for i := 0; i < 8; i++ {
		h.Observe(128)
	}
	after := r.Snapshot()
	d := Diff(before, after).Histograms["h"]
	if d.Count != 8 {
		t.Fatalf("diff count = %d, want 8", d.Count)
	}
	if got := d.Quantile(0.5); got != 128 { // interval contains only 128s
		t.Errorf("diff p50 = %d, want 128", got)
	}
}
