package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("layer.noun.verb")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("layer.noun.verb") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("layer.level.now")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("layer.op.bytes", "bytes")
	for _, v := range []int64{1, 2, 3, 4, 4096, -9} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+2+3+4+4096 {
		t.Fatalf("hist sum = %d", h.Sum())
	}
	if h.Unit() != "bytes" {
		t.Fatalf("hist unit = %q", h.Unit())
	}
}

func TestBucketFor(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for v, want := range cases {
		if got := bucketFor(v); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", v, got, want)
		}
	}
	// Every sample must land in a bucket whose upper bound covers it.
	for _, v := range []int64{1, 7, 100, 1 << 40, 1<<62 + 5} {
		b := bucketFor(v)
		if ub := bucketUpperBound(b); v > ub {
			t.Errorf("bucketFor(%d) = %d with upper bound %d < sample", v, b, ub)
		}
	}
}

func TestSnapshotDiffMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	h := r.Histogram("a.b.bytes", "bytes")
	c.Add(10)
	h.Observe(100)
	before := r.Snapshot()
	c.Add(5)
	h.Observe(200)
	h.Observe(300)
	after := r.Snapshot()

	d := Diff(before, after)
	if d.Counters["a.b.c"] != 5 {
		t.Fatalf("diff counter = %d, want 5", d.Counters["a.b.c"])
	}
	hd := d.Histograms["a.b.bytes"]
	if hd.Count != 2 || hd.Sum != 500 {
		t.Fatalf("diff hist = %+v, want count 2 sum 500", hd)
	}

	var total Snapshot
	total.Merge(before)
	total.Merge(after)
	if total.Counters["a.b.c"] != 25 {
		t.Fatalf("merged counter = %d, want 25", total.Counters["a.b.c"])
	}
	ht := total.Histograms["a.b.bytes"]
	if ht.Count != 4 || ht.Sum != 700 || ht.Max != 300 {
		t.Fatalf("merged hist = %+v", ht)
	}

	// Snapshots must round-trip through JSON without loss.
	blob, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.b.c"] != 15 || back.Histograms["a.b.bytes"].Sum != 600 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.z.z")
	r.Gauge("a.a.a")
	r.Histogram("m.m.ns", "ns")
	names := r.Names()
	want := []string{"a.a.a", "m.m.ns", "z.z.z"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestTraceRing(t *testing.T) {
	r := NewRegistry()
	if r.Tracing() {
		t.Fatal("tracing should start disabled")
	}
	r.Emit(Event{Op: "dropped-before-start"})
	r.StartTrace(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{When: time.Duration(i), Layer: "l", Op: "op", Value: int64(i)})
	}
	if got := r.TraceDropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	evs := r.TraceEvents()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Value != int64(i+2) {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
	evs = r.StopTrace()
	if len(evs) != 4 || r.Tracing() {
		t.Fatal("StopTrace should return events and disable tracing")
	}
	if got := r.TraceEvents(); got != nil {
		t.Fatalf("events after stop = %v", got)
	}
}
