package metrics

import "time"

// Event is one typed trace record. When carries the simulated time stamped
// by the emitting layer (the registry itself has no clock, by design).
type Event struct {
	When  time.Duration `json:"when"`
	Layer string        `json:"layer"`
	Op    string        `json:"op"`
	Key   string        `json:"key,omitempty"`
	Value int64         `json:"value,omitempty"`
}

// traceRing is a bounded ring of events; once full, the oldest events are
// overwritten.
type traceRing struct {
	events  []Event
	next    int
	wrapped bool
	dropped int64
}

// DefaultTraceCapacity bounds the ring when StartTrace is called with a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// StartTrace enables event collection into a fresh ring of the given
// capacity (DefaultTraceCapacity if cap <= 0). Emission sites check
// Tracing() with one atomic load, so a disabled trace costs nothing on hot
// paths — and tracing never advances the simulated clock either way.
func (r *Registry) StartTrace(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	r.mu.Lock()
	r.trace = &traceRing{events: make([]Event, capacity)}
	r.mu.Unlock()
	r.tracing.Store(true)
}

// StopTrace disables collection and returns the buffered events, oldest
// first.
func (r *Registry) StopTrace() []Event {
	r.tracing.Store(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.snapshotTrace()
	r.trace = nil
	return out
}

// Tracing reports whether a trace ring is collecting events.
func (r *Registry) Tracing() bool { return r.tracing.Load() }

// Emit records one event if tracing is enabled.
func (r *Registry) Emit(e Event) {
	if !r.tracing.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.trace
	if t == nil {
		return
	}
	if t.wrapped {
		t.dropped++
	}
	t.events[t.next] = e
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.wrapped = true
	}
}

// TraceEvents returns the currently buffered events, oldest first, without
// stopping collection.
func (r *Registry) TraceEvents() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotTrace()
}

// TraceDropped returns how many events were overwritten since StartTrace.
func (r *Registry) TraceDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		return 0
	}
	return r.trace.dropped
}

func (r *Registry) snapshotTrace() []Event {
	t := r.trace
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return append([]Event{}, t.events[:t.next]...)
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}
