package readcache_test

import (
	"bytes"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/blockstore/local"
	"betrfs/internal/blockstore/readcache"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

func build(t *testing.T, cfg readcache.Config) (*readcache.Store, *blockdev.Dev, *metrics.Registry) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(2048))
	reg := metrics.NewRegistry()
	return readcache.New(reg, local.New(dev), cfg), dev, reg
}

func counters(reg *metrics.Registry) (hit, miss, evict int64) {
	s := reg.Snapshot()
	return s.Counters["readcache.hit"], s.Counters["readcache.miss"], s.Counters["readcache.evict"]
}

// TestReadThroughAndHit pins the core contract: the first read of a line
// misses and fills from the backing store, a re-read within the same
// line hits without touching the device.
func TestReadThroughAndHit(t *testing.T) {
	st, dev, reg := build(t, readcache.Config{LineSize: 64 << 10, Lines: 8})
	payload := bytes.Repeat([]byte{0xaa}, blockdev.BlockSize)
	if err := st.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := st.ReadAt(got, 0); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("first read: %v", err)
	}
	if hit, miss, _ := counters(reg); hit != 0 || miss != 1 {
		t.Fatalf("after fill: hit=%d miss=%d", hit, miss)
	}
	devReads := dev.Stats().Reads
	// Same line, different block: must be served from cache.
	if err := st.ReadAt(got, 4*blockdev.BlockSize); err != nil {
		t.Fatal(err)
	}
	if hit, miss, _ := counters(reg); hit != 1 || miss != 1 {
		t.Fatalf("after re-read: hit=%d miss=%d", hit, miss)
	}
	if dev.Stats().Reads != devReads {
		t.Fatal("cache hit touched the device")
	}
}

// TestWriteInvalidates: a write through the cache must invalidate the
// overlapping line, so the next read sees the new bytes (re-fetched),
// never a stale cached copy.
func TestWriteInvalidates(t *testing.T) {
	st, _, reg := build(t, readcache.Config{LineSize: 64 << 10, Lines: 8})
	old := bytes.Repeat([]byte{1}, blockdev.BlockSize)
	if err := st.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	neu := bytes.Repeat([]byte{2}, blockdev.BlockSize)
	if err := st.WriteAt(neu, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadAt(got, 0); err != nil || !bytes.Equal(got, neu) {
		t.Fatalf("stale read after write-through: %v", err)
	}
	if _, miss, _ := counters(reg); miss != 2 {
		t.Fatalf("invalidation should force a re-fill: miss=%d", miss)
	}
}

// TestDiscardInvalidates: TRIM through the cache forwards to the backing
// store and drops the cached lines, so read-after-TRIM returns the
// deterministic zeroes.
func TestDiscardInvalidates(t *testing.T) {
	st, dev, _ := build(t, readcache.Config{LineSize: 64 << 10, Lines: 8})
	payload := bytes.Repeat([]byte{3}, blockdev.BlockSize)
	if err := st.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := st.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Discard(0, blockdev.BlockSize); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Discards != 1 {
		t.Fatalf("discard not forwarded: %+v", dev.Stats())
	}
	if err := st.ReadAt(got, 0); err != nil || !bytes.Equal(got, make([]byte, len(got))) {
		t.Fatalf("read after TRIM not zeroed: %v", err)
	}
}

// TestBoundedEviction: the cache never holds more than Lines lines; the
// LRU line is evicted and counted.
func TestBoundedEviction(t *testing.T) {
	const lineSize = 64 << 10
	st, _, reg := build(t, readcache.Config{LineSize: lineSize, Lines: 2})
	buf := make([]byte, blockdev.BlockSize)
	for i := int64(0); i < 4; i++ {
		if err := st.ReadAt(buf, i*lineSize); err != nil {
			t.Fatal(err)
		}
	}
	hit, miss, evict := counters(reg)
	if miss != 4 || evict != 2 || hit != 0 {
		t.Fatalf("eviction accounting: hit=%d miss=%d evict=%d", hit, miss, evict)
	}
	// Lines 2 and 3 are resident; 0 was evicted and must miss again.
	if err := st.ReadAt(buf, 3*lineSize); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	hit, miss, evict = counters(reg)
	if hit != 1 || miss != 5 || evict != 3 {
		t.Fatalf("LRU order: hit=%d miss=%d evict=%d", hit, miss, evict)
	}
}

// TestTailLineClamp: the store's last line is shorter than LineSize; a
// read inside it must still fill and serve correctly.
func TestTailLineClamp(t *testing.T) {
	// A scaled EVO is not line-aligned in general; pick a line size that
	// leaves a ragged tail.
	st, dev, _ := build(t, readcache.Config{LineSize: 48 << 10, Lines: 4})
	size := dev.Size()
	tail := size - blockdev.BlockSize
	payload := bytes.Repeat([]byte{9}, blockdev.BlockSize)
	if err := st.WriteAt(payload, tail); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if err := st.ReadAt(got, tail); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("tail read: %v", err)
	}
}
