// Package readcache implements a bounded read-through block cache in
// front of a slower blockstore.Store — typically a remote one, where
// every miss costs an fsrpc round trip (DESIGN.md §14.4). The cache
// holds fixed-size lines under LRU eviction; writes go through to the
// backing store and invalidate overlapping lines, so the cache never
// holds data the backing store does not. Effectiveness is observable as
// the `readcache.hit` / `readcache.miss` / `readcache.evict` counters.
package readcache

import (
	"container/list"
	"sync"

	"betrfs/internal/blockstore"
	"betrfs/internal/metrics"
)

// Config sizes the cache. The zero value picks the defaults.
type Config struct {
	// LineSize is the cache line size in bytes (default 64 KiB). Reads
	// that span lines fill each covered line independently.
	LineSize int
	// Lines bounds the number of resident lines (default 64, i.e. 4 MiB
	// at the default line size). The least recently used line is evicted
	// when the bound is exceeded.
	Lines int
}

const (
	defaultLineSize = 64 << 10
	defaultLines    = 64
)

// Store is the caching wrapper.
type Store struct {
	lower    blockstore.Store
	lineSize int64
	maxLines int
	size     int64

	mu    sync.Mutex
	lines map[int64]*list.Element // line index → lru element
	lru   *list.List              // front = most recent; values are *line

	mHit   *metrics.Counter
	mMiss  *metrics.Counter
	mEvict *metrics.Counter
}

type line struct {
	idx  int64
	data []byte // len ≤ lineSize (tail line is clamped to store size)
}

// New wraps lower with a read cache sized by cfg, registering the
// readcache.* counters in reg.
func New(reg *metrics.Registry, lower blockstore.Store, cfg Config) *Store {
	if cfg.LineSize <= 0 {
		cfg.LineSize = defaultLineSize
	}
	if cfg.Lines <= 0 {
		cfg.Lines = defaultLines
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Store{
		lower:    lower,
		lineSize: int64(cfg.LineSize),
		maxLines: cfg.Lines,
		size:     lower.Size(),
		lines:    make(map[int64]*list.Element),
		lru:      list.New(),
		mHit:     reg.Counter("readcache.hit"),
		mMiss:    reg.Counter("readcache.miss"),
		mEvict:   reg.Counter("readcache.evict"),
	}
}

// ReadAt serves p from cached lines, filling misses from the backing
// store a full line at a time (read-through).
func (s *Store) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n := 0; n < len(p); {
		pos := off + int64(n)
		idx := pos / s.lineSize
		lo := pos % s.lineSize
		want := int64(len(p) - n)
		if max := s.lineSize - lo; want > max {
			want = max
		}
		ln, err := s.lineLocked(idx)
		if err != nil {
			return err
		}
		if lo+want > int64(len(ln.data)) {
			// Read past the clamped tail line: beyond the store; let the
			// backing store produce its own out-of-range behavior.
			if err := s.lower.ReadAt(p[n:n+int(want)], pos); err != nil {
				return err
			}
		} else {
			copy(p[n:n+int(want)], ln.data[lo:lo+want])
		}
		n += int(want)
	}
	return nil
}

// lineLocked returns the cached line idx, filling it from the backing
// store on a miss and evicting the LRU line when over bound.
func (s *Store) lineLocked(idx int64) (*line, error) {
	if e, ok := s.lines[idx]; ok {
		s.mHit.Inc()
		s.lru.MoveToFront(e)
		return e.Value.(*line), nil
	}
	s.mMiss.Inc()
	start := idx * s.lineSize
	n := s.lineSize
	if start+n > s.size {
		n = s.size - start
	}
	if n <= 0 {
		// Entirely past the end: cache an empty line; reads here fall
		// through to the backing store's own range handling.
		ln := &line{idx: idx}
		s.insertLocked(ln)
		return ln, nil
	}
	buf := make([]byte, n)
	// The lock is held across the (possibly remote) fill: dropping it
	// would let a concurrent write invalidate the line mid-fill and the
	// stale fill would then be inserted over it.
	if err := s.lower.ReadAt(buf, start); err != nil {
		return nil, err
	}
	ln := &line{idx: idx, data: buf}
	s.insertLocked(ln)
	return ln, nil
}

func (s *Store) insertLocked(ln *line) {
	s.lines[ln.idx] = s.lru.PushFront(ln)
	for s.lru.Len() > s.maxLines {
		e := s.lru.Back()
		victim := e.Value.(*line)
		s.lru.Remove(e)
		delete(s.lines, victim.idx)
		s.mEvict.Inc()
	}
}

// WriteAt writes through to the backing store and invalidates every
// overlapping cached line.
func (s *Store) WriteAt(p []byte, off int64) error {
	if err := s.lower.WriteAt(p, off); err != nil {
		return err
	}
	s.invalidate(off, int64(len(p)))
	return nil
}

// Discard forwards the TRIM and invalidates overlapping lines, so the
// deterministic read-after-TRIM zeroes are re-fetched, not stale cache.
func (s *Store) Discard(off, length int64) error {
	if err := s.lower.Discard(off, length); err != nil {
		return err
	}
	s.invalidate(off, length)
	return nil
}

func (s *Store) invalidate(off, length int64) {
	if length <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for idx := off / s.lineSize; idx <= (off+length-1)/s.lineSize; idx++ {
		if e, ok := s.lines[idx]; ok {
			s.lru.Remove(e)
			delete(s.lines, idx)
		}
	}
}

func (s *Store) Flush() error { return s.lower.Flush() }

func (s *Store) Size() int64 { return s.size }
