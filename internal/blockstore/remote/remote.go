// Package remote implements a blockstore.Store backed by another node's
// fsserved over the block-class fsrpc ops (DESIGN.md §14). Open names a
// block share in the remote registry; reads and writes are chunked at
// fsrpc.MaxData and errors surface as the same sentinels a local device
// returns (Status→Err round trip), so EIO from a faulty remote device
// classifies identically to EIO from a local one.
package remote

import (
	"fmt"

	"betrfs/internal/fsrpc"
	"betrfs/internal/ioerr"
)

// Store is a block share on a remote fsserved, reached through cli.
type Store struct {
	cli    *fsrpc.Client
	name   string
	handle uint64
	size   int64
}

// Open binds a remote block share by name. The returned store caches the
// share's capacity from the BOPEN reply; an unknown name surfaces as
// vfs.ErrNotExist.
func Open(cli *fsrpc.Client, name string) (*Store, error) {
	h, size, err := cli.Bopen(name)
	if err != nil {
		return nil, fmt.Errorf("remote: open %q: %w", name, err)
	}
	return &Store{cli: cli, name: name, handle: h, size: size}, nil
}

// Name returns the share name the store was opened with.
func (s *Store) Name() string { return s.name }

func (s *Store) ReadAt(p []byte, off int64) error {
	for n := 0; n < len(p); {
		want := len(p) - n
		if want > fsrpc.MaxData {
			want = fsrpc.MaxData
		}
		data, err := s.cli.Bread(s.handle, off+int64(n), want)
		if err != nil {
			return err
		}
		if len(data) != want {
			// A block device has no EOF inside its capacity; a short BREAD
			// means the transfer was truncated in flight.
			return fmt.Errorf("remote: short read %d/%d at %d: %w",
				len(data), want, off+int64(n), ioerr.ErrIO)
		}
		copy(p[n:], data)
		n += want
	}
	return nil
}

func (s *Store) WriteAt(p []byte, off int64) error {
	for n := 0; n < len(p); {
		want := len(p) - n
		if want > fsrpc.MaxData {
			want = fsrpc.MaxData
		}
		wrote, err := s.cli.Bwrite(s.handle, off+int64(n), p[n:n+want])
		if err != nil {
			return err
		}
		if wrote != want {
			return fmt.Errorf("remote: short write %d/%d at %d: %w",
				wrote, want, off+int64(n), ioerr.ErrIO)
		}
		n += want
	}
	return nil
}

func (s *Store) Flush() error { return s.cli.Bflush(s.handle) }

func (s *Store) Discard(off, length int64) error {
	return s.cli.Bdiscard(s.handle, off, length)
}

func (s *Store) Size() int64 { return s.size }
