package remote_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/blockstore"
	"betrfs/internal/blockstore/local"
	"betrfs/internal/blockstore/remote"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/ioerr"
	"betrfs/internal/registry"
	"betrfs/internal/sim"
)

// serveStore exports st as the block share "blk0" behind a mount-less
// server and returns a connected wire client plus the opened remote
// store.
func serveStore(t *testing.T, env *sim.Env, st blockstore.Store) (*remote.Store, func()) {
	t.Helper()
	reg := registry.New()
	reg.AddStore("blk0", env, st)
	cfg := fsserve.DefaultConfig()
	cfg.Registry = reg
	srv := fsserve.New(env, nil, cfg)
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	cli := fsrpc.NewClient(cliEnd)
	rst, err := remote.Open(cli, "blk0")
	if err != nil {
		t.Fatalf("open remote store: %v", err)
	}
	return rst, func() { cli.Close(); srv.Shutdown() }
}

// TestRemoteLocalEquivalence applies one seeded op sequence to a local
// store and to an identical device behind the wire, then requires the
// two device images to be byte-identical: the remote backend must be
// indistinguishable from the local one at the media level.
func TestRemoteLocalEquivalence(t *testing.T) {
	const scale = 2048 // small device so the full-image diff is cheap
	envL := sim.NewEnv(1)
	devL := blockdev.New(envL, blockdev.SamsungEVO860().Scale(scale))
	loc := local.New(devL)

	envR := sim.NewEnv(1)
	devR := blockdev.New(envR, blockdev.SamsungEVO860().Scale(scale))
	rst, shutdown := serveStore(t, envR, local.New(devR))
	defer shutdown()

	if rst.Size() != loc.Size() {
		t.Fatalf("size over the wire = %d, local %d", rst.Size(), loc.Size())
	}

	// One seeded sequence of block-aligned writes, discards, flushes, and
	// verifying reads, applied to both stores in lockstep. Includes a
	// multi-chunk transfer (> MaxData) to cover the wire chunking path.
	rng := rand.New(rand.NewSource(42))
	size := loc.Size()
	blocks := size / blockdev.BlockSize
	apply := func(op func(st blockstore.Store) error) {
		t.Helper()
		errL := op(loc)
		errR := op(rst)
		if (errL == nil) != (errR == nil) {
			t.Fatalf("local/remote diverged: local=%v remote=%v", errL, errR)
		}
	}
	for i := 0; i < 200; i++ {
		off := (rng.Int63n(blocks - 80)) * blockdev.BlockSize
		switch rng.Intn(5) {
		case 0, 1: // write 1–8 blocks of op-dependent bytes
			n := (1 + rng.Intn(8)) * blockdev.BlockSize
			payload := bytes.Repeat([]byte{byte(i)}, n)
			apply(func(st blockstore.Store) error { return st.WriteAt(payload, off) })
		case 2: // discard 1–16 blocks
			n := int64(1+rng.Intn(16)) * blockdev.BlockSize
			apply(func(st blockstore.Store) error { return st.Discard(off, n) })
		case 3:
			apply(func(st blockstore.Store) error { return st.Flush() })
		case 4: // verifying read
			n := (1 + rng.Intn(4)) * blockdev.BlockSize
			bl, br := make([]byte, n), make([]byte, n)
			if err := loc.ReadAt(bl, off); err != nil {
				t.Fatalf("local read: %v", err)
			}
			if err := rst.ReadAt(br, off); err != nil {
				t.Fatalf("remote read: %v", err)
			}
			if !bytes.Equal(bl, br) {
				t.Fatalf("op %d: read divergence at %d", i, off)
			}
		}
	}
	// A transfer larger than one wire frame's data cap must chunk
	// transparently.
	big := bytes.Repeat([]byte{0xcd}, fsrpc.MaxData+3*blockdev.BlockSize)
	apply(func(st blockstore.Store) error { return st.WriteAt(big, 0) })
	got := make([]byte, len(big))
	if err := rst.ReadAt(got, 0); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("multi-chunk read back: %v", err)
	}

	// Byte-identical device images.
	if devL.Stats().BytesDiscarded != devR.Stats().BytesDiscarded {
		t.Fatalf("TRIM ledgers diverged: local %d, remote %d",
			devL.Stats().BytesDiscarded, devR.Stats().BytesDiscarded)
	}
	const chunk = 1 << 20
	bl, br := make([]byte, chunk), make([]byte, chunk)
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if size-off < chunk {
			n = int(size - off)
		}
		if err := devL.ReadAt(bl[:n], off); err != nil {
			t.Fatal(err)
		}
		if err := devR.ReadAt(br[:n], off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bl[:n], br[:n]) {
			t.Fatalf("device images diverge in [%d, %d)", off, off+int64(n))
		}
	}
}

// TestRemoteErrorSurfacing requires device errors to classify
// identically through the wire: EIO from an unreadable range and ENOSPC
// from a full backend reach the remote caller as the same sentinels a
// local caller sees.
func TestRemoteErrorSurfacing(t *testing.T) {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(2048))
	// A grown defect: reads overlapping it fail permanently with EIO.
	faulted := blockdev.NewFault(env, dev, blockdev.FaultPlan{
		BadSectors: []blockdev.Range{{Off: 0, Len: blockdev.BlockSize}},
	})
	loc := local.New(faulted)
	rst, shutdown := serveStore(t, env, loc)
	defer shutdown()

	buf := make([]byte, blockdev.BlockSize)
	errLocal := loc.ReadAt(buf, 0)
	errRemote := rst.ReadAt(buf, 0)
	if !errors.Is(errLocal, ioerr.ErrIO) {
		t.Fatalf("local faulted read = %v, want EIO", errLocal)
	}
	if !errors.Is(errRemote, ioerr.ErrIO) {
		t.Fatalf("remote faulted read = %v, want EIO", errRemote)
	}
	if fsrpc.StatusOf(errRemote) != fsrpc.StatusOf(errLocal) {
		t.Fatalf("status drift: local %v, remote %v",
			fsrpc.StatusOf(errLocal), fsrpc.StatusOf(errRemote))
	}

	env2 := sim.NewEnv(1)
	dev2 := blockdev.New(env2, blockdev.SamsungEVO860().Scale(2048))
	full := nospace{local.New(dev2)}
	rst2, shutdown2 := serveStore(t, env2, full)
	defer shutdown2()
	errLocal = full.WriteAt(buf, 0)
	errRemote = rst2.WriteAt(buf, 0)
	if !errors.Is(errLocal, ioerr.ErrNoSpace) || !errors.Is(errRemote, ioerr.ErrNoSpace) {
		t.Fatalf("ENOSPC drift: local=%v remote=%v", errLocal, errRemote)
	}
}

type nospace struct{ blockstore.Store }

func (nospace) WriteAt(p []byte, off int64) error {
	return fmt.Errorf("backend full: %w", ioerr.ErrNoSpace)
}
