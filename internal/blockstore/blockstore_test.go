package blockstore_test

import (
	"bytes"
	"errors"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/blockstore"
	"betrfs/internal/blockstore/local"
	"betrfs/internal/blockstore/readcache"
	"betrfs/internal/ftl"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
)

func newDev(t *testing.T) (*sim.Env, *blockdev.Dev) {
	t.Helper()
	env := sim.NewEnv(1)
	return env, blockdev.New(env, blockdev.SamsungEVO860().Scale(256))
}

// TestAsDeviceUnwrapsLocal pins the free-unwrap invariant: adapting a
// local store back to a device returns the wrapped device itself, so the
// default single-node stack keeps its async submission timing (and the
// golden bench cells stay bit-identical).
func TestAsDeviceUnwrapsLocal(t *testing.T) {
	env, dev := newDev(t)
	got := blockstore.AsDevice(env, local.New(dev))
	if got != blockdev.Device(dev) {
		t.Fatalf("AsDevice(local) = %T, want the wrapped *blockdev.Dev itself", got)
	}
}

// TestStoreDevSynchronousAdapter covers the non-local path: a store that
// cannot unwrap gets the synchronous adapter, whose Submit* complete
// eagerly and whose stats ledger counts the traffic.
func TestStoreDevSynchronousAdapter(t *testing.T) {
	env, dev := newDev(t)
	// readcache cannot unwrap (it is not a pure device adapter).
	st := readcache.New(env.Metrics, local.New(dev), readcache.Config{})
	adapted := blockstore.AsDevice(env, st)
	if _, ok := adapted.(*blockdev.Dev); ok {
		t.Fatal("readcache store unexpectedly unwrapped to the raw device")
	}
	payload := bytes.Repeat([]byte{7}, blockdev.BlockSize)
	c := adapted.SubmitWrite(payload, 0)
	if c.At != env.Now() {
		t.Fatalf("synchronous adapter completion at %v, now %v", c.At, env.Now())
	}
	if err := adapted.Wait(c); err != nil {
		t.Fatalf("wait: %v", err)
	}
	got := make([]byte, len(payload))
	if err := adapted.ReadAt(got, 0); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back: %v", err)
	}
	if err := adapted.Flush(); err != nil {
		t.Fatal(err)
	}
	s := adapted.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.Flushes != 1 ||
		s.BytesWritten != int64(len(payload)) || s.BytesRead != int64(len(payload)) {
		t.Fatalf("adapter stats = %+v", s)
	}
	if adapted.Size() != dev.Size() {
		t.Fatalf("size = %d, want %d", adapted.Size(), dev.Size())
	}
}

// TestDiscardForwarding is the PR 7 TRIM-accounting regression guard:
// Discard must traverse the new blockstore indirection end to end — the
// RetryDev/FaultDev composition, the local store, the Store→Device
// adapter, and the FTL's trim ledger — exactly as it did when the
// southbound held the device directly.
func TestDiscardForwarding(t *testing.T) {
	env, dev := newDev(t)
	fdev := ftl.New(env, dev, ftl.DefaultConfig())
	faulted := blockdev.NewFault(env, fdev, blockdev.FaultPlan{Seed: 1})
	retried := blockdev.WithRetry(env, faulted, blockdev.DefaultRetryPolicy())

	// Local path: the unwrap must return the retry wrapper unchanged.
	d1 := blockstore.AsDevice(env, local.New(retried))
	if d1 != blockdev.Device(retried) {
		t.Fatalf("AsDevice(local(retry)) = %T, want the retry wrapper", d1)
	}
	length := int64(8 * blockdev.BlockSize)
	if err := d1.Discard(0, length); err != nil {
		t.Fatalf("discard via local path: %v", err)
	}
	if dev.Stats().Discards != 1 || dev.Stats().BytesDiscarded != length {
		t.Fatalf("discard did not reach the raw device: %+v", dev.Stats())
	}
	snap := env.Metrics.Snapshot()
	if snap.Counters["ftl.trim.count"] != 1 || snap.Counters["ftl.trim.bytes"] != length {
		t.Fatalf("discard did not reach the FTL ledger: trim.count=%d trim.bytes=%d",
			snap.Counters["ftl.trim.count"], snap.Counters["ftl.trim.bytes"])
	}

	// Adapter path: a non-unwrappable store must forward too.
	d2 := blockstore.AsDevice(env, readcache.New(env.Metrics, local.New(retried), readcache.Config{}))
	if err := d2.Discard(length, length); err != nil {
		t.Fatalf("discard via adapter path: %v", err)
	}
	if dev.Stats().Discards != 2 || dev.Stats().BytesDiscarded != 2*length {
		t.Fatalf("adapter discard did not reach the raw device: %+v", dev.Stats())
	}
	if d2.Stats().Discards != 1 || d2.Stats().BytesDiscarded != length {
		t.Fatalf("adapter discard ledger = %+v", d2.Stats())
	}
}

// nospaceStore fails every write with ENOSPC (the equivalence suite
// checks the sentinel crosses the wire intact).
type nospaceStore struct{ blockstore.Store }

func (nospaceStore) WriteAt(p []byte, off int64) error { return ioerr.ErrNoSpace }

func TestErrNoSpaceSentinelThroughAdapter(t *testing.T) {
	env, dev := newDev(t)
	ad := blockstore.AsDevice(env, nospaceStore{local.New(dev)})
	err := ad.WriteAt(make([]byte, blockdev.BlockSize), 0)
	if !errors.Is(err, ioerr.ErrNoSpace) {
		t.Fatalf("adapter write error = %v, want ENOSPC", err)
	}
	if ad.Stats().BytesWritten != 0 {
		t.Fatal("failed write counted bytes")
	}
}
