// Package blockstore defines the pluggable block-storage backend layer
// (DESIGN.md §14): a Store is the synchronous byte-addressed contract a
// mount's southbound ultimately writes through, narrow enough to travel
// over the fsrpc wire. Three implementations exist: local (an adapter
// over any blockdev.Device — the historical in-process stack), remote (a
// store served by another node over the block-class fsrpc ops), and
// readcache (a bounded read-through cache stacked in front of a slow
// store, typically a remote one).
//
// AsDevice adapts a Store back into a blockdev.Device so the existing
// file systems mount over any backend unchanged. The adapter is free for
// the local store — it unwraps to the underlying Device, preserving the
// async submission timing every golden benchmark cell was pinned on —
// and synchronous for everything else: Submit* executes eagerly and
// completes at the current simulated time, which is exactly the timing a
// synchronous RPC round trip has.
package blockstore

import (
	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
)

// Store is the synchronous block-backend contract. Offsets and lengths
// are bytes; implementations may require blockdev.BlockSize alignment
// (the local store inherits its device's rules). All methods may be
// called concurrently.
type Store interface {
	// ReadAt reads len(p) bytes at off. On error the contents of p are
	// undefined.
	ReadAt(p []byte, off int64) error
	// WriteAt writes len(p) bytes at off.
	WriteAt(p []byte, off int64) error
	// Flush drains queues and volatile caches (a durability barrier).
	Flush() error
	// Discard (TRIM) hints that [off, off+length) no longer holds live
	// data. Advisory, like blockdev.Device.Discard.
	Discard(off, length int64) error
	// Size returns the store capacity in bytes.
	Size() int64
}

// deviceUnwrapper is implemented by stores that are a pure adapter over
// a blockdev.Device (the local store); AsDevice returns the wrapped
// device itself so the adapter costs nothing.
type deviceUnwrapper interface {
	Device() blockdev.Device
}

// AsDevice adapts st into a blockdev.Device. A local store unwraps to
// its underlying device (free: identical timing, async submission
// preserved); any other store gets the synchronous adapter, whose
// Submit* execute eagerly and complete at env.Now().
func AsDevice(env *sim.Env, st Store) blockdev.Device {
	if u, ok := st.(deviceUnwrapper); ok {
		return u.Device()
	}
	return &storeDev{env: env, st: st}
}

// storeDev is the synchronous Store→Device adapter.
type storeDev struct {
	env   *sim.Env
	st    Store
	stats blockdev.Stats
}

func (d *storeDev) ReadAt(p []byte, off int64) error {
	err := d.st.ReadAt(p, off)
	d.stats.Reads++
	if err == nil {
		d.stats.BytesRead += int64(len(p))
	}
	return err
}

func (d *storeDev) WriteAt(p []byte, off int64) error {
	err := d.st.WriteAt(p, off)
	d.stats.Writes++
	if err == nil {
		d.stats.BytesWritten += int64(len(p))
	}
	return err
}

// SubmitRead executes eagerly: a store has no asynchronous submission
// (an RPC round trip is synchronous), so the completion is immediate.
func (d *storeDev) SubmitRead(p []byte, off int64) blockdev.Completion {
	err := d.ReadAt(p, off)
	return blockdev.Completion{At: d.env.Now(), Err: err}
}

func (d *storeDev) SubmitWrite(p []byte, off int64) blockdev.Completion {
	err := d.WriteAt(p, off)
	return blockdev.Completion{At: d.env.Now(), Err: err}
}

func (d *storeDev) Wait(c blockdev.Completion) error { return c.Err }

func (d *storeDev) Flush() error {
	d.stats.Flushes++
	return d.st.Flush()
}

func (d *storeDev) Discard(off, length int64) error {
	err := d.st.Discard(off, length)
	if err == nil {
		d.stats.Discards++
		d.stats.BytesDiscarded += length
	}
	return err
}

func (d *storeDev) Size() int64 { return d.st.Size() }

func (d *storeDev) Stats() *blockdev.Stats { return &d.stats }
