// Package local adapts any blockdev.Device into a blockstore.Store —
// the in-process backend every single-node deployment uses. The adapter
// is bidirectionally free: blockstore.AsDevice recognizes it and returns
// the wrapped device unchanged, so stacking local under a mount changes
// neither timing nor metrics, and every pre-existing golden benchmark
// cell stays bit-identical.
package local

import "betrfs/internal/blockdev"

// Store serves block-store operations straight from a device.
type Store struct {
	dev blockdev.Device
}

// New wraps dev.
func New(dev blockdev.Device) *Store { return &Store{dev: dev} }

// Device returns the wrapped device; blockstore.AsDevice uses it to
// unwrap the adapter for free.
func (s *Store) Device() blockdev.Device { return s.dev }

func (s *Store) ReadAt(p []byte, off int64) error  { return s.dev.ReadAt(p, off) }
func (s *Store) WriteAt(p []byte, off int64) error { return s.dev.WriteAt(p, off) }
func (s *Store) Flush() error                      { return s.dev.Flush() }
func (s *Store) Discard(off, length int64) error   { return s.dev.Discard(off, length) }
func (s *Store) Size() int64                       { return s.dev.Size() }
