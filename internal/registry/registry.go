// Package registry names the shares one fsserved instance exports
// (DESIGN.md §14.2). A share is either a mount share — a vfs.Mount a
// client ATTACHes to for file-class ops — or a block share — a
// blockstore.Store a client BOPENs for block-class ops, which is how one
// node's file system runs over another node's device. Each share records
// the sim.Env of the machine that hosts it, so a registry can roll every
// hosted machine's metrics into one snapshot without double-counting
// shares that live on the same machine.
package registry

import (
	"sort"
	"sync"

	"betrfs/internal/blockstore"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// Registry is a named-share table. It is safe for concurrent use; shares
// are added at daemon start-up and looked up on every ATTACH/BOPEN.
type Registry struct {
	mu     sync.RWMutex
	mounts map[string]*mountShare
	stores map[string]*storeShare
}

type mountShare struct {
	env   *sim.Env
	mount *vfs.Mount
}

type storeShare struct {
	env   *sim.Env
	store blockstore.Store
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		mounts: make(map[string]*mountShare),
		stores: make(map[string]*storeShare),
	}
}

// AddMount exports mount under name. A name is unique across both share
// kinds; re-registering it panics (shares are wired once at start-up, so
// a collision is a configuration bug, not a runtime condition).
func (r *Registry) AddMount(name string, env *sim.Env, mount *vfs.Mount) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFresh(name)
	r.mounts[name] = &mountShare{env: env, mount: mount}
}

// AddStore exports store under name.
func (r *Registry) AddStore(name string, env *sim.Env, store blockstore.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFresh(name)
	r.stores[name] = &storeShare{env: env, store: store}
}

func (r *Registry) checkFresh(name string) {
	if _, ok := r.mounts[name]; ok {
		panic("registry: duplicate share " + name)
	}
	if _, ok := r.stores[name]; ok {
		panic("registry: duplicate share " + name)
	}
}

// Mount returns the mount share name, or nil if no such mount share.
func (r *Registry) Mount(name string) *vfs.Mount {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.mounts[name]; ok {
		return s.mount
	}
	return nil
}

// Store returns the block share name, or nil if no such block share.
func (r *Registry) Store(name string) blockstore.Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.stores[name]; ok {
		return s.store
	}
	return nil
}

// Share describes one registered share for listings (fsshell `shares`,
// the SHARES wire op).
type Share struct {
	Name string
	// Mount is true for a mount share, false for a block share.
	Mount bool
	// Size is the capacity of a block share in bytes; zero for mounts.
	Size int64
}

// Shares lists every share sorted by name.
func (r *Registry) Shares() []Share {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Share, 0, len(r.mounts)+len(r.stores))
	for name := range r.mounts {
		out = append(out, Share{Name: name, Mount: true})
	}
	for name, s := range r.stores {
		out = append(out, Share{Name: name, Size: s.store.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot merges the metrics of every distinct machine hosting a share
// into one snapshot. Shares sharing a sim.Env (the common case: one
// machine exports a mount and the block store beneath it) are counted
// once.
func (r *Registry) Snapshot() metrics.Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var snap metrics.Snapshot
	seen := make(map[*metrics.Registry]bool)
	merge := func(env *sim.Env) {
		if env == nil || env.Metrics == nil || seen[env.Metrics] {
			return
		}
		seen[env.Metrics] = true
		snap.Merge(env.Metrics.Snapshot())
	}
	// Deterministic merge order: sorted names, mounts then stores.
	for _, name := range sortedKeys(r.mounts) {
		merge(r.mounts[name].env)
	}
	for _, name := range sortedKeys(r.stores) {
		merge(r.stores[name].env)
	}
	if snap.Counters == nil {
		snap.Counters = map[string]int64{}
	}
	return snap
}

// ShareSnapshot returns the metrics snapshot of the machine hosting the
// named share, for per-share `stats` in fsshell. The second result is
// false if the share does not exist or its machine has no registry.
func (r *Registry) ShareSnapshot(name string) (metrics.Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var env *sim.Env
	if s, ok := r.mounts[name]; ok {
		env = s.env
	} else if s, ok := r.stores[name]; ok {
		env = s.env
	}
	if env == nil || env.Metrics == nil {
		return metrics.Snapshot{}, false
	}
	return env.Metrics.Snapshot(), true
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
