package logfs

import (
	"encoding/binary"
	"sort"

	"betrfs/internal/ioerr"
	"betrfs/internal/vfs"
)

// vfs.FS implementation. Handles are inode numbers.

// Root returns the root handle.
func (fs *FS) Root() vfs.Handle { return rootIno }

func (fs *FS) attrOf(n *node) vfs.Attr {
	return vfs.Attr{Dir: n.dir, Size: n.size, Nlink: n.nlink, Mtime: n.mtime}
}

// Lookup resolves name in parent (node blob read on cold cache).
func (fs *FS) Lookup(parent vfs.Handle, name string) (h vfs.Handle, a vfs.Attr, err error) {
	defer ioerr.Guard(&err)
	p := fs.node(parent.(Ino))
	fs.env.Compare(len(name))
	c, ok := p.children[name]
	if !ok {
		return nil, vfs.Attr{}, vfs.ErrNotExist
	}
	return c.ino, fs.attrOf(fs.node(c.ino)), nil
}

// Create allocates an inode; its node blob reaches the log at the next
// fsync or checkpoint.
func (fs *FS) Create(parent vfs.Handle, name string, dir bool) (h vfs.Handle, a vfs.Attr, err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return nil, vfs.Attr{}, ferr
	}
	p := fs.node(parent.(Ino))
	if _, ok := p.children[name]; ok {
		return nil, vfs.Attr{}, vfs.ErrExist
	}
	ino := fs.nextIno
	fs.nextIno++
	n := &node{ino: ino, dir: dir, nlink: 1, mtime: fs.env.Now(), blocks: map[int64]int64{}, dirty: true, hot: true}
	if dir {
		n.nlink = 2
		n.children = map[string]childRef{}
	}
	fs.inodes[ino] = n
	fs.nat[ino] = natEntry{first: -1}
	p.children[name] = childRef{ino: ino, dir: dir}
	p.mtime = fs.env.Now()
	p.dirty = true
	return ino, fs.attrOf(n), nil
}

// Remove unlinks name, invalidating the child's blocks.
func (fs *FS) Remove(parent vfs.Handle, name string, h vfs.Handle, dir bool) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	p := fs.node(parent.(Ino))
	c, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := fs.node(c.ino)
	if dir && len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	for _, b := range n.blocks {
		fs.invalidate(b)
	}
	if ent, ok := fs.nat[c.ino]; ok && ent.first >= 0 {
		for i := 0; i < ent.count; i++ {
			fs.invalidate(ent.first + int64(i))
		}
	}
	delete(fs.nat, c.ino)
	delete(fs.inodes, c.ino)
	delete(p.children, name)
	p.mtime = fs.env.Now()
	p.dirty = true
	return nil
}

// Rename moves the entry (inode numbers are stable).
func (fs *FS) Rename(oldParent vfs.Handle, oldName string, h vfs.Handle, newParent vfs.Handle, newName string) (nh vfs.Handle, err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return nil, ferr
	}
	op := fs.node(oldParent.(Ino))
	np := fs.node(newParent.(Ino))
	c, ok := op.children[oldName]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	delete(op.children, oldName)
	np.children[newName] = c
	op.dirty = true
	np.dirty = true
	op.mtime = fs.env.Now()
	np.mtime = fs.env.Now()
	return h, nil
}

// ReadDir lists children in sorted order (not Known: no opportunistic
// inode instantiation).
func (fs *FS) ReadDir(h vfs.Handle) (ents []vfs.DirEntry, err error) {
	defer ioerr.Guard(&err)
	n := fs.node(h.(Ino))
	if !n.dir {
		return nil, vfs.ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]vfs.DirEntry, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		out = append(out, vfs.DirEntry{Name: name, Dir: c.dir})
	}
	return out, nil
}

// WriteAttr records metadata changes in the in-memory node (logged via its
// node blob).
func (fs *FS) WriteAttr(h vfs.Handle, a vfs.Attr) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	n := fs.node(h.(Ino))
	n.size = a.Size
	n.mtime = a.Mtime
	n.dirty = true
	return nil
}

// ReadBlocks fills pages, merging log-contiguous runs into single reads.
func (fs *FS) ReadBlocks(h vfs.Handle, blk int64, pages []*vfs.Page, seq bool) (err error) {
	defer ioerr.Guard(&err)
	n := fs.node(h.(Ino))
	i := 0
	for i < len(pages) {
		phys, ok := n.blocks[blk+int64(i)]
		if !ok {
			for j := range pages[i].Data {
				pages[i].Data[j] = 0
			}
			i++
			continue
		}
		run := 1
		for i+run < len(pages) {
			np, ok := n.blocks[blk+int64(i+run)]
			if !ok || np != phys+int64(run) {
				break
			}
			run++
		}
		buf := make([]byte, run*BlockSize)
		fs.devCheck(fs.dev.ReadAt(buf, fs.blockAddr(phys)))
		for j := 0; j < run; j++ {
			copy(pages[i+j].Data, buf[j*BlockSize:(j+1)*BlockSize])
		}
		fs.env.Memcpy(len(buf))
		i += run
	}
	return nil
}

// WriteBlocks writes a run of pages. New data appends to the log
// (out-of-place); overwrites of already-allocated blocks update in place —
// F2FS's IPU policy, which it selects for fsync-bound random overwrites to
// avoid node-block and cleaning amplification.
func (fs *FS) WriteBlocks(h vfs.Handle, blk int64, pgs []*vfs.Page, durable bool) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	n := fs.node(h.(Ino))
	// In-place-update path: every block already mapped.
	allMapped := true
	for i := range pgs {
		if _, ok := n.blocks[blk+int64(i)]; !ok {
			allMapped = false
			break
		}
	}
	if allMapped {
		i := 0
		for i < len(pgs) {
			phys := n.blocks[blk+int64(i)]
			run := 1
			for i+run < len(pgs) && n.blocks[blk+int64(i+run)] == phys+int64(run) {
				run++
			}
			buf := make([]byte, run*BlockSize)
			for j := 0; j < run; j++ {
				copy(buf[j*BlockSize:], pgs[i+j].Data)
			}
			fs.devCheck(fs.dev.WriteAt(buf, fs.blockAddr(phys)))
			fs.stats.DataWrites++
			i += run
		}
		return nil
	}
	head := headColdData
	if _, ok := n.blocks[blk]; ok {
		head = headHotData // overwrite: hot data
	}
	i := 0
	for i < len(pgs) {
		// Allocate as long a consecutive run as the segment allows.
		first := fs.allocBlock(head)
		count := 1
		for i+count < len(pgs) {
			b := fs.allocBlock(head)
			if b != first+int64(count) {
				// Segment boundary: write what we have, restart run.
				fs.invalidate(b)
				fs.heads[head].next-- // give the block back
				break
			}
			count++
		}
		buf := make([]byte, count*BlockSize)
		for j := 0; j < count; j++ {
			l := blk + int64(i+j)
			if old, ok := n.blocks[l]; ok {
				fs.invalidate(old)
			}
			copy(buf[j*BlockSize:], pgs[i+j].Data)
			n.blocks[l] = first + int64(j)
			fs.blockOwner[first+int64(j)] = owner{ino: n.ino, logical: l}
		}
		fs.devCheck(fs.dev.WriteAt(buf, fs.blockAddr(first)))
		fs.stats.DataWrites++
		i += count
	}
	n.dirty = true
	return nil
}

// WritePartial is unsupported (read-modify-write applies); calling it is
// a programmer error, so the panic stays.
func (fs *FS) WritePartial(h vfs.Handle, blk int64, off int, data []byte, durable bool) error {
	panic("logfs: blind writes unsupported")
}

// SupportsBlindWrites reports false.
func (fs *FS) SupportsBlindWrites() bool { return false }

// TruncateBlocks invalidates blocks at or beyond fromBlk.
func (fs *FS) TruncateBlocks(h vfs.Handle, fromBlk int64) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	n := fs.node(h.(Ino))
	for blk, b := range n.blocks {
		if blk >= fromBlk {
			fs.invalidate(b)
			delete(n.blocks, blk)
		}
	}
	n.dirty = true
	return nil
}

// Fsync writes every dirty node blob (the file's own, plus the parents
// whose directory content references it) and the NAT blocks covering
// them, then flushes — the F2FS fsync path, with the roll-forward scan
// replaced by direct NAT updates.
func (fs *FS) Fsync(h vfs.Handle) (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	fs.stats.Fsyncs++
	// Write in inode order, not map order: blob placement in the log is
	// order-dependent, so a map-ordered walk would put segments in a
	// different state every run (see Checkpoint).
	inos := make([]Ino, 0, len(fs.inodes))
	for ino, n := range fs.inodes {
		if n.dirty {
			inos = append(inos, ino)
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	written := map[int64]bool{fs.natAddr(h.(Ino)): true}
	for _, ino := range inos {
		fs.writeNodeBlock(fs.inodes[ino])
		written[fs.natAddr(ino)] = true
	}
	// Two-phase flush: node blobs must be durable before the NAT blocks
	// that point at them, or a crash between the two could leave a durable
	// NAT entry referencing a blob the device never persisted.
	fs.devCheck(fs.dev.Flush())
	addrs := make([]int64, 0, len(written))
	for addr := range written {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		fs.writeNATBlockAt(addr)
	}
	fs.writeSuperOnly()
	fs.devCheck(fs.dev.Flush())
	fs.releasePendingSegs()
	return nil
}

// writeNATBlockAt persists one NAT block by device address.
func (fs *FS) writeNATBlockAt(addr int64) {
	buf := make([]byte, BlockSize)
	fs.devCheck(fs.dev.ReadAt(buf, addr))
	fs.fillNATBlock(buf, Ino((addr-fs.natOff)/natEntrySize))
	fs.devCheck(fs.dev.WriteAt(buf, addr))
}

// Sync checkpoints the whole file system.
func (fs *FS) Sync() (err error) {
	defer ioerr.Guard(&err)
	if ferr := fs.writeGate(); ferr != nil {
		return ferr
	}
	fs.Checkpoint()
	return nil
}

// Maintain runs periodic checkpoints and opportunistic cleaning. No error
// return in the vfs.FS contract; failures latch the sticky abort.
func (fs *FS) Maintain() {
	var err error
	defer ioerr.Guard(&err)
	if fs.ioErr != nil {
		return
	}
	if fs.env.Now()-fs.lastCheckpoint >= fs.CheckpointInterval {
		fs.Checkpoint()
	}
}

// DropCaches writes back dirty nodes and evicts the inode cache.
func (fs *FS) DropCaches() {
	var err error
	defer ioerr.Guard(&err)
	if fs.ioErr == nil {
		fs.Checkpoint()
	}
	for ino := range fs.inodes {
		if ino != rootIno {
			delete(fs.inodes, ino)
		}
	}
}

// Checkpoint persists all dirty node blobs, the NAT, and the superblock.
func (fs *FS) Checkpoint() {
	fs.stats.Checkpoints++
	inos := make([]Ino, 0, len(fs.inodes))
	for ino, n := range fs.inodes {
		if n.dirty {
			inos = append(inos, ino)
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		fs.writeNodeBlock(fs.inodes[ino])
	}
	// Blob/NAT write barrier — see Fsync.
	fs.devCheck(fs.dev.Flush())
	fs.writeNAT()
	fs.releasePendingSegs()
	fs.lastCheckpoint = fs.env.Now()
}

// --- NAT persistence ---------------------------------------------------------

const natEntrySize = 16

func (fs *FS) natAddr(ino Ino) int64 {
	return fs.natOff + int64(ino)*natEntrySize/BlockSize*BlockSize
}

// writeSuperOnly refreshes the superblock (magic + inode allocator state).
func (fs *FS) writeSuperOnly() {
	sb := make([]byte, BlockSize)
	binary.BigEndian.PutUint32(sb, 0xf2f5f2f5)
	binary.BigEndian.PutUint64(sb[4:], uint64(fs.nextIno))
	fs.devCheck(fs.dev.WriteAt(sb, 0))
}

// fillNATBlock writes the in-memory entries for the block starting at
// firstIno into buf.
func (fs *FS) fillNATBlock(buf []byte, firstIno Ino) {
	per := Ino(BlockSize / natEntrySize)
	for i := Ino(0); i < per; i++ {
		ino := firstIno + i
		off := int64(i) * natEntrySize
		ent, ok := fs.nat[ino]
		if !ok {
			binary.BigEndian.PutUint64(buf[off:], ^uint64(0))
			binary.BigEndian.PutUint64(buf[off+8:], 0)
			continue
		}
		binary.BigEndian.PutUint64(buf[off:], uint64(ent.first))
		binary.BigEndian.PutUint64(buf[off+8:], uint64(ent.count))
	}
}

// writeNAT persists all NAT blocks covering allocated inodes, plus the
// superblock, and flushes.
func (fs *FS) writeNAT() {
	per := Ino(BlockSize / natEntrySize)
	buf := make([]byte, BlockSize)
	for first := rootIno - rootIno; first < fs.nextIno; first += per {
		fs.fillNATBlock(buf, first)
		fs.devCheck(fs.dev.WriteAt(buf, fs.natOff+int64(first)*natEntrySize))
	}
	fs.writeSuperOnly()
	fs.devCheck(fs.dev.Flush())
	fs.env.Serialize(int(fs.nextIno) * natEntrySize)
}

var _ vfs.FS = (*FS)(nil)
