package logfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
)

// Recover mounts an existing logfs from its superblock, NAT, and node
// blobs: the NAT locates every inode's latest durable node blob (fsync
// updates its NAT block directly, which stands in for F2FS's roll-forward
// scan), and segment-validity state is rebuilt from the recovered block
// maps.
func Recover(env *sim.Env, dev blockdev.Device) (*FS, error) {
	fs := New(env, dev)
	sb := make([]byte, BlockSize)
	if rerr := dev.ReadAt(sb, 0); rerr != nil {
		return nil, fmt.Errorf("logfs: superblock unreadable: %w", rerr)
	}
	if binary.BigEndian.Uint32(sb) != 0xf2f5f2f5 {
		return nil, fmt.Errorf("logfs: no superblock")
	}
	fs.nextIno = Ino(binary.BigEndian.Uint64(sb[4:]))
	// A torn superblock write can only inflate nextIno (the mixed
	// big-endian value is never below the last durable one); clamp it to
	// what the NAT region can address so the scan stays bounded.
	if maxInos := Ino((fs.mainOff - fs.natOff) / natEntrySize); fs.nextIno > maxInos {
		fs.nextIno = maxInos
	}
	fs.inodes = make(map[Ino]*node)
	fs.nat = make(map[Ino]natEntry)

	// Load the NAT.
	per := Ino(BlockSize / natEntrySize)
	buf := make([]byte, BlockSize)
	for first := Ino(0); first < fs.nextIno; first += per {
		if rerr := dev.ReadAt(buf, fs.natOff+int64(first)*natEntrySize); rerr != nil {
			return nil, fmt.Errorf("logfs: NAT block for inode %d unreadable: %w", first, rerr)
		}
		for i := Ino(0); i < per && first+i < fs.nextIno; i++ {
			off := int64(i) * natEntrySize
			f := binary.BigEndian.Uint64(buf[off:])
			if f == ^uint64(0) {
				continue
			}
			fs.nat[first+i] = natEntry{first: int64(f), count: int(binary.BigEndian.Uint64(buf[off+8:]))}
		}
	}
	// Rebuild segment state from every reachable node blob and block map.
	// A NAT entry whose blob fails validation — torn by the crash, or
	// pointing into space the crash never persisted — belonged to an
	// un-checkpointed file; drop it rather than decode garbage.
	for ino, ent := range fs.nat {
		if ent.first < 0 {
			continue
		}
		n, err := fs.readNodeBlock(ino, ent)
		if err != nil {
			// A media error is not a torn write: dropping the inode would
			// silently discard durable data, so fail the mount instead.
			if errors.Is(err, ioerr.ErrIO) {
				return nil, fmt.Errorf("logfs: node blob for inode %d: %w", ino, err)
			}
			delete(fs.nat, ino)
			fs.stats.DroppedNodes++
			continue
		}
		fs.inodes[ino] = n
		for i := 0; i < ent.count; i++ {
			b := ent.first + int64(i)
			fs.segValid[b/SegmentBlocks]++
			fs.blockOwner[b] = owner{ino: ino, logical: -1}
		}
		for logical, b := range n.blocks {
			fs.segValid[b/SegmentBlocks]++
			fs.blockOwner[b] = owner{ino: ino, logical: logical}
		}
	}
	if _, ok := fs.inodes[rootIno]; !ok {
		root := &node{ino: rootIno, dir: true, nlink: 2, blocks: map[int64]int64{}, children: map[string]childRef{}, dirty: true}
		fs.inodes[rootIno] = root
		fs.nat[rootIno] = natEntry{first: -1}
	}
	// Prune dangling directory entries: a dirent whose target inode was
	// dropped above (or never persisted) must not survive, or later
	// lookups would fault on a missing node.
	for _, n := range fs.inodes {
		if !n.dir {
			continue
		}
		for name, c := range n.children {
			if _, ok := fs.inodes[c.ino]; !ok {
				delete(n.children, name)
				n.dirty = true
			}
		}
	}
	// Segments with any valid blocks are dirty; fully dead ones are free.
	fs.freeSegs = 0
	for s := int64(0); s < fs.segments; s++ {
		if fs.segValid[s] > 0 {
			fs.segState[s] = 2
		} else {
			fs.segState[s] = 0
			fs.freeSegs++
		}
	}
	return fs, nil
}
