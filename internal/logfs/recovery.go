package logfs

import (
	"encoding/binary"
	"fmt"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
)

// Recover mounts an existing logfs from its superblock, NAT, and node
// blobs: the NAT locates every inode's latest durable node blob (fsync
// updates its NAT block directly, which stands in for F2FS's roll-forward
// scan), and segment-validity state is rebuilt from the recovered block
// maps.
func Recover(env *sim.Env, dev blockdev.Device) (*FS, error) {
	fs := New(env, dev)
	sb := make([]byte, BlockSize)
	dev.ReadAt(sb, 0)
	if binary.BigEndian.Uint32(sb) != 0xf2f5f2f5 {
		return nil, fmt.Errorf("logfs: no superblock")
	}
	fs.nextIno = Ino(binary.BigEndian.Uint64(sb[4:]))
	fs.inodes = make(map[Ino]*node)
	fs.nat = make(map[Ino]natEntry)

	// Load the NAT.
	per := Ino(BlockSize / natEntrySize)
	buf := make([]byte, BlockSize)
	for first := Ino(0); first < fs.nextIno; first += per {
		dev.ReadAt(buf, fs.natOff+int64(first)*natEntrySize)
		for i := Ino(0); i < per && first+i < fs.nextIno; i++ {
			off := int64(i) * natEntrySize
			f := binary.BigEndian.Uint64(buf[off:])
			if f == ^uint64(0) {
				continue
			}
			fs.nat[first+i] = natEntry{first: int64(f), count: int(binary.BigEndian.Uint64(buf[off+8:]))}
		}
	}
	// Rebuild segment state from every reachable node blob and block map.
	for ino, ent := range fs.nat {
		if ent.first < 0 {
			continue
		}
		n := fs.readNodeBlock(ino, ent)
		fs.inodes[ino] = n
		for i := 0; i < ent.count; i++ {
			b := ent.first + int64(i)
			fs.segValid[b/SegmentBlocks]++
			fs.blockOwner[b] = owner{ino: ino, logical: -1}
		}
		for logical, b := range n.blocks {
			fs.segValid[b/SegmentBlocks]++
			fs.blockOwner[b] = owner{ino: ino, logical: logical}
		}
	}
	if _, ok := fs.inodes[rootIno]; !ok {
		root := &node{ino: rootIno, dir: true, nlink: 2, blocks: map[int64]int64{}, children: map[string]childRef{}, dirty: true}
		fs.inodes[rootIno] = root
		fs.nat[rootIno] = natEntry{first: -1}
	}
	// Segments with any valid blocks are dirty; fully dead ones are free.
	fs.freeSegs = 0
	for s := int64(0); s < fs.segments; s++ {
		if fs.segValid[s] > 0 {
			fs.segState[s] = 2
		} else {
			fs.segState[s] = 0
			fs.freeSegs++
		}
	}
	return fs, nil
}
