package logfs

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

func newMount(t testing.TB, scale int64) (*sim.Env, *blockdev.Dev, *FS, *vfs.Mount) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(scale))
	fs := New(env, dev)
	cfg := vfs.DefaultConfig()
	cfg.CacheBytes = 64 << 20
	return env, dev, fs, vfs.NewMount(env, fs, cfg)
}

func TestBasicRoundTrip(t *testing.T) {
	_, _, _, m := newMount(t, 64)
	f, _ := m.Create("a")
	payload := bytes.Repeat([]byte{3}, 3*BlockSize+17)
	f.Write(payload)
	f.Close()
	m.DropCaches()
	g, err := m.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	n, _ := g.ReadAt(got, 0)
	if n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatal("round trip failed")
	}
}

func TestNewWritesAppendSequentially(t *testing.T) {
	_, dev, _, m := newMount(t, 64)
	f, _ := m.Create("seq")
	f.Write(make([]byte, 32<<20))
	f.Fsync()
	st := dev.Stats()
	if st.RandWrites > st.SeqWrites {
		t.Fatalf("log-structured writes mostly random: seq=%d rand=%d",
			st.SeqWrites, st.RandWrites)
	}
}

func TestOverwriteUsesIPU(t *testing.T) {
	_, _, fs, m := newMount(t, 64)
	f, _ := m.Create("f")
	f.Write(make([]byte, 1<<20))
	f.Fsync()
	n := fs.node(Ino(2))
	before := map[int64]int64{}
	for l, p := range n.blocks {
		before[l] = p
	}
	// Overwrite existing blocks: addresses must not move (IPU).
	f.WriteAt(bytes.Repeat([]byte{9}, 1<<20), 0)
	f.Fsync()
	for l, p := range n.blocks {
		if before[l] != p {
			t.Fatalf("overwrite relocated block %d (%d -> %d); IPU expected", l, before[l], p)
		}
	}
}

func TestSegmentCleaningReclaimsSpace(t *testing.T) {
	env := sim.NewEnv(1)
	// Tiny device so the main area has few segments.
	prof := blockdev.SamsungEVO860()
	prof.Capacity = 96 << 20
	dev := blockdev.New(env, prof)
	fs := New(env, dev)
	m := vfs.NewMount(env, fs, vfs.DefaultConfig())
	// Interleave small appends to two files so segments hold a mix, then
	// delete one file: its blocks leave every segment half dead, and the
	// cleaner must migrate the survivors to make free segments.
	for round := 0; round < 14; round++ {
		live, _ := m.OpenFile(fmt.Sprintf("live%d", round), true, false)
		dead, _ := m.OpenFile(fmt.Sprintf("dead%d", round), true, false)
		for chunk := 0; chunk < 16; chunk++ {
			live.WriteAt(make([]byte, 128<<10), int64(chunk)<<17)
			live.Fsync()
			dead.WriteAt(make([]byte, 128<<10), int64(chunk)<<17)
			dead.Fsync()
		}
		m.Remove(fmt.Sprintf("dead%d", round))
	}
	// Allocation pressure: a large write forces segment reclamation.
	big, _ := m.Create("big")
	big.Write(make([]byte, 40<<20))
	big.Fsync()
	if fs.Stats().CleanedSegs == 0 {
		t.Fatal("segment cleaner never ran despite half-dead segments")
	}
	// All live data still readable.
	for i := 0; i < 14; i++ {
		if _, err := m.Open(fmt.Sprintf("live%d", i)); err != nil {
			t.Fatalf("file live%d unreadable after cleaning: %v", i, err)
		}
	}
}

func TestRecoverAfterCheckpoint(t *testing.T) {
	env, dev, fs, m := newMount(t, 64)
	m.MkdirAll("d")
	f, _ := m.Create("d/file")
	f.Write([]byte("persistent"))
	f.Close()
	m.Sync() // checkpoint

	fs2, err := Recover(env, dev)
	if err != nil {
		t.Fatal(err)
	}
	m2 := vfs.NewMount(env, fs2, vfs.DefaultConfig())
	g, err := m2.Open("d/file")
	if err != nil {
		t.Fatalf("file lost after recovery: %v", err)
	}
	buf := make([]byte, 16)
	n, _ := g.ReadAt(buf, 0)
	if string(buf[:n]) != "persistent" {
		t.Fatal("data corrupted across recovery")
	}
	_ = fs
}

func TestFsyncDurableWithoutCheckpoint(t *testing.T) {
	env, dev, _, m := newMount(t, 64)
	m.Sync()
	dev.EnableCrashTracking()
	f, _ := m.Create("hot")
	f.Write([]byte("fsynced"))
	f.Fsync()                        // node blob + NAT entry, no full checkpoint
	dev.Crash(dev.UnflushedWrites()) // keep everything up to the fsync barrier

	fs2, err := Recover(env, dev)
	if err != nil {
		t.Fatal(err)
	}
	m2 := vfs.NewMount(env, fs2, vfs.DefaultConfig())
	if _, err := m2.Open("hot"); err != nil {
		t.Fatalf("fsynced file lost without checkpoint: %v", err)
	}
}

func TestNodeBlobsSpillAcrossBlocks(t *testing.T) {
	_, _, fs, m := newMount(t, 64)
	m.MkdirAll("big")
	for i := 0; i < 2000; i++ {
		f, _ := m.Create(fmt.Sprintf("big/file-with-a-longish-name-%05d", i))
		f.Close()
	}
	m.Sync()
	ino, _, err := fs.Lookup(rootIno, "big")
	if err != nil {
		t.Fatal(err)
	}
	ent := fs.nat[ino.(Ino)]
	if ent.count < 2 {
		t.Fatalf("2000-entry directory blob fits in %d block(s)?", ent.count)
	}
	// And it must still decode after a cache drop.
	fs.DropCaches()
	ents, _ := fs.ReadDir(ino)
	if len(ents) != 2000 {
		t.Fatalf("decoded %d entries, want 2000", len(ents))
	}
}
