// Package logfs implements a simplified log-structured file system in the
// mold of F2FS (Lee et al., FAST '15), the flash-native baseline in the
// paper's evaluation.
//
// All writes — file data and node blocks (inodes + block maps + directory
// content) — append to active log segments. Multi-head logging separates
// data and node writes into different segments. A node address table
// (NAT) in a fixed region maps inode numbers to the current node-block
// address, so node blocks can move during segment cleaning without
// rewriting their parents. Checkpoints persist the NAT and segment
// information; fsync appends the affected node block and a roll-forward
// record. When free segments run low, greedy cleaning migrates the valid
// blocks of the dirtiest victim segments to the active logs.
package logfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
)

// BlockSize is the file-system block size.
const BlockSize = 4096

// SegmentBlocks is the number of blocks per log segment (2 MiB).
const SegmentBlocks = 512

// Ino is an inode number.
type Ino int64

const rootIno Ino = 1

// segPendingFree marks a fully dead segment awaiting the next NAT
// persist before it can be reallocated.
const segPendingFree = 3

// logHead identifies one of the multi-head logs.
type logHead int

const (
	headHotData logHead = iota
	headColdData
	headNode
	numHeads
)

// FS is the logfs instance.
type FS struct {
	env *sim.Env
	dev blockdev.Device

	// Layout: superblock+NAT region, then the main area of segments.
	natOff   int64
	mainOff  int64
	segments int64

	// Per-segment valid-block counts (SIT) and allocation state.
	segValid []int
	segState []byte // 0 free, 1 active, 2 dirty/full, 3 pending free
	heads    [numHeads]struct {
		seg  int64
		next int64 // next block within segment
	}
	freeSegs int64
	// pendingSegs counts fully dead segments that cannot be reused until
	// the next NAT persist (see invalidate).
	pendingSegs int64

	// blockOwner tracks, for each main-area block, what it currently
	// holds (for cleaning): the owning inode and logical index, or a
	// node block. Cleared when invalidated.
	blockOwner map[int64]owner

	// NAT: inode -> node blob location; first < 0 when only in memory.
	nat map[Ino]natEntry

	inodes  map[Ino]*node
	nextIno Ino

	lastCheckpoint time.Duration
	// CheckpointInterval controls periodic checkpoints.
	CheckpointInterval time.Duration
	// cleaning guards against re-entering the cleaner from the
	// allocations the cleaner itself performs.
	cleaning bool

	// ioErr is the sticky abort (§10): once a node, NAT, or data write
	// fails, the log's durable state cannot be trusted, so further
	// mutations are refused while reads keep working.
	ioErr error

	stats Stats
}

// devCheck aborts the current operation on a device error; a failed
// write or flush also latches the sticky abort.
func (fs *FS) devCheck(err error) {
	if err == nil {
		return
	}
	var de *ioerr.DeviceError
	if errors.As(err, &de) && de.Op != "read" && fs.ioErr == nil {
		fs.ioErr = err
	}
	ioerr.Check(err)
}

// writeGate is checked at the top of every mutating operation.
func (fs *FS) writeGate() error { return fs.ioErr }

type owner struct {
	ino     Ino
	logical int64 // -1 for a node block
}

// Stats counts logfs activity.
type Stats struct {
	DataWrites    int64
	NodeWrites    int64
	NodeReads     int64
	Checkpoints   int64
	CleanedSegs   int64
	MovedBlocks   int64
	Fsyncs        int64
	DroppedNodes  int64 // invalid node blobs discarded during recovery
	DiscardedSegs int64 // dead segments handed to the device as TRIMs
}

// node is an in-memory inode with its block map and directory content.
type node struct {
	ino      Ino
	dir      bool
	size     int64
	nlink    int
	mtime    time.Duration
	blocks   map[int64]int64 // logical -> main-area block address
	children map[string]childRef
	dirty    bool
	hot      bool // recently rewritten: route to the hot data log
}

type childRef struct {
	ino Ino
	dir bool
}

// New formats a logfs over dev.
func New(env *sim.Env, dev blockdev.Device) *FS {
	capacity := dev.Size()
	natLen := capacity / 128
	fs := &FS{
		env:                env,
		dev:                dev,
		natOff:             BlockSize,
		mainOff:            BlockSize + natLen,
		blockOwner:         make(map[int64]owner),
		nat:                make(map[Ino]natEntry),
		inodes:             make(map[Ino]*node),
		nextIno:            rootIno + 1,
		CheckpointInterval: 30 * time.Second,
	}
	fs.segments = (capacity - fs.mainOff) / (SegmentBlocks * BlockSize)
	fs.segValid = make([]int, fs.segments)
	fs.segState = make([]byte, fs.segments)
	fs.freeSegs = fs.segments
	for h := logHead(0); h < numHeads; h++ {
		fs.heads[h].seg = -1
	}
	root := &node{ino: rootIno, dir: true, nlink: 2, blocks: map[int64]int64{}, children: map[string]childRef{}, dirty: true}
	fs.inodes[rootIno] = root
	fs.nat[rootIno] = natEntry{first: -1}
	return fs
}

// natEntry locates an inode's node blob: count contiguous blocks starting
// at first (first < 0: not yet written).
type natEntry struct {
	first int64
	count int
}

// Stats returns counters.
func (fs *FS) Stats() *Stats { return &fs.stats }

// blockAddr converts a main-area block number to a device offset.
func (fs *FS) blockAddr(b int64) int64 { return fs.mainOff + b*BlockSize }

// allocBlock appends one block to the given log head, cleaning if needed.
func (fs *FS) allocBlock(h logHead) int64 {
	hd := &fs.heads[h]
	if hd.seg < 0 || hd.next >= SegmentBlocks {
		if hd.seg >= 0 {
			fs.segState[hd.seg] = 2
		}
		fs.maybeClean()
		seg := fs.findFreeSegment()
		fs.segState[seg] = 1
		fs.freeSegs--
		hd.seg = seg
		hd.next = 0
	}
	b := hd.seg*SegmentBlocks + hd.next
	hd.next++
	fs.segValid[hd.seg]++
	return b
}

func (fs *FS) findFreeSegment() int64 {
	for s := int64(0); s < fs.segments; s++ {
		if fs.segState[s] == 0 {
			return s
		}
	}
	// Space pressure: persisting the NAT releases the pending-free
	// segments parked since the last checkpoint. Flush first so every
	// blob the in-memory NAT references is durable before the NAT is.
	if fs.pendingSegs > 0 {
		fs.devCheck(fs.dev.Flush())
		fs.writeNAT()
		fs.releasePendingSegs()
		for s := int64(0); s < fs.segments; s++ {
			if fs.segState[s] == 0 {
				return s
			}
		}
	}
	// Out of segments even after cleaning and releasing pending frees:
	// a space condition the caller must see, not a bug.
	ioerr.Check(fmt.Errorf("logfs: no free segments: %w", ioerr.ErrNoSpace))
	panic("unreachable")
}

// invalidate marks a block dead in its segment. A fully dead segment is
// not reusable immediately: the durable NAT may still reference blobs in
// it, so it parks in the pending-free state until the next NAT persist
// (F2FS's rule that checkpointed segments are not reused before the
// following checkpoint).
func (fs *FS) invalidate(b int64) {
	if b < 0 {
		return
	}
	seg := b / SegmentBlocks
	if fs.segValid[seg] > 0 {
		fs.segValid[seg]--
	}
	delete(fs.blockOwner, b)
	if fs.segValid[seg] == 0 && fs.segState[seg] == 2 {
		fs.segState[seg] = segPendingFree
		fs.pendingSegs++
	}
}

// releasePendingSegs returns pending-free segments to the allocatable
// pool. Call only after the NAT and superblock have been flushed — at
// that point no durable metadata can reference their old contents.
// Each released segment is also handed to the device as a TRIM, so the
// FTL stops migrating its dead blocks; the device keeps discards
// crash-revertible until the next barrier, which covers the window where
// the just-written NAT is itself still volatile.
func (fs *FS) releasePendingSegs() {
	if fs.pendingSegs == 0 {
		return
	}
	for s := int64(0); s < fs.segments; s++ {
		if fs.segState[s] == segPendingFree {
			fs.segState[s] = 0
			fs.freeSegs++
			if fs.dev.Discard(fs.blockAddr(s*SegmentBlocks), SegmentBlocks*BlockSize) == nil {
				fs.stats.DiscardedSegs++
			}
		}
	}
	fs.pendingSegs = 0
}

// maybeClean runs greedy segment cleaning when free space is low.
func (fs *FS) maybeClean() {
	threshold := fs.segments / 10
	if threshold < 4 {
		threshold = 4
	}
	if fs.cleaning || fs.freeSegs > threshold {
		return
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	// Greedy victim selection: fullest-dead segments first.
	type victim struct {
		seg   int64
		valid int
	}
	var vs []victim
	for s := int64(0); s < fs.segments; s++ {
		if fs.segState[s] == 2 {
			vs = append(vs, victim{s, fs.segValid[s]})
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].valid < vs[j].valid })
	cleaned := 0
	for _, v := range vs {
		if cleaned >= 16 || fs.freeSegs > fs.segments/5 {
			break
		}
		fs.cleanSegment(v.seg)
		cleaned++
	}
}

// cleanSegment migrates a victim's valid blocks to the active logs.
func (fs *FS) cleanSegment(seg int64) {
	fs.stats.CleanedSegs++
	base := seg * SegmentBlocks
	buf := make([]byte, BlockSize)
	for i := int64(0); i < SegmentBlocks; i++ {
		b := base + i
		own, ok := fs.blockOwner[b]
		if !ok {
			continue
		}
		if own.logical < 0 {
			// Node blob: rewrite the whole blob contiguously at the
			// node head (this invalidates all of its blocks,
			// including any others in this victim).
			fs.stats.MovedBlocks++
			fs.writeNodeBlock(fs.node(own.ino))
			continue
		}
		// Data block: migrate to the cold data log and repoint the
		// owning node's block map (loading the node if cold).
		fs.devCheck(fs.dev.ReadAt(buf, fs.blockAddr(b)))
		fs.stats.MovedBlocks++
		nb := fs.allocBlock(headColdData)
		n := fs.node(own.ino)
		n.blocks[own.logical] = nb
		n.dirty = true
		fs.devCheck(fs.dev.WriteAt(buf, fs.blockAddr(nb)))
		fs.blockOwner[nb] = own
		fs.invalidate(b)
	}
	if fs.segValid[seg] == 0 && fs.segState[seg] == 2 {
		fs.segState[seg] = segPendingFree
		fs.pendingSegs++
	}
}

// errUnknown converts lookup misses.
func (fs *FS) node(ino Ino) *node {
	if n, ok := fs.inodes[ino]; ok {
		return n
	}
	// Cold-cache path: read the node blob via the NAT.
	ent, ok := fs.nat[ino]
	if !ok || ent.first < 0 {
		panic(fmt.Sprintf("logfs: inode %d has no node block", ino))
	}
	n, err := fs.readNodeBlock(ino, ent)
	if err != nil {
		// A device error or corrupted blob on the cold-read path aborts
		// the operation with the wrapped cause (errors.Is(err, ErrIO)
		// holds for media errors).
		ioerr.Check(err)
	}
	fs.inodes[ino] = n
	return n
}

// allocNodeRun allocates n contiguous blocks at the node head, skipping to
// a fresh segment when the current one cannot fit the blob.
func (fs *FS) allocNodeRun(n int) int64 {
	hd := &fs.heads[headNode]
	if hd.seg >= 0 && SegmentBlocks-hd.next < int64(n) {
		// Waste the tail so the blob stays contiguous.
		fs.segState[hd.seg] = 2
		if fs.segValid[hd.seg] == 0 {
			fs.segState[hd.seg] = 0
			fs.freeSegs++
		}
		hd.seg = -1
	}
	first := fs.allocBlock(headNode)
	for i := 1; i < n; i++ {
		fs.allocBlock(headNode)
	}
	return first
}

// --- node-block serialization ------------------------------------------------

// Node blobs carry a self-identifying checksummed header so that a NAT
// entry torn by a crash (or a blob whose write never fully persisted)
// is detected during recovery instead of being decoded as garbage.
const (
	blobMagic      = 0x1f2b10b5
	blobHeaderSize = 4 + 8 + 4 + 4 // magic, ino, payload len, crc
)

func sealBlob(ino Ino, payload []byte) []byte {
	b := make([]byte, blobHeaderSize+len(payload))
	binary.BigEndian.PutUint32(b[0:], blobMagic)
	binary.BigEndian.PutUint64(b[4:], uint64(ino))
	binary.BigEndian.PutUint32(b[12:], uint32(len(payload)))
	copy(b[blobHeaderSize:], payload)
	binary.BigEndian.PutUint32(b[16:], crc32.ChecksumIEEE(b[blobHeaderSize:]))
	return b
}

// openBlob validates a sealed blob's header and returns its payload.
func openBlob(ino Ino, b []byte) ([]byte, error) {
	if len(b) < blobHeaderSize {
		return nil, fmt.Errorf("logfs: node blob for inode %d too short", ino)
	}
	if binary.BigEndian.Uint32(b[0:]) != blobMagic {
		return nil, fmt.Errorf("logfs: node blob for inode %d has bad magic", ino)
	}
	if got := Ino(binary.BigEndian.Uint64(b[4:])); got != ino {
		return nil, fmt.Errorf("logfs: node blob claims inode %d, NAT says %d", got, ino)
	}
	plen := int(binary.BigEndian.Uint32(b[12:]))
	if plen < 0 || blobHeaderSize+plen > len(b) {
		return nil, fmt.Errorf("logfs: node blob for inode %d has bad length %d", ino, plen)
	}
	payload := b[blobHeaderSize : blobHeaderSize+plen]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[16:]) {
		return nil, fmt.Errorf("logfs: node blob for inode %d failed checksum", ino)
	}
	return payload, nil
}

// writeNodeBlock persists n's metadata (and directory content) as one or
// more node blocks at the node head, updating the NAT.
func (fs *FS) writeNodeBlock(n *node) {
	blob := sealBlob(n.ino, fs.encodeNode(n))
	// Invalidate the old blob.
	if old, ok := fs.nat[n.ino]; ok && old.first >= 0 {
		for i := 0; i < old.count; i++ {
			fs.invalidate(old.first + int64(i))
		}
	}
	// Node blobs are written contiguously at the node head so cold reads
	// can follow continuation blocks.
	nBlocks := (len(blob) + BlockSize - 1) / BlockSize
	padded := make([]byte, nBlocks*BlockSize)
	copy(padded, blob)
	first := fs.allocNodeRun(nBlocks)
	fs.devCheck(fs.dev.WriteAt(padded, fs.blockAddr(first)))
	for i := 0; i < nBlocks; i++ {
		fs.blockOwner[first+int64(i)] = owner{ino: n.ino, logical: -1}
	}
	fs.stats.NodeWrites++
	fs.nat[n.ino] = natEntry{first: first, count: nBlocks}
	n.dirty = false
	fs.env.Serialize(len(blob))
}

func (fs *FS) encodeNode(n *node) []byte {
	e := make([]byte, 0, 256)
	var t8 [8]byte
	put := func(v int64) {
		binary.BigEndian.PutUint64(t8[:], uint64(v))
		e = append(e, t8[:]...)
	}
	flags := int64(0)
	if n.dir {
		flags = 1
	}
	put(flags)
	put(n.size)
	put(int64(n.nlink))
	put(int64(n.mtime))
	// Block map as run-length extents: logical, physical, count.
	blks := make([]int64, 0, len(n.blocks))
	for l := range n.blocks {
		blks = append(blks, l)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	type run struct{ l, p, c int64 }
	var runs []run
	for _, l := range blks {
		p := n.blocks[l]
		if len(runs) > 0 {
			last := &runs[len(runs)-1]
			if l == last.l+last.c && p == last.p+last.c {
				last.c++
				continue
			}
		}
		runs = append(runs, run{l, p, 1})
	}
	put(int64(len(runs)))
	for _, r := range runs {
		put(r.l)
		put(r.p)
		put(r.c)
	}
	if n.dir {
		put(int64(len(n.children)))
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			put(int64(len(name)))
			e = append(e, name...)
			c := n.children[name]
			put(int64(c.ino))
			if c.dir {
				put(1)
			} else {
				put(0)
			}
		}
	}
	return e
}

// readNodeBlock loads, validates, and decodes a node from its contiguous
// node blob. An entry torn by a crash — out-of-range location, bad magic,
// wrong inode, or failed checksum — returns an error instead of garbage.
func (fs *FS) readNodeBlock(ino Ino, ent natEntry) (rn *node, err error) {
	total := fs.segments * SegmentBlocks
	if ent.count <= 0 || ent.first < 0 || ent.first+int64(ent.count) > total {
		return nil, fmt.Errorf("logfs: NAT entry for inode %d out of range (%d+%d)", ino, ent.first, ent.count)
	}
	defer func() {
		if r := recover(); r != nil {
			rn, err = nil, fmt.Errorf("logfs: node blob for inode %d malformed: %v", ino, r)
		}
	}()
	fs.stats.NodeReads++
	raw := make([]byte, ent.count*BlockSize)
	// Explicit error return (not devCheck): the deferred recover above
	// would otherwise swallow the abort and mislabel it "malformed".
	if rerr := fs.dev.ReadAt(raw, fs.blockAddr(ent.first)); rerr != nil {
		return nil, fmt.Errorf("logfs: node blob for inode %d: %w", ino, rerr)
	}
	buf, err := openBlob(ino, raw)
	if err != nil {
		return nil, err
	}
	n := &node{ino: ino, blocks: map[int64]int64{}}
	pos := 0
	get := func() int64 {
		v := int64(binary.BigEndian.Uint64(buf[pos:]))
		pos += 8
		return v
	}
	getBytes := func(k int64) []byte {
		b := buf[pos : pos+int(k)]
		pos += int(k)
		return b
	}
	flags := get()
	n.dir = flags&1 != 0
	n.size = get()
	n.nlink = int(get())
	n.mtime = time.Duration(get())
	nb := get()
	for i := int64(0); i < nb; i++ {
		l := get()
		p := get()
		c := get()
		if l < 0 || c <= 0 || p < 0 || p+c > total {
			return nil, fmt.Errorf("logfs: inode %d block run (%d,%d,%d) out of range", ino, l, p, c)
		}
		for j := int64(0); j < c; j++ {
			n.blocks[l+j] = p + j
		}
	}
	if n.dir {
		n.children = map[string]childRef{}
		nc := get()
		for i := int64(0); i < nc; i++ {
			nameLen := get()
			name := string(getBytes(nameLen))
			cino := Ino(get())
			cdir := get() == 1
			n.children[name] = childRef{ino: cino, dir: cdir}
		}
	}
	fs.env.Serialize(pos)
	return n, nil
}
