package ftl

import (
	"bytes"
	"testing"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/sim"
)

// smallCfg is a 4 KiB-page, 4-page-block geometry so a ~1 MiB device has
// enough erase blocks for GC to matter without slowing the tests.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.PagesPerBlock = 4
	return cfg
}

func newFTL(t *testing.T, cfg Config) (*sim.Env, *Dev) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(262144)) // ~1 MiB
	return env, New(env, dev, cfg)
}

func TestPassThroughRoundTrip(t *testing.T) {
	_, d := newFTL(t, smallCfg())
	data := bytes.Repeat([]byte("ftl"), 5000)
	buf := make([]byte, len(data))
	if err := d.WriteAt(data, 8192); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip mismatch through FTL")
	}
}

func TestSequentialOverwriteWAFIsOne(t *testing.T) {
	env, d := newFTL(t, smallCfg())
	page := make([]byte, 4096)
	// Overwriting the same logical pages self-invalidates their old
	// physical homes, so GC victims are fully dead and no migration runs.
	for pass := 0; pass < 20; pass++ {
		for lp := int64(0); lp < d.logicalPages; lp++ {
			if err := d.WriteAt(page, lp*4096); err != nil {
				t.Fatal(err)
			}
		}
	}
	if waf := d.WAFMilli(); waf != 1000 {
		t.Fatalf("sequential overwrite WAF = %d milli, want exactly 1000", waf)
	}
	snap := env.Metrics.Snapshot()
	if snap.Counters["ftl.gc.moved.pages"] != 0 {
		t.Fatalf("moved %d valid pages, want 0", snap.Counters["ftl.gc.moved.pages"])
	}
	if snap.Counters["ftl.erase.count"] == 0 {
		t.Fatal("no erases despite writing 20x the device capacity")
	}
}

// churn fills the device, trims the first half (or not), then overwrites
// the second half for passes rounds. Returns the final WAF in milli.
func churn(t *testing.T, d *Dev, passes int, trimHalf bool) int64 {
	t.Helper()
	page := make([]byte, 4096)
	half := d.logicalPages / 2
	for lp := int64(0); lp < d.logicalPages; lp++ {
		if err := d.WriteAt(page, lp*4096); err != nil {
			t.Fatal(err)
		}
	}
	if trimHalf {
		if err := d.Discard(0, half*4096); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite the hot half in a strided order: sequential rewrites
	// invalidate each block just before GC would pick it (perfect
	// self-cleaning, WAF 1.0), while a stride leaves victims holding
	// valid pages that GC has to migrate — the aged-device regime.
	hot := d.logicalPages - half
	for pass := 0; pass < passes; pass++ {
		for i := int64(0); i < hot; i++ {
			lp := half + (i*37)%hot
			if err := d.WriteAt(page, lp*4096); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d.WAFMilli()
}

func TestTrimLowersWriteAmplification(t *testing.T) {
	_, trimmed := newFTL(t, smallCfg())
	ctrlCfg := smallCfg()
	ctrlCfg.DisableTrim = true
	_, control := newFTL(t, ctrlCfg)

	wafTrim := churn(t, trimmed, 20, true)
	wafCtrl := churn(t, control, 20, true)
	if wafTrim >= wafCtrl {
		t.Fatalf("TRIM run WAF %d milli not below DisableTrim control %d", wafTrim, wafCtrl)
	}
	// The control never learns the first half is dead, so GC migrates it
	// again and again; the stale pages must show up as moved bytes.
	if control.Erases() <= trimmed.Erases() {
		t.Fatalf("control erases %d <= TRIM erases %d", control.Erases(), trimmed.Erases())
	}
}

func TestGCMigratesValidPages(t *testing.T) {
	env, d := newFTL(t, smallCfg())
	// No trim, half the space cold and live: GC has to move it.
	if waf := churn(t, d, 20, false); waf <= 1000 {
		t.Fatalf("mixed-validity churn WAF = %d milli, want > 1000", waf)
	}
	snap := env.Metrics.Snapshot()
	moved := snap.Counters["ftl.gc.moved.pages"]
	if moved == 0 {
		t.Fatal("GC never migrated a valid page")
	}
	if got := snap.Counters["ftl.gc.moved.bytes"]; got != moved*4096 {
		t.Fatalf("gc.moved.bytes = %d, want %d", got, moved*4096)
	}
	host := snap.Counters["ftl.write.host.bytes"]
	flash := snap.Counters["ftl.write.flash.bytes"]
	if flash != host+moved*4096 {
		t.Fatalf("flash bytes %d != host %d + migrated %d", flash, host, moved*4096)
	}
	if want := flash * 1000 / host; snap.Gauges["io.waf"] != want {
		t.Fatalf("io.waf gauge = %d, want %d", snap.Gauges["io.waf"], want)
	}
}

func TestDiscardReadsBackZero(t *testing.T) {
	_, d := newFTL(t, smallCfg())
	data := bytes.Repeat([]byte{0xab}, 3*4096)
	if err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	if err := d.Discard(4096, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := d.ReadAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("trimmed byte %d = %#x, want 0", i, b)
		}
	}
}

func TestDisableTrimKeepsDataSemantics(t *testing.T) {
	cfg := smallCfg()
	cfg.DisableTrim = true
	_, d := newFTL(t, cfg)
	data := bytes.Repeat([]byte{0xcd}, 4096)
	if err := d.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Discard(0, 4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// DisableTrim only drops the mapping hint; the wrapped device still
	// zeroes the range, so both runs of a TRIM/no-TRIM pair read the same.
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x after discard with DisableTrim, want 0", i, b)
		}
	}
	if d.forward[0] == unmapped {
		t.Fatal("DisableTrim discard unmapped the page anyway")
	}
}

func TestSubPageTrimKeepsMapping(t *testing.T) {
	_, d := newFTL(t, smallCfg())
	if err := d.WriteAt(make([]byte, 2*4096), 0); err != nil {
		t.Fatal(err)
	}
	// Covers all of page 0 plus half of page 1: only page 0 may unmap.
	if err := d.Discard(0, 4096+2048); err != nil {
		t.Fatal(err)
	}
	if d.forward[0] != unmapped {
		t.Fatal("fully covered page 0 still mapped after trim")
	}
	if d.forward[1] == unmapped {
		t.Fatal("partially covered page 1 was unmapped by a sub-page trim")
	}
}

func TestCountersDeterministic(t *testing.T) {
	run := func() (int64, int64, map[string]int64) {
		env, d := newFTL(t, smallCfg())
		churn(t, d, 10, true)
		return d.WAFMilli(), d.Erases(), env.Metrics.Snapshot().Counters
	}
	waf1, er1, c1 := run()
	waf2, er2, c2 := run()
	if waf1 != waf2 || er1 != er2 {
		t.Fatalf("runs diverged: waf %d/%d erases %d/%d", waf1, waf2, er1, er2)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("counter %s diverged: %d vs %d", k, v, c2[k])
		}
	}
}

func TestGCLatencyChargedToTriggeringWrite(t *testing.T) {
	cfg := smallCfg()
	cfg.ReadLatency = 50 * time.Microsecond
	cfg.ProgramLatency = 200 * time.Microsecond
	cfg.EraseLatency = 2 * time.Millisecond
	env, d := newFTL(t, cfg)
	before := env.Now()
	churn(t, d, 10, false)
	withGC := env.Now() - before

	env2, d2 := newFTL(t, smallCfg())
	before2 := env2.Now()
	churn(t, d2, 10, false)
	zeroCost := env2.Now() - before2
	if withGC <= zeroCost {
		t.Fatalf("GC latencies not charged: %v with costs vs %v without", withGC, zeroCost)
	}
}

func TestComposesUnderFaultAndRetry(t *testing.T) {
	env := sim.NewEnv(1)
	raw := blockdev.New(env, blockdev.SamsungEVO860().Scale(262144))
	f := New(env, raw, smallCfg())
	var plan blockdev.FaultPlan
	faulty := blockdev.NewFault(env, f, plan)
	data := bytes.Repeat([]byte{0x5a}, 4096)
	if err := faulty.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := faulty.Discard(0, 4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := faulty.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x through FaultDev(FTL), want 0", i, b)
		}
	}
	if f.forward[0] != unmapped {
		t.Fatal("trim through FaultDev did not reach the FTL mapping")
	}
}
