// Package ftl simulates the flash translation layer inside an SSD:
// erase-block geometry, a page-mapped logical-to-physical table,
// per-erase-block wear counters, and greedy garbage collection with
// valid-page migration. It wraps a blockdev.Device, so every file system
// in the repository — and every fault/crash wrapper — runs over it
// unchanged (DESIGN.md §12).
//
// The layer is accounting-only with respect to data: bytes still live at
// their logical offsets in the wrapped device, and reads and writes pass
// straight through with their timing unchanged. What the FTL adds is the
// device-lifetime ledger the paper's evaluation never shows — how many
// flash pages each host write really costs once garbage collection starts
// migrating valid data (write amplification, surfaced as the io.waf
// gauge), how erases distribute across blocks (the ftl.wear histogram),
// and how much of that cost TRIM avoids by telling the device which pages
// are dead before GC pays to move them.
//
// Garbage collection runs foreground-on-demand on the simulated clock:
// when free erase blocks fall to the low-water mark, the triggering write
// performs the collection and (when the Config carries non-zero
// latencies) absorbs its cost into the write's completion time — the
// "GC-induced latency spike" of a real device under churn. With the
// default zero latencies the FTL charges no time at all, keeping the
// timing-pinned golden benchmark cells bit-identical.
package ftl

import (
	"sync"
	"time"

	"betrfs/internal/blockdev"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

// Config fixes the simulated geometry and GC policy.
type Config struct {
	// PageSize is the flash program granularity in bytes. Host writes
	// smaller than a page still program a whole page (read-modify-write),
	// which is one source of write amplification.
	PageSize int64
	// PagesPerBlock is the erase-block size in pages.
	PagesPerBlock int64
	// OverProvision is the fraction of extra physical space beyond the
	// logical capacity (consumer SSDs ship ~7%).
	OverProvision float64
	// GCFreeBlocks is the low-water mark: garbage collection runs while
	// the free erase-block pool is at or below it.
	GCFreeBlocks int64
	// ReadLatency / ProgramLatency are the per-page costs of GC valid-page
	// migration; EraseLatency is the per-block erase cost. All charged to
	// the completion time of the write that triggered the collection.
	// Zero (the default) makes the FTL timing-free.
	ReadLatency    time.Duration
	ProgramLatency time.Duration
	EraseLatency   time.Duration
	// DisableTrim makes the FTL ignore discards for mapping purposes
	// (the pages stay valid until overwritten), modeling a device or bus
	// that drops TRIM. Data semantics are unchanged — the discard is
	// still forwarded to the wrapped device — so a no-TRIM control run
	// differs from its TRIM-aware twin only in the lifetime ledger.
	DisableTrim bool
}

// DefaultConfig is a 4 KiB-page, 256 KiB-erase-block geometry with 7%
// over-provisioning and zero latencies.
func DefaultConfig() Config {
	return Config{
		PageSize:      4096,
		PagesPerBlock: 64,
		OverProvision: 0.07,
		GCFreeBlocks:  4,
	}
}

const unmapped = int32(-1)

// eraseBlock tracks one erase block's lifecycle.
type eraseBlock struct {
	frontier int64 // next unprogrammed page index within the block
	valid    int64 // pages holding live (mapped) data
	wear     int64 // erase count
}

// Dev wraps a blockdev.Device with FTL accounting. It implements
// blockdev.Device, so it can sit anywhere in the fault/retry/crash stack.
type Dev struct {
	env *sim.Env
	dev blockdev.Device
	cfg Config

	mu sync.Mutex

	logicalPages int64
	physBlocks   int64

	forward []int32 // logical page -> physical page (unmapped)
	reverse []int32 // physical page -> logical page (unmapped = invalid/unwritten)
	blocks  []eraseBlock
	free    []int64 // erased blocks, FIFO
	openHst int64   // open block receiving host programs (-1 = none)
	openGC  int64   // open block receiving GC migrations (-1 = none)

	hostBytes  int64
	flashBytes int64

	mHostBytes  *metrics.Counter
	mFlashBytes *metrics.Counter
	mGCRun      *metrics.Counter
	mGCPages    *metrics.Counter
	mGCBytes    *metrics.Counter
	mErase      *metrics.Counter
	mTrimCount  *metrics.Counter
	mTrimBytes  *metrics.Counter
	mWear       *metrics.Histogram
	gWAF        *metrics.Gauge
}

// New wraps dev with an FTL of the given geometry. Physical capacity is
// the logical capacity plus over-provisioning, rounded up to whole erase
// blocks, with enough headroom that GC always has a free block to migrate
// into.
func New(env *sim.Env, dev blockdev.Device, cfg Config) *Dev {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.PagesPerBlock <= 0 {
		cfg.PagesPerBlock = 64
	}
	if cfg.GCFreeBlocks < 1 {
		cfg.GCFreeBlocks = 1
	}
	logicalPages := (dev.Size() + cfg.PageSize - 1) / cfg.PageSize
	logicalBlocks := (logicalPages + cfg.PagesPerBlock - 1) / cfg.PagesPerBlock
	physPages := int64(float64(logicalPages) * (1 + cfg.OverProvision))
	physBlocks := (physPages + cfg.PagesPerBlock - 1) / cfg.PagesPerBlock
	// GC migrates into blocks popped from the free pool, so the pool must
	// be deeper than the low-water mark even with every logical page live.
	if min := logicalBlocks + cfg.GCFreeBlocks + 2; physBlocks < min {
		physBlocks = min
	}
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	d := &Dev{
		env:          env,
		dev:          dev,
		cfg:          cfg,
		logicalPages: logicalPages,
		physBlocks:   physBlocks,
		forward:      make([]int32, logicalPages),
		reverse:      make([]int32, physBlocks*cfg.PagesPerBlock),
		blocks:       make([]eraseBlock, physBlocks),
		openHst:      -1,
		openGC:       -1,
		mHostBytes:   reg.Counter("ftl.write.host.bytes"),
		mFlashBytes:  reg.Counter("ftl.write.flash.bytes"),
		mGCRun:       reg.Counter("ftl.gc.run"),
		mGCPages:     reg.Counter("ftl.gc.moved.pages"),
		mGCBytes:     reg.Counter("ftl.gc.moved.bytes"),
		mErase:       reg.Counter("ftl.erase.count"),
		mTrimCount:   reg.Counter("ftl.trim.count"),
		mTrimBytes:   reg.Counter("ftl.trim.bytes"),
		mWear:        reg.Histogram("ftl.wear", "erases"),
		gWAF:         reg.Gauge("io.waf"),
	}
	for i := range d.forward {
		d.forward[i] = unmapped
	}
	for i := range d.reverse {
		d.reverse[i] = unmapped
	}
	for b := int64(0); b < physBlocks; b++ {
		d.free = append(d.free, b)
	}
	return d
}

// Size returns the logical capacity (the wrapped device's size); the
// over-provisioned physical space is internal to the FTL.
func (d *Dev) Size() int64 { return d.dev.Size() }

// Stats returns the wrapped device's I/O statistics.
func (d *Dev) Stats() *blockdev.Stats { return d.dev.Stats() }

// Inner returns the wrapped device (tests reach through for crash and
// corruption injection, which operate on media content, not mappings).
func (d *Dev) Inner() blockdev.Device { return d.dev }

// WAFMilli returns the current write amplification factor in thousandths
// (flash bytes programmed per host byte written); 0 before any write.
func (d *Dev) WAFMilli() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wafMilliLocked()
}

func (d *Dev) wafMilliLocked() int64 {
	if d.hostBytes == 0 {
		return 0
	}
	return d.flashBytes * 1000 / d.hostBytes
}

// Erases returns the total erase count across all blocks.
func (d *Dev) Erases() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for i := range d.blocks {
		n += d.blocks[i].wear
	}
	return n
}

// account runs the FTL bookkeeping for a host write of n bytes at off and
// returns the simulated time any triggered garbage collection consumed.
func (d *Dev) account(off, n int64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	var gcTime time.Duration
	first := off / d.cfg.PageSize
	last := (off + n - 1) / d.cfg.PageSize
	for lp := first; lp <= last; lp++ {
		gcTime += d.program(lp)
	}
	d.hostBytes += n
	d.mHostBytes.Add(n)
	d.gWAF.Set(d.wafMilliLocked())
	return gcTime
}

// program maps logical page lp to a fresh physical page, invalidating its
// previous home. Returns the GC time consumed, if allocation had to
// collect.
func (d *Dev) program(lp int64) time.Duration {
	if pp := d.forward[lp]; pp != unmapped {
		d.invalidate(int64(pp))
	}
	pp, gcTime := d.allocPage(&d.openHst)
	d.forward[lp] = int32(pp)
	d.reverse[pp] = int32(lp)
	d.blocks[pp/d.cfg.PagesPerBlock].valid++
	d.flashBytes += d.cfg.PageSize
	d.mFlashBytes.Add(d.cfg.PageSize)
	return gcTime
}

// invalidate marks physical page pp dead.
func (d *Dev) invalidate(pp int64) {
	d.reverse[pp] = unmapped
	d.blocks[pp/d.cfg.PagesPerBlock].valid--
}

// allocPage returns the next page of the open block *open, sealing it and
// opening a fresh one (collecting if the free pool is low) when full.
func (d *Dev) allocPage(open *int64) (int64, time.Duration) {
	var gcTime time.Duration
	if *open < 0 || d.blocks[*open].frontier == d.cfg.PagesPerBlock {
		gcTime = d.collectIfLow()
		if len(d.free) == 0 {
			panic("ftl: free erase-block pool exhausted (geometry too small for GC)")
		}
		*open = d.free[0]
		d.free = d.free[1:]
	}
	b := &d.blocks[*open]
	pp := *open*d.cfg.PagesPerBlock + b.frontier
	b.frontier++
	return pp, gcTime
}

// collectIfLow runs greedy garbage collection while the free pool is at
// or below the low-water mark: pick the sealed block with the fewest
// valid pages (lowest index on ties — deterministic), migrate its valid
// pages into the GC open block, erase it, and return it to the pool.
func (d *Dev) collectIfLow() time.Duration {
	var gcTime time.Duration
	for int64(len(d.free)) <= d.cfg.GCFreeBlocks {
		victim := int64(-1)
		best := d.cfg.PagesPerBlock // only victims with something to gain
		for b := int64(0); b < d.physBlocks; b++ {
			if b == d.openHst || b == d.openGC {
				continue
			}
			blk := &d.blocks[b]
			if blk.frontier < d.cfg.PagesPerBlock {
				continue // not sealed: free or still open history
			}
			if blk.valid < best {
				best = blk.valid
				victim = b
			}
		}
		if victim < 0 {
			// Every sealed block is fully valid; erasing one would free
			// nothing. Over-provisioning guarantees this is transient.
			return gcTime
		}
		gcTime += d.collect(victim)
	}
	return gcTime
}

// collect migrates victim's valid pages and erases it.
func (d *Dev) collect(victim int64) time.Duration {
	var gcTime time.Duration
	moved := int64(0)
	base := victim * d.cfg.PagesPerBlock
	for i := int64(0); i < d.cfg.PagesPerBlock; i++ {
		lp := d.reverse[base+i]
		if lp == unmapped {
			continue
		}
		// Migrate: program the logical page into the GC open block.
		if d.openGC < 0 || d.blocks[d.openGC].frontier == d.cfg.PagesPerBlock {
			if len(d.free) == 0 {
				panic("ftl: free erase-block pool exhausted during GC")
			}
			d.openGC = d.free[0]
			d.free = d.free[1:]
		}
		gb := &d.blocks[d.openGC]
		np := d.openGC*d.cfg.PagesPerBlock + gb.frontier
		gb.frontier++
		gb.valid++
		d.forward[lp] = int32(np)
		d.reverse[np] = int32(lp)
		d.reverse[base+i] = unmapped
		moved++
		gcTime += d.cfg.ReadLatency + d.cfg.ProgramLatency
	}
	blk := &d.blocks[victim]
	blk.valid = 0
	blk.frontier = 0
	blk.wear++
	d.mErase.Inc()
	d.mWear.Observe(blk.wear)
	d.free = append(d.free, victim)
	d.mGCRun.Inc()
	d.mGCPages.Add(moved)
	d.mGCBytes.Add(moved * d.cfg.PageSize)
	d.flashBytes += moved * d.cfg.PageSize
	d.mFlashBytes.Add(moved * d.cfg.PageSize)
	gcTime += d.cfg.EraseLatency
	return gcTime
}

// SubmitWrite forwards the write and runs the FTL ledger; GC triggered by
// the write extends its completion time (the latency spike a real device
// shows when collection blocks the host queue).
func (d *Dev) SubmitWrite(p []byte, off int64) blockdev.Completion {
	c := d.dev.SubmitWrite(p, off)
	if c.Err != nil {
		return c
	}
	if gcTime := d.account(off, int64(len(p))); gcTime > 0 {
		c.At += gcTime
	}
	return c
}

// SubmitRead forwards the read unchanged: the mapping indirection is free
// in this model (the wrapped device's profile already includes nominal
// lookup costs).
func (d *Dev) SubmitRead(p []byte, off int64) blockdev.Completion {
	return d.dev.SubmitRead(p, off)
}

// WriteAt synchronously writes through the FTL.
func (d *Dev) WriteAt(p []byte, off int64) error {
	return d.Wait(d.SubmitWrite(p, off))
}

// ReadAt synchronously reads through the FTL.
func (d *Dev) ReadAt(p []byte, off int64) error {
	return d.dev.ReadAt(p, off)
}

// Wait advances the clock to c's completion time and returns its outcome.
func (d *Dev) Wait(c blockdev.Completion) error { return d.dev.Wait(c) }

// Flush forwards the barrier.
func (d *Dev) Flush() error { return d.dev.Flush() }

// Discard forwards the TRIM (data semantics — the range reads back as
// zeroes — belong to the wrapped device and are identical with or without
// DisableTrim) and unmaps every fully covered page, so GC stops paying to
// migrate dead data. Partially covered edge pages stay mapped, as on real
// devices that ignore sub-page trims.
func (d *Dev) Discard(off, length int64) error {
	if err := d.dev.Discard(off, length); err != nil {
		return err
	}
	if length <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mTrimCount.Inc()
	d.mTrimBytes.Add(length)
	if d.cfg.DisableTrim {
		return nil
	}
	first := (off + d.cfg.PageSize - 1) / d.cfg.PageSize // round up
	last := (off + length) / d.cfg.PageSize              // exclusive, round down
	for lp := first; lp < last; lp++ {
		if pp := d.forward[lp]; pp != unmapped {
			d.invalidate(int64(pp))
			d.forward[lp] = unmapped
		}
	}
	return nil
}
