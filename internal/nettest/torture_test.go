package nettest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/metrics"
	"betrfs/internal/vfs"
)

// tortureFS abstracts the workload driver over its two backends: the
// fsrpc client (torture run, connections cut by a Plan) and the mount
// itself (fault-free oracle run). The same deterministic script runs on
// both; the resulting trees must match byte for byte.
type tortureFS interface {
	Mkdir(p string) error
	Create(p string) (any, error)
	WriteAt(f any, off int64, data []byte) error
	// WriteBurst issues the writes pipelined where the backend supports
	// it (the remote client), sequentially otherwise. Offsets never
	// overlap, so completion order does not matter.
	WriteBurst(f any, offs []int64, chunks [][]byte) error
	ReadAt(f any, off int64, n int) ([]byte, error)
	Fsync(f any) error
	Rename(o, n string) error
	Unlink(p string) error
}

// remoteFS drives the workload through an fsrpc client.
type remoteFS struct{ cli *fsrpc.Client }

func (r remoteFS) Mkdir(p string) error { return r.cli.Mkdir(p) }
func (r remoteFS) Create(p string) (any, error) {
	h, _, err := r.cli.Create(p)
	return h, err
}
func (r remoteFS) WriteAt(f any, off int64, data []byte) error {
	n, err := r.cli.Write(f.(uint64), off, data)
	if err == nil && n != len(data) {
		return fmt.Errorf("short write: %d of %d", n, len(data))
	}
	return err
}
func (r remoteFS) WriteBurst(f any, offs []int64, chunks [][]byte) error {
	h := f.(uint64)
	calls := make([]*fsrpc.Call, len(offs))
	for i := range offs {
		calls[i] = r.cli.Go(context.Background(), &fsrpc.Request{
			Op: fsrpc.OpWrite, Handle: h, Off: offs[i], Data: chunks[i],
		})
	}
	for i, call := range calls {
		<-call.Done()
		if call.Err != nil {
			return fmt.Errorf("burst write %d: %w", i, call.Err)
		}
	}
	return nil
}
func (r remoteFS) ReadAt(f any, off int64, n int) ([]byte, error) {
	return r.cli.Read(f.(uint64), off, n)
}
func (r remoteFS) Fsync(f any) error      { return r.cli.Fsync(f.(uint64)) }
func (r remoteFS) Rename(o, n string) error { return r.cli.Rename(o, n) }
func (r remoteFS) Unlink(p string) error  { return r.cli.Unlink(p) }

// localFS drives the workload straight into a mount (the oracle).
type localFS struct{ m *vfs.Mount }

func (l localFS) Mkdir(p string) error { return l.m.Mkdir(p) }
func (l localFS) Create(p string) (any, error) {
	return l.m.Create(p)
}
func (l localFS) WriteAt(f any, off int64, data []byte) error {
	n, err := f.(*vfs.File).WriteAt(data, off)
	if err == nil && n != len(data) {
		return fmt.Errorf("short write: %d of %d", n, len(data))
	}
	return err
}
func (l localFS) WriteBurst(f any, offs []int64, chunks [][]byte) error {
	for i := range offs {
		if err := l.WriteAt(f, offs[i], chunks[i]); err != nil {
			return err
		}
	}
	return nil
}
func (l localFS) ReadAt(f any, off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := f.(*vfs.File).ReadAt(buf, off)
	return buf[:got], err
}
func (l localFS) Fsync(f any) error      { return f.(*vfs.File).Fsync() }
func (l localFS) Rename(o, n string) error { return l.m.Rename(o, n) }
func (l localFS) Unlink(p string) error  { return l.m.Remove(p) }

// chunkData is the deterministic payload for client ci, file j, chunk k.
func chunkData(ci, j, k, n int) []byte {
	return bytes.Repeat([]byte{byte(ci*31 + j*7 + k + 1)}, n)
}

// runScript executes client ci's deterministic workload: a directory
// tree, file creates with multi-chunk writes, fsyncs, renames, unlinks,
// read-back checks, and a pipelined write burst. The script depends only
// on ci, never on the fault schedule, so the oracle run is identical.
func runScript(fs tortureFS, ci int) error {
	base := fmt.Sprintf("c%d", ci)
	if err := fs.Mkdir(base); err != nil {
		return fmt.Errorf("mkdir %s: %w", base, err)
	}
	rng := rand.New(rand.NewSource(int64(1000 + ci)))
	var live []string
	for j := 0; j < 40; j++ {
		dir := fmt.Sprintf("%s/d%d", base, j%4)
		if j < 4 {
			if err := fs.Mkdir(dir); err != nil {
				return fmt.Errorf("mkdir %s: %w", dir, err)
			}
		}
		p := fmt.Sprintf("%s/f%03d", dir, j)
		f, err := fs.Create(p)
		if err != nil {
			return fmt.Errorf("create %s: %w", p, err)
		}
		chunks := 1 + rng.Intn(3)
		var first []byte
		for k := 0; k < chunks; k++ {
			data := chunkData(ci, j, k, 1024+rng.Intn(3072))
			if k == 0 {
				first = data
			}
			if err := fs.WriteAt(f, int64(k)*4096, data); err != nil {
				return fmt.Errorf("write %s chunk %d: %w", p, k, err)
			}
		}
		if j%5 == 0 {
			if err := fs.Fsync(f); err != nil {
				return fmt.Errorf("fsync %s: %w", p, err)
			}
		}
		if j%4 == 0 {
			got, err := fs.ReadAt(f, 0, 512)
			if err != nil {
				return fmt.Errorf("read %s: %w", p, err)
			}
			if !bytes.Equal(got, first[:512]) {
				return fmt.Errorf("read %s: content mismatch after write", p)
			}
		}
		if j%3 == 0 {
			np := p + ".r"
			if err := fs.Rename(p, np); err != nil {
				return fmt.Errorf("rename %s: %w", p, err)
			}
			p = np
		}
		live = append(live, p)
		if j%7 == 0 && len(live) > 3 {
			victim := live[0]
			live = live[1:]
			if err := fs.Unlink(victim); err != nil {
				return fmt.Errorf("unlink %s: %w", victim, err)
			}
		}
	}
	// Pipelined burst: several writes in flight at once, so a cut can
	// strand a whole window of fate-unknown mutations for replay.
	bp := fmt.Sprintf("%s/burst", base)
	bf, err := fs.Create(bp)
	if err != nil {
		return fmt.Errorf("create %s: %w", bp, err)
	}
	const burst = 8
	offs := make([]int64, burst)
	chunks := make([][]byte, burst)
	for k := 0; k < burst; k++ {
		offs[k] = int64(k) * 2048
		chunks[k] = chunkData(ci, 999, k, 2048)
	}
	if err := fs.WriteBurst(bf, offs, chunks); err != nil {
		return fmt.Errorf("burst %s: %w", bp, err)
	}
	if err := fs.Fsync(bf); err != nil {
		return fmt.Errorf("fsync %s: %w", bp, err)
	}
	return nil
}

// snapTree records every path under root as "dir" or the full file
// contents.
func snapTree(m *vfs.Mount, root string, out map[string]string) error {
	ents, err := m.ReadDir(root)
	if err != nil {
		return fmt.Errorf("readdir %s: %w", root, err)
	}
	for _, ent := range ents {
		p := root + "/" + ent.Name
		if ent.Dir {
			out[p] = "dir"
			if err := snapTree(m, p, out); err != nil {
				return err
			}
			continue
		}
		f, err := m.Open(p)
		if err != nil {
			return fmt.Errorf("open %s: %w", p, err)
		}
		data := make([]byte, f.Size())
		if len(data) > 0 {
			n, rerr := f.ReadAt(data, 0)
			if rerr != nil || n != len(data) {
				f.Close()
				return fmt.Errorf("read %s: %d of %d bytes, %v", p, n, len(data), rerr)
			}
		}
		f.Close()
		out[p] = "file:" + string(data)
	}
	return nil
}

// replyLossConn is the server-side fault for the deterministic epilogue:
// while armed, the next reply write is swallowed and the connection
// closed — the mutation executed and its reply is cached, but the client
// never hears. The canonical duplicate-reply-cache window.
type replyLossConn struct {
	net.Conn
	armed *atomic.Bool
}

func (c *replyLossConn) Write(p []byte) (int, error) {
	if c.armed.CompareAndSwap(true, false) {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	return c.Conn.Write(p)
}

// epiData is the payload of the per-client reply-loss epilogue write.
func epiData(ci int) []byte { return chunkData(ci, 998, 0, 1024) }

// tortureServer builds the concurrent system under test.
func tortureServer() (*bench.Instance, *fsserve.Server) {
	in := bench.BuildConcurrent("betrfs-v0.6", 256, 2)
	cfg := fsserve.DefaultConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 1024 // no shedding: every acknowledged op must land
	cfg.DirectReads = true
	cfg.SessionLease = time.Hour // long: the sweep tests cuts, not expiry
	srv := fsserve.New(in.Env, in.Mount, cfg)
	return in, srv
}

// runSweep runs one seeded torture round: nClients clients in disjoint
// directories, every connection cut by the plan, and the surviving tree
// compared byte for byte with a fault-free oracle. It returns the
// server's duplicate-reply-cache hit count for cross-seed aggregation.
func runSweep(t *testing.T, seed int64, nClients int) int64 {
	t.Helper()
	in, srv := tortureServer()
	defer srv.Shutdown()

	type clientRig struct {
		cli  *fsrpc.Client
		reg  *metrics.Registry
		plan *Plan
		drop atomic.Bool
	}
	rigs := make([]*clientRig, nClients)
	for ci := 0; ci < nClients; ci++ {
		rig := &clientRig{
			reg: metrics.NewRegistry(),
			// Budgets far below the script's traffic, far above the
			// resume handshake: several cuts per client, guaranteed
			// progress between cuts.
			plan: NewPlan(seed*100+int64(ci), 4<<10, 48<<10, -1),
		}
		dial := func() (io.ReadWriteCloser, error) {
			cliEnd, srvEnd := net.Pipe()
			go srv.ServeConn(&replyLossConn{Conn: srvEnd, armed: &rig.drop})
			return rig.plan.Wrap(cliEnd), nil
		}
		conn, _ := dial()
		rig.cli = fsrpc.NewClientOpts(conn, fsrpc.Options{Window: 8, Metrics: rig.reg})
		if err := rig.cli.EnableRedial(dial, fsrpc.RedialPolicy{
			BaseDelay: time.Millisecond,
			MaxDelay:  4 * time.Millisecond,
			Sleep:     func(time.Duration) {}, // zero wall time; schedule is deterministic anyway
		}); err != nil {
			t.Fatalf("client %d: enable redial: %v", ci, err)
		}
		rigs[ci] = rig
	}

	var wg sync.WaitGroup
	errs := make([]error, nClients)
	for ci := range rigs {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs[ci] = runScript(remoteFS{cli: rigs[ci].cli}, ci)
		}(ci)
	}
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			t.Fatalf("seed %d client %d: %v", seed, ci, err)
		}
	}
	// Deterministic reply-loss epilogue: the seeded cuts above land
	// wherever the byte budgets say, which may never split an executed
	// mutation from its reply. Force that exact window once per client —
	// cut onto a fault-free connection, then swallow the reply to one
	// WRITE server-side — so the sweep always exercises a DRC hit: the
	// replayed WRITE must be answered from cache, not re-executed.
	preHits := in.Env.Metrics.Counter("fsserve.drc.hit").Load()
	for ci, rig := range rigs {
		rig.plan.Calm()
		rig.plan.CutLive()
		fs := remoteFS{cli: rig.cli}
		p := fmt.Sprintf("c%d/epi", ci)
		h, err := fs.Create(p)
		if err != nil {
			t.Fatalf("seed %d client %d: epilogue create: %v", seed, ci, err)
		}
		rig.drop.Store(true)
		if err := fs.WriteAt(h, 0, epiData(ci)); err != nil {
			t.Fatalf("seed %d client %d: epilogue write across reply loss: %v", seed, ci, err)
		}
	}
	if got := in.Env.Metrics.Counter("fsserve.drc.hit").Load(); got < preHits+int64(nClients) {
		t.Errorf("seed %d: epilogue drove %d reply losses but fsserve.drc.hit rose only %d",
			seed, nClients, got-preHits)
	}

	for ci, rig := range rigs {
		rig.cli.Close()
		if got := rig.reg.Counter("fsrpc.redial.success").Load(); got < 2 {
			t.Errorf("seed %d client %d: survived %d connections but fsrpc.redial.success = %d",
				seed, ci, rig.plan.Conns(), got)
		}
	}

	// Fault-free oracle: same scripts (epilogue included), straight into
	// a fresh mount.
	oracle := bench.Build("betrfs-v0.6", 256)
	for ci := 0; ci < nClients; ci++ {
		if err := runScript(localFS{m: oracle.Mount}, ci); err != nil {
			t.Fatalf("oracle client %d: %v", ci, err)
		}
		ofs := localFS{m: oracle.Mount}
		h, err := ofs.Create(fmt.Sprintf("c%d/epi", ci))
		if err != nil {
			t.Fatalf("oracle client %d: epilogue create: %v", ci, err)
		}
		if err := ofs.WriteAt(h, 0, epiData(ci)); err != nil {
			t.Fatalf("oracle client %d: epilogue write: %v", ci, err)
		}
	}

	for ci := 0; ci < nClients; ci++ {
		root := fmt.Sprintf("c%d", ci)
		got := map[string]string{"": "dir"}
		want := map[string]string{"": "dir"}
		if err := snapTree(in.Mount, root, got); err != nil {
			t.Fatalf("seed %d: snapshot torture tree: %v", seed, err)
		}
		if err := snapTree(oracle.Mount, root, want); err != nil {
			t.Fatalf("seed %d: snapshot oracle tree: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Errorf("seed %d %s: torture tree has %d entries, oracle %d", seed, root, len(got), len(want))
		}
		for p, w := range want {
			g, ok := got[p]
			if !ok {
				t.Errorf("seed %d: %s missing after faults", seed, p)
				continue
			}
			if g != w {
				t.Errorf("seed %d: %s differs from oracle (%d vs %d bytes)", seed, p, len(g), len(w))
			}
		}
		for p := range got {
			if _, ok := want[p]; !ok {
				t.Errorf("seed %d: %s exists after faults but not in oracle (double-applied mutation?)", seed, p)
			}
		}
	}
	return in.Env.Metrics.Counter("fsserve.drc.hit").Load()
}

// TestSeededFaultSweep is the tentpole torture test: three seeded
// disconnect schedules, two concurrent clients each, every connection
// cut mid-stream, final state byte-identical to a fault-free run. At
// least one replayed mutation across the sweep must be answered from the
// duplicate-reply cache rather than re-executed.
func TestSeededFaultSweep(t *testing.T) {
	var drcHits int64
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			drcHits += runSweep(t, seed, 2)
		})
	}
	if !t.Failed() && drcHits == 0 {
		t.Errorf("sweep produced no duplicate-reply-cache hits; fault schedule never cut a reply in flight")
	}
}
