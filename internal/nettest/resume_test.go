package nettest

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/metrics"
)

// replyDropConn wraps the server end of a pipe: while armed, the next
// write (the reply frame) is swallowed and the connection closed, so the
// server executes the request but the client never learns its fate —
// the exact window the duplicate-reply cache exists for.
type replyDropConn struct {
	net.Conn
	armed atomic.Bool
}

func (c *replyDropConn) Write(p []byte) (int, error) {
	if c.armed.CompareAndSwap(true, false) {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	return c.Conn.Write(p)
}

// resumeRig is a server plus a redialing client whose current server-side
// connection can be armed to drop the next reply.
type resumeRig struct {
	in  *bench.Instance
	srv *fsserve.Server
	cli *fsrpc.Client
	reg *metrics.Registry

	mu  sync.Mutex
	cur *replyDropConn
}

func (r *resumeRig) dial() (io.ReadWriteCloser, error) {
	cliEnd, srvEnd := net.Pipe()
	dc := &replyDropConn{Conn: srvEnd}
	r.mu.Lock()
	r.cur = dc
	r.mu.Unlock()
	go r.srv.ServeConn(dc)
	return cliEnd, nil
}

// arm drops the next reply the server writes on the current connection.
func (r *resumeRig) arm() {
	r.mu.Lock()
	r.cur.armed.Store(true)
	r.mu.Unlock()
}

func newResumeRig(t *testing.T, mutate func(*fsserve.Config)) *resumeRig {
	t.Helper()
	r := &resumeRig{in: bench.Build("betrfs-v0.6", 256), reg: metrics.NewRegistry()}
	cfg := fsserve.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	r.srv = fsserve.New(r.in.Env, r.in.Mount, cfg)
	t.Cleanup(r.srv.Shutdown)
	conn, _ := r.dial()
	r.cli = fsrpc.NewClientOpts(conn, fsrpc.Options{Metrics: r.reg})
	t.Cleanup(func() { r.cli.Close() })
	if err := r.cli.EnableRedial(r.dial, fsrpc.RedialPolicy{
		BaseDelay: time.Millisecond,
		Sleep:     func(time.Duration) {},
	}); err != nil {
		t.Fatalf("enable redial: %v", err)
	}
	return r
}

func (r *resumeRig) counter(name string) int64 {
	return r.reg.Counter(name).Load()
}

func (r *resumeRig) srvCounter(name string) int64 {
	return r.in.Env.Metrics.Counter(name).Load()
}

// TestReplayHitsDRCNotReexecute pins the exactly-once guarantee: a
// mutation whose reply is lost mid-wire is replayed after the reconnect
// and answered from the duplicate-reply cache — the server must not run
// it twice. RENAME proves it: a second execution would fail ENOENT.
func TestReplayHitsDRCNotReexecute(t *testing.T) {
	r := newResumeRig(t, nil)

	h, _, err := r.cli.Create("a")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 4096)

	// Lost WRITE reply: executed once, replayed, answered from cache.
	r.arm()
	n, err := r.cli.Write(h, 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write across reply loss = %d, %v", n, err)
	}
	if got := r.srvCounter("fsserve.drc.hit"); got != 1 {
		t.Fatalf("fsserve.drc.hit = %d after replayed WRITE, want 1", got)
	}

	// Lost RENAME reply: if the replay re-executed, the source would be
	// gone and the call would fail ENOENT.
	r.arm()
	if err := r.cli.Rename("a", "b"); err != nil {
		t.Fatalf("rename across reply loss: %v", err)
	}
	if got := r.srvCounter("fsserve.drc.hit"); got != 2 {
		t.Fatalf("fsserve.drc.hit = %d after replayed RENAME, want 2", got)
	}
	if _, err := r.cli.Getattr("b"); err != nil {
		t.Fatalf("rename target missing: %v", err)
	}
	if _, err := r.cli.Getattr("a"); err == nil {
		t.Fatal("rename source still exists")
	}

	// The handle survived both reconnects; the data landed exactly once.
	got, err := r.cli.Read(h, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read-back after resumes: %d bytes, %v", len(got), err)
	}
	if got := r.counter("fsrpc.redial.success"); got != 2 {
		t.Errorf("fsrpc.redial.success = %d, want 2", got)
	}
	if got := r.counter("fsrpc.replay.call"); got != 2 {
		t.Errorf("fsrpc.replay.call = %d, want 2", got)
	}
	if got := r.srvCounter("fsserve.session.resume"); got != 2 {
		t.Errorf("fsserve.session.resume = %d, want 2", got)
	}
}

// TestHandlesSurviveAbruptCut kills the transport outright (no reply in
// flight) and checks the session — including the open handle — carries
// across the reconnect.
func TestHandlesSurviveAbruptCut(t *testing.T) {
	r := newResumeRig(t, nil)

	h, _, err := r.cli.Create("f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := r.cli.Write(h, 0, []byte("first")); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Yank the server side; the client notices on its next read or write.
	r.mu.Lock()
	r.cur.Conn.Close()
	r.mu.Unlock()

	if _, err := r.cli.Write(h, 5, []byte("second")); err != nil {
		t.Fatalf("write after cut: %v", err)
	}
	got, err := r.cli.Read(h, 0, 11)
	if err != nil || string(got) != "firstsecond" {
		t.Fatalf("read after resume = %q, %v", got, err)
	}
	if got := r.counter("fsrpc.redial.success"); got < 1 {
		t.Errorf("fsrpc.redial.success = %d, want >= 1", got)
	}
	if got := r.srvCounter("fsserve.session.resume"); got < 1 {
		t.Errorf("fsserve.session.resume = %d, want >= 1", got)
	}
}

// TestLeaseExpiryFailsReplaysTyped expires the session while the client
// is disconnected: the fate-unknown call must fail with ErrStaleSession
// (never silently retry), and the client must come back usable on a
// fresh session with the old handles gone.
func TestLeaseExpiryFailsReplaysTyped(t *testing.T) {
	var clock struct {
		mu  sync.Mutex
		now time.Time
	}
	clock.now = time.Unix(1000, 0)
	gate := make(chan struct{})
	var gateOnce sync.Once

	r := &resumeRig{in: bench.Build("betrfs-v0.6", 256), reg: metrics.NewRegistry()}
	cfg := fsserve.DefaultConfig()
	cfg.SessionLease = time.Minute
	cfg.LeaseNow = func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.now
	}
	r.srv = fsserve.New(r.in.Env, r.in.Mount, cfg)
	t.Cleanup(r.srv.Shutdown)

	gatedDial := func() (io.ReadWriteCloser, error) {
		<-gate // first redial waits until the lease has been expired
		return r.dial()
	}
	conn, _ := r.dial()
	r.cli = fsrpc.NewClientOpts(conn, fsrpc.Options{Metrics: r.reg})
	t.Cleanup(func() { r.cli.Close() })
	if err := r.cli.EnableRedial(gatedDial, fsrpc.RedialPolicy{
		BaseDelay: time.Millisecond,
		Sleep:     func(time.Duration) {},
	}); err != nil {
		t.Fatalf("enable redial: %v", err)
	}

	h, _, err := r.cli.Create("f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	// A mutation whose reply is dropped: the client holds it for replay
	// while the redial loop blocks on the gate.
	r.arm()
	writeErr := make(chan error, 1)
	go func() {
		_, err := r.cli.Write(h, 0, []byte("data"))
		writeErr <- err
	}()

	// Wait for the cut to land (the client enters its redial loop, which
	// then blocks on the gate) before advancing the clock — otherwise the
	// in-flight WRITE stamps the session with the already-advanced time
	// and the lease never looks expired.
	deadline := time.Now().Add(5 * time.Second)
	for r.counter("fsrpc.redial.attempt") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never started redialing")
		}
		time.Sleep(time.Millisecond)
	}
	// Advance the fake clock past the lease and expire the (now
	// detached) session. Detach races the server noticing the dead
	// connection, so poll briefly.
	clock.mu.Lock()
	clock.now = clock.now.Add(2 * time.Minute)
	clock.mu.Unlock()
	for r.srv.ExpireSessions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never became expirable")
		}
		time.Sleep(time.Millisecond)
	}
	gateOnce.Do(func() { close(gate) })

	err = <-writeErr
	if err == nil {
		t.Fatal("fate-unknown write across an expired lease reported success")
	}
	if !errors.Is(err, fsrpc.ErrStaleSession) {
		t.Fatalf("write error = %v, want ErrStaleSession", err)
	}
	if got := r.counter("fsrpc.replay.expired"); got != 1 {
		t.Errorf("fsrpc.replay.expired = %d, want 1", got)
	}
	if got := r.srvCounter("fsserve.session.expire"); got != 1 {
		t.Errorf("fsserve.session.expire = %d, want 1", got)
	}

	// Fresh session: new ops work, the dead session's handle does not.
	if err := r.cli.Mkdir("z"); err != nil {
		t.Fatalf("mkdir on fresh session: %v", err)
	}
	if _, err := r.cli.Read(h, 0, 4); err == nil {
		t.Fatal("handle from the expired session still resolves")
	}
}

// TestRedialGiveUp bounds the reconnect loop: with MaxAttempts dials all
// failing, in-flight and future calls fail with ErrPoisoned and the
// backoff schedule is the documented deterministic doubling.
func TestRedialGiveUp(t *testing.T) {
	r := newResumeRig(t, nil)

	var delays []time.Duration
	var delayMu sync.Mutex
	dialErr := errors.New("network unreachable")
	if err := r.cli.EnableRedial(
		func() (io.ReadWriteCloser, error) { return nil, dialErr },
		fsrpc.RedialPolicy{
			MaxAttempts: 3,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    time.Second,
			Sleep: func(d time.Duration) {
				delayMu.Lock()
				delays = append(delays, d)
				delayMu.Unlock()
			},
		}); err != nil {
		t.Fatalf("enable redial: %v", err)
	}

	r.mu.Lock()
	r.cur.Conn.Close()
	r.mu.Unlock()

	_, err := r.cli.Getattr("anything")
	if !errors.Is(err, fsrpc.ErrPoisoned) {
		t.Fatalf("call after give-up = %v, want ErrPoisoned", err)
	}
	if got := r.counter("fsrpc.redial.giveup"); got != 1 {
		t.Errorf("fsrpc.redial.giveup = %d, want 1", got)
	}
	if got := r.counter("fsrpc.redial.attempt"); got != 3 {
		t.Errorf("fsrpc.redial.attempt = %d, want 3", got)
	}
	delayMu.Lock()
	defer delayMu.Unlock()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("backoff schedule = %v, want %v", delays, want)
	}
}

// TestPingKeepsSessionAlive drives the keepalive through the fast path
// and checks it renews the lease clock.
func TestPingKeepsSessionAlive(t *testing.T) {
	r := newResumeRig(t, func(cfg *fsserve.Config) {
		cfg.SessionLease = time.Minute
	})
	if err := r.cli.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	token, lease := r.cli.Session()
	if token == "" || lease != time.Minute {
		t.Fatalf("session = %q lease %v, want token and 1m lease", token, lease)
	}
}
