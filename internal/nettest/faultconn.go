// Package nettest provides deterministic wire-level fault injection for
// the fsrpc/fsserve transport, mirroring what blockdev.FaultDev does for
// the block layer: a seeded schedule decides exactly how many bytes each
// connection may carry before the link dies mid-stream. The torture tests
// in this package drive multi-client workloads through the injector and
// compare the surviving file-system state byte-for-byte against a
// fault-free oracle run, proving the session-resume and duplicate-reply
// machinery (DESIGN.md §13.9) end to end.
package nettest

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// ErrInjected is the error surfaced by a FaultConn once its byte budget
// is exhausted and the connection has been cut.
var ErrInjected = errors.New("nettest: injected connection cut")

// FaultConn wraps a transport and kills it after a scheduled number of
// bytes (reads and writes combined) have passed through. The cut lands
// wherever the budget runs out — typically mid-frame: a Write delivers a
// partial frame to the peer and then the underlying connection closes,
// which is exactly the failure a yanked cable or killed process produces.
// A negative budget means the connection never faults.
type FaultConn struct {
	inner io.ReadWriteCloser

	mu     sync.Mutex
	budget int64 // bytes remaining before the cut; <0 = unlimited
	dead   bool
}

// NewFaultConn wraps inner with a byte budget.
func NewFaultConn(inner io.ReadWriteCloser, budget int64) *FaultConn {
	return &FaultConn{inner: inner, budget: budget}
}

// kill closes the underlying transport (both directions: the peer's
// blocked reads and writes fail too) and latches the fault.
func (c *FaultConn) kill() {
	c.mu.Lock()
	already := c.dead
	c.dead = true
	c.mu.Unlock()
	if !already {
		_ = c.inner.Close()
	}
}

// Write passes p through, truncating at the budget: the prefix that fits
// is delivered (the mid-frame partial write), then the connection dies.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	w := len(p)
	cut := false
	if c.budget >= 0 {
		if int64(w) >= c.budget {
			w = int(c.budget)
			cut = true
		}
		c.budget -= int64(w)
	}
	c.mu.Unlock()

	var n int
	var err error
	if w > 0 {
		n, err = c.inner.Write(p[:w])
	}
	if cut {
		c.kill()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

// Read delivers at most the remaining budget; when the budget is spent
// the connection dies and the (possibly partial) bytes already read are
// still returned, so the peer sees a stream that just stops.
func (c *FaultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	max := len(p)
	limited := false
	if c.budget >= 0 && int64(max) >= c.budget {
		max = int(c.budget)
		limited = true
	}
	c.mu.Unlock()

	if max == 0 {
		c.kill()
		return 0, ErrInjected
	}
	n, err := c.inner.Read(p[:max])
	c.mu.Lock()
	if c.budget >= 0 {
		c.budget -= int64(n)
	}
	spent := limited && c.budget == 0
	c.mu.Unlock()
	if spent {
		c.kill()
		if err == nil && n == 0 {
			err = ErrInjected
		}
	}
	return n, err
}

// Close shuts the connection down without counting as an injected fault.
func (c *FaultConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.inner.Close()
}

// Plan is a seeded, deterministic schedule of connection lifetimes: each
// Wrap call draws the next byte budget from the sequence. The same seed
// always produces the same cuts, so a torture run reproduces exactly.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	min   int64
	max   int64
	cuts  int // faulty connections remaining; <0 = every connection faults
	conns int
	last  *FaultConn
}

// NewPlan builds a schedule: the first cuts connections get a budget
// drawn uniformly from [minBytes, maxBytes]; later connections are
// clean. cuts < 0 makes every connection faulty. minBytes must
// comfortably exceed the resume-handshake size or the client can never
// make progress between cuts.
func NewPlan(seed, minBytes, maxBytes int64, cuts int) *Plan {
	if maxBytes < minBytes {
		maxBytes = minBytes
	}
	return &Plan{
		rng:  rand.New(rand.NewSource(seed)),
		min:  minBytes,
		max:  maxBytes,
		cuts: cuts,
	}
}

// Wrap applies the next scheduled budget to inner.
func (p *Plan) Wrap(inner io.ReadWriteCloser) *FaultConn {
	p.mu.Lock()
	p.conns++
	budget := int64(-1)
	if p.cuts != 0 {
		if p.cuts > 0 {
			p.cuts--
		}
		budget = p.min + p.rng.Int63n(p.max-p.min+1)
	}
	fc := NewFaultConn(inner, budget)
	p.last = fc
	p.mu.Unlock()
	return fc
}

// Conns reports how many connections the plan has wrapped.
func (p *Plan) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conns
}

// Calm exhausts the schedule: connections wrapped from now on never
// fault. Tests use it to run a deterministic epilogue after the seeded
// cuts.
func (p *Plan) Calm() {
	p.mu.Lock()
	p.cuts = 0
	p.mu.Unlock()
}

// CutLive kills the most recently wrapped connection immediately,
// regardless of its remaining budget — a scheduled cable yank rather
// than a byte-triggered one.
func (p *Plan) CutLive() {
	p.mu.Lock()
	last := p.last
	p.mu.Unlock()
	if last != nil {
		last.kill()
	}
}
