package blockdev

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"betrfs/internal/sim"
)

func newSSD(t *testing.T) (*sim.Env, *Dev) {
	t.Helper()
	env := sim.NewEnv(1)
	return env, New(env, SamsungEVO860())
}

func TestReadWriteRoundTrip(t *testing.T) {
	_, d := newSSD(t)
	data := []byte("hello, block device")
	buf := make([]byte, len(data))
	d.WriteAt(data, 4096)
	d.ReadAt(buf, 4096)
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	_, d := newSSD(t)
	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = 0xff
	}
	d.ReadAt(buf, 1<<30)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x, want 0", i, b)
		}
	}
}

func TestCrossChunkIO(t *testing.T) {
	_, d := newSSD(t)
	data := make([]byte, 3*chunkSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(chunkSize/2 + 13)
	d.WriteAt(data, off)
	got := make([]byte, len(data))
	d.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk write/read mismatch")
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	envSeq := sim.NewEnv(1)
	seq := New(envSeq, SamsungEVO860())
	buf := make([]byte, 4096)
	for i := 0; i < 256; i++ {
		seq.WriteAt(buf, int64(i)*4096)
	}
	envRand := sim.NewEnv(1)
	rnd := New(envRand, SamsungEVO860())
	for i := 0; i < 256; i++ {
		// Stride far apart so no write continues the stream.
		rnd.WriteAt(buf, int64((i*7919)%100000)*4096)
	}
	if envSeq.Now()*3 > envRand.Now() {
		t.Fatalf("sequential (%v) not much faster than random (%v)",
			envSeq.Now(), envRand.Now())
	}
}

func TestSequentialWriteBandwidth(t *testing.T) {
	env, d := newSSD(t)
	buf := make([]byte, 1<<20)
	const total = 256 << 20 // stays inside the write cache
	for off := int64(0); off < total; off += int64(len(buf)) {
		d.WriteAt(buf, off)
	}
	mbps := float64(total) / env.Now().Seconds() / 1e6
	if mbps < 400 || mbps > 510 {
		t.Fatalf("sequential write bandwidth %.0f MB/s, want ~480-500", mbps)
	}
}

func TestWriteCacheExhaustion(t *testing.T) {
	env := sim.NewEnv(1)
	p := SamsungEVO860()
	p.WriteCacheBytes = 32 << 20
	d := New(env, p)
	buf := make([]byte, 1<<20)
	const total = 512 << 20
	for off := int64(0); off < total; off += int64(len(buf)) {
		d.WriteAt(buf, off)
	}
	mbps := float64(total) / env.Now().Seconds() / 1e6
	// Should be near the sustained 392 MB/s, not the burst 502.
	if mbps > 430 {
		t.Fatalf("sustained write bandwidth %.0f MB/s, cache model not engaged", mbps)
	}
	if mbps < 320 {
		t.Fatalf("sustained write bandwidth %.0f MB/s, too slow", mbps)
	}
}

func TestAsyncOverlapsCPU(t *testing.T) {
	env, d := newSSD(t)
	buf := make([]byte, 1<<20)
	c := d.SubmitWrite(buf, 0)
	submitted := env.Now()
	if submitted >= c.At {
		t.Fatal("submit should not advance the clock to completion")
	}
	env.Charge(10 * time.Millisecond) // overlapping CPU work
	d.Wait(c)
	if env.Now() != 10*time.Millisecond {
		t.Fatalf("wait after overlapping CPU advanced clock to %v", env.Now())
	}
}

func TestFlushDrainsQueue(t *testing.T) {
	env, d := newSSD(t)
	buf := make([]byte, 4<<20)
	c := d.SubmitWrite(buf, 0)
	d.Flush()
	if env.Now() < c.At {
		t.Fatalf("flush returned at %v before completion %v", env.Now(), c.At)
	}
	if d.Stats().Flushes != 1 {
		t.Fatalf("flush count %d, want 1", d.Stats().Flushes)
	}
}

func TestStatsAccounting(t *testing.T) {
	_, d := newSSD(t)
	buf := make([]byte, 4096)
	d.WriteAt(buf, 0)
	d.WriteAt(buf, 4096)
	d.ReadAt(buf, 0)
	s := d.Stats()
	if s.Writes != 2 || s.Reads != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesWritten != 8192 || s.BytesRead != 4096 {
		t.Fatalf("byte stats %+v", s)
	}
	if s.SeqWrites != 1 || s.RandWrites != 1 {
		// First write at 0 is "random" (stream starts at 0 == writeEnd,
		// so actually sequential); second continues it.
		t.Logf("seq=%d rand=%d", s.SeqWrites, s.RandWrites)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, d := newSSD(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range write did not panic")
		}
	}()
	d.WriteAt(make([]byte, 4096), d.Size())
}

func TestCrashRevertsUnflushed(t *testing.T) {
	_, d := newSSD(t)
	d.EnableCrashTracking()
	a := bytes.Repeat([]byte{0xaa}, 4096)
	b := bytes.Repeat([]byte{0xbb}, 4096)
	d.WriteAt(a, 0)
	d.Flush() // a is durable
	d.WriteAt(b, 0)
	if d.UnflushedWrites() != 1 {
		t.Fatalf("unflushed=%d, want 1", d.UnflushedWrites())
	}
	d.Crash(0)
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	if !bytes.Equal(got, a) {
		t.Fatal("crash did not revert unflushed write")
	}
}

func TestCrashKeepsPrefix(t *testing.T) {
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.Flush()
	for i := 0; i < 10; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		d.WriteAt(buf, int64(i)*4096)
	}
	d.Crash(4) // first 4 survive
	got := make([]byte, 4096)
	for i := 0; i < 10; i++ {
		d.ReadAt(got, int64(i)*4096)
		want := byte(0)
		if i < 4 {
			want = byte(i + 1)
		}
		if got[0] != want {
			t.Fatalf("block %d = %#x, want %#x", i, got[0], want)
		}
	}
}

func TestCrashOverlappingWrites(t *testing.T) {
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.Flush()
	d.WriteAt(bytes.Repeat([]byte{1}, 4096), 0)
	d.WriteAt(bytes.Repeat([]byte{2}, 4096), 0)
	d.Crash(1) // keep first write only
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	if got[0] != 1 {
		t.Fatalf("overlapping revert produced %#x, want 1", got[0])
	}
}

func TestHDDSlowerThanSSDRandom(t *testing.T) {
	envS := sim.NewEnv(1)
	ssd := New(envS, SamsungEVO860())
	envH := sim.NewEnv(1)
	hdd := New(envH, ToshibaDT01())
	buf := make([]byte, 4096)
	for i := 0; i < 64; i++ {
		off := int64((i*104729)%1000000) * 4096
		ssd.ReadAt(buf, off)
		hdd.ReadAt(buf, off)
	}
	if envH.Now() < envS.Now()*10 {
		t.Fatalf("hdd random reads (%v) should dwarf ssd (%v)", envH.Now(), envS.Now())
	}
}

func TestProfileScale(t *testing.T) {
	p := SamsungEVO860().Scale(64)
	if p.Capacity != (250<<30)/64 {
		t.Fatalf("scaled capacity %d", p.Capacity)
	}
	if p.WriteCacheBytes != (12<<30)/64 {
		t.Fatalf("scaled cache %d", p.WriteCacheBytes)
	}
	if q := SamsungEVO860().Scale(1); q.Capacity != 250<<30 {
		t.Fatal("scale(1) should be identity")
	}
}

func TestRoundTripProperty(t *testing.T) {
	env := sim.NewEnv(1)
	d := New(env, SamsungEVO860())
	f := func(data []byte, off uint32) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % (d.Size() - int64(len(data)))
		d.WriteAt(data, o)
		got := make([]byte, len(data))
		d.ReadAt(got, o)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrashTornWrite(t *testing.T) {
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.Flush()
	old := bytes.Repeat([]byte{0xaa}, 4096)
	d.WriteAt(old, 0)
	d.Flush() // old is durable
	d.WriteAt(bytes.Repeat([]byte{0x11}, 4096), 0)
	nw := bytes.Repeat([]byte{0xbb}, 4096)
	d.WriteAt(nw, 4096)
	d.CrashTorn(1, 100) // write 0 survives, write 1 torn at byte 100
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	if got[0] != 0x11 {
		t.Fatalf("kept write reverted: %#x", got[0])
	}
	d.ReadAt(got, 4096)
	for i, b := range got {
		want := byte(0)
		if i < 100 {
			want = 0xbb
		}
		if b != want {
			t.Fatalf("torn byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestCrashTornOverOld(t *testing.T) {
	// A torn write must expose new-prefix + old-suffix, not new + zeros.
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.WriteAt(bytes.Repeat([]byte{0xaa}, 4096), 0)
	d.Flush()
	d.WriteAt(bytes.Repeat([]byte{0xbb}, 4096), 0)
	d.CrashTorn(0, 10)
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	for i, b := range got {
		want := byte(0xaa)
		if i < 10 {
			want = 0xbb
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestCrashSubset(t *testing.T) {
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.Flush()
	for i := 0; i < 6; i++ {
		d.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, 4096), int64(i)*4096)
	}
	d.CrashSubset([]bool{false, true, false, false, true, false})
	got := make([]byte, 4096)
	for i := 0; i < 6; i++ {
		d.ReadAt(got, int64(i)*4096)
		want := byte(0)
		if i == 1 || i == 4 {
			want = byte(i + 1)
		}
		if got[0] != want {
			t.Fatalf("block %d = %#x, want %#x", i, got[0], want)
		}
	}
}

func TestCrashSubsetOverlapLatestWins(t *testing.T) {
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.WriteAt(bytes.Repeat([]byte{1}, 4096), 0)
	d.WriteAt(bytes.Repeat([]byte{2}, 4096), 0)
	d.WriteAt(bytes.Repeat([]byte{3}, 4096), 0)
	// Writes 0 and 2 survive: the later submission (3) must win.
	d.CrashSubset([]bool{true, false, true})
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	if got[0] != 3 {
		t.Fatalf("overlap resolution %#x, want 3", got[0])
	}
	// Now only the earlier write survives.
	d.EnableCrashTracking()
	d.WriteAt(bytes.Repeat([]byte{4}, 4096), 0)
	d.WriteAt(bytes.Repeat([]byte{5}, 4096), 0)
	d.CrashSubset([]bool{true, false})
	d.ReadAt(got, 0)
	if got[0] != 4 {
		t.Fatalf("overlap resolution %#x, want 4", got[0])
	}
}

func TestCrashAutoRearm(t *testing.T) {
	// After a crash, tracking must still be armed with the post-crash
	// state as the new baseline: a second round of writes and a second
	// crash must revert to what survived the first crash, and flushed
	// writes from between the crashes must stay durable.
	_, d := newSSD(t)
	d.EnableCrashTracking()
	d.WriteAt(bytes.Repeat([]byte{1}, 4096), 0)
	d.Crash(1) // write survives the first crash
	if d.UnflushedWrites() != 0 {
		t.Fatalf("unflushed after crash = %d, want 0", d.UnflushedWrites())
	}
	d.WriteAt(bytes.Repeat([]byte{2}, 4096), 4096)
	d.Flush() // durable between crashes
	d.WriteAt(bytes.Repeat([]byte{3}, 4096), 0)
	if d.UnflushedWrites() != 1 {
		t.Fatalf("tracking not re-armed: unflushed = %d, want 1", d.UnflushedWrites())
	}
	d.Crash(0) // second crash: reverts only the post-flush write
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	if got[0] != 1 {
		t.Fatalf("baseline after second crash %#x, want 1 (first-crash survivor)", got[0])
	}
	d.ReadAt(got, 4096)
	if got[0] != 2 {
		t.Fatalf("flushed write lost across second crash: %#x", got[0])
	}
}

func TestCorruptZeroAndFlip(t *testing.T) {
	_, d := newSSD(t)
	data := bytes.Repeat([]byte{0xff}, 4096)
	d.WriteAt(data, 0)
	d.Flush()
	d.CorruptZero(100, 8)
	got := make([]byte, 4096)
	d.ReadAt(got, 0)
	for i := 100; i < 108; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed: %#x", i, got[i])
		}
	}
	if got[99] != 0xff || got[108] != 0xff {
		t.Fatal("zeroing bled outside its range")
	}
	before := make([]byte, 64)
	d.ReadAt(got, 0)
	copy(before, got[200:264])
	d.CorruptFlip(200, 64, 42)
	d.ReadAt(got, 0)
	diff := 0
	for i := 0; i < 64; i++ {
		if got[200+i] != before[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("CorruptFlip changed nothing")
	}
	// Determinism: same seed on identical content flips identically.
	env2 := sim.NewEnv(1)
	d2 := New(env2, SamsungEVO860())
	d2.WriteAt(data, 0)
	d2.CorruptFlip(200, 64, 42)
	got2 := make([]byte, 4096)
	d2.ReadAt(got2, 0)
	if !bytes.Equal(got[200:264], got2[200:264]) {
		t.Fatal("CorruptFlip not deterministic")
	}
}

func TestInjectReadFault(t *testing.T) {
	_, d := newSSD(t)
	d.WriteAt(bytes.Repeat([]byte{0xcc}, 8192), 0)
	d.InjectReadFault(4096, 4096)
	got := make([]byte, 8192)
	d.ReadAt(got, 0)
	if got[0] != 0xcc {
		t.Fatal("healthy sector affected by fault")
	}
	for i := 4096; i < 8192; i++ {
		if got[i] != 0 {
			t.Fatalf("faulted byte %d = %#x, want 0", i, got[i])
		}
	}
	if d.Stats().ReadFaults != 1 {
		t.Fatalf("ReadFaults = %d, want 1", d.Stats().ReadFaults)
	}
	d.ClearReadFaults()
	d.ReadAt(got, 0)
	if got[4096] != 0xcc {
		t.Fatal("cleared fault still zeroing reads")
	}
	if d.Stats().ReadFaults != 1 {
		t.Fatalf("ReadFaults bumped after clear: %d", d.Stats().ReadFaults)
	}
}
