package blockdev

import (
	"time"

	"betrfs/internal/ioerr"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

// RetryPolicy bounds the retry loop wrapped around a fallible device.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per command, including the
	// first (minimum 1).
	MaxAttempts int
	// Backoff is the simulated delay before the first retry; it doubles
	// on each further retry (bounded exponential backoff).
	Backoff time.Duration
}

// DefaultRetryPolicy matches typical kernel block-layer behavior: a few
// quick retries with short exponential backoff, then give up and surface
// the error.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 200 * time.Microsecond}
}

// RetryDev wraps a Device with retry-on-transient-fault. Transient errors
// (ioerr.IsTransient) are retried up to the policy bound with exponential
// backoff charged to the simulated clock; persistent errors and exhausted
// retries surface to the caller and are counted in io.error.*. With no
// faults injected below it, RetryDev is a pure pass-through: no extra
// charges, no behavior change.
//
// Asynchronous submissions degrade to synchronous only on the fault path:
// a failed submit is waited out, backed off, and resubmitted before the
// Completion is returned, so callers keep the simple Wait contract.
type RetryDev struct {
	env *sim.Env
	dev Device
	pol RetryPolicy

	mRetryRead      *metrics.Counter
	mRetryWrite     *metrics.Counter
	mRetryExhausted *metrics.Counter
	mErrRead        *metrics.Counter
	mErrWrite       *metrics.Counter
	mErrFlush       *metrics.Counter
}

// WithRetry wraps dev with the given retry policy.
func WithRetry(env *sim.Env, dev Device, pol RetryPolicy) *RetryDev {
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &RetryDev{
		env:             env,
		dev:             dev,
		pol:             pol,
		mRetryRead:      reg.Counter("io.retry.read"),
		mRetryWrite:     reg.Counter("io.retry.write"),
		mRetryExhausted: reg.Counter("io.retry.exhausted"),
		mErrRead:        reg.Counter("io.error.read"),
		mErrWrite:       reg.Counter("io.error.write"),
		mErrFlush:       reg.Counter("io.error.flush"),
	}
}

// Size returns the underlying device capacity.
func (d *RetryDev) Size() int64 { return d.dev.Size() }

// Stats returns the underlying device statistics.
func (d *RetryDev) Stats() *Stats { return d.dev.Stats() }

// submit runs the shared retry loop for one command.
//
// Counter contract (metrics assertions rely on it): io.retry.read/write
// count RE-submissions only — a command that fails N times and then
// succeeds counts N retries and zero errors. io.error.* counts exactly one
// per command whose final attempt failed, whatever the attempt number.
// io.retry.exhausted additionally counts exactly one per command whose
// final error was still transient — the retry budget ran out — so
// "transient fault outlasted the retry loop" and "persistent fault" are
// distinguishable in the metrics.
func (d *RetryDev) submit(retries, errs *metrics.Counter,
	op func() Completion) Completion {
	c := op()
	backoff := d.pol.Backoff
	for attempt := 1; attempt < d.pol.MaxAttempts &&
		c.Err != nil && ioerr.IsTransient(c.Err); attempt++ {
		d.dev.Wait(c) // the failed command still occupied the device
		d.env.Charge(backoff)
		backoff *= 2
		retries.Inc()
		c = op()
	}
	if c.Err != nil {
		errs.Inc()
		if ioerr.IsTransient(c.Err) {
			d.mRetryExhausted.Inc()
		}
	}
	return c
}

// SubmitRead starts a read, retrying transient faults.
func (d *RetryDev) SubmitRead(p []byte, off int64) Completion {
	return d.submit(d.mRetryRead, d.mErrRead,
		func() Completion { return d.dev.SubmitRead(p, off) })
}

// SubmitWrite starts a write, retrying transient faults.
func (d *RetryDev) SubmitWrite(p []byte, off int64) Completion {
	return d.submit(d.mRetryWrite, d.mErrWrite,
		func() Completion { return d.dev.SubmitWrite(p, off) })
}

// Wait advances the clock to c's completion time and returns its outcome.
func (d *RetryDev) Wait(c Completion) error { return d.dev.Wait(c) }

// ReadAt synchronously reads with retry.
func (d *RetryDev) ReadAt(p []byte, off int64) error {
	return d.Wait(d.SubmitRead(p, off))
}

// WriteAt synchronously writes with retry.
func (d *RetryDev) WriteAt(p []byte, off int64) error {
	return d.Wait(d.SubmitWrite(p, off))
}

// Discard passes the TRIM through without retry: discard is advisory, so
// spending retry budget on it buys nothing — a failed trim just leaves
// the FTL holding stale pages until the space is overwritten.
func (d *RetryDev) Discard(off, length int64) error {
	return d.dev.Discard(off, length)
}

// Flush issues the barrier; flush failures are never transient in our
// fault model, so they surface directly.
func (d *RetryDev) Flush() error {
	err := d.dev.Flush()
	if err != nil {
		d.mErrFlush.Inc()
	}
	return err
}
