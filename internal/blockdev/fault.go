package blockdev

import (
	"math/rand"
	"sync"
	"time"

	"betrfs/internal/ioerr"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

// Range is a half-open byte range [Off, Off+Len) on the device.
type Range struct {
	Off int64
	Len int64
}

func (r Range) overlaps(off int64, n int) bool {
	return off < r.Off+r.Len && off+int64(n) > r.Off
}

// FaultPlan configures deterministic, seeded fault injection. The zero
// value injects nothing. All probabilities are per command.
type FaultPlan struct {
	// Seed drives the fault RNG; the same plan and command sequence
	// always produce the same faults.
	Seed uint64
	// TransientReadProb / TransientWriteProb are the per-command
	// probabilities of a transient failure (controller timeout): the
	// command fails with a retryable error.
	TransientReadProb  float64
	TransientWriteProb float64
	// TransientPersistence is how many consecutive commands at the same
	// offset fail once a transient fault fires (modeling a marginal cell
	// that needs several read-retry rounds). Minimum 1.
	TransientPersistence int
	// BitFlipProb is the per-read probability of a silent single-bit
	// corruption in the returned buffer: the command "succeeds" but the
	// data is wrong, detectable only by checksum.
	BitFlipProb float64
	// LatencySpikeProb adds LatencySpike to a command's completion time
	// (background GC pauses, remapping stalls).
	LatencySpikeProb float64
	LatencySpike     time.Duration
	// BadSectors are permanently unreadable and unwritable ranges (grown
	// defects); commands overlapping them always fail non-transiently.
	BadSectors []Range
	// FailWritesAfter, when > 0, kills the write path after that many
	// successful writes: all later writes and flushes fail permanently
	// while reads keep working (media death, the classic worn-out-SSD
	// failure mode).
	FailWritesAfter int64
}

type faultKey struct {
	op  byte // 'r' or 'w'
	off int64
}

// FaultDev wraps a Device and injects the faults described by a FaultPlan.
// Faults are deterministic: a fixed seed and command sequence reproduce the
// same failures, which is what makes fault sweeps debuggable. A failed
// write may or may not have reached the medium (torn behavior), exactly as
// on real hardware; callers must treat the target range as undefined until
// a later write succeeds.
type FaultDev struct {
	env  *sim.Env
	dev  Device
	plan FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	pending map[faultKey]int // remaining transient failures per site
	writes  int64            // successful writes, for FailWritesAfter
	dead    bool             // write path permanently failed

	mFaultRead  *metrics.Counter
	mFaultWrite *metrics.Counter
	mBitFlip    *metrics.Counter
	mSpike      *metrics.Counter
}

// NewFault wraps dev with fault injection per plan.
func NewFault(env *sim.Env, dev Device, plan FaultPlan) *FaultDev {
	if plan.TransientPersistence < 1 {
		plan.TransientPersistence = 1
	}
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &FaultDev{
		env:         env,
		dev:         dev,
		plan:        plan,
		rng:         rand.New(rand.NewSource(int64(plan.Seed))),
		pending:     make(map[faultKey]int),
		mFaultRead:  reg.Counter("io.fault.read"),
		mFaultWrite: reg.Counter("io.fault.write"),
		mBitFlip:    reg.Counter("io.fault.bitflip"),
		mSpike:      reg.Counter("io.fault.spike"),
	}
}

// Size returns the underlying device capacity.
func (d *FaultDev) Size() int64 { return d.dev.Size() }

// Stats returns the underlying device statistics.
func (d *FaultDev) Stats() *Stats { return d.dev.Stats() }

// AddBadRange grows a permanent defect at runtime (a sector going bad
// mid-run).
func (d *FaultDev) AddBadRange(off, length int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan.BadSectors = append(d.plan.BadSectors, Range{Off: off, Len: length})
}

// FailWritesNow kills the write path immediately: every later write and
// flush fails permanently while reads keep working.
func (d *FaultDev) FailWritesNow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead = true
}

func (d *FaultDev) badRange(off int64, n int) bool {
	for _, r := range d.plan.BadSectors {
		if r.overlaps(off, n) {
			return true
		}
	}
	return false
}

// transientRoll decides whether this command suffers a transient fault,
// honoring per-site persistence. Caller holds d.mu.
func (d *FaultDev) transientRoll(op byte, off int64, prob float64) bool {
	k := faultKey{op: op, off: off}
	if rem := d.pending[k]; rem > 0 {
		if rem == 1 {
			delete(d.pending, k)
		} else {
			d.pending[k] = rem - 1
		}
		return true
	}
	if prob > 0 && d.rng.Float64() < prob {
		if d.plan.TransientPersistence > 1 {
			d.pending[k] = d.plan.TransientPersistence - 1
		}
		return true
	}
	return false
}

// SubmitRead starts a read, possibly injecting a fault. A failed read
// still occupies the device until its completion time, but p is zeroed (no
// data transferred); a bit-flipped read succeeds with silently wrong data.
func (d *FaultDev) SubmitRead(p []byte, off int64) Completion {
	c := d.dev.SubmitRead(p, off)
	if c.Err != nil {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case d.badRange(off, len(p)):
		d.mFaultRead.Inc()
		zero(p)
		c.Err = &ioerr.DeviceError{Op: "read", Off: off, Len: len(p), Transient: false}
	case d.transientRoll('r', off, d.plan.TransientReadProb):
		d.mFaultRead.Inc()
		zero(p)
		c.Err = &ioerr.DeviceError{Op: "read", Off: off, Len: len(p), Transient: true}
	case d.plan.BitFlipProb > 0 && d.rng.Float64() < d.plan.BitFlipProb:
		d.mBitFlip.Inc()
		i := d.rng.Intn(len(p))
		p[i] ^= 1 << uint(d.rng.Intn(8))
	}
	if d.plan.LatencySpikeProb > 0 && d.rng.Float64() < d.plan.LatencySpikeProb {
		d.mSpike.Inc()
		c.At += d.plan.LatencySpike
	}
	return c
}

// SubmitWrite starts a write, possibly injecting a fault.
func (d *FaultDev) SubmitWrite(p []byte, off int64) Completion {
	c := d.dev.SubmitWrite(p, off)
	if c.Err != nil {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case d.dead || d.badRange(off, len(p)):
		d.mFaultWrite.Inc()
		c.Err = &ioerr.DeviceError{Op: "write", Off: off, Len: len(p), Transient: false}
	case d.transientRoll('w', off, d.plan.TransientWriteProb):
		d.mFaultWrite.Inc()
		c.Err = &ioerr.DeviceError{Op: "write", Off: off, Len: len(p), Transient: true}
	default:
		d.writes++
		if d.plan.FailWritesAfter > 0 && d.writes >= d.plan.FailWritesAfter {
			d.dead = true
		}
	}
	if d.plan.LatencySpikeProb > 0 && d.rng.Float64() < d.plan.LatencySpikeProb {
		d.mSpike.Inc()
		c.At += d.plan.LatencySpike
	}
	return c
}

// Wait advances the clock to c's completion time and returns its outcome.
func (d *FaultDev) Wait(c Completion) error { return d.dev.Wait(c) }

// ReadAt synchronously reads through the fault layer.
func (d *FaultDev) ReadAt(p []byte, off int64) error {
	return d.Wait(d.SubmitRead(p, off))
}

// WriteAt synchronously writes through the fault layer.
func (d *FaultDev) WriteAt(p []byte, off int64) error {
	return d.Wait(d.SubmitWrite(p, off))
}

// Discard delegates the TRIM unless the write path is dead or the range
// overlaps a grown defect: a device that cannot write cannot retire
// mapping entries either, and trimming over a bad sector fails like any
// other command there. Discard faults are counted with the write-path
// faults (they travel the same firmware path).
func (d *FaultDev) Discard(off, length int64) error {
	d.mu.Lock()
	dead := d.dead || d.badRange(off, int(length))
	d.mu.Unlock()
	if dead {
		d.mFaultWrite.Inc()
		return &ioerr.DeviceError{Op: "discard", Off: off, Len: int(length), Transient: false}
	}
	return d.dev.Discard(off, length)
}

// Flush delegates the barrier; on a dead write path the barrier itself
// fails (the device can no longer promise durability).
func (d *FaultDev) Flush() error {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		d.mFaultWrite.Inc()
		return &ioerr.DeviceError{Op: "flush", Transient: false}
	}
	return d.dev.Flush()
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
