package blockdev

import (
	"fmt"

	"betrfs/internal/stor"
)

// Region exposes a byte range of a device as a stor.File; the journaling
// and log-structured file systems build their fixed on-disk areas from
// regions.
func Region(dev Device, off, length int64) stor.File {
	if off < 0 || off+length > dev.Size() {
		panic(fmt.Sprintf("blockdev: region [%d,%d) outside device", off, off+length))
	}
	return &region{dev: dev, off: off, len: length}
}

type region struct {
	dev Device
	off int64
	len int64
}

func (r *region) check(n int, off int64) {
	if off < 0 || off+int64(n) > r.len {
		panic(fmt.Sprintf("blockdev: region I/O out of bounds: off=%d len=%d size=%d", off, n, r.len))
	}
}

func (r *region) ReadAt(p []byte, off int64) error {
	r.check(len(p), off)
	return r.dev.ReadAt(p, r.off+off)
}

func (r *region) WriteAt(p []byte, off int64) error {
	r.check(len(p), off)
	return r.dev.WriteAt(p, r.off+off)
}

func (r *region) SubmitRead(p []byte, off int64) stor.Wait {
	r.check(len(p), off)
	c := r.dev.SubmitRead(p, r.off+off)
	return func() error { return r.dev.Wait(c) }
}

func (r *region) SubmitWrite(p []byte, off int64) stor.Wait {
	r.check(len(p), off)
	c := r.dev.SubmitWrite(p, r.off+off)
	return func() error { return r.dev.Wait(c) }
}

func (r *region) Discard(off, length int64) error {
	r.check(int(length), off)
	return r.dev.Discard(r.off+off, length)
}

func (r *region) Flush() error    { return r.dev.Flush() }
func (r *region) Capacity() int64 { return r.len }
