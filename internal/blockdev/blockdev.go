// Package blockdev simulates block storage devices with realistic timing.
//
// The device model is the foundation of the reproduction: every file system
// in this repository issues its reads and writes here, and the simulated
// command timing (per-command overhead, sequential vs. random bandwidth
// asymmetry, write-cache exhaustion) is what makes batching small writes
// into large ones — the Bε-tree's core trick — pay off exactly as it does
// on the paper's Samsung 860 EVO.
//
// Timing follows a simple pipelined model: the device serializes commands
// (busy-until bookkeeping), and callers may submit asynchronously and wait
// later, which is how write-back and read-ahead overlap CPU with I/O.
package blockdev

import (
	"fmt"
	"sync"
	"time"

	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

// BlockSize is the minimum I/O granularity of all simulated devices.
const BlockSize = 4096

// Completion identifies an in-flight I/O; it completes at time At. Err
// carries the command's outcome: a failed command still occupies the device
// until At, but the data was not transferred.
type Completion struct {
	At  time.Duration
	Err error
}

// Device is the interface all simulated storage exposes. All commands can
// fail: real devices return errors for grown bad sectors, controller
// timeouts, and media death, and fault-injecting wrappers (FaultDev)
// simulate exactly that. The plain simulated Dev never fails.
type Device interface {
	// ReadAt synchronously reads len(p) bytes at off. On error the
	// contents of p are undefined.
	ReadAt(p []byte, off int64) error
	// WriteAt synchronously writes len(p) bytes at off.
	WriteAt(p []byte, off int64) error
	// SubmitRead starts an asynchronous read; the data is visible in p
	// only after Wait returns without error.
	SubmitRead(p []byte, off int64) Completion
	// SubmitWrite starts an asynchronous write of p at off. The caller
	// must not modify p before the write completes.
	SubmitWrite(p []byte, off int64) Completion
	// Wait advances the clock to the completion time of c and returns the
	// command's outcome.
	Wait(c Completion) error
	// Flush drains the device queue and volatile write cache (a barrier).
	Flush() error
	// Discard (TRIM) tells the device that [off, off+length) no longer
	// holds live data, so its flash translation layer can stop preserving
	// it. Discarded ranges read back as zeroes (deterministic
	// read-after-TRIM). Discard is advisory: callers must treat a failure
	// as harmless, and like any write it is not durable until the next
	// Flush barrier — a crash may revert it.
	Discard(off, length int64) error
	// Size returns the device capacity in bytes.
	Size() int64
	// Stats returns cumulative I/O statistics.
	Stats() *Stats
}

// Stats counts the I/O traffic a device has served.
type Stats struct {
	Reads        int64
	Writes       int64
	Flushes      int64
	BytesRead    int64
	BytesWritten int64
	BusyTime     time.Duration
	SeqWrites    int64
	RandWrites   int64
	SeqReads     int64
	RandReads    int64
	// ReadFaults counts reads that overlapped an injected unreadable
	// range (see Dev.InjectReadFault).
	ReadFaults int64
	// Discards / BytesDiscarded count TRIM commands and the bytes they
	// covered.
	Discards       int64
	BytesDiscarded int64
}

// Profile describes the performance characteristics of a device.
type Profile struct {
	Name string
	// Capacity is the addressable size in bytes.
	Capacity int64
	// CmdOverhead is the fixed per-command cost (protocol + firmware).
	CmdOverhead time.Duration
	// SeqReadBW / SeqWriteBW are streaming bandwidths in bytes/sec.
	SeqReadBW  int64
	SeqWriteBW int64
	// SustainedWriteBW applies once the volatile write cache is full.
	SustainedWriteBW int64
	// WriteCacheBytes is the size of the fast write cache (SLC/DRAM
	// region on the SSD; track cache on an HDD).
	WriteCacheBytes int64
	// RandReadPenalty / RandWritePenalty are added when a command does
	// not continue the device's current sequential stream.
	RandReadPenalty  time.Duration
	RandWritePenalty time.Duration
	// FlushLatency is the cost of a cache-flush barrier.
	FlushLatency time.Duration
	// DiscardLatency is the per-TRIM command cost. Zero (the default for
	// both stock profiles) makes discard a timing-free hint, so
	// timing-pinned workloads stay bit-identical whether or not a file
	// system trims; set it non-zero to study TRIM storms.
	DiscardLatency time.Duration
}

// SamsungEVO860 models the paper's 250 GB SATA SSD: 567 MB/s peak reads,
// 502 MB/s writes dropping to 392 MB/s once the ~12 GB write cache is
// exhausted (§7).
func SamsungEVO860() Profile {
	return Profile{
		Name:             "ssd",
		Capacity:         250 << 30,
		CmdOverhead:      22 * time.Microsecond,
		SeqReadBW:        567e6,
		SeqWriteBW:       502e6,
		SustainedWriteBW: 392e6,
		WriteCacheBytes:  12 << 30,
		RandReadPenalty:  58 * time.Microsecond,
		RandWritePenalty: 130 * time.Microsecond,
		FlushLatency:     500 * time.Microsecond,
	}
}

// ToshibaDT01 models the paper's 500 GB 7200 RPM boot HDD, used by the HDD
// ablation: ~135 MB/s streaming, ~8 ms average seek plus rotational delay.
func ToshibaDT01() Profile {
	return Profile{
		Name:             "hdd",
		Capacity:         500 << 30,
		CmdOverhead:      90 * time.Microsecond,
		SeqReadBW:        135e6,
		SeqWriteBW:       135e6,
		SustainedWriteBW: 135e6,
		WriteCacheBytes:  64 << 20,
		RandReadPenalty:  11 * time.Millisecond,
		RandWritePenalty: 11 * time.Millisecond,
		FlushLatency:     12 * time.Millisecond,
	}
}

// Scale divides the capacity-like parameters of p by factor, so that scaled
// workloads exercise the same regimes (e.g. overflowing the write cache) as
// the paper's full-size runs.
func (p Profile) Scale(factor int64) Profile {
	if factor <= 1 {
		return p
	}
	p.Capacity /= factor
	p.WriteCacheBytes /= factor
	return p
}

const chunkSize = 64 << 10

// Dev is the standard simulated device. Storage is sparse: chunks are
// allocated on first write and unwritten regions read as zeros.
//
// Submission entry points are serialized by a mutex, modeling the single
// hardware queue the timing model already assumes: concurrent submitters
// (the background flusher overlapping foreground reads, DESIGN.md §9) are
// ordered at the device, and each command's timing is computed atomically
// against the busy-until horizon. Single-goroutine runs take the
// uncontended lock and observe identical timing.
type Dev struct {
	env     *sim.Env
	profile Profile
	mu      sync.Mutex
	stats   Stats

	chunks map[int64][]byte

	busyUntil time.Duration
	readEnd   int64 // next sequential read offset
	writeEnd  int64 // next sequential write offset

	// Write-cache model: dirty bytes drain at SustainedWriteBW.
	cacheDirty   int64
	cacheUpdated time.Duration

	// Crash- and fault-injection support (see crash.go).
	trackUnflushed bool
	unflushed      []writeRecord
	readFaults     []faultRange

	mReadCount    *metrics.Counter
	mWriteCount   *metrics.Counter
	mReadBytes    *metrics.Counter
	mWriteBytes   *metrics.Counter
	mFlushCount   *metrics.Counter
	mReadSeq      *metrics.Counter
	mReadRand     *metrics.Counter
	mWriteSeq     *metrics.Counter
	mWriteRand    *metrics.Counter
	mReadSize     *metrics.Histogram
	mWriteSize    *metrics.Histogram
	mDiscardCount *metrics.Counter
	mDiscardBytes *metrics.Counter
}

// New creates a device with the given profile.
func New(env *sim.Env, profile Profile) *Dev {
	reg := env.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Dev{
		env:           env,
		profile:       profile,
		chunks:        make(map[int64][]byte),
		mReadCount:    reg.Counter("blockdev.read.count"),
		mWriteCount:   reg.Counter("blockdev.write.count"),
		mReadBytes:    reg.Counter("blockdev.read.bytes"),
		mWriteBytes:   reg.Counter("blockdev.write.bytes"),
		mFlushCount:   reg.Counter("blockdev.flush.count"),
		mReadSeq:      reg.Counter("blockdev.read.seq"),
		mReadRand:     reg.Counter("blockdev.read.rand"),
		mWriteSeq:     reg.Counter("blockdev.write.seq"),
		mWriteRand:    reg.Counter("blockdev.write.rand"),
		mReadSize:     reg.Histogram("blockdev.read.size", "bytes"),
		mWriteSize:    reg.Histogram("blockdev.write.size", "bytes"),
		mDiscardCount: reg.Counter("blockdev.discard.count"),
		mDiscardBytes: reg.Counter("blockdev.discard.bytes"),
	}
}

// Size returns the device capacity in bytes.
func (d *Dev) Size() int64 { return d.profile.Capacity }

// Stats returns cumulative I/O statistics.
func (d *Dev) Stats() *Stats { return &d.stats }

// Profile returns the performance profile the device was created with.
func (d *Dev) Profile() Profile { return d.profile }

func (d *Dev) checkRange(n int, off int64, op string) {
	if off < 0 || off+int64(n) > d.profile.Capacity {
		panic(fmt.Sprintf("blockdev: %s out of range: off=%d len=%d cap=%d",
			op, off, n, d.profile.Capacity))
	}
}

// copyOut copies stored bytes into p without charging time.
func (d *Dev) copyOut(p []byte, off int64) {
	for n := 0; n < len(p); {
		ci := (off + int64(n)) / chunkSize
		co := (off + int64(n)) % chunkSize
		want := len(p) - n
		if max := int(chunkSize - co); want > max {
			want = max
		}
		if c, ok := d.chunks[ci]; ok {
			copy(p[n:n+want], c[co:])
		} else {
			for i := n; i < n+want; i++ {
				p[i] = 0
			}
		}
		n += want
	}
}

// copyIn stores bytes from p without charging time.
func (d *Dev) copyIn(p []byte, off int64) {
	for n := 0; n < len(p); {
		ci := (off + int64(n)) / chunkSize
		co := (off + int64(n)) % chunkSize
		want := len(p) - n
		if max := int(chunkSize - co); want > max {
			want = max
		}
		c, ok := d.chunks[ci]
		if !ok {
			c = make([]byte, chunkSize)
			d.chunks[ci] = c
		}
		copy(c[co:], p[n:n+want])
		n += want
	}
}

// drainCache destages the write cache to flash during device-idle time.
// While the device is executing commands the flash backend is occupied by
// those commands, so only the gap between the previous busy period and the
// next command start drains the cache (at the sustained backend rate).
func (d *Dev) drainCache(start time.Duration) {
	idleFrom := d.busyUntil
	if d.cacheUpdated > idleFrom {
		idleFrom = d.cacheUpdated
	}
	if d.cacheDirty > 0 && start > idleFrom {
		drained := int64(float64(start-idleFrom) / float64(time.Second) * float64(d.profile.SustainedWriteBW))
		d.cacheDirty -= drained
		if d.cacheDirty < 0 {
			d.cacheDirty = 0
		}
	}
	d.cacheUpdated = start
}

func transfer(n int, bw int64) time.Duration {
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}

// SubmitRead starts an asynchronous read.
func (d *Dev) SubmitRead(p []byte, off int64) Completion {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(len(p), off, "read")
	start := d.env.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	dur := d.profile.CmdOverhead + transfer(len(p), d.profile.SeqReadBW)
	if off != d.readEnd {
		dur += d.profile.RandReadPenalty
		d.stats.RandReads++
		d.mReadRand.Inc()
	} else {
		d.stats.SeqReads++
		d.mReadSeq.Inc()
	}
	d.readEnd = off + int64(len(p))
	d.busyUntil = start + dur
	d.stats.Reads++
	d.stats.BytesRead += int64(len(p))
	d.stats.BusyTime += dur
	d.mReadCount.Inc()
	d.mReadBytes.Add(int64(len(p)))
	d.mReadSize.Observe(int64(len(p)))
	d.copyOut(p, off)
	if len(d.readFaults) > 0 {
		d.applyReadFaults(p, off)
	}
	return Completion{At: d.busyUntil}
}

// SubmitWrite starts an asynchronous write.
func (d *Dev) SubmitWrite(p []byte, off int64) Completion {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(len(p), off, "write")
	start := d.env.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.drainCache(start)
	// Bytes that fit in the remaining write-cache space land at burst
	// speed; the rest bypass the cache at the sustained (post-cache) rate.
	fast := d.profile.WriteCacheBytes - d.cacheDirty
	if fast < 0 {
		fast = 0
	}
	if fast > int64(len(p)) {
		fast = int64(len(p))
	}
	slow := int64(len(p)) - fast
	dur := d.profile.CmdOverhead +
		transfer(int(fast), d.profile.SeqWriteBW) +
		transfer(int(slow), d.profile.SustainedWriteBW)
	if off != d.writeEnd {
		dur += d.profile.RandWritePenalty
		d.stats.RandWrites++
		d.mWriteRand.Inc()
	} else {
		d.stats.SeqWrites++
		d.mWriteSeq.Inc()
	}
	d.writeEnd = off + int64(len(p))
	d.cacheDirty += fast
	d.busyUntil = start + dur
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(p))
	d.stats.BusyTime += dur
	d.mWriteCount.Inc()
	d.mWriteBytes.Add(int64(len(p)))
	d.mWriteSize.Observe(int64(len(p)))
	if d.trackUnflushed {
		d.recordUnflushed(p, off)
	}
	d.copyIn(p, off)
	return Completion{At: d.busyUntil}
}

// Wait advances the clock to the completion time of c and returns the
// command's outcome.
func (d *Dev) Wait(c Completion) error {
	d.env.Clock.AdvanceTo(c.At)
	return c.Err
}

// ReadAt synchronously reads len(p) bytes at off.
func (d *Dev) ReadAt(p []byte, off int64) error {
	return d.Wait(d.SubmitRead(p, off))
}

// WriteAt synchronously writes len(p) bytes at off.
func (d *Dev) WriteAt(p []byte, off int64) error {
	return d.Wait(d.SubmitWrite(p, off))
}

// Flush drains the queue and volatile cache; after Flush returns, all prior
// writes are durable (crash injection will not revert them).
func (d *Dev) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.env.Clock.AdvanceTo(d.busyUntil)
	d.env.Clock.Advance(d.profile.FlushLatency)
	d.busyUntil = d.env.Now()
	d.stats.Flushes++
	d.mFlushCount.Inc()
	if d.trackUnflushed {
		d.unflushed = d.unflushed[:0]
	}
	return nil
}

// Discard (TRIM) drops [off, off+length) from the device: the range reads
// back as zeroes and fully covered storage chunks are released. With the
// default DiscardLatency of zero the command charges no simulated time —
// discard is a hint, and the timing-pinned golden workloads must stay
// bit-identical whether or not a file system trims. Under crash tracking
// the zeroing is recorded like any unflushed write, so a Crash* call can
// revert it: a real TRIM is not durable until the next flush barrier
// either, which is exactly the window the free-vs-discard crash sweeps
// probe.
func (d *Dev) Discard(off, length int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(int(length), off, "discard")
	if length == 0 {
		return nil
	}
	if d.profile.DiscardLatency > 0 {
		start := d.env.Now()
		if d.busyUntil > start {
			start = d.busyUntil
		}
		dur := d.profile.CmdOverhead + d.profile.DiscardLatency
		d.busyUntil = start + dur
		d.stats.BusyTime += dur
	}
	d.stats.Discards++
	d.stats.BytesDiscarded += length
	d.mDiscardCount.Inc()
	d.mDiscardBytes.Add(length)
	if d.trackUnflushed {
		zero := make([]byte, length)
		d.recordUnflushed(zero, off)
		d.copyIn(zero, off)
		return nil
	}
	d.zeroRange(off, length)
	return nil
}

// zeroRange zeroes [off, off+n) in place, deleting chunks the range fully
// covers so discarded space costs no memory.
func (d *Dev) zeroRange(off, n int64) {
	for n > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		want := n
		if max := chunkSize - co; want > max {
			want = max
		}
		if co == 0 && want == chunkSize {
			delete(d.chunks, ci)
		} else if c, ok := d.chunks[ci]; ok {
			for i := co; i < co+want; i++ {
				c[i] = 0
			}
		}
		off += want
		n -= want
	}
}
