package blockdev

// Crash and fault injection.
//
// When tracking is enabled, the device records both the prior contents
// (pre-image) and the written bytes (post-image) of every write issued
// since the last Flush barrier. A crash is then simulated by choosing
// which of those unflushed writes survive:
//
//   - Crash(keep): the first keep writes survive, the rest revert — a
//     volatile cache that drains strictly in order.
//   - CrashTorn(keep, tornBytes): like Crash, but write #keep is torn —
//     only its first tornBytes bytes persist. Models a sector write
//     interrupted by power loss.
//   - CrashSubset(survive): an arbitrary subset of unflushed writes
//     survives — a cache that drains out of order.
//
// Separately, the corruption injectors (CorruptZero, CorruptFlip) mutate
// stored bytes directly, modeling bit-rot and latent sector errors that a
// flush cannot prevent, and InjectReadFault registers ranges whose reads
// return zeroed bytes plus a ReadFaults stats counter — a silent-loss
// variant kept for checksum-layer tests. For faults that surface as real
// I/O errors (EIO at the mount API), wrap the device in a FaultDev (see
// fault.go), which drives the error returns the Device interface carries.
//
// Post-crash semantics (auto re-arm): every crash entry point clears the
// unflushed log but leaves tracking ENABLED, with the post-crash state as
// the new baseline — exactly like a freshly powered-on disk whose media
// content is whatever survived. Callers can mount, run more traffic, and
// crash again without calling EnableCrashTracking a second time.

type writeRecord struct {
	off int64
	old []byte // pre-image (contents before the write)
	new []byte // post-image (the written bytes)
}

type faultRange struct {
	off int64
	n   int64
}

// EnableCrashTracking starts recording pre- and post-images of unflushed
// writes so the Crash* entry points can choose which survive. Intended
// for tests; it has a memory cost proportional to write traffic between
// flushes. Calling it again resets the unflushed log to empty.
func (d *Dev) EnableCrashTracking() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trackUnflushed = true
	d.unflushed = d.unflushed[:0]
}

func (d *Dev) recordUnflushed(p []byte, off int64) {
	old := make([]byte, len(p))
	d.copyOut(old, off)
	nw := make([]byte, len(p))
	copy(nw, p)
	d.unflushed = append(d.unflushed, writeRecord{off: off, old: old, new: nw})
}

// UnflushedWrites reports how many writes are revertible right now.
func (d *Dev) UnflushedWrites() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.unflushed)
}

// UnflushedWriteLen reports the byte length of unflushed write i, letting
// harnesses enumerate torn-write cut points.
func (d *Dev) UnflushedWriteLen(i int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.unflushed[i].new)
}

// Crash reverts all unflushed writes from index keep onward (so the first
// keep unflushed writes survive, emulating a partially drained device
// cache that destages in submission order). The device remains usable, as
// a freshly powered-on disk would be; tracking stays armed with the
// post-crash state as the new baseline (see the package comment on auto
// re-arm).
func (d *Dev) Crash(keep int) {
	d.CrashTorn(keep, 0)
}

// CrashTorn is Crash with one torn write: the first keep unflushed writes
// survive in full, write #keep persists only its first tornBytes bytes,
// and everything after is reverted. tornBytes == 0 (or keep beyond the
// unflushed log) degenerates to Crash(keep).
func (d *Dev) CrashTorn(keep, tornBytes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.trackUnflushed {
		panic("blockdev: Crash without EnableCrashTracking")
	}
	if keep < 0 {
		keep = 0
	}
	if keep > len(d.unflushed) {
		keep = len(d.unflushed)
	}
	// Revert in reverse order so overlapping writes restore correctly.
	for i := len(d.unflushed) - 1; i >= keep; i-- {
		r := d.unflushed[i]
		d.copyIn(r.old, r.off)
	}
	if keep < len(d.unflushed) && tornBytes > 0 {
		r := d.unflushed[keep]
		if tornBytes > len(r.new) {
			tornBytes = len(r.new)
		}
		d.copyIn(r.new[:tornBytes], r.off)
	}
	d.postCrash()
}

// CrashSubset models a volatile cache that drains out of order: an
// arbitrary subset of the unflushed writes survives. survive[i] selects
// unflushed write i; indexes beyond len(survive) do not survive. When two
// surviving writes overlap, the later submission wins (the cache holds
// the newest version of a sector). Tracking stays armed afterwards, as
// with Crash.
func (d *Dev) CrashSubset(survive []bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.trackUnflushed {
		panic("blockdev: Crash without EnableCrashTracking")
	}
	// Revert everything back to the last-flushed state, then replay the
	// survivors in submission order.
	for i := len(d.unflushed) - 1; i >= 0; i-- {
		r := d.unflushed[i]
		d.copyIn(r.old, r.off)
	}
	for i, r := range d.unflushed {
		if i < len(survive) && survive[i] {
			d.copyIn(r.new, r.off)
		}
	}
	d.postCrash()
}

// postCrash resets device state after a simulated power cycle. The
// unflushed log is cleared but tracking remains enabled (auto re-arm):
// the surviving media content is the new durable baseline.
func (d *Dev) postCrash() {
	d.unflushed = d.unflushed[:0]
	d.readEnd = 0
	d.writeEnd = 0
	d.cacheDirty = 0
}

// CorruptZero zeroes n stored bytes at off, modeling a latent sector
// error or lost write that a flush cannot prevent. It bypasses timing,
// stats, and crash tracking: the corruption is on the media itself.
func (d *Dev) CorruptZero(off, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(int(n), off, "corrupt")
	d.copyIn(make([]byte, n), off)
}

// CorruptFlip flips pseudo-random bits (about one per byte, position
// derived from seed) across n stored bytes at off, modeling bit-rot.
// Deterministic for a given (off, n, seed).
func (d *Dev) CorruptFlip(off, n int64, seed uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(int(n), off, "corrupt")
	buf := make([]byte, n)
	d.copyOut(buf, off)
	x := seed | 1
	for i := range buf {
		// xorshift64* — cheap deterministic bit selection.
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		buf[i] ^= 1 << ((x * 2685821657736338717) >> 61)
	}
	d.copyIn(buf, off)
}

// InjectReadFault registers [off, off+n) as an unreadable range: reads
// overlapping it have the overlapped bytes zeroed and bump the ReadFaults
// counter. This models an unrecoverable read error (URE) that the device
// silently papers over, so detection is the checksum layer's job; use
// FaultDev bad ranges instead when the device should report the error.
func (d *Dev) InjectReadFault(off, n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkRange(int(n), off, "read-fault")
	d.readFaults = append(d.readFaults, faultRange{off: off, n: n})
}

// ClearReadFaults removes all injected read faults (the sectors were
// rewritten / remapped).
func (d *Dev) ClearReadFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readFaults = nil
}

// applyReadFaults zeroes the portions of p overlapping injected fault
// ranges, counting one fault per affected read.
func (d *Dev) applyReadFaults(p []byte, off int64) {
	hit := false
	for _, f := range d.readFaults {
		lo := f.off
		if off > lo {
			lo = off
		}
		hi := f.off + f.n
		if end := off + int64(len(p)); end < hi {
			hi = end
		}
		if lo >= hi {
			continue
		}
		hit = true
		for i := lo; i < hi; i++ {
			p[i-off] = 0
		}
	}
	if hit {
		d.stats.ReadFaults++
	}
}
