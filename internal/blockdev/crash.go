package blockdev

// Crash injection: when tracking is enabled, the device records the prior
// contents of every write issued since the last Flush barrier. Crash
// reverts an arbitrary suffix of those unflushed writes, modeling a power
// failure with a volatile on-device write cache. File-system recovery code
// is exercised against the surviving state.

type writeRecord struct {
	off int64
	old []byte
}

// EnableCrashTracking starts recording pre-images of unflushed writes so
// Crash can revert them. Intended for tests; it has a memory cost
// proportional to write traffic between flushes.
func (d *Dev) EnableCrashTracking() {
	d.trackUnflushed = true
	d.unflushed = d.unflushed[:0]
}

func (d *Dev) recordUnflushed(p []byte, off int64) {
	old := make([]byte, len(p))
	d.copyOut(old, off)
	d.unflushed = append(d.unflushed, writeRecord{off: off, old: old})
}

// UnflushedWrites reports how many writes are revertible right now.
func (d *Dev) UnflushedWrites() int { return len(d.unflushed) }

// Crash reverts all unflushed writes from index keep onward (so the first
// keep unflushed writes survive, emulating a partially drained device
// cache) and clears the tracking state. The device remains usable, as a
// freshly powered-on disk would be.
func (d *Dev) Crash(keep int) {
	if !d.trackUnflushed {
		panic("blockdev: Crash without EnableCrashTracking")
	}
	if keep < 0 {
		keep = 0
	}
	if keep > len(d.unflushed) {
		keep = len(d.unflushed)
	}
	// Revert in reverse order so overlapping writes restore correctly.
	for i := len(d.unflushed) - 1; i >= keep; i-- {
		r := d.unflushed[i]
		d.copyIn(r.old, r.off)
	}
	d.unflushed = d.unflushed[:0]
	d.readEnd = 0
	d.writeEnd = 0
	d.cacheDirty = 0
}
