package blockdev

import (
	"testing"

	"betrfs/internal/ioerr"
	"betrfs/internal/sim"
)

// retryStack builds dev → fault → retry with the given plan and policy.
func retryStack(t *testing.T, plan FaultPlan, pol RetryPolicy) (*sim.Env, *FaultDev, *RetryDev) {
	t.Helper()
	env := sim.NewEnv(1)
	dev := New(env, SamsungEVO860().Scale(4096))
	fdev := NewFault(env, dev, plan)
	return env, fdev, WithRetry(env, fdev, pol)
}

// TestRetryExhaustedCounting pins the io.retry.exhausted contract: a
// transient fault that outlasts the retry budget counts exactly once
// per command (alongside its io.error.*), while a command that
// eventually succeeds counts zero.
func TestRetryExhaustedCounting(t *testing.T) {
	// Persistence far beyond the retry budget: every attempt at a site
	// keeps failing transiently, so every command exhausts.
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 3
	env, _, rd := retryStack(t, FaultPlan{
		Seed:                 1,
		TransientReadProb:    1.0,
		TransientPersistence: 100,
	}, pol)

	buf := make([]byte, 4096)
	const cmds = 5
	for i := 0; i < cmds; i++ {
		err := rd.ReadAt(buf, int64(i)*4096)
		if err == nil {
			t.Fatalf("read %d succeeded under an always-failing plan", i)
		}
		if !ioerr.IsTransient(err) {
			t.Fatalf("read %d surfaced non-transient %v from a transient plan", i, err)
		}
	}
	if got := env.Metrics.Counter("io.retry.exhausted").Load(); got != cmds {
		t.Fatalf("io.retry.exhausted = %d, want exactly %d (one per exhausted command)", got, cmds)
	}
	if got := env.Metrics.Counter("io.error.read").Load(); got != cmds {
		t.Fatalf("io.error.read = %d, want %d", got, cmds)
	}
	if got := env.Metrics.Counter("io.retry.read").Load(); got != cmds*int64(pol.MaxAttempts-1) {
		t.Fatalf("io.retry.read = %d, want %d re-submissions", got, cmds*int64(pol.MaxAttempts-1))
	}
}

// TestRetryExhaustedExcludesPersistent checks the other half of the
// contract: a persistent media error is a final failure too, but not an
// exhaustion — the budget never mattered — so io.error.* counts it and
// io.retry.exhausted does not.
func TestRetryExhaustedExcludesPersistent(t *testing.T) {
	env, fdev, rd := retryStack(t, FaultPlan{Seed: 2}, DefaultRetryPolicy())
	fdev.AddBadRange(0, 8192)

	buf := make([]byte, 4096)
	if err := rd.ReadAt(buf, 0); err == nil {
		t.Fatal("read from a bad range succeeded")
	} else if ioerr.IsTransient(err) {
		t.Fatalf("bad-range error %v claims to be transient", err)
	}
	if err := rd.WriteAt(buf, 4096); err == nil {
		t.Fatal("write to a bad range succeeded")
	}
	if got := env.Metrics.Counter("io.retry.exhausted").Load(); got != 0 {
		t.Fatalf("io.retry.exhausted = %d for persistent errors, want 0", got)
	}
	if got := env.Metrics.Counter("io.error.read").Load(); got != 1 {
		t.Fatalf("io.error.read = %d, want 1", got)
	}
	if got := env.Metrics.Counter("io.error.write").Load(); got != 1 {
		t.Fatalf("io.error.write = %d, want 1", got)
	}
	if got := env.Metrics.Counter("io.retry.read").Load() + env.Metrics.Counter("io.retry.write").Load(); got != 0 {
		t.Fatalf("%d retries of non-transient errors, want 0", got)
	}
}

// TestRetryAbsorbedNotExhausted checks that faults absorbed within the
// budget leave io.retry.exhausted and io.error.* untouched: retries are
// visible only in io.retry.read. The plan is seeded, so the sweep is
// deterministic; the budget (8 attempts) covers a persistence-2 fault
// chained with fresh independent faults at the same site.
func TestRetryAbsorbedNotExhausted(t *testing.T) {
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 8
	env, _, rd := retryStack(t, FaultPlan{
		Seed:                 3,
		TransientReadProb:    0.25,
		TransientPersistence: 2,
	}, pol)

	buf := make([]byte, 4096)
	for i := 0; i < 50; i++ {
		if err := rd.ReadAt(buf, int64(i)*4096); err != nil {
			t.Fatalf("read %d not absorbed by a retry-coverable plan: %v", i, err)
		}
	}
	if got := env.Metrics.Counter("io.retry.read").Load(); got == 0 {
		t.Fatal("plan injected no faults; test is vacuous")
	}
	if got := env.Metrics.Counter("io.retry.exhausted").Load(); got != 0 {
		t.Fatalf("io.retry.exhausted = %d for absorbed faults, want 0", got)
	}
	if got := env.Metrics.Counter("io.error.read").Load(); got != 0 {
		t.Fatalf("io.error.read = %d for absorbed faults, want 0", got)
	}
}
