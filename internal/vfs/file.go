package vfs

import (
	"betrfs/internal/keys"
)

// File is an open file description with a cursor, as returned by Open.
type File struct {
	m   *Mount
	ino *inode
	pos int64
	// lastReadEnd and raPages implement per-file sequential read
	// detection with a growing read-ahead window, as the VFS does.
	lastReadEnd int64
	raPages     int
	closed      bool
}

// Create creates (or truncates) a file and opens it.
func (m *Mount) Create(path string) (*File, error) {
	return m.OpenFile(path, true, true)
}

// Open opens an existing file.
func (m *Mount) Open(path string) (*File, error) {
	return m.OpenFile(path, false, false)
}

// OpenFile opens path; create makes it if absent, trunc empties it.
func (m *Mount) OpenFile(path string, create, trunc bool) (*File, error) {
	m.lock()
	defer m.unlock()
	return m.openFileLocked(path, create, trunc)
}

func (m *Mount) openFileLocked(path string, create, trunc bool) (*File, error) {
	m.chargeSyscall()
	defer m.maintain()
	path = keys.Clean(path)
	ino, err := m.walk(path)
	if err == ErrNotExist && create {
		parentPath, name := keys.ParentAndName(path)
		parent, perr := m.walk(parentPath)
		if perr != nil {
			return nil, perr
		}
		if gerr := m.writeGate(); gerr != nil {
			return nil, gerr
		}
		m.stats.Creates++
		m.m.create.Inc()
		m.env.Trace("vfs", "create", path, 0)
		h, attr, cerr := m.fs.Create(parent.h, name, false)
		if cerr != nil {
			return nil, cerr
		}
		ino = m.internInode(h, path, attr)
		m.markInodeDirty(ino)
		m.dcache[path] = &dentry{ino: ino}
		m.markInodeDirty(parent)
	} else if err != nil {
		return nil, err
	}
	if ino.attr.Dir {
		return nil, ErrIsDir
	}
	f := &File{m: m, ino: ino}
	if trunc && ino.attr.Size > 0 {
		if terr := f.truncateLocked(0); terr != nil {
			return nil, terr
		}
	}
	return f, nil
}

// Size returns the current file size.
func (f *File) Size() int64 {
	f.m.lock()
	defer f.m.unlock()
	return f.ino.attr.Size
}

// Path returns the file's current path.
func (f *File) Path() string {
	f.m.lock()
	defer f.m.unlock()
	return f.ino.path
}

// Truncate resizes the file to size (only shrinking discards data).
func (f *File) Truncate(size int64) error {
	f.m.lock()
	defer f.m.unlock()
	return f.truncateLocked(size)
}

func (f *File) truncateLocked(size int64) error {
	m := f.m
	m.chargeSyscall()
	if err := m.writeGate(); err != nil {
		return err
	}
	if size < f.ino.attr.Size {
		fromBlk := (size + PageSize - 1) / PageSize
		for blk, pg := range f.ino.pages {
			if blk >= fromBlk {
				m.forgetPage(pg)
				delete(f.ino.pages, blk)
			}
		}
		if err := m.fs.TruncateBlocks(f.ino.h, fromBlk); err != nil {
			return err
		}
		// Zero the tail of the new EOF block so a later extension past
		// it reads zeros, not stale bytes (as the kernel does at
		// truncate time).
		if po := int(size % PageSize); po != 0 {
			blk := size / PageSize
			pg, ok := f.ino.pages[blk]
			if !ok {
				pg = m.newPage(f.ino, blk)
				if err := m.fs.ReadBlocks(f.ino.h, blk, []*Page{pg}, false); err != nil {
					m.forgetPage(pg)
					delete(f.ino.pages, blk)
					return err
				}
			} else {
				pg = m.cowIfPinned(f.ino, blk, pg, false)
			}
			for i := po; i < PageSize; i++ {
				pg.Data[i] = 0
			}
			m.dirtyPage(pg)
		}
	}
	f.ino.attr.Size = size
	m.markInodeDirty(f.ino)
	return nil
}

// Write appends at the cursor.
func (f *File) Write(p []byte) (int, error) {
	f.m.lock()
	defer f.m.unlock()
	n, err := f.writeAtLocked(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Read reads from the cursor.
func (f *File) Read(p []byte) (int, error) {
	f.m.lock()
	defer f.m.unlock()
	n, err := f.readAtLocked(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Seek sets the cursor (whence 0 = absolute, 1 = relative, 2 = from end)
// and returns the new position.
func (f *File) Seek(off int64, whence int) (int64, error) {
	f.m.lock()
	defer f.m.unlock()
	switch whence {
	case 1:
		f.pos += off
	case 2:
		f.pos = f.ino.attr.Size + off
	default:
		f.pos = off
	}
	return f.pos, nil
}

// WriteAt writes p at offset off, through the page cache. Full-page
// overwrites never read; sub-page writes to uncached blocks either use the
// FS's blind-write path (WODs, §2.1) or fall back to read-modify-write.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.m.lock()
	defer f.m.unlock()
	return f.writeAtLocked(p, off)
}

func (f *File) writeAtLocked(p []byte, off int64) (int, error) {
	m := f.m
	m.chargeSyscall()
	defer m.maintain()
	opStart := m.env.Now()
	defer func() { m.m.writeNs.Observe(int64(m.env.Now() - opStart)) }()
	if err := m.writeGate(); err != nil {
		return 0, err
	}
	ino := f.ino
	m.stats.WriteBytes += int64(len(p))
	m.m.bytesWrite.Add(int64(len(p)))
	rest := p
	pos := off
	written := 0
	for len(rest) > 0 {
		blk := pos / PageSize
		po := int(pos % PageSize)
		n := PageSize - po
		if n > len(rest) {
			n = len(rest)
		}
		chunk := rest[:n]
		m.env.Charge(m.env.Costs.PageCacheOp)
		pg, cached := ino.pages[blk]
		switch {
		case cached:
			pg = m.cowIfPinned(ino, blk, pg, po == 0 && n == PageSize)
			m.env.Memcpy(n)
			copy(pg.Data[po:po+n], chunk)
			m.dirtyPage(pg)
		case po == 0 && (n == PageSize || pos+int64(n) >= ino.attr.Size):
			// Full overwrite of the block (or write reaching EOF):
			// no read needed.
			pg = m.newPage(ino, blk)
			m.env.Memcpy(n)
			copy(pg.Data[:n], chunk)
			m.dirtyPage(pg)
		case m.fs.SupportsBlindWrites():
			// Sub-page write to an uncached block: blind update, no
			// page instantiated (§2.1 blind writes).
			m.stats.BlindWrites++
			m.m.writeBlind.Inc()
			m.env.Memcpy(n)
			if err := m.fs.WritePartial(ino.h, blk, po, chunk, false); err != nil {
				return f.finishWrite(written, pos, err)
			}
		default:
			// Read-modify-write, the update-in-place path.
			m.stats.RMWReads++
			m.m.writeRMW.Inc()
			pg = m.newPage(ino, blk)
			if err := m.fs.ReadBlocks(ino.h, blk, []*Page{pg}, false); err != nil {
				m.forgetPage(pg)
				delete(ino.pages, blk)
				return f.finishWrite(written, pos, err)
			}
			m.stats.PagesRead++
			m.m.pageRead.Inc()
			m.env.Memcpy(n)
			copy(pg.Data[po:po+n], chunk)
			m.dirtyPage(pg)
		}
		rest = rest[n:]
		pos += int64(n)
		written += n
	}
	if _, err := f.finishWrite(written, pos, nil); err != nil {
		return written, err
	}
	m.balanceDirty()
	return len(p), nil
}

// finishWrite records how far a (possibly short) write got: the size
// grows to cover every byte actually written, the inode goes dirty
// (mtime), and the causing error passes through.
func (f *File) finishWrite(written int, pos int64, err error) (int, error) {
	if pos > f.ino.attr.Size {
		f.ino.attr.Size = pos
	}
	f.m.markInodeDirty(f.ino)
	return written, err
}

// ReadAt reads into p from offset off through the page cache with
// sequential read-ahead.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.m.lock()
	defer f.m.unlock()
	return f.readAtLocked(p, off)
}

func (f *File) readAtLocked(p []byte, off int64) (int, error) {
	m := f.m
	m.chargeSyscall()
	defer m.maintain()
	opStart := m.env.Now()
	read := 0
	defer func() {
		m.m.readNs.Observe(int64(m.env.Now() - opStart))
		m.m.bytesRead.Add(int64(read))
	}()
	ino := f.ino
	if off >= ino.attr.Size {
		return 0, nil
	}
	if max := ino.attr.Size - off; int64(len(p)) > max {
		p = p[:max]
	}
	seq := off == f.lastReadEnd && off > 0 || (off == 0 && f.lastReadEnd == 0)
	if seq {
		if f.raPages == 0 {
			f.raPages = 4
		} else if f.raPages < m.cfg.ReadAheadMaxPages {
			f.raPages *= 2
			if f.raPages > m.cfg.ReadAheadMaxPages {
				f.raPages = m.cfg.ReadAheadMaxPages
			}
		}
	} else {
		f.raPages = 0
	}
	pos := off
	for read < len(p) {
		blk := pos / PageSize
		po := int(pos % PageSize)
		n := PageSize - po
		if n > len(p)-read {
			n = len(p) - read
		}
		m.env.Charge(m.env.Costs.PageCacheOp)
		pg, ok := ino.pages[blk]
		if !ok {
			var ferr error
			pg, ferr = m.fillPages(ino, blk, seq, f.raPages)
			if ferr != nil {
				return read, ferr
			}
		} else {
			m.touchPage(pg)
		}
		m.env.Memcpy(n)
		copy(p[read:read+n], pg.Data[po:po+n])
		read += n
		pos += int64(n)
	}
	f.lastReadEnd = off + int64(read)
	return read, nil
}

// fillPages reads block blk (plus read-ahead) from the FS and returns
// blk's page. On a read failure every just-instantiated page is dropped
// from the cache — a later retry must hit the FS again, not garbage.
func (m *Mount) fillPages(ino *inode, blk int64, seq bool, raPages int) (*Page, error) {
	lastBlk := (ino.attr.Size + PageSize - 1) / PageSize
	count := 1
	if seq && raPages > 1 {
		count = raPages
	}
	if blk+int64(count) > lastBlk {
		count = int(lastBlk - blk)
		if count < 1 {
			count = 1
		}
	}
	var pages []*Page
	var blks []int64
	for i := 0; i < count; i++ {
		b := blk + int64(i)
		if _, ok := ino.pages[b]; ok && i > 0 {
			break // read-ahead ran into cached territory
		}
		if i > 0 {
			m.env.Charge(m.env.Costs.PageCacheOp)
		}
		pg := m.newPage(ino, b)
		pages = append(pages, pg)
		blks = append(blks, b)
	}
	if err := m.fs.ReadBlocks(ino.h, blk, pages, seq); err != nil {
		for i, pg := range pages {
			m.forgetPage(pg)
			delete(ino.pages, blks[i])
		}
		return nil, err
	}
	m.stats.PagesRead += int64(len(pages))
	m.m.pageRead.Add(int64(len(pages)))
	for _, pg := range pages {
		m.trackClean(pg)
	}
	return pages[0], nil
}

// fsyncDurableMaxPages bounds how many dirty pages an fsync writes back
// through the payload-logged durable path; larger dirty sets go through
// normal write-back and the FS persists them wholesale (for BetrFS, a
// checkpoint — see the crash-semantics note in DESIGN.md).
const fsyncDurableMaxPages = 64

// Fsync writes back the file's dirty pages and metadata, then asks the FS
// for durability (§3.3, DESIGN.md). It returns the first failure from this
// pass or any latched background write-back error (errseq semantics: a
// latched error is reported by exactly one Fsync or Sync).
func (f *File) Fsync() error {
	f.m.lock()
	defer f.m.unlock()
	m := f.m
	m.chargeSyscall()
	m.stats.Fsyncs++
	m.m.fsync.Inc()
	opStart := m.env.Now()
	defer func() { m.m.fsyncNs.Observe(int64(m.env.Now() - opStart)) }()
	m.env.Trace("vfs", "fsync", f.ino.path, 0)
	dirty := 0
	for _, pg := range f.ino.pages {
		if pg.Dirty {
			dirty++
		}
	}
	m.writebackInodePages(f.ino, dirty <= fsyncDurableMaxPages)
	m.writebackInodeAttr(f.ino)
	err := m.fs.Fsync(f.ino.h)
	if err != nil {
		m.writebackError(err)
	}
	err = m.reportWbErr(nil)
	m.maintain()
	return err
}

// Close drops the descriptor (data remains cached; Close does not sync).
func (f *File) Close() {
	f.closed = true
}
