// Package vfs implements a user-space analog of the Linux VFS: path
// resolution over a dentry cache, an inode cache with dirty-inode
// write-back, a page cache with read-ahead and write-back watermarks, and
// a file-descriptor API that workloads program against.
//
// Every file system in this repository (BetrFS, extfs, logfs, cowfs)
// implements the FS interface below and is driven through a Mount. The
// VFS behaviours the paper modifies live here: opportunistic population of
// the dentry/inode caches from readdir (§4 DC), coherent nlink counters
// (§4), deferred inode write-back (§3.3 CL), blind sub-page writes (§2.1),
// page pinning with copy-on-write for page sharing (§6), and sequential
// read detection feeding FS-level read-ahead (§3.2).
package vfs

import (
	"errors"
	"time"

	"betrfs/internal/ioerr"
)

// PageSize is the VFS page and file-block size.
const PageSize = 4096

// Common error values. They mirror the POSIX errors the workloads expect.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	// ErrNotSupported is EOPNOTSUPP: the mounted FS does not implement the
	// requested optional interface (e.g. Scrubber on the simulated
	// baselines).
	ErrNotSupported = errors.New("vfs: operation not supported")
)

// Errno-style I/O errors, aliased from ioerr so workloads can classify
// against either package (DESIGN.md §10).
var (
	// ErrIO is EIO: a device command failed beneath the file system.
	ErrIO = ioerr.ErrIO
	// ErrNoSpace is ENOSPC: the FS allocator is exhausted. Deleting
	// files makes writes succeed again; it never degrades the mount.
	ErrNoSpace = ioerr.ErrNoSpace
	// ErrReadOnly is EROFS: the mount degraded to read-only after a
	// persistent write failure (errors=remount-ro).
	ErrReadOnly = ioerr.ErrReadOnly
)

// Handle is a file-system-specific node reference: BetrFS uses full paths,
// the inode-based file systems use inode numbers.
type Handle interface{}

// ScrubStats summarizes one online scrub (Mount.Scrub) pass.
type ScrubStats struct {
	Checked      int64 // on-disk structures verified
	Bad          int64 // structures whose verification failed
	Repaired     int64 // bad structures rewritten to fresh space (repair mode)
	Unrepairable int64 // bad structures with no recoverable copy
}

// Scrubber is the optional FS interface behind Mount.Scrub: verify every
// on-disk structure's checksums and, with repair set, relocate the bad
// ones that still have a recoverable copy (DESIGN.md §10.6). File systems
// that do not implement it surface ErrNotSupported from Mount.Scrub.
type Scrubber interface {
	Scrub(repair bool) (ScrubStats, error)
}

// Attr is the stat metadata of a file or directory.
type Attr struct {
	Dir   bool
	Size  int64
	Nlink int
	Mtime time.Duration
}

// DirEntry is one readdir result. FS implementations that support
// opportunistic inode instantiation (§4) fill Handle and Attr so the VFS
// can populate its caches without further lookups; others leave Handle
// nil.
type DirEntry struct {
	Name   string
	Dir    bool
	Handle Handle
	Attr   Attr
	Known  bool // Handle/Attr are valid
}

// Page is a page-cache page. FS implementations may pin pages (page
// sharing, §6): while pinned the contents are immutable and the VFS
// copies-on-write if the application writes again.
type Page struct {
	Data  []byte
	Dirty bool
	pins  int

	ino *inode
	blk int64
	// dirtiedAt is when the page last transitioned clean->dirty, for
	// dirty_expire-style write-back.
	dirtiedAt time.Duration
}

// Pin marks the page immutable-by-VFS; Release undoes it.
func (p *Page) Pin()     { p.pins++ }
func (p *Page) Release() { p.pins-- }

// Pinned reports whether any FS-side reference holds the page.
func (p *Page) Pinned() bool { return p.pins > 0 }

// FS is the interface a concrete file system exposes to the VFS.
type FS interface {
	// Root returns the handle of the root directory.
	Root() Handle
	// Lookup resolves name within parent.
	Lookup(parent Handle, name string) (Handle, Attr, error)
	// Create makes a file or directory. The returned attr is the
	// initial metadata.
	Create(parent Handle, name string, dir bool) (Handle, Attr, error)
	// Remove unlinks a file or removes an (empty, FS-checked) directory.
	Remove(parent Handle, name string, h Handle, dir bool) error
	// Rename moves h from oldParent/oldName to newParent/newName,
	// returning the (possibly new) handle.
	Rename(oldParent Handle, oldName string, h Handle, newParent Handle, newName string) (Handle, error)
	// ReadDir lists parent's direct children.
	ReadDir(h Handle) ([]DirEntry, error)
	// WriteAttr persists inode metadata (dirty-inode write-back).
	WriteAttr(h Handle, a Attr) error
	// ReadBlocks fills pages [blk, blk+len(pages)) of the file; seq
	// hints that the reads are part of a sequential run. On error the
	// page contents are undefined.
	ReadBlocks(h Handle, blk int64, pages []*Page, seq bool) error
	// WriteBlocks persists a contiguous run of file pages starting at
	// blk (write-back coalesces adjacent dirty pages into one call, as
	// bio merging does). durable marks an fsync-driven write-back. The
	// FS may Pin pages instead of copying them (page sharing).
	WriteBlocks(h Handle, blk int64, pgs []*Page, durable bool) error
	// WritePartial is a blind sub-page write (off, data within one
	// block) without a prior read; only WODs support it.
	WritePartial(h Handle, blk int64, off int, data []byte, durable bool) error
	// SupportsBlindWrites reports whether WritePartial is available.
	SupportsBlindWrites() bool
	// TruncateBlocks drops blocks at index >= fromBlk.
	TruncateBlocks(h Handle, fromBlk int64) error
	// Fsync makes h's previously written data and metadata durable.
	Fsync(h Handle) error
	// Sync makes the whole file system durable.
	Sync() error
	// Maintain gives the FS a chance to run background work
	// (checkpoints, segment cleaning, transaction-group commits); the
	// VFS calls it periodically from operation paths.
	Maintain()
	// DropCaches evicts the FS's internal clean caches (node caches,
	// metadata caches), used by cold-cache benchmarks.
	DropCaches()
}
