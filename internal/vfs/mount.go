package vfs

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"betrfs/internal/keys"
	"betrfs/internal/metrics"
	"betrfs/internal/sim"
)

// Config tunes the VFS caches; defaults model the paper's 32 GB testbed
// scaled down alongside the workloads.
type Config struct {
	// CacheBytes bounds the page cache.
	CacheBytes int64
	// DirtyRatio is the fraction of CacheBytes at which writers are
	// throttled into write-back (vm.dirty_ratio).
	DirtyRatio float64
	// DirtyExpire is how long a page or inode may stay dirty before
	// background write-back picks it up (dirty_expire_centisecs).
	DirtyExpire time.Duration
	// MaintainInterval is how often operation paths run background work.
	MaintainInterval time.Duration
	// ReadAheadMaxPages bounds the sequential read-ahead window.
	ReadAheadMaxPages int
	// ReaddirPopulatesCaches enables using Known directory entries to
	// instantiate dentries and inodes opportunistically (§4 DC). The FS
	// must also choose to return Known entries.
	ReaddirPopulatesCaches bool
	// Concurrent serializes every public Mount and File entry point
	// behind one mount-wide lock so multiple client goroutines can share
	// a mount (the betrbench -clients mode). The default (false) takes
	// no locks at all, keeping single-client simulations bit-identical
	// to historical results. The underlying FS must be prepared for
	// overlapping operations itself (the betree store's own Concurrent
	// mode); the big lock only protects VFS caches and accounting.
	Concurrent bool
}

// DefaultConfig returns the standard VFS configuration.
func DefaultConfig() Config {
	return Config{
		CacheBytes:             1 << 30,
		DirtyRatio:             0.20,
		DirtyExpire:            30 * time.Second,
		MaintainInterval:       time.Second,
		ReadAheadMaxPages:      64,
		ReaddirPopulatesCaches: true,
	}
}

// Stats counts VFS activity.
type Stats struct {
	Lookups       int64
	DcacheHits    int64
	FsLookups     int64
	Creates       int64
	Removes       int64
	Renames       int64
	ReadBytes     int64
	WriteBytes    int64
	PagesRead     int64
	PagesWritten  int64
	BlindWrites   int64
	RMWReads      int64 // read-modify-write fills for sub-page writes
	Fsyncs        int64
	PageEvictions int64
	CowCopies     int64
}

// inode is the VFS in-memory inode.
type inode struct {
	h          Handle
	path       string
	attr       Attr
	dirty      bool
	dirtySince time.Duration
	pages      map[int64]*Page
}

// dentry maps a path to an inode (or caches a negative lookup).
type dentry struct {
	ino *inode
	neg bool
}

// Mount is a mounted file system instance.
type Mount struct {
	env *sim.Env
	fs  FS
	cfg Config

	dcache map[string]*dentry
	icache map[Handle]*inode
	root   *inode

	// Page accounting: lru holds clean pages for eviction; dirty holds
	// dirty pages in dirtying order for write-back.
	lru        *list.List // of *Page
	lruEl      map[*Page]*list.Element
	dirty      *list.List // of *Page
	dirtyEl    map[*Page]*list.Element
	cleanBytes int64
	dirtyBytes int64

	dirtyInodes map[*inode]time.Duration

	lastMaintain time.Duration
	stats        Stats
	m            mountMetrics

	// Write-back error state (DESIGN.md §10). wbErr latches the first
	// unreported asynchronous write-back failure, Linux errseq-style: the
	// next Fsync or Sync returns it, then it clears. roErr latches the
	// EIO-class failure that degraded the mount read-only; it never
	// clears — remount (a fresh NewMount) is the only way back.
	wbErr error
	roErr error

	// clientMu is the mount big lock (cfg.Concurrent only): public entry
	// points lock it, unexported internals assume it is held. Lock order:
	// clientMu is taken strictly above every FS-internal lock (betree
	// store/node locks, WAL, device) and is never acquired twice on one
	// call path — public methods immediately delegate to *Locked
	// internals for any work a sibling entry point also needs.
	clientMu sync.Mutex
}

// lock acquires the mount big lock in concurrent mode; no-op otherwise.
func (m *Mount) lock() {
	if m.cfg.Concurrent {
		m.clientMu.Lock()
	}
}

func (m *Mount) unlock() {
	if m.cfg.Concurrent {
		m.clientMu.Unlock()
	}
}

// mountMetrics holds the VFS registry instruments, resolved at NewMount.
type mountMetrics struct {
	lookup     *metrics.Counter
	dcacheHit  *metrics.Counter
	fsLookup   *metrics.Counter
	create     *metrics.Counter
	remove     *metrics.Counter
	rename     *metrics.Counter
	readdir    *metrics.Counter
	stat       *metrics.Counter
	bytesRead  *metrics.Counter
	bytesWrite *metrics.Counter
	pageRead   *metrics.Counter
	pageWrite  *metrics.Counter
	pageEvict  *metrics.Counter
	writeBlind *metrics.Counter
	writeRMW   *metrics.Counter
	cowCopy    *metrics.Counter
	fsync      *metrics.Counter
	remountRO  *metrics.Counter
	readNs     *metrics.Histogram
	writeNs    *metrics.Histogram
	fsyncNs    *metrics.Histogram
}

func resolveMountMetrics(reg *metrics.Registry) mountMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return mountMetrics{
		lookup:     reg.Counter("vfs.lookup.count"),
		dcacheHit:  reg.Counter("vfs.dcache.hit"),
		fsLookup:   reg.Counter("vfs.lookup.fs"),
		create:     reg.Counter("vfs.create.count"),
		remove:     reg.Counter("vfs.remove.count"),
		rename:     reg.Counter("vfs.rename.count"),
		readdir:    reg.Counter("vfs.readdir.count"),
		stat:       reg.Counter("vfs.stat.count"),
		bytesRead:  reg.Counter("vfs.bytes.read"),
		bytesWrite: reg.Counter("vfs.bytes.written"),
		pageRead:   reg.Counter("vfs.page.read"),
		pageWrite:  reg.Counter("vfs.page.write"),
		pageEvict:  reg.Counter("vfs.page.evict"),
		writeBlind: reg.Counter("vfs.write.blind"),
		writeRMW:   reg.Counter("vfs.write.rmw"),
		cowCopy:    reg.Counter("vfs.page.cow"),
		fsync:      reg.Counter("vfs.fsync.count"),
		remountRO:  reg.Counter("vfs.remount.ro"),
		readNs:     reg.Histogram("vfs.read.ns", "ns"),
		writeNs:    reg.Histogram("vfs.write.ns", "ns"),
		fsyncNs:    reg.Histogram("vfs.fsync.ns", "ns"),
	}
}

// Mount wraps fs with the VFS caches.
func NewMount(env *sim.Env, fs FS, cfg Config) *Mount {
	m := &Mount{
		env:         env,
		fs:          fs,
		cfg:         cfg,
		dcache:      make(map[string]*dentry),
		icache:      make(map[Handle]*inode),
		lru:         list.New(),
		lruEl:       make(map[*Page]*list.Element),
		dirty:       list.New(),
		dirtyEl:     make(map[*Page]*list.Element),
		dirtyInodes: make(map[*inode]time.Duration),
	}
	m.m = resolveMountMetrics(env.Metrics)
	rootH := fs.Root()
	m.root = &inode{h: rootH, path: "", attr: Attr{Dir: true, Nlink: 2}, pages: map[int64]*Page{}}
	m.icache[rootH] = m.root
	m.dcache[""] = &dentry{ino: m.root}
	return m
}

// Stats returns VFS counters.
func (m *Mount) Stats() *Stats { return &m.stats }

// Degraded returns the write failure that flipped the mount read-only,
// or nil while the mount is healthy.
func (m *Mount) Degraded() error {
	m.lock()
	defer m.unlock()
	return m.roErr
}

// writebackError latches an asynchronous write failure so the next Fsync
// or Sync reports it (errseq semantics). An EIO-class failure additionally
// degrades the mount read-only: dirty state can no longer reliably reach
// the device, so accepting more writes would only grow the loss. ErrNoSpace
// never degrades — it is recoverable by deleting files.
func (m *Mount) writebackError(err error) {
	if err == nil {
		return
	}
	if m.wbErr == nil {
		m.wbErr = err
	}
	if m.roErr == nil && errors.Is(err, ErrIO) {
		m.roErr = err
		m.m.remountRO.Inc()
		m.env.Trace("vfs", "remount-ro", err.Error(), 0)
	}
}

// writeGate rejects namespace and data mutations on a degraded mount with
// EROFS, as the kernel does after errors=remount-ro trips.
func (m *Mount) writeGate() error {
	if m.roErr == nil {
		return nil
	}
	return fmt.Errorf("vfs: mount degraded after %v: %w", m.roErr, ErrReadOnly)
}

// reportWbErr folds the latched write-back error into an op's own result:
// the op error wins, otherwise the latched one is returned. Reporting
// clears the latch (the read-only latch, if set, stays).
func (m *Mount) reportWbErr(opErr error) error {
	if m.wbErr != nil {
		if opErr == nil {
			opErr = m.wbErr
		}
		m.wbErr = nil
	}
	return opErr
}

// FS returns the underlying file system.
func (m *Mount) FS() FS { return m.fs }

// --- path resolution --------------------------------------------------------

// walk resolves path to an inode, charging dentry-cache costs per
// component and falling back to FS lookups on misses.
func (m *Mount) walk(path string) (*inode, error) {
	m.stats.Lookups++
	m.m.lookup.Inc()
	path = keys.Clean(path)
	if d, ok := m.dcache[path]; ok {
		m.env.Charge(m.env.Costs.PathComponent)
		m.stats.DcacheHits++
		m.m.dcacheHit.Inc()
		if d.neg {
			return nil, ErrNotExist
		}
		return d.ino, nil
	}
	parts := keys.Split(path)
	cur := m.root
	walked := ""
	for _, part := range parts {
		m.env.Charge(m.env.Costs.PathComponent)
		if !cur.attr.Dir {
			return nil, ErrNotDir
		}
		walked = keys.Join(walked, part)
		if d, ok := m.dcache[walked]; ok {
			if d.neg {
				return nil, ErrNotExist
			}
			cur = d.ino
			continue
		}
		m.stats.FsLookups++
		m.m.fsLookup.Inc()
		h, attr, err := m.fs.Lookup(cur.h, part)
		if err != nil {
			if err == ErrNotExist {
				m.dcache[walked] = &dentry{neg: true}
			}
			return nil, err
		}
		child := m.internInode(h, walked, attr)
		m.dcache[walked] = &dentry{ino: child}
		cur = child
	}
	return cur, nil
}

// internInode returns the cached inode for h, creating it if needed.
func (m *Mount) internInode(h Handle, path string, attr Attr) *inode {
	if ino, ok := m.icache[h]; ok {
		return ino
	}
	ino := &inode{h: h, path: path, attr: attr, pages: map[int64]*Page{}}
	m.icache[h] = ino
	return ino
}

func (m *Mount) markInodeDirty(ino *inode) {
	ino.attr.Mtime = m.env.Now()
	if !ino.dirty {
		ino.dirty = true
		ino.dirtySince = m.env.Now()
		m.dirtyInodes[ino] = ino.dirtySince
	}
}

// --- namespace operations ---------------------------------------------------

// Mkdir creates a directory.
func (m *Mount) Mkdir(path string) error {
	m.lock()
	defer m.unlock()
	return m.mkdirLocked(path)
}

func (m *Mount) mkdirLocked(path string) error {
	m.chargeSyscall()
	defer m.maintain()
	if err := m.writeGate(); err != nil {
		return err
	}
	path = keys.Clean(path)
	parentPath, name := keys.ParentAndName(path)
	if name == "" {
		return ErrExist
	}
	parent, err := m.walk(parentPath)
	if err != nil {
		return err
	}
	if _, err := m.walk(path); err == nil {
		return ErrExist
	}
	m.stats.Creates++
	m.m.create.Inc()
	h, attr, err := m.fs.Create(parent.h, name, true)
	if err != nil {
		return err
	}
	ino := m.internInode(h, path, attr)
	m.markInodeDirty(ino)
	m.dcache[path] = &dentry{ino: ino}
	parent.attr.Nlink++
	m.markInodeDirty(parent)
	return nil
}

// MkdirAll creates path and any missing parents.
func (m *Mount) MkdirAll(path string) error {
	m.lock()
	defer m.unlock()
	parts := keys.Split(path)
	cur := ""
	for _, p := range parts {
		cur = keys.Join(cur, p)
		if err := m.mkdirLocked(cur); err != nil && err != ErrExist {
			return err
		}
	}
	return nil
}

// Remove unlinks the file at path.
func (m *Mount) Remove(path string) error {
	m.lock()
	defer m.unlock()
	return m.remove(path, false)
}

// Rmdir removes the (empty) directory at path.
func (m *Mount) Rmdir(path string) error {
	m.lock()
	defer m.unlock()
	return m.remove(path, true)
}

func (m *Mount) remove(path string, dir bool) error {
	m.chargeSyscall()
	defer m.maintain()
	if err := m.writeGate(); err != nil {
		return err
	}
	path = keys.Clean(path)
	ino, err := m.walk(path)
	if err != nil {
		return err
	}
	if ino.attr.Dir != dir {
		if dir {
			return ErrNotDir
		}
		return ErrIsDir
	}
	parentPath, name := keys.ParentAndName(path)
	parent, err := m.walk(parentPath)
	if err != nil {
		return err
	}
	m.stats.Removes++
	m.m.remove.Inc()
	if err := m.fs.Remove(parent.h, name, ino.h, dir); err != nil {
		return err
	}
	// Discard cached state: deleted data is never written back.
	m.dropInodePages(ino)
	delete(m.icache, ino.h)
	delete(m.dirtyInodes, ino)
	ino.dirty = false
	delete(m.dcache, path)
	if dir {
		parent.attr.Nlink--
	}
	m.markInodeDirty(parent)
	return nil
}

// RemoveAll recursively deletes path, mirroring rm -rf's bottom-up
// traversal through the VFS (§2.3): readdir each directory, recurse, then
// unlink children before the parent rmdir.
func (m *Mount) RemoveAll(path string) error {
	m.lock()
	defer m.unlock()
	return m.removeAllLocked(path)
}

func (m *Mount) removeAllLocked(path string) error {
	path = keys.Clean(path)
	ino, err := m.walk(path)
	if err != nil {
		if err == ErrNotExist {
			return nil
		}
		return err
	}
	if !ino.attr.Dir {
		return m.remove(path, false)
	}
	entries, err := m.readDirLocked(path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := m.removeAllLocked(keys.Join(path, e.Name)); err != nil {
			return err
		}
	}
	return m.remove(path, true)
}

// ReadDir lists the directory at path, opportunistically instantiating
// child dentries and inodes when the FS provides them (§4 DC).
func (m *Mount) ReadDir(path string) ([]DirEntry, error) {
	m.lock()
	defer m.unlock()
	return m.readDirLocked(path)
}

func (m *Mount) readDirLocked(path string) ([]DirEntry, error) {
	m.chargeSyscall()
	defer m.maintain()
	path = keys.Clean(path)
	ino, err := m.walk(path)
	if err != nil {
		return nil, err
	}
	if !ino.attr.Dir {
		return nil, ErrNotDir
	}
	m.m.readdir.Inc()
	entries, err := m.fs.ReadDir(ino.h)
	if err != nil {
		return nil, err
	}
	if m.cfg.ReaddirPopulatesCaches {
		for _, e := range entries {
			if !e.Known {
				continue
			}
			childPath := keys.Join(path, e.Name)
			if _, ok := m.dcache[childPath]; ok {
				continue
			}
			child := m.internInode(e.Handle, childPath, e.Attr)
			m.dcache[childPath] = &dentry{ino: child}
			m.env.Charge(m.env.Costs.PathComponent) // dcache insert
		}
	}
	return entries, nil
}

// Rename moves oldPath to newPath (replacing a non-directory target).
func (m *Mount) Rename(oldPath, newPath string) error {
	m.lock()
	defer m.unlock()
	m.chargeSyscall()
	defer m.maintain()
	if err := m.writeGate(); err != nil {
		return err
	}
	oldPath = keys.Clean(oldPath)
	newPath = keys.Clean(newPath)
	ino, err := m.walk(oldPath)
	if err != nil {
		return err
	}
	if target, err := m.walk(newPath); err == nil {
		if target.attr.Dir {
			return ErrExist
		}
		if err := m.remove(newPath, false); err != nil {
			return err
		}
	}
	oldParentPath, oldName := keys.ParentAndName(oldPath)
	newParentPath, newName := keys.ParentAndName(newPath)
	oldParent, err := m.walk(oldParentPath)
	if err != nil {
		return err
	}
	newParent, err := m.walk(newParentPath)
	if err != nil {
		return err
	}
	m.stats.Renames++
	m.m.rename.Inc()
	if ino.attr.Dir {
		// Directory renames change descendant handles in path-indexed
		// file systems: write back and drop everything beneath.
		m.writebackSubtree(oldPath)
		m.dropSubtreeCaches(oldPath)
	}
	newH, err := m.fs.Rename(oldParent.h, oldName, ino.h, newParent.h, newName)
	if err != nil {
		return err
	}
	delete(m.dcache, oldPath)
	delete(m.icache, ino.h)
	ino.h = newH
	ino.path = newPath
	m.icache[newH] = ino
	m.dcache[newPath] = &dentry{ino: ino}
	if ino.attr.Dir {
		oldParent.attr.Nlink--
		newParent.attr.Nlink++
	}
	m.markInodeDirty(oldParent)
	m.markInodeDirty(newParent)
	return nil
}

// Stat returns metadata for path.
func (m *Mount) Stat(path string) (Attr, error) {
	m.lock()
	defer m.unlock()
	m.chargeSyscall()
	defer m.maintain()
	m.m.stat.Inc()
	ino, err := m.walk(path)
	if err != nil {
		return Attr{}, err
	}
	return ino.attr, nil
}

// Sync writes back all dirty state and asks the FS to persist everything.
// It returns the first failure from this pass or from earlier background
// write-back (errseq: each latched error is reported exactly once).
func (m *Mount) Sync() error {
	m.lock()
	defer m.unlock()
	return m.syncLocked()
}

func (m *Mount) syncLocked() error {
	m.chargeSyscall()
	m.writebackAll(false)
	if err := m.fs.Sync(); err != nil {
		m.writebackError(err)
	}
	return m.reportWbErr(nil)
}

// Scrub verifies every on-disk structure of the mounted FS and, with
// repair set, relocates what can be recovered (see the Scrubber
// interface). Dirty state is written back first so the scrub sees — and
// repair mode preserves — the mount's current contents; the results of a
// repair pass are durable when Scrub returns. File systems without scrub
// support return ErrNotSupported.
func (m *Mount) Scrub(repair bool) (ScrubStats, error) {
	m.lock()
	defer m.unlock()
	sc, ok := m.fs.(Scrubber)
	if !ok {
		return ScrubStats{}, ErrNotSupported
	}
	m.chargeSyscall()
	if repair {
		if err := m.syncLocked(); err != nil {
			return ScrubStats{}, err
		}
	}
	return sc.Scrub(repair)
}

// Writeback pushes every dirty page and inode attribute to the file
// system without a durability barrier — the state the device sees when
// background writeback has run but no flush was issued. Crash-test
// harnesses call this before cutting power so the unflushed-write
// stream contains the interesting in-flight writes.
func (m *Mount) Writeback() {
	m.lock()
	defer m.unlock()
	m.writebackAll(false)
}

// DropCaches writes back dirty state and then empties the page, dentry,
// and inode caches plus the FS's own caches — the echo 3 >
// /proc/sys/vm/drop_caches step cold-cache benchmarks perform.
func (m *Mount) DropCaches() {
	m.lock()
	defer m.unlock()
	// Best effort: a sync failure is latched for the next Fsync/Sync to
	// report; dropping caches proceeds regardless (the dirty data the
	// failed pass could not persist has already been dropped-with-count).
	if err := m.syncLocked(); err != nil {
		m.writebackError(err)
	}
	for h, ino := range m.icache {
		m.dropInodePages(ino)
		if ino != m.root {
			delete(m.icache, h)
		}
	}
	m.dcache = map[string]*dentry{"": {ino: m.root}}
	m.dirtyInodes = make(map[*inode]time.Duration)
	m.fs.DropCaches()
}

func (m *Mount) chargeSyscall() {
	m.env.Charge(m.env.Costs.Syscall)
}

// writebackSubtree flushes dirty pages and inodes under prefix, in path
// order (icache is a map; write-back order is charge-visible).
func (m *Mount) writebackSubtree(prefix string) {
	var inos []*inode
	for _, ino := range m.icache {
		if ino.path == prefix || strings.HasPrefix(ino.path, prefix+"/") {
			inos = append(inos, ino)
		}
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i].path < inos[j].path })
	for _, ino := range inos {
		m.writebackInodePages(ino, false)
		m.writebackInodeAttr(ino)
	}
}

// dropSubtreeCaches discards dentries and inodes under prefix (must be
// clean).
func (m *Mount) dropSubtreeCaches(prefix string) {
	for p := range m.dcache {
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			delete(m.dcache, p)
		}
	}
	for h, ino := range m.icache {
		if ino.path == prefix || strings.HasPrefix(ino.path, prefix+"/") {
			m.dropInodePages(ino)
			delete(m.icache, h)
			delete(m.dirtyInodes, ino)
		}
	}
}
