package vfs

import "sort"

// Page-cache accounting and write-back: dirty pages age out after
// DirtyExpire or are flushed when writers cross the dirty watermark
// (balance_dirty_pages); clean pages are evicted LRU under memory
// pressure. Dirty inodes are written back alongside their pages, which is
// when BetrFS's conditional logging finally inserts deferred inode-create
// messages into the tree (§3.3).

// newPage allocates a page-cache page for (ino, blk), replacing any
// existing entry.
func (m *Mount) newPage(ino *inode, blk int64) *Page {
	if old, ok := ino.pages[blk]; ok {
		m.forgetPage(old)
	}
	pg := &Page{Data: make([]byte, PageSize), ino: ino, blk: blk}
	ino.pages[blk] = pg
	return pg
}

// cowIfPinned returns a writable page for (ino, blk): if the FS holds a
// reference to the current page (page sharing, §6), a fresh page replaces
// it in the cache — copying the old contents unless the write fully
// overwrites the block — and the pinned page remains immutable, owned by
// the FS.
func (m *Mount) cowIfPinned(ino *inode, blk int64, pg *Page, fullOverwrite bool) *Page {
	if !pg.Pinned() {
		m.touchPage(pg)
		return pg
	}
	m.stats.CowCopies++
	m.m.cowCopy.Inc()
	m.forgetPage(pg)
	npg := &Page{Data: make([]byte, PageSize), ino: ino, blk: blk}
	if !fullOverwrite {
		m.env.Memcpy(PageSize)
		copy(npg.Data, pg.Data)
	}
	m.env.ChargeAlloc(m.env.Costs.KmallocBase)
	ino.pages[blk] = npg
	return npg
}

// dirtyPage moves a page onto the dirty list.
func (m *Mount) dirtyPage(pg *Page) {
	if pg.Dirty {
		return
	}
	if el, ok := m.lruEl[pg]; ok {
		m.lru.Remove(el)
		delete(m.lruEl, pg)
		m.cleanBytes -= PageSize
	}
	pg.Dirty = true
	pg.dirtiedAt = m.env.Now()
	m.dirtyEl[pg] = m.dirty.PushBack(pg)
	m.dirtyBytes += PageSize
}

// trackClean registers a clean page for LRU eviction.
func (m *Mount) trackClean(pg *Page) {
	if pg.Dirty {
		return
	}
	if _, ok := m.lruEl[pg]; ok {
		return
	}
	m.lruEl[pg] = m.lru.PushFront(pg)
	m.cleanBytes += PageSize
	m.evictClean()
}

// touchPage refreshes LRU position.
func (m *Mount) touchPage(pg *Page) {
	if el, ok := m.lruEl[pg]; ok {
		m.lru.MoveToFront(el)
	}
}

// forgetPage removes a page from all accounting (deleted or replaced).
func (m *Mount) forgetPage(pg *Page) {
	if el, ok := m.lruEl[pg]; ok {
		m.lru.Remove(el)
		delete(m.lruEl, pg)
		m.cleanBytes -= PageSize
	}
	if el, ok := m.dirtyEl[pg]; ok {
		m.dirty.Remove(el)
		delete(m.dirtyEl, pg)
		m.dirtyBytes -= PageSize
		pg.Dirty = false
	}
}

// dropInodePages discards all of an inode's pages (file deleted).
func (m *Mount) dropInodePages(ino *inode) {
	for blk, pg := range ino.pages {
		m.forgetPage(pg)
		delete(ino.pages, blk)
	}
}

// maxWritebackRun caps one coalesced write-back I/O (1 MiB).
const maxWritebackRun = 256

// writebackPage sends the maximal contiguous dirty run around one page to
// the FS in a single call (bio merging); the pages stay cached clean
// (possibly pinned by the FS under page sharing).
func (m *Mount) writebackPage(pg *Page, durable bool) {
	if !pg.Dirty {
		return
	}
	ino := pg.ino
	start := pg.blk
	for start > 0 {
		prev, ok := ino.pages[start-1]
		if !ok || !prev.Dirty || pg.blk-start >= maxWritebackRun/2 {
			break
		}
		start--
	}
	var run []*Page
	for b := start; len(run) < maxWritebackRun; b++ {
		p, ok := ino.pages[b]
		if !ok || !p.Dirty {
			break
		}
		run = append(run, p)
	}
	m.writebackRun(ino, start, run, durable)
}

// writebackRun writes one contiguous run of dirty pages. On failure the
// pages are still marked clean — as the kernel does after a failed
// write-back — so the dirty lists always drain and the balance/maintain
// loops terminate; the error is latched for the next Fsync/Sync (and, for
// EIO, degrades the mount read-only). The data stays readable from cache.
func (m *Mount) writebackRun(ino *inode, blk int64, run []*Page, durable bool) {
	for _, p := range run {
		m.forgetPage(p)
	}
	err := m.fs.WriteBlocks(ino.h, blk, run, durable)
	m.stats.PagesWritten += int64(len(run))
	m.m.pageWrite.Add(int64(len(run)))
	for _, p := range run {
		m.trackClean(p)
	}
	if err != nil {
		m.writebackError(err)
	}
}

// writebackInodePages flushes all dirty pages of one inode in block order,
// coalescing contiguous runs into single FS calls.
func (m *Mount) writebackInodePages(ino *inode, durable bool) {
	var blks []int64
	for blk, pg := range ino.pages {
		if pg.Dirty {
			blks = append(blks, blk)
		}
	}
	sortInt64s(blks)
	i := 0
	for i < len(blks) {
		j := i + 1
		for j < len(blks) && blks[j] == blks[j-1]+1 && j-i < maxWritebackRun {
			j++
		}
		run := make([]*Page, 0, j-i)
		for _, b := range blks[i:j] {
			run = append(run, ino.pages[b])
		}
		m.writebackRun(ino, blks[i], run, durable)
		i = j
	}
}

// writebackInodeAttr persists dirty inode metadata. Failures latch like
// page write-back failures, and the inode is still marked clean so the
// dirty-inode set drains (the attribute stays correct in the icache).
func (m *Mount) writebackInodeAttr(ino *inode) {
	if !ino.dirty {
		return
	}
	if err := m.fs.WriteAttr(ino.h, ino.attr); err != nil {
		m.writebackError(err)
	}
	ino.dirty = false
	delete(m.dirtyInodes, ino)
}

// balanceDirty throttles writers: above the dirty watermark, the oldest
// dirty pages are written back until the count drops to half the
// watermark.
func (m *Mount) balanceDirty() {
	high := int64(float64(m.cfg.CacheBytes) * m.cfg.DirtyRatio)
	if m.dirtyBytes <= high {
		return
	}
	low := high / 2
	for m.dirtyBytes > low {
		el := m.dirty.Front()
		if el == nil {
			break
		}
		m.writebackPage(el.Value.(*Page), false)
	}
}

// evictClean drops cold clean pages when the cache exceeds its budget.
func (m *Mount) evictClean() {
	for m.cleanBytes+m.dirtyBytes > m.cfg.CacheBytes {
		el := m.lru.Back()
		if el == nil {
			return
		}
		pg := el.Value.(*Page)
		m.forgetPage(pg)
		delete(pg.ino.pages, pg.blk)
		m.stats.PageEvictions++
		m.m.pageEvict.Inc()
	}
}

// maintain runs periodic background work from operation paths: expired
// dirty pages and inodes are written back and the FS gets a maintenance
// tick (checkpoint timers, segment cleaning, txg commits).
func (m *Mount) maintain() {
	now := m.env.Now()
	if now-m.lastMaintain < m.cfg.MaintainInterval {
		return
	}
	m.lastMaintain = now
	// Expired dirty pages (dirty_expire_centisecs): the dirty list is in
	// dirtying order, so flush from the front while pages are past due.
	for el := m.dirty.Front(); el != nil; el = m.dirty.Front() {
		pg := el.Value.(*Page)
		if now-pg.dirtiedAt < m.cfg.DirtyExpire {
			break
		}
		m.writebackPage(pg, false)
	}
	for _, ino := range m.sortedDirtyInodes() {
		if now-m.dirtyInodes[ino] >= m.cfg.DirtyExpire {
			m.writebackInodePages(ino, false)
			m.writebackInodeAttr(ino)
		}
	}
	m.fs.Maintain()
}

// sortedDirtyInodes snapshots the dirty-inode set in path order. The map
// is keyed by pointer, so ranging it directly would write inodes back in
// a different order every run — and write-back order is charge-visible
// (it decides FS write ordering and therefore simulated seek costs).
func (m *Mount) sortedDirtyInodes() []*inode {
	out := make([]*inode, 0, len(m.dirtyInodes))
	for ino := range m.dirtyInodes {
		out = append(out, ino)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// writebackAll flushes every dirty page and inode.
func (m *Mount) writebackAll(durable bool) {
	for m.dirty.Front() != nil {
		m.writebackPage(m.dirty.Front().Value.(*Page), durable)
	}
	for _, ino := range m.sortedDirtyInodes() {
		m.writebackInodeAttr(ino)
	}
}

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
