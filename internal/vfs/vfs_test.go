package vfs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"betrfs/internal/sim"
)

// memFS is a trivial in-memory FS used to test the VFS layer in isolation.
type memFS struct {
	env     *sim.Env
	nodes   map[int]*memNode
	nextIno int

	blocksWritten   int64
	writeCalls      int64
	partialWrites   int64
	readCalls       int64
	attrWrites      int64
	fsyncs          int64
	maintains       int64
	blind           bool
	lastWriteRunLen int
}

type memNode struct {
	dir      bool
	size     int64
	children map[string]int
	blocks   map[int64][]byte
}

func newMemFS(env *sim.Env) *memFS {
	fs := &memFS{env: env, nodes: map[int]*memNode{}, nextIno: 2}
	fs.nodes[1] = &memNode{dir: true, children: map[string]int{}}
	return fs
}

func (f *memFS) Root() Handle { return 1 }

func (f *memFS) Lookup(parent Handle, name string) (Handle, Attr, error) {
	p := f.nodes[parent.(int)]
	ino, ok := p.children[name]
	if !ok {
		return nil, Attr{}, ErrNotExist
	}
	n := f.nodes[ino]
	return ino, Attr{Dir: n.dir, Size: n.size, Nlink: 1}, nil
}

func (f *memFS) Create(parent Handle, name string, dir bool) (Handle, Attr, error) {
	p := f.nodes[parent.(int)]
	if _, ok := p.children[name]; ok {
		return nil, Attr{}, ErrExist
	}
	ino := f.nextIno
	f.nextIno++
	n := &memNode{dir: dir, blocks: map[int64][]byte{}}
	if dir {
		n.children = map[string]int{}
	}
	f.nodes[ino] = n
	p.children[name] = ino
	return ino, Attr{Dir: dir, Nlink: 1}, nil
}

func (f *memFS) Remove(parent Handle, name string, h Handle, dir bool) error {
	p := f.nodes[parent.(int)]
	ino, ok := p.children[name]
	if !ok {
		return ErrNotExist
	}
	if dir && len(f.nodes[ino].children) > 0 {
		return ErrNotEmpty
	}
	delete(p.children, name)
	delete(f.nodes, ino)
	return nil
}

func (f *memFS) Rename(op Handle, on string, h Handle, np Handle, nn string) (Handle, error) {
	o := f.nodes[op.(int)]
	n := f.nodes[np.(int)]
	ino, ok := o.children[on]
	if !ok {
		return nil, ErrNotExist
	}
	delete(o.children, on)
	n.children[nn] = ino
	return ino, nil
}

func (f *memFS) ReadDir(h Handle) ([]DirEntry, error) {
	n := f.nodes[h.(int)]
	var out []DirEntry
	for name, ino := range n.children {
		out = append(out, DirEntry{Name: name, Dir: f.nodes[ino].dir})
	}
	return out, nil
}

func (f *memFS) WriteAttr(h Handle, a Attr) error {
	f.attrWrites++
	f.nodes[h.(int)].size = a.Size
	return nil
}

func (f *memFS) ReadBlocks(h Handle, blk int64, pages []*Page, seq bool) error {
	f.readCalls++
	n := f.nodes[h.(int)]
	for i, pg := range pages {
		if b, ok := n.blocks[blk+int64(i)]; ok {
			copy(pg.Data, b)
		} else {
			for j := range pg.Data {
				pg.Data[j] = 0
			}
		}
	}
	return nil
}

func (f *memFS) WriteBlocks(h Handle, blk int64, pgs []*Page, durable bool) error {
	f.writeCalls++
	f.lastWriteRunLen = len(pgs)
	n := f.nodes[h.(int)]
	for i, pg := range pgs {
		n.blocks[blk+int64(i)] = append([]byte{}, pg.Data...)
		f.blocksWritten++
	}
	return nil
}

func (f *memFS) WritePartial(h Handle, blk int64, off int, data []byte, durable bool) error {
	f.partialWrites++
	n := f.nodes[h.(int)]
	b, ok := n.blocks[blk]
	if !ok {
		b = make([]byte, PageSize)
	}
	copy(b[off:], data)
	n.blocks[blk] = b
	return nil
}

func (f *memFS) SupportsBlindWrites() bool { return f.blind }
func (f *memFS) TruncateBlocks(h Handle, fromBlk int64) error {
	n := f.nodes[h.(int)]
	for b := range n.blocks {
		if b >= fromBlk {
			delete(n.blocks, b)
		}
	}
	return nil
}
func (f *memFS) Fsync(h Handle) error { f.fsyncs++; return nil }
func (f *memFS) Sync() error          { return nil }
func (f *memFS) Maintain()            { f.maintains++ }
func (f *memFS) DropCaches()          {}

func newTestMount(t testing.TB, mutate func(*Config)) (*sim.Env, *memFS, *Mount) {
	t.Helper()
	env := sim.NewEnv(1)
	fs := newMemFS(env)
	cfg := DefaultConfig()
	cfg.CacheBytes = 1 << 20 // small cache: exercise eviction
	if mutate != nil {
		mutate(&cfg)
	}
	return env, fs, NewMount(env, fs, cfg)
}

func TestDcacheAvoidsRepeatLookups(t *testing.T) {
	_, fs, m := newTestMount(t, nil)
	m.MkdirAll("a/b")
	f, _ := m.Create("a/b/c")
	f.Close()
	before := m.Stats().FsLookups
	for i := 0; i < 10; i++ {
		if _, err := m.Stat("a/b/c"); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().FsLookups != before {
		t.Fatalf("dcache missed: %d extra FS lookups", m.Stats().FsLookups-before)
	}
	_ = fs
}

func TestNegativeDentry(t *testing.T) {
	_, _, m := newTestMount(t, nil)
	m.Stat("ghost")
	before := m.Stats().FsLookups
	m.Stat("ghost")
	if m.Stats().FsLookups != before {
		t.Fatal("negative dentry not cached")
	}
	// Creating the file must invalidate the negative entry.
	f, err := m.Create("ghost")
	if err != nil {
		t.Fatalf("create over negative dentry: %v", err)
	}
	f.Close()
	if _, err := m.Stat("ghost"); err != nil {
		t.Fatalf("stat after create: %v", err)
	}
}

func TestWritebackCoalescesRuns(t *testing.T) {
	_, fs, m := newTestMount(t, func(c *Config) { c.CacheBytes = 64 << 20 })
	f, _ := m.Create("big")
	f.Write(make([]byte, 128*PageSize))
	f.Fsync()
	if fs.writeCalls == 0 {
		t.Fatal("no writes issued")
	}
	perCall := float64(fs.blocksWritten) / float64(fs.writeCalls)
	if perCall < 32 {
		t.Fatalf("writeback not coalescing: %.1f blocks/call", perCall)
	}
}

func TestDirtyWatermarkThrottlesWriters(t *testing.T) {
	_, fs, m := newTestMount(t, func(c *Config) {
		c.CacheBytes = 1 << 20
		c.DirtyRatio = 0.25 // 256KiB watermark
	})
	f, _ := m.Create("f")
	f.Write(make([]byte, 2<<20)) // far beyond the watermark
	if fs.blocksWritten == 0 {
		t.Fatal("balanceDirty never wrote back")
	}
}

func TestCleanPageEviction(t *testing.T) {
	_, _, m := newTestMount(t, func(c *Config) { c.CacheBytes = 256 << 10 })
	f, _ := m.Create("f")
	f.Write(make([]byte, 1<<20))
	f.Fsync()
	buf := make([]byte, PageSize)
	for i := 0; i < 256; i++ {
		f.ReadAt(buf, int64(i)*PageSize)
	}
	if m.Stats().PageEvictions == 0 {
		t.Fatal("page cache never evicted despite tiny budget")
	}
}

func TestBlindWriteRouting(t *testing.T) {
	_, fs, m := newTestMount(t, nil)
	fs.blind = true
	f, _ := m.Create("f")
	f.Write(make([]byte, 4*PageSize))
	f.Fsync()
	m.DropCaches()
	g, _ := m.Open("f")
	g.WriteAt([]byte{1, 2, 3}, 100)
	if fs.partialWrites != 1 {
		t.Fatalf("expected 1 blind partial write, got %d", fs.partialWrites)
	}
	// Cached page: patch in place instead.
	g.ReadAt(make([]byte, PageSize), 2*PageSize)
	g.WriteAt([]byte{9}, 2*PageSize+5)
	if fs.partialWrites != 1 {
		t.Fatal("cached sub-page write should not be blind")
	}
}

func TestRMWFallback(t *testing.T) {
	_, fs, m := newTestMount(t, nil)
	fs.blind = false
	f, _ := m.Create("f")
	f.Write(make([]byte, 2*PageSize))
	f.Fsync()
	m.DropCaches()
	g, _ := m.Open("f")
	before := m.Stats().RMWReads
	g.WriteAt([]byte{1}, 10)
	if m.Stats().RMWReads != before+1 {
		t.Fatal("sub-page write without blind support should read-modify-write")
	}
}

func TestInodeWritebackOnExpiry(t *testing.T) {
	env, fs, m := newTestMount(t, func(c *Config) {
		c.DirtyExpire = 10 * time.Second
		c.MaintainInterval = time.Second
	})
	f, _ := m.Create("f")
	f.Write([]byte("x"))
	f.Close()
	if fs.attrWrites != 0 {
		t.Fatal("inode written back too eagerly")
	}
	env.Charge(30 * time.Second)
	m.Stat("f") // any op triggers maintain
	if fs.attrWrites == 0 {
		t.Fatal("expired dirty inode never written back")
	}
}

func TestPinnedPageCopyOnWrite(t *testing.T) {
	_, fs, m := newTestMount(t, nil)
	f, _ := m.Create("f")
	f.Write(bytes.Repeat([]byte{1}, PageSize))
	// Simulate the FS pinning the page at writeback (page sharing).
	var pinned *Page
	for _, pg := range m.icache[2].pages {
		pinned = pg
	}
	m.writebackAll(false)
	pinned.Pin()
	old := pinned.Data[0]
	f.WriteAt([]byte{7}, 0)
	if pinned.Data[0] != old {
		t.Fatal("write mutated a pinned page (CoW violated)")
	}
	if m.Stats().CowCopies != 1 {
		t.Fatalf("CowCopies=%d, want 1", m.Stats().CowCopies)
	}
	_ = fs
}

func TestTruncateDiscardsData(t *testing.T) {
	_, _, m := newTestMount(t, nil)
	f, _ := m.Create("f")
	f.Write(make([]byte, 4*PageSize))
	f.Truncate(PageSize)
	if f.Size() != PageSize {
		t.Fatalf("size=%d", f.Size())
	}
	buf := make([]byte, PageSize)
	n, _ := f.ReadAt(buf, PageSize)
	if n != 0 {
		t.Fatal("read past truncation point")
	}
}

func TestReadAheadGrowsSequentially(t *testing.T) {
	_, fs, m := newTestMount(t, func(c *Config) { c.CacheBytes = 64 << 20 })
	f, _ := m.Create("f")
	f.Write(make([]byte, 256*PageSize))
	f.Fsync()
	m.DropCaches()
	g, _ := m.Open("f")
	buf := make([]byte, PageSize)
	fs.readCalls = 0
	for i := 0; i < 256; i++ {
		g.ReadAt(buf, int64(i)*PageSize)
	}
	// With read-ahead growth, 256 page reads should need far fewer FS
	// calls than 256.
	if fs.readCalls > 40 {
		t.Fatalf("read-ahead ineffective: %d FS read calls for 256 pages", fs.readCalls)
	}
}

func TestConcurrentFilesIndependentCursors(t *testing.T) {
	_, _, m := newTestMount(t, nil)
	for i := 0; i < 5; i++ {
		f, _ := m.Create(fmt.Sprintf("f%d", i))
		f.Write([]byte(fmt.Sprintf("content-%d", i)))
		f.Close()
	}
	var files []*File
	for i := 0; i < 5; i++ {
		f, err := m.Open(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	buf := make([]byte, 16)
	for i, f := range files {
		n, _ := f.Read(buf)
		if string(buf[:n]) != fmt.Sprintf("content-%d", i) {
			t.Fatalf("file %d cursor confusion: %q", i, buf[:n])
		}
	}
}

func TestRenameDirInvalidatesDescendants(t *testing.T) {
	_, _, m := newTestMount(t, nil)
	m.MkdirAll("a/b")
	f, _ := m.Create("a/b/f")
	f.Write([]byte("v"))
	f.Close()
	if err := m.Rename("a", "z"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("a/b/f"); err != ErrNotExist {
		t.Fatalf("stale path resolvable: %v", err)
	}
	if _, err := m.Stat("z/b/f"); err != nil {
		t.Fatalf("new path unresolvable: %v", err)
	}
}
