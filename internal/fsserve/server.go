// Package fsserve is the serving half of the network file-service layer
// (DESIGN.md §11): it mounts any of the simulated file systems behind the
// fsrpc wire protocol and serves N concurrent client connections with
// per-session handle tables, a bounded worker pool with admission control
// and backpressure, per-request queue-wait deadlines, and graceful drain
// on shutdown.
//
// Admission control is strictly non-blocking: a connection reader never
// waits for queue space. When the bounded request queue is full the
// request is shed immediately with EBUSY (`fsserve.queue.shed`), so a
// saturated server degrades by rejecting load instead of building an
// unbounded backlog or deadlocking. The queue depth is visible as the
// `fsserve.queue.depth` gauge; requests that waited in the queue longer
// than Config.QueueWait are shed at dequeue time (`fsserve.deadline.shed`)
// — the client already gave up on them, executing them would only burn
// capacity.
//
// Execution is pipelined per connection (DESIGN.md §13.5): requests from
// one session may complete out of order — reads overlap freely — while
// mutating ops stay ordered via per-class chains (WRITE/FSYNC per handle,
// path-mutating ops on one namespace chain). Replies are staged to a
// per-session writer goroutine that flushes whole batches in one
// scatter-gather write, with READ payloads passed by reference from the
// pooled device buffer into the frame (no intermediate copy).
//
// With Workers == 1 and a single synchronous client driver the server is
// deterministic: requests execute in arrival order on one goroutine, so
// simulated results (and the serve benchmark's latency percentiles) are
// bit-identical run to run at a fixed seed. With more workers, ops overlap
// and the shared simulated clock makes results throughput-style numbers,
// exactly like the §9 multi-client mode.
package fsserve

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"time"

	"betrfs/internal/blockstore"
	"betrfs/internal/fsrpc"
	"betrfs/internal/metrics"
	"betrfs/internal/registry"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// Config tunes the server.
type Config struct {
	// Workers is the number of goroutines executing requests. 1 (the
	// default) is the deterministic mode.
	Workers int
	// QueueDepth bounds the admission queue shared by all sessions;
	// requests arriving on a full queue are shed with EBUSY. Default 64.
	QueueDepth int
	// QueueWait is the wall-clock deadline a request may spend queued
	// before being shed unexecuted. Zero disables the deadline (the
	// deterministic configuration).
	QueueWait time.Duration
	// MaxHandles bounds each session's open-file table; the oldest handle
	// is evicted (closed) beyond it. Default 128.
	MaxHandles int
	// OnExecute, when set, runs at the top of every execute call, before
	// the op touches the mount. It exists for instrumentation and for the
	// saturation/drain tests, which use it to park the worker
	// deterministically. Leave nil in production.
	OnExecute func(op fsrpc.Op)
	// InlineReplies disables the per-session reply writer: workers encode
	// and write each reply synchronously, one frame per write, with no
	// batching or zero-copy framing. This is the pre-pipeline baseline;
	// the serve benchmark uses it to measure the batched path against the
	// old one in a single run. Leave false in production.
	InlineReplies bool
	// DirectReads executes chainless (read-class) requests on the session
	// reader goroutine itself instead of handing them to the worker pool:
	// LOOKUP/GETATTR/READ/READDIR/STATFS skip the queue handoff and reply
	// from the same goroutine that decoded them. §13.5 already allows
	// reads to complete out of order relative to queued mutations, so the
	// only cost is that reads from one session no longer overlap each
	// other — in exchange every read saves two scheduler handoffs, which
	// dominates small-op latency. Mutations stay in the worker pool on
	// purpose: they are the expensive op class, and executing them on the
	// reader would head-of-line block every other request multiplexed on
	// the connection behind one slow commit. Backpressure still exists:
	// the reader cannot read ahead while executing, so a read-heavy
	// session is naturally limited to one direct op in flight. Disabled
	// automatically in the InlineReplies baseline, and by tests that need
	// reads to traverse the admission queue.
	DirectReads bool
	// SessionLease is how long a named session (HELLO, DESIGN.md §13.9)
	// survives without traffic: a detached session idle past the lease is
	// expired — its handle table closes and a later HELLO with its token
	// gets ESTALE. Zero (the default) disables expiry; sessions attached
	// to a live connection never expire regardless. Wall-clock, like
	// QueueWait.
	SessionLease time.Duration
	// DRCEntries bounds each named session's duplicate-reply cache: the
	// replies of the last DRCEntries completed mutations are retained so a
	// client replay after a reconnect is answered from cache instead of
	// re-executed. Must exceed the client window or a slow replay can fall
	// past the horizon (ERETIRED). Default 256.
	DRCEntries int
	// LeaseNow replaces time.Now for lease bookkeeping. Tests use it to
	// expire sessions deterministically; leave nil in production.
	LeaseNow func() time.Time
	// ExecSlots bounds how many requests execute against the mount at
	// once, across the worker pool and the DirectReads fast path. The
	// mount big lock serializes the FS work regardless, so slots beyond
	// the CPU count buy no overlap — they only pile waiters onto the
	// mutex, whose barging hand-off lets an unlucky request wait out the
	// full 1ms starvation threshold under load. The gate is a channel
	// semaphore, so waiters queue FIFO and the execution tail is bounded
	// by queue depth instead. 0 (the default) sizes the gate to
	// GOMAXPROCS; negative disables it. Chain waits happen before the
	// gate, so a slot is never held by a request waiting on a
	// predecessor.
	ExecSlots int
	// Registry names the shares this server exports (DESIGN.md §14.2):
	// mount shares a client ATTACHes to and block shares a client BOPENs.
	// Nil leaves the server single-mount (BOPEN/ATTACH answer ENOENT and
	// SHARES lists nothing), which is every pre-§14 deployment.
	Registry *registry.Registry
}

// DefaultConfig returns the deterministic single-worker configuration.
func DefaultConfig() Config {
	return Config{Workers: 1, QueueDepth: 64, MaxHandles: 128, DirectReads: true}
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MaxHandles < 1 {
		c.MaxHandles = 128
	}
	if c.DRCEntries < 1 {
		c.DRCEntries = 256
	}
	return c
}

// serveMetrics holds the registry instruments, resolved at New.
type serveMetrics struct {
	reqCount      *metrics.Counter
	reqBytes      *metrics.Counter
	respBytes     *metrics.Counter
	statusErr     *metrics.Counter
	opCount       *metrics.Counter
	opPanic       *metrics.Counter
	queueDepth    *metrics.Gauge
	queueShed     *metrics.Counter
	deadline      *metrics.Counter
	sessions      *metrics.Gauge
	drain         *metrics.Counter
	opNs          *metrics.Histogram
	inflight      *metrics.Gauge     // fsrpc.inflight: admitted, not yet replied
	pipeDepth     *metrics.Histogram // fsrpc.pipeline.depth: per-session outstanding at admission
	batchReplies  *metrics.Histogram // fsserve.batch.replies: replies per writer flush
	zerocopyBytes *metrics.Counter   // fsserve.zerocopy.bytes: READ payload bytes framed by reference
	sessResume    *metrics.Counter   // fsserve.session.resume: HELLO(token) re-attachments
	sessExpire    *metrics.Counter   // fsserve.session.expire: named sessions expired/discarded
	drcHit        *metrics.Counter   // fsserve.drc.hit: replayed mutations answered from cache
	drcMiss       *metrics.Counter   // fsserve.drc.miss: sequenced mutations executed and cached
	drcEvict      *metrics.Counter   // fsserve.drc.evict: cache entries retired past the horizon
	perOp         [32]*metrics.Counter
}

func resolveServeMetrics(reg *metrics.Registry) serveMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := serveMetrics{
		reqCount:      reg.Counter("fsrpc.req.count"),
		reqBytes:      reg.Counter("fsrpc.req.bytes"),
		respBytes:     reg.Counter("fsrpc.resp.bytes"),
		statusErr:     reg.Counter("fsrpc.status.err"),
		opCount:       reg.Counter("fsserve.op.count"),
		opPanic:       reg.Counter("fsserve.op.panic"),
		queueDepth:    reg.Gauge("fsserve.queue.depth"),
		queueShed:     reg.Counter("fsserve.queue.shed"),
		deadline:      reg.Counter("fsserve.deadline.shed"),
		sessions:      reg.Gauge("fsserve.session.open"),
		drain:         reg.Counter("fsserve.drain.count"),
		opNs:          reg.Histogram("fsserve.op.ns", "ns"),
		inflight:      reg.Gauge("fsrpc.inflight"),
		pipeDepth:     reg.Histogram("fsrpc.pipeline.depth", "reqs"),
		batchReplies:  reg.Histogram("fsserve.batch.replies", "replies"),
		zerocopyBytes: reg.Counter("fsserve.zerocopy.bytes"),
		sessResume:    reg.Counter("fsserve.session.resume"),
		sessExpire:    reg.Counter("fsserve.session.expire"),
		drcHit:        reg.Counter("fsserve.drc.hit"),
		drcMiss:       reg.Counter("fsserve.drc.miss"),
		drcEvict:      reg.Counter("fsserve.drc.evict"),
	}
	for _, op := range fsrpc.Ops {
		m.perOp[op] = reg.Counter("fsserve.op." + op.String())
	}
	return m
}

// server lifecycle states.
const (
	stateServing = iota
	stateDraining
	stateClosed
)

// task is one admitted request awaiting a worker, plus its position in
// the session's ordering chain (DESIGN.md §13.5) when the op has one.
type task struct {
	sess     *session
	req      *fsrpc.Request
	enqueued time.Time

	chainKeys [2]uint64
	nchains   int
	prev      [2]chan struct{} // predecessors' done; nil at a chain head
	done      chan struct{}    // closed once this task's turn is over
}

// Server serves fsrpc requests against one vfs.Mount.
type Server struct {
	env   *sim.Env
	mount *vfs.Mount
	cfg   Config
	m     serveMetrics

	queue    chan *task
	gate     chan struct{} // FIFO execution gate (Config.ExecSlots); nil when disabled
	workerWG sync.WaitGroup
	inflight sync.WaitGroup

	mu       sync.Mutex
	state    int
	sessions map[*session]struct{}
	named    map[string]*sessState // resumable sessions by token (§13.9)
	tokenSeq uint64

	janitorStop chan struct{} // closes at Shutdown; nil without a lease
}

// New starts a server over mount with cfg.Workers request workers. The
// mount must be built with vfs.Config.Concurrent (and a concurrent FS
// beneath it) when Workers > 1 or multiple connections are served.
// mount is the default share every session starts attached to; it may be
// nil for a block-only storage node (cfg.Registry exporting block
// shares), in which case file-class ops answer ENOENT until the client
// ATTACHes a mount share.
func New(env *sim.Env, mount *vfs.Mount, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		env:      env,
		mount:    mount,
		cfg:      cfg,
		m:        resolveServeMetrics(env.Metrics),
		queue:    make(chan *task, cfg.QueueDepth),
		sessions: make(map[*session]struct{}),
		named:    make(map[string]*sessState),
	}
	slots := cfg.ExecSlots
	if slots == 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	if slots > 0 {
		s.gate = make(chan struct{}, slots)
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.SessionLease > 0 {
		period := cfg.SessionLease / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		s.janitorStop = make(chan struct{})
		go s.janitor(period)
	}
	return s
}

// Mount returns the served mount (tests poke at it directly).
func (s *Server) Mount() *vfs.Mount { return s.mount }

// ServeConn serves one client connection until the peer closes it, a
// protocol error tears it down, or the server shuts down. It blocks;
// callers run it on a goroutine per connection.
func (s *Server) ServeConn(rw io.ReadWriteCloser) error {
	sess := newSession(s, rw)
	s.mu.Lock()
	if s.state != stateServing {
		s.mu.Unlock()
		rw.Close()
		return fsrpc.ErrShutdown
	}
	s.sessions[sess] = struct{}{}
	s.m.sessions.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if _, ok := s.sessions[sess]; ok {
			delete(s.sessions, sess)
			s.m.sessions.Add(-1)
		}
		s.detachLocked(sess)
		s.mu.Unlock()
		sess.close()
	}()

	for {
		payload, err := fsrpc.ReadFrame(rw)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			if errors.Is(err, fsrpc.ErrProto) {
				return err
			}
			return nil // transport torn down (shutdown or peer reset)
		}
		s.m.reqCount.Inc()
		s.m.reqBytes.Add(int64(len(payload)))
		req, err := fsrpc.DecodeRequest(payload)
		if err != nil {
			// The stream cannot be resynchronized after a malformed
			// frame; reply EPROTO best-effort and tear down.
			sess.sendReply(&fsrpc.Reply{Op: 0, Tag: 0, Status: fsrpc.StatusProto}, nil, nil)
			sess.flush()
			return err
		}
		if s.cfg.SessionLease > 0 {
			sess.touch(s.now())
		}
		if s.cfg.DirectReads && !sess.inline {
			if _, n := chainKeys(req); n == 0 {
				if st := s.serveDirect(sess, req); st != fsrpc.StatusOK {
					s.m.statusErr.Inc()
					sess.sendReply(&fsrpc.Reply{Op: req.Op, Tag: req.Tag, Status: st}, nil, nil)
				}
				continue
			}
		}
		if st := s.admit(&task{sess: sess, req: req, enqueued: time.Now()}); st != fsrpc.StatusOK {
			if st == fsrpc.StatusBusy {
				s.m.queueShed.Inc()
			}
			s.m.statusErr.Inc()
			sess.sendReply(&fsrpc.Reply{Op: req.Op, Tag: req.Tag, Status: st}, nil, nil)
		}
	}
}

// serveDirect is the DirectReads request fast path: execute a chainless
// request on the calling (session reader) goroutine and stage its reply.
// Accounting mirrors admit/worker exactly — the inflight count is raised
// under the state lock so Shutdown's drain barrier cannot miss it, and
// the pipeline-depth sample and gauge decrements are identical — so the
// metric catalog cannot tell fast-path ops from pooled ones except
// through fsserve.queue.depth, which direct ops never touch.
func (s *Server) serveDirect(sess *session, req *fsrpc.Request) fsrpc.Status {
	s.mu.Lock()
	if s.state != stateServing {
		s.mu.Unlock()
		return fsrpc.StatusShutdown
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	s.m.inflight.Add(1)
	s.m.pipeDepth.Observe(sess.outstanding.Add(1))
	rep, data := s.execute(sess, req)
	if rep.Status != fsrpc.StatusOK {
		s.m.statusErr.Inc()
	}
	// The depth ledger drops before the reply frame is written, not in the
	// post-flush callback: a synchronous client's next request arrives
	// right after the flush, and sampling it against a not-yet-decremented
	// counter would race the writer goroutine (nondeterministic
	// fsrpc.pipeline.depth histograms on deterministic workloads).
	sess.outstanding.Add(-1)
	sess.sendReply(rep, data, func() {
		s.m.inflight.Add(-1)
		s.inflight.Done()
	})
	return fsrpc.StatusOK
}

// admit places t on the bounded queue without ever blocking: a full queue
// sheds with EBUSY, a draining server rejects with ESHUTDOWN. The
// inflight count is raised under the state lock so Shutdown's drain
// barrier cannot miss an admitted request. An admitted task is linked
// into its session ordering chain before it is enqueued (the session
// reader calls admit serially, so chain order equals wire order), and the
// session's outstanding depth is sampled into fsrpc.pipeline.depth.
func (s *Server) admit(t *task) fsrpc.Status {
	s.mu.Lock()
	if s.state != stateServing {
		s.mu.Unlock()
		return fsrpc.StatusShutdown
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	t.sess.link(t)
	select {
	case s.queue <- t:
		s.m.queueDepth.Add(1)
		s.m.inflight.Add(1)
		s.m.pipeDepth.Observe(t.sess.outstanding.Add(1))
		return fsrpc.StatusOK
	default:
		t.sess.unlink(t)
		s.inflight.Done()
		return fsrpc.StatusBusy
	}
}

// worker executes admitted requests in queue order, subject to the
// per-session ordering chains: a chained task (WRITE/FSYNC on a handle,
// path-mutating ops) waits for its predecessor's turn to end before
// executing, so pipelined mutations apply in issue order while reads
// from the same session overlap freely. Chains cannot deadlock the
// bounded pool: admission order equals queue order, so the earliest
// unfinished chained task's predecessor has always already been dequeued.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		s.m.queueDepth.Add(-1)
		for i := 0; i < t.nchains; i++ {
			if t.prev[i] != nil {
				<-t.prev[i]
			}
		}
		var rep *fsrpc.Reply
		var data *[]byte
		if s.cfg.QueueWait > 0 && time.Since(t.enqueued) > s.cfg.QueueWait {
			// The request outlived its queue-wait budget; shed it
			// unexecuted rather than burn capacity on a reply the client
			// has given up on.
			s.m.deadline.Inc()
			rep = &fsrpc.Reply{Op: t.req.Op, Tag: t.req.Tag, Status: fsrpc.StatusBusy}
		} else {
			rep, data = s.execute(t.sess, t.req)
		}
		t.sess.finishChain(t)
		if rep.Status != fsrpc.StatusOK {
			s.m.statusErr.Inc()
		}
		sess := t.sess
		// Decrement before the write for the same reason as serveDirect:
		// the next synchronous request must never sample a stale depth.
		sess.outstanding.Add(-1)
		sess.sendReply(rep, data, func() {
			s.m.inflight.Add(-1)
			s.inflight.Done()
		})
	}
}

// Quiesce blocks until every admitted request has been replied to and
// its reply-side accounting (fsrpc.resp.bytes, fsserve.batch.replies,
// the fsrpc.inflight gauge) has landed in the registry. A client's call
// completes when the reply frame crosses the transport, which is before
// the serving goroutine runs that accounting — so a snapshot taken the
// moment the last call returns can catch the counters mid-update.
// Callers that snapshot a live server (the shard rung) quiesce first;
// Shutdown subsumes this via its own drain barrier. Only meaningful once
// the driver is idle: a concurrent client can re-raise the count.
func (s *Server) Quiesce() {
	s.inflight.Wait()
}

// Shutdown drains the server gracefully: new requests (and new
// connections) are rejected with ESHUTDOWN, every already-admitted
// request executes to completion and its reply is delivered, then the
// workers stop and every session is closed.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.state != stateServing {
		s.mu.Unlock()
		return
	}
	s.state = stateDraining
	s.m.drain.Inc()
	s.mu.Unlock()

	s.inflight.Wait() // every admitted request replied
	close(s.queue)
	s.workerWG.Wait()
	if s.janitorStop != nil {
		close(s.janitorStop)
	}

	s.mu.Lock()
	s.state = stateClosed
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[*session]struct{})
	named := make([]*sessState, 0, len(s.named))
	for _, st := range s.named {
		st.cur = nil
		named = append(named, st)
	}
	s.named = make(map[string]*sessState)
	s.m.sessions.Set(0)
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.close()
	}
	for _, st := range named {
		st.closeHandles()
	}
}

// execute runs one request, routing sequenced mutations through the
// session's duplicate-reply cache (DESIGN.md §13.9): a replayed sequence
// is answered from cache (fsserve.drc.hit) — waiting out the original
// execution if it is still in flight on another worker — instead of being
// applied twice; a sequence evicted past the cache horizon is refused
// with ERETIRED. Unsequenced requests (anonymous sessions, read-class
// ops) execute directly.
func (s *Server) execute(sess *session, q *fsrpc.Request) (rep *fsrpc.Reply, data *[]byte) {
	if q.Seq == 0 || !q.Op.Mutating() {
		return s.executeOp(sess, q)
	}
	st := sess.state()
	if st.tok() == "" {
		// Sequenced request on an anonymous session: nothing to dedup
		// against; execute like a legacy request.
		return s.executeOp(sess, q)
	}
	verdict, cached, entry := st.drc.begin(q.Seq)
	switch verdict {
	case drcHit:
		s.m.drcHit.Inc()
		cp := *cached
		cp.Op, cp.Tag = q.Op, q.Tag
		return &cp, nil
	case drcRetired:
		return &fsrpc.Reply{Op: q.Op, Tag: q.Tag, Status: fsrpc.StatusRetired}, nil
	}
	rep, data = s.executeOp(sess, q)
	s.m.drcMiss.Inc()
	if n := st.drc.commit(q.Seq, entry, rep); n > 0 {
		s.m.drcEvict.Add(n)
	}
	return rep, data
}

// executeOp runs one request against the mount and builds its reply. A
// panic from the FS stack (a programmer invariant, never a hardware
// fault — those arrive as errors) is converted to an EIO reply and
// counted, so one broken op cannot wedge every client of the server.
//
// data is the pooled buffer a successful READ reply's Data references;
// the caller must route it to sendReply so it returns to the pool after
// the frame is written. Nil for every other reply.
func (s *Server) executeOp(sess *session, q *fsrpc.Request) (rep *fsrpc.Reply, data *[]byte) {
	rep = &fsrpc.Reply{Op: q.Op, Tag: q.Tag}
	defer func() {
		if r := recover(); r != nil {
			s.m.opPanic.Inc()
			rep = &fsrpc.Reply{Op: q.Op, Tag: q.Tag, Status: fsrpc.StatusIO}
			data = nil
		}
	}()
	if s.gate != nil {
		s.gate <- struct{}{}
		defer func() { <-s.gate }()
	}
	if s.cfg.OnExecute != nil {
		s.cfg.OnExecute(q.Op)
	}
	s.m.opCount.Inc()
	if c := s.m.perOp[q.Op]; c != nil {
		c.Inc()
	}
	start := s.env.Now()
	defer func() { s.m.opNs.Observe(int64(s.env.Now() - start)) }()

	fail := func(err error) (*fsrpc.Reply, *[]byte) {
		rep.Status = fsrpc.StatusOf(err)
		return rep, nil
	}
	mnt := sess.mount()
	if mnt == nil && fileClassOp(q.Op) {
		// Block-only storage node (or no mount share attached): the file
		// namespace does not exist here.
		return fail(vfs.ErrNotExist)
	}
	switch q.Op {
	case fsrpc.OpLookup:
		a, err := mnt.Stat(q.Path)
		if err != nil {
			return fail(err)
		}
		rep.Attr = fsrpc.FromVFS(a)
		if !a.Dir && q.Flags&fsrpc.LookupOpen != 0 {
			f, err := mnt.Open(q.Path)
			if err != nil {
				return fail(err)
			}
			rep.Handle = sess.put(f)
		}
	case fsrpc.OpGetattr:
		a, err := mnt.Stat(q.Path)
		if err != nil {
			return fail(err)
		}
		rep.Attr = fsrpc.FromVFS(a)
	case fsrpc.OpCreate:
		f, err := mnt.Create(q.Path)
		if err != nil {
			return fail(err)
		}
		a, err := mnt.Stat(q.Path)
		if err != nil {
			return fail(err)
		}
		rep.Handle = sess.put(f)
		rep.Attr = fsrpc.FromVFS(a)
	case fsrpc.OpRead:
		f, ok := sess.get(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		// Pooled buffer, filled by the device and referenced (not copied)
		// by the reply frame; the session writer returns it to the pool
		// once the frame is on the wire.
		bufp := readBufPool.Get().(*[]byte)
		n, err := f.ReadAt((*bufp)[:q.N], q.Off)
		if err != nil {
			readBufPool.Put(bufp)
			return fail(err)
		}
		rep.Data = (*bufp)[:n]
		data = bufp
	case fsrpc.OpWrite:
		f, ok := sess.get(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		n, err := f.WriteAt(q.Data, q.Off)
		if err != nil {
			return fail(err)
		}
		rep.N = uint32(n)
	case fsrpc.OpFsync:
		f, ok := sess.get(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		if err := f.Fsync(); err != nil {
			return fail(err)
		}
	case fsrpc.OpMkdir:
		if err := mnt.Mkdir(q.Path); err != nil {
			return fail(err)
		}
	case fsrpc.OpUnlink:
		if err := mnt.Remove(q.Path); err != nil {
			return fail(err)
		}
	case fsrpc.OpRmdir:
		if err := mnt.Rmdir(q.Path); err != nil {
			return fail(err)
		}
	case fsrpc.OpRename:
		if err := mnt.Rename(q.Path, q.Path2); err != nil {
			return fail(err)
		}
	case fsrpc.OpReaddir:
		ents, err := mnt.ReadDir(q.Path)
		if err != nil {
			return fail(err)
		}
		rep.Entries = make([]fsrpc.DirEnt, 0, len(ents))
		for _, e := range ents {
			rep.Entries = append(rep.Entries, fsrpc.DirEnt{Name: e.Name, Dir: e.Dir})
		}
	case fsrpc.OpStatfs:
		s.mu.Lock()
		sessions := int64(len(s.sessions))
		s.mu.Unlock()
		rep.Statfs = fsrpc.Statfs{
			BlockSize: vfs.PageSize,
			SimTimeNs: int64(s.env.Now()),
			Degraded:  mnt != nil && mnt.Degraded() != nil,
			Sessions:  sessions,
			OpsServed: s.m.opCount.Load(),
		}
	case fsrpc.OpBopen:
		var st blockstore.Store
		if s.cfg.Registry != nil {
			st = s.cfg.Registry.Store(q.Path)
		}
		if st == nil {
			return fail(vfs.ErrNotExist)
		}
		rep.Handle = sess.bput(st)
		rep.Size = st.Size()
	case fsrpc.OpBread:
		bs, ok := sess.bget(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		// Same pooled zero-copy path as READ: the store fills the buffer
		// and the reply frame references it.
		bufp := readBufPool.Get().(*[]byte)
		if err := bs.ReadAt((*bufp)[:q.N], q.Off); err != nil {
			readBufPool.Put(bufp)
			return fail(err)
		}
		rep.Data = (*bufp)[:q.N]
		data = bufp
	case fsrpc.OpBwrite:
		bs, ok := sess.bget(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		if err := bs.WriteAt(q.Data, q.Off); err != nil {
			return fail(err)
		}
		rep.N = uint32(len(q.Data))
	case fsrpc.OpBflush:
		bs, ok := sess.bget(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		if err := bs.Flush(); err != nil {
			return fail(err)
		}
	case fsrpc.OpBdiscard:
		bs, ok := sess.bget(q.Handle)
		if !ok {
			return fail(fsrpc.ErrBadHandle)
		}
		if err := bs.Discard(q.Off, q.Len); err != nil {
			return fail(err)
		}
	case fsrpc.OpAttach:
		var m *vfs.Mount
		if s.cfg.Registry != nil {
			m = s.cfg.Registry.Mount(q.Path)
		}
		if m == nil {
			return fail(vfs.ErrNotExist)
		}
		sess.mnt.Store(m)
	case fsrpc.OpShares:
		if s.cfg.Registry != nil {
			shares := s.cfg.Registry.Shares()
			rep.Entries = make([]fsrpc.DirEnt, 0, len(shares))
			for _, sh := range shares {
				rep.Entries = append(rep.Entries, fsrpc.DirEnt{Name: sh.Name, Dir: sh.Mount})
			}
		}
	case fsrpc.OpHello:
		rep = s.hello(sess, q)
	case fsrpc.OpPing:
		// Keepalive no-op: the lease was renewed at arrival.
	default:
		return fail(fsrpc.ErrProto)
	}
	return rep, data
}

// fileClassOp reports whether op operates on the session's attached
// mount (and therefore fails ENOENT on a block-only storage node).
// HELLO/PING/STATFS are sessionwide, ATTACH/SHARES are control-plane,
// and the block class goes to the session's block handles.
func fileClassOp(op fsrpc.Op) bool {
	switch op {
	case fsrpc.OpHello, fsrpc.OpPing, fsrpc.OpStatfs, fsrpc.OpAttach, fsrpc.OpShares:
		return false
	}
	return !op.Block()
}
