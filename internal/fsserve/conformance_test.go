package fsserve_test

import (
	"bytes"
	"fmt"
	"testing"

	"betrfs/internal/blockdev"
	"betrfs/internal/faulttest"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/vfs"
)

// confDriver executes file operations and reports results in wire terms
// (fsrpc.Status), so a wire client and a direct vfs.Mount caller can be
// compared op for op. Handles are named symbolically: each driver keeps
// its own table so numeric handle values never leak into comparisons.
type confDriver interface {
	mkdir(p string) fsrpc.Status
	create(p, handle string) (fsrpc.Attr, fsrpc.Status)
	lookup(p, handle string, open bool) (fsrpc.Attr, fsrpc.Status)
	getattr(p string) (fsrpc.Attr, fsrpc.Status)
	write(handle string, off int64, data []byte) (int, fsrpc.Status)
	read(handle string, off int64, n int) ([]byte, fsrpc.Status)
	fsync(handle string) fsrpc.Status
	readdir(p string) ([]fsrpc.DirEnt, fsrpc.Status)
	rename(a, b string) fsrpc.Status
	unlink(p string) fsrpc.Status
	rmdir(p string) fsrpc.Status
	degraded() bool
}

// wireDriver drives ops through an fsrpc client against an fsserve
// server.
type wireDriver struct {
	cli     *fsrpc.Client
	handles map[string]uint64
}

func newWireDriver(cli *fsrpc.Client) *wireDriver {
	return &wireDriver{cli: cli, handles: map[string]uint64{}}
}

func (d *wireDriver) mkdir(p string) fsrpc.Status { return fsrpc.StatusOf(d.cli.Mkdir(p)) }

func (d *wireDriver) create(p, handle string) (fsrpc.Attr, fsrpc.Status) {
	h, a, err := d.cli.Create(p)
	if err == nil {
		d.handles[handle] = h
	}
	return a, fsrpc.StatusOf(err)
}

func (d *wireDriver) lookup(p, handle string, open bool) (fsrpc.Attr, fsrpc.Status) {
	h, a, err := d.cli.Lookup(p, open)
	if err == nil && h != 0 {
		d.handles[handle] = h
	}
	return a, fsrpc.StatusOf(err)
}

func (d *wireDriver) getattr(p string) (fsrpc.Attr, fsrpc.Status) {
	a, err := d.cli.Getattr(p)
	return a, fsrpc.StatusOf(err)
}

func (d *wireDriver) write(handle string, off int64, data []byte) (int, fsrpc.Status) {
	n, err := d.cli.Write(d.handles[handle], off, data)
	return n, fsrpc.StatusOf(err)
}

func (d *wireDriver) read(handle string, off int64, n int) ([]byte, fsrpc.Status) {
	b, err := d.cli.Read(d.handles[handle], off, n)
	return b, fsrpc.StatusOf(err)
}

func (d *wireDriver) fsync(handle string) fsrpc.Status {
	return fsrpc.StatusOf(d.cli.Fsync(d.handles[handle]))
}

func (d *wireDriver) readdir(p string) ([]fsrpc.DirEnt, fsrpc.Status) {
	ents, err := d.cli.Readdir(p)
	return ents, fsrpc.StatusOf(err)
}

func (d *wireDriver) rename(a, b string) fsrpc.Status { return fsrpc.StatusOf(d.cli.Rename(a, b)) }
func (d *wireDriver) unlink(p string) fsrpc.Status    { return fsrpc.StatusOf(d.cli.Unlink(p)) }
func (d *wireDriver) rmdir(p string) fsrpc.Status     { return fsrpc.StatusOf(d.cli.Rmdir(p)) }

func (d *wireDriver) degraded() bool {
	sf, err := d.cli.Statfs()
	return err == nil && sf.Degraded
}

// directDriver drives the same ops straight into a vfs.Mount, mirroring
// the server's execute() call sequence exactly (CREATE is Create+Stat,
// LOOKUP is Stat then Open for non-directories, READ returns data only
// on success).
type directDriver struct {
	m       *vfs.Mount
	handles map[string]*vfs.File
}

func newDirectDriver(m *vfs.Mount) *directDriver {
	return &directDriver{m: m, handles: map[string]*vfs.File{}}
}

func (d *directDriver) mkdir(p string) fsrpc.Status { return fsrpc.StatusOf(d.m.Mkdir(p)) }

func (d *directDriver) create(p, handle string) (fsrpc.Attr, fsrpc.Status) {
	f, err := d.m.Create(p)
	if err != nil {
		return fsrpc.Attr{}, fsrpc.StatusOf(err)
	}
	a, err := d.m.Stat(p)
	if err != nil {
		return fsrpc.Attr{}, fsrpc.StatusOf(err)
	}
	d.handles[handle] = f
	return fsrpc.FromVFS(a), fsrpc.StatusOK
}

func (d *directDriver) lookup(p, handle string, open bool) (fsrpc.Attr, fsrpc.Status) {
	a, err := d.m.Stat(p)
	if err != nil {
		return fsrpc.Attr{}, fsrpc.StatusOf(err)
	}
	if !a.Dir && open {
		f, err := d.m.Open(p)
		if err != nil {
			return fsrpc.Attr{}, fsrpc.StatusOf(err)
		}
		d.handles[handle] = f
	}
	return fsrpc.FromVFS(a), fsrpc.StatusOK
}

func (d *directDriver) getattr(p string) (fsrpc.Attr, fsrpc.Status) {
	a, err := d.m.Stat(p)
	if err != nil {
		return fsrpc.Attr{}, fsrpc.StatusOf(err)
	}
	return fsrpc.FromVFS(a), fsrpc.StatusOK
}

func (d *directDriver) write(handle string, off int64, data []byte) (int, fsrpc.Status) {
	f, ok := d.handles[handle]
	if !ok {
		return 0, fsrpc.StatusBadHandle
	}
	n, err := f.WriteAt(data, off)
	if err != nil {
		return 0, fsrpc.StatusOf(err)
	}
	return n, fsrpc.StatusOK
}

func (d *directDriver) read(handle string, off int64, n int) ([]byte, fsrpc.Status) {
	f, ok := d.handles[handle]
	if !ok {
		return nil, fsrpc.StatusBadHandle
	}
	buf := make([]byte, n)
	rn, err := f.ReadAt(buf, off)
	if err != nil {
		return nil, fsrpc.StatusOf(err)
	}
	return buf[:rn], fsrpc.StatusOK
}

func (d *directDriver) fsync(handle string) fsrpc.Status {
	f, ok := d.handles[handle]
	if !ok {
		return fsrpc.StatusBadHandle
	}
	return fsrpc.StatusOf(f.Fsync())
}

func (d *directDriver) readdir(p string) ([]fsrpc.DirEnt, fsrpc.Status) {
	ents, err := d.m.ReadDir(p)
	if err != nil {
		return nil, fsrpc.StatusOf(err)
	}
	out := make([]fsrpc.DirEnt, 0, len(ents))
	for _, e := range ents {
		out = append(out, fsrpc.DirEnt{Name: e.Name, Dir: e.Dir})
	}
	return out, fsrpc.StatusOK
}

func (d *directDriver) rename(a, b string) fsrpc.Status { return fsrpc.StatusOf(d.m.Rename(a, b)) }
func (d *directDriver) unlink(p string) fsrpc.Status    { return fsrpc.StatusOf(d.m.Remove(p)) }
func (d *directDriver) rmdir(p string) fsrpc.Status     { return fsrpc.StatusOf(d.m.Rmdir(p)) }
func (d *directDriver) degraded() bool                  { return d.m.Degraded() != nil }

// confPair is two identically-built systems, one behind the wire and
// one driven directly, plus their fault devices for errno phases.
type confPair struct {
	wire   confDriver
	direct confDriver
	wireF  *blockdev.FaultDev
	dirF   *blockdev.FaultDev
}

func buildPair(t *testing.T, name string, scale int64) *confPair {
	t.Helper()
	plan := blockdev.FaultPlan{Seed: 5}
	pol := blockdev.DefaultRetryPolicy()
	wireSys, err := faulttest.Build(name, 5, scale, plan, pol)
	if err != nil {
		t.Fatal(err)
	}
	dirSys, err := faulttest.Build(name, 5, scale, plan, pol)
	if err != nil {
		t.Fatal(err)
	}
	srv := fsserve.New(wireSys.Env, wireSys.Mount, fsserve.DefaultConfig())
	t.Cleanup(func() { srv.Shutdown() })
	return &confPair{
		wire:   newWireDriver(dial(t, srv)),
		direct: newDirectDriver(dirSys.Mount),
		wireF:  wireSys.Fault,
		dirF:   dirSys.Fault,
	}
}

// both runs op against the wire and direct drivers and fails the test on
// any divergence in status.
func (p *confPair) both(t *testing.T, desc string, op func(confDriver) fsrpc.Status) fsrpc.Status {
	t.Helper()
	ws := op(p.wire)
	ds := op(p.direct)
	if ws != ds {
		t.Fatalf("%s: wire=%v direct=%v", desc, ws, ds)
	}
	return ws
}

func (p *confPair) bothAttr(t *testing.T, desc string, op func(confDriver) (fsrpc.Attr, fsrpc.Status)) {
	t.Helper()
	wa, ws := op(p.wire)
	da, ds := op(p.direct)
	if ws != ds {
		t.Fatalf("%s: wire=%v direct=%v", desc, ws, ds)
	}
	if wa != da {
		t.Fatalf("%s: attr wire=%+v direct=%+v", desc, wa, da)
	}
}

// TestWireConformance drives every protocol op through the wire and
// directly against an identically-built mount for each system under
// fault test, requiring bit-identical statuses, attributes, data, and
// directory listings — on the happy path, on the static error paths
// (ENOENT, EEXIST, EISDIR, ENOTEMPTY), and through a device write death
// (EIO surfacing, then the sticky EROFS latch).
func TestWireConformance(t *testing.T) {
	for _, name := range faulttest.Systems {
		t.Run(name, func(t *testing.T) {
			p := buildPair(t, name, faulttest.DefaultScale)

			// Happy path and static errnos.
			p.both(t, "mkdir d", func(d confDriver) fsrpc.Status { return d.mkdir("d") })
			p.both(t, "mkdir d again", func(d confDriver) fsrpc.Status { return d.mkdir("d") })
			p.bothAttr(t, "create d/f", func(d confDriver) (fsrpc.Attr, fsrpc.Status) { return d.create("d/f", "hf") })
			payload := faulttest.FileContent(3, 6000)
			p.both(t, "write d/f", func(d confDriver) fsrpc.Status {
				n, st := d.write("hf", 0, payload)
				if st == fsrpc.StatusOK && n != len(payload) {
					t.Fatalf("short write: %d", n)
				}
				return st
			})
			p.both(t, "fsync d/f", func(d confDriver) fsrpc.Status { return d.fsync("hf") })
			p.bothAttr(t, "getattr d/f", func(d confDriver) (fsrpc.Attr, fsrpc.Status) { return d.getattr("d/f") })
			p.bothAttr(t, "lookup-open d/f", func(d confDriver) (fsrpc.Attr, fsrpc.Status) { return d.lookup("d/f", "ho", true) })
			wb, ws := p.wire.read("ho", 0, len(payload))
			db, ds := p.direct.read("ho", 0, len(payload))
			if ws != ds || !bytes.Equal(wb, db) || !bytes.Equal(wb, payload) {
				t.Fatalf("read divergence: wire(%v,%d bytes) direct(%v,%d bytes)", ws, len(wb), ds, len(db))
			}
			we, wst := p.wire.readdir("d")
			de, dst := p.direct.readdir("d")
			if wst != dst || fmt.Sprint(we) != fmt.Sprint(de) {
				t.Fatalf("readdir divergence: wire(%v,%v) direct(%v,%v)", wst, we, dst, de)
			}
			p.both(t, "rename d/f d/g", func(d confDriver) fsrpc.Status { return d.rename("d/f", "d/g") })
			p.bothAttr(t, "getattr gone d/f", func(d confDriver) (fsrpc.Attr, fsrpc.Status) { return d.getattr("d/f") })
			p.both(t, "unlink missing", func(d confDriver) fsrpc.Status { return d.unlink("d/nope") })
			p.both(t, "unlink dir", func(d confDriver) fsrpc.Status { return d.unlink("d") })
			p.both(t, "rmdir non-empty", func(d confDriver) fsrpc.Status { return d.rmdir("d") })
			p.both(t, "unlink d/g", func(d confDriver) fsrpc.Status { return d.unlink("d/g") })
			p.both(t, "rmdir d", func(d confDriver) fsrpc.Status { return d.rmdir("d") })

			// Write death: EIO must surface identically, then both mounts
			// latch read-only and every mutation maps to EROFS.
			p.wireF.FailWritesNow()
			p.dirF.FailWritesNow()
			sawRofs := false
			for i := 0; i < 8 && !sawRofs; i++ {
				hk := fmt.Sprintf("dead%d", i)
				st := p.both(t, hk+" create", func(d confDriver) (s fsrpc.Status) {
					_, s = d.create(hk, hk)
					return s
				})
				if st == fsrpc.StatusReadOnly {
					sawRofs = true
					break
				}
				if st != fsrpc.StatusOK {
					continue
				}
				p.both(t, hk+" write", func(d confDriver) fsrpc.Status {
					_, s := d.write(hk, 0, payload)
					return s
				})
				p.both(t, hk+" fsync", func(d confDriver) fsrpc.Status { return d.fsync(hk) })
			}
			if w, d := p.wire.degraded(), p.direct.degraded(); !w || !d {
				t.Fatalf("degradation divergence after write death: wire=%v direct=%v", w, d)
			}
			if st := p.both(t, "create on dead mount", func(d confDriver) (s fsrpc.Status) {
				_, s = d.create("late", "late")
				return s
			}); st != fsrpc.StatusReadOnly {
				t.Fatalf("create after latch = %v on both sides, want EROFS", st)
			}
			if !sawRofs {
				// The loop above must have seen the latch flip via EROFS at
				// least on its last create; the explicit check above proves
				// the sticky state either way.
				t.Log("latch tripped only after the storm loop; EROFS verified post-loop")
			}
		})
	}
}

// TestWireConformanceNoSpace fills a tiny device through both drivers
// until it runs out, requiring the ENOSPC surfacing op and status to be
// identical over the wire and direct.
func TestWireConformanceNoSpace(t *testing.T) {
	for _, name := range []string{"ext4", "betrfs-v0.6"} {
		t.Run(name, func(t *testing.T) {
			const scale = 8192 // ≈ 32 MiB device
			p := buildPair(t, name, scale)
			p.both(t, "mkdir fill", func(d confDriver) fsrpc.Status { return d.mkdir("fill") })
			payload := bytes.Repeat([]byte{0xdb}, 128<<10)
			var terminal fsrpc.Status
			for i := 0; i < 512; i++ {
				hk := fmt.Sprintf("f%04d", i)
				st := p.both(t, hk+" create", func(d confDriver) (s fsrpc.Status) {
					_, s = d.create("fill/"+hk, hk)
					return s
				})
				if st != fsrpc.StatusOK {
					terminal = st
					break
				}
				if st = p.both(t, hk+" write", func(d confDriver) fsrpc.Status {
					_, s := d.write(hk, 0, payload)
					return s
				}); st != fsrpc.StatusOK {
					terminal = st
					break
				}
				if st = p.both(t, hk+" fsync", func(d confDriver) fsrpc.Status { return d.fsync(hk) }); st != fsrpc.StatusOK {
					terminal = st
					break
				}
			}
			if terminal != fsrpc.StatusNoSpace {
				t.Fatalf("device fill terminated with %v on both sides, want ENOSPC", terminal)
			}
		})
	}
}
