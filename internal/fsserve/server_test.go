package fsserve_test

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/vfs"
)

// dial connects a client to srv over an in-process pipe.
func dial(t *testing.T, srv *fsserve.Server) *fsrpc.Client {
	t.Helper()
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	cli := fsrpc.NewClient(cliEnd)
	t.Cleanup(func() { cli.Close() })
	return cli
}

// TestBasicOpsOverWire drives every op once through a net.Pipe against a
// betrfs-v0.6 mount and checks the observable results.
func TestBasicOpsOverWire(t *testing.T) {
	in := bench.Build("betrfs-v0.6", 256)
	srv := fsserve.New(in.Env, in.Mount, fsserve.DefaultConfig())
	defer srv.Shutdown()
	cli := dial(t, srv)

	if err := cli.Mkdir("dir"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	h, attr, err := cli.Create("dir/file")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if attr.Dir || h == 0 {
		t.Fatalf("create returned dir=%v handle=%d", attr.Dir, h)
	}
	payload := bytes.Repeat([]byte{0xab}, 5000)
	n, err := cli.Write(h, 0, payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := cli.Fsync(h); err != nil {
		t.Fatalf("fsync: %v", err)
	}
	got, err := cli.Read(h, 0, len(payload))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch over the wire")
	}
	a, err := cli.Getattr("dir/file")
	if err != nil || a.Size != int64(len(payload)) {
		t.Fatalf("getattr = %+v, %v", a, err)
	}
	h2, a2, err := cli.Lookup("dir/file", true)
	if err != nil || h2 == 0 || a2.Size != a.Size {
		t.Fatalf("lookup = handle %d attr %+v, %v", h2, a2, err)
	}
	if _, da, err := cli.Lookup("dir", false); err != nil || !da.Dir {
		t.Fatalf("lookup dir = %+v, %v", da, err)
	}
	if err := cli.Rename("dir/file", "dir/file2"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	ents, err := cli.Readdir("dir")
	if err != nil || len(ents) != 1 || ents[0].Name != "file2" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	sf, err := cli.Statfs()
	if err != nil || sf.BlockSize != vfs.PageSize || sf.Degraded || sf.Sessions != 1 {
		t.Fatalf("statfs = %+v, %v", sf, err)
	}
	if err := cli.Unlink("dir/file2"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	if err := cli.Rmdir("dir"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
	if _, err := cli.Readdir("dir"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("readdir removed dir = %v, want ENOENT", err)
	}
}

// TestErrnoSurfacesOverWire checks that namespace errors arrive as the
// same sentinels a direct mount caller sees.
func TestErrnoSurfacesOverWire(t *testing.T) {
	in := bench.Build("ext4", 256)
	srv := fsserve.New(in.Env, in.Mount, fsserve.DefaultConfig())
	defer srv.Shutdown()
	cli := dial(t, srv)

	if _, err := cli.Getattr("nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("getattr missing = %v, want ENOENT", err)
	}
	if err := cli.Mkdir("d"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Mkdir("d"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("mkdir existing = %v, want EEXIST", err)
	}
	if err := cli.Unlink("d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("unlink dir = %v, want EISDIR", err)
	}
	if _, err := cli.Read(999, 0, 16); !errors.Is(err, fsrpc.ErrBadHandle) {
		t.Fatalf("read bad handle = %v, want EBADF", err)
	}
}

// TestHandleTableBounded checks FIFO eviction: the oldest handle turns
// EBADF once MaxHandles fresh ones displace it, and re-LOOKUP recovers.
func TestHandleTableBounded(t *testing.T) {
	in := bench.Build("ext4", 256)
	cfg := fsserve.DefaultConfig()
	cfg.MaxHandles = 4
	srv := fsserve.New(in.Env, in.Mount, cfg)
	defer srv.Shutdown()
	cli := dial(t, srv)

	first, _, err := cli.Create("f0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, _, err := cli.Create(string(rune('f')) + string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Read(first, 0, 1); !errors.Is(err, fsrpc.ErrBadHandle) {
		t.Fatalf("evicted handle = %v, want EBADF", err)
	}
	h, _, err := cli.Lookup("f0", true)
	if err != nil || h == 0 {
		t.Fatalf("re-lookup after eviction = %d, %v", h, err)
	}
	if _, err := cli.Read(h, 0, 1); err != nil {
		t.Fatalf("read via fresh handle: %v", err)
	}
}

// TestSessionsAreIndependent gives two connections their own handle
// spaces over one mount.
func TestSessionsAreIndependent(t *testing.T) {
	in := bench.Build("ext4", 256)
	srv := fsserve.New(in.Env, in.Mount, fsserve.DefaultConfig())
	defer srv.Shutdown()
	c1 := dial(t, srv)
	c2 := dial(t, srv)

	h1, _, err := c1.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write(h1, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// c2 must not be able to use c1's handle number implicitly; its own
	// table is empty.
	if _, err := c2.Read(h1, 0, 5); !errors.Is(err, fsrpc.ErrBadHandle) {
		t.Fatalf("cross-session handle = %v, want EBADF", err)
	}
	// But the namespace is shared: c2 opens the same file by path.
	h2, _, err := c2.Lookup("shared", true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read(h2, 0, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("cross-session read = %q, %v", got, err)
	}
}
