package fsserve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"betrfs/internal/fsrpc"
	"betrfs/internal/vfs"
)

// sessState is the resumable half of a session (DESIGN.md §13.9): the
// handle table and the duplicate-reply cache, owned by at most one live
// connection at a time. An anonymous state (empty token) lives and dies
// with its connection — the pre-session behavior. A named state (created
// by HELLO) outlives connections: it is registered in the server's token
// map, survives a transport death, and is re-attached by HELLO(token) on
// the next connection, subject to the lease.
type sessState struct {
	hmu     sync.Mutex
	token   string // empty: anonymous, discarded at connection close
	nextID  uint64
	handles map[uint64]*vfs.File
	order   []uint64 // insertion order, for FIFO eviction

	drc drcCache

	// lastActive is the wall-clock (unixnano) of the last request that
	// arrived for this state; the lease janitor expires detached named
	// states idle past Config.SessionLease.
	lastActive int64

	// cur is the connection currently holding this state; guarded by the
	// server mu. Nil while detached (between a transport death and the
	// resuming HELLO).
	cur *session
}

func newSessState(drcEntries int) *sessState {
	return &sessState{
		handles: make(map[uint64]*vfs.File),
		drc:     drcCache{cap: drcEntries},
	}
}

// put registers f and returns its handle, evicting the oldest handle
// beyond max.
func (st *sessState) put(f *vfs.File, max int) uint64 {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	st.nextID++
	id := st.nextID
	st.handles[id] = f
	st.order = append(st.order, id)
	if len(st.handles) > max {
		victim := st.order[0]
		st.order = st.order[1:]
		if old, ok := st.handles[victim]; ok {
			old.Close()
			delete(st.handles, victim)
		}
	}
	return id
}

// get resolves a handle.
func (st *sessState) get(id uint64) (*vfs.File, bool) {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	f, ok := st.handles[id]
	return f, ok
}

// closeHandles closes and drops every open handle.
func (st *sessState) closeHandles() {
	st.hmu.Lock()
	for _, f := range st.handles {
		f.Close()
	}
	st.handles = make(map[uint64]*vfs.File)
	st.order = nil
	st.hmu.Unlock()
}

// drcEntry is one duplicate-reply cache slot. done is closed once rep is
// set; a replay that races the original execution waits on it instead of
// re-executing (the NFS-DRC "in-progress" state).
type drcEntry struct {
	done chan struct{}
	rep  *fsrpc.Reply
}

// drcCache is the per-session duplicate-reply cache (DESIGN.md §13.9): it
// remembers the reply of the last cap completed mutations by sequence
// number, so a client replaying a fate-unknown mutation after a reconnect
// gets the original reply instead of a second execution. Sequences evicted
// past the horizon can no longer be disambiguated and are refused with
// ERETIRED — the client window bounds how far a live client's replays can
// trail, so cap must exceed the client window (the defaults are 256 vs 32).
type drcCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*drcEntry
	order   []uint64 // completed entries in commit order, for FIFO eviction
	horizon uint64   // highest evicted seq: absent seqs <= horizon are retired
}

// drc begin outcomes.
const (
	drcExec    = iota // fresh sequence: caller executes, then commits
	drcHit            // duplicate: cached reply returned
	drcRetired        // sequence evicted past the horizon: refuse
)

// begin claims seq. drcExec returns the in-progress entry the caller must
// commit; drcHit returns the original reply (waiting out a concurrent
// original execution if needed); drcRetired means the sequence fell behind
// the cache horizon.
func (d *drcCache) begin(seq uint64) (verdict int, rep *fsrpc.Reply, e *drcEntry) {
	d.mu.Lock()
	if d.entries == nil {
		d.entries = make(map[uint64]*drcEntry)
	}
	if cur, ok := d.entries[seq]; ok {
		d.mu.Unlock()
		<-cur.done // already closed unless the original is still executing
		return drcHit, cur.rep, nil
	}
	if seq <= d.horizon {
		d.mu.Unlock()
		return drcRetired, nil, nil
	}
	e = &drcEntry{done: make(chan struct{})}
	d.entries[seq] = e
	d.mu.Unlock()
	return drcExec, nil, e
}

// commit records the executed reply for an entry claimed by begin and
// evicts the oldest completed entries beyond cap, returning how many were
// evicted. The stored reply is a tag-free copy; hits re-stamp the
// replay's own tag.
func (d *drcCache) commit(seq uint64, e *drcEntry, rep *fsrpc.Reply) (evicted int64) {
	cp := *rep
	cp.Tag = 0
	e.rep = &cp
	close(e.done)
	d.mu.Lock()
	d.order = append(d.order, seq)
	for len(d.order) > d.cap {
		victim := d.order[0]
		d.order = d.order[1:]
		delete(d.entries, victim)
		if victim > d.horizon {
			d.horizon = victim
		}
		evicted++
	}
	d.mu.Unlock()
	return evicted
}

// state returns the session's resumable state.
func (s *session) state() *sessState { return s.st.Load() }

// tok returns the state's token ("" while anonymous). The promote path in
// hello names a published state in place, so any read that does not hold
// s.mu must go through hmu to see the write safely.
func (st *sessState) tok() string {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	return st.token
}

// setTok names the state. The caller holds s.mu (the only writer runs
// there); hmu publishes the write to lock-free readers — execute, touch,
// session.close — that race the promoting HELLO.
func (st *sessState) setTok(tok string) {
	st.hmu.Lock()
	st.token = tok
	st.hmu.Unlock()
}

// touch stamps the session state's lease clock.
func (s *session) touch(now time.Time) {
	st := s.state()
	if st.tok() != "" {
		st.storeActive(now)
	}
}

func (st *sessState) storeActive(now time.Time) {
	st.hmu.Lock()
	st.lastActive = now.UnixNano()
	st.hmu.Unlock()
}

func (st *sessState) loadActive() int64 {
	st.hmu.Lock()
	defer st.hmu.Unlock()
	return st.lastActive
}

// now returns the server's wall clock (Config.LeaseNow in tests).
func (s *Server) now() time.Time {
	if s.cfg.LeaseNow != nil {
		return s.cfg.LeaseNow()
	}
	return time.Now()
}

// hello services a HELLO request on sess (DESIGN.md §13.9).
//
// An empty token asks for a new named session: the connection's current
// state is promoted in place when it is anonymous (handles opened before
// HELLO survive), or replaced by a fresh one when the connection already
// held a named session (the old state is discarded — its handles close).
//
// A non-empty token resumes: the named state detaches from whichever
// connection last held it (latest wins; the stale connection is torn
// down), this connection's anonymous state is discarded, and the handle
// table and duplicate-reply cache carry on. An unknown or lease-expired
// token fails with ESTALE and leaves the connection's current state
// untouched, so the client can HELLO("") for a fresh session.
func (s *Server) hello(sess *session, q *fsrpc.Request) *fsrpc.Reply {
	rep := &fsrpc.Reply{Op: q.Op, Tag: q.Tag, Lease: int64(s.cfg.SessionLease)}
	now := s.now()

	if q.Token == "" {
		var discarded *sessState
		s.mu.Lock()
		old := sess.state()
		if old.token == "" {
			// Promote the anonymous state in place. The DRC capacity was
			// already set at newSessState; only the token changes, via
			// setTok so readers that skip s.mu see it safely.
			s.tokenSeq++
			tok := fmt.Sprintf("s%016x", s.tokenSeq)
			old.setTok(tok)
			s.named[tok] = old
			old.cur = sess
			rep.Token = tok
		} else {
			// A fresh session on a connection that already had one: the old
			// state is abandoned.
			delete(s.named, old.token)
			old.cur = nil
			discarded = old
			st := newSessState(s.cfg.DRCEntries)
			s.tokenSeq++
			st.token = fmt.Sprintf("s%016x", s.tokenSeq)
			s.named[st.token] = st
			st.cur = sess
			sess.st.Store(st)
			rep.Token = st.token
		}
		s.mu.Unlock()
		if discarded != nil {
			discarded.closeHandles()
		}
		sess.touch(now)
		return rep
	}

	s.mu.Lock()
	st, ok := s.named[q.Token]
	if ok && st.cur == nil && s.cfg.SessionLease > 0 && now.UnixNano()-st.loadActive() > int64(s.cfg.SessionLease) {
		// Lazy expiry: the lease ran out while the state sat detached;
		// treat the token as gone. A state still attached to a live
		// connection is never expired (the ExpireSessions invariant) — it
		// is taken over via the latest-wins path below instead.
		delete(s.named, q.Token)
		s.mu.Unlock()
		st.closeHandles()
		s.m.sessExpire.Inc()
		return &fsrpc.Reply{Op: q.Op, Tag: q.Tag, Status: fsrpc.StatusStale}
	}
	if !ok {
		s.mu.Unlock()
		return &fsrpc.Reply{Op: q.Op, Tag: q.Tag, Status: fsrpc.StatusStale}
	}
	stale := st.cur
	if stale == sess {
		stale = nil
	}
	st.cur = sess
	anon := sess.state()
	sess.st.Store(st)
	s.mu.Unlock()

	if stale != nil {
		// Latest wins: the previous holder (usually a dead transport the
		// server has not noticed yet) is torn down. It keeps pointing at st
		// on purpose: requests it already admitted to the worker queue must
		// keep executing against the shared duplicate-reply cache, or a
		// replay of the same sequence on this connection could apply the
		// mutation a second time. close is safe on a shared named state —
		// it only closes handles for anonymous ones — and detachLocked
		// only clears cur when it still points at the closing session.
		stale.close()
	}
	if anon != st && anon.tok() == "" {
		anon.closeHandles()
	}
	st.storeActive(now)
	s.m.sessResume.Inc()
	rep.Token = st.tok()
	rep.Resumed = true
	return rep
}

// detach clears the state's connection attachment if sess still holds it.
// Caller holds s.mu.
func (s *Server) detachLocked(sess *session) {
	if st := sess.state(); st.cur == sess {
		st.cur = nil
	}
}

// ExpireSessions sweeps the named-session table once, expiring every
// DETACHED state idle past Config.SessionLease: handles close, the
// duplicate-reply cache is dropped, and a later HELLO with the token gets
// ESTALE. States still attached to a live connection are never expired —
// the lease protects server memory from vanished clients, not from idle
// ones. Returns the number of sessions expired. The janitor goroutine
// calls this periodically when SessionLease > 0; tests call it directly.
func (s *Server) ExpireSessions() int {
	if s.cfg.SessionLease <= 0 {
		return 0
	}
	now := s.now().UnixNano()
	var victims []*sessState
	s.mu.Lock()
	tokens := make([]string, 0, len(s.named))
	for tok := range s.named {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	for _, tok := range tokens {
		st := s.named[tok]
		if st.cur == nil && now-st.loadActive() > int64(s.cfg.SessionLease) {
			delete(s.named, tok)
			victims = append(victims, st)
		}
	}
	s.mu.Unlock()
	for _, st := range victims {
		st.closeHandles()
		s.m.sessExpire.Inc()
	}
	return len(victims)
}

// janitor periodically expires idle detached sessions until Shutdown.
func (s *Server) janitor(period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.ExpireSessions()
		}
	}
}
