package fsserve_test

import (
	"bytes"
	"errors"
	"testing"

	"betrfs/internal/bench"
	"betrfs/internal/blockdev"
	"betrfs/internal/blockstore/local"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/registry"
	"betrfs/internal/sim"
	"betrfs/internal/vfs"
)

// TestBlockOpsOverWire drives the block class (DESIGN.md §14.3) against
// a mount-less storage node: a registry exporting one device as a block
// share, served by a server with a nil default mount.
func TestBlockOpsOverWire(t *testing.T) {
	env := sim.NewEnv(1)
	dev := blockdev.New(env, blockdev.SamsungEVO860().Scale(256))
	reg := registry.New()
	reg.AddStore("blk0", env, local.New(dev))
	cfg := fsserve.DefaultConfig()
	cfg.Registry = reg
	srv := fsserve.New(env, nil, cfg)
	defer srv.Shutdown()
	cli := dial(t, srv)

	h, size, err := cli.Bopen("blk0")
	if err != nil || h == 0 {
		t.Fatalf("bopen = %d, %v", h, err)
	}
	if size != dev.Size() {
		t.Fatalf("bopen size = %d, want %d", size, dev.Size())
	}
	if _, _, err := cli.Bopen("nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("bopen unknown share = %v, want ENOENT", err)
	}

	payload := bytes.Repeat([]byte{0x5a}, 2*blockdev.BlockSize)
	off := int64(16 * blockdev.BlockSize)
	if n, err := cli.Bwrite(h, off, payload); err != nil || n != len(payload) {
		t.Fatalf("bwrite = %d, %v", n, err)
	}
	if err := cli.Bflush(h); err != nil {
		t.Fatalf("bflush: %v", err)
	}
	got, err := cli.Bread(h, off, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("bread round trip failed: %v", err)
	}
	// The write really landed on the shared device, not a wire-side copy.
	direct := make([]byte, len(payload))
	if err := dev.ReadAt(direct, off); err != nil || !bytes.Equal(direct, payload) {
		t.Fatalf("device image mismatch after bwrite: %v", err)
	}

	// TRIM through the wire: deterministic read-after-discard zeroes, and
	// the discard reaches the device's TRIM ledger.
	if err := cli.Bdiscard(h, off, int64(len(payload))); err != nil {
		t.Fatalf("bdiscard: %v", err)
	}
	got, err = cli.Bread(h, off, len(payload))
	if err != nil || !bytes.Equal(got, make([]byte, len(payload))) {
		t.Fatalf("bread after bdiscard not zeroed: %v", err)
	}
	if dev.Stats().Discards == 0 || dev.Stats().BytesDiscarded != int64(len(payload)) {
		t.Fatalf("discard did not reach the device: %+v", dev.Stats())
	}

	// Stale handle surfaces EBADF, like file handles.
	if _, err := cli.Bread(h+100, 0, 512); !errors.Is(err, fsrpc.ErrBadHandle) {
		t.Fatalf("bread stale handle = %v, want EBADF", err)
	}

	// File-class ops have no namespace on a block-only node.
	if err := cli.Mkdir("dir"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("mkdir on block-only node = %v, want ENOENT", err)
	}
	if _, _, err := cli.Lookup("x", false); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("lookup on block-only node = %v, want ENOENT", err)
	}
	// STATFS still answers (not degraded, no mount to degrade).
	if sf, err := cli.Statfs(); err != nil || sf.Degraded {
		t.Fatalf("statfs on block-only node = %+v, %v", sf, err)
	}

	ents, err := cli.Shares()
	if err != nil || len(ents) != 1 || ents[0].Name != "blk0" || ents[0].Dir {
		t.Fatalf("shares = %+v, %v", ents, err)
	}
}

// TestAttachOverWire exercises the control class: SHARES listing both
// share kinds and ATTACH rebinding the session's mount mid-connection
// while existing state keeps working.
func TestAttachOverWire(t *testing.T) {
	in := bench.Build("ext4", 256)
	in2 := bench.Build("ext4", 256)
	reg := registry.New()
	reg.AddMount("fs0", in.Env, in.Mount)
	reg.AddMount("fs1", in2.Env, in2.Mount)
	cfg := fsserve.DefaultConfig()
	cfg.Registry = reg
	srv := fsserve.New(in.Env, in.Mount, cfg)
	defer srv.Shutdown()
	cli := dial(t, srv)

	ents, err := cli.Shares()
	if err != nil || len(ents) != 2 {
		t.Fatalf("shares = %+v, %v", ents, err)
	}
	for _, e := range ents {
		if !e.Dir {
			t.Fatalf("mount share %q not flagged Dir", e.Name)
		}
	}

	if err := cli.Mkdir("only-fs0"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := cli.Attach("nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("attach unknown = %v, want ENOENT", err)
	}
	if err := cli.Attach("fs1"); err != nil {
		t.Fatalf("attach: %v", err)
	}
	// The session now sees fs1's namespace: fs0's directory is gone.
	if _, err := cli.Readdir("only-fs0"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("readdir after attach = %v, want ENOENT", err)
	}
	if err := cli.Mkdir("only-fs1"); err != nil {
		t.Fatalf("mkdir on fs1: %v", err)
	}
	// Attach back: fs0's namespace is intact.
	if err := cli.Attach("fs0"); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if _, err := cli.Readdir("only-fs0"); err != nil {
		t.Fatalf("fs0 namespace lost across attach: %v", err)
	}
	// A second connection still lands on the server's default mount.
	cli2 := dial(t, srv)
	if _, err := cli2.Readdir("only-fs0"); err != nil {
		t.Fatalf("default mount changed for new sessions: %v", err)
	}
}
