package fsserve_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/metrics"
)

// rawConn drives the wire protocol frame by frame over one connection —
// the takeover tests need two connections presenting the same token,
// which the fsrpc client (one session per client) cannot script.
type rawConn struct {
	t  *testing.T
	rw net.Conn
}

func dialRaw(t *testing.T, srv *fsserve.Server) *rawConn {
	t.Helper()
	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	t.Cleanup(func() { cliEnd.Close() })
	return &rawConn{t: t, rw: cliEnd}
}

func (c *rawConn) send(q *fsrpc.Request) {
	c.t.Helper()
	if err := fsrpc.WriteFrame(c.rw, q.Encode()); err != nil {
		c.t.Fatalf("send %s: %v", q.Op, err)
	}
}

func (c *rawConn) recv() *fsrpc.Reply {
	c.t.Helper()
	c.rw.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := fsrpc.ReadFrame(c.rw)
	if err != nil {
		c.t.Fatalf("recv: %v", err)
	}
	r, err := fsrpc.DecodeReply(payload)
	if err != nil {
		c.t.Fatalf("decode reply: %v", err)
	}
	return r
}

func waitGauge(t *testing.T, g *metrics.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge stuck at %d, want %d", g.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueuedMutationFromTakenOverConnHitsSharedDRC pins the exactly-once
// guarantee across a latest-wins session takeover: a sequenced mutation
// the stale connection already admitted to the worker queue must keep
// executing against the session's shared duplicate-reply cache, so the
// client's replay of the same sequence on the new connection is answered
// from cache — not applied a second time. (A takeover that detached the
// stale connection's queued work from the DRC would double-apply.)
func TestQueuedMutationFromTakenOverConnHitsSharedDRC(t *testing.T) {
	in := bench.Build("betrfs-v0.6", 256)
	gate := make(chan struct{})
	parked := make(chan struct{}, 1)
	var park atomic.Bool
	cfg := fsserve.DefaultConfig() // Workers=1, DirectReads on
	cfg.ExecSlots = -1             // HELLO must not wait behind the parked worker
	cfg.OnExecute = func(op fsrpc.Op) {
		if op == fsrpc.OpMkdir && park.CompareAndSwap(true, false) {
			parked <- struct{}{}
			<-gate
		}
	}
	srv := fsserve.New(in.Env, in.Mount, cfg)
	defer srv.Shutdown()

	c1 := dialRaw(t, srv)
	c1.send(&fsrpc.Request{Op: fsrpc.OpHello, Tag: 1})
	hr := c1.recv()
	if hr.Status != fsrpc.StatusOK || hr.Token == "" {
		t.Fatalf("hello reply = %+v, want OK with token", hr)
	}

	// Park the single worker on a first mutation, then queue a sequenced
	// CREATE behind it: it is still waiting in the admission queue when
	// the session is taken over below.
	park.Store(true)
	c1.send(&fsrpc.Request{Op: fsrpc.OpMkdir, Tag: 2, Seq: 1, Path: "d"})
	<-parked
	c1.send(&fsrpc.Request{Op: fsrpc.OpCreate, Tag: 3, Seq: 2, Path: "f"})
	waitGauge(t, in.Env.Metrics.Gauge("fsserve.queue.depth"), 1)

	// Take the session over from a second connection (latest wins) and
	// replay the fate-unknown CREATE, as a resuming client would.
	c2 := dialRaw(t, srv)
	c2.send(&fsrpc.Request{Op: fsrpc.OpHello, Tag: 1, Token: hr.Token})
	rr := c2.recv()
	if rr.Status != fsrpc.StatusOK || !rr.Resumed {
		t.Fatalf("resume hello reply = %+v, want OK resumed", rr)
	}
	c2.send(&fsrpc.Request{Op: fsrpc.OpCreate, Tag: 2, Seq: 2, Path: "f"})
	close(gate)
	cr := c2.recv()
	if cr.Status != fsrpc.StatusOK || cr.Handle == 0 {
		t.Fatalf("replayed create reply = %+v, want OK with handle", cr)
	}

	// Exactly once: the stale connection's queued original executed and
	// cached; the replay hit the cache instead of re-running CREATE.
	if got := in.Env.Metrics.Counter("fsserve.op.create").Load(); got != 1 {
		t.Errorf("fsserve.op.create = %d, want 1 (CREATE applied twice)", got)
	}
	if got := in.Env.Metrics.Counter("fsserve.drc.hit").Load(); got != 1 {
		t.Errorf("fsserve.drc.hit = %d, want 1", got)
	}
}

// TestAttachedSessionIsTakenOverNotExpired presents the token of a live,
// attached session whose lease clock has lapsed: attached states are
// never expired — the HELLO must take the session over latest-wins, with
// the handle table intact, not ESTALE it and close its handles.
func TestAttachedSessionIsTakenOverNotExpired(t *testing.T) {
	var clock struct {
		mu  sync.Mutex
		now time.Time
	}
	clock.now = time.Unix(1000, 0)
	in := bench.Build("betrfs-v0.6", 256)
	cfg := fsserve.DefaultConfig()
	cfg.SessionLease = time.Minute
	cfg.LeaseNow = func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.now
	}
	srv := fsserve.New(in.Env, in.Mount, cfg)
	defer srv.Shutdown()

	cli := dial(t, srv)
	if err := cli.Hello(); err != nil {
		t.Fatalf("hello: %v", err)
	}
	tok, _ := cli.Session()
	h, _, err := cli.Create("f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cli.Write(h, 0, []byte("live")); err != nil {
		t.Fatalf("write: %v", err)
	}

	// The lease runs out while the session is still attached to its live
	// connection.
	clock.mu.Lock()
	clock.now = clock.now.Add(2 * time.Minute)
	clock.mu.Unlock()

	c2 := dialRaw(t, srv)
	c2.send(&fsrpc.Request{Op: fsrpc.OpHello, Tag: 1, Token: tok})
	r := c2.recv()
	if r.Status != fsrpc.StatusOK || !r.Resumed {
		t.Fatalf("hello on attached session with lapsed lease = %+v, want latest-wins takeover", r)
	}
	// The handle table survived the takeover.
	c2.send(&fsrpc.Request{Op: fsrpc.OpRead, Tag: 2, Handle: h, N: 4})
	rr := c2.recv()
	if rr.Status != fsrpc.StatusOK || string(rr.Data) != "live" {
		t.Fatalf("read through surviving handle = %+v, want %q", rr, "live")
	}
	if got := in.Env.Metrics.Counter("fsserve.session.expire").Load(); got != 0 {
		t.Errorf("fsserve.session.expire = %d, want 0 (attached state expired)", got)
	}
}

// TestHelloPromoteRacesPipelinedTraffic drives chainless traffic — which
// makes the session reader stamp the lease clock, reading the state's
// token — while HELLO promotes the anonymous state on a worker, naming it
// in place. Run under -race this pins that the promotion publishes the
// token safely.
func TestHelloPromoteRacesPipelinedTraffic(t *testing.T) {
	in := bench.Build("betrfs-v0.6", 256)
	cfg := fsserve.DefaultConfig()
	cfg.Workers = 4
	cfg.DirectReads = false // HELLO and reads run on workers, concurrently
	cfg.SessionLease = time.Minute
	srv := fsserve.New(in.Env, in.Mount, cfg)
	defer srv.Shutdown()

	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	cli := fsrpc.NewClientOpts(cliEnd, fsrpc.Options{Window: 8})
	t.Cleanup(func() { cli.Close() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = cli.Getattr("nope")
		}
	}()
	if err := cli.Hello(); err != nil {
		t.Fatalf("hello: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := cli.Mkdir("after"); err != nil {
		t.Fatalf("mkdir on the promoted session: %v", err)
	}
}
