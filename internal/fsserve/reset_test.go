package fsserve_test

import (
	"errors"
	"net"
	"testing"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/vfs"
)

// TestClientPoisonedAndReset covers the typed poisoning contract
// (DESIGN.md §11): a transport failure mid-protocol poisons the client
// with an error wrapping fsrpc.ErrPoisoned, every subsequent call fails
// fast with the same class, and Reset over a fresh connection restores
// service as a brand-new session — durable state is visible, but
// handles from the poisoned session are gone.
func TestClientPoisonedAndReset(t *testing.T) {
	in := bench.Build("betrfs-v0.6", 256)
	srv := fsserve.New(in.Env, in.Mount, fsserve.DefaultConfig())
	defer srv.Shutdown()

	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	cli := fsrpc.NewClient(cliEnd)
	defer cli.Close()

	if err := cli.Mkdir("dir"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	h, _, err := cli.Create("dir/file")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cli.Write(h, 0, []byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := cli.Fsync(h); err != nil {
		t.Fatalf("fsync: %v", err)
	}

	// Kill the transport out from under the client: the in-flight call
	// dies at the frame layer and must poison the client with the typed
	// sentinel, not a bare io error.
	cliEnd.Close()
	err = cli.Mkdir("dir/lost")
	if err == nil {
		t.Fatal("call over a dead transport succeeded")
	}
	if !errors.Is(err, fsrpc.ErrPoisoned) {
		t.Fatalf("dead-transport error = %v, want ErrPoisoned class", err)
	}
	// Fail-fast: later calls return the poisoned state without touching
	// the wire, whatever the op.
	if _, err := cli.Read(h, 0, 4); !errors.Is(err, fsrpc.ErrPoisoned) {
		t.Fatalf("read on poisoned client = %v, want ErrPoisoned", err)
	}
	if _, err := cli.Getattr("dir/file"); !errors.Is(err, fsrpc.ErrPoisoned) {
		t.Fatalf("getattr on poisoned client = %v, want ErrPoisoned", err)
	}

	// Redial: Reset swaps in the fresh transport and clears the poison.
	cliEnd2, srvEnd2 := net.Pipe()
	go srv.ServeConn(srvEnd2)
	cli.Reset(cliEnd2)

	// Durable state from the old session is visible...
	a, err := cli.Getattr("dir/file")
	if err != nil {
		t.Fatalf("getattr after reset: %v", err)
	}
	if a.Size != int64(len("payload")) {
		t.Fatalf("dir/file size after reset = %d, want %d", a.Size, len("payload"))
	}
	// ...but handles do not survive the session boundary.
	if _, err := cli.Read(h, 0, 4); !errors.Is(err, fsrpc.ErrBadHandle) {
		t.Fatalf("stale handle after reset = %v, want ErrBadHandle", err)
	}
	// The poisoning call's fate was unknown; re-issuing it must land in
	// one of the two legal states (§11 idempotency caveat).
	if err := cli.Mkdir("dir/lost"); err != nil && !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("re-issued mkdir after reset = %v, want nil or EEXIST", err)
	}
	// And the new session is fully writable.
	h2, _, err := cli.Create("dir/file2")
	if err != nil {
		t.Fatalf("create after reset: %v", err)
	}
	if _, err := cli.Write(h2, 0, []byte("again")); err != nil {
		t.Fatalf("write after reset: %v", err)
	}
}

// TestClosePoisonsClient checks that Close is terminal in the same typed
// way: calls after Close report ErrPoisoned, and the caller can tell
// "closed" from a live client without string matching.
func TestClosePoisonsClient(t *testing.T) {
	in := bench.Build("betrfs-v0.6", 256)
	srv := fsserve.New(in.Env, in.Mount, fsserve.DefaultConfig())
	defer srv.Shutdown()

	cliEnd, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	cli := fsrpc.NewClient(cliEnd)
	if err := cli.Mkdir("d"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := cli.Mkdir("d2"); !errors.Is(err, fsrpc.ErrPoisoned) {
		t.Fatalf("call after Close = %v, want ErrPoisoned", err)
	}
}
