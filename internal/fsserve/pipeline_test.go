package fsserve_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
)

// pipelinedServer builds a 4-worker server over a concurrent mount — the
// configuration where requests genuinely overlap and the §13.5 ordering
// chains are load-bearing.
func pipelinedServer(t *testing.T) (*bench.Instance, *fsserve.Server) {
	t.Helper()
	in := bench.BuildConcurrent("betrfs-v0.6", 256, 4)
	cfg := fsserve.DefaultConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 256
	srv := fsserve.New(in.Env, in.Mount, cfg)
	t.Cleanup(srv.Shutdown)
	return in, srv
}

// TestPipelinedWritesApplyInIssueOrder pipelines many same-handle WRITEs
// to overlapping offsets through a multi-worker server without waiting
// for replies. §13.5 requires same-handle mutations to apply in issue
// order, so the final byte at each offset must be the last write issued
// there — any reordering leaves an earlier generation visible.
func TestPipelinedWritesApplyInIssueOrder(t *testing.T) {
	_, srv := pipelinedServer(t)
	cli := dial(t, srv)

	h, _, err := cli.Create("f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Generations of full-file writes: each pass overwrites the same 512
	// bytes with a new fill value. Issue all of them async, back to back.
	const gens, size = 24, 512
	var calls []*fsrpc.Call
	for g := 0; g < gens; g++ {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(g + 1)
		}
		calls = append(calls, cli.Go(context.Background(),
			&fsrpc.Request{Op: fsrpc.OpWrite, Handle: h, Off: 0, Data: data}))
	}
	// One FSYNC rides the same chain, so it must run after every write.
	calls = append(calls, cli.Go(context.Background(),
		&fsrpc.Request{Op: fsrpc.OpFsync, Handle: h}))
	for i, c := range calls {
		<-c.Done()
		if c.Err != nil {
			t.Fatalf("pipelined call %d: %v", i, c.Err)
		}
	}
	got, err := cli.Read(h, 0, size)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(got) != size {
		t.Fatalf("read back %d bytes, want %d", len(got), size)
	}
	for i, b := range got {
		if b != byte(gens) {
			t.Fatalf("byte %d = %d, want %d (last write lost to reordering)", i, b, gens)
		}
	}
}

// TestPipelinedNamespaceOrder pipelines dependent directory mutations —
// mkdir parent, create children inside it, rename, unlink — without
// waiting for replies. The per-directory chains must execute them in
// issue order: every call succeeds, and the final namespace matches the
// sequential result.
func TestPipelinedNamespaceOrder(t *testing.T) {
	_, srv := pipelinedServer(t)
	cli := dial(t, srv)

	var calls []*fsrpc.Call
	issue := func(q *fsrpc.Request) {
		calls = append(calls, cli.Go(context.Background(), q))
	}
	issue(&fsrpc.Request{Op: fsrpc.OpMkdir, Path: "d"})
	for i := 0; i < 8; i++ {
		issue(&fsrpc.Request{Op: fsrpc.OpCreate, Path: fmt.Sprintf("d/f%d", i)})
	}
	issue(&fsrpc.Request{Op: fsrpc.OpRename, Path: "d/f0", Path2: "d/renamed"})
	issue(&fsrpc.Request{Op: fsrpc.OpUnlink, Path: "d/f1"})
	for i, c := range calls {
		<-c.Done()
		if c.Err != nil {
			t.Fatalf("pipelined namespace call %d (%s %q): %v", i, c.Req.Op, c.Req.Path, c.Err)
		}
	}
	ents, err := cli.Readdir("d")
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = true
	}
	if names["f0"] || names["f1"] || !names["renamed"] || len(ents) != 7 {
		t.Fatalf("namespace after pipelined mutations = %v, want f2..f7 + renamed", names)
	}
}

// TestPipelinedConcurrentSessions hammers one multi-worker server from
// several pipelined sessions at once (run under -race in CI): every call
// must complete without error and the per-session op accounting must
// reconcile. This is the concurrency smoke for the whole serve path —
// chains, direct reads, batched writer, zero-copy frames.
func TestPipelinedConcurrentSessions(t *testing.T) {
	in, srv := pipelinedServer(t)

	const sessions, files = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		cli := dial(t, srv)
		wg.Add(1)
		go func(s int, cli *fsrpc.Client) {
			defer wg.Done()
			dir := fmt.Sprintf("s%d", s)
			if err := cli.Mkdir(dir); err != nil {
				errs <- err
				return
			}
			payload := []byte("pipelined payload")
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("%s/f%d", dir, i)
				h, _, err := cli.Create(path)
				if err != nil {
					errs <- fmt.Errorf("create %s: %w", path, err)
					return
				}
				if _, err := cli.Write(h, 0, payload); err != nil {
					errs <- fmt.Errorf("write %s: %w", path, err)
					return
				}
				got, err := cli.Read(h, 0, len(payload))
				if err != nil || len(got) != len(payload) {
					errs <- fmt.Errorf("read %s: %v (%d bytes)", path, err, len(got))
					return
				}
			}
			if _, err := cli.Statfs(); err != nil {
				errs <- err
			}
		}(s, cli)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent session failed: %v", err)
	}
	if got := in.Env.Metrics.Counter("fsserve.op.count").Load(); got < sessions*(1+3*files+1) {
		t.Fatalf("fsserve.op.count = %d, want >= %d", got, sessions*(1+3*files+1))
	}
	if in.Env.Metrics.Counter("fsserve.zerocopy.bytes").Load() == 0 {
		t.Fatal("zero-copy READ framing never engaged")
	}
}
