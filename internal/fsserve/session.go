package fsserve

import (
	"io"
	"net"
	"sync"
	"sync/atomic"

	"betrfs/internal/blockstore"
	"betrfs/internal/fsrpc"
	"betrfs/internal/vfs"
)

// readBufPool recycles MaxData-sized READ buffers: execute fills one
// straight from the file, the reply references it (no intermediate copy),
// and the session writer returns it after the frame hits the wire.
var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, fsrpc.MaxData)
	return &b
}}

// hdrBufPool recycles reply header/payload scratch. For a zero-copy READ
// reply only the 18-byte frame header lands here; other replies encode
// their whole payload into it.
var hdrBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64)
	return &b
}}

// maxPendingReplies bounds the per-session outgoing reply queue. A
// producer (worker or the session reader's shed path) blocks once the
// slow client's queue is full — the same backpressure the old inline
// write gave, now decoupled from frame assembly.
const maxPendingReplies = 256

// outReply is one reply staged for the session writer: pre-framed
// scatter-gather segments plus the pooled buffers behind them and the
// completion callback to run once the write attempt is over.
type outReply struct {
	segs     [][]byte
	hdr      *[]byte // pooled scratch backing segs[0]
	data     *[]byte // pooled READ buffer referenced by segs[1], if any
	bytes    int64
	zerocopy int64
	done     func() // inflight/gauge accounting; runs exactly once
}

// finish releases o's pooled buffers and runs its completion callback.
// wrote reports whether the frame actually reached the transport (byte
// accounting is skipped for replies dropped on a broken connection).
func (o *outReply) finish(srv *Server, wrote bool) {
	if wrote {
		srv.m.respBytes.Add(o.bytes)
		if o.zerocopy > 0 {
			srv.m.zerocopyBytes.Add(o.zerocopy)
		}
	}
	if o.hdr != nil {
		*o.hdr = o.segs[0][:0] // keep any growth the encode caused
		hdrBufPool.Put(o.hdr)
	}
	if o.data != nil {
		readBufPool.Put(o.data)
	}
	if o.done != nil {
		o.done()
	}
}

// session is one client connection's server-side state: the transport, a
// dedicated reply writer with batching, the per-class ordering chains for
// pipelined requests, and the bounded handle table.
//
// Replies are not written inline by workers. Each completed reply is
// framed into scatter-gather segments (READ payloads by reference —
// fsserve.zerocopy.bytes) and appended to the session's pending queue;
// the writer goroutine drains the whole queue in one net.Buffers flush
// (fsserve.batch.replies observes the batch size), so N pipelined
// completions cost one syscall-shaped write instead of N.
//
// Handles are per-session open-file descriptions. The protocol has no
// RELEASE op; instead the table is a bounded cache — beyond
// Config.MaxHandles the oldest handle is closed and evicted, and a
// request naming an evicted handle gets EBADF (clients re-LOOKUP). This
// keeps a misbehaving client from pinning unbounded server memory while
// sparing well-behaved clients an extra round trip per file.
type session struct {
	srv    *Server
	rw     io.ReadWriteCloser
	inline bool // InlineReplies: write replies synchronously, no writer

	wmu        sync.Mutex
	wcond      *sync.Cond // pending gained replies, or closing
	wspace     *sync.Cond // writer drained pending / finished a write
	pending    []outReply
	writing    bool // writer is mid-flush on a taken batch
	wclosed    bool
	broken     bool // transport write failed; later replies are dropped
	writerDone chan struct{}

	// outstanding counts admitted-but-unreplied requests on this session;
	// sampled into fsrpc.pipeline.depth at each admission.
	outstanding atomic.Int64

	// chains holds the tail completion channel of each ordering chain
	// (per-handle for WRITE/FSYNC, one namespace chain for path-mutating
	// ops) so pipelined mutations execute in issue order even when reads
	// overtake them. See DESIGN.md §13.5.
	omu    sync.Mutex
	chains map[uint64]chan struct{}

	// st is the resumable state (handle table + duplicate-reply cache,
	// DESIGN.md §13.9): anonymous until HELLO names it, swapped atomically
	// when a HELLO promotes or resumes while other ops are in flight.
	st atomic.Pointer[sessState]

	// mnt is the mount the session's file-class ops run against: the
	// server's default mount until an ATTACH rebinds it to a registry
	// mount share (DESIGN.md §14.2). Nil on a block-only storage node.
	// Connection-scoped, like the block handles: a resumed session starts
	// back on the default mount.
	mnt atomic.Pointer[vfs.Mount]

	// Block-share handles (BOPEN, §14.3). Connection-scoped on purpose —
	// they are NOT part of sessState and do not survive a session resume:
	// a block handle holds no server-side state worth replaying (block
	// ops are idempotent at absolute offsets), so the client simply
	// re-BOPENs after a reconnect.
	bmu     sync.Mutex
	bnext   uint64
	bstores map[uint64]blockstore.Store
}

func newSession(srv *Server, rw io.ReadWriteCloser) *session {
	s := &session{
		srv:    srv,
		rw:     rw,
		inline: srv.cfg.InlineReplies,
		chains: make(map[uint64]chan struct{}),
	}
	s.st.Store(newSessState(srv.cfg.DRCEntries))
	if srv.mount != nil {
		s.mnt.Store(srv.mount)
	}
	s.wcond = sync.NewCond(&s.wmu)
	s.wspace = sync.NewCond(&s.wmu)
	if !s.inline {
		s.writerDone = make(chan struct{})
		go s.writer()
	}
	return s
}

// handleKeyBit separates handle-chain keys from directory-chain keys in
// the session chain table (a collision would only over-serialize, never
// misorder, but keeping the spaces apart makes depth observable per
// class).
const handleKeyBit = uint64(1) << 63

// dirKey hashes a directory path into the chain-key space (FNV-1a, with
// the handle bit cleared).
func dirKey(dir string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(dir); i++ {
		h ^= uint64(dir[i])
		h *= prime64
	}
	return h &^ handleKeyBit
}

// parentDir returns the directory component of a wire path ("" for a
// top-level name), mirroring how the mount resolves parents.
func parentDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return ""
}

// chainKeys classifies q for the §13.5 ordering guarantees: WRITE/FSYNC
// order per handle, path-mutating ops order per affected parent directory
// (RENAME and RMDIR join the chain of every directory they touch, up to
// two), and everything else (reads) runs unordered. Keying mutations by
// directory rather than one per-session namespace chain lets pipelined
// clients mutate disjoint directories concurrently while same-directory
// mutations still apply in issue order.
func chainKeys(q *fsrpc.Request) (keys [2]uint64, n int) {
	switch q.Op {
	case fsrpc.OpWrite, fsrpc.OpFsync:
		keys[0] = q.Handle | handleKeyBit
		return keys, 1
	case fsrpc.OpBwrite, fsrpc.OpBflush, fsrpc.OpBdiscard:
		// Block mutations chain per block handle so a pipelined
		// write→flush applies in issue order. Block and file handles are
		// separate id spaces sharing one chain-key space; a collision
		// only over-serializes, never misorders. BREAD stays chainless
		// (DirectReads fast path), like READ.
		keys[0] = q.Handle | handleKeyBit
		return keys, 1
	case fsrpc.OpCreate, fsrpc.OpMkdir, fsrpc.OpUnlink:
		keys[0] = dirKey(parentDir(q.Path))
		return keys, 1
	case fsrpc.OpRmdir:
		keys[0] = dirKey(parentDir(q.Path))
		keys[1] = dirKey(q.Path) // creations inside must settle first
	case fsrpc.OpRename:
		keys[0] = dirKey(parentDir(q.Path))
		keys[1] = dirKey(parentDir(q.Path2))
	default:
		return keys, 0
	}
	if keys[1] == keys[0] {
		return keys, 1
	}
	return keys, 2
}

// link places t at the tail of its ordering chains (if its op has any).
// Called from the session reader only, so links happen in wire order —
// which is what makes chain order equal the client's issue order. A task
// spanning two chains (RENAME, RMDIR) installs the same done channel as
// both tails; every wait edge points at an earlier-admitted task, so the
// wait graph cannot cycle.
func (s *session) link(t *task) {
	keys, n := chainKeys(t.req)
	if n == 0 {
		return
	}
	s.omu.Lock()
	t.chainKeys = keys
	t.nchains = n
	t.done = make(chan struct{})
	for i := 0; i < n; i++ {
		t.prev[i] = s.chains[keys[i]] // nil for a fresh chain
		s.chains[keys[i]] = t.done
	}
	s.omu.Unlock()
}

// unlink undoes link after a failed admission (queue full). Safe because
// the session reader is serial: nothing can have linked after t yet.
func (s *session) unlink(t *task) {
	if t.nchains == 0 {
		return
	}
	s.omu.Lock()
	for i := 0; i < t.nchains; i++ {
		if s.chains[t.chainKeys[i]] == t.done {
			if t.prev[i] != nil {
				s.chains[t.chainKeys[i]] = t.prev[i]
			} else {
				delete(s.chains, t.chainKeys[i])
			}
		}
	}
	s.omu.Unlock()
}

// finishChain marks t's chain positions complete, releasing any
// successors, and reaps the chain-table entries where t is still the
// tail.
func (s *session) finishChain(t *task) {
	if t.nchains == 0 {
		return
	}
	close(t.done)
	s.omu.Lock()
	for i := 0; i < t.nchains; i++ {
		if s.chains[t.chainKeys[i]] == t.done {
			delete(s.chains, t.chainKeys[i])
		}
	}
	s.omu.Unlock()
}

// put registers f and returns its handle, evicting the oldest handle if
// the table is full.
func (s *session) put(f *vfs.File) uint64 {
	return s.state().put(f, s.srv.cfg.MaxHandles)
}

// get resolves a handle.
func (s *session) get(id uint64) (*vfs.File, bool) {
	return s.state().get(id)
}

// mount returns the session's attached mount (nil on a block-only node).
func (s *session) mount() *vfs.Mount { return s.mnt.Load() }

// bput registers a block-share handle. The table is bounded like the
// file-handle table: beyond MaxHandles the oldest handle is evicted and
// later requests naming it get EBADF.
func (s *session) bput(st blockstore.Store) uint64 {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	if s.bstores == nil {
		s.bstores = make(map[uint64]blockstore.Store)
	}
	s.bnext++
	id := s.bnext
	s.bstores[id] = st
	if len(s.bstores) > s.srv.cfg.MaxHandles {
		oldest := id
		for k := range s.bstores {
			if k < oldest {
				oldest = k
			}
		}
		delete(s.bstores, oldest)
	}
	return id
}

// bget resolves a block-share handle.
func (s *session) bget(id uint64) (blockstore.Store, bool) {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	st, ok := s.bstores[id]
	return st, ok
}

// sendReply hands one reply to the session writer (or writes it inline in
// InlineReplies mode). data is the pooled READ buffer the reply references,
// nil otherwise; done runs exactly once, after the write attempt.
func (s *session) sendReply(r *fsrpc.Reply, data *[]byte, done func()) {
	if s.inline {
		s.writeInline(r)
		if data != nil {
			readBufPool.Put(data)
		}
		if done != nil {
			done()
		}
		return
	}
	hdr := hdrBufPool.Get().(*[]byte)
	segs, zc, err := r.FrameParts((*hdr)[:0])
	if err != nil {
		// Unencodable reply (cannot happen for server-built replies, which
		// are bounded by MaxData); drop it but keep the accounting sound.
		hdrBufPool.Put(hdr)
		o := outReply{data: data, done: done}
		o.finish(s.srv, false)
		return
	}
	var total int64
	for _, seg := range segs {
		total += int64(len(seg))
	}
	o := outReply{segs: segs, hdr: hdr, data: data, bytes: total, zerocopy: int64(zc), done: done}

	s.wmu.Lock()
	if len(s.pending) == 0 && !s.writing && !s.wclosed && !s.broken {
		// Fast path: the transport is idle and nothing is staged ahead of
		// us, so write the frame from this goroutine instead of paying a
		// handoff to the writer. The writing flag keeps the writer (and
		// other fast-path callers) off the transport until we're done;
		// anything staged meanwhile is flushed by the writer afterwards.
		s.writing = true
		s.wmu.Unlock()
		bufs := net.Buffers(o.segs)
		_, err := bufs.WriteTo(s.rw)
		s.wmu.Lock()
		s.writing = false
		if err != nil {
			s.broken = true
		}
		s.wcond.Signal()
		s.wspace.Broadcast()
		s.wmu.Unlock()
		if err == nil {
			s.srv.m.batchReplies.Observe(1)
		}
		o.finish(s.srv, err == nil)
		return
	}
	for len(s.pending) >= maxPendingReplies && !s.wclosed && !s.broken {
		s.wspace.Wait()
	}
	if s.wclosed || s.broken {
		s.wmu.Unlock()
		o.finish(s.srv, false)
		return
	}
	s.pending = append(s.pending, o)
	s.wcond.Signal()
	s.wmu.Unlock()
}

// writeInline is the InlineReplies (synchronous-baseline) write path:
// encode, copy, one frame per write, serialized on wmu — the pre-pipeline
// behavior, kept so the serve bench can measure the old path against the
// batched one in the same binary.
func (s *session) writeInline(r *fsrpc.Reply) {
	payload := r.Encode()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.broken || s.wclosed {
		return
	}
	if err := fsrpc.WriteFrame(s.rw, payload); err != nil {
		s.broken = true
		return
	}
	s.srv.m.respBytes.Add(int64(len(payload)) + 4)
}

// writer drains the pending reply queue: each pass takes every staged
// reply and pushes all their segments through the transport in a single
// net.Buffers flush. Write failures mark the session broken; later
// replies are finished (buffers released, accounting callbacks run)
// without touching the dead transport, so Shutdown's drain barrier can
// never hang on a vanished client.
func (s *session) writer() {
	defer close(s.writerDone)
	var batch []outReply
	for {
		s.wmu.Lock()
		for (len(s.pending) == 0 || s.writing) && !(s.wclosed && !s.writing) {
			s.wcond.Wait()
		}
		if len(s.pending) == 0 { // wclosed and fully drained
			s.wmu.Unlock()
			return
		}
		batch, s.pending = s.pending, batch[:0]
		s.writing = true
		broken := s.broken
		s.wspace.Broadcast()
		s.wmu.Unlock()

		if !broken {
			var bufs net.Buffers
			for _, o := range batch {
				bufs = append(bufs, o.segs...)
			}
			if _, err := bufs.WriteTo(s.rw); err != nil {
				broken = true
			} else {
				s.srv.m.batchReplies.Observe(int64(len(batch)))
			}
		}

		s.wmu.Lock()
		s.writing = false
		if broken {
			s.broken = true
		}
		s.wspace.Broadcast()
		s.wmu.Unlock()

		for i := range batch {
			batch[i].finish(s.srv, !broken)
			batch[i] = outReply{}
		}
	}
}

// flush waits until every staged reply has been pushed through (or the
// session broke/closed). The reader uses it before tearing a connection
// down for a protocol error, so the best-effort EPROTO reply gets out.
func (s *session) flush() {
	if s.inline {
		return
	}
	s.wmu.Lock()
	for (len(s.pending) > 0 || s.writing) && !s.wclosed && !s.broken {
		s.wspace.Wait()
	}
	s.wmu.Unlock()
}

// close releases the session: the writer (after it drains — replies
// staged behind a closed transport are finished, not written), the
// transport, and — for an anonymous session only — every open handle. A
// named session's handle table belongs to its sessState and survives the
// connection for the lease, awaiting a resuming HELLO (DESIGN.md §13.9).
// Safe to call more than once.
func (s *session) close() {
	s.wmu.Lock()
	s.wclosed = true
	s.wcond.Broadcast()
	s.wspace.Broadcast()
	s.wmu.Unlock()
	s.rw.Close() // unblocks a writer stuck mid-flush
	if !s.inline {
		<-s.writerDone
	}
	if st := s.state(); st.tok() == "" {
		st.closeHandles()
	}
}
