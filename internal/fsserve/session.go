package fsserve

import (
	"io"
	"sync"

	"betrfs/internal/fsrpc"
	"betrfs/internal/vfs"
)

// session is one client connection's server-side state: the transport, a
// write mutex (the worker pool and the reader's shed path both write
// replies), and the bounded handle table.
//
// Handles are per-session open-file descriptions. The protocol has no
// RELEASE op; instead the table is a bounded cache — beyond
// Config.MaxHandles the oldest handle is closed and evicted, and a
// request naming an evicted handle gets EBADF (clients re-LOOKUP). This
// keeps a misbehaving client from pinning unbounded server memory while
// sparing well-behaved clients an extra round trip per file.
type session struct {
	srv *Server

	wmu sync.Mutex
	rw  io.ReadWriteCloser

	hmu     sync.Mutex
	nextID  uint64
	handles map[uint64]*vfs.File
	order   []uint64 // insertion order, for FIFO eviction
}

func newSession(srv *Server, rw io.ReadWriteCloser) *session {
	return &session{srv: srv, rw: rw, handles: make(map[uint64]*vfs.File)}
}

// put registers f and returns its handle, evicting the oldest handle if
// the table is full.
func (s *session) put(f *vfs.File) uint64 {
	s.hmu.Lock()
	defer s.hmu.Unlock()
	s.nextID++
	id := s.nextID
	s.handles[id] = f
	s.order = append(s.order, id)
	if len(s.handles) > s.srv.cfg.MaxHandles {
		victim := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.handles[victim]; ok {
			old.Close()
			delete(s.handles, victim)
		}
	}
	return id
}

// get resolves a handle.
func (s *session) get(id uint64) (*vfs.File, bool) {
	s.hmu.Lock()
	defer s.hmu.Unlock()
	f, ok := s.handles[id]
	return f, ok
}

// writeReply frames and writes one reply, serialized against concurrent
// writers. Write failures mean the peer is gone; the reader loop notices
// on its next read, so they are dropped here.
func (s *session) writeReply(r *fsrpc.Reply) {
	payload := r.Encode()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := fsrpc.WriteFrame(s.rw, payload); err == nil {
		s.srv.m.respBytes.Add(int64(len(payload)) + 4)
	}
}

// close releases the session: every open handle and the transport.
func (s *session) close() {
	s.hmu.Lock()
	for _, f := range s.handles {
		f.Close()
	}
	s.handles = make(map[uint64]*vfs.File)
	s.order = nil
	s.hmu.Unlock()
	s.rw.Close()
}
