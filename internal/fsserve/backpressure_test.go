package fsserve_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"betrfs/internal/bench"
	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/vfs"
)

// parkableServer builds a server whose single worker parks inside
// execute on the first STATFS request until gate is closed, signalling
// on parked once it is stuck. Every other op passes straight through.
func parkableServer(t *testing.T, cfg fsserve.Config) (in *bench.Instance, srv *fsserve.Server, release func(), parked chan struct{}) {
	t.Helper()
	in = bench.BuildConcurrent("ext4", 256, 1)
	// These tests drive read-class ops (STATFS/GETATTR) through the
	// admission queue to exercise backpressure; the DirectReads fast path
	// would serve them on the session reader and bypass it.
	cfg.DirectReads = false
	gate := make(chan struct{})
	parked = make(chan struct{}, 4)
	cfg.OnExecute = func(op fsrpc.Op) {
		if op == fsrpc.OpStatfs {
			parked <- struct{}{}
			<-gate
		}
	}
	srv = fsserve.New(in.Env, in.Mount, cfg)
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	// LIFO cleanup order: unpark the worker before Shutdown drains, so a
	// mid-test failure cannot wedge the drain barrier forever.
	t.Cleanup(srv.Shutdown)
	t.Cleanup(release)
	return in, srv, release, parked
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSaturationShedsEBUSY parks the only worker, fills the admission
// queue, and checks that further requests are shed immediately with
// EBUSY instead of blocking the connection reader — and that once the
// worker resumes, every admitted request still completes. The test
// finishing at all is the no-deadlock assertion.
func TestSaturationShedsEBUSY(t *testing.T) {
	cfg := fsserve.DefaultConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 2
	in, srv, release, parked := parkableServer(t, cfg)

	parkCli := dial(t, srv)
	statfsErr := make(chan error, 1)
	go func() {
		_, err := parkCli.Statfs()
		statfsErr <- err
	}()
	<-parked

	// Two requests fit the queue while the worker is stuck.
	queued := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cli := dial(t, srv)
		go func() {
			_, err := cli.Getattr("missing")
			queued <- err
		}()
	}
	depth := in.Env.Metrics.Gauge("fsserve.queue.depth")
	waitCond(t, "queue to fill", func() bool { return depth.Load() == 2 })

	// The third is shed synchronously with EBUSY.
	shedCli := dial(t, srv)
	if _, err := shedCli.Getattr("missing"); !errors.Is(err, fsrpc.ErrBusy) {
		t.Fatalf("request on full queue = %v, want EBUSY", err)
	}
	if got := in.Env.Metrics.Counter("fsserve.queue.shed").Load(); got < 1 {
		t.Fatalf("fsserve.queue.shed = %d, want >= 1", got)
	}

	// Release the worker: the parked op and both queued ops complete.
	release()
	if err := <-statfsErr; err != nil {
		t.Fatalf("parked statfs: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-queued; !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("queued getattr after release = %v, want ENOENT", err)
		}
	}
}

// TestQueueWaitShedsStaleRequests parks the worker long enough that
// queued requests outlive Config.QueueWait, then checks they are shed at
// dequeue with EBUSY and counted, rather than executed late.
func TestQueueWaitShedsStaleRequests(t *testing.T) {
	cfg := fsserve.DefaultConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 8
	cfg.QueueWait = time.Millisecond
	in, srv, release, parked := parkableServer(t, cfg)

	parkCli := dial(t, srv)
	statfsErr := make(chan error, 1)
	go func() {
		_, err := parkCli.Statfs()
		statfsErr <- err
	}()
	<-parked

	const stale = 3
	queued := make(chan error, stale)
	for i := 0; i < stale; i++ {
		cli := dial(t, srv)
		go func() {
			_, err := cli.Getattr("missing")
			queued <- err
		}()
	}
	depth := in.Env.Metrics.Gauge("fsserve.queue.depth")
	waitCond(t, "queue to fill", func() bool { return depth.Load() == stale })
	time.Sleep(20 * time.Millisecond) // let every queued request expire
	release()

	if err := <-statfsErr; err != nil {
		t.Fatalf("parked statfs: %v", err)
	}
	for i := 0; i < stale; i++ {
		if err := <-queued; !errors.Is(err, fsrpc.ErrBusy) {
			t.Fatalf("stale queued request = %v, want EBUSY", err)
		}
	}
	if got := in.Env.Metrics.Counter("fsserve.deadline.shed").Load(); got != stale {
		t.Fatalf("fsserve.deadline.shed = %d, want %d", got, stale)
	}
}

// TestGracefulDrain checks Shutdown's contract: in-flight requests run
// to completion and their replies are delivered, requests arriving while
// draining get ESHUTDOWN, and Shutdown itself returns only once the
// workers have stopped.
func TestGracefulDrain(t *testing.T) {
	cfg := fsserve.DefaultConfig()
	cfg.Workers = 1
	in, srv, release, parked := parkableServer(t, cfg)

	parkCli := dial(t, srv)
	statfsErr := make(chan error, 1)
	go func() {
		_, err := parkCli.Statfs()
		statfsErr <- err
	}()
	<-parked

	lateCli := dial(t, srv) // connected before the drain begins
	// dial returns before ServeConn registers the session; wait for the
	// registration so Shutdown cannot refuse lateCli as a brand-new
	// connection instead of draining it.
	sessions := in.Env.Metrics.Gauge("fsserve.session.open")
	waitCond(t, "lateCli registration", func() bool { return sessions.Load() == 2 })
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()

	// Wait for the drain state flip (visible via the counter) before
	// probing: a request sent while still serving would be admitted
	// behind the parked worker and block this test forever.
	drainCtr := in.Env.Metrics.Counter("fsserve.drain.count")
	waitCond(t, "drain to start", func() bool { return drainCtr.Load() == 1 })

	// While draining, new requests on existing connections get ESHUTDOWN.
	if _, err := lateCli.Getattr("x"); !errors.Is(err, fsrpc.ErrShutdown) {
		t.Fatalf("request while draining = %v, want ESHUTDOWN", err)
	}
	select {
	case <-done:
		t.Fatal("Shutdown returned while a request was still in flight")
	default:
	}

	// Releasing the worker lets the in-flight reply out and the drain end.
	release()
	if err := <-statfsErr; err != nil {
		t.Fatalf("in-flight statfs reply lost during drain: %v", err)
	}
	<-done
	if got := in.Env.Metrics.Counter("fsserve.drain.count").Load(); got != 1 {
		t.Fatalf("fsserve.drain.count = %d, want 1", got)
	}

	// A connection arriving after shutdown is refused outright.
	refused := dial(t, srv)
	if _, err := refused.Getattr("x"); err == nil {
		t.Fatal("request on post-shutdown connection succeeded")
	}
}
