// Package stor defines the byte-store interface shared by the Bε-tree, the
// write-ahead log, and the two storage backends (the Simple File Layer and
// the stacked ext4 southbound). Keeping it separate avoids dependency
// cycles between those packages.
package stor

// Wait blocks (advances the simulated clock) until an asynchronous I/O
// completes.
type Wait func()

// File is a named region of storage with direct synchronous and
// asynchronous I/O plus a durability barrier. Offsets are file-relative.
type File interface {
	// ReadAt synchronously reads len(p) bytes at off.
	ReadAt(p []byte, off int64)
	// WriteAt synchronously writes len(p) bytes at off.
	WriteAt(p []byte, off int64)
	// SubmitRead starts an asynchronous read; p is filled when the
	// returned Wait is called.
	SubmitRead(p []byte, off int64) Wait
	// SubmitWrite starts an asynchronous write; the caller must not
	// modify p until the returned Wait is called.
	SubmitWrite(p []byte, off int64) Wait
	// Flush makes all completed writes durable.
	Flush()
	// Capacity returns the addressable size of the file in bytes.
	Capacity() int64
}
