// Package stor defines the byte-store interface shared by the Bε-tree, the
// write-ahead log, and the two storage backends (the Simple File Layer and
// the stacked ext4 southbound). Keeping it separate avoids dependency
// cycles between those packages.
package stor

// Wait blocks (advances the simulated clock) until an asynchronous I/O
// completes, returning the command's outcome. On error the I/O did not
// transfer its data.
type Wait func() error

// File is a named region of storage with direct synchronous and
// asynchronous I/O plus a durability barrier. Offsets are file-relative.
// All I/O can fail with a device error (wrapping ioerr.ErrIO); callers
// must check.
type File interface {
	// ReadAt synchronously reads len(p) bytes at off; on error the
	// contents of p are undefined.
	ReadAt(p []byte, off int64) error
	// WriteAt synchronously writes len(p) bytes at off.
	WriteAt(p []byte, off int64) error
	// SubmitRead starts an asynchronous read; p is filled when the
	// returned Wait is called and returns nil.
	SubmitRead(p []byte, off int64) Wait
	// SubmitWrite starts an asynchronous write; the caller must not
	// modify p until the returned Wait is called.
	SubmitWrite(p []byte, off int64) Wait
	// Flush makes all completed writes durable.
	Flush() error
	// Discard (TRIM) tells the storage that [off, off+length) no longer
	// holds live data. Advisory: backends that cannot pass the hint down
	// (the stacked southbound path) silently drop it, and callers must
	// tolerate failure. Like a write, a discard is not durable — and its
	// effect on stored bytes not guaranteed — until the next Flush.
	Discard(off, length int64) error
	// Capacity returns the addressable size of the file in bytes.
	Capacity() int64
}
