package bench

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"betrfs/internal/fsrpc"
	"betrfs/internal/fsserve"
	"betrfs/internal/metrics"
)

// Serve-bench mode: betrbench -serve -clients N mounts each system behind
// an fsserve server and drives N client sessions through the fsrpc wire
// path over in-process pipes. With workers <= 1 the run is deterministic —
// one driver goroutine issues ops round-robin across the sessions against
// a single-worker server, so requests execute in a fixed order and the
// latency histogram (hence the reported percentiles) is bit-identical run
// to run at a fixed seed. With workers > 1 each session gets its own
// goroutine and results are throughput-style, like the §9 multi-client
// mode.

// ServeSystems lists the systems the serve bench sweeps: the five
// fault-injection stacks (one representative per FS family plus both
// BetrFS generations).
var ServeSystems = []string{"ext4", "f2fs", "btrfs", "betrfs-v0.4", "betrfs-v0.6"}

// ServeResult is one system's serve-bench row.
type ServeResult struct {
	System   string
	Clients  int
	Workers  int
	Ops      int64         // completed client calls (successful replies)
	Shed     int64         // requests shed with EBUSY (queue full or deadline)
	SimTime  time.Duration // simulated time consumed
	WallTime time.Duration // host wall clock (not part of the JSON document)
	P50      int64         // per-op simulated latency percentiles, ns
	P95      int64
	P99      int64
	Errors   []string
}

// KOpsPerSimSec reports simulated wire-op throughput.
func (r ServeResult) KOpsPerSimSec() float64 {
	if r.SimTime <= 0 {
		return 0
	}
	return float64(r.Ops) / r.SimTime.Seconds() / 1000
}

// serveClient is one session's scripted state: the wire client, the handle
// the previous step produced, and the first error (which stops the
// script).
type serveClient struct {
	cli   *fsrpc.Client
	h     uint64
	steps []func(*serveClient) error
	next  int
	err   error
	ops   int64
}

// buildScript returns the per-client op sequence. Every step is exactly
// one wire call, so the round-robin driver interleaves sessions at op
// granularity. Handles flow through d.h.
func buildScript(c int, files int, payload []byte) []func(*serveClient) error {
	dir := fmt.Sprintf("client%03d", c)
	var steps []func(*serveClient) error
	steps = append(steps, func(d *serveClient) error { return d.cli.Mkdir(dir) })
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("%s/f%05d", dir, i)
		steps = append(steps, func(d *serveClient) error {
			h, _, err := d.cli.Create(path)
			d.h = h
			return err
		})
		steps = append(steps, func(d *serveClient) error {
			_, err := d.cli.Write(d.h, 0, payload)
			return err
		})
		if i%16 == 0 {
			steps = append(steps, func(d *serveClient) error { return d.cli.Fsync(d.h) })
		}
	}
	for i := 0; i < files; i += 4 {
		path := fmt.Sprintf("%s/f%05d", dir, i)
		steps = append(steps, func(d *serveClient) error {
			h, _, err := d.cli.Lookup(path, true)
			d.h = h
			return err
		})
		steps = append(steps, func(d *serveClient) error {
			_, err := d.cli.Read(d.h, 0, len(payload))
			return err
		})
		steps = append(steps, func(d *serveClient) error {
			_, err := d.cli.Getattr(path)
			return err
		})
	}
	steps = append(steps, func(d *serveClient) error {
		_, err := d.cli.Readdir(dir)
		return err
	})
	steps = append(steps, func(d *serveClient) error {
		return d.cli.Rename(dir+"/f00000", dir+"/renamed")
	})
	steps = append(steps, func(d *serveClient) error { return d.cli.Unlink(dir + "/renamed") })
	steps = append(steps, func(d *serveClient) error {
		_, err := d.cli.Statfs()
		return err
	})
	return steps
}

// step runs one script step, retrying when the server sheds it with EBUSY
// (only possible in the concurrent configuration). A handle evicted by the
// bounded table surfaces as EBADF mid-script; the script treats any other
// error as fatal for this client.
func (d *serveClient) step() bool {
	if d.err != nil || d.next >= len(d.steps) {
		return false
	}
	fn := d.steps[d.next]
	for try := 0; ; try++ {
		err := fn(d)
		if err == nil {
			d.ops++
			break
		}
		if errors.Is(err, fsrpc.ErrBusy) && try < 1000 {
			continue // shed under load; the server counted it, retry
		}
		d.err = fmt.Errorf("step %d: %w", d.next, err)
		break
	}
	d.next++
	return d.err == nil && d.next < len(d.steps)
}

// RunServe benchmarks the wire path: it mounts system behind an fsserve
// server, connects `clients` sessions over net.Pipe, runs the scripted
// workload on each, and reports throughput, per-op simulated latency
// percentiles, and the shed count, plus the instance's full metric
// snapshot (fsrpc.* / fsserve.* included).
func RunServe(system string, scale int64, clients, workers int) (ServeResult, metrics.Snapshot) {
	if clients < 1 {
		clients = 1
	}
	deterministic := workers <= 1
	var in *Instance
	if deterministic {
		in = Build(system, scale)
	} else {
		in = BuildConcurrent(system, scale, workers)
	}
	cfg := fsserve.DefaultConfig()
	if !deterministic {
		cfg.Workers = workers
	}
	srv := fsserve.New(in.Env, in.Mount, cfg)

	files := int(6400 / scale)
	if files < 16 {
		files = 16
	}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	cls := make([]*serveClient, clients)
	for c := range cls {
		cliEnd, srvEnd := net.Pipe()
		go srv.ServeConn(srvEnd)
		cls[c] = &serveClient{cli: fsrpc.NewClient(cliEnd), steps: buildScript(c, files, payload)}
	}

	start := in.Env.Now()
	wallStart := time.Now()
	if deterministic {
		// Round-robin: one synchronous call in flight at a time, so the
		// single-worker server executes ops in a fixed global order.
		for live := true; live; {
			live = false
			for _, d := range cls {
				if d.step() {
					live = true
				}
			}
		}
	} else {
		var wg sync.WaitGroup
		for _, d := range cls {
			wg.Add(1)
			go func(d *serveClient) {
				defer wg.Done()
				for d.step() {
				}
			}(d)
		}
		wg.Wait()
	}
	out := ServeResult{
		System:   system,
		Clients:  clients,
		Workers:  cfg.Workers,
		SimTime:  in.Env.Now() - start,
		WallTime: time.Since(wallStart),
	}
	for c, d := range cls {
		out.Ops += d.ops
		if d.err != nil {
			out.Errors = append(out.Errors, fmt.Sprintf("client %d: %v", c, d.err))
		}
		d.cli.Close()
	}
	srv.Shutdown()

	snap := in.Env.Metrics.Snapshot()
	h := snap.Histograms["fsserve.op.ns"]
	out.P50 = h.Quantile(0.50)
	out.P95 = h.Quantile(0.95)
	out.P99 = h.Quantile(0.99)
	out.Shed = snap.Counters["fsserve.queue.shed"] + snap.Counters["fsserve.deadline.shed"]
	return out, snap
}

// serveColumn mirrors microColumn for the serve table.
type serveColumn struct {
	Name  string
	Unit  string
	Lower bool
	Get   func(ServeResult) float64
}

var serveColumns = []serveColumn{
	{"wire_ops", "kop/s", false, func(r ServeResult) float64 { return r.KOpsPerSimSec() }},
	{"p50", "ns", true, func(r ServeResult) float64 { return float64(r.P50) }},
	{"p95", "ns", true, func(r ServeResult) float64 { return float64(r.P95) }},
	{"p99", "ns", true, func(r ServeResult) float64 { return float64(r.P99) }},
	{"shed", "ops", true, func(r ServeResult) float64 { return float64(r.Shed) }},
}

// WriteServeTable renders the human-readable serve-bench table.
func WriteServeTable(w io.Writer, rows []ServeResult) {
	fmt.Fprintf(w, "%-14s", "system")
	for _, c := range serveColumns {
		fmt.Fprintf(w, " | %14s", fmt.Sprintf("%s (%s)", c.Name, c.Unit))
	}
	fmt.Fprintf(w, " | %10s\n", "wall")
	fmt.Fprintln(w, strings.Repeat("-", 14+len(serveColumns)*17+13))
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.System)
		for _, c := range serveColumns {
			fmt.Fprintf(w, " | %14.1f", c.Get(r))
		}
		fmt.Fprintf(w, " | %10s\n", r.WallTime.Truncate(time.Millisecond))
	}
}
